# CLI smoke test: run `zolcsim sweep` on one kernel and validate the CSV
# schema against the checked-in golden header, then run one checked-in
# scenario suite through `sweep --from-file`. Invoked by CTest as
#   cmake -DCLI=<zolcsim> -DGOLDEN=<sweep_header.csv> -DOUT=<scratch.csv>
#        -DSUITE=<scenarios/fig2_cycles.json> -P cli_smoke.cmake
# Guards the CLI wiring end-to-end (arg parsing -> sweep engine -> CSV
# emitter) and pins the paper-default CSV schema.
if(NOT CLI OR NOT GOLDEN OR NOT OUT OR NOT SUITE)
  message(FATAL_ERROR
      "cli_smoke.cmake needs -DCLI=, -DGOLDEN=, -DOUT=, -DSUITE=")
endif()

execute_process(
  COMMAND ${CLI} sweep --kernels=dotprod --machines=XRdefault,ZOLClite
          --threads=1 --out=${OUT}
  RESULT_VARIABLE rc
  ERROR_VARIABLE stderr_text
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zolcsim sweep failed (${rc}): ${stderr_text}")
endif()

file(STRINGS ${OUT} produced LIMIT_COUNT 1)
file(STRINGS ${GOLDEN} expected LIMIT_COUNT 1)
if(NOT produced STREQUAL expected)
  message(FATAL_ERROR
      "CSV header drifted from the golden schema\n  produced: ${produced}\n"
      "  expected: ${expected}")
endif()

# The sweep must have produced one row per (kernel, machine) cell.
file(STRINGS ${OUT} all_lines)
list(LENGTH all_lines line_count)
if(NOT line_count EQUAL 3)
  message(FATAL_ERROR "expected header + 2 cells, got ${line_count} lines")
endif()

# Suite mode: the checked-in fig2 scenario must run clean, which also
# re-verifies its golden CSV digest (the runner fails on any mismatch).
execute_process(
  COMMAND ${CLI} sweep --from-file=${SUITE} --threads=1 --out=${OUT}.suite
  RESULT_VARIABLE rc
  ERROR_VARIABLE stderr_text
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zolcsim sweep --from-file failed (${rc}): ${stderr_text}")
endif()
file(STRINGS ${OUT}.suite suite_header LIMIT_COUNT 1)
if(NOT suite_header STREQUAL expected)
  message(FATAL_ERROR
      "suite CSV header drifted from the golden schema\n"
      "  produced: ${suite_header}\n  expected: ${expected}")
endif()
