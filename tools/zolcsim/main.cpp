// zolcsim -- CLI driver over the staged toolchain (src/flow).
//
//   zolcsim list                       catalog kernels / machines / defaults
//   zolcsim compile <kernel> [...]     compile stage: unit summary, disasm,
//                                      zolcscan report
//   zolcsim run <kernel> [...]         compile + run one experiment
//   zolcsim sweep [...]                grid sweep, CSV/JSON to stdout/file
//   zolcsim bench [...]                run scenario suites, emit BENCH_*.json
//   zolcsim store stat|gc [...]        inspect / clean an on-disk unit store
//   zolcsim serve [...]                long-running daemon on a Unix socket
//   zolcsim client <action> [...]      talk to a serve daemon
//
// Run `zolcsim help` (or any subcommand with bad flags) for the full flag
// list. Exit codes: 0 success, 1 toolchain error, 2 usage error.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "flow/cache.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/run.hpp"
#include "flow/unit_store.hpp"
#include "harness/sweep.hpp"
#include "kernels/kernels.hpp"
#include "scenario/runner.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace {

using namespace zolcsim;

constexpr const char* kUsage = R"(zolcsim -- staged ZOLC toolchain driver

usage: zolcsim <command> [flags]

commands:
  list                      kernels (paper + extended), machines, defaults
  compile <kernel>          compile stage only; prints the unit summary
      --machine=NAME        machine configuration   (default ZOLCfull)
      --geometry=LABEL      ZOLC geometry, e.g. 32t-8l-4x-4e[-p14]
      --disasm              print the lowered program disassembly
      --scan                print the zolcscan post-link analysis
      --format=text|json    json: program words + table image + scan
  run <kernel>              compile + execute + verify one experiment
      --machine=NAME --geometry=LABEL
      --config=NAME         pipeline config, e.g. EX-resolve/rollback[/nofwd]
      --engine=NAME         pipeline (cycle-accurate, default) or iss
      --fast-path           ISS loop-summary fast path (implies --engine=iss)
      --max-cycles=N        cycle budget          (default 200000000)
      --no-predecode        fetch/decode from memory every cycle
      --preempt-every=N     ISS only: save/clobber/restore the full ZOLC
                            context every N instructions (differential knob)
      --preempt-serialize   round-trip each saved context through JSON
      --tenants=N           time-slice N copies of the workload over one
                            controller (ISS only; reports switch cost)
  sweep                     kernel x machine x config x geometry x mode grid
      --kernels=a,b,...     default: the 12-kernel paper suite
      --machines=a,b,...    default: all five machines
      --configs=a,b,...     default: EX-resolve/rollback
      --geometries=a,b,...  default: the paper prototype geometry
      --modes=a,b,...       pipeline|iss|iss-fast (default pipeline)
      --tenants=a,b,...     tenant-count axis     (default 1; ISS modes only)
      --preempt-every=N --preempt-serialize
      --baseline=NAME       reduction baseline    (default XRdefault)
      --max-cycles=N --threads=N
      --store-dir=DIR       on-disk unit store: reload compiled units from
                            DIR and write fresh compiles back
      --format=csv|json     default csv
      --out=FILE            default stdout
      --from-file=SUITE     run a scenario suite file instead of grid flags
                            (verifies the suite's golden digest + thresholds)
  bench                     run scenario suites, write BENCH_<suite>.json
      --suite-dir=DIR       directory of *.json suite files
      --out-dir=DIR         artifact directory    (default .)
      --threads=N --store-dir=DIR
      --expect-zero-compiles  fail (exit 1) if any unit was compiled rather
                            than served from memory or the store
  bench --compare OLD NEW   diff two BENCH artifact directories per point
      --tolerance=PCT       allowed MIPS regression (default 10)
  store stat                inventory a unit store directory
  store gc                  drop stale/corrupt artifacts from a store
      --store-dir=DIR       (required for both store subcommands)
  serve                     daemon: zolcsim-serve-v1 over a Unix socket,
                            one warm compile cache shared by every request
      --socket=PATH         socket path (required)
      --store-dir=DIR       attach an on-disk unit store
      --workers=N           connection workers     (default 4)
      --sweep-threads=N     sweep threads per request (default hardware)
      --idle-timeout-ms=N   close silent connections (default 30000)
                            SIGTERM/SIGINT and a client "shutdown" request
                            both drain gracefully: in-flight requests
                            finish and their replies flush before exit
  client <action>           one request against a serve daemon
      --socket=PATH         socket path (required)
      actions: ping | stats | store-stat | shutdown
        compile <kernel>    --machine=NAME --geometry=LABEL
        run <kernel>        ... plus --config=NAME --mode=NAME
                            --max-cycles=N --tenants=N --preempt-every=N
                            --preempt-serialize --no-predecode
        sweep               --from-file=SUITE --format=csv|json --out=FILE
                            --expect-zero-compiles --expect-zero-prepares
                            (output is byte-identical to local
                            `zolcsim sweep --from-file`)
        bench-suite         --from-file=SUITE --out-dir=DIR
exit codes: 0 ok, 1 toolchain error / comparison failure, 2 usage error
)";

/// One compile cache for the whole process: consecutive suites (and a
/// sweep following them) share warm units, which is the point of the
/// caller-supplied-cache run_sweep overload.
flow::CompileCache& process_cache() {
  static flow::CompileCache cache;
  return cache;
}

int usage_error(const std::string& message) {
  std::fprintf(stderr, "%s\n\n%s", message.c_str(), kUsage);
  return 2;
}

int toolchain_error(const Error& error) {
  std::fprintf(stderr, "%s\n", cli::render_error(error).c_str());
  return 1;
}

/// A malformed flag value is a usage error (exit 2), same class as an
/// unknown flag -- toolchain_error (exit 1) is reserved for failures of the
/// flow itself (compile / run / sweep / io).
int bad_flag_value(const Error& error) {
  std::fprintf(stderr, "%s\n", cli::render_error(error).c_str());
  return 2;
}

/// Fetches "--name=value", rejecting an explicitly empty value. Returns
/// nullopt when the flag is absent; sets `rc` non-zero on empty values.
std::optional<std::string> nonempty_value(const cli::Args& args,
                                          std::string_view name, int& rc) {
  const auto value = args.value_of(name);
  if (value && value->empty()) {
    rc = usage_error("empty value for --" + std::string(name));
    return std::nullopt;
  }
  return value;
}

/// Fetches "--name=N" as a strictly positive integer (no truncation:
/// anything non-numeric, <= 0, or beyond `max` is a usage error). Returns
/// nullopt when the flag is absent; sets `rc` non-zero on bad values.
std::optional<std::uint64_t> positive_int_flag(
    const cli::Args& args, std::string_view name, int& rc,
    std::uint64_t max = std::numeric_limits<std::int64_t>::max()) {
  const auto value = nonempty_value(args, name, rc);
  if (!value) return std::nullopt;
  const auto n = parse_int(*value);
  if (!n || *n <= 0 || static_cast<std::uint64_t>(*n) > max) {
    rc = usage_error("bad --" + std::string(name) + " value '" + *value +
                     "'");
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(*n);
}

int reject_unknown_flags(const cli::Args& args,
                         const std::vector<std::string_view>& values,
                         const std::vector<std::string_view>& switches) {
  const std::vector<std::string> unknown = args.unknown(values, switches);
  if (unknown.empty()) return 0;
  return usage_error("unknown flag '" + unknown.front() + "'");
}

/// Attaches the on-disk unit store named by --store-dir (if present) to the
/// process cache. The store must outlive the cache, hence the static.
/// Returns 0, or a usage-error exit code for an empty flag value.
int attach_store_flag(const cli::Args& args) {
  int rc = 0;
  const auto dir = nonempty_value(args, "store-dir", rc);
  if (rc != 0) return rc;
  if (dir) {
    static std::optional<flow::UnitStore> store;
    store.emplace(*dir);
    process_cache().attach_store(&*store);
  }
  return 0;
}

// ---------------------------------------------------------------- list ----

void list_registry(const char* title,
                   const std::vector<std::unique_ptr<kernels::Kernel>>& reg) {
  std::printf("%s:\n", title);
  TextTable table({"kernel", "description"});
  for (const auto& kernel : reg) {
    table.add_row({std::string(kernel->name()),
                   std::string(kernel->description())});
  }
  std::printf("%s\n", table.render().c_str());
}

int cmd_list() {
  list_registry("paper suite", kernels::kernel_registry());
  list_registry("extended (geometry exploration)",
                kernels::extended_kernel_registry());
  std::printf("machines:");
  for (const codegen::MachineKind machine : codegen::kAllMachines) {
    std::printf(" %s", std::string(codegen::machine_name(machine)).c_str());
  }
  std::printf("\ndefault geometry: %s\n",
              zolc::ZolcGeometry{}.label().c_str());
  return 0;
}

// ----------------------------------------------------- compile helpers ----

struct UnitRequest {
  flow::CompileSpec spec;
};

/// Shared flag handling for `compile` and `run`: kernel name + machine +
/// geometry. Returns 0 and fills `out` on success, an exit code otherwise.
int parse_unit_request(const cli::Args& args, UnitRequest& out) {
  if (args.positional.size() != 1) {
    return usage_error("expected exactly one kernel name");
  }
  out.spec.kernel = args.positional.front();
  out.spec.machine = codegen::MachineKind::kZolcFull;
  int rc = 0;
  if (const auto machine = nonempty_value(args, "machine", rc)) {
    auto parsed = cli::parse_machine(*machine);
    if (!parsed.ok()) return bad_flag_value(parsed.error());
    out.spec.machine = parsed.value();
  }
  if (rc != 0) return rc;
  if (const auto geometry = nonempty_value(args, "geometry", rc)) {
    auto parsed = cli::parse_geometry(*geometry);
    if (!parsed.ok()) return bad_flag_value(parsed.error());
    out.spec.geometry = parsed.value();
  }
  return rc;
}

void print_unit_summary(const flow::CompiledUnit& unit) {
  const codegen::Program& program = unit.program();
  std::printf("unit: %s (%s) geometry %s\n", unit.spec().kernel.c_str(),
              std::string(codegen::machine_name(unit.machine())).c_str(),
              unit.geometry().label().c_str());
  std::printf(
      "  code words        %zu\n  init instructions %u\n"
      "  hw loops          %u\n  sw loops          %u\n",
      program.size_words(), program.init_instructions, program.hw_loop_count,
      program.sw_loop_count);
  for (const std::string& note : program.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
}

void print_scan_report(const flow::CompiledUnit& unit) {
  const cfg::ScanReport& scan = unit.scan();
  std::printf("zolcscan: %zu accelerable counted loop(s)\n",
              scan.candidates.size());
  for (const cfg::MicroPlan& plan : scan.candidates) {
    std::printf("  depth %u: pc [%s, %s] index r%u, %d..%d step %d\n",
                plan.depth, hex32(plan.start_pc).c_str(),
                hex32(plan.end_pc).c_str(), plan.index_reg, plan.initial,
                plan.final, plan.step);
  }
  for (const Error& reason : scan.rejected) {
    std::printf("  rejected[%s]: %s\n",
                std::string(error_code_name(reason.code)).c_str(),
                reason.to_string().c_str());
  }
}

int cmd_compile(const cli::Args& args) {
  if (const int rc = reject_unknown_flags(args,
                                          {"machine", "geometry", "format"},
                                          {"disasm", "scan"})) {
    return rc;
  }
  UnitRequest request;
  if (const int rc = parse_unit_request(args, request)) return rc;
  int rc = 0;
  bool json_format = false;
  if (const auto format = nonempty_value(args, "format", rc)) {
    if (*format != "text" && *format != "json") {
      return usage_error("bad --format value '" + *format +
                         "' (text or json)");
    }
    json_format = *format == "json";
  }
  if (rc != 0) return rc;
  auto unit = flow::CompiledUnit::compile(request.spec);
  if (!unit.ok()) return toolchain_error(unit.error());
  if (json_format) {
    // The JSON artifact subsumes --disasm/--scan: words, tables, and the
    // full scan report are always present.
    std::fputs(unit.value().to_json().c_str(), stdout);
    return 0;
  }
  print_unit_summary(unit.value());
  if (args.has("disasm")) {
    std::printf("\n%s", unit.value().disassembly().c_str());
  }
  if (args.has("scan")) {
    std::printf("\n");
    print_scan_report(unit.value());
  }
  return 0;
}

// ----------------------------------------------------------------- run ----

int cmd_run(const cli::Args& args) {
  if (const int rc = reject_unknown_flags(
          args,
          {"machine", "geometry", "config", "engine", "max-cycles",
           "preempt-every", "tenants"},
          {"no-predecode", "fast-path", "preempt-serialize"})) {
    return rc;
  }
  UnitRequest request;
  if (const int rc = parse_unit_request(args, request)) return rc;

  flow::RunPlan plan;
  int rc = 0;
  if (const auto config = nonempty_value(args, "config", rc)) {
    auto parsed = cli::parse_config(*config);
    if (!parsed.ok()) return bad_flag_value(parsed.error());
    plan.config = parsed.value();
  }
  if (const auto engine = nonempty_value(args, "engine", rc)) {
    if (*engine == "pipeline") {
      plan.mode.engine = harness::SimEngine::kPipeline;
    } else if (*engine == "iss") {
      plan.mode.engine = harness::SimEngine::kIss;
    } else {
      return usage_error("bad --engine value '" + *engine +
                         "' (pipeline or iss)");
    }
  }
  if (args.has("fast-path")) {
    if (plan.mode.engine == harness::SimEngine::kPipeline &&
        args.value_of("engine")) {
      return usage_error("--fast-path requires --engine=iss");
    }
    plan.mode.engine = harness::SimEngine::kIss;
    plan.mode.fast_path = true;
  }
  if (const auto cycles = positive_int_flag(args, "max-cycles", rc)) {
    plan.max_cycles = *cycles;
  }
  if (const auto every = positive_int_flag(args, "preempt-every", rc)) {
    plan.preempt_every = *every;
  }
  if (const auto tenants = positive_int_flag(args, "tenants", rc, 64)) {
    plan.tenants = static_cast<unsigned>(*tenants);
  }
  plan.preempt_serialize = args.has("preempt-serialize");
  if ((plan.preempt_every != 0 || plan.tenants != 1) &&
      plan.mode.engine != harness::SimEngine::kIss) {
    return usage_error(
        "--preempt-every/--tenants require --engine=iss or --fast-path");
  }
  if (rc != 0) return rc;
  plan.predecode = !args.has("no-predecode");

  auto unit = flow::CompiledUnit::compile(request.spec);
  if (!unit.ok()) return toolchain_error(unit.error());
  auto result = flow::run(unit.value(), plan);
  if (!result.ok()) return toolchain_error(result.error());

  const harness::ExperimentResult& r = result.value();
  print_unit_summary(unit.value());
  std::printf(
      "run: config %s mode %s\n  cycles            %llu\n"
      "  instructions      %llu\n  continue events   %llu\n"
      "  done events       %llu\n  table writes      %llu\n"
      "  verification      ok\n",
      harness::config_name(plan.config).c_str(),
      std::string(harness::mode_name(plan.mode)).c_str(),
      static_cast<unsigned long long>(r.stats.cycles),
      static_cast<unsigned long long>(r.stats.instructions),
      static_cast<unsigned long long>(r.zolc_stats.continue_events),
      static_cast<unsigned long long>(r.zolc_stats.done_events),
      static_cast<unsigned long long>(r.zolc_stats.table_writes));
  if (plan.mode.fast_path) {
    std::printf(
        "  fast path         %llu/%llu engagements, %llu replayed instrs, "
        "%llu bailouts\n",
        static_cast<unsigned long long>(r.fastpath.engagements),
        static_cast<unsigned long long>(r.fastpath.attempts),
        static_cast<unsigned long long>(r.fastpath.replayed_instructions),
        static_cast<unsigned long long>(r.fastpath.total_bailouts()));
  }
  if (plan.tenants != 1 || plan.preempt_every != 0) {
    std::printf(
        "  tenants           %u\n  ctx switches      %llu\n"
        "  ctx switch cost   %llu cycle(s)\n",
        r.tenants, static_cast<unsigned long long>(r.context_switches),
        static_cast<unsigned long long>(r.context_switch_cycles));
  }
  return 0;
}

// --------------------------------------------------------------- sweep ----

/// Renders a sweep report to --out/stdout per --format. Shared by the grid
/// and --from-file paths of `sweep`.
int emit_sweep_report(const harness::SweepReport& report,
                      const std::string& format_name,
                      const std::optional<std::string>& out_path) {
  const std::string rendered =
      format_name == "json" ? report.to_json() : report.to_csv();
  if (out_path) {
    std::ofstream file(*out_path, std::ios::binary);
    file << rendered;
    file.flush();  // surface deferred write errors (e.g. disk full) here
    if (!file.good()) {
      return toolchain_error(
          Error{ErrorCode::kIo, "cannot write '" + *out_path + "'"});
    }
    std::fprintf(stderr,
                 "wrote %zu cells to %s (%zu compiles, %zu store hits, "
                 "%zu cache hits)\n",
                 report.cells.size(), out_path->c_str(),
                 report.compile_cache_compiles,
                 report.compile_cache_store_hits, report.compile_cache_hits);
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return 0;
}

int cmd_sweep(const cli::Args& args) {
  if (const int rc = reject_unknown_flags(
          args,
          {"kernels", "machines", "configs", "geometries", "modes",
           "tenants", "preempt-every", "baseline", "max-cycles", "threads",
           "format", "out", "from-file", "store-dir"},
          {"preempt-serialize"})) {
    return rc;
  }
  if (!args.positional.empty()) {
    return usage_error("sweep takes no positional arguments");
  }
  if (const int rc = attach_store_flag(args)) return rc;
  int rc = 0;
  if (const auto suite_path = nonempty_value(args, "from-file", rc)) {
    // Suite mode: the file is the grid; only execution/output flags apply.
    for (const std::string_view grid_flag :
         {"kernels", "machines", "configs", "geometries", "modes", "tenants",
          "preempt-every", "baseline", "max-cycles"}) {
      if (args.value_of(grid_flag)) {
        return usage_error("--" + std::string(grid_flag) +
                           " conflicts with --from-file (the suite file "
                           "defines the grid)");
      }
    }
    scenario::RunOptions options;
    if (const auto threads = positive_int_flag(args, "threads", rc, 4096)) {
      options.threads = static_cast<unsigned>(*threads);
    }
    std::string format_name = "csv";
    if (const auto format = nonempty_value(args, "format", rc)) {
      if (*format != "csv" && *format != "json") {
        return usage_error("bad --format value '" + *format +
                           "' (csv or json)");
      }
      format_name = *format;
    }
    const auto out_path = nonempty_value(args, "out", rc);
    if (rc != 0) return rc;

    auto suite = scenario::load_suite_file(*suite_path);
    if (!suite.ok()) return toolchain_error(suite.error());
    auto outcome =
        scenario::run_suite(suite.value(), process_cache(), options);
    if (!outcome.ok()) return toolchain_error(outcome.error());
    return emit_sweep_report(outcome.value().report, format_name, out_path);
  }
  if (rc != 0) return rc;

  harness::SweepSpec spec;
  if (const auto kernels = nonempty_value(args, "kernels", rc)) {
    spec.kernels = cli::split_list(*kernels);
  }
  if (const auto machines = nonempty_value(args, "machines", rc)) {
    for (const std::string& name : cli::split_list(*machines)) {
      auto machine = cli::parse_machine(name);
      if (!machine.ok()) return bad_flag_value(machine.error());
      spec.machines.push_back(machine.value());
    }
  }
  if (const auto configs = nonempty_value(args, "configs", rc)) {
    for (const std::string& name : cli::split_list(*configs)) {
      auto config = cli::parse_config(name);
      if (!config.ok()) return bad_flag_value(config.error());
      spec.configs.push_back(config.value());
    }
  }
  if (const auto geometries = nonempty_value(args, "geometries", rc)) {
    for (const std::string& name : cli::split_list(*geometries)) {
      auto geometry = cli::parse_geometry(name);
      if (!geometry.ok()) return bad_flag_value(geometry.error());
      spec.geometries.push_back(geometry.value());
    }
  }
  if (const auto modes = nonempty_value(args, "modes", rc)) {
    for (const std::string& name : cli::split_list(*modes)) {
      auto mode = cli::parse_mode(name);
      if (!mode.ok()) return bad_flag_value(mode.error());
      spec.modes.push_back(mode.value());
    }
  }
  if (const auto tenants = nonempty_value(args, "tenants", rc)) {
    for (const std::string& name : cli::split_list(*tenants)) {
      const auto n = parse_int(name);
      if (!n || *n <= 0 || *n > 64) {
        return usage_error("bad --tenants entry '" + name +
                           "' (want integers in [1, 64])");
      }
      spec.tenants.push_back(static_cast<unsigned>(*n));
    }
  }
  if (const auto every = positive_int_flag(args, "preempt-every", rc)) {
    spec.preempt_every = *every;
  }
  spec.preempt_serialize = args.has("preempt-serialize");
  if (const auto baseline = nonempty_value(args, "baseline", rc)) {
    auto machine = cli::parse_machine(*baseline);
    if (!machine.ok()) return bad_flag_value(machine.error());
    spec.baseline = machine.value();
  }
  if (const auto cycles = positive_int_flag(args, "max-cycles", rc)) {
    spec.max_cycles = *cycles;
  }
  if (const auto threads = positive_int_flag(args, "threads", rc, 4096)) {
    spec.threads = static_cast<unsigned>(*threads);
  }
  std::string format_name = "csv";
  if (const auto format = nonempty_value(args, "format", rc)) {
    if (*format != "csv" && *format != "json") {
      return usage_error("bad --format value '" + *format +
                         "' (csv or json)");
    }
    format_name = *format;
  }
  const auto out_path = nonempty_value(args, "out", rc);
  if (rc != 0) return rc;

  const auto swept = harness::run_sweep(spec, process_cache());
  if (!swept.ok()) return toolchain_error(swept.error());
  return emit_sweep_report(swept.value(), format_name, out_path);
}

// --------------------------------------------------------------- bench ----

// ----------------------------------------------------- bench --compare ----

/// One data point of a BENCH artifact, keyed for cross-artifact matching.
struct BenchPoint {
  std::string key;  ///< "kernel|machine|config|geometry|mode|tenants"
  std::uint64_t cycles = 0;
  double mips = 0.0;
};

/// Loads the points of one BENCH_*.json artifact. Accepts schema v1 (no
/// per-point mode; defaults to "pipeline"), v2, v3 (no per-point tenants;
/// defaults to 1), and v4.
Result<std::vector<BenchPoint>> load_bench_points(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Error{ErrorCode::kIo, "cannot read artifact '" + path + "'"};
  }
  std::ostringstream text;
  text << file.rdbuf();
  auto document = json::parse(text.str());
  if (!document.ok()) {
    return std::move(document).error().with_context("artifact " + path);
  }
  const json::Value& root = document.value();
  const json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      (schema->as_string() != "zolcsim-bench-v1" &&
       schema->as_string() != "zolcsim-bench-v2" &&
       schema->as_string() != "zolcsim-bench-v3" &&
       schema->as_string() != std::string(scenario::kBenchSchema))) {
    return Error{ErrorCode::kParse,
                 "'" + path + "' is not a zolcsim BENCH artifact"};
  }
  const json::Value* points = root.find("points");
  if (points == nullptr || !points->is_array()) {
    return Error{ErrorCode::kParse, "'" + path + "' has no points array"};
  }
  std::vector<BenchPoint> out;
  for (const json::Value& point : points->items()) {
    BenchPoint p;
    for (const char* part : {"kernel", "machine", "config", "geometry"}) {
      const json::Value* v = point.find(part);
      if (v == nullptr || !v->is_string()) {
        return Error{ErrorCode::kParse, "'" + path +
                                            "' point lacks a string '" +
                                            part + "'"};
      }
      if (!p.key.empty()) p.key += '|';
      p.key += v->as_string();
    }
    p.key += '|';
    if (const json::Value* mode = point.find("mode")) {
      if (!mode->is_string()) {
        return Error{ErrorCode::kParse,
                     "'" + path + "' point has a non-string 'mode'"};
      }
      p.key += mode->as_string();
    } else {
      p.key += "pipeline";  // schema v1 predates the mode axis
    }
    p.key += '|';
    if (const json::Value* tenants = point.find("tenants")) {
      const auto count = tenants->as_uint();
      if (!count) {
        return Error{ErrorCode::kParse,
                     "'" + path + "' point has a non-integer 'tenants'"};
      }
      p.key += std::to_string(*count);
    } else {
      p.key += '1';  // schemas before v4 predate the tenant axis
    }
    const json::Value* cycles = point.find("cycles");
    const auto n = cycles ? cycles->as_uint() : std::nullopt;
    if (!n) {
      return Error{ErrorCode::kParse,
                   "'" + path + "' point lacks an integer 'cycles'"};
    }
    p.cycles = *n;
    if (const json::Value* mips = point.find("mips");
        mips != nullptr && mips->is_number()) {
      p.mips = mips->as_number();
    }
    out.push_back(std::move(p));
  }
  return out;
}

/// Lists the BENCH_*.json artifacts directly under `dir`, sorted by name.
Result<std::vector<std::string>> list_bench_artifacts(const std::string& dir) {
  auto files = scenario::list_suite_files(dir);  // *.json, sorted
  if (!files.ok()) return std::move(files).error();
  std::vector<std::string> artifacts;
  for (std::string& path : files.value()) {
    const std::string name = std::filesystem::path(path).filename().string();
    if (name.rfind("BENCH_", 0) == 0) artifacts.push_back(std::move(path));
  }
  return artifacts;
}

/// `bench --compare OLD NEW`: matches artifacts by file name and points by
/// (kernel, machine, config, geometry, mode). Cycle counts must be exactly
/// equal (they are deterministic); MIPS may regress up to `tolerance`
/// percent (they are host measurements). Exit 1 on any violation.
int cmd_bench_compare(const cli::Args& args) {
  if (const int rc =
          reject_unknown_flags(args, {"tolerance"}, {"compare"})) {
    return rc;
  }
  if (args.positional.size() != 2) {
    return usage_error("bench --compare takes exactly two directories");
  }
  int rc = 0;
  double tolerance = 10.0;
  if (const auto pct = positive_int_flag(args, "tolerance", rc, 1000)) {
    tolerance = static_cast<double>(*pct);
  }
  if (rc != 0) return rc;

  const auto old_files = list_bench_artifacts(args.positional[0]);
  if (!old_files.ok()) return toolchain_error(old_files.error());
  const auto new_files = list_bench_artifacts(args.positional[1]);
  if (!new_files.ok()) return toolchain_error(new_files.error());
  if (old_files.value().empty() || new_files.value().empty()) {
    return toolchain_error(
        Error{ErrorCode::kIo, "no BENCH_*.json artifacts to compare"});
  }

  int violations = 0;
  std::size_t matched_points = 0;
  for (const std::string& new_path : new_files.value()) {
    const std::string name =
        std::filesystem::path(new_path).filename().string();
    const std::string* old_path = nullptr;
    for (const std::string& candidate : old_files.value()) {
      if (std::filesystem::path(candidate).filename().string() == name) {
        old_path = &candidate;
        break;
      }
    }
    if (old_path == nullptr) {
      std::printf("%-28s only in %s (skipped)\n", name.c_str(),
                  args.positional[1].c_str());
      continue;
    }
    auto old_points = load_bench_points(*old_path);
    if (!old_points.ok()) return toolchain_error(old_points.error());
    auto new_points = load_bench_points(new_path);
    if (!new_points.ok()) return toolchain_error(new_points.error());

    for (const BenchPoint& np : new_points.value()) {
      const BenchPoint* op = nullptr;
      for (const BenchPoint& candidate : old_points.value()) {
        if (candidate.key == np.key) {
          op = &candidate;
          break;
        }
      }
      if (op == nullptr) continue;  // new grid point; nothing to diff
      ++matched_points;
      const double mips_delta_pct =
          op->mips > 0.0 ? 100.0 * (np.mips - op->mips) / op->mips : 0.0;
      const bool cycles_differ = np.cycles != op->cycles;
      const bool mips_regressed = mips_delta_pct < -tolerance;
      if (cycles_differ) {
        std::printf("FAIL %-52s cycles %llu -> %llu\n", np.key.c_str(),
                    static_cast<unsigned long long>(op->cycles),
                    static_cast<unsigned long long>(np.cycles));
        ++violations;
      } else if (mips_regressed) {
        std::printf("FAIL %-52s mips %.2f -> %.2f (%.1f%%)\n", np.key.c_str(),
                    op->mips, np.mips, mips_delta_pct);
        ++violations;
      } else {
        std::printf("ok   %-52s cycles %llu  mips %.2f -> %.2f (%+.1f%%)\n",
                    np.key.c_str(),
                    static_cast<unsigned long long>(np.cycles), op->mips,
                    np.mips, mips_delta_pct);
      }
    }
  }
  std::printf("%zu matched points, %d violation(s), tolerance %.0f%%\n",
              matched_points, violations, tolerance);
  if (matched_points == 0) {
    return toolchain_error(Error{
        ErrorCode::kBadConfig, "the artifact sets share no data points"});
  }
  return violations == 0 ? 0 : 1;
}

int cmd_bench(const cli::Args& args) {
  if (args.has("compare")) return cmd_bench_compare(args);
  if (const int rc = reject_unknown_flags(
          args, {"suite-dir", "out-dir", "threads", "store-dir"},
          {"expect-zero-compiles"})) {
    return rc;
  }
  if (!args.positional.empty()) {
    return usage_error("bench takes no positional arguments");
  }
  if (const int rc = attach_store_flag(args)) return rc;
  int rc = 0;
  const auto suite_dir = nonempty_value(args, "suite-dir", rc);
  if (rc != 0) return rc;
  if (!suite_dir) return usage_error("bench requires --suite-dir=DIR");
  std::string out_dir = ".";
  if (const auto dir = nonempty_value(args, "out-dir", rc)) out_dir = *dir;
  scenario::RunOptions options;
  if (const auto threads = positive_int_flag(args, "threads", rc, 4096)) {
    options.threads = static_cast<unsigned>(*threads);
  }
  if (rc != 0) return rc;

  const auto files = scenario::list_suite_files(*suite_dir);
  if (!files.ok()) return toolchain_error(files.error());
  if (files.value().empty()) {
    return toolchain_error(Error{
        ErrorCode::kIo, "no *.json suite files in '" + *suite_dir + "'"});
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return toolchain_error(Error{ErrorCode::kIo,
                                 "cannot create artifact directory '" +
                                     out_dir + "': " + ec.message()});
  }

  for (const std::string& path : files.value()) {
    auto suite = scenario::load_suite_file(path);
    if (!suite.ok()) return toolchain_error(suite.error());
    auto outcome =
        scenario::run_suite(suite.value(), process_cache(), options);
    if (!outcome.ok()) return toolchain_error(outcome.error());
    const scenario::SuiteOutcome& done = outcome.value();

    const std::string artifact = out_dir + "/" +
                                 scenario::bench_artifact_name(done.suite);
    std::ofstream file(artifact, std::ios::binary);
    file << scenario::bench_artifact_json(done);
    file.flush();
    if (!file.good()) {
      return toolchain_error(
          Error{ErrorCode::kIo, "cannot write '" + artifact + "'"});
    }
    std::printf("suite %-20s %4zu cells  golden %-9s %7.2fs  %8.2f MIPS\n",
                done.suite.name.c_str(), done.report.cells.size(),
                done.golden_checked ? "match" : "unchecked",
                done.wall_seconds, done.mips);
  }
  const flow::CompileCache::Stats cache = process_cache().stats();
  std::printf(
      "compile cache: %zu compiles, %zu store hits, %zu memory hits "
      "across %zu suites\n",
      cache.compiles, cache.store_hits, cache.hits, files.value().size());
  if (args.has("expect-zero-compiles") && cache.compiles > 0) {
    return toolchain_error(
        Error{ErrorCode::kVerifyMismatch,
              std::to_string(cache.compiles) +
                  " unit(s) compiled despite --expect-zero-compiles (the "
                  "unit store should have served them)"});
  }
  return 0;
}

// --------------------------------------------------------------- store ----

/// `store stat` / `store gc`: offline inventory and maintenance of an
/// on-disk unit store directory.
int cmd_store(const cli::Args& args) {
  if (const int rc = reject_unknown_flags(args, {"store-dir"}, {})) return rc;
  if (args.positional.size() != 1 ||
      (args.positional.front() != "stat" && args.positional.front() != "gc")) {
    return usage_error("store takes exactly one action: stat or gc");
  }
  int rc = 0;
  const auto dir = nonempty_value(args, "store-dir", rc);
  if (rc != 0) return rc;
  if (!dir) return usage_error("store requires --store-dir=DIR");

  flow::UnitStore store(*dir);
  if (args.positional.front() == "gc") {
    auto outcome = store.gc();
    if (!outcome.ok()) return toolchain_error(outcome.error());
    std::printf("store gc: removed %zu artifact(s) (%llu bytes), kept %zu\n",
                outcome.value().removed,
                static_cast<unsigned long long>(outcome.value().bytes_freed),
                outcome.value().kept);
    return 0;
  }

  auto artifacts = store.scan_artifacts();
  if (!artifacts.ok()) return toolchain_error(artifacts.error());
  std::size_t current = 0, stale = 0, corrupt = 0;
  std::uintmax_t bytes = 0;
  for (const flow::UnitStore::ArtifactInfo& info : artifacts.value()) {
    switch (info.state) {
      case flow::UnitStore::ArtifactInfo::State::kCurrent:
        ++current;
        break;
      case flow::UnitStore::ArtifactInfo::State::kStale:
        ++stale;
        break;
      case flow::UnitStore::ArtifactInfo::State::kCorrupt:
        ++corrupt;
        break;
    }
    bytes += info.bytes;
  }
  std::printf("store %s: %zu artifact(s), %llu bytes\n", dir->c_str(),
              artifacts.value().size(),
              static_cast<unsigned long long>(bytes));
  std::printf("  current %zu, stale %zu, corrupt %zu\n", current, stale,
              corrupt);
  std::printf("  toolchain tag: %s\n",
              flow::UnitStore::toolchain_tag().c_str());
  return 0;
}

// --------------------------------------------------------------- serve ----

/// SIGTERM/SIGINT both request a graceful drain; the serve loop polls this
/// flag (a handler cannot touch the server's mutexes directly).
volatile std::sig_atomic_t g_serve_terminate = 0;

void on_serve_terminate(int) { g_serve_terminate = 1; }

int cmd_serve(const cli::Args& args) {
  if (const int rc = reject_unknown_flags(
          args,
          {"socket", "store-dir", "workers", "sweep-threads",
           "idle-timeout-ms"},
          {})) {
    return rc;
  }
  if (!args.positional.empty()) {
    return usage_error("serve takes no positional arguments");
  }
  int rc = 0;
  server::ServeOptions options;
  const auto socket = nonempty_value(args, "socket", rc);
  if (rc != 0) return rc;
  if (!socket) return usage_error("serve requires --socket=PATH");
  options.socket_path = *socket;
  if (const auto dir = nonempty_value(args, "store-dir", rc)) {
    options.store_dir = *dir;
  }
  if (const auto workers = positive_int_flag(args, "workers", rc, 256)) {
    options.workers = static_cast<unsigned>(*workers);
  }
  if (const auto threads =
          positive_int_flag(args, "sweep-threads", rc, 4096)) {
    options.sweep_threads = static_cast<unsigned>(*threads);
  }
  if (const auto idle =
          positive_int_flag(args, "idle-timeout-ms", rc, 3'600'000)) {
    options.idle_timeout_ms = static_cast<unsigned>(*idle);
  }
  if (rc != 0) return rc;

  server::Server daemon(std::move(options));
  if (auto started = daemon.start(); !started.ok()) {
    return toolchain_error(started.error());
  }
  std::signal(SIGTERM, on_serve_terminate);
  std::signal(SIGINT, on_serve_terminate);
  std::fprintf(stderr, "serving %s on %s (%u workers%s%s)\n",
               std::string(server::kServeSchema).c_str(),
               daemon.options().socket_path.c_str(),
               daemon.options().workers,
               daemon.options().store_dir.empty() ? "" : ", store ",
               daemon.options().store_dir.c_str());

  // Runs until a client "shutdown" request drains the daemon or a signal
  // asks us to. Either way in-flight requests finish first.
  while (!daemon.draining()) {
    if (g_serve_terminate != 0) {
      daemon.begin_drain();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  daemon.wait();
  const server::ServerStats stats = daemon.stats();
  std::fprintf(stderr,
               "drained: %llu request(s), %llu connection(s), "
               "%llu error repl%s\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.errors),
               stats.errors == 1 ? "y" : "ies");
  return 0;
}

// -------------------------------------------------------------- client ----

Result<std::string> read_text_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Error{ErrorCode::kIo, "cannot read '" + path + "'"};
  }
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

/// Builds the compile / run request JSON from the client flags. The axis
/// values travel as strings and are validated daemon-side with the same
/// parsers the local verbs use. Returns 0 and fills `payload`, or an exit
/// code.
int build_client_unit_request(const cli::Args& args, const char* type,
                              std::string& payload) {
  if (args.positional.size() != 2) {
    return usage_error(std::string("client ") + type +
                       " takes exactly one kernel name");
  }
  const bool run = std::string(type) == "run";
  std::string out = "{\"schema\": \"";
  out += server::kServeSchema;
  out += "\", \"type\": \"";
  out += type;
  out += "\", \"kernel\": \"";
  out += json::escape(args.positional[1]);
  out += "\"";
  int rc = 0;
  for (const char* flag : {"machine", "geometry"}) {
    if (const auto value = nonempty_value(args, flag, rc)) {
      out += std::string(", \"") + flag + "\": \"" + json::escape(*value) +
             "\"";
    }
    if (rc != 0) return rc;
  }
  if (run) {
    for (const char* flag : {"config", "mode"}) {
      if (const auto value = nonempty_value(args, flag, rc)) {
        out += std::string(", \"") + flag + "\": \"" + json::escape(*value) +
               "\"";
      }
      if (rc != 0) return rc;
    }
    if (const auto cycles = positive_int_flag(args, "max-cycles", rc)) {
      out += ", \"max_cycles\": " + std::to_string(*cycles);
    }
    if (const auto tenants = positive_int_flag(args, "tenants", rc, 64)) {
      out += ", \"tenants\": " + std::to_string(*tenants);
    }
    if (const auto every = positive_int_flag(args, "preempt-every", rc)) {
      out += ", \"preempt_every\": " + std::to_string(*every);
    }
    if (rc != 0) return rc;
    if (args.has("preempt-serialize")) {
      out += ", \"preempt_serialize\": true";
    }
    if (args.has("no-predecode")) out += ", \"predecode\": false";
  }
  out += "}";
  payload = std::move(out);
  return 0;
}

/// Digs `object.member` out of a reply ("cache.compiles"); nullopt when the
/// reply lacks it.
std::optional<std::uint64_t> nested_reply_uint(const json::Value& reply,
                                               std::string_view object,
                                               std::string_view member) {
  const json::Value* group = reply.find(object);
  if (group == nullptr || !group->is_object()) return std::nullopt;
  const json::Value* value = group->find(member);
  if (value == nullptr) return std::nullopt;
  return value->as_uint();
}

/// The sweep action: prints/writes the rendered report carried by the
/// reply (byte-identical to the local `sweep --from-file` rendering) and
/// enforces the --expect-zero-* warm-serving assertions.
int client_sweep_reply(const cli::Args& args, const json::Value& reply) {
  auto output = server::reply_string(reply, "output");
  if (!output.ok()) return toolchain_error(output.error());
  int rc = 0;
  const auto out_path = nonempty_value(args, "out", rc);
  if (rc != 0) return rc;
  if (out_path) {
    std::ofstream file(*out_path, std::ios::binary);
    file << output.value();
    file.flush();
    if (!file.good()) {
      return toolchain_error(
          Error{ErrorCode::kIo, "cannot write '" + *out_path + "'"});
    }
  } else {
    std::fputs(output.value().c_str(), stdout);
  }
  const auto compiles = nested_reply_uint(reply, "cache", "compiles");
  const auto prepares = nested_reply_uint(reply, "prepares", "full");
  if (args.has("expect-zero-compiles") && compiles.value_or(1) != 0) {
    return toolchain_error(Error{
        ErrorCode::kVerifyMismatch,
        std::to_string(compiles.value_or(0)) +
            " unit(s) compiled despite --expect-zero-compiles (the "
            "daemon's warm cache should have served them)"});
  }
  if (args.has("expect-zero-prepares") && prepares.value_or(1) != 0) {
    return toolchain_error(Error{
        ErrorCode::kVerifyMismatch,
        std::to_string(prepares.value_or(0)) +
            " full table prepare(s) despite --expect-zero-prepares (the "
            "daemon's prepared images should have been reused)"});
  }
  return 0;
}

/// The bench-suite action: writes the BENCH_<suite>.json artifact carried
/// by the reply into --out-dir.
int client_bench_reply(const cli::Args& args, const json::Value& reply) {
  auto name = server::reply_string(reply, "artifact_name");
  if (!name.ok()) return toolchain_error(name.error());
  auto artifact = server::reply_string(reply, "artifact");
  if (!artifact.ok()) return toolchain_error(artifact.error());
  int rc = 0;
  std::string out_dir = ".";
  if (const auto dir = nonempty_value(args, "out-dir", rc)) out_dir = *dir;
  if (rc != 0) return rc;
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return toolchain_error(Error{ErrorCode::kIo,
                                 "cannot create artifact directory '" +
                                     out_dir + "': " + ec.message()});
  }
  const std::string path = out_dir + "/" + name.value();
  std::ofstream file(path, std::ios::binary);
  file << artifact.value();
  file.flush();
  if (!file.good()) {
    return toolchain_error(
        Error{ErrorCode::kIo, "cannot write '" + path + "'"});
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

int cmd_client(const cli::Args& args) {
  if (args.positional.empty()) {
    return usage_error(
        "client requires an action (ping, compile, run, sweep, "
        "bench-suite, store-stat, stats, shutdown)");
  }
  const std::string& action = args.positional.front();
  if (const int rc = reject_unknown_flags(
          args,
          {"socket", "machine", "geometry", "config", "mode", "max-cycles",
           "tenants", "preempt-every", "from-file", "format", "out",
           "out-dir"},
          {"preempt-serialize", "no-predecode", "expect-zero-compiles",
           "expect-zero-prepares"})) {
    return rc;
  }
  int rc = 0;
  const auto socket = nonempty_value(args, "socket", rc);
  if (rc != 0) return rc;
  if (!socket) return usage_error("client requires --socket=PATH");

  std::string payload;
  if (action == "ping") {
    payload = server::simple_request(server::RequestType::kPing);
  } else if (action == "stats") {
    payload = server::simple_request(server::RequestType::kStats);
  } else if (action == "store-stat") {
    payload = server::simple_request(server::RequestType::kStoreStat);
  } else if (action == "shutdown") {
    payload = server::simple_request(server::RequestType::kShutdown);
  } else if (action == "compile" || action == "run") {
    if (const int unit_rc =
            build_client_unit_request(args, action.c_str(), payload)) {
      return unit_rc;
    }
  } else if (action == "sweep" || action == "bench-suite") {
    const auto suite_path = nonempty_value(args, "from-file", rc);
    if (rc != 0) return rc;
    if (!suite_path) {
      return usage_error("client " + action + " requires --from-file=SUITE");
    }
    auto text = read_text_file(*suite_path);
    if (!text.ok()) return toolchain_error(text.error());
    if (action == "sweep") {
      bool json_format = false;
      if (const auto format = nonempty_value(args, "format", rc)) {
        if (*format != "csv" && *format != "json") {
          return usage_error("bad --format value '" + *format +
                             "' (csv or json)");
        }
        json_format = *format == "json";
      }
      if (rc != 0) return rc;
      auto request = server::sweep_request(text.value(), json_format);
      if (!request.ok()) return toolchain_error(request.error());
      payload = std::move(request).value();
    } else {
      auto request = server::bench_suite_request(text.value());
      if (!request.ok()) return toolchain_error(request.error());
      payload = std::move(request).value();
    }
  } else {
    return usage_error("unknown client action '" + action + "'");
  }

  auto client = server::Client::connect(*socket);
  if (!client.ok()) return toolchain_error(client.error());
  auto raw = client.value().call_raw(payload);
  if (!raw.ok()) return toolchain_error(raw.error());
  auto reply = server::parse_reply(raw.value());
  if (!reply.ok()) return toolchain_error(reply.error());

  if (action == "sweep") return client_sweep_reply(args, reply.value());
  if (action == "bench-suite") return client_bench_reply(args, reply.value());
  std::printf("%s\n", raw.value().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing command");
  const std::string command = argv[1];
  const cli::Args args = cli::Args::parse(argc, argv, 2);
  if (command == "list") return cmd_list();
  if (command == "compile") return cmd_compile(args);
  if (command == "run") return cmd_run(args);
  if (command == "sweep") return cmd_sweep(args);
  if (command == "bench") return cmd_bench(args);
  if (command == "store") return cmd_store(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "client") return cmd_client(args);
  if (command == "help" || command == "--help" || command == "-h") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  return usage_error("unknown command '" + command + "'");
}
