// Argument parsing for the zolcsim CLI driver: string forms of the
// machine / geometry / pipeline-config axes, matching the names the sweep
// emitters print (machine_name, ZolcGeometry::label, config_name), so CSV
// output and CLI input round-trip.
#ifndef ZOLCSIM_TOOLS_ZOLCSIM_CLI_HPP
#define ZOLCSIM_TOOLS_ZOLCSIM_CLI_HPP

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/program.hpp"
#include "common/result.hpp"
#include "cpu/pipeline.hpp"
#include "scenario/parse.hpp"
#include "zolc/config.hpp"

namespace zolcsim::cli {

/// "XRdefault" | "XRhrdwil" | "uZOLC" | "ZOLClite" | "ZOLCfull"
/// (case-insensitive). Error: kBadConfig. Thin wrappers over
/// scenario::parse_* -- one grammar for flags and suite files.
[[nodiscard]] Result<codegen::MachineKind> parse_machine(std::string_view s);

/// "Nt-Nl-Nx-Ne[-pB]" -- the ZolcGeometry::label() form, e.g. "32t-8l-4x-4e"
/// or "64t-12l-4x-4e-p14". Error: kBadConfig.
[[nodiscard]] Result<zolc::ZolcGeometry> parse_geometry(std::string_view s);

/// "EX-resolve|ID-resolve" "/rollback|/gate" ["/nofwd"] -- the
/// harness::config_name() form. Error: kBadConfig.
[[nodiscard]] Result<cpu::PipelineConfig> parse_config(std::string_view s);

/// "pipeline" | "iss" | "iss-fast" -- the harness::mode_name() form.
/// Error: kBadConfig.
[[nodiscard]] Result<harness::ExecMode> parse_mode(std::string_view s);

/// Flag helpers over argv (skipping argv[0] and the subcommand).
struct Args {
  std::vector<std::string> positional;
  std::vector<std::string> flags;  ///< "--..." tokens, in order

  [[nodiscard]] static Args parse(int argc, char** argv, int skip);

  /// Value of "--name=value"; nullopt when the flag is absent. An explicit
  /// empty value ("--name=") returns an empty string so callers can reject
  /// it instead of silently falling back to a default.
  [[nodiscard]] std::optional<std::string> value_of(
      std::string_view name) const;
  [[nodiscard]] bool has(std::string_view name) const;
  /// Flags that are neither in `known_values` (as --k=v) nor in
  /// `known_switches` (as bare --k); non-empty means a usage error.
  [[nodiscard]] std::vector<std::string> unknown(
      const std::vector<std::string_view>& known_values,
      const std::vector<std::string_view>& known_switches) const;
};

/// Splits "a,b,c" (empty input -> empty vector).
[[nodiscard]] std::vector<std::string> split_list(std::string_view s);

/// Renders an Error for the terminal: "error[code]: trail".
[[nodiscard]] std::string render_error(const Error& error);

}  // namespace zolcsim::cli

#endif  // ZOLCSIM_TOOLS_ZOLCSIM_CLI_HPP
