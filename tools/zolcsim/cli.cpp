#include "cli.hpp"

#include "common/strings.hpp"

namespace zolcsim::cli {

// The axis grammars themselves live in the library (scenario/parse) so the
// scenario-suite parser and the CLI accept exactly the same strings; the
// cli:: names are kept as the tool-facing surface.

Result<codegen::MachineKind> parse_machine(std::string_view s) {
  return scenario::parse_machine(s);
}

Result<zolc::ZolcGeometry> parse_geometry(std::string_view s) {
  return scenario::parse_geometry(s);
}

Result<cpu::PipelineConfig> parse_config(std::string_view s) {
  return scenario::parse_config(s);
}

Result<harness::ExecMode> parse_mode(std::string_view s) {
  return scenario::parse_mode(s);
}

Args Args::parse(int argc, char** argv, int skip) {
  Args args;
  for (int i = skip; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (starts_with(arg, "--")) {
      args.flags.emplace_back(arg);
    } else {
      args.positional.emplace_back(arg);
    }
  }
  return args;
}

std::optional<std::string> Args::value_of(std::string_view name) const {
  const std::string prefix = "--" + std::string(name) + "=";
  for (const std::string& flag : flags) {
    if (starts_with(flag, prefix)) return flag.substr(prefix.size());
  }
  return std::nullopt;
}

bool Args::has(std::string_view name) const {
  const std::string bare = "--" + std::string(name);
  for (const std::string& flag : flags) {
    if (flag == bare) return true;
  }
  return false;
}

std::vector<std::string> Args::unknown(
    const std::vector<std::string_view>& known_values,
    const std::vector<std::string_view>& known_switches) const {
  std::vector<std::string> out;
  for (const std::string& flag : flags) {
    bool known = false;
    for (const std::string_view name : known_values) {
      if (starts_with(flag, "--" + std::string(name) + "=")) {
        known = true;
        break;
      }
    }
    for (const std::string_view name : known_switches) {
      if (flag == "--" + std::string(name)) {
        known = true;
        break;
      }
    }
    if (!known) out.push_back(flag);
  }
  return out;
}

std::vector<std::string> split_list(std::string_view s) {
  std::vector<std::string> out;
  if (s.empty()) return out;
  for (const std::string_view item : split(s, ',')) {
    out.emplace_back(item);
  }
  return out;
}

std::string render_error(const Error& error) {
  return "error[" + std::string(error_code_name(error.code)) + "]: " +
         error.to_string();
}

}  // namespace zolcsim::cli
