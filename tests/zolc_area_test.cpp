// The Section-3 resource numbers: storage bytes, equivalent gates, and the
// "cycle time not affected" timing claim.
#include <gtest/gtest.h>

#include "zolc/area_model.hpp"

namespace zolcsim::zolc {
namespace {

TEST(AreaModel, StorageBytesMatchPaper) {
  EXPECT_EQ(area_model(ZolcVariant::kMicro).storage_bytes, 30u);
  EXPECT_EQ(area_model(ZolcVariant::kLite).storage_bytes, 258u);
  EXPECT_EQ(area_model(ZolcVariant::kFull).storage_bytes, 642u);
}

TEST(AreaModel, StorageDerivesFromTableGeometry) {
  // Lite = task LUT + task-start + loop table + status register.
  const auto lite = area_model(ZolcVariant::kLite);
  EXPECT_EQ(lite.storage_bits, 32u * 32 + 32 * 16 + 8 * 64 + 16);
  // Full adds exactly the 64 exit/entry records of 48 bits.
  const auto full = area_model(ZolcVariant::kFull);
  EXPECT_EQ(full.storage_bits - lite.storage_bits, 64u * 48);
}

TEST(AreaModel, EquivalentGatesMatchPaper) {
  EXPECT_DOUBLE_EQ(area_model(ZolcVariant::kMicro).total_gates, 298.0);
  EXPECT_DOUBLE_EQ(area_model(ZolcVariant::kLite).total_gates, 4056.0);
  EXPECT_DOUBLE_EQ(area_model(ZolcVariant::kFull).total_gates, 4428.0);
}

TEST(AreaModel, GlueTermIsSmallAndPositive) {
  for (const auto variant :
       {ZolcVariant::kMicro, ZolcVariant::kLite, ZolcVariant::kFull}) {
    const auto b = area_model(variant);
    EXPECT_GT(b.glue_gates, 0.0) << variant_name(variant);
    EXPECT_LE(b.glue_gates, 0.15 * b.total_gates) << variant_name(variant);
    EXPECT_DOUBLE_EQ(b.structural_gates + b.glue_gates, b.total_gates);
  }
}

TEST(AreaModel, BreakdownItemsSumToStructural) {
  for (const auto variant :
       {ZolcVariant::kMicro, ZolcVariant::kLite, ZolcVariant::kFull}) {
    const auto b = area_model(variant);
    double sum = 0.0;
    for (const auto& item : b.items) sum += item.gates;
    EXPECT_DOUBLE_EQ(sum, b.structural_gates);
    EXPECT_FALSE(b.items.empty());
  }
}

TEST(AreaModel, VariantsScaleMonotonically) {
  const auto micro = area_model(ZolcVariant::kMicro);
  const auto lite = area_model(ZolcVariant::kLite);
  const auto full = area_model(ZolcVariant::kFull);
  EXPECT_LT(micro.total_gates, lite.total_gates);
  EXPECT_LT(lite.total_gates, full.total_gates);
  EXPECT_LT(micro.storage_bytes, lite.storage_bytes);
  EXPECT_LT(lite.storage_bytes, full.storage_bytes);
}

TEST(TimingModel, ZolcPathDoesNotLimitTheClock) {
  for (const auto variant :
       {ZolcVariant::kMicro, ZolcVariant::kLite, ZolcVariant::kFull}) {
    const auto t = timing_model(variant);
    EXPECT_LT(t.zolc_critical_ns, t.cpu_critical_ns) << variant_name(variant);
    EXPECT_FALSE(t.zolc_limits_clock);
  }
}

TEST(TimingModel, FmaxAboutOneSeventyMHz) {
  const auto t = timing_model(ZolcVariant::kFull);
  EXPECT_NEAR(t.fmax_mhz, 170.0, 1.0);
}

TEST(Geometry, PaperConfigurationMatchesPaper) {
  // "ZOLCfull refers to a ZOLC supporting 32 task switching entries, and
  //  8-loop structure with up to 4 entries/exits per loop."
  const auto full = ZolcGeometry::paper(ZolcVariant::kFull);
  EXPECT_EQ(full.max_tasks, 32u);
  EXPECT_EQ(full.max_loops, 8u);
  EXPECT_EQ(full.max_exits_per_loop, 4u);
  EXPECT_EQ(full.max_entries_per_loop, 4u);
  EXPECT_EQ(full, ZolcGeometry{});  // the default geometry IS the paper's
  const auto lite = ZolcGeometry::paper(ZolcVariant::kLite);
  EXPECT_EQ(lite.max_exits_per_loop, 0u);
  const auto micro = ZolcGeometry::paper(ZolcVariant::kMicro);
  EXPECT_EQ(micro.max_loops, 1u);
  EXPECT_EQ(micro.max_tasks, 0u);
}

TEST(Geometry, DerivedFieldWidthsAndValidation) {
  const ZolcGeometry paper;
  EXPECT_EQ(paper.task_id_bits(), 5u);
  EXPECT_EQ(paper.loop_id_bits(), 3u);
  EXPECT_EQ(paper.task_entry_bits(), 31u);   // 16 + 3 + 2*5 + 2
  EXPECT_EQ(paper.exit_record_bits(), 32u);  // 16 + 5 + 8 + 3
  EXPECT_EQ(paper.record_words(), 1u);
  EXPECT_TRUE(paper.valid());

  // A deeper geometry: 16 loops still packs a task entry into one word.
  const ZolcGeometry deep{32, 16, 4, 4};
  EXPECT_EQ(deep.loop_id_bits(), 4u);
  EXPECT_EQ(deep.task_entry_bits(), 32u);
  EXPECT_TRUE(deep.valid());
  // Its exit records spill into a second init word (16+5+16+3 = 40 bits).
  EXPECT_EQ(deep.record_words(), 2u);

  // Too many loops for the snapshot machinery / too many ids for the word.
  EXPECT_FALSE((ZolcGeometry{32, 64, 4, 4}.valid()));
  EXPECT_FALSE((ZolcGeometry{256, 32, 4, 4}.valid()));
  EXPECT_FALSE((ZolcGeometry{32, 8, 4, 4, 4}.valid()));  // pc_ofs too narrow
}

TEST(AreaModel, ExtendedGeometryScalesStorage) {
  // Doubling the loop table adds exactly 8 x 64 storage bits on ZOLClite.
  const auto paper = area_model(ZolcVariant::kLite);
  const auto deeper = area_model(ZolcVariant::kLite, ZolcGeometry{32, 16, 0, 0});
  EXPECT_EQ(deeper.storage_bits - paper.storage_bits, 8u * 64);
  // Geometry with fewer tasks shrinks the LUT: 16 x (32+16) bits less.
  const auto smaller = area_model(ZolcVariant::kLite, ZolcGeometry{16, 8, 0, 0});
  EXPECT_EQ(paper.storage_bits - smaller.storage_bits, 16u * 48);
  // uZOLC storage is geometry-independent.
  EXPECT_EQ(area_model(ZolcVariant::kMicro, ZolcGeometry{32, 16, 4, 4})
                .storage_bytes,
            30u);
  // Structural gates grow monotonically with the geometry.
  const auto full_paper = area_model(ZolcVariant::kFull);
  const auto full_big = area_model(ZolcVariant::kFull, ZolcGeometry{32, 16, 4, 4});
  EXPECT_GT(full_big.structural_gates, full_paper.structural_gates);
  EXPECT_GT(full_big.storage_bytes, full_paper.storage_bytes);
}

}  // namespace
}  // namespace zolcsim::zolc
