// The Section-3 resource numbers: storage bytes, equivalent gates, and the
// "cycle time not affected" timing claim.
#include <gtest/gtest.h>

#include "zolc/area_model.hpp"

namespace zolcsim::zolc {
namespace {

TEST(AreaModel, StorageBytesMatchPaper) {
  EXPECT_EQ(area_model(ZolcVariant::kMicro).storage_bytes, 30u);
  EXPECT_EQ(area_model(ZolcVariant::kLite).storage_bytes, 258u);
  EXPECT_EQ(area_model(ZolcVariant::kFull).storage_bytes, 642u);
}

TEST(AreaModel, StorageDerivesFromTableGeometry) {
  // Lite = task LUT + task-start + loop table + status register.
  const auto lite = area_model(ZolcVariant::kLite);
  EXPECT_EQ(lite.storage_bits, 32u * 32 + 32 * 16 + 8 * 64 + 16);
  // Full adds exactly the 64 exit/entry records of 48 bits.
  const auto full = area_model(ZolcVariant::kFull);
  EXPECT_EQ(full.storage_bits - lite.storage_bits, 64u * 48);
}

TEST(AreaModel, EquivalentGatesMatchPaper) {
  EXPECT_DOUBLE_EQ(area_model(ZolcVariant::kMicro).total_gates, 298.0);
  EXPECT_DOUBLE_EQ(area_model(ZolcVariant::kLite).total_gates, 4056.0);
  EXPECT_DOUBLE_EQ(area_model(ZolcVariant::kFull).total_gates, 4428.0);
}

TEST(AreaModel, GlueTermIsSmallAndPositive) {
  for (const auto variant :
       {ZolcVariant::kMicro, ZolcVariant::kLite, ZolcVariant::kFull}) {
    const auto b = area_model(variant);
    EXPECT_GT(b.glue_gates, 0.0) << variant_name(variant);
    EXPECT_LE(b.glue_gates, 0.15 * b.total_gates) << variant_name(variant);
    EXPECT_DOUBLE_EQ(b.structural_gates + b.glue_gates, b.total_gates);
  }
}

TEST(AreaModel, BreakdownItemsSumToStructural) {
  for (const auto variant :
       {ZolcVariant::kMicro, ZolcVariant::kLite, ZolcVariant::kFull}) {
    const auto b = area_model(variant);
    double sum = 0.0;
    for (const auto& item : b.items) sum += item.gates;
    EXPECT_DOUBLE_EQ(sum, b.structural_gates);
    EXPECT_FALSE(b.items.empty());
  }
}

TEST(AreaModel, VariantsScaleMonotonically) {
  const auto micro = area_model(ZolcVariant::kMicro);
  const auto lite = area_model(ZolcVariant::kLite);
  const auto full = area_model(ZolcVariant::kFull);
  EXPECT_LT(micro.total_gates, lite.total_gates);
  EXPECT_LT(lite.total_gates, full.total_gates);
  EXPECT_LT(micro.storage_bytes, lite.storage_bytes);
  EXPECT_LT(lite.storage_bytes, full.storage_bytes);
}

TEST(TimingModel, ZolcPathDoesNotLimitTheClock) {
  for (const auto variant :
       {ZolcVariant::kMicro, ZolcVariant::kLite, ZolcVariant::kFull}) {
    const auto t = timing_model(variant);
    EXPECT_LT(t.zolc_critical_ns, t.cpu_critical_ns) << variant_name(variant);
    EXPECT_FALSE(t.zolc_limits_clock);
  }
}

TEST(TimingModel, FmaxAboutOneSeventyMHz) {
  const auto t = timing_model(ZolcVariant::kFull);
  EXPECT_NEAR(t.fmax_mhz, 170.0, 1.0);
}

TEST(Capacity, MatchesPaperConfiguration) {
  // "ZOLCfull refers to a ZOLC supporting 32 task switching entries, and
  //  8-loop structure with up to 4 entries/exits per loop."
  const auto full = capacity(ZolcVariant::kFull);
  EXPECT_EQ(full.max_tasks, 32u);
  EXPECT_EQ(full.max_loops, 8u);
  EXPECT_EQ(full.max_exits_per_loop, 4u);
  EXPECT_EQ(full.max_entries_per_loop, 4u);
  const auto lite = capacity(ZolcVariant::kLite);
  EXPECT_EQ(lite.max_exits_per_loop, 0u);
  const auto micro = capacity(ZolcVariant::kMicro);
  EXPECT_EQ(micro.max_loops, 1u);
  EXPECT_EQ(micro.max_tasks, 0u);
}

}  // namespace
}  // namespace zolcsim::zolc
