// Staged-toolchain behaviour: compile-once artifacts, workload prep/verify,
// the compile cache, and the structured error codes each stage reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "flow/cache.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/run.hpp"
#include "flow/workload.hpp"
#include "harness/experiment.hpp"
#include "isa/build.hpp"
#include "isa/encoding.hpp"

namespace zolcsim::flow {
namespace {

using codegen::MachineKind;
namespace b = isa::build;

/// Ad-hoc kernel for error-path tests: caller-supplied KIR and verify.
class TestKernel : public kernels::Kernel {
 public:
  TestKernel(std::vector<codegen::KNode> kir,
             std::function<Result<void>(const kernels::KernelEnv&,
                                        const mem::Memory&)>
                 verify = nullptr)
      : kir_(std::move(kir)), verify_(std::move(verify)) {}

  [[nodiscard]] std::string_view name() const override { return "test"; }
  [[nodiscard]] std::string_view description() const override {
    return "flow_test ad-hoc kernel";
  }
  [[nodiscard]] std::vector<codegen::KNode> build(
      const kernels::KernelEnv&) const override {
    return kir_;
  }
  void setup(const kernels::KernelEnv&, mem::Memory&) const override {
    if (setup_count_ != nullptr) ++*setup_count_;
  }
  [[nodiscard]] Result<void> verify(const kernels::KernelEnv& env,
                                    const mem::Memory& memory) const override {
    if (verify_) return verify_(env, memory);
    return {};
  }

  /// Counts every setup() call into `*count` (for prepare-count tests).
  void count_setups(int* count) { setup_count_ = count; }

 private:
  std::vector<codegen::KNode> kir_;
  std::function<Result<void>(const kernels::KernelEnv&, const mem::Memory&)>
      verify_;
  int* setup_count_ = nullptr;
};

CompileSpec spec_for(std::string kernel, MachineKind machine,
                     zolc::ZolcGeometry geometry = {}) {
  CompileSpec spec;
  spec.kernel = std::move(kernel);
  spec.machine = machine;
  spec.geometry = geometry;
  return spec;
}

// ---------------- compile stage ----------------

TEST(CompiledUnit, CarriesAllCompileStageArtifacts) {
  const auto unit =
      CompiledUnit::compile(spec_for("dotprod", MachineKind::kZolcLite));
  ASSERT_TRUE(unit.ok()) << unit.error().to_string();
  const CompiledUnit& u = unit.value();

  EXPECT_EQ(u.spec().kernel, "dotprod");
  EXPECT_EQ(u.machine(), MachineKind::kZolcLite);
  EXPECT_GT(u.program().size_words(), 0u);
  EXPECT_EQ(u.program().machine, MachineKind::kZolcLite);
  // Predecoded image views the unit's own code.
  EXPECT_EQ(u.image().size_words, u.program().code.size());
  EXPECT_EQ(u.image().code, u.program().code.data());
  // Disassembly covers every word.
  const std::string disasm = u.disassembly();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(disasm.begin(), disasm.end(), '\n')),
            u.program().size_words());
}

TEST(CompiledUnit, ScanMetadataFindsSoftwareCountedLoops) {
  // The software lowering keeps the counted-loop back-edge idiom zolcscan
  // recovers; the ZOLC lowering erases it (loops are hardware-managed).
  const auto sw =
      CompiledUnit::compile(spec_for("dotprod", MachineKind::kXrDefault));
  ASSERT_TRUE(sw.ok());
  EXPECT_FALSE(sw.value().scan().candidates.empty());

  const auto hw =
      CompiledUnit::compile(spec_for("dotprod", MachineKind::kZolcLite));
  ASSERT_TRUE(hw.ok());
  EXPECT_TRUE(hw.value().scan().candidates.empty());
}

TEST(CompiledUnit, UnknownKernelNameReportsCode) {
  const auto unit =
      CompiledUnit::compile(spec_for("no_such_kernel", MachineKind::kUZolc));
  ASSERT_FALSE(unit.ok());
  EXPECT_EQ(unit.error().code, ErrorCode::kUnknownKernel);
}

TEST(CompiledUnit, InvalidGeometryReportsCode) {
  const auto unit = CompiledUnit::compile(
      spec_for("dotprod", MachineKind::kZolcLite, {32, 64, 4, 4}));
  ASSERT_FALSE(unit.ok());
  EXPECT_EQ(unit.error().code, ErrorCode::kBadConfig);
}

TEST(CompiledUnit, ReservedRegisterUseReportsCode) {
  // r24-r27 are the lowering's pool registers; kernels must not touch them.
  codegen::KernelBuilder kb;
  kb.for_count(1, 0, 4, 1, [&] { kb.op(b::addi(24, 24, 1)); });
  const TestKernel kernel(kb.take());
  const auto unit = CompiledUnit::compile(
      kernel, spec_for("test", MachineKind::kXrDefault));
  ASSERT_FALSE(unit.ok());
  EXPECT_EQ(unit.error().code, ErrorCode::kInvalidKernel);
}

TEST(CompiledUnit, CapacityOverrunWithoutFallbackReportsCode) {
  // A ~300-word body cannot fit an 8-bit PC-offset window, and there is no
  // software fallback for table offset widths -- the compile must fail with
  // kCapacity (not a silently aliased program).
  codegen::KernelBuilder kb;
  kb.for_count(1, 0, 4, 1, [&] {
    for (int i = 0; i < 300; ++i) kb.op(b::nop());
  });
  const TestKernel kernel(kb.take());
  const auto unit = CompiledUnit::compile(
      kernel, spec_for("test", MachineKind::kZolcLite, {32, 8, 0, 0, 8}));
  ASSERT_FALSE(unit.ok());
  EXPECT_EQ(unit.error().code, ErrorCode::kCapacity);
  EXPECT_NE(unit.error().to_string().find("PC-offset window"),
            std::string::npos);
}

// ---------------- runtime stage ----------------

TEST(FlowRun, OneUnitRunsManyConfigsMatchingTheCompatWrapper) {
  const kernels::Kernel* kernel = kernels::find_kernel("fir");
  ASSERT_NE(kernel, nullptr);
  const auto unit =
      CompiledUnit::compile(spec_for("fir", MachineKind::kZolcLite));
  ASSERT_TRUE(unit.ok());

  const cpu::PipelineConfig configs[] = {
      {cpu::BranchResolveStage::kExecute, cpu::SpeculationPolicy::kRollback,
       true},
      {cpu::BranchResolveStage::kDecode, cpu::SpeculationPolicy::kGate, true},
      {cpu::BranchResolveStage::kExecute, cpu::SpeculationPolicy::kRollback,
       false}};
  for (const cpu::PipelineConfig& config : configs) {
    RunPlan plan;
    plan.config = config;
    const auto staged = run(unit.value(), plan);
    ASSERT_TRUE(staged.ok()) << staged.error().to_string();
    const auto compat =
        harness::run_experiment(*kernel, MachineKind::kZolcLite, {}, config);
    ASSERT_TRUE(compat.ok());
    EXPECT_EQ(staged.value().stats.cycles, compat.value().stats.cycles);
    EXPECT_EQ(staged.value().stats.instructions,
              compat.value().stats.instructions);
    EXPECT_EQ(staged.value().zolc_stats.continue_events,
              compat.value().zolc_stats.continue_events);
  }
}

TEST(FlowRun, CycleBudgetReportsSimulationCode) {
  const auto unit =
      CompiledUnit::compile(spec_for("me_fsbm", MachineKind::kXrDefault));
  ASSERT_TRUE(unit.ok());
  RunPlan plan;
  plan.max_cycles = 100;
  const auto result = run(unit.value(), plan);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kSimulation);
}

TEST(FlowRun, VerificationMismatchReportsCode) {
  // The program stores 1; the verify closure demands 2.
  codegen::KernelBuilder kb;
  kb.li(8, 0x0012'0000);
  kb.for_count(1, 0, 1, 1, [&] {
    kb.op(b::addi(2, 0, 1));
    kb.op(b::sw(2, 0, 8));
  });
  const TestKernel kernel(
      kb.take(), [](const kernels::KernelEnv& env, const mem::Memory& memory) {
        return kernels::detail::check_words(memory, env.out_base, {2}, "out");
      });
  const auto unit = CompiledUnit::compile(
      kernel, spec_for("test", MachineKind::kXrDefault));
  ASSERT_TRUE(unit.ok()) << unit.error().to_string();
  const auto result = run(unit.value());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kVerifyMismatch);
}

TEST(Workload, PrepareLoadsProgramImageAndIsConsumedPerRun) {
  const auto unit =
      CompiledUnit::compile(spec_for("dotprod", MachineKind::kXrDefault));
  ASSERT_TRUE(unit.ok());
  Workload workload = Workload::prepare(unit.value());
  // The first program word is encoded at env.code_base.
  EXPECT_EQ(workload.memory().read32(unit.value().env().code_base),
            isa::encode(unit.value().program().code.front()));
  // Two independent workloads from one unit give identical runs.
  Workload second = Workload::prepare(unit.value());
  const auto a = run(unit.value(), workload, {});
  const auto s = run(unit.value(), second, {});
  ASSERT_TRUE(a.ok() && s.ok());
  EXPECT_EQ(a.value().stats.cycles, s.value().stats.cycles);
}

// ---------------- warm-start run path ----------------

/// A runnable TestKernel: stores 1 to out_base, verify accepts it.
TestKernel make_store_one_kernel() {
  codegen::KernelBuilder kb;
  kb.li(8, 0x0012'0000);
  kb.for_count(1, 0, 1, 1, [&] {
    kb.op(b::addi(2, 0, 1));
    kb.op(b::sw(2, 0, 8));
  });
  return TestKernel(
      kb.take(), [](const kernels::KernelEnv& env, const mem::Memory& memory) {
        return kernels::detail::check_words(memory, env.out_base, {1}, "out");
      });
}

TEST(CompiledUnit, PreparedImageIsBuiltOnceAndShared) {
  TestKernel kernel = make_store_one_kernel();
  int setups = 0;
  kernel.count_setups(&setups);
  const auto unit = CompiledUnit::compile(
      kernel, spec_for("test", MachineKind::kXrDefault));
  ASSERT_TRUE(unit.ok()) << unit.error().to_string();

  const auto image = unit.value().prepared_image();
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(setups, 1);
  EXPECT_EQ(unit.value().prepared_image().get(), image.get());
  // Copies of the unit share the cached image (ImageSlot is shared).
  const CompiledUnit copy = unit.value();
  EXPECT_EQ(copy.prepared_image().get(), image.get());
  EXPECT_EQ(setups, 1);
  // The image holds the loaded program and starts with clean stats.
  EXPECT_EQ(image->fetch32(unit.value().env().code_base),
            isa::encode(unit.value().program().code.front()));
  EXPECT_EQ(image->stats().writes, 0u);
}

TEST(FlowRun, WarmStartPreparesOnceAcrossTimingReps) {
  TestKernel kernel = make_store_one_kernel();
  int setups = 0;
  kernel.count_setups(&setups);
  const auto unit = CompiledUnit::compile(
      kernel, spec_for("test", MachineKind::kXrDefault));
  ASSERT_TRUE(unit.ok()) << unit.error().to_string();

  RunPlan plan;
  plan.timing_reps = 3;
  plan.warm_start = true;
  const auto warm = run(unit.value(), plan);
  ASSERT_TRUE(warm.ok()) << warm.error().to_string();
  EXPECT_EQ(setups, 1);  // one prepared-image build serves every rep
  EXPECT_EQ(warm.value().image_resets, 2u);
  EXPECT_EQ(warm.value().full_prepares, 0u);

  setups = 0;
  plan.warm_start = false;
  const auto cold = run(unit.value(), plan);
  ASSERT_TRUE(cold.ok()) << cold.error().to_string();
  EXPECT_EQ(setups, 3);  // one full rebuild per rep, none shared
  EXPECT_EQ(cold.value().image_resets, 0u);
  EXPECT_EQ(cold.value().full_prepares, 3u);

  // The run path is architecturally invisible.
  EXPECT_EQ(warm.value().stats.cycles, cold.value().stats.cycles);
  EXPECT_EQ(warm.value().stats.instructions,
            cold.value().stats.instructions);
}

TEST(FlowRun, SingleRepPreparesExactlyOnce) {
  // Regression pin for the historical double-prepare: the fresh-workload
  // run() overload must not build one image just to throw it away.
  TestKernel kernel = make_store_one_kernel();
  int setups = 0;
  kernel.count_setups(&setups);
  const auto unit = CompiledUnit::compile(
      kernel, spec_for("test", MachineKind::kXrDefault));
  ASSERT_TRUE(unit.ok());

  RunPlan cold;
  cold.warm_start = false;
  ASSERT_TRUE(run(unit.value(), cold).ok());
  EXPECT_EQ(setups, 1);

  setups = 0;
  RunPlan warm;
  warm.warm_start = true;
  ASSERT_TRUE(run(unit.value(), warm).ok());
  EXPECT_EQ(setups, 1);
}

TEST(Workload, WarmViewMatchesColdAcrossRegistryKernels) {
  const auto unit =
      CompiledUnit::compile(spec_for("conv2d", MachineKind::kZolcFull));
  ASSERT_TRUE(unit.ok());
  Workload cold = Workload::prepare(unit.value());
  Workload warm = Workload::prepare_warm(unit.value());
  EXPECT_FALSE(cold.warm());
  EXPECT_TRUE(warm.warm());
  EXPECT_TRUE(cold.memory() == warm.memory());

  const auto a = run(unit.value(), cold, {});
  const auto b = run(unit.value(), warm, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().stats.cycles, b.value().stats.cycles);
  EXPECT_EQ(a.value().stats.instructions, b.value().stats.instructions);
  EXPECT_TRUE(cold.memory() == warm.memory());  // same final image

  // reset() restores both to the pristine image.
  cold.reset();
  warm.reset();
  EXPECT_TRUE(cold.memory() == warm.memory());
  EXPECT_EQ(warm.memory().stats().writes, 0u);
}

// ---------------- compile cache ----------------

TEST(CompileCache, HitsAfterFirstCompileAndKeysOnEveryAxis) {
  CompileCache cache;
  const CompileSpec spec = spec_for("dotprod", MachineKind::kZolcLite);
  const auto first = cache.get_or_compile(spec);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  const auto again = cache.get_or_compile(spec);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(first.value().get(), again.value().get());  // shared, not copied

  // Any axis change is a different unit: machine, geometry, env.
  auto other_machine =
      cache.get_or_compile(spec_for("dotprod", MachineKind::kZolcFull));
  auto other_geometry = cache.get_or_compile(
      spec_for("dotprod", MachineKind::kZolcLite, {32, 12, 0, 0}));
  CompileSpec other_env = spec;
  other_env.env.scale = 2;
  auto scaled = cache.get_or_compile(other_env);
  ASSERT_TRUE(other_machine.ok() && other_geometry.ok() && scaled.ok());
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(CompileCache, FailedCompilesAreNotCached) {
  CompileCache cache;
  const CompileSpec bad = spec_for("no_such_kernel", MachineKind::kUZolc);
  EXPECT_FALSE(cache.get_or_compile(bad).ok());
  EXPECT_FALSE(cache.get_or_compile(bad).ok());
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace zolcsim::flow
