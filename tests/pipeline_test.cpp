// Cycle-accurate pipeline behaviour: exact cycle counts for hazard and
// penalty scenarios, plus randomized ISS co-simulation.
#include <gtest/gtest.h>

#include <random>

#include "sim_test_util.hpp"

namespace zolcsim::cpu {
namespace {

namespace b = isa::build;
using isa::Instruction;
using test::emit_li;
using test::run_iss;
using test::run_pipeline;

/// Straight-line, no-hazard program of k instructions retires in k+4 cycles
/// (fill latency of the 5-stage pipe).
TEST(PipelineTiming, StraightLineFillLatency) {
  std::vector<Instruction> prog;
  for (int i = 0; i < 5; ++i) prog.push_back(b::addi(1 + i, 0, i));
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog);
  EXPECT_EQ(r.pipe_stats.cycles, 6u + 4u);
  EXPECT_EQ(r.pipe_stats.instructions, 6u);
  EXPECT_EQ(r.pipe_stats.load_use_stalls, 0u);
}

TEST(PipelineTiming, ForwardingEliminatesAluStalls) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(1, 0, 1));
  prog.push_back(b::add(2, 1, 1));  // EX->EX forward
  prog.push_back(b::add(3, 2, 2));
  prog.push_back(b::add(4, 3, 3));
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog);
  EXPECT_EQ(r.regs.read(4), 8);
  EXPECT_EQ(r.pipe_stats.cycles, 5u + 4u);
  EXPECT_EQ(r.pipe_stats.load_use_stalls, 0u);
}

TEST(PipelineTiming, MemToExForwardAtDistanceTwo) {
  std::vector<Instruction> prog;
  emit_li(prog, 1, 0x2000);
  emit_li(prog, 2, 21);
  prog.push_back(b::sw(2, 0, 1));
  prog.push_back(b::lw(3, 0, 1));
  prog.push_back(b::nop());          // one instruction of slack
  prog.push_back(b::add(4, 3, 3));   // MEM/WB -> EX forward
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog);
  EXPECT_EQ(r.regs.read(4), 42);
  EXPECT_EQ(r.pipe_stats.load_use_stalls, 0u);
}

TEST(PipelineTiming, LoadUseStallsExactlyOnce) {
  std::vector<Instruction> prog;
  emit_li(prog, 1, 0x2000);
  emit_li(prog, 2, 7);
  prog.push_back(b::sw(2, 0, 1));
  prog.push_back(b::lw(3, 0, 1));
  prog.push_back(b::add(4, 3, 3));  // immediate use
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog);
  EXPECT_EQ(r.regs.read(4), 14);
  EXPECT_EQ(r.pipe_stats.load_use_stalls, 1u);
  EXPECT_EQ(r.pipe_stats.cycles, 6u + 4u + 1u);
}

TEST(PipelineTiming, NoForwardingConfigPaysRawStalls) {
  PipelineConfig cfg;
  cfg.forwarding = false;
  std::vector<Instruction> prog;
  prog.push_back(b::addi(1, 0, 1));
  prog.push_back(b::add(2, 1, 1));  // must wait for write-back
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog, cfg);
  EXPECT_EQ(r.regs.read(2), 2);
  EXPECT_EQ(r.pipe_stats.raw_stalls, 2u);
  EXPECT_EQ(r.pipe_stats.cycles, 3u + 4u + 2u);
}

TEST(PipelineTiming, TakenBranchCostsTwoInExecuteResolution) {
  std::vector<Instruction> prog;
  prog.push_back(b::beq(0, 0, 1));    // always taken, skip the marker
  prog.push_back(b::addi(10, 0, 1));  // squashed
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog);
  EXPECT_EQ(r.regs.read(10), 0);
  EXPECT_EQ(r.pipe_stats.taken_control, 1u);
  EXPECT_EQ(r.pipe_stats.control_flush_slots, 2u);
  EXPECT_EQ(r.pipe_stats.instructions, 2u);
  EXPECT_EQ(r.pipe_stats.cycles, 2u + 4u + 2u);
}

TEST(PipelineTiming, NotTakenBranchIsFree) {
  std::vector<Instruction> prog;
  prog.push_back(b::bne(0, 0, 1));    // never taken
  prog.push_back(b::addi(10, 0, 1));
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog);
  EXPECT_EQ(r.regs.read(10), 1);
  EXPECT_EQ(r.pipe_stats.control_flush_slots, 0u);
  EXPECT_EQ(r.pipe_stats.cycles, 3u + 4u);
}

TEST(PipelineTiming, TakenBranchCostsOneInDecodeResolution) {
  PipelineConfig cfg;
  cfg.branch_resolve = BranchResolveStage::kDecode;
  std::vector<Instruction> prog;
  prog.push_back(b::beq(0, 0, 1));
  prog.push_back(b::addi(10, 0, 1));
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog, cfg);
  EXPECT_EQ(r.regs.read(10), 0);
  EXPECT_EQ(r.pipe_stats.control_flush_slots, 1u);
  EXPECT_EQ(r.pipe_stats.cycles, 2u + 4u + 1u);
}

TEST(PipelineTiming, DecodeResolutionInterlocksOnFreshOperand) {
  PipelineConfig cfg;
  cfg.branch_resolve = BranchResolveStage::kDecode;
  std::vector<Instruction> prog;
  prog.push_back(b::addi(1, 0, 1));
  prog.push_back(b::bne(1, 0, 1));    // needs r1 while addi is in EX
  prog.push_back(b::addi(10, 0, 1));  // squashed
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog, cfg);
  EXPECT_EQ(r.regs.read(10), 0);
  EXPECT_EQ(r.pipe_stats.interlock_stalls, 1u);
  EXPECT_EQ(r.pipe_stats.cycles, 3u + 4u + 1u + 1u);
}

TEST(PipelineTiming, DbneLoopFormula) {
  constexpr int kIters = 10;
  std::vector<Instruction> prog;
  emit_li(prog, 1, kIters);
  prog.push_back(b::addi(2, 2, 1));
  prog.push_back(b::dbne(1, -2));
  prog.push_back(b::halt());
  const auto r = run_pipeline(prog);
  EXPECT_EQ(r.regs.read(2), kIters);
  EXPECT_EQ(r.regs.read(1), 0);
  const std::uint64_t instrs = 1 + 2 * kIters + 1;
  EXPECT_EQ(r.pipe_stats.instructions, instrs);
  EXPECT_EQ(r.pipe_stats.cycles, instrs + 4 + 2 * (kIters - 1));
}

TEST(PipelineControl, JumpAndLink) {
  const std::uint32_t base = 0x1000;
  std::vector<Instruction> prog;
  prog.push_back(b::addi(4, 0, 1));
  prog.push_back(b::jal(base + 0x10));
  prog.push_back(b::addi(5, 0, 1));
  prog.push_back(b::halt());
  prog.push_back(b::addi(6, 0, 1));
  prog.push_back(b::jr(31));
  const auto r = run_pipeline(prog, {}, nullptr, base);
  EXPECT_EQ(r.regs.read(5), 1);
  EXPECT_EQ(r.regs.read(6), 1);
  EXPECT_EQ(r.regs.read_u(31), base + 8);
}

TEST(PipelineControl, WrongPathGarbageDoesNotTrap) {
  mem::Memory memory;
  const std::uint32_t base = 0x1000;
  memory.load_words(base, std::vector<std::uint32_t>{
                              isa::encode(b::beq(0, 0, 1)),  // taken
                              0xFFFF'FFFFu,                  // shadow garbage
                              isa::encode(b::halt()),
                          });
  Pipeline pipe(memory);
  pipe.set_pc(base);
  EXPECT_NO_THROW(pipe.run(100));
  EXPECT_TRUE(pipe.halted());
}

TEST(PipelineControl, CorrectPathGarbageTrapsAtCommit) {
  mem::Memory memory;
  const std::uint32_t base = 0x1000;
  memory.load_words(base, std::vector<std::uint32_t>{
                              0xFFFF'FFFFu,
                              isa::encode(b::halt()),
                          });
  Pipeline pipe(memory);
  pipe.set_pc(base);
  EXPECT_THROW(pipe.run(100), SimError);
}

TEST(PipelineControl, RunHonorsCycleLimit) {
  mem::Memory memory;
  const std::uint32_t base = 0x1000;
  memory.load_words(base,
                    std::vector<std::uint32_t>{isa::encode(b::j(base))});
  Pipeline pipe(memory);
  pipe.set_pc(base);
  EXPECT_THROW(pipe.run(500), SimError);
}

// ---------------- randomized ISS co-simulation ----------------

std::vector<Instruction> random_program(std::uint32_t seed) {
  std::mt19937 rng(seed);
  const auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  std::vector<Instruction> prog;
  emit_li(prog, 1, 0x4000);  // data base in r1
  // Seed registers r2..r9 with varied values.
  for (std::uint8_t r = 2; r <= 9; ++r) {
    emit_li(prog, r, seed * 2654435761u + r * 40503u);
  }
  constexpr int kBody = 120;
  for (int i = 0; i < kBody; ++i) {
    const std::uint8_t rd = static_cast<std::uint8_t>(pick(2, 9));
    const std::uint8_t rs = static_cast<std::uint8_t>(pick(1, 9));
    const std::uint8_t rt = static_cast<std::uint8_t>(pick(1, 9));
    switch (pick(0, 11)) {
      case 0: prog.push_back(b::add(rd, rs, rt)); break;
      case 1: prog.push_back(b::sub(rd, rs, rt)); break;
      case 2: prog.push_back(b::xor_(rd, rs, rt)); break;
      case 3: prog.push_back(b::slt(rd, rs, rt)); break;
      case 4: prog.push_back(b::mul(rd, rs, rt)); break;
      case 5: prog.push_back(b::mac(rd, rs, rt)); break;
      case 6: prog.push_back(b::addi(rd, rs, pick(-1024, 1024))); break;
      case 7: prog.push_back(b::sll(rd, rt, static_cast<std::uint8_t>(pick(0, 31)))); break;
      case 8:
        prog.push_back(b::sw(rt, pick(0, 63) * 4, 1));
        break;
      case 9:
        prog.push_back(b::lw(rd, pick(0, 63) * 4, 1));
        break;
      case 10: {
        // Forward conditional branch skipping 1..3 instructions (always in
        // range: the tail below is long enough).
        const int skip = pick(1, 3);
        switch (pick(0, 2)) {
          case 0: prog.push_back(b::beq(rs, rt, skip)); break;
          case 1: prog.push_back(b::bne(rs, rt, skip)); break;
          default: prog.push_back(b::blt(rs, rt, skip)); break;
        }
        break;
      }
      default:
        prog.push_back(b::max(rd, rs, rt));
        break;
    }
  }
  // Tail padding so trailing forward branches stay in range.
  for (int i = 0; i < 4; ++i) prog.push_back(b::nop());
  prog.push_back(b::halt());
  return prog;
}

class CoSim : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CoSim, PipelineMatchesIssArchitecturalState) {
  const auto prog = random_program(GetParam());

  mem::Memory iss_mem;
  test::load_program(iss_mem, 0x1000, prog);
  Iss iss(iss_mem);
  iss.set_pc(0x1000);
  iss.run(1'000'000);

  for (const auto config :
       {PipelineConfig{},
        PipelineConfig{BranchResolveStage::kDecode, SpeculationPolicy::kRollback,
                       true},
        PipelineConfig{BranchResolveStage::kExecute, SpeculationPolicy::kRollback,
                       false}}) {
    mem::Memory pipe_mem;
    test::load_program(pipe_mem, 0x1000, prog);
    Pipeline pipe(pipe_mem, config);
    pipe.set_pc(0x1000);
    pipe.run(1'000'000);

    EXPECT_TRUE(pipe.regs() == iss.regs())
        << "register divergence, seed=" << GetParam();
    EXPECT_EQ(pipe.stats().instructions, iss.stats().instructions);
    EXPECT_EQ(pipe_mem.read_words(0x4000, 64), iss_mem.read_words(0x4000, 64));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoSim,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u, 144u, 233u));

}  // namespace
}  // namespace zolcsim::cpu
