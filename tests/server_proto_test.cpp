// Protocol robustness of the serve daemon: every malformed frame --
// oversized length prefix, truncated payload, invalid JSON, unknown request
// type, wrong schema version, unknown members -- produces a typed error
// reply and never kills the daemon, and a fixed-seed fuzz loop hammers the
// parser with random framed payloads to prove the connection (and the
// process) survive arbitrary garbage.
#include <gtest/gtest.h>
#include <unistd.h>

#include <optional>
#include <random>
#include <string>

#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace zolcsim::server {
namespace {

class ServerProtoTest : public testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = std::string(testing::TempDir()) + "zolcsim_proto_" +
                   std::to_string(::getpid()) + ".sock";
    ServeOptions options;
    options.socket_path = socket_path_;
    options.workers = 2;
    options.idle_timeout_ms = 5'000;
    daemon_.emplace(std::move(options));
    auto started = daemon_->start();
    ASSERT_TRUE(started.ok()) << started.error().to_string();
  }

  void TearDown() override {
    daemon_->begin_drain();
    daemon_->wait();
  }

  Client connect_ok() {
    auto client = Client::connect(socket_path_);
    EXPECT_TRUE(client.ok());
    return std::move(client).value();
  }

  /// The daemon must still answer a ping on a fresh connection -- the
  /// after-every-abuse liveness check.
  void expect_daemon_alive() {
    Client probe = connect_ok();
    auto pong = probe.call(simple_request(RequestType::kPing));
    ASSERT_TRUE(pong.ok()) << pong.error().to_string();
    auto reply = reply_string(pong.value(), "reply");
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value(), "pong");
  }

  std::string socket_path_;
  std::optional<Server> daemon_;
};

TEST_F(ServerProtoTest, OversizedLengthPrefixGetsTypedErrorThenClose) {
  Client client = connect_ok();
  // A length prefix beyond kMaxFrameBytes cannot be resynchronized: the
  // daemon replies with the violation, then drops the connection.
  const unsigned char header[kFrameHeaderBytes] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(client
                  .send_bytes(std::string_view(
                      reinterpret_cast<const char*>(header), sizeof(header)))
                  .ok());
  auto payload = client.read_reply(5'000);
  ASSERT_TRUE(payload.ok()) << payload.error().to_string();
  auto decoded = parse_reply(payload.value());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParse);
  EXPECT_NE(decoded.error().message.find("exceeds"), std::string::npos)
      << decoded.error().message;
  // The connection is gone afterwards.
  auto second = client.read_reply(2'000);
  EXPECT_FALSE(second.ok());
  expect_daemon_alive();
}

TEST_F(ServerProtoTest, TruncatedPayloadGetsTypedError) {
  Client client = connect_ok();
  // Promise 64 bytes, deliver 10, then half-close: the daemon sees EOF
  // mid-frame and still sends the typed error before closing.
  const std::string frame = encode_frame(std::string(64, '{'));
  ASSERT_TRUE(client.send_bytes(frame.substr(0, kFrameHeaderBytes + 10)).ok());
  client.shutdown_write();
  auto payload = client.read_reply(5'000);
  ASSERT_TRUE(payload.ok()) << payload.error().to_string();
  auto decoded = parse_reply(payload.value());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kParse);
  EXPECT_NE(decoded.error().message.find("truncated"), std::string::npos)
      << decoded.error().message;
  expect_daemon_alive();
}

TEST_F(ServerProtoTest, InvalidJsonKeepsTheConnectionAlive) {
  Client client = connect_ok();
  auto reply = client.call("{\"schema\": ");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kParse);
  // The framing stayed synchronized, so the very same connection serves
  // the next (valid) request.
  auto pong = client.call(simple_request(RequestType::kPing));
  ASSERT_TRUE(pong.ok()) << pong.error().to_string();
}

TEST_F(ServerProtoTest, UnknownRequestTypeIsBadConfig) {
  Client client = connect_ok();
  auto reply = client.call(
      R"({"schema": "zolcsim-serve-v1", "type": "frobnicate"})");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kBadConfig);
  EXPECT_NE(reply.error().message.find("frobnicate"), std::string::npos);
  expect_daemon_alive();
}

TEST_F(ServerProtoTest, WrongSchemaVersionIsRejected) {
  Client client = connect_ok();
  auto reply =
      client.call(R"({"schema": "zolcsim-serve-v0", "type": "ping"})");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kParse);
  EXPECT_NE(reply.error().message.find("zolcsim-serve-v0"),
            std::string::npos);
  expect_daemon_alive();
}

TEST_F(ServerProtoTest, UnknownMembersAreRejected) {
  Client client = connect_ok();
  auto reply = client.call(
      R"({"schema": "zolcsim-serve-v1", "type": "ping", "extra": 1})");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kParse);
  EXPECT_NE(reply.error().message.find("unknown request member"),
            std::string::npos);
}

TEST_F(ServerProtoTest, BadAxisValuesAreBadConfig) {
  Client client = connect_ok();
  auto reply = client.call(
      R"({"schema": "zolcsim-serve-v1", "type": "compile",)"
      R"( "kernel": "dotprod", "machine": "NotAMachine"})");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kBadConfig);
}

TEST_F(ServerProtoTest, EmptyFrameIsAParseError) {
  Client client = connect_ok();
  auto reply = client.call("");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kParse);
  auto pong = client.call(simple_request(RequestType::kPing));
  ASSERT_TRUE(pong.ok());
}

TEST_F(ServerProtoTest, FuzzedFramedPayloadsNeverKillTheDaemon) {
  // Fixed seed: the same 300 garbage payloads every run. Framed garbage
  // keeps the stream synchronized, so one connection must survive all of
  // it and every reply must be a well-formed typed error.
  std::mt19937 rng(0x5eed);
  std::uniform_int_distribution<int> length(0, 192);
  std::uniform_int_distribution<int> byte(0, 255);
  Client client = connect_ok();
  for (int i = 0; i < 300; ++i) {
    std::string payload(static_cast<std::size_t>(length(rng)), '\0');
    for (char& c : payload) c = static_cast<char>(byte(rng));
    auto raw = client.call_raw(payload, 10'000);
    ASSERT_TRUE(raw.ok()) << "iteration " << i << ": "
                          << raw.error().to_string();
    auto decoded = parse_reply(raw.value());
    ASSERT_FALSE(decoded.ok()) << "iteration " << i << " was accepted";
    EXPECT_TRUE(decoded.error().code == ErrorCode::kParse ||
                decoded.error().code == ErrorCode::kBadConfig)
        << "iteration " << i << ": " << decoded.error().to_string();
  }
  auto pong = client.call(simple_request(RequestType::kPing));
  ASSERT_TRUE(pong.ok()) << pong.error().to_string();
  const ServerStats stats = daemon_->stats();
  EXPECT_GE(stats.errors, 300u);
}

}  // namespace
}  // namespace zolcsim::server
