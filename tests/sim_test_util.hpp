// Shared helpers for simulator tests: program loading, 32-bit immediate
// materialization, and one-call ISS / pipeline runs.
#ifndef ZOLCSIM_TESTS_SIM_TEST_UTIL_HPP
#define ZOLCSIM_TESTS_SIM_TEST_UTIL_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "cpu/iss.hpp"
#include "cpu/pipeline.hpp"
#include "isa/build.hpp"
#include "isa/encoding.hpp"
#include "mem/memory.hpp"

namespace zolcsim::test {

inline void load_program(mem::Memory& memory, std::uint32_t addr,
                         std::span<const isa::Instruction> program) {
  std::vector<std::uint32_t> words;
  words.reserve(program.size());
  for (const isa::Instruction& instr : program) {
    words.push_back(isa::encode(instr));
  }
  memory.load_words(addr, words);
}

/// Appends instructions materializing `value` into `reg` (1 or 2 ops).
inline void emit_li(std::vector<isa::Instruction>& out, std::uint8_t reg,
                    std::uint32_t value) {
  namespace b = isa::build;
  const auto sv = static_cast<std::int32_t>(value);
  if (sv >= -32768 && sv <= 32767) {
    out.push_back(b::addi(reg, 0, sv));
  } else if ((value & 0xFFFFu) == 0) {
    out.push_back(b::lui(reg, static_cast<std::int32_t>(value >> 16)));
  } else {
    out.push_back(b::lui(reg, static_cast<std::int32_t>(value >> 16)));
    out.push_back(b::ori(reg, reg, static_cast<std::int32_t>(value & 0xFFFFu)));
  }
}

struct RunResult {
  cpu::PipelineStats pipe_stats;
  cpu::RegFile regs;
};

/// Runs `program` (already terminated by halt) on a fresh pipeline.
inline RunResult run_pipeline(std::span<const isa::Instruction> program,
                              cpu::PipelineConfig config = {},
                              cpu::LoopAccelerator* accel = nullptr,
                              std::uint32_t base = 0x1000,
                              std::uint64_t max_cycles = 2'000'000) {
  mem::Memory memory;
  load_program(memory, base, program);
  cpu::Pipeline pipe(memory, config);
  pipe.set_accelerator(accel);
  pipe.set_pc(base);
  pipe.run(max_cycles);
  return RunResult{pipe.stats(), pipe.regs()};
}

struct IssResult {
  cpu::IssStats stats;
  cpu::RegFile regs;
};

inline IssResult run_iss(std::span<const isa::Instruction> program,
                         cpu::LoopAccelerator* accel = nullptr,
                         std::uint32_t base = 0x1000,
                         std::uint64_t max_steps = 2'000'000) {
  mem::Memory memory;
  load_program(memory, base, program);
  cpu::Iss iss(memory);
  iss.set_accelerator(accel);
  iss.set_pc(base);
  iss.run(max_steps);
  return IssResult{iss.stats(), iss.regs()};
}

}  // namespace zolcsim::test

#endif  // ZOLCSIM_TESTS_SIM_TEST_UTIL_HPP
