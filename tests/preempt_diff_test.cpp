// Preempt-anywhere differential harness (DESIGN.md section 9): for every
// registered kernel on every machine, execution is preempted at systematic
// and fuzzed instruction points, the accelerator context saved, the
// controller clobbered, and the context restored (optionally round-tripping
// through the JSON codec) before resuming. Preemption must be
// architecturally invisible: registers, memory, IssStats, ZolcStats, and
// the rendered sweep CSVs are pinned bit-identical to uninterrupted runs,
// and the modeled switch cost is reported alongside -- never folded into --
// the cycle counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codegen/program.hpp"
#include "cpu/iss.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/run.hpp"
#include "flow/scheduler.hpp"
#include "flow/workload.hpp"
#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "kernels/kernels.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::flow {
namespace {

using codegen::MachineKind;

constexpr harness::ExecMode kIss{harness::SimEngine::kIss, false};
constexpr harness::ExecMode kIssFast{harness::SimEngine::kIss, true};

/// Deterministic xorshift32 for fuzzed preemption points (same idiom as the
/// table/context tests; fixed seeds keep the suite reproducible).
class Rng {
 public:
  explicit Rng(std::uint32_t seed) : state_(seed) {}
  std::uint32_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }

 private:
  std::uint32_t state_;
};

CompileSpec spec_for(std::string kernel, MachineKind machine) {
  CompileSpec spec;
  spec.kernel = std::move(kernel);
  spec.machine = machine;
  return spec;
}

RunPlan iss_plan(std::uint64_t preempt_every = 0, bool serialize = false) {
  RunPlan plan;
  plan.mode = kIss;
  plan.preempt_every = preempt_every;
  plan.preempt_serialize = serialize;
  return plan;
}

/// Asserts every deterministic statistic of `got` matches `base`. The
/// switch-cost counters are deliberately excluded: they are the only fields
/// preemption is allowed to change.
void expect_arch_identical(const harness::ExperimentResult& base,
                           const harness::ExperimentResult& got,
                           const std::string& what) {
  EXPECT_EQ(base.stats.cycles, got.stats.cycles) << what;
  EXPECT_EQ(base.stats.instructions, got.stats.instructions) << what;
  EXPECT_EQ(base.stats.taken_control, got.stats.taken_control) << what;
  EXPECT_EQ(base.stats.zolc_fetch_events, got.stats.zolc_fetch_events) << what;
  EXPECT_EQ(base.stats.zolc_resolution_events,
            got.stats.zolc_resolution_events)
      << what;
  EXPECT_TRUE(base.zolc_stats == got.zolc_stats) << what;
}

// ---------------- systematic points: every kernel x machine ----------------

TEST(PreemptDiff, EveryKernelEveryMachineBitIdentical) {
  const std::uint64_t quanta[] = {97, 1009};
  for (const auto& kernel : kernels::kernel_registry()) {
    for (const MachineKind machine : codegen::kAllMachines) {
      const std::string what = std::string(kernel->name()) + " on " +
                               std::string(codegen::machine_name(machine));
      const auto unit =
          CompiledUnit::compile(spec_for(std::string(kernel->name()), machine));
      ASSERT_TRUE(unit.ok()) << what << ": " << unit.error().to_string();

      const auto base = run(unit.value(), iss_plan());
      ASSERT_TRUE(base.ok()) << what << ": " << base.error().to_string();
      EXPECT_EQ(base.value().context_switches, 0u) << what;
      EXPECT_EQ(base.value().context_switch_cycles, 0u) << what;

      const bool has_controller =
          codegen::machine_zolc_variant(machine).has_value();
      for (const std::uint64_t quantum : quanta) {
        const auto got = run(unit.value(), iss_plan(quantum));
        ASSERT_TRUE(got.ok()) << what << ": " << got.error().to_string();
        expect_arch_identical(base.value(), got.value(),
                              what + " @q=" + std::to_string(quantum));
        // Switch cost is reported alongside the (identical) cycles, and
        // only when a controller exists to be switched.
        if (has_controller && base.value().stats.instructions > quantum) {
          EXPECT_GT(got.value().context_switches, 0u) << what;
          EXPECT_GT(got.value().context_switch_cycles, 0u) << what;
        }
        if (!has_controller) {
          EXPECT_EQ(got.value().context_switches, 0u) << what;
        }
      }
    }
  }
}

TEST(PreemptDiff, QuantumOfOnePreemptsBetweenEveryInstruction) {
  // The most hostile schedule: a full save/clobber/restore between every
  // pair of executed instructions, including mid-cascade and mid-init.
  for (const MachineKind machine :
       {MachineKind::kUZolc, MachineKind::kZolcLite, MachineKind::kZolcFull}) {
    const auto unit = CompiledUnit::compile(spec_for("dotprod", machine));
    ASSERT_TRUE(unit.ok());
    const auto base = run(unit.value(), iss_plan());
    const auto got = run(unit.value(), iss_plan(1));
    ASSERT_TRUE(base.ok() && got.ok());
    const std::string what = std::string("dotprod q=1 on ") +
                             std::string(codegen::machine_name(machine));
    expect_arch_identical(base.value(), got.value(), what);
    EXPECT_EQ(got.value().context_switches,
              base.value().stats.instructions - 1)
        << what;
  }
}

TEST(PreemptDiff, SerializeRoundTripsThroughJsonCodec) {
  for (const MachineKind machine :
       {MachineKind::kUZolc, MachineKind::kZolcLite, MachineKind::kZolcFull}) {
    const auto unit = CompiledUnit::compile(spec_for("matmul", machine));
    ASSERT_TRUE(unit.ok());
    const auto base = run(unit.value(), iss_plan());
    const auto got = run(unit.value(), iss_plan(257, /*serialize=*/true));
    ASSERT_TRUE(base.ok() && got.ok());
    const std::string what = std::string("matmul serialize on ") +
                             std::string(codegen::machine_name(machine));
    expect_arch_identical(base.value(), got.value(), what);
    EXPECT_GT(got.value().context_switches, 0u) << what;
  }
}

// ---------------- fuzzed points: registers and memory ----------------

struct ManualRun {
  cpu::RegFile regs;
  cpu::IssStats stats;
  zolc::ZolcStats zolc_stats;
  std::uint64_t switches = 0;
};

/// Runs `unit` on a hand-built ISS. With `fuzz`, execution is sliced at
/// random instruction counts in [1, 512] and the controller context is
/// clobbered/restored at every boundary, alternating the JSON round-trip.
ManualRun run_manual(const CompiledUnit& unit, Workload& workload,
                     Rng* fuzz) {
  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(unit.machine())) {
    controller =
        std::make_unique<zolc::ZolcController>(*variant, unit.geometry());
  }
  cpu::Iss iss(workload.memory());
  iss.set_accelerator(controller.get());
  iss.set_code_image(unit.image());
  iss.set_pc(unit.program().base);

  ManualRun out;
  if (fuzz == nullptr) {
    iss.run(200'000'000);
  } else {
    bool serialize = false;
    while (!iss.halted()) {
      iss.run_slice(1 + fuzz->next() % 512);
      if (iss.halted()) break;
      if (controller != nullptr) {
        preempt_cycle(*controller, serialize);
        serialize = !serialize;
        ++out.switches;
      }
    }
  }
  out.regs = iss.regs();
  out.stats = iss.stats();
  if (controller != nullptr) out.zolc_stats = controller->zolc_stats();
  return out;
}

TEST(PreemptDiff, FuzzedPreemptionPointsLeaveRegsAndMemoryBitIdentical) {
  const std::pair<const char*, MachineKind> targets[] = {
      {"dotprod", MachineKind::kUZolc},
      {"dotprod", MachineKind::kZolcFull},
      {"matmul", MachineKind::kZolcLite},
      {"matmul", MachineKind::kZolcFull}};
  for (const auto& [name, machine] : targets) {
    const auto unit = CompiledUnit::compile(spec_for(name, machine));
    ASSERT_TRUE(unit.ok());
    Workload golden_wl = Workload::prepare(unit.value());
    const ManualRun golden = run_manual(unit.value(), golden_wl, nullptr);

    for (const std::uint32_t seed : {0x9E3779B9u, 0x5EEDF00Du}) {
      const std::string what = std::string(name) + " on " +
                               std::string(codegen::machine_name(machine)) +
                               " seed=" + std::to_string(seed);
      Rng rng(seed);
      Workload fuzzed_wl = Workload::prepare(unit.value());
      const ManualRun fuzzed = run_manual(unit.value(), fuzzed_wl, &rng);

      EXPECT_GT(fuzzed.switches, 0u) << what;
      EXPECT_TRUE(golden.regs == fuzzed.regs) << what;
      EXPECT_TRUE(golden_wl.memory() == fuzzed_wl.memory()) << what;
      EXPECT_EQ(golden.stats.instructions, fuzzed.stats.instructions) << what;
      EXPECT_EQ(golden.stats.taken_control, fuzzed.stats.taken_control)
          << what;
      EXPECT_EQ(golden.stats.zolc_fetch_events, fuzzed.stats.zolc_fetch_events)
          << what;
      EXPECT_EQ(golden.stats.zolc_resolution_events,
                fuzzed.stats.zolc_resolution_events)
          << what;
      EXPECT_TRUE(golden.zolc_stats == fuzzed.zolc_stats) << what;
      EXPECT_TRUE(fuzzed_wl.verify().ok()) << what;
    }
  }
}

// ---------------- fast path across restores ----------------

TEST(PreemptDiff, FastPathRevalidatesCleanlyAcrossRestores) {
  // Preemption inside summarized loops forces the fast path to bail and
  // re-validate after every restore; the result must still match both the
  // uninterrupted fast run and the plain ISS.
  const auto unit = CompiledUnit::compile(spec_for("matmul",
                                                   MachineKind::kZolcFull));
  ASSERT_TRUE(unit.ok());
  RunPlan fast = iss_plan();
  fast.mode = kIssFast;
  const auto base_fast = run(unit.value(), fast);
  const auto base_iss = run(unit.value(), iss_plan());
  RunPlan preempted = iss_plan(97, /*serialize=*/true);
  preempted.mode = kIssFast;
  const auto got = run(unit.value(), preempted);
  ASSERT_TRUE(base_fast.ok() && base_iss.ok() && got.ok());

  expect_arch_identical(base_fast.value(), got.value(), "fast vs preempted");
  expect_arch_identical(base_iss.value(), got.value(), "iss vs preempted");
  EXPECT_GT(got.value().context_switches, 0u);
  // The tier keeps engaging after restores instead of shutting down.
  EXPECT_GT(got.value().fastpath.attempts, 0u);
  EXPECT_GT(got.value().fastpath.engagements, 0u);
}

// ---------------- tenant scheduling ----------------

TEST(TenantRun, SummedStatsAndSwitchCostNeverFoldedIntoCycles) {
  const auto unit = CompiledUnit::compile(spec_for("matmul",
                                                   MachineKind::kZolcFull));
  ASSERT_TRUE(unit.ok());
  const auto base = run(unit.value(), iss_plan());
  ASSERT_TRUE(base.ok());

  RunPlan plan = iss_plan(500);
  plan.tenants = 3;
  const auto got = run(unit.value(), plan);  // dispatches to run_tenants
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  const harness::ExperimentResult& r = got.value();

  EXPECT_EQ(r.tenants, 3u);
  // Execution cycles are the sum over tenants, with the switch cost held
  // apart -- 3 x the single run exactly, not 3x-plus-overhead.
  EXPECT_EQ(r.stats.cycles, 3 * base.value().stats.cycles);
  EXPECT_EQ(r.stats.instructions, 3 * base.value().stats.instructions);
  EXPECT_EQ(r.zolc_stats.continue_events,
            3 * base.value().zolc_stats.continue_events);
  EXPECT_EQ(r.zolc_stats.done_events, 3 * base.value().zolc_stats.done_events);
  EXPECT_EQ(r.zolc_stats.max_cascade_depth,
            base.value().zolc_stats.max_cascade_depth);
  EXPECT_GT(r.context_switches, 0u);
  EXPECT_GT(r.context_switch_cycles, 0u);
}

TEST(TenantRun, DefaultQuantumAppliesWhenPreemptEveryUnset) {
  const auto unit = CompiledUnit::compile(spec_for("fir",
                                                   MachineKind::kZolcLite));
  ASSERT_TRUE(unit.ok());
  const auto base = run(unit.value(), iss_plan());
  RunPlan plan = iss_plan();
  plan.tenants = 2;
  const auto got = run(unit.value(), plan);
  ASSERT_TRUE(base.ok() && got.ok());
  EXPECT_EQ(got.value().stats.cycles, 2 * base.value().stats.cycles);
  EXPECT_GT(got.value().context_switches, 0u);
}

TEST(TenantRun, PipelineEngineIsRejected) {
  const auto unit = CompiledUnit::compile(spec_for("fir",
                                                   MachineKind::kZolcLite));
  ASSERT_TRUE(unit.ok());
  RunPlan plan;  // pipeline engine
  plan.tenants = 2;
  const auto got = run(unit.value(), plan);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, ErrorCode::kBadConfig);

  RunPlan preempted;
  preempted.preempt_every = 64;
  const auto rejected = run(unit.value(), preempted);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kBadConfig);
}

// ---------------- sweep-level byte identity ----------------

TEST(SweepPreempt, PreemptedSweepRendersByteIdenticalArtifacts) {
  harness::SweepSpec spec;
  spec.kernels = {"dotprod", "fir"};
  spec.modes = {kIss, kIssFast};
  const auto base = harness::run_sweep(spec);
  ASSERT_TRUE(base.ok()) << base.error().to_string();

  harness::SweepSpec preempted = spec;
  preempted.preempt_every = 199;
  preempted.preempt_serialize = true;
  const auto got = harness::run_sweep(preempted);
  ASSERT_TRUE(got.ok()) << got.error().to_string();

  // Single-tenant sweeps keep the historical schema (no tenant columns),
  // and the preempted grid renders byte-for-byte the same CSV and JSON.
  EXPECT_FALSE(got.value().has_tenant_axis());
  EXPECT_EQ(base.value().to_csv(), got.value().to_csv());
  EXPECT_EQ(base.value().to_json(), got.value().to_json());
}

TEST(SweepPreempt, TenantAxisAddsColumnsAndScalesCycles) {
  harness::SweepSpec spec;
  spec.kernels = {"dotprod"};
  spec.machines = {MachineKind::kZolcFull};
  spec.modes = {kIss};
  spec.tenants = {1, 2};
  const auto report = harness::run_sweep(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();

  EXPECT_TRUE(report.value().has_tenant_axis());
  const harness::ExperimentResult& one = report.value().at(0, 0, 0, 0, 0, 0);
  const harness::ExperimentResult& two = report.value().at(0, 0, 0, 0, 0, 1);
  EXPECT_EQ(two.stats.cycles, 2 * one.stats.cycles);
  EXPECT_EQ(one.context_switch_cycles, 0u);
  EXPECT_GT(two.context_switch_cycles, 0u);

  const std::string csv = report.value().to_csv();
  EXPECT_NE(csv.find("tenants"), std::string::npos);
  EXPECT_NE(csv.find("ctx_switches,ctx_switch_cycles"), std::string::npos);
}

TEST(SweepPreempt, PipelineModesAreRejectedUpfront) {
  harness::SweepSpec tenants;
  tenants.kernels = {"dotprod"};
  tenants.tenants = {2};  // default (pipeline) mode axis
  const auto a = harness::run_sweep(tenants);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.error().code, ErrorCode::kBadConfig);

  harness::SweepSpec preempted;
  preempted.kernels = {"dotprod"};
  preempted.preempt_every = 64;
  const auto b = harness::run_sweep(preempted);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.error().code, ErrorCode::kBadConfig);
}

}  // namespace
}  // namespace zolcsim::flow
