// On-disk unit store behaviour: round-trip fidelity (serialize -> reload ->
// co-simulate against a fresh compile) over every registered kernel, typed
// rejection of corrupt and stale artifacts, stat/gc classification, and the
// CompileCache integration that lets a second process skip every compile.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/cache.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/run.hpp"
#include "flow/unit_store.hpp"
#include "kernels/kernels.hpp"

namespace zolcsim::flow {
namespace {

using codegen::MachineKind;
namespace fs = std::filesystem;

CompileSpec spec_for(std::string kernel,
                     MachineKind machine = MachineKind::kZolcLite) {
  CompileSpec spec;
  spec.kernel = std::move(kernel);
  spec.machine = machine;
  return spec;
}

/// A fresh store directory per test, under gtest's temp root.
std::string fresh_store_dir(const char* name) {
  const fs::path dir = fs::path(testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void spill(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// The store's single artifact file (tests that save exactly one unit).
fs::path only_artifact(const std::string& dir) {
  fs::path found;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(found.empty()) << "more than one artifact in " << dir;
    found = entry.path();
  }
  EXPECT_FALSE(found.empty()) << "no artifact in " << dir;
  return found;
}

TEST(UnitStore, MissingArtifactIsAMissNotAnError) {
  UnitStore store(fresh_store_dir("unit_store_miss"));
  const auto loaded = store.load(spec_for("dotprod"));
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded.value(), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().hits, 0u);
}

TEST(UnitStore, RoundTripCoSimulatesEveryRegisteredKernel) {
  UnitStore store(fresh_store_dir("unit_store_roundtrip"));
  // ISS keeps the per-kernel co-simulation cheap; the engines are pinned
  // against each other elsewhere.
  RunPlan plan;
  plan.mode.engine = harness::SimEngine::kIss;

  const auto check = [&](const kernels::Kernel& kernel) {
    SCOPED_TRACE(std::string(kernel.name()));
    // XRdefault keeps software loops in the program, ZOLClite moves them to
    // hardware tables: both codec shapes must survive the round trip.
    for (const MachineKind machine :
         {MachineKind::kXrDefault, MachineKind::kZolcLite}) {
      const CompileSpec spec = spec_for(std::string(kernel.name()), machine);
      const auto fresh = CompiledUnit::compile(spec);
      ASSERT_TRUE(fresh.ok()) << fresh.error().to_string();
      ASSERT_TRUE(store.save(fresh.value()).ok());

      const auto reloaded = store.load(spec);
      ASSERT_TRUE(reloaded.ok()) << reloaded.error().to_string();
      ASSERT_NE(reloaded.value(), nullptr);
      // Canonical-codec equality covers program words, tables, and the
      // full scan report in one comparison.
      EXPECT_EQ(reloaded.value()->to_json(), fresh.value().to_json());

      const auto a = run(fresh.value(), plan);     // verifies outputs too
      const auto b = run(*reloaded.value(), plan);
      ASSERT_TRUE(a.ok()) << a.error().to_string();
      ASSERT_TRUE(b.ok()) << b.error().to_string();
      EXPECT_EQ(a.value().stats.cycles, b.value().stats.cycles);
      EXPECT_EQ(a.value().stats.instructions, b.value().stats.instructions);
      EXPECT_EQ(a.value().zolc_stats == b.value().zolc_stats, true);
    }
  };
  for (const auto& kernel : kernels::kernel_registry()) check(*kernel);
  for (const auto& kernel : kernels::extended_kernel_registry()) {
    check(*kernel);
  }
  EXPECT_EQ(store.stats().rejects, 0u);
}

TEST(UnitStore, CorruptArtifactsRejectTyped) {
  const std::string dir = fresh_store_dir("unit_store_corrupt");
  UnitStore store(dir);
  const CompileSpec spec = spec_for("fir");
  const auto unit = CompiledUnit::compile(spec);
  ASSERT_TRUE(unit.ok());
  ASSERT_TRUE(store.save(unit.value()).ok());
  const fs::path artifact = only_artifact(dir);
  const std::string pristine = slurp(artifact);

  // Content-altering corruption: flip one program word.
  std::string doctored = pristine;
  const auto word = doctored.find("\"0x");
  ASSERT_NE(word, std::string::npos);
  doctored[word + 3] = doctored[word + 3] == '0' ? '1' : '0';
  spill(artifact, doctored);
  auto loaded = store.load(spec);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kStoreCorrupt);

  // Truncation: not even JSON any more.
  spill(artifact, pristine.substr(0, pristine.size() / 2));
  loaded = store.load(spec);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kStoreCorrupt);

  // Foreign format marker.
  std::string foreign = pristine;
  const auto format = foreign.find("zolcsim-unit-v1");
  ASSERT_NE(format, std::string::npos);
  foreign.replace(format, 15, "zolcsim-unit-v9");
  spill(artifact, foreign);
  loaded = store.load(spec);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kStoreCorrupt);
  EXPECT_EQ(store.stats().rejects, 3u);

  // A recompile-and-save heals the store.
  ASSERT_TRUE(store.save(unit.value()).ok());
  loaded = store.load(spec);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NE(loaded.value(), nullptr);
}

TEST(UnitStore, StaleToolchainTagRejectsTyped) {
  const std::string dir = fresh_store_dir("unit_store_stale");
  UnitStore store(dir);
  const CompileSpec spec = spec_for("fir");
  const auto unit = CompiledUnit::compile(spec);
  ASSERT_TRUE(unit.ok());
  ASSERT_TRUE(store.save(unit.value()).ok());
  const fs::path artifact = only_artifact(dir);

  // Rewrite the envelope tag to another build's: same key on disk, foreign
  // producer. (Normally a different tag also changes the key, but a
  // compiler upgrade with an unchanged store directory hits exactly this.)
  std::string doctored = slurp(artifact);
  const std::string tag = UnitStore::toolchain_tag();
  const auto at = doctored.find(tag);
  ASSERT_NE(at, std::string::npos);
  doctored.replace(at, tag.size(), "zolcsim-unit-v1|gcc 999.0.0");
  spill(artifact, doctored);

  const auto loaded = store.load(spec);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, ErrorCode::kStoreStale);
  EXPECT_EQ(store.stats().rejects, 1u);
}

TEST(UnitStore, ScanAndGcClassifyArtifacts) {
  const std::string dir = fresh_store_dir("unit_store_gc");
  UnitStore store(dir);
  for (const char* kernel : {"dotprod", "fir", "crc32"}) {
    const auto unit = CompiledUnit::compile(spec_for(kernel));
    ASSERT_TRUE(unit.ok());
    ASSERT_TRUE(store.save(unit.value()).ok());
  }
  // Doctor one artifact stale and one corrupt.
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path());
  }
  ASSERT_EQ(files.size(), 3u);
  std::sort(files.begin(), files.end());
  const std::string tag = UnitStore::toolchain_tag();
  std::string stale = slurp(files[0]);
  stale.replace(stale.find(tag), tag.size(), "zolcsim-unit-v1|gcc 999.0.0");
  spill(files[0], stale);
  spill(files[1], "{ not json");

  const auto scanned = store.scan_artifacts();
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned.value().size(), 3u);
  std::size_t current = 0, stale_n = 0, corrupt_n = 0;
  for (const UnitStore::ArtifactInfo& info : scanned.value()) {
    current += info.state == UnitStore::ArtifactInfo::State::kCurrent;
    stale_n += info.state == UnitStore::ArtifactInfo::State::kStale;
    corrupt_n += info.state == UnitStore::ArtifactInfo::State::kCorrupt;
  }
  EXPECT_EQ(current, 1u);
  EXPECT_EQ(stale_n, 1u);
  EXPECT_EQ(corrupt_n, 1u);

  const auto gc = store.gc();
  ASSERT_TRUE(gc.ok());
  EXPECT_EQ(gc.value().removed, 2u);
  EXPECT_EQ(gc.value().kept, 1u);
  EXPECT_GT(gc.value().bytes_freed, 0u);
  const auto after = store.scan_artifacts();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 1u);
}

TEST(CompileCacheStore, SecondCacheSkipsEveryCompile) {
  const std::string dir = fresh_store_dir("unit_store_cache");
  UnitStore first_store(dir);
  CompileCache first;
  first.attach_store(&first_store);
  const CompileSpec specs[] = {spec_for("dotprod"), spec_for("fir"),
                               spec_for("conv2d", MachineKind::kZolcFull)};
  for (const CompileSpec& spec : specs) {
    ASSERT_TRUE(first.get_or_compile(spec).ok());
  }
  EXPECT_EQ(first.stats().compiles, 3u);
  EXPECT_EQ(first.stats().store_hits, 0u);
  EXPECT_EQ(first_store.stats().saves, 3u);

  // A fresh cache over the same directory models a second process: every
  // miss is served from disk, nothing compiles.
  UnitStore second_store(dir);
  CompileCache second;
  second.attach_store(&second_store);
  for (const CompileSpec& spec : specs) {
    const auto unit = second.get_or_compile(spec);
    ASSERT_TRUE(unit.ok()) << unit.error().to_string();
    EXPECT_EQ(unit.value()->spec().key(), spec.key());
  }
  EXPECT_EQ(second.stats().misses, 3u);
  EXPECT_EQ(second.stats().store_hits, 3u);
  EXPECT_EQ(second.stats().compiles, 0u);
  EXPECT_EQ(second_store.stats().hits, 3u);
}

TEST(CompileCacheStore, BadArtifactFallsThroughToCompileAndHeals) {
  const std::string dir = fresh_store_dir("unit_store_heal");
  UnitStore store(dir);
  CompileCache cache;
  cache.attach_store(&store);
  const CompileSpec spec = spec_for("dotprod");
  ASSERT_TRUE(cache.get_or_compile(spec).ok());
  const fs::path artifact = only_artifact(dir);
  spill(artifact, "garbage");

  UnitStore second_store(dir);
  CompileCache second;
  second.attach_store(&second_store);
  const auto unit = second.get_or_compile(spec);
  ASSERT_TRUE(unit.ok());  // the bad artifact must not fail the lookup
  EXPECT_EQ(second.stats().compiles, 1u);
  EXPECT_EQ(second.stats().store_hits, 0u);
  // ... and the compile overwrote it for the next process.
  UnitStore third(dir);
  const auto healed = third.load(spec);
  ASSERT_TRUE(healed.ok()) << healed.error().to_string();
  EXPECT_NE(healed.value(), nullptr);
}

TEST(UnitStore, KeyDependsOnEveryAxis) {
  const CompileSpec base = spec_for("dotprod");
  CompileSpec machine = base;
  machine.machine = MachineKind::kZolcFull;
  CompileSpec geometry = base;
  geometry.geometry.max_loops = 12;
  CompileSpec env = base;
  env.env.scale = 2;
  CompileSpec kernel = base;
  kernel.kernel = "fir";
  const std::uint64_t key = UnitStore::key_of(base);
  EXPECT_NE(UnitStore::key_of(machine), key);
  EXPECT_NE(UnitStore::key_of(geometry), key);
  EXPECT_NE(UnitStore::key_of(env), key);
  EXPECT_NE(UnitStore::key_of(kernel), key);
}

}  // namespace
}  // namespace zolcsim::flow
