// Lowering unit tests: builder structure, validation errors, per-machine
// loop-overhead code shape, hardware/software selection policy, and
// cross-machine architectural equivalence on synthetic kernels.
#include <gtest/gtest.h>

#include <functional>

#include "codegen/lower.hpp"
#include "cpu/iss.hpp"
#include "cpu/pipeline.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::codegen {
namespace {

namespace b = isa::build;
using isa::Instruction;
using isa::Opcode;

// ---------------- KIR analysis ----------------

TEST(Kir, TripCount) {
  KFor loop;
  loop.initial = 0;
  loop.final = 10;
  loop.step = 1;
  EXPECT_EQ(trip_count(loop), 10);
  loop.step = 3;
  EXPECT_EQ(trip_count(loop), 4);  // 0,3,6,9
  loop.initial = 10;
  loop.final = 0;
  loop.step = -2;
  EXPECT_EQ(trip_count(loop), 5);  // 10,8,6,4,2
  loop.step = 0;
  EXPECT_EQ(trip_count(loop), -1);
  loop.step = 1;  // wrong direction
  EXPECT_EQ(trip_count(loop), -1);
}

TEST(Kir, InvertBranch) {
  EXPECT_EQ(invert_branch(Opcode::kBeq), Opcode::kBne);
  EXPECT_EQ(invert_branch(Opcode::kBlt), Opcode::kBge);
  EXPECT_EQ(invert_branch(Opcode::kBgeu), Opcode::kBltu);
  EXPECT_EQ(invert_branch(Opcode::kBlez), Opcode::kBgtz);
}

TEST(Kir, BuilderNesting) {
  KernelBuilder kb;
  kb.li(2, 0);
  kb.for_count(1, 0, 4, 1, [&] {
    kb.op(b::addi(2, 2, 1));
    kb.for_count(3, 0, 2, 1, [&] { kb.op(b::addi(2, 2, 10)); });
  });
  const auto nodes = kb.take();
  ASSERT_EQ(nodes.size(), 2u);
  const auto& outer = std::get<KFor>(nodes[1]);
  ASSERT_EQ(outer.body.size(), 2u);
  EXPECT_TRUE(std::holds_alternative<KFor>(outer.body[1]));
  EXPECT_EQ(count_loops(nodes), 2u);
  EXPECT_EQ(max_loop_depth(nodes), 2u);
}

TEST(Kir, BodyRegisterScans) {
  KernelBuilder kb;
  kb.for_count(1, 0, 4, 1, [&] {
    kb.op(b::add(2, 1, 3));  // reads index r1
    kb.if_cond(Opcode::kBlt, 5, 6, [&] { kb.op(b::addi(7, 7, 1)); });
  });
  const auto nodes = kb.take();
  const auto& loop = std::get<KFor>(nodes[0]);
  EXPECT_TRUE(body_reads_reg(loop.body, 1));
  EXPECT_TRUE(body_reads_reg(loop.body, 5));   // if condition
  EXPECT_FALSE(body_reads_reg(loop.body, 9));
  EXPECT_TRUE(body_writes_reg(loop.body, 7));
  EXPECT_FALSE(body_writes_reg(loop.body, 1));
}

// ---------------- validation ----------------

TEST(LowerValidate, RejectsRawControlFlow) {
  std::vector<KNode> kernel;
  kernel.push_back(KOp{b::beq(1, 2, 3)});
  EXPECT_FALSE(lower(kernel, MachineKind::kXrDefault).ok());
  kernel.clear();
  kernel.push_back(KOp{b::halt()});
  EXPECT_FALSE(lower(kernel, MachineKind::kXrDefault).ok());
  kernel.clear();
  kernel.push_back(KOp{b::zoloff()});
  EXPECT_FALSE(lower(kernel, MachineKind::kXrDefault).ok());
}

TEST(LowerValidate, RejectsReservedRegisters) {
  std::vector<KNode> kernel;
  kernel.push_back(KOp{b::addi(24, 0, 1)});
  const auto r = lower(kernel, MachineKind::kXrDefault);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidKernel);
  EXPECT_NE(r.error().message.find("reserved"), std::string::npos);
}

TEST(LowerValidate, RejectsZeroTripLoop) {
  KernelBuilder kb;
  kb.for_count(1, 5, 5, 1, [&] { kb.op(b::nop()); });
  EXPECT_FALSE(lower(kb.take(), MachineKind::kXrDefault).ok());
}

TEST(LowerValidate, RejectsIndexWrittenByBody) {
  KernelBuilder kb;
  kb.for_count(1, 0, 5, 1, [&] { kb.op(b::addi(1, 1, 1)); });
  EXPECT_FALSE(lower(kb.take(), MachineKind::kZolcLite).ok());
}

TEST(LowerValidate, RejectsBreakOutsideLoop) {
  KernelBuilder kb;
  kb.op(b::nop());
  kb.break_if(Opcode::kBeq, 1, 2);
  EXPECT_FALSE(lower(kb.take(), MachineKind::kXrDefault).ok());
}

TEST(LowerValidate, AcceptsDeepNestingUpToTheCeiling) {
  // Nests deeper than the pool-register count recycle pool slots (bounds
  // are re-materialized in every latch), so 5-deep software nests lower.
  KernelBuilder kb;
  kb.for_count(1, 0, 2, 1, [&] {
    kb.for_count(2, 0, 2, 1, [&] {
      kb.for_count(3, 0, 2, 1, [&] {
        kb.for_count(4, 0, 2, 1, [&] {
          kb.for_count(5, 0, 2, 1, [&] { kb.op(b::nop()); });
        });
      });
    });
  });
  EXPECT_TRUE(lower(kb.take(), MachineKind::kXrDefault).ok());
}

TEST(LowerValidate, RejectsNestingBeyondTheCeiling) {
  KernelBuilder kb;
  std::function<void(unsigned)> nest = [&](unsigned remaining) {
    if (remaining == 0) {
      kb.op(b::nop());
      return;
    }
    kb.for_count(static_cast<std::uint8_t>(1 + (remaining % 20)), 0, 2, 1,
                 [&] { nest(remaining - 1); });
  };
  nest(kMaxLoweringDepth + 1);
  EXPECT_FALSE(lower(kb.take(), MachineKind::kXrDefault).ok());
}

// ---------------- lowering shape ----------------

std::vector<KNode> simple_sum_kernel(std::int32_t n, bool use_index) {
  KernelBuilder kb;
  kb.li(16, 0);
  kb.for_count(1, 0, n, 1, [&] {
    if (use_index) kb.op(b::add(16, 16, 1));
    else kb.op(b::addi(16, 16, 1));
  });
  return kb.take();
}

unsigned count_opcode(const Program& prog, Opcode op) {
  unsigned n = 0;
  for (const Instruction& instr : prog.code) {
    if (instr.op == op) ++n;
  }
  return n;
}

TEST(LowerShape, DefaultUsesCompareAndBranch) {
  const auto prog = lower(simple_sum_kernel(10, false),
                          MachineKind::kXrDefault);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(count_opcode(prog.value(), Opcode::kBlt), 1u);
  EXPECT_EQ(count_opcode(prog.value(), Opcode::kDbne), 0u);
  EXPECT_EQ(prog.value().init_instructions, 0u);
  EXPECT_EQ(prog.value().sw_loop_count, 1u);
}

TEST(LowerShape, HrdwilUsesDbneAndDropsUnusedIndex) {
  const auto prog = lower(simple_sum_kernel(10, false),
                          MachineKind::kXrHrdwil);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(count_opcode(prog.value(), Opcode::kDbne), 1u);
  EXPECT_EQ(count_opcode(prog.value(), Opcode::kBlt), 0u);
  // The index register r1 is never materialized: nothing reads it.
  for (const Instruction& instr : prog.value().code) {
    const auto dest = isa::dest_reg(instr);
    EXPECT_FALSE(dest.has_value() && *dest == 1)
        << "unused index should not be maintained";
  }
}

TEST(LowerShape, HrdwilMaintainsIndexWhenRead) {
  const auto prog = lower(simple_sum_kernel(10, true),
                          MachineKind::kXrHrdwil);
  ASSERT_TRUE(prog.ok());
  bool writes_index = false;
  for (const Instruction& instr : prog.value().code) {
    const auto dest = isa::dest_reg(instr);
    if (dest.has_value() && *dest == 1) writes_index = true;
  }
  EXPECT_TRUE(writes_index);
}

TEST(LowerShape, ZolcLiteHasNoLoopOverheadInstructions) {
  const auto prog = lower(simple_sum_kernel(10, true), MachineKind::kZolcLite);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(count_opcode(prog.value(), Opcode::kBlt), 0u);
  EXPECT_EQ(count_opcode(prog.value(), Opcode::kDbne), 0u);
  EXPECT_GT(prog.value().init_instructions, 0u);
  EXPECT_EQ(prog.value().hw_loop_count, 1u);
  EXPECT_GE(count_opcode(prog.value(), Opcode::kZolwTe), 1u);
  EXPECT_EQ(count_opcode(prog.value(), Opcode::kZolOn), 1u);
}

TEST(LowerShape, InitLengthMatchesReportedField) {
  const auto prog = lower(simple_sum_kernel(10, true), MachineKind::kZolcLite);
  ASSERT_TRUE(prog.ok());
  // The first init_instructions words are the init sequence; the next word
  // begins the kernel body.
  unsigned zolc_count = 0;
  for (unsigned i = 0; i < prog.value().init_instructions; ++i) {
    if (isa::opcode_info(prog.value().code[i].op).is_zolc) ++zolc_count;
  }
  EXPECT_GE(zolc_count, 5u);  // lp0, lp1, te, ts, zolon at minimum
  for (unsigned i = prog.value().init_instructions;
       i < prog.value().code.size(); ++i) {
    EXPECT_FALSE(isa::opcode_info(prog.value().code[i].op).is_zolc);
  }
}

// ---------------- hardware/software selection policy ----------------

std::vector<KNode> breaky_nest_kernel() {
  KernelBuilder kb;
  kb.li(16, 0);
  kb.for_count(1, 0, 4, 1, [&] {      // outer: break-free
    kb.for_count(2, 0, 8, 1, [&] {    // inner: has a break
      kb.op(b::addi(16, 16, 1));
      kb.break_if(Opcode::kBge, 16, 20);
      kb.op(b::addi(16, 16, 0));
    });
  });
  return kb.take();
}

TEST(LowerPolicy, LiteDemotesBreakLoopsFullKeepsThem) {
  const auto lite = lower(breaky_nest_kernel(), MachineKind::kZolcLite);
  ASSERT_TRUE(lite.ok());
  EXPECT_EQ(lite.value().hw_loop_count, 1u);  // outer only
  EXPECT_EQ(lite.value().sw_loop_count, 1u);
  EXPECT_EQ(count_opcode(lite.value(), Opcode::kZolwEx0), 0u);

  const auto full = lower(breaky_nest_kernel(), MachineKind::kZolcFull);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().hw_loop_count, 2u);
  EXPECT_EQ(count_opcode(full.value(), Opcode::kZolwEx0), 1u);
}

TEST(LowerPolicy, MicroManagesExactlyOneLoop) {
  KernelBuilder kb;
  kb.li(16, 0);
  kb.for_count(1, 0, 4, 1, [&] {
    kb.for_count(2, 0, 8, 1, [&] { kb.op(b::addi(16, 16, 1)); });
    kb.op(b::addi(16, 16, 1));
  });
  const auto prog = lower(kb.take(), MachineKind::kUZolc);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.value().hw_loop_count, 1u);
  EXPECT_EQ(prog.value().sw_loop_count, 1u);
  EXPECT_EQ(count_opcode(prog.value(), Opcode::kZolwU), 6u);
}

TEST(LowerPolicy, LoopsUnderConditionalsAreSoftware) {
  KernelBuilder kb;
  kb.li(16, 0);
  kb.li(17, 1);
  kb.for_count(1, 0, 4, 1, [&] {
    kb.if_cond(Opcode::kBgtz, 17, 0, [&] {
      kb.for_count(2, 0, 3, 1, [&] { kb.op(b::addi(16, 16, 1)); });
    });
    kb.op(b::addi(16, 16, 100));
  });
  const auto prog = lower(kb.take(), MachineKind::kZolcFull);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.value().hw_loop_count, 1u);
  EXPECT_EQ(prog.value().sw_loop_count, 1u);
  EXPECT_FALSE(prog.value().notes.empty());
}

TEST(LowerPolicy, CapacityDemotionKeepsProgramCorrect) {
  // Nine sequential loops: one more than the 8-loop parameter table.
  KernelBuilder kb;
  kb.li(16, 0);
  for (int i = 0; i < 9; ++i) {
    kb.for_count(1, 0, 3, 1, [&] { kb.op(b::addi(16, 16, 1)); });
  }
  const auto prog = lower(kb.take(), MachineKind::kZolcLite);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.value().hw_loop_count, 8u);
  EXPECT_EQ(prog.value().sw_loop_count, 1u);
  EXPECT_FALSE(prog.value().notes.empty());
}

// ---------------- cross-machine architectural equivalence ----------------

struct RunOutcome {
  cpu::RegFile regs;
  std::uint64_t cycles = 0;
};

RunOutcome run_program(const Program& prog) {
  mem::Memory memory;
  prog.load_into(memory);
  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = machine_zolc_variant(prog.machine)) {
    controller = std::make_unique<zolc::ZolcController>(*variant);
  }
  cpu::Pipeline pipe(memory);
  pipe.set_accelerator(controller.get());
  pipe.set_pc(prog.base);
  pipe.run(10'000'000);
  return RunOutcome{pipe.regs(), pipe.stats().cycles};
}

/// The observable result registers must agree across all machines (pool and
/// scratch registers r24-r27 and r8/r9-equivalents may differ).
void expect_machines_agree(const std::vector<KNode>& kernel,
                           std::initializer_list<std::uint8_t> result_regs) {
  const auto baseline = lower(kernel, MachineKind::kXrDefault);
  ASSERT_TRUE(baseline.ok());
  const RunOutcome expected = run_program(baseline.value());
  for (const MachineKind machine :
       {MachineKind::kXrHrdwil, MachineKind::kUZolc, MachineKind::kZolcLite,
        MachineKind::kZolcFull}) {
    const auto prog = lower(kernel, machine);
    ASSERT_TRUE(prog.ok()) << machine_name(machine) << ": "
                           << prog.error().to_string();
    const RunOutcome got = run_program(prog.value());
    for (const std::uint8_t reg : result_regs) {
      EXPECT_EQ(got.regs.read(reg), expected.regs.read(reg))
          << machine_name(machine) << " r" << unsigned(reg);
    }
  }
}

TEST(LowerEquivalence, SimpleSum) {
  expect_machines_agree(simple_sum_kernel(25, true), {16});
}

TEST(LowerEquivalence, BreakyNest) {
  expect_machines_agree(breaky_nest_kernel(), {16});
}

TEST(LowerEquivalence, TripleNestWithPostSegments) {
  KernelBuilder kb;
  kb.li(16, 0);
  kb.li(17, 0);
  kb.for_count(1, 0, 3, 1, [&] {
    kb.op(b::addi(17, 17, 1));
    kb.for_count(2, 0, 4, 1, [&] {
      kb.for_count(3, 0, 5, 1, [&] { kb.op(b::add(16, 16, 3)); });
      kb.op(b::add(16, 16, 2));
    });
    kb.op(b::addi(16, 16, 1000));
  });
  expect_machines_agree(kb.take(), {16, 17});
}

TEST(LowerEquivalence, NegativeStepLoop) {
  KernelBuilder kb;
  kb.li(16, 0);
  kb.for_count(1, 10, 0, -2, [&] { kb.op(b::add(16, 16, 1)); });
  expect_machines_agree(kb.take(), {16});  // 10+8+6+4+2 = 30
}

TEST(LowerEquivalence, ConditionalUpdateInBody) {
  KernelBuilder kb;
  kb.li(16, 0);
  kb.li(17, 5);
  kb.for_count(1, 0, 12, 1, [&] {
    kb.if_cond(Opcode::kBlt, 1, 17, [&] { kb.op(b::add(16, 16, 1)); });
  });
  expect_machines_agree(kb.take(), {16});  // 0+1+2+3+4 = 10
}

TEST(LowerEquivalence, SequentialLoopChains) {
  KernelBuilder kb;
  kb.li(16, 0);
  kb.for_count(1, 0, 7, 1, [&] { kb.op(b::addi(16, 16, 1)); });
  kb.op(b::addi(16, 16, 100));
  kb.for_count(2, 0, 9, 1, [&] { kb.op(b::addi(16, 16, 1)); });
  expect_machines_agree(kb.take(), {16});
}

TEST(LowerEquivalence, ZolcBeatsHrdwilBeatsDefaultOnCounterLoop) {
  // Pure counter loop (body never reads the index): hrdwil drops the index
  // update entirely, ZOLC additionally removes the back-edge.
  const auto kernel = simple_sum_kernel(200, false);
  const auto d = run_program(lower(kernel, MachineKind::kXrDefault).value());
  const auto h = run_program(lower(kernel, MachineKind::kXrHrdwil).value());
  const auto z = run_program(lower(kernel, MachineKind::kZolcLite).value());
  EXPECT_LT(h.cycles, d.cycles);
  EXPECT_LT(z.cycles, h.cycles);
}

TEST(LowerEquivalence, HrdwilMatchesDefaultWhenIndexIsLive) {
  // With fused compare-and-branch in the base ISA, dbne gains nothing when
  // the body needs the index value anyway.
  const auto kernel = simple_sum_kernel(200, true);
  const auto d = run_program(lower(kernel, MachineKind::kXrDefault).value());
  const auto h = run_program(lower(kernel, MachineKind::kXrHrdwil).value());
  EXPECT_EQ(h.cycles, d.cycles);
}

}  // namespace
}  // namespace zolcsim::codegen
