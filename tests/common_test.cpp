#include <gtest/gtest.h>

#include "common/bitutil.hpp"
#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/result.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace zolcsim {
namespace {

// ---------------- contracts ----------------

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(ZS_EXPECTS(1 == 2), ContractViolation);
  EXPECT_NO_THROW(ZS_EXPECTS(1 == 1));
}

TEST(Contracts, MessageNamesKindAndExpression) {
  try {
    ZS_ASSERT(false && "marker");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

// ---------------- bitutil ----------------

TEST(BitUtil, Mask32Boundaries) {
  EXPECT_EQ(mask32(0), 0u);
  EXPECT_EQ(mask32(1), 1u);
  EXPECT_EQ(mask32(16), 0xFFFFu);
  EXPECT_EQ(mask32(31), 0x7FFF'FFFFu);
  EXPECT_EQ(mask32(32), 0xFFFF'FFFFu);
}

TEST(BitUtil, ExtractInsertRoundTrip) {
  std::uint32_t w = 0;
  w = insert_bits(w, 26, 6, 0x2B);
  w = insert_bits(w, 21, 5, 17);
  w = insert_bits(w, 0, 16, 0xBEEF);
  EXPECT_EQ(extract_bits(w, 26, 6), 0x2Bu);
  EXPECT_EQ(extract_bits(w, 21, 5), 17u);
  EXPECT_EQ(extract_bits(w, 0, 16), 0xBEEFu);
}

TEST(BitUtil, InsertRejectsOverwideField) {
  EXPECT_THROW(insert_bits(0, 0, 4, 0x10), ContractViolation);
  EXPECT_THROW(insert_bits(0, 30, 4, 1), ContractViolation);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0, 16), 0);
}

TEST(BitUtil, FitsSignedBoundaries) {
  EXPECT_TRUE(fits_signed(32767, 16));
  EXPECT_FALSE(fits_signed(32768, 16));
  EXPECT_TRUE(fits_signed(-32768, 16));
  EXPECT_FALSE(fits_signed(-32769, 16));
}

TEST(BitUtil, FitsUnsignedBoundaries) {
  EXPECT_TRUE(fits_unsigned(0xFFFF, 16));
  EXPECT_FALSE(fits_unsigned(0x10000, 16));
  EXPECT_TRUE(fits_unsigned(0x03FF'FFFF, 26));
  EXPECT_FALSE(fits_unsigned(0x0400'0000, 26));
}

TEST(BitUtil, Alignment) {
  EXPECT_TRUE(is_aligned(0x1000, 4));
  EXPECT_FALSE(is_aligned(0x1002, 4));
  EXPECT_EQ(align_up(5, 4), 8u);
  EXPECT_EQ(align_up(8, 4), 8u);
}

TEST(BitUtil, BitsForValues) {
  EXPECT_EQ(bits_for_values(1), 0u);
  EXPECT_EQ(bits_for_values(2), 1u);
  EXPECT_EQ(bits_for_values(8), 3u);
  EXPECT_EQ(bits_for_values(9), 4u);
  EXPECT_EQ(bits_for_values(32), 5u);
}

TEST(BitUtil, Extract64) {
  const std::uint64_t w = insert_bits64(0, 40, 16, 0xABCD);
  EXPECT_EQ(extract_bits64(w, 40, 16), 0xABCDu);
}

// ---------------- strings ----------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespace) {
  const auto parts = split_whitespace("  fir \t conv2d\nme_fsbm ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "fir");
  EXPECT_EQ(parts[2], "me_fsbm");
}

TEST(Strings, ParseIntDecimal) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-17").value(), -17);
  EXPECT_EQ(parse_int("+8").value(), 8);
  EXPECT_EQ(parse_int("0").value(), 0);
}

TEST(Strings, ParseIntHexAndBinary) {
  EXPECT_EQ(parse_int("0x1F").value(), 31);
  EXPECT_EQ(parse_int("0XFF").value(), 255);
  EXPECT_EQ(parse_int("-0x10").value(), -16);
  EXPECT_EQ(parse_int("0b1010").value(), 10);
}

TEST(Strings, ParseIntRejectsMalformed) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("0x").has_value());
  EXPECT_FALSE(parse_int("-").has_value());
  EXPECT_FALSE(parse_int("0b102").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999999").has_value());
}

TEST(Strings, ParseIntInt64Boundaries) {
  EXPECT_EQ(parse_int("9223372036854775807").value(), INT64_MAX);
  EXPECT_EQ(parse_int("-9223372036854775808").value(), INT64_MIN);
  EXPECT_FALSE(parse_int("9223372036854775808").has_value());
}

TEST(Strings, Hex32) {
  EXPECT_EQ(hex32(0), "0x00000000");
  EXPECT_EQ(hex32(0xDEADBEEF), "0xDEADBEEF");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(1.0, 1), "1.0");
}

TEST(Strings, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("zolw.te", "zolw"));
  EXPECT_FALSE(starts_with("zo", "zolw"));
  EXPECT_EQ(to_lower("ZOLCfull"), "zolcfull");
}

// ---------------- Result ----------------

TEST(Result, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(Result, HoldsError) {
  Result<int> r = Error{ErrorCode::kParse, "bad", 3};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kParse);
  EXPECT_EQ(r.error().message, "bad");
  EXPECT_EQ(r.error().to_string(), "line 3: bad");
}

TEST(Result, WrongAccessViolatesContract) {
  Result<int> ok = 1;
  EXPECT_THROW((void)ok.error(), ContractViolation);
  Result<int> err = Error{ErrorCode::kUnknown, "x"};
  EXPECT_THROW((void)err.value(), ContractViolation);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> err = Error{ErrorCode::kSimulation, "nope"};
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, ErrorCode::kSimulation);
  EXPECT_EQ(err.error().message, "nope");
}

TEST(Result, ErrorContextChainRendersOutermostFirst) {
  const Error inner{ErrorCode::kCapacity, "exit record capacity"};
  const Error wrapped =
      inner.with_context("lowering").with_context("me_tss (ZOLCfull)");
  EXPECT_EQ(wrapped.code, ErrorCode::kCapacity);
  EXPECT_EQ(wrapped.to_string(),
            "me_tss (ZOLCfull): lowering: exit record capacity");
  EXPECT_EQ(error_code_name(wrapped.code), "capacity");
}

TEST(Result, MapTransformsValueAndPassesErrorThrough) {
  Result<int> r = 21;
  const Result<int> doubled = std::move(r).map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);

  Result<int> bad = Error{ErrorCode::kParse, "nope"};
  const Result<std::string> still_bad =
      std::move(bad).map([](int) { return std::string("unreached"); });
  ASSERT_FALSE(still_bad.ok());
  EXPECT_EQ(still_bad.error().code, ErrorCode::kParse);
}

TEST(Result, AndThenChainsAndShortCircuits) {
  const auto parse_even = [](int v) -> Result<int> {
    if (v % 2 != 0) return Error{ErrorCode::kBadConfig, "odd"};
    return v / 2;
  };
  Result<int> r = 8;
  const Result<int> half = std::move(r).and_then(parse_even);
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(half.value(), 4);

  Result<int> odd = 7;
  const Result<int> failed = std::move(odd).and_then(parse_even);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::kBadConfig);

  Result<int> already_bad = Error{ErrorCode::kParse, "early"};
  const Result<int> propagated = std::move(already_bad).and_then(parse_even);
  ASSERT_FALSE(propagated.ok());
  EXPECT_EQ(propagated.error().code, ErrorCode::kParse);
  EXPECT_EQ(propagated.error().message, "early");
}

TEST(Result, WithContextOnResultTagsOnlyErrors) {
  Result<int> good = 1;
  EXPECT_TRUE(std::move(good).with_context("stage").ok());
  Result<int> bad = Error{ErrorCode::kIo, "disk"};
  const Result<int> tagged = std::move(bad).with_context("writer");
  ASSERT_FALSE(tagged.ok());
  EXPECT_EQ(tagged.error().to_string(), "writer: disk");
}

// ---------------- TextTable / CSV ----------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "cycles"});
  t.add_row({"fir", "123"});
  t.add_row({"me_fsbm", "45678"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name    | cycles"), std::string::npos);
  EXPECT_NE(out.find("fir     |    123"), std::string::npos);
  EXPECT_NE(out.find("me_fsbm |  45678"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractViolation);
}

TEST(TextTable, SeparatorRow) {
  TextTable t({"a"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string out = t.render();
  // header separator + explicit separator
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(AsciiBar, ProportionalWidth) {
  EXPECT_EQ(ascii_bar(1.0, 1.0, 10).size(), 10u);
  EXPECT_EQ(ascii_bar(0.5, 1.0, 10).size(), 5u);
  EXPECT_EQ(ascii_bar(0.0, 1.0, 10).size(), 0u);
  EXPECT_EQ(ascii_bar(2.0, 1.0, 10).size(), 10u);  // clamped
}

TEST(Csv, QuotesOnlyWhenNeeded) {
  CsvWriter w({"a", "b"});
  w.add_row({"plain", "needs,comma"});
  w.add_row({"quote\"inside", "multi\nline"});
  const std::string out = w.render();
  EXPECT_NE(out.find("plain,\"needs,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, HeaderFirst) {
  CsvWriter w({"x"});
  w.add_row({"1"});
  EXPECT_EQ(w.render(), "x\n1\n");
}

}  // namespace
}  // namespace zolcsim
