// zolcscan: post-link loop acceleration. Validated end-to-end on real
// compiled (XRdefault) kernel binaries: the scanner finds the hot counted
// loop, the patch + uZOLC plan preserves every architectural output, and
// the accelerated binary is strictly faster.
#include <gtest/gtest.h>

#include "cfg/zolcscan.hpp"
#include "codegen/lower.hpp"
#include "cpu/pipeline.hpp"
#include "kernels/kernels.hpp"

namespace zolcsim::cfg {
namespace {

namespace b = isa::build;
using isa::Instruction;

constexpr std::uint32_t kBase = 0x1000;

// ---------------- pattern matching on a hand-built loop ----------------

std::vector<Instruction> counted_loop_program() {
  // r16 = 0; for (r1 = 0; r1 < 10; ++r1) r16 += r1;
  return {
      b::addi(16, 0, 0),   // 0
      b::addi(1, 0, 0),    // 1: index init
      b::addi(24, 0, 10),  // 2: bound init
      b::add(16, 16, 1),   // 3: body (head)
      b::addi(1, 1, 1),    // 4: update   <- patched
      b::blt(1, 24, -3),   // 5: back edge <- patched
      b::halt(),           // 6
  };
}

TEST(ZolcScan, RecognizesTheCountedLoopIdiom) {
  const auto code = counted_loop_program();
  const auto report = scan_for_micro_loops(code, kBase);
  ASSERT_EQ(report.candidates.size(), 1u) << [&] {
    std::string all;
    for (const auto& r : report.rejected) all += r.to_string() + "; ";
    return all;
  }();
  const MicroPlan& plan = report.candidates[0];
  EXPECT_EQ(plan.initial, 0);
  EXPECT_EQ(plan.final, 10);
  EXPECT_EQ(plan.step, 1);
  EXPECT_EQ(plan.index_reg, 1);
  EXPECT_EQ(plan.cond, zolc::LoopCond::kLt);
  EXPECT_EQ(plan.start_pc, kBase + 3 * 4);
  EXPECT_EQ(plan.end_pc, kBase + 3 * 4);  // single real body instruction
  EXPECT_EQ(plan.update_index, 4u);
  EXPECT_EQ(plan.branch_index, 5u);
}

TEST(ZolcScan, PatchedLoopRunsAtBodyOnlyCost) {
  const auto code = counted_loop_program();
  const auto report = scan_for_micro_loops(code, kBase);
  ASSERT_EQ(report.candidates.size(), 1u);
  const MicroPlan& plan = report.candidates[0];

  // Original.
  mem::Memory orig_mem;
  std::vector<std::uint32_t> words;
  for (const auto& instr : code) words.push_back(isa::encode(instr));
  orig_mem.load_words(kBase, words);
  cpu::Pipeline orig(orig_mem);
  orig.set_pc(kBase);
  orig.run(10'000);

  // Patched + uZOLC.
  const auto patched = apply_patch(code, plan);
  mem::Memory fast_mem;
  words.clear();
  for (const auto& instr : patched) words.push_back(isa::encode(instr));
  fast_mem.load_words(kBase, words);
  zolc::ZolcController micro(zolc::ZolcVariant::kMicro);
  program_micro_controller(micro, plan);
  cpu::Pipeline fast(fast_mem);
  fast.set_accelerator(&micro);
  fast.set_pc(kBase);
  fast.run(10'000);

  EXPECT_EQ(fast.regs().read(16), orig.regs().read(16));
  EXPECT_EQ(fast.regs().read(16), 45);
  EXPECT_LT(fast.stats().cycles, orig.stats().cycles);
  EXPECT_EQ(fast.stats().zolc_fetch_events, 10u);
}

TEST(ZolcScan, RejectsLiveOutIndex) {
  auto code = counted_loop_program();
  code[6] = b::add(17, 1, 1);  // reads the index after the loop
  code.push_back(b::halt());
  const auto report = scan_for_micro_loops(code, kBase);
  EXPECT_TRUE(report.candidates.empty());
  ASSERT_FALSE(report.rejected.empty());
  EXPECT_EQ(report.rejected[0].code, ErrorCode::kScanLiveIndex);
}

TEST(ZolcScan, RejectsNonConstantBound) {
  auto code = counted_loop_program();
  code[2] = b::add(24, 20, 21);  // bound computed, not a constant
  const auto report = scan_for_micro_loops(code, kBase);
  EXPECT_TRUE(report.candidates.empty());
  EXPECT_TRUE(report.rejected_with(ErrorCode::kScanNonConstantBound));
}

TEST(ZolcScan, RejectsMultiExitLoops) {
  // Same loop plus a break out of it.
  std::vector<Instruction> code = {
      b::addi(16, 0, 0),  b::addi(1, 0, 0),  b::addi(24, 0, 10),
      b::add(16, 16, 1),                  // head
      b::beq(16, 23, 2),                  // break to halt
      b::addi(1, 1, 1),   b::blt(1, 24, -4), b::halt(),
  };
  const auto report = scan_for_micro_loops(code, kBase);
  EXPECT_TRUE(report.candidates.empty());
  EXPECT_TRUE(report.rejected_with(ErrorCode::kScanMultiExit));
}

TEST(ZolcScan, RejectsBranchIntoPatchedTail) {
  // An if whose skip-edge lands on the index update: patching would let the
  // skip path fall out of the loop without a boundary event.
  std::vector<Instruction> code = {
      b::addi(16, 0, 0),  b::addi(1, 0, 0),  b::addi(24, 0, 10),
      b::add(16, 16, 1),                  // head
      b::bne(16, 0, 1),                   // skip the next op -> lands on addi
      b::add(16, 16, 16),
      b::addi(1, 1, 1),   b::blt(1, 24, -5), b::halt(),
  };
  const auto report = scan_for_micro_loops(code, kBase);
  EXPECT_TRUE(report.candidates.empty());
  EXPECT_TRUE(report.rejected_with(ErrorCode::kScanTailTargeted));
}

// ---------------- end-to-end on compiled kernels ----------------

class ScanKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(ScanKernels, AcceleratesTheCompiledBinaryCorrectly) {
  const kernels::Kernel* kernel = kernels::find_kernel(GetParam());
  ASSERT_NE(kernel, nullptr);
  const kernels::KernelEnv env;
  auto prog = codegen::lower(kernel->build(env),
                             codegen::MachineKind::kXrDefault, kBase);
  ASSERT_TRUE(prog.ok());

  const auto report = scan_for_micro_loops(prog.value().code, kBase);
  ASSERT_FALSE(report.candidates.empty()) << [&] {
    std::string all;
    for (const auto& r : report.rejected) all += r.to_string() + "; ";
    return all;
  }();
  const MicroPlan* plan = report.best();
  ASSERT_NE(plan, nullptr);

  // Baseline run.
  mem::Memory base_mem;
  prog.value().load_into(base_mem);
  kernel->setup(env, base_mem);
  cpu::Pipeline baseline(base_mem);
  baseline.set_pc(kBase);
  baseline.run(100'000'000);

  // Patched + uZOLC run.
  const auto patched = apply_patch(prog.value().code, *plan);
  mem::Memory fast_mem;
  std::vector<std::uint32_t> words;
  for (const auto& instr : patched) words.push_back(isa::encode(instr));
  fast_mem.load_words(kBase, words);
  kernel->setup(env, fast_mem);
  zolc::ZolcController micro(zolc::ZolcVariant::kMicro);
  program_micro_controller(micro, *plan);
  cpu::Pipeline fast(fast_mem);
  fast.set_accelerator(&micro);
  fast.set_pc(kBase);
  fast.run(100'000'000);

  // Outputs still verify, and the binary got faster without recompilation.
  const auto verified = kernel->verify(env, fast_mem);
  EXPECT_TRUE(verified.ok()) << (verified.ok() ? ""
                                               : verified.error().message);
  EXPECT_LT(fast.stats().cycles, baseline.stats().cycles) << GetParam();
  EXPECT_GT(fast.stats().zolc_fetch_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(CompiledKernels, ScanKernels,
                         ::testing::Values("dotprod", "fir", "crc32",
                                           "matmul", "conv2d", "iir_biquad",
                                           "dct8x8", "me_fsbm"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

// ---------------- deep-nest binaries ----------------

TEST(ZolcScan, DeepNestBinaryIsScannable) {
  // A 10-deep XRdefault nest recycles bound registers by re-materializing
  // the constant in every latch; the safety scan must recognize the
  // same-constant rewrite as a no-op, and the geometry-derived window must
  // reach the constants past the stacked loop prologues.
  const auto* kernel = kernels::find_kernel("deepnest10");
  ASSERT_NE(kernel, nullptr);
  const kernels::KernelEnv env;
  auto prog = codegen::lower(kernel->build(env),
                             codegen::MachineKind::kXrDefault, kBase);
  ASSERT_TRUE(prog.ok()) << prog.error().to_string();

  const auto options =
      ScanOptions::for_geometry(zolc::ZolcGeometry{32, 16, 4, 4});
  EXPECT_GT(options.init_window, 8u);
  const auto report = scan_for_micro_loops(prog.value().code, kBase, options);
  ASSERT_FALSE(report.candidates.empty()) << [&] {
    std::string all;
    for (const auto& r : report.rejected) all += r.to_string() + "; ";
    return all;
  }();
  const MicroPlan* plan = report.best();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->depth, 10u);

  // The patched binary still verifies and is faster under the uZOLC.
  mem::Memory base_mem;
  prog.value().load_into(base_mem);
  kernel->setup(env, base_mem);
  cpu::Pipeline baseline(base_mem);
  baseline.set_pc(kBase);
  baseline.run(100'000'000);

  const auto patched = apply_patch(prog.value().code, *plan);
  mem::Memory fast_mem;
  std::vector<std::uint32_t> words;
  for (const auto& instr : patched) words.push_back(isa::encode(instr));
  fast_mem.load_words(kBase, words);
  kernel->setup(env, fast_mem);
  zolc::ZolcController micro(zolc::ZolcVariant::kMicro);
  program_micro_controller(micro, *plan);
  cpu::Pipeline fast(fast_mem);
  fast.set_accelerator(&micro);
  fast.set_pc(kBase);
  fast.run(100'000'000);

  const auto verified = kernel->verify(env, fast_mem);
  EXPECT_TRUE(verified.ok()) << (verified.ok() ? "" : verified.error().message);
  EXPECT_LT(fast.stats().cycles, baseline.stats().cycles);
}

}  // namespace
}  // namespace zolcsim::cfg
