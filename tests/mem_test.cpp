#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/contracts.hpp"
#include "mem/memory.hpp"

namespace zolcsim::mem {
namespace {

TEST(Memory, UnwrittenReadsAsZero) {
  Memory m;
  EXPECT_EQ(m.read8(0), 0);
  EXPECT_EQ(m.read16(0x8000), 0);
  EXPECT_EQ(m.read32(0xFFFF'FFFCu), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);  // reads do not allocate
}

TEST(Memory, ByteRoundTrip) {
  Memory m;
  m.write8(5, 0xAB);
  EXPECT_EQ(m.read8(5), 0xAB);
  EXPECT_EQ(m.read8(4), 0);
  EXPECT_EQ(m.read8(6), 0);
}

TEST(Memory, LittleEndianComposition) {
  Memory m;
  m.write32(0x100, 0x0403'0201u);
  EXPECT_EQ(m.read8(0x100), 0x01);
  EXPECT_EQ(m.read8(0x101), 0x02);
  EXPECT_EQ(m.read8(0x102), 0x03);
  EXPECT_EQ(m.read8(0x103), 0x04);
  EXPECT_EQ(m.read16(0x100), 0x0201);
  EXPECT_EQ(m.read16(0x102), 0x0403);
}

TEST(Memory, HalfwordRoundTrip) {
  Memory m;
  m.write16(0x200, 0xBEEF);
  EXPECT_EQ(m.read16(0x200), 0xBEEF);
  EXPECT_EQ(m.read8(0x200), 0xEF);
  EXPECT_EQ(m.read8(0x201), 0xBE);
}

TEST(Memory, MisalignedAccessesFault) {
  Memory m;
  EXPECT_THROW((void)m.read16(1), MemoryFault);
  EXPECT_THROW((void)m.read32(2), MemoryFault);
  EXPECT_THROW(m.write16(3, 0), MemoryFault);
  EXPECT_THROW(m.write32(0x101, 0), MemoryFault);
  EXPECT_THROW((void)m.fetch32(0x1002), MemoryFault);
}

TEST(Memory, CrossPageBytes) {
  Memory m;
  const std::uint32_t boundary = Memory::kPageSize;
  m.write8(boundary - 1, 0x11);
  m.write8(boundary, 0x22);
  EXPECT_EQ(m.read8(boundary - 1), 0x11);
  EXPECT_EQ(m.read8(boundary), 0x22);
  EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(Memory, SparseFootprint) {
  Memory m;
  m.write32(0x0000'0000, 1);
  m.write32(0x8000'0000, 2);
  m.write32(0xFFFF'F000, 3);
  EXPECT_EQ(m.resident_pages(), 3u);
  EXPECT_EQ(m.read32(0x8000'0000), 2u);
}

TEST(Memory, LoadWordsAndReadBack) {
  Memory m;
  const std::array<std::uint32_t, 3> words = {10, 20, 30};
  m.load_words(0x1000, words);
  const auto back = m.read_words(0x1000, 3);
  EXPECT_EQ(back, (std::vector<std::uint32_t>{10, 20, 30}));
}

TEST(Memory, LoadBytes) {
  Memory m;
  const std::array<std::uint8_t, 5> bytes = {1, 2, 3, 4, 5};
  m.load_bytes(Memory::kPageSize - 2, bytes);  // crosses a page boundary
  EXPECT_EQ(m.read8(Memory::kPageSize - 2), 1);
  EXPECT_EQ(m.read8(Memory::kPageSize + 2), 5);
}

TEST(Memory, StatsCountAccesses) {
  Memory m;
  m.write32(0, 1);
  m.write8(4, 2);
  (void)m.read16(0);
  (void)m.read32(0);
  EXPECT_EQ(m.stats().writes, 2u);
  EXPECT_EQ(m.stats().reads, 2u);
  EXPECT_EQ(m.stats().bytes_written, 5u);
  EXPECT_EQ(m.stats().bytes_read, 6u);
  m.reset_stats();
  EXPECT_EQ(m.stats().reads, 0u);
}

TEST(Memory, FetchDoesNotCountInDataStats) {
  Memory m;
  m.write32(0x100, 42);
  m.reset_stats();
  EXPECT_EQ(m.fetch32(0x100), 42u);
  EXPECT_EQ(m.stats().reads, 0u);
}

TEST(Memory, OverwriteInPlace) {
  Memory m;
  m.write32(0x40, 0xAAAA'AAAA);
  m.write32(0x40, 0x5555'5555);
  EXPECT_EQ(m.read32(0x40), 0x5555'5555u);
}

// ---- copy-on-write baseline ----

/// Writes the deterministic test image (several pages) into `m`.
void write_image(Memory& m) {
  for (std::uint32_t addr = 0; addr < 4 * Memory::kPageSize; addr += 4) {
    m.write32(addr, addr * 2654435761u + 1);
  }
  m.reset_stats();
}

/// A small deterministic baseline image spanning several pages.
std::shared_ptr<const Memory> make_baseline() {
  auto image = std::make_shared<Memory>();
  write_image(*image);
  return image;
}

TEST(MemoryCow, ReadsFallThroughToBaseline) {
  const auto baseline = make_baseline();
  Memory view;
  view.set_baseline(baseline);
  EXPECT_TRUE(view.has_baseline());
  EXPECT_EQ(view.read32(0x40), baseline->read32(0x40));
  EXPECT_EQ(view.fetch32(0x1000), baseline->fetch32(0x1000));
  // Beyond the baseline image: still zero.
  EXPECT_EQ(view.read32(8 * Memory::kPageSize), 0u);
  EXPECT_EQ(view.dirty_pages(), 0u);  // reads never privatize
}

TEST(MemoryCow, WritePrivatizesOnePage) {
  const auto baseline = make_baseline();
  Memory view;
  view.set_baseline(baseline);
  const std::uint32_t before = view.read32(0x104);
  view.write32(0x100, 0xDEAD'BEEF);
  EXPECT_EQ(view.dirty_pages(), 1u);
  EXPECT_EQ(view.read32(0x100), 0xDEAD'BEEFu);
  // The rest of the privatized page was copied, not zeroed.
  EXPECT_EQ(view.read32(0x104), before);
  // The shared baseline is untouched.
  EXPECT_NE(baseline->read32(0x100), 0xDEAD'BEEFu);
}

TEST(MemoryCow, ResetToBaselineDropsDirtyPages) {
  const auto baseline = make_baseline();
  Memory view;
  view.set_baseline(baseline);
  view.write32(0x100, 1);
  view.write32(Memory::kPageSize + 8, 2);
  view.write32(9 * Memory::kPageSize, 3);  // a page the baseline lacks
  EXPECT_EQ(view.dirty_pages(), 3u);
  view.reset_to_baseline();
  EXPECT_EQ(view.dirty_pages(), 0u);
  EXPECT_EQ(view.read32(0x100), baseline->read32(0x100));
  EXPECT_EQ(view.read32(9 * Memory::kPageSize), 0u);
  EXPECT_TRUE(view == *baseline);
}

TEST(MemoryCow, EpochAdvancesOnPrivatizationAndReset) {
  const auto baseline = make_baseline();
  Memory view;
  view.set_baseline(baseline);
  const std::uint64_t e0 = view.cow_epoch();
  view.write32(0x10, 1);  // privatizes page 0
  const std::uint64_t e1 = view.cow_epoch();
  EXPECT_GT(e1, e0);
  view.write32(0x20, 2);  // same page, already private: no bump
  EXPECT_EQ(view.cow_epoch(), e1);
  view.reset_to_baseline();
  EXPECT_GT(view.cow_epoch(), e1);
  const std::uint64_t e2 = view.cow_epoch();
  view.reset_to_baseline();  // nothing dirty: no bump
  EXPECT_EQ(view.cow_epoch(), e2);
}

TEST(MemoryCow, MisalignedFaultDoesNotPrivatize) {
  const auto baseline = make_baseline();
  Memory view;
  view.set_baseline(baseline);
  EXPECT_THROW(view.write32(0x101, 1), MemoryFault);
  EXPECT_THROW(view.write16(0x7, 1), MemoryFault);
  EXPECT_THROW((void)view.read32(0x2), MemoryFault);
  EXPECT_EQ(view.dirty_pages(), 0u);
  EXPECT_TRUE(view == *baseline);
}

TEST(MemoryCow, SetBaselineContracts) {
  const auto baseline = make_baseline();
  Memory chained;
  chained.set_baseline(baseline);
  auto shared_view = std::make_shared<Memory>();
  shared_view->set_baseline(baseline);

  Memory dirty;
  dirty.write8(0, 1);
  EXPECT_THROW(dirty.set_baseline(baseline), ContractViolation);
  Memory view;
  EXPECT_THROW(view.set_baseline(nullptr), ContractViolation);
  // No COW chains: a view cannot serve as another view's baseline.
  EXPECT_THROW(view.set_baseline(shared_view), ContractViolation);
  Memory plain;
  EXPECT_THROW(plain.reset_to_baseline(), ContractViolation);
}

TEST(MemoryCow, EqualityIgnoresResidencyDifferences) {
  const auto baseline = make_baseline();
  Memory view;
  view.set_baseline(baseline);
  // A privatized page with unchanged content stays equal to the baseline.
  const std::uint32_t v = view.read32(0x200);
  view.write32(0x200, v);
  EXPECT_EQ(view.dirty_pages(), 1u);
  EXPECT_TRUE(view == *baseline);
  // An all-zero private page equals absent memory on the other side.
  Memory a;
  Memory b;
  a.write32(5 * Memory::kPageSize, 0);
  EXPECT_TRUE(a == b);
  a.write32(5 * Memory::kPageSize, 7);
  EXPECT_FALSE(a == b);
}

/// Randomized write/reset fuzz: a COW view and a plain-copy oracle receive
/// the same writes; the view must stay equal to the oracle, and after
/// reset_to_baseline() it must match the pristine image again.
TEST(MemoryCow, FuzzAgainstPlainCopyOracle) {
  const auto baseline = make_baseline();
  Memory view;
  view.set_baseline(baseline);

  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int round = 0; round < 8; ++round) {
    Memory oracle;  // plain copy of the image, rebuilt the cold way
    write_image(oracle);
    for (int i = 0; i < 400; ++i) {
      // Cover baseline pages, fresh pages, and the page-boundary seam.
      const std::uint32_t addr =
          static_cast<std::uint32_t>(next() % (6 * Memory::kPageSize)) & ~3u;
      const auto value = static_cast<std::uint32_t>(next());
      view.write32(addr, value);
      oracle.write32(addr, value);
    }
    EXPECT_TRUE(view == oracle) << "round " << round;
    EXPECT_LE(view.dirty_pages(), 6u);
    view.reset_to_baseline();
    EXPECT_TRUE(view == *baseline) << "round " << round;
    EXPECT_EQ(view.dirty_pages(), 0u);
  }
}

}  // namespace
}  // namespace zolcsim::mem
