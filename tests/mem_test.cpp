#include <gtest/gtest.h>

#include <array>

#include "mem/memory.hpp"

namespace zolcsim::mem {
namespace {

TEST(Memory, UnwrittenReadsAsZero) {
  Memory m;
  EXPECT_EQ(m.read8(0), 0);
  EXPECT_EQ(m.read16(0x8000), 0);
  EXPECT_EQ(m.read32(0xFFFF'FFFCu), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);  // reads do not allocate
}

TEST(Memory, ByteRoundTrip) {
  Memory m;
  m.write8(5, 0xAB);
  EXPECT_EQ(m.read8(5), 0xAB);
  EXPECT_EQ(m.read8(4), 0);
  EXPECT_EQ(m.read8(6), 0);
}

TEST(Memory, LittleEndianComposition) {
  Memory m;
  m.write32(0x100, 0x0403'0201u);
  EXPECT_EQ(m.read8(0x100), 0x01);
  EXPECT_EQ(m.read8(0x101), 0x02);
  EXPECT_EQ(m.read8(0x102), 0x03);
  EXPECT_EQ(m.read8(0x103), 0x04);
  EXPECT_EQ(m.read16(0x100), 0x0201);
  EXPECT_EQ(m.read16(0x102), 0x0403);
}

TEST(Memory, HalfwordRoundTrip) {
  Memory m;
  m.write16(0x200, 0xBEEF);
  EXPECT_EQ(m.read16(0x200), 0xBEEF);
  EXPECT_EQ(m.read8(0x200), 0xEF);
  EXPECT_EQ(m.read8(0x201), 0xBE);
}

TEST(Memory, MisalignedAccessesFault) {
  Memory m;
  EXPECT_THROW((void)m.read16(1), MemoryFault);
  EXPECT_THROW((void)m.read32(2), MemoryFault);
  EXPECT_THROW(m.write16(3, 0), MemoryFault);
  EXPECT_THROW(m.write32(0x101, 0), MemoryFault);
  EXPECT_THROW((void)m.fetch32(0x1002), MemoryFault);
}

TEST(Memory, CrossPageBytes) {
  Memory m;
  const std::uint32_t boundary = Memory::kPageSize;
  m.write8(boundary - 1, 0x11);
  m.write8(boundary, 0x22);
  EXPECT_EQ(m.read8(boundary - 1), 0x11);
  EXPECT_EQ(m.read8(boundary), 0x22);
  EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(Memory, SparseFootprint) {
  Memory m;
  m.write32(0x0000'0000, 1);
  m.write32(0x8000'0000, 2);
  m.write32(0xFFFF'F000, 3);
  EXPECT_EQ(m.resident_pages(), 3u);
  EXPECT_EQ(m.read32(0x8000'0000), 2u);
}

TEST(Memory, LoadWordsAndReadBack) {
  Memory m;
  const std::array<std::uint32_t, 3> words = {10, 20, 30};
  m.load_words(0x1000, words);
  const auto back = m.read_words(0x1000, 3);
  EXPECT_EQ(back, (std::vector<std::uint32_t>{10, 20, 30}));
}

TEST(Memory, LoadBytes) {
  Memory m;
  const std::array<std::uint8_t, 5> bytes = {1, 2, 3, 4, 5};
  m.load_bytes(Memory::kPageSize - 2, bytes);  // crosses a page boundary
  EXPECT_EQ(m.read8(Memory::kPageSize - 2), 1);
  EXPECT_EQ(m.read8(Memory::kPageSize + 2), 5);
}

TEST(Memory, StatsCountAccesses) {
  Memory m;
  m.write32(0, 1);
  m.write8(4, 2);
  (void)m.read16(0);
  (void)m.read32(0);
  EXPECT_EQ(m.stats().writes, 2u);
  EXPECT_EQ(m.stats().reads, 2u);
  EXPECT_EQ(m.stats().bytes_written, 5u);
  EXPECT_EQ(m.stats().bytes_read, 6u);
  m.reset_stats();
  EXPECT_EQ(m.stats().reads, 0u);
}

TEST(Memory, FetchDoesNotCountInDataStats) {
  Memory m;
  m.write32(0x100, 42);
  m.reset_stats();
  EXPECT_EQ(m.fetch32(0x100), 42u);
  EXPECT_EQ(m.stats().reads, 0u);
}

TEST(Memory, OverwriteInPlace) {
  Memory m;
  m.write32(0x40, 0xAAAA'AAAA);
  m.write32(0x40, 0x5555'5555);
  EXPECT_EQ(m.read32(0x40), 0x5555'5555u);
}

}  // namespace
}  // namespace zolcsim::mem
