// Sweep-engine behaviour: thread-count invariance, parity with the serial
// experiment runner, dimension resolution, aggregates, emitters, and the
// predecoded-fetch equivalence the engine's fast path relies on.
#include <gtest/gtest.h>

#include "flow/cache.hpp"
#include "harness/sweep.hpp"

namespace zolcsim::harness {
namespace {

using codegen::MachineKind;
using cpu::BranchResolveStage;
using cpu::PipelineConfig;
using cpu::SpeculationPolicy;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.kernels = {"dotprod", "fir", "matmul"};
  spec.machines = {MachineKind::kXrDefault, MachineKind::kXrHrdwil,
                   MachineKind::kZolcLite};
  return spec;
}

TEST(Sweep, ReportIsIdenticalAcrossThreadCounts) {
  SweepSpec spec = small_spec();
  spec.threads = 1;
  const auto serial = run_sweep(spec);
  ASSERT_TRUE(serial.ok()) << serial.error().to_string();

  for (const unsigned threads : {2u, 4u, 8u}) {
    spec.threads = threads;
    const auto parallel = run_sweep(spec);
    ASSERT_TRUE(parallel.ok()) << parallel.error().to_string();
    ASSERT_EQ(serial.value().cells.size(), parallel.value().cells.size());
    for (std::size_t i = 0; i < serial.value().cells.size(); ++i) {
      const auto& a = serial.value().cells[i].result;
      const auto& b = parallel.value().cells[i].result;
      EXPECT_EQ(a.kernel, b.kernel);
      EXPECT_EQ(a.stats.cycles, b.stats.cycles);
      EXPECT_EQ(a.stats.instructions, b.stats.instructions);
      EXPECT_EQ(a.zolc_stats.continue_events, b.zolc_stats.continue_events);
    }
    // Byte-identical rendered artifacts, not just equal stats.
    EXPECT_EQ(serial.value().to_csv(), parallel.value().to_csv());
    EXPECT_EQ(serial.value().to_json(), parallel.value().to_json());
  }
}

TEST(Sweep, EngineMatchesSerialRunExperiment) {
  // The fig2 grid through the engine must reproduce the values the
  // pre-engine benchmarks computed with direct run_experiment calls.
  SweepSpec spec = small_spec();
  spec.threads = 4;
  const auto report = run_sweep(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();

  for (std::size_t k = 0; k < report.value().kernels.size(); ++k) {
    const kernels::Kernel* kernel =
        kernels::find_kernel(report.value().kernels[k]);
    ASSERT_NE(kernel, nullptr);
    for (std::size_t m = 0; m < report.value().machines.size(); ++m) {
      const auto direct =
          run_experiment(*kernel, report.value().machines[m]);
      ASSERT_TRUE(direct.ok()) << direct.error().to_string();
      const ExperimentResult& cell = report.value().at(k, m);
      EXPECT_EQ(direct.value().stats.cycles, cell.stats.cycles);
      EXPECT_EQ(direct.value().stats.instructions, cell.stats.instructions);
      EXPECT_EQ(direct.value().init_instructions, cell.init_instructions);
      EXPECT_EQ(direct.value().hw_loops, cell.hw_loops);
    }
  }
}

TEST(Sweep, EmptyDimensionsResolveToDefaults) {
  SweepSpec spec;
  spec.kernels = {"dotprod"};  // keep runtime small; machines/configs default
  const auto report = run_sweep(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().machines.size(), std::size(codegen::kAllMachines));
  EXPECT_EQ(report.value().configs.size(), 1u);
  EXPECT_EQ(report.value().cells.size(), std::size(codegen::kAllMachines));
}

TEST(Sweep, UnknownKernelFailsTheSweep) {
  SweepSpec spec;
  spec.kernels = {"no_such_kernel"};
  const auto report = run_sweep(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kUnknownKernel);
  EXPECT_NE(report.error().message.find("no_such_kernel"), std::string::npos);
}

TEST(Sweep, CompilesEachUnitExactlyOnceAcrossTheConfigAxis) {
  // The tentpole guarantee: the pipeline-config axis reuses compiled units.
  // 2 kernels x 2 machines x 3 configs = 12 cells but only 4 distinct
  // (kernel, machine, geometry) units; the other 8 cells must be cache hits.
  SweepSpec spec;
  spec.kernels = {"dotprod", "fir"};
  spec.machines = {MachineKind::kXrDefault, MachineKind::kZolcLite};
  spec.configs = {
      PipelineConfig{BranchResolveStage::kExecute,
                     SpeculationPolicy::kRollback, true},
      PipelineConfig{BranchResolveStage::kDecode, SpeculationPolicy::kGate,
                     true},
      PipelineConfig{BranchResolveStage::kExecute,
                     SpeculationPolicy::kRollback, false}};
  for (const unsigned threads : {1u, 4u}) {
    spec.threads = threads;
    const auto report = run_sweep(spec);
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    EXPECT_EQ(report.value().cells.size(), 12u);
    EXPECT_EQ(report.value().compile_cache_misses, 4u);
    EXPECT_EQ(report.value().compile_cache_hits, 8u);
  }
}

TEST(Sweep, CallerSuppliedCacheIsSharedAndCountersAreDeltas) {
  // Two sweeps over the same grid against one cache: the second compiles
  // nothing, and its report counts only its own delta -- not the cache's
  // lifetime totals.
  SweepSpec spec;
  spec.kernels = {"dotprod", "fir"};
  spec.machines = {MachineKind::kXrDefault, MachineKind::kZolcLite};
  flow::CompileCache cache;

  const auto cold = run_sweep(spec, cache);
  ASSERT_TRUE(cold.ok()) << cold.error().to_string();
  EXPECT_EQ(cold.value().compile_cache_misses, 4u);
  EXPECT_EQ(cold.value().compile_cache_hits, 0u);

  const auto warm = run_sweep(spec, cache);
  ASSERT_TRUE(warm.ok()) << warm.error().to_string();
  EXPECT_EQ(warm.value().compile_cache_misses, 0u);
  EXPECT_EQ(warm.value().compile_cache_hits, 4u);
  EXPECT_EQ(warm.value().to_csv(), cold.value().to_csv());

  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 4u);
}

TEST(Sweep, ReductionAndAggregateAreConsistent) {
  SweepSpec spec = small_spec();
  const auto report = run_sweep(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  const SweepReport& r = report.value();

  // Baseline machine reduces 0% against itself.
  for (std::size_t k = 0; k < r.kernels.size(); ++k) {
    EXPECT_DOUBLE_EQ(r.reduction(k, 0), 0.0);
  }
  // Aggregate average equals the mean of per-kernel reductions.
  double sum = 0.0;
  for (std::size_t k = 0; k < r.kernels.size(); ++k) sum += r.reduction(k, 2);
  const SweepAggregate agg = r.aggregate(2);
  EXPECT_DOUBLE_EQ(agg.avg_reduction,
                   sum / static_cast<double>(r.kernels.size()));
  EXPECT_GT(agg.avg_reduction, 0.0);  // ZOLClite beats the baseline
}

TEST(Sweep, ConfigGridIsSwept) {
  SweepSpec spec;
  spec.kernels = {"fir"};
  spec.machines = {MachineKind::kXrDefault, MachineKind::kZolcLite};
  spec.configs = {
      PipelineConfig{BranchResolveStage::kExecute, SpeculationPolicy::kRollback,
                     true},
      PipelineConfig{BranchResolveStage::kDecode, SpeculationPolicy::kGate,
                     true}};
  const auto report = run_sweep(spec);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().cells.size(), 4u);
  // Early branch resolution squashes strictly fewer wrong-path slots than
  // EX resolution on the software-loop baseline (1 vs 2 per taken branch).
  EXPECT_LT(report.value().at(0, 0, 1).stats.control_flush_slots,
            report.value().at(0, 0, 0).stats.control_flush_slots);
}

TEST(Sweep, FindLooksUpByName) {
  const auto report = run_sweep(small_spec());
  ASSERT_TRUE(report.ok());
  const ExperimentResult* cell =
      report.value().find("fir", MachineKind::kZolcLite);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->kernel, "fir");
  EXPECT_EQ(report.value().find("fir", MachineKind::kZolcFull), nullptr);
  EXPECT_EQ(report.value().find("nope", MachineKind::kZolcLite), nullptr);
}

TEST(Sweep, PredecodeDoesNotChangeArchitecturalResults) {
  const kernels::Kernel* kernel = kernels::find_kernel("matmul");
  ASSERT_NE(kernel, nullptr);
  for (const MachineKind machine :
       {MachineKind::kXrDefault, MachineKind::kZolcFull}) {
    const auto fast = run_experiment(*kernel, machine, {}, {}, 200'000'000,
                                     /*predecode=*/true);
    const auto slow = run_experiment(*kernel, machine, {}, {}, 200'000'000,
                                     /*predecode=*/false);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_EQ(fast.value().stats.cycles, slow.value().stats.cycles);
    EXPECT_EQ(fast.value().stats.instructions, slow.value().stats.instructions);
    EXPECT_EQ(fast.value().stats.zolc_fetch_events,
              slow.value().stats.zolc_fetch_events);
    EXPECT_EQ(fast.value().zolc_stats.done_events,
              slow.value().zolc_stats.done_events);
  }
}

TEST(Sweep, MachinesForVariantsMapsAllVariants) {
  const auto machines = machines_for_variants({zolc::ZolcVariant::kMicro,
                                               zolc::ZolcVariant::kLite,
                                               zolc::ZolcVariant::kFull});
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0], MachineKind::kUZolc);
  EXPECT_EQ(machines[1], MachineKind::kZolcLite);
  EXPECT_EQ(machines[2], MachineKind::kZolcFull);
}

TEST(Sweep, ThreadsFromArgs) {
  const char* argv1[] = {"bench", "--threads=3"};
  EXPECT_EQ(threads_from_args(2, const_cast<char**>(argv1)), 3u);
  const char* argv2[] = {"bench"};
  EXPECT_EQ(threads_from_args(1, const_cast<char**>(argv2)), 0u);
  const char* argv3[] = {"bench", "--threads=bogus"};
  EXPECT_EQ(threads_from_args(2, const_cast<char**>(argv3)), 0u);
}

}  // namespace
}  // namespace zolcsim::harness
