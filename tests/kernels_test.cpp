// End-to-end benchmark validation: every kernel x every machine
// configuration must lower, run to completion, and produce outputs matching
// the golden reference. Also checks the performance ordering the paper
// reports and size scaling.
#include <gtest/gtest.h>

#include <limits>

#include "harness/experiment.hpp"

namespace zolcsim::kernels {
namespace {

using codegen::MachineKind;
using harness::run_experiment;

TEST(Lcg, RangeStaysInBoundsAndSurvivesFullDomainSpans) {
  Lcg lcg(0xC0FFEE01);
  for (int i = 0; i < 1000; ++i) {
    const std::int32_t v = lcg.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Regression: a span covering the whole int32 domain used to compute
  // `hi - lo + 1 == 0` and take `next() % 0`. Any value is in range; the
  // call just must be well-defined and deterministic.
  Lcg a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    const std::int32_t full = a.range(std::numeric_limits<std::int32_t>::min(),
                                      std::numeric_limits<std::int32_t>::max());
    EXPECT_EQ(full, b.range(std::numeric_limits<std::int32_t>::min(),
                            std::numeric_limits<std::int32_t>::max()));
  }
  // Large-but-not-full spans whose width exceeds INT32_MAX.
  Lcg c(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int32_t v = c.range(std::numeric_limits<std::int32_t>::min() + 1,
                                   std::numeric_limits<std::int32_t>::max());
    EXPECT_GE(v, std::numeric_limits<std::int32_t>::min() + 1);
  }
}

TEST(KernelRegistry, HasTwelveDistinctKernels) {
  const auto& reg = kernel_registry();
  EXPECT_EQ(reg.size(), 12u);
  for (const auto& k : reg) {
    EXPECT_EQ(find_kernel(k->name()), k.get());
    EXPECT_FALSE(k->description().empty());
  }
  EXPECT_EQ(find_kernel("nonexistent"), nullptr);
}

struct MatrixCase {
  const Kernel* kernel;
  MachineKind machine;
};

class KernelMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(KernelMatrix, LowersRunsAndVerifies) {
  const auto& [kernel, machine] = GetParam();
  const auto result = run_experiment(*kernel, machine);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_GT(result.value().stats.cycles, 0u);
  EXPECT_GT(result.value().stats.instructions, 0u);
  if (machine == MachineKind::kZolcLite || machine == MachineKind::kZolcFull ||
      machine == MachineKind::kUZolc) {
    EXPECT_GT(result.value().hw_loops, 0u)
        << "every kernel should get at least one hardware loop";
    EXPECT_GT(result.value().stats.zolc_fetch_events, 0u);
  }
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const auto& kernel : kernel_registry()) {
    for (const MachineKind machine : codegen::kAllMachines) {
      cases.push_back(MatrixCase{kernel.get(), machine});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllMachines, KernelMatrix, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return std::string(info.param.kernel->name()) + "_" +
             std::string(codegen::machine_name(info.param.machine));
    });

class KernelOrdering : public ::testing::TestWithParam<const Kernel*> {};

TEST_P(KernelOrdering, MachinesOrderAsThePaperReports) {
  const Kernel& kernel = *GetParam();
  const auto base = run_experiment(kernel, MachineKind::kXrDefault);
  ASSERT_TRUE(base.ok()) << base.error().to_string();
  const std::uint64_t baseline = base.value().stats.cycles;

  // XRhrdwil never loses (it gains only where an index is a pure counter,
  // since the base ISA already has fused compare-and-branch).
  const auto hrdwil = run_experiment(kernel, MachineKind::kXrHrdwil);
  ASSERT_TRUE(hrdwil.ok());
  EXPECT_LE(hrdwil.value().stats.cycles, baseline);

  // uZOLC always accelerates the hottest innermost loop.
  const auto micro = run_experiment(kernel, MachineKind::kUZolc);
  ASSERT_TRUE(micro.ok());
  EXPECT_LT(micro.value().stats.cycles, baseline);

  // ZOLClite may degrade to near-baseline on break-dominated kernels (the
  // multi-exit loop and its descendants fall back to software); allow the
  // one-time init overhead but nothing more.
  const auto lite = run_experiment(kernel, MachineKind::kZolcLite);
  ASSERT_TRUE(lite.ok());
  EXPECT_LE(lite.value().stats.cycles,
            baseline + lite.value().init_instructions + 8);

  // ZOLCfull handles everything in hardware: strictly better than the
  // baseline, and never slower than lite.
  const auto full = run_experiment(kernel, MachineKind::kZolcFull);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(full.value().stats.cycles, baseline);
  EXPECT_LE(full.value().stats.cycles, lite.value().stats.cycles);
  // Full manages a superset of uZOLC's loops; allow only the init-length
  // difference between the two configurations.
  EXPECT_LE(full.value().stats.cycles,
            micro.value().stats.cycles + full.value().init_instructions);
}

std::vector<const Kernel*> all_kernels() {
  std::vector<const Kernel*> out;
  for (const auto& k : kernel_registry()) out.push_back(k.get());
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelOrdering,
                         ::testing::ValuesIn(all_kernels()),
                         [](const ::testing::TestParamInfo<const Kernel*>& i) {
                           return std::string(i.param->name());
                         });

TEST(KernelScaling, LargerProblemsStillVerify) {
  KernelEnv env;
  env.scale = 2;
  for (const char* name : {"dotprod", "fir", "matmul", "fft", "crc32"}) {
    const Kernel* kernel = find_kernel(name);
    ASSERT_NE(kernel, nullptr);
    for (const MachineKind machine :
         {MachineKind::kXrDefault, MachineKind::kZolcLite}) {
      const auto run = run_experiment(*kernel, machine, env);
      ASSERT_TRUE(run.ok()) << name << ": " << run.error().to_string();
    }
  }
}

TEST(KernelSeeds, DifferentSeedsStillVerify) {
  for (const std::uint32_t seed : {1u, 42u, 0xDEADBEEFu}) {
    KernelEnv env;
    env.seed = seed;
    for (const char* name : {"vecmax", "me_tss", "iir_biquad"}) {
      const Kernel* kernel = find_kernel(name);
      ASSERT_NE(kernel, nullptr);
      const auto run = run_experiment(*kernel, MachineKind::kZolcFull, env);
      ASSERT_TRUE(run.ok()) << name << " seed=" << seed << ": "
                            << run.error().to_string();
    }
  }
}

TEST(KernelZolc, MeTssExercisesExitRecordsOnFull) {
  const Kernel* kernel = find_kernel("me_tss");
  ASSERT_NE(kernel, nullptr);
  const auto full = run_experiment(*kernel, MachineKind::kZolcFull);
  ASSERT_TRUE(full.ok()) << full.error().to_string();
  EXPECT_GT(full.value().zolc_stats.exit_matches, 0u)
      << "the planted perfect match should take the candidate-loop exit";

  const auto lite = run_experiment(*kernel, MachineKind::kZolcLite);
  ASSERT_TRUE(lite.ok()) << lite.error().to_string();
  EXPECT_EQ(lite.value().zolc_stats.exit_matches, 0u);
  // Lite demotes the multi-exit candidate loop, so full is at least as fast.
  EXPECT_LE(full.value().stats.cycles, lite.value().stats.cycles);
}

TEST(KernelZolc, PerfectNestsCascade) {
  for (const char* name : {"matmul", "conv2d", "me_fsbm"}) {
    const Kernel* kernel = find_kernel(name);
    const auto run = run_experiment(*kernel, MachineKind::kZolcLite);
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    EXPECT_GT(run.value().zolc_stats.cascade_chains, 0u) << name;
  }
}

TEST(KernelZolc, InitOverheadIsSmallFractionOfCycles) {
  for (const auto& kernel : kernel_registry()) {
    const auto run = run_experiment(*kernel, MachineKind::kZolcLite);
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    const double frac = static_cast<double>(run.value().init_instructions) /
                        static_cast<double>(run.value().stats.cycles);
    EXPECT_LT(frac, 0.10) << kernel->name()
                          << ": init should be a small one-time cost";
  }
}

}  // namespace
}  // namespace zolcsim::kernels
