// Functional (ISS) semantics: one test per instruction class, each checking
// architecturally visible results against hand-computed values.
#include <gtest/gtest.h>

#include <limits>

#include "sim_test_util.hpp"

namespace zolcsim::cpu {
namespace {

namespace b = isa::build;
using isa::Instruction;
using test::emit_li;
using test::run_iss;

std::int32_t run_binary_op(Instruction op_instr, std::int32_t a,
                           std::int32_t b_val, std::uint8_t dest = 3) {
  std::vector<Instruction> prog;
  emit_li(prog, 1, static_cast<std::uint32_t>(a));
  emit_li(prog, 2, static_cast<std::uint32_t>(b_val));
  prog.push_back(op_instr);
  prog.push_back(b::halt());
  return run_iss(prog).regs.read(dest);
}

TEST(ExecAlu, AddSubWrapAround) {
  EXPECT_EQ(run_binary_op(b::add(3, 1, 2), 5, 7), 12);
  EXPECT_EQ(run_binary_op(b::add(3, 1, 2), INT32_MAX, 1), INT32_MIN);
  EXPECT_EQ(run_binary_op(b::sub(3, 1, 2), 5, 7), -2);
  EXPECT_EQ(run_binary_op(b::sub(3, 1, 2), INT32_MIN, 1), INT32_MAX);
}

TEST(ExecAlu, Bitwise) {
  EXPECT_EQ(run_binary_op(b::and_(3, 1, 2), 0x0FF0, 0x00FF), 0x00F0);
  EXPECT_EQ(run_binary_op(b::or_(3, 1, 2), 0x0FF0, 0x00FF), 0x0FFF);
  EXPECT_EQ(run_binary_op(b::xor_(3, 1, 2), 0x0FF0, 0x00FF), 0x0F0F);
  EXPECT_EQ(run_binary_op(b::nor_(3, 1, 2), 0, 0), -1);
}

TEST(ExecAlu, SetLessThan) {
  EXPECT_EQ(run_binary_op(b::slt(3, 1, 2), -1, 1), 1);
  EXPECT_EQ(run_binary_op(b::slt(3, 1, 2), 1, -1), 0);
  EXPECT_EQ(run_binary_op(b::sltu(3, 1, 2), -1, 1), 0);  // 0xFFFFFFFF > 1
  EXPECT_EQ(run_binary_op(b::sltu(3, 1, 2), 1, -1), 1);
}

TEST(ExecAlu, ShiftsImmediate) {
  std::vector<Instruction> prog;
  emit_li(prog, 2, 0x8000'0001u);
  prog.push_back(b::sll(3, 2, 1));
  prog.push_back(b::srl(4, 2, 1));
  prog.push_back(b::sra(5, 2, 1));
  prog.push_back(b::sll(6, 2, 0));
  prog.push_back(b::halt());
  const auto r = run_iss(prog);
  EXPECT_EQ(r.regs.read_u(3), 0x0000'0002u);
  EXPECT_EQ(r.regs.read_u(4), 0x4000'0000u);
  EXPECT_EQ(r.regs.read_u(5), 0xC000'0000u);
  EXPECT_EQ(r.regs.read_u(6), 0x8000'0001u);
}

TEST(ExecAlu, VariableShiftsMaskAmountTo5Bits) {
  // shift amount 33 & 31 == 1
  EXPECT_EQ(run_binary_op(b::sllv(3, 1, 2), 33, 1), 2);
  EXPECT_EQ(run_binary_op(b::srlv(3, 1, 2), 32, 8), 8);  // 32&31==0
  EXPECT_EQ(run_binary_op(b::srav(3, 1, 2), 1, -4), -2);
}

TEST(ExecAlu, LuiOriComposition) {
  std::vector<Instruction> prog;
  prog.push_back(b::lui(1, 0xDEAD));
  prog.push_back(b::ori(1, 1, 0xBEEF));
  prog.push_back(b::halt());
  EXPECT_EQ(run_iss(prog).regs.read_u(1), 0xDEAD'BEEFu);
}

TEST(ExecAlu, ImmediateOps) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(1, 0, 100));
  prog.push_back(b::addi(2, 1, -1));
  prog.push_back(b::slti(3, 1, 101));
  prog.push_back(b::sltiu(4, 1, 99));
  prog.push_back(b::andi(5, 1, 0x6));
  prog.push_back(b::xori(6, 1, 0xFF));
  prog.push_back(b::halt());
  const auto r = run_iss(prog);
  EXPECT_EQ(r.regs.read(1), 100);
  EXPECT_EQ(r.regs.read(2), 99);
  EXPECT_EQ(r.regs.read(3), 1);
  EXPECT_EQ(r.regs.read(4), 0);
  EXPECT_EQ(r.regs.read(5), 100 & 6);
  EXPECT_EQ(r.regs.read(6), 100 ^ 0xFF);
}

TEST(ExecDsp, MultiplyFamily) {
  EXPECT_EQ(run_binary_op(b::mul(3, 1, 2), 7, -6), -42);
  EXPECT_EQ(run_binary_op(b::mul(3, 1, 2), 0x10000, 0x10000), 0);  // low 32
  EXPECT_EQ(run_binary_op(b::mulh(3, 1, 2), 0x10000, 0x10000), 1);
  EXPECT_EQ(run_binary_op(b::mulh(3, 1, 2), -1, -1), 0);
  EXPECT_EQ(run_binary_op(b::mulhu(3, 1, 2), -1, -1), -2);  // 0xFFFFFFFE
}

TEST(ExecDsp, MacAccumulates) {
  std::vector<Instruction> prog;
  emit_li(prog, 1, 3);
  emit_li(prog, 2, 4);
  emit_li(prog, 3, 100);
  prog.push_back(b::mac(3, 1, 2));  // 100 + 12
  prog.push_back(b::mac(3, 1, 2));  // 112 + 12
  prog.push_back(b::halt());
  EXPECT_EQ(run_iss(prog).regs.read(3), 124);
}

TEST(ExecDsp, MinMaxAbsClz) {
  EXPECT_EQ(run_binary_op(b::max(3, 1, 2), -5, 3), 3);
  EXPECT_EQ(run_binary_op(b::min(3, 1, 2), -5, 3), -5);
  std::vector<Instruction> prog;
  emit_li(prog, 1, static_cast<std::uint32_t>(-7));
  prog.push_back(b::abs_(3, 1));
  emit_li(prog, 2, 0x0001'0000u);
  prog.push_back(b::clz(4, 2));
  prog.push_back(b::clz(5, 0));
  prog.push_back(b::halt());
  const auto r = run_iss(prog);
  EXPECT_EQ(r.regs.read(3), 7);
  EXPECT_EQ(r.regs.read(4), 15);
  EXPECT_EQ(r.regs.read(5), 32);
}

TEST(ExecMem, LoadStoreWidthsAndExtension) {
  std::vector<Instruction> prog;
  emit_li(prog, 1, 0x2000);            // base
  emit_li(prog, 2, 0xFFFF'FF80u);      // -128 pattern
  prog.push_back(b::sw(2, 0, 1));
  prog.push_back(b::lb(3, 0, 1));      // sign-extended byte
  prog.push_back(b::lbu(4, 0, 1));     // zero-extended byte
  prog.push_back(b::lh(5, 0, 1));
  prog.push_back(b::lhu(6, 0, 1));
  prog.push_back(b::lw(7, 0, 1));
  prog.push_back(b::halt());
  const auto r = run_iss(prog);
  EXPECT_EQ(r.regs.read(3), -128);
  EXPECT_EQ(r.regs.read(4), 0x80);
  EXPECT_EQ(r.regs.read(5), -128);
  EXPECT_EQ(r.regs.read(6), 0xFF80);
  EXPECT_EQ(r.regs.read_u(7), 0xFFFF'FF80u);
}

TEST(ExecMem, SubWordStoresMerge) {
  std::vector<Instruction> prog;
  emit_li(prog, 1, 0x2000);
  emit_li(prog, 2, 0x1111'1111u);
  prog.push_back(b::sw(2, 0, 1));
  emit_li(prog, 3, 0xAB);
  prog.push_back(b::sb(3, 1, 1));   // byte 1
  emit_li(prog, 4, 0xCDEF);
  prog.push_back(b::sh(4, 2, 1));   // upper half
  prog.push_back(b::lw(5, 0, 1));
  prog.push_back(b::halt());
  EXPECT_EQ(run_iss(prog).regs.read_u(5), 0xCDEF'AB11u);
}

TEST(ExecMem, NegativeOffsets) {
  std::vector<Instruction> prog;
  emit_li(prog, 1, 0x2010);
  emit_li(prog, 2, 77);
  prog.push_back(b::sw(2, -16, 1));
  prog.push_back(b::lw(3, -16, 1));
  prog.push_back(b::halt());
  EXPECT_EQ(run_iss(prog).regs.read(3), 77);
}

struct BranchCase {
  Instruction instr;
  std::int32_t rs;
  std::int32_t rt;
  bool taken;
  const char* name;
};

class BranchSemantics : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchSemantics, TakenMatchesSpec) {
  const BranchCase& c = GetParam();
  // Layout: set r1, r2; branch +1 over a marker write; marker r10=1 executes
  // only when the branch is NOT taken.
  std::vector<Instruction> prog;
  emit_li(prog, 1, static_cast<std::uint32_t>(c.rs));
  emit_li(prog, 2, static_cast<std::uint32_t>(c.rt));
  Instruction br = c.instr;
  br.rs = 1;
  br.rt = 2;
  br.imm = 1;
  prog.push_back(br);
  prog.push_back(b::addi(10, 0, 1));
  prog.push_back(b::halt());
  const auto r = run_iss(prog);
  EXPECT_EQ(r.regs.read(10) == 0, c.taken) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, BranchSemantics,
    ::testing::Values(
        BranchCase{b::beq(0, 0, 0), 4, 4, true, "beq_eq"},
        BranchCase{b::beq(0, 0, 0), 4, 5, false, "beq_ne"},
        BranchCase{b::bne(0, 0, 0), 4, 5, true, "bne_ne"},
        BranchCase{b::bne(0, 0, 0), 4, 4, false, "bne_eq"},
        BranchCase{b::blt(0, 0, 0), -1, 0, true, "blt_neg"},
        BranchCase{b::blt(0, 0, 0), 0, 0, false, "blt_eq"},
        BranchCase{b::bge(0, 0, 0), 0, 0, true, "bge_eq"},
        BranchCase{b::bge(0, 0, 0), -2, -1, false, "bge_lt"},
        BranchCase{b::bltu(0, 0, 0), 1, -1, true, "bltu_wrap"},
        BranchCase{b::bltu(0, 0, 0), -1, 1, false, "bltu_wrap2"},
        BranchCase{b::bgeu(0, 0, 0), -1, 1, true, "bgeu_wrap"},
        BranchCase{b::blez(0, 0), 0, 0, true, "blez_zero"},
        BranchCase{b::blez(0, 0), 1, 0, false, "blez_pos"},
        BranchCase{b::bgtz(0, 0), 1, 0, true, "bgtz_pos"},
        BranchCase{b::bgtz(0, 0), 0, 0, false, "bgtz_zero"}),
    [](const ::testing::TestParamInfo<BranchCase>& info) {
      return info.param.name;
    });

TEST(ExecBranch, DbneDecrementsAndBranches) {
  // Loop three times: r1 = 3; body increments r2.
  std::vector<Instruction> prog;
  emit_li(prog, 1, 3);
  prog.push_back(b::addi(2, 2, 1));   // loop body (also the dbne target)
  prog.push_back(b::dbne(1, -2));     // back to the addi
  prog.push_back(b::halt());
  const auto r = run_iss(prog);
  EXPECT_EQ(r.regs.read(2), 3);
  EXPECT_EQ(r.regs.read(1), 0);  // counter consumed
}

TEST(ExecJump, JalLinksAndJrReturns) {
  const std::uint32_t base = 0x1000;
  // 0x1000 addi r4,r0,1 ; 0x1004 jal 0x1010 ; 0x1008 addi r5,r0,1 ;
  // 0x100C halt ; 0x1010 addi r6,r0,1 ; 0x1014 jr $ra
  std::vector<Instruction> prog;
  prog.push_back(b::addi(4, 0, 1));
  prog.push_back(b::jal(base + 0x10));
  prog.push_back(b::addi(5, 0, 1));
  prog.push_back(b::halt());
  prog.push_back(b::addi(6, 0, 1));
  prog.push_back(b::jr(31));
  const auto r = run_iss(prog, nullptr, base);
  EXPECT_EQ(r.regs.read(4), 1);
  EXPECT_EQ(r.regs.read(5), 1);  // executed after return
  EXPECT_EQ(r.regs.read(6), 1);
  EXPECT_EQ(r.regs.read_u(31), base + 0x8);
}

TEST(ExecJump, JalrLinksIntoChosenRegister) {
  const std::uint32_t base = 0x1000;
  std::vector<Instruction> prog;
  emit_li(prog, 9, base + 0x10);       // 0x1000 target address
  prog.push_back(b::jalr(20, 9));      // 0x1004
  prog.push_back(b::halt());           // 0x1008 (skipped first)
  prog.push_back(b::nop());            // 0x100C
  prog.push_back(b::jr(20));           // 0x1010 -> back to 0x1008
  const auto r = run_iss(prog, nullptr, base);
  EXPECT_EQ(r.regs.read_u(20), base + 0x8);
}

TEST(ExecMisc, WritesToZeroRegisterIgnored) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(0, 0, 55));
  prog.push_back(b::add(3, 0, 0));
  prog.push_back(b::halt());
  const auto r = run_iss(prog);
  EXPECT_EQ(r.regs.read(0), 0);
  EXPECT_EQ(r.regs.read(3), 0);
}

TEST(ExecMisc, IllegalInstructionTraps) {
  mem::Memory memory;
  memory.load_words(0x1000, std::vector<std::uint32_t>{0xFFFF'FFFFu});
  Iss iss(memory);
  iss.set_pc(0x1000);
  EXPECT_THROW(iss.step(), SimError);
}

TEST(ExecMisc, ZolcInstructionWithoutAccelTraps) {
  std::vector<isa::Instruction> prog;
  prog.push_back(b::zoloff());
  prog.push_back(b::halt());
  EXPECT_THROW(run_iss(prog), SimError);
}

TEST(ExecMisc, RunHonorsStepLimit) {
  // Infinite loop: j self.
  const std::uint32_t base = 0x1000;
  std::vector<isa::Instruction> prog;
  prog.push_back(b::j(base));
  mem::Memory memory;
  test::load_program(memory, base, prog);
  Iss iss(memory);
  iss.set_pc(base);
  EXPECT_THROW(iss.run(1000), SimError);
}

TEST(ExecMisc, HaltStopsExecution) {
  std::vector<isa::Instruction> prog;
  prog.push_back(b::addi(1, 0, 1));
  prog.push_back(b::halt());
  prog.push_back(b::addi(1, 0, 99));  // must not execute
  const auto r = run_iss(prog);
  EXPECT_EQ(r.regs.read(1), 1);
  EXPECT_EQ(r.stats.instructions, 2u);
}

}  // namespace
}  // namespace zolcsim::cpu
