// CFG / dominator / loop-forest analysis, validated both on hand-built
// control flow and on real lowered kernels.
#include <gtest/gtest.h>

#include "cfg/cfg.hpp"
#include "codegen/lower.hpp"
#include "kernels/kernels.hpp"

namespace zolcsim::cfg {
namespace {

namespace b = isa::build;
using isa::Instruction;

constexpr std::uint32_t kBase = 0x1000;

// ---------------- block construction ----------------

TEST(CfgBlocks, StraightLineIsOneBlock) {
  std::vector<Instruction> code = {b::addi(1, 0, 1), b::addi(2, 0, 2),
                                   b::halt()};
  Cfg cfg(code, kBase);
  ASSERT_EQ(cfg.block_count(), 1u);
  EXPECT_EQ(cfg.blocks()[0].first, 0u);
  EXPECT_EQ(cfg.blocks()[0].last, 2u);
  EXPECT_TRUE(cfg.blocks()[0].succs.empty());
}

TEST(CfgBlocks, BranchSplitsBlocks) {
  // 0: beq -> 3 ; 1: addi ; 2: halt ; 3: halt
  std::vector<Instruction> code = {b::beq(1, 2, 2), b::addi(1, 0, 1),
                                   b::halt(), b::halt()};
  Cfg cfg(code, kBase);
  ASSERT_EQ(cfg.block_count(), 3u);
  EXPECT_EQ(cfg.blocks()[0].succs.size(), 2u);  // taken + fallthrough
  EXPECT_EQ(cfg.block_of(1), 1);
  EXPECT_EQ(cfg.block_of(3), 2);
}

TEST(CfgBlocks, BackwardBranchMakesLoop) {
  // 0: addi ; 1: addi ; 2: bne -> 1 ; 3: halt
  std::vector<Instruction> code = {b::addi(1, 0, 8), b::addi(2, 2, 1),
                                   b::bne(1, 2, -2), b::halt()};
  Cfg cfg(code, kBase);
  const auto forest = find_loops(cfg);
  ASSERT_EQ(forest.loops.size(), 1u);
  EXPECT_EQ(forest.loops[0].depth, 1u);
  EXPECT_FALSE(forest.loops[0].multi_exit());
  EXPECT_FALSE(forest.loops[0].multi_entry());
  EXPECT_FALSE(forest.irreducible);
}

TEST(CfgBlocks, IndirectJumpHasNoStaticSuccessor) {
  std::vector<Instruction> code = {b::jr(31), b::halt()};
  Cfg cfg(code, kBase);
  EXPECT_TRUE(cfg.blocks()[0].succs.empty());
}

// ---------------- dominators ----------------

TEST(CfgDominators, DiamondJoins) {
  // 0: beq->3 ; 1: nop ; 2: j 4 ; 3: nop ; 4: halt  (diamond, join at 4)
  std::vector<Instruction> code = {
      b::beq(1, 2, 2),          // block 0 -> B(3) and B(1)
      b::nop(),                 // block 1
      b::j(kBase + 4 * 4),      // -> block 3 (join)
      b::nop(),                 // block 2 (taken side)
      b::halt(),                // block 3
  };
  Cfg cfg(code, kBase);
  ASSERT_EQ(cfg.block_count(), 4u);
  EXPECT_TRUE(cfg.dominates(0, 3));
  EXPECT_FALSE(cfg.dominates(1, 3));
  EXPECT_FALSE(cfg.dominates(2, 3));
  EXPECT_EQ(cfg.idom()[3], 0u);
}

TEST(CfgDominators, EntryDominatesEverything) {
  std::vector<Instruction> code = {b::beq(1, 2, 1), b::nop(), b::bne(1, 2, -3),
                                   b::halt()};
  Cfg cfg(code, kBase);
  for (unsigned bi = 0; bi < cfg.block_count(); ++bi) {
    if (cfg.reachable(bi)) {
      EXPECT_TRUE(cfg.dominates(0, bi));
    }
  }
}

TEST(CfgDominators, UnreachableBlocksAreFlagged) {
  // 0: j 2 ; 1: nop (dead) ; 2: halt
  std::vector<Instruction> code = {b::j(kBase + 2 * 4), b::nop(), b::halt()};
  Cfg cfg(code, kBase);
  ASSERT_EQ(cfg.block_count(), 3u);
  EXPECT_FALSE(cfg.reachable(1));
  EXPECT_TRUE(cfg.reachable(2));
}

// ---------------- loops from lowered programs ----------------

LoopForest forest_of(std::string_view kernel_name,
                     codegen::MachineKind machine) {
  const kernels::Kernel* kernel = kernels::find_kernel(kernel_name);
  EXPECT_NE(kernel, nullptr);
  auto prog = codegen::lower(kernel->build({}), machine, kBase);
  EXPECT_TRUE(prog.ok());
  Cfg cfg(prog.value().code, kBase);
  return find_loops(cfg);
}

TEST(CfgLoops, MatmulDefaultHasTripleNest) {
  const auto forest = forest_of("matmul", codegen::MachineKind::kXrDefault);
  EXPECT_EQ(forest.loops.size(), 3u);
  EXPECT_EQ(forest.max_depth(), 3u);
  EXPECT_FALSE(forest.irreducible);
}

TEST(CfgLoops, MeFsbmDefaultHasFourDeepNest) {
  const auto forest = forest_of("me_fsbm", codegen::MachineKind::kXrDefault);
  EXPECT_EQ(forest.loops.size(), 4u);
  EXPECT_EQ(forest.max_depth(), 4u);
}

TEST(CfgLoops, ZolcLoweringRemovesSoftwareLoops) {
  // All loops hardware-managed: no back edges remain in the machine code.
  const auto forest = forest_of("matmul", codegen::MachineKind::kZolcLite);
  EXPECT_EQ(forest.loops.size(), 0u);
}

TEST(CfgLoops, LiteKeepsSoftwareLoopForBreakKernels) {
  // me_tss under lite: the multi-exit candidate loop (and its inner SAD
  // loops) stay in software.
  const auto forest = forest_of("me_tss", codegen::MachineKind::kZolcLite);
  EXPECT_GE(forest.loops.size(), 1u);
  // Under full, everything is hardware.
  const auto full = forest_of("me_tss", codegen::MachineKind::kZolcFull);
  EXPECT_EQ(full.loops.size(), 0u);
}

TEST(CfgLoops, TssSoftwareLoopIsMultiExit) {
  const auto forest = forest_of("me_tss", codegen::MachineKind::kXrDefault);
  bool any_multi_exit = false;
  for (const auto& loop : forest.loops) {
    if (loop.multi_exit()) any_multi_exit = true;
  }
  EXPECT_TRUE(any_multi_exit)
      << "the candidate loop has both a normal exit and the break";
}

// ---------------- multi-entry (irreducible) detection ----------------

TEST(CfgLoops, JumpToLoopMidpointRotatesTheHeader) {
  // 0: j MID ; LOOP: 1: addi ; MID: 2: addi ; 3: bne -> 1 ; 4: halt
  // Entering at MID simply makes MID the dominating header: reducible.
  std::vector<Instruction> code = {
      b::j(kBase + 2 * 4), b::addi(2, 2, 1), b::addi(3, 3, 1),
      b::bne(3, 4, -3), b::halt()};
  Cfg cfg(code, kBase);
  const auto forest = find_loops(cfg);
  EXPECT_FALSE(forest.irreducible);
  ASSERT_EQ(forest.loops.size(), 1u);
  EXPECT_EQ(forest.loops[0].blocks.size(), 2u);
}

TEST(CfgLoops, TwoEntryCycleIsIrreducible) {
  // 0: bne -> B ; A: 1: addi, 2: beq -> exit ; B: 3: addi, 4: bne -> A ;
  // 5: halt. The A<->B cycle has two outside entries; neither dominates.
  std::vector<Instruction> code = {
      b::bne(1, 2, 2),   // 0 -> B (idx 3) or fall through to A
      b::addi(3, 3, 1),  // A
      b::beq(4, 5, 2),   // A -> exit (idx 5) or fall through to B
      b::addi(6, 6, 1),  // B
      b::bne(7, 8, -4),  // B -> A (idx 1) or fall through to exit
      b::halt()};
  Cfg cfg(code, kBase);
  const auto forest = find_loops(cfg);
  EXPECT_TRUE(forest.irreducible);
}

TEST(CfgLoops, BreakMakesMultiExit) {
  // loop body with a conditional break to the exit:
  // 0: addi ; 1: beq->4 ; 2: addi ; 3: bne->0 ; 4: halt
  std::vector<Instruction> code = {b::addi(2, 2, 1), b::beq(2, 5, 2),
                                   b::addi(3, 3, 1), b::bne(3, 6, -4),
                                   b::halt()};
  Cfg cfg(code, kBase);
  const auto forest = find_loops(cfg);
  ASSERT_EQ(forest.loops.size(), 1u);
  EXPECT_TRUE(forest.loops[0].multi_exit());
}

TEST(CfgDescribe, ReportMentionsStructure) {
  const kernels::Kernel* kernel = kernels::find_kernel("conv2d");
  auto prog = codegen::lower(kernel->build({}),
                             codegen::MachineKind::kXrDefault, kBase);
  ASSERT_TRUE(prog.ok());
  Cfg cfg(prog.value().code, kBase);
  const std::string report = describe_structure(cfg, find_loops(cfg));
  EXPECT_NE(report.find("loops: 4"), std::string::npos);
  EXPECT_NE(report.find("max depth: 4"), std::string::npos);
}

}  // namespace
}  // namespace zolcsim::cfg
