// ZolcContext tests: randomized JSON round-trips across the same geometry
// set as the table-codec tests (including the wide geometry whose exit
// records spill into a hi word), the error taxonomy of the codec
// (kStoreStale / kStoreCorrupt / kBadContext), the typed restore surfaces on
// the controller, and the modeled context-switch cost.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bitutil.hpp"
#include "common/strings.hpp"
#include "cpu/exec.hpp"
#include "zolc/context.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::zolc {
namespace {

/// Deterministic generator (xorshift32) for the randomized round-trips.
class Rng {
 public:
  explicit Rng(std::uint32_t seed) : state_(seed) {}
  std::uint32_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  /// Uniform value representable in `bits` bits.
  std::uint32_t field(unsigned bits) { return next() & mask32(bits); }

 private:
  std::uint32_t state_;
};

const std::vector<ZolcGeometry>& test_geometries() {
  static const std::vector<ZolcGeometry> geoms = {
      ZolcGeometry{},                  // paper ZOLCfull
      ZolcGeometry{32, 8, 0, 0},       // paper ZOLClite table shape
      ZolcGeometry{32, 16, 4, 4},      // deeper: 2-word exit records
      ZolcGeometry{16, 32, 2, 2},      // widest loop table
      ZolcGeometry{64, 4, 1, 1},       // task-heavy
      ZolcGeometry{64, 8, 2, 2, 14},   // narrowed pc offsets
  };
  return geoms;
}

/// A randomized context whose every field is inside the codec's validated
/// ranges for `g` (anything wider would be rejected as corrupt, which the
/// error tests cover separately).
ZolcContext random_context(ZolcVariant variant, const ZolcGeometry& g,
                           Rng& rng) {
  ZolcContext ctx;
  ctx.variant = variant;
  ctx.geometry = g.for_variant(variant);
  const ZolcGeometry& geom = ctx.geometry;
  for (unsigned i = 0; i < geom.max_tasks; ++i) {
    TaskEntry t;
    t.end_pc_ofs = static_cast<std::uint16_t>(rng.field(geom.pc_ofs_bits));
    t.loop_id = static_cast<std::uint8_t>(rng.next() % geom.max_loops);
    t.next_task_cont = static_cast<std::uint8_t>(rng.field(8));
    t.next_task_done = static_cast<std::uint8_t>(rng.field(8));
    t.is_last = rng.field(1) != 0;
    t.valid = rng.field(1) != 0;
    ctx.tasks.push_back(t);
    ctx.task_start.push_back(
        static_cast<std::uint16_t>(rng.field(geom.pc_ofs_bits)));
  }
  for (unsigned i = 0; i < geom.max_loops; ++i) {
    LoopEntry l;
    l.initial = static_cast<std::int16_t>(rng.field(16));
    l.final = static_cast<std::int16_t>(rng.field(16));
    l.step = static_cast<std::int8_t>(rng.field(8));
    l.index_rf = static_cast<std::uint8_t>(rng.field(5));
    l.cond = static_cast<LoopCond>(rng.field(2));
    l.valid = rng.field(1) != 0;
    l.current = static_cast<std::int32_t>(rng.next());
    ctx.loops.push_back(l);
  }
  for (unsigned i = 0; i < geom.exit_record_count(); ++i) {
    ExitRecord r;
    r.branch_pc_ofs = static_cast<std::uint16_t>(rng.field(geom.pc_ofs_bits));
    r.next_task = static_cast<std::uint8_t>(rng.field(8));
    r.reinit_mask = rng.field(geom.max_loops);
    r.valid = rng.field(1) != 0;
    r.deactivate = rng.field(1) != 0;
    ctx.exits.push_back(r);
  }
  for (unsigned i = 0; i < geom.entry_record_count(); ++i) {
    EntryRecord r;
    r.entry_pc_ofs = static_cast<std::uint16_t>(rng.field(geom.pc_ofs_bits));
    r.next_task = static_cast<std::uint8_t>(rng.field(8));
    r.reinit_mask = rng.field(geom.max_loops);
    r.valid = rng.field(1) != 0;
    ctx.entries.push_back(r);
  }
  ctx.micro.initial = static_cast<std::int32_t>(rng.next());
  ctx.micro.final = static_cast<std::int32_t>(rng.next());
  ctx.micro.step = static_cast<std::int32_t>(rng.next());
  ctx.micro.current = static_cast<std::int32_t>(rng.next());
  ctx.micro.start_pc = rng.next();
  ctx.micro.end_pc = rng.next();
  ctx.micro.index_rf = static_cast<std::uint8_t>(rng.field(5));
  ctx.micro.cond = static_cast<LoopCond>(rng.field(2));
  ctx.base = rng.next();
  ctx.current_task =
      geom.max_tasks == 0
          ? 0
          : static_cast<std::uint8_t>(rng.next() % geom.max_tasks);
  ctx.active = rng.field(1) != 0;
  ctx.stats.continue_events = rng.next();
  ctx.stats.done_events = rng.next();
  ctx.stats.cascade_chains = rng.next();
  ctx.stats.max_cascade_depth = rng.field(6);
  ctx.stats.exit_matches = rng.next();
  ctx.stats.entry_matches = rng.next();
  ctx.stats.table_writes = rng.next();
  return ctx;
}

// ---------------- randomized round-trips ----------------

TEST(ContextRoundTrip, JsonByteIdenticalAcrossGeometries) {
  for (const ZolcGeometry& g : test_geometries()) {
    ASSERT_TRUE(g.valid()) << g.label();
    Rng rng(0xC7E51101u + g.max_loops * 31 + g.max_tasks);
    for (int i = 0; i < 50; ++i) {
      const ZolcContext ctx = random_context(ZolcVariant::kFull, g, rng);
      const std::string json = ctx.to_json();
      auto back = ZolcContext::from_json(json);
      ASSERT_TRUE(back.ok()) << g.label() << ": "
                             << back.error().to_string();
      EXPECT_EQ(back.value(), ctx) << g.label();
      // Byte-identical re-serialization is the integrity contract: key()
      // and the artifact digest hash the canonical payload.
      EXPECT_EQ(back.value().to_json(), json) << g.label();
      EXPECT_EQ(back.value().key(), ctx.key()) << g.label();
    }
  }
}

TEST(ContextRoundTrip, SpilledHiWordRecordsSurvive) {
  // 16 loops: exit records are wider than one init word (record_words 2) and
  // reinit masks use all 16 bits; the codec must carry them undamaged.
  const ZolcGeometry g{32, 16, 4, 4};
  ASSERT_EQ(g.record_words(), 2u);
  Rng rng(0x5B11DD02u);
  ZolcContext ctx = random_context(ZolcVariant::kFull, g, rng);
  ctx.exits[7].reinit_mask = 0xFFFF;  // all 16 loops
  ctx.exits[7].valid = true;
  auto back = ZolcContext::from_json(ctx.to_json());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value().exits[7].reinit_mask, 0xFFFFu);
  EXPECT_EQ(back.value(), ctx);
}

TEST(ContextRoundTrip, MicroAndLiteVariants) {
  Rng rng(0xAB5EED03u);
  for (const ZolcVariant variant : {ZolcVariant::kMicro, ZolcVariant::kLite}) {
    const ZolcContext ctx =
        random_context(variant, ZolcGeometry{}.for_variant(variant), rng);
    auto back = ZolcContext::from_json(ctx.to_json());
    ASSERT_TRUE(back.ok()) << back.error().to_string();
    EXPECT_EQ(back.value(), ctx);
    EXPECT_EQ(back.value().to_json(), ctx.to_json());
  }
}

// ---------------- codec error taxonomy ----------------

TEST(ContextErrors, ForeignFormatTagIsStale) {
  Rng rng(0x0BADF00Du);
  std::string json =
      random_context(ZolcVariant::kFull, ZolcGeometry{}, rng).to_json();
  const std::string tag(ZolcContext::kFormat);
  json.replace(json.find(tag), tag.size(), "zolcsim-context-v0");
  auto parsed = ZolcContext::from_json(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kStoreStale);
}

TEST(ContextErrors, TamperedPayloadIsCorrupt) {
  Rng rng(0x7A3B3304u);
  ZolcContext ctx = random_context(ZolcVariant::kFull, ZolcGeometry{}, rng);
  ctx.base = 1000;
  std::string json = ctx.to_json();
  // Flip the base field after the digest was computed: still shape-valid,
  // but the canonical re-emission no longer hashes to the declared digest.
  const std::string needle = "\"base\":1000";
  const auto pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, needle.size(), "\"base\":1001");
  auto parsed = ZolcContext::from_json(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kStoreCorrupt);
}

TEST(ContextErrors, MalformedJsonIsParseError) {
  auto parsed = ZolcContext::from_json("{\"format\": ");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kParse);
}

TEST(ContextErrors, TableSizeMismatchIsBadContext) {
  Rng rng(0x512E0005u);
  ZolcContext ctx = random_context(ZolcVariant::kFull, ZolcGeometry{}, rng);
  ctx.tasks.pop_back();  // one task short of the declared geometry
  auto parsed = ZolcContext::from_json(ctx.to_json());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kBadContext);
}

TEST(ContextErrors, GeometryVariantMismatchIsBadContext) {
  Rng rng(0x6E06E006u);
  ZolcContext ctx = random_context(ZolcVariant::kFull, ZolcGeometry{}, rng);
  // A lite context must carry a lite-restricted geometry; declaring the
  // full table shape under the lite variant is inconsistent.
  ctx.variant = ZolcVariant::kLite;
  auto parsed = ZolcContext::from_json(ctx.to_json());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, ErrorCode::kBadContext);
}

// ---------------- controller restore surfaces ----------------

/// Programs loop `id` of a lite/full controller via the init-write bus.
void write_loop(ZolcController& c, unsigned id, std::int16_t initial,
                std::int16_t final, std::int8_t step, std::uint8_t index_rf) {
  LoopEntry e;
  e.initial = initial;
  e.final = final;
  e.step = step;
  e.index_rf = index_rf;
  e.cond = LoopCond::kLe;
  e.valid = true;
  c.init_write(isa::Opcode::kZolwLp0, static_cast<std::uint8_t>(id),
               e.pack_word0());
  c.init_write(isa::Opcode::kZolwLp1, static_cast<std::uint8_t>(id),
               e.pack_word1());
}

void write_task(ZolcController& c, unsigned id, std::uint16_t start_ofs,
                std::uint16_t end_ofs, std::uint8_t loop_id) {
  TaskEntry e;
  e.end_pc_ofs = end_ofs;
  e.loop_id = loop_id;
  e.next_task_cont = static_cast<std::uint8_t>(id);
  e.next_task_done = static_cast<std::uint8_t>(id);
  e.is_last = true;
  e.valid = true;
  c.init_write(isa::Opcode::kZolwTe, static_cast<std::uint8_t>(id), e.pack());
  c.init_write(isa::Opcode::kZolwTs, static_cast<std::uint8_t>(id),
               start_ofs);
}

TEST(ControllerContext, SaveRestoreRoundTripsLiveState) {
  ZolcController controller(ZolcVariant::kFull);
  write_loop(controller, 0, 0, 9, 1, 3);
  write_task(controller, 0, 2, 10, 0);
  controller.activate(0, 0x1000);
  const ZolcContext saved = controller.save_context();
  EXPECT_TRUE(saved.active);
  EXPECT_EQ(saved.base, 0x1000u);

  // Clobber everything, then restore: the controller must be back exactly.
  controller.reset();
  EXPECT_FALSE(controller.active());
  ASSERT_TRUE(controller.restore_context(saved).ok());
  EXPECT_EQ(controller.save_context(), saved);
  EXPECT_TRUE(controller.active());
  EXPECT_EQ(controller.zolc_stats(), saved.stats);
}

TEST(ControllerContext, RestoreRejectsWrongGeometryAndVariant) {
  ZolcController controller(ZolcVariant::kFull);
  ZolcController wide(ZolcVariant::kFull, ZolcGeometry{32, 16, 4, 4});
  const ZolcContext foreign = wide.save_context();
  auto restored = controller.restore_context(foreign);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, ErrorCode::kBadContext);

  ZolcController lite(ZolcVariant::kLite);
  auto cross = lite.restore_context(controller.save_context());
  ASSERT_FALSE(cross.ok());
  EXPECT_EQ(cross.error().code, ErrorCode::kBadContext);

  // The rejected restore must leave the target untouched.
  EXPECT_EQ(controller.save_context(), ZolcController(ZolcVariant::kFull)
                                           .save_context());
}

TEST(ControllerContext, TryRestoreRejectsBadSnapshotLoopCount) {
  ZolcController controller(ZolcVariant::kFull);  // 8-loop geometry
  cpu::AccelSnapshot snapshot = controller.snapshot();
  ASSERT_EQ(snapshot.loop_count, 8u);
  snapshot.loop_count = 3;  // saved from a different geometry
  auto restored = controller.try_restore(snapshot);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, ErrorCode::kBadContext);
  // The untyped virtual surface turns the same mismatch into a SimError.
  EXPECT_THROW(controller.restore(snapshot), cpu::SimError);
  // A matching snapshot restores cleanly.
  EXPECT_TRUE(controller.try_restore(controller.snapshot()).ok());
}

// ---------------- modeled switch cost ----------------

TEST(ContextCost, MicroCostIsFixed) {
  ZolcController controller(ZolcVariant::kMicro);
  const ContextSwitchCost cost =
      context_switch_cost(controller.save_context());
  EXPECT_EQ(cost.save_words, 2u);
  EXPECT_EQ(cost.restore_words, 8u);
  EXPECT_EQ(cost.total_cycles(), 10u);
}

TEST(ContextCost, RestoreCostTracksProgrammedState) {
  ZolcController controller(ZolcVariant::kFull);
  const ContextSwitchCost empty =
      context_switch_cost(controller.save_context());
  // Nothing programmed: no loop indices to save, only the base and the
  // position/status word to restore.
  EXPECT_EQ(empty.save_words, 1u);
  EXPECT_EQ(empty.restore_words, 2u);

  write_loop(controller, 0, 0, 9, 1, 3);
  write_loop(controller, 1, 0, 4, 1, 4);
  const ContextSwitchCost programmed =
      context_switch_cost(controller.save_context());
  // Two valid loops: save carries their index copies; restore replays their
  // init words plus the live state.
  EXPECT_EQ(programmed.save_words, 3u);
  EXPECT_EQ(programmed.restore_words, 2u * 2 + 2 + 2);
  EXPECT_GT(programmed.restore_words, programmed.save_words);
}

}  // namespace
}  // namespace zolcsim::zolc
