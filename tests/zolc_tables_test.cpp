// Table codec tests: the paper-geometry bit layouts pinned exactly, plus
// randomized pack -> unpack round-trips across the paper geometry and
// several extended geometries (including one whose exit records straddle
// two init words).
#include <gtest/gtest.h>

#include <vector>

#include "common/bitutil.hpp"
#include "zolc/tables.hpp"

namespace zolcsim::zolc {
namespace {

/// Deterministic generator (xorshift32) for the randomized round-trips.
class Rng {
 public:
  explicit Rng(std::uint32_t seed) : state_(seed) {}
  std::uint32_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  /// Uniform value representable in `bits` bits.
  std::uint32_t field(unsigned bits) { return next() & mask32(bits); }

 private:
  std::uint32_t state_;
};

const std::vector<ZolcGeometry>& test_geometries() {
  static const std::vector<ZolcGeometry> geoms = {
      ZolcGeometry{},                  // paper ZOLCfull
      ZolcGeometry{32, 8, 0, 0},       // paper ZOLClite table shape
      ZolcGeometry{32, 16, 4, 4},      // deeper: 2-word exit records
      ZolcGeometry{16, 32, 2, 2},      // widest loop table
      ZolcGeometry{64, 4, 1, 1},       // task-heavy
      ZolcGeometry{64, 8, 2, 2, 14},   // narrowed pc offsets
  };
  return geoms;
}

// ---------------- paper-layout golden bits ----------------

TEST(TableLayout, TaskEntryPaperBitsArePinned) {
  TaskEntry e;
  e.end_pc_ofs = 0xBEEF;
  e.loop_id = 5;
  e.next_task_cont = 17;
  e.next_task_done = 31;
  e.is_last = true;
  e.valid = true;
  // [15:0]=0xBEEF, [18:16]=5, [23:19]=17, [28:24]=31, [29]=1, [30]=1.
  const std::uint32_t expected = 0xBEEFu | (5u << 16) | (17u << 19) |
                                 (31u << 24) | (1u << 29) | (1u << 30);
  EXPECT_EQ(e.pack(), expected);
  EXPECT_EQ(TaskEntry::unpack(expected), e);
}

TEST(TableLayout, ExitRecordPaperBitsArePinned) {
  ExitRecord r;
  r.branch_pc_ofs = 0x1234;
  r.next_task = 9;
  r.reinit_mask = 0xA5;
  r.valid = true;
  r.deactivate = true;
  // lo: [15:0]=0x1234, [20:16]=9, [28:21]=0xA5, [29]=1, [30]=1; hi: 0.
  const std::uint32_t lo =
      0x1234u | (9u << 16) | (0xA5u << 21) | (1u << 29) | (1u << 30);
  EXPECT_EQ(r.pack_lo(), lo);
  EXPECT_EQ(r.pack_hi(), 0u);
  ExitRecord back;
  back.unpack_lo(lo);
  EXPECT_EQ(back, r);
}

TEST(TableLayout, EntryRecordPaperBitsArePinned) {
  EntryRecord r;
  r.entry_pc_ofs = 0xFFFF;
  r.next_task = 31;
  r.reinit_mask = 0x03;
  r.valid = true;
  const std::uint32_t lo = 0xFFFFu | (31u << 16) | (0x03u << 21) | (1u << 29);
  EXPECT_EQ(r.pack_lo(), lo);
  EntryRecord back;
  back.unpack_lo(lo);
  EXPECT_EQ(back, r);
}

// ---------------- randomized round-trips ----------------

TEST(TableRoundTrip, TaskEntryAcrossGeometries) {
  for (const ZolcGeometry& g : test_geometries()) {
    ASSERT_TRUE(g.valid()) << g.label();
    Rng rng(0xC0FFEE01u + g.max_loops);
    for (int i = 0; i < 500; ++i) {
      TaskEntry e;
      e.end_pc_ofs = static_cast<std::uint16_t>(rng.field(g.pc_ofs_bits));
      e.loop_id = static_cast<std::uint8_t>(rng.field(g.loop_id_bits()));
      e.next_task_cont = static_cast<std::uint8_t>(rng.field(g.task_id_bits()));
      e.next_task_done = static_cast<std::uint8_t>(rng.field(g.task_id_bits()));
      e.is_last = rng.field(1) != 0;
      e.valid = rng.field(1) != 0;
      EXPECT_EQ(TaskEntry::unpack(e.pack(g), g), e) << g.label();
    }
  }
}

TEST(TableRoundTrip, LoopEntryRandomized) {
  Rng rng(0xFEEDFACEu);
  for (int i = 0; i < 500; ++i) {
    LoopEntry e;
    e.initial = static_cast<std::int16_t>(rng.field(16));
    e.final = static_cast<std::int16_t>(rng.field(16));
    e.step = static_cast<std::int8_t>(rng.field(8));
    e.index_rf = static_cast<std::uint8_t>(rng.field(5));
    e.cond = static_cast<LoopCond>(rng.field(2));
    e.valid = rng.field(1) != 0;
    LoopEntry back;
    back.unpack_word0(e.pack_word0());
    back.unpack_word1(e.pack_word1());
    // `current` is runtime state, not part of the packed image.
    back.current = e.current;
    EXPECT_EQ(back, e);
  }
}

TEST(TableRoundTrip, ExitRecordAcrossGeometries) {
  for (const ZolcGeometry& g : test_geometries()) {
    Rng rng(0xDEADBEEFu + g.max_tasks);
    for (int i = 0; i < 500; ++i) {
      ExitRecord r;
      r.branch_pc_ofs = static_cast<std::uint16_t>(rng.field(g.pc_ofs_bits));
      r.next_task = static_cast<std::uint8_t>(rng.field(g.task_id_bits()));
      r.reinit_mask = rng.field(g.max_loops);
      r.valid = rng.field(1) != 0;
      r.deactivate = rng.field(1) != 0;
      EXPECT_EQ(ExitRecord::unpack64(r.pack64(g), g), r) << g.label();
      // The two-word write protocol reconstructs the same record in either
      // write order.
      ExitRecord via_words;
      via_words.unpack_lo(r.pack_lo(g), g);
      via_words.unpack_hi(r.pack_hi(g), g);
      EXPECT_EQ(via_words, r) << g.label();
      ExitRecord hi_first;
      hi_first.unpack_hi(r.pack_hi(g), g);
      hi_first.unpack_lo(r.pack_lo(g), g);
      EXPECT_EQ(hi_first, r) << g.label();
    }
  }
}

TEST(TableRoundTrip, EntryRecordAcrossGeometries) {
  for (const ZolcGeometry& g : test_geometries()) {
    Rng rng(0xB16B00B5u + g.pc_ofs_bits);
    for (int i = 0; i < 500; ++i) {
      EntryRecord r;
      r.entry_pc_ofs = static_cast<std::uint16_t>(rng.field(g.pc_ofs_bits));
      r.next_task = static_cast<std::uint8_t>(rng.field(g.task_id_bits()));
      r.reinit_mask = rng.field(g.max_loops);
      r.valid = rng.field(1) != 0;
      EXPECT_EQ(EntryRecord::unpack64(r.pack64(g), g), r) << g.label();
      EntryRecord via_words;
      via_words.unpack_lo(r.pack_lo(g), g);
      via_words.unpack_hi(r.pack_hi(g), g);
      EXPECT_EQ(via_words, r) << g.label();
    }
  }
}

TEST(TableRoundTrip, WideGeometryUsesTheHiWord) {
  // 16 loops: exit records are 40 bits, so the mask's top bits live in the
  // hi word and must survive the split write protocol.
  const ZolcGeometry g{32, 16, 4, 4};
  ASSERT_EQ(g.record_words(), 2u);
  ExitRecord r;
  r.branch_pc_ofs = 0x0FF0;
  r.next_task = 21;
  r.reinit_mask = 0xFFFF;  // all 16 loops
  r.valid = true;
  r.deactivate = true;
  EXPECT_NE(r.pack_hi(g), 0u);
  ExitRecord back;
  back.unpack_lo(r.pack_lo(g), g);
  back.unpack_hi(r.pack_hi(g), g);
  EXPECT_EQ(back, r);
}

}  // namespace
}  // namespace zolcsim::zolc
