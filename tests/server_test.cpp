// End-to-end serve daemon behaviour over a real Unix-domain socket: warm
// second requests (zero compiles, zero full prepares), byte-identity
// between the server's sweep rendering and the local run_suite path for
// every checked-in scenario suite, two concurrent clients compiling each
// unit exactly once (the cache's singleflight guarantee), the stats
// endpoint, idle timeouts, warm restarts off an on-disk store, and
// graceful drain.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/cache.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace zolcsim::server {
namespace {

namespace fs = std::filesystem;

/// A two-unit grid: big enough to exercise the cache, small enough that
/// the multi-request tests stay fast.
constexpr std::string_view kTinySuite = R"({
  "suite": "serve_tiny",
  "version": 1,
  "description": "two-kernel smoke grid for the serve tests",
  "sweep": {"kernels": ["dotprod", "vecmax"], "machines": ["ZOLCfull"]}
})";

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::uint64_t nested_uint(const json::Value& reply, std::string_view group,
                          std::string_view member) {
  const json::Value* object = reply.find(group);
  if (object == nullptr || !object->is_object()) return ~std::uint64_t{0};
  const json::Value* value = object->find(member);
  const auto n = value ? value->as_uint() : std::nullopt;
  return n.value_or(~std::uint64_t{0});
}

class ServerTest : public testing::Test {
 protected:
  void start(ServeOptions options = {}) {
    socket_path_ = std::string(testing::TempDir()) + "zolcsim_serve_" +
                   std::to_string(::getpid()) + ".sock";
    options.socket_path = socket_path_;
    if (options.workers == 4) options.workers = 2;
    options.sweep_threads = 2;
    daemon_.emplace(std::move(options));
    auto started = daemon_->start();
    ASSERT_TRUE(started.ok()) << started.error().to_string();
  }

  void TearDown() override {
    if (daemon_) {
      daemon_->begin_drain();
      daemon_->wait();
    }
  }

  Client connect_ok() {
    auto client = Client::connect(socket_path_);
    EXPECT_TRUE(client.ok());
    return std::move(client).value();
  }

  /// One sweep request; returns the parsed reply document.
  json::Value sweep_ok(Client& client, std::string_view suite_document,
                       bool json_format = false) {
    auto request = sweep_request(suite_document, json_format);
    EXPECT_TRUE(request.ok());
    auto reply = client.call(request.value(), 120'000);
    EXPECT_TRUE(reply.ok()) << (reply.ok() ? ""
                                           : reply.error().to_string());
    return reply.ok() ? std::move(reply).value() : json::Value{};
  }

  std::string socket_path_;
  std::optional<Server> daemon_;
};

TEST_F(ServerTest, SecondIdenticalSweepIsFullyWarm) {
  start();
  Client client = connect_ok();
  const json::Value first = sweep_ok(client, kTinySuite);
  EXPECT_GT(nested_uint(first, "cache", "compiles"), 0u);

  // The acceptance bar of the warm-serving story: an identical second
  // request reports zero compiles and zero full table prepares.
  const json::Value second = sweep_ok(client, kTinySuite);
  EXPECT_EQ(nested_uint(second, "cache", "compiles"), 0u);
  EXPECT_EQ(nested_uint(second, "cache", "misses"), 0u);
  EXPECT_EQ(nested_uint(second, "prepares", "full"), 0u);
  EXPECT_GT(nested_uint(second, "cache", "hits"), 0u);
}

TEST_F(ServerTest, SweepOutputMatchesLocalRunByteForByte) {
  start();
  Client client = connect_ok();
  // One warm local cache across the directory, mirroring the daemon's own
  // warm state: rendered output must not depend on cache temperature.
  flow::CompileCache local_cache;
  scenario::RunOptions local_options;
  local_options.threads = 2;

  auto files = scenario::list_suite_files(ZOLCSIM_SCENARIO_DIR);
  ASSERT_TRUE(files.ok()) << files.error().to_string();
  ASSERT_FALSE(files.value().empty());
  for (const std::string& path : files.value()) {
    SCOPED_TRACE(path);
    const std::string document = slurp(path);

    auto suite = scenario::parse_suite(document, path);
    ASSERT_TRUE(suite.ok()) << suite.error().to_string();
    auto local =
        scenario::run_suite(suite.value(), local_cache, local_options);
    ASSERT_TRUE(local.ok()) << local.error().to_string();

    const json::Value csv_reply = sweep_ok(client, document);
    auto csv = reply_string(csv_reply, "output");
    ASSERT_TRUE(csv.ok());
    EXPECT_EQ(csv.value(), local.value().csv);

    const json::Value json_reply = sweep_ok(client, document, true);
    auto rendered = reply_string(json_reply, "output");
    ASSERT_TRUE(rendered.ok());
    EXPECT_EQ(rendered.value(), local.value().report.to_json());
  }
}

TEST_F(ServerTest, ConcurrentIdenticalSweepsCompileEachUnitOnce) {
  start();
  // How many distinct units does the tiny suite need? Ask a fresh local
  // cache.
  flow::CompileCache local_cache;
  auto suite = scenario::parse_suite(kTinySuite, "tiny");
  ASSERT_TRUE(suite.ok());
  auto local = scenario::run_suite(suite.value(), local_cache, {});
  ASSERT_TRUE(local.ok()) << local.error().to_string();
  const std::size_t distinct_units = local_cache.stats().compiles;
  ASSERT_GT(distinct_units, 0u);

  // Two clients race the same sweep against the cold daemon. The striped
  // cache's singleflight must hold: every unit compiles exactly once
  // process-wide, and both replies carry identical bytes (which also match
  // the local rendering).
  std::vector<std::string> outputs(2);
  std::vector<std::thread> clients;
  for (std::string& slot : outputs) {
    clients.emplace_back([this, &slot] {
      auto client = Client::connect(socket_path_);
      ASSERT_TRUE(client.ok());
      auto request = sweep_request(kTinySuite, false);
      ASSERT_TRUE(request.ok());
      auto reply = client.value().call(request.value(), 120'000);
      ASSERT_TRUE(reply.ok()) << reply.error().to_string();
      auto output = reply_string(reply.value(), "output");
      ASSERT_TRUE(output.ok());
      slot = output.value();
    });
  }
  for (std::thread& thread : clients) thread.join();

  EXPECT_FALSE(outputs[0].empty());
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], local.value().csv);

  Client client = connect_ok();
  auto stats = client.call(simple_request(RequestType::kStats));
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  // The lifetime compile count, not the per-request deltas (those overlap
  // under concurrency): exactly one compile per distinct unit.
  EXPECT_EQ(nested_uint(stats.value(), "cache", "compiles"), distinct_units);
}

TEST_F(ServerTest, WarmRestartServesEntirelyFromTheStore) {
  const fs::path store_dir =
      fs::path(testing::TempDir()) / "zolcsim_serve_store";
  fs::remove_all(store_dir);
  {
    ServeOptions options;
    options.store_dir = store_dir.string();
    start(std::move(options));
    Client client = connect_ok();
    (void)sweep_ok(client, kTinySuite);
    daemon_->begin_drain();
    daemon_->wait();
    daemon_.reset();
  }
  // A fresh daemon over the same store: every unit comes off disk, nothing
  // recompiles, and the warm path never runs a full table prepare.
  ServeOptions options;
  options.store_dir = store_dir.string();
  start(std::move(options));
  Client client = connect_ok();
  const json::Value reply = sweep_ok(client, kTinySuite);
  EXPECT_EQ(nested_uint(reply, "cache", "compiles"), 0u);
  EXPECT_GT(nested_uint(reply, "cache", "store_hits"), 0u);
  EXPECT_EQ(nested_uint(reply, "prepares", "full"), 0u);
}

TEST_F(ServerTest, StatsEndpointCountsRequestsAndLatency) {
  start();
  Client client = connect_ok();
  ASSERT_TRUE(client.call(simple_request(RequestType::kPing)).ok());
  ASSERT_TRUE(client.call(simple_request(RequestType::kPing)).ok());
  (void)sweep_ok(client, kTinySuite);

  auto stats = client.call(simple_request(RequestType::kStats));
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  const json::Value& v = stats.value();
  EXPECT_EQ(nested_uint(v, "by_type", "ping"), 2u);
  EXPECT_EQ(nested_uint(v, "by_type", "sweep"), 1u);
  auto requests = reply_uint(v, "requests");
  ASSERT_TRUE(requests.ok());
  EXPECT_EQ(requests.value(), 3u);  // the stats request itself isn't in yet
  EXPECT_EQ(nested_uint(v, "wall_ms", "samples"), 3u);
  EXPECT_EQ(nested_uint(v, "mips", "samples"), 1u);
}

TEST_F(ServerTest, IdleConnectionsAreClosedButTheDaemonSurvives) {
  ServeOptions options;
  options.idle_timeout_ms = 150;
  start(std::move(options));
  Client idle = connect_ok();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  // The daemon dropped the silent connection; the call fails on transport,
  // not with an error reply.
  auto reply = idle.call(simple_request(RequestType::kPing), 2'000);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kIo);
  // ...but fresh connections are served as ever.
  Client fresh = connect_ok();
  EXPECT_TRUE(fresh.call(simple_request(RequestType::kPing)).ok());
}

TEST_F(ServerTest, ShutdownRequestDrainsAndReleasesTheSocket) {
  start();
  Client client = connect_ok();
  auto reply = client.call(simple_request(RequestType::kShutdown));
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  auto kind = reply_string(reply.value(), "reply");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(kind.value(), "shutdown");

  daemon_->wait();  // the drain the reply promised must complete
  EXPECT_TRUE(daemon_->draining());
  // The listener is closed and the socket file removed: connecting fails.
  auto refused = Client::connect(socket_path_);
  EXPECT_FALSE(refused.ok());
  EXPECT_FALSE(fs::exists(socket_path_));
}

}  // namespace
}  // namespace zolcsim::server
