// Fast-path equivalence suite: the loop-summary tier (Iss::set_fast_path)
// must be architecturally invisible. Part one co-simulates every kernel in
// both registries under baseline and fast ISS and demands identical
// register files, memory images, instruction counts, ZOLC statistics, and
// controller snapshots. Part two drives each typed BailoutReason with a
// hand-built ZOLC program (or the validation seam) and checks that the
// decline is counted AND that the architectural state still matches the
// baseline exactly. Part three pins the per-run statistics reset.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cpu/iss.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/scheduler.hpp"
#include "flow/workload.hpp"
#include "kernels/kernels.hpp"
#include "sim_test_util.hpp"
#include "zolc/controller.hpp"

namespace zolcsim {
namespace {

namespace b = isa::build;
using codegen::MachineKind;
using cpu::BailoutReason;
using cpu::FastPathStats;
using isa::Instruction;
using isa::Opcode;
using zolc::LoopCond;
using zolc::LoopEntry;
using zolc::TaskEntry;
using zolc::ZolcController;
using zolc::ZolcVariant;

// ---------------- part one: whole-kernel co-simulation ----------------

/// One ISS run of a compiled unit, keeping everything the equivalence
/// check needs to look at (the workload owns the final memory image).
struct TierRun {
  flow::Workload workload;
  cpu::IssStats stats;
  FastPathStats fastpath;
  cpu::RegFile regs;
  zolc::ZolcStats zolc_stats;
  cpu::AccelSnapshot snapshot;
};

TierRun run_tier(const flow::CompiledUnit& unit, bool fast) {
  TierRun out{flow::Workload::prepare(unit), {}, {}, {}, {}, {}};
  std::unique_ptr<ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(unit.machine())) {
    controller = std::make_unique<ZolcController>(*variant, unit.geometry());
  }
  cpu::Iss iss(out.workload.memory());
  iss.set_accelerator(controller.get());
  iss.set_code_image(unit.image());
  iss.set_fast_path(fast);
  iss.set_pc(unit.program().base);
  iss.run(50'000'000);
  EXPECT_TRUE(iss.halted());
  out.stats = iss.stats();
  out.fastpath = iss.fastpath_stats();
  out.regs = iss.regs();
  if (controller) {
    out.zolc_stats = controller->zolc_stats();
    out.snapshot = controller->snapshot();
  }
  return out;
}

/// Runs `kernel` x `machine` under both tiers and checks every piece of
/// architectural state. Returns the fast tier's counters so the caller can
/// assert the suite actually replayed something.
FastPathStats cosim(const kernels::Kernel& kernel, MachineKind machine,
                    zolc::ZolcGeometry geometry = {}) {
  flow::CompileSpec spec;
  spec.kernel = std::string(kernel.name());
  spec.machine = machine;
  spec.geometry = geometry;
  const auto unit = flow::CompiledUnit::compile(kernel, spec);
  EXPECT_TRUE(unit.ok()) << unit.error().to_string();
  if (!unit.ok()) return {};

  const TierRun base = run_tier(unit.value(), /*fast=*/false);
  const TierRun fast = run_tier(unit.value(), /*fast=*/true);
  const std::string label = std::string(kernel.name()) + " on " +
                            std::string(codegen::machine_name(machine));

  EXPECT_TRUE(fast.regs == base.regs) << label << ": register file diverged";
  EXPECT_TRUE(fast.workload.memory() == base.workload.memory())
      << label << ": memory image diverged";
  EXPECT_EQ(fast.stats.instructions, base.stats.instructions) << label;
  EXPECT_EQ(fast.stats.taken_control, base.stats.taken_control) << label;
  EXPECT_EQ(fast.stats.zolc_fetch_events, base.stats.zolc_fetch_events)
      << label;
  EXPECT_EQ(fast.stats.zolc_resolution_events,
            base.stats.zolc_resolution_events)
      << label;
  EXPECT_TRUE(fast.zolc_stats == base.zolc_stats)
      << label << ": ZOLC statistics diverged";
  EXPECT_TRUE(fast.snapshot == base.snapshot)
      << label << ": controller snapshot diverged";
  // The baseline tier must never touch the summarizer.
  EXPECT_TRUE(base.fastpath == FastPathStats{}) << label;

  const auto base_ok = base.workload.verify();
  const auto fast_ok = fast.workload.verify();
  EXPECT_TRUE(base_ok.ok()) << label << ": " << base_ok.error().to_string();
  EXPECT_TRUE(fast_ok.ok()) << label << ": " << fast_ok.error().to_string();
  return fast.fastpath;
}

TEST(FastPathCosim, PaperSuiteMatchesBaselineOnEveryMachine) {
  std::uint64_t replayed = 0;
  for (const auto& kernel : kernels::kernel_registry()) {
    for (const MachineKind machine :
         {MachineKind::kUZolc, MachineKind::kZolcLite, MachineKind::kZolcFull}) {
      replayed += cosim(*kernel, machine).replayed_instructions;
    }
  }
  // The tier must have actually engaged somewhere, or this test proves
  // nothing about replay.
  EXPECT_GT(replayed, 0u);
}

TEST(FastPathCosim, ExtendedSuiteMatchesBaselineOnDeepGeometries) {
  std::uint64_t replayed = 0;
  std::uint64_t engagements = 0;
  for (const auto& kernel : kernels::extended_kernel_registry()) {
    const FastPathStats lite =
        cosim(*kernel, MachineKind::kZolcLite, {32, 16, 0, 0, 16});
    const FastPathStats full =
        cosim(*kernel, MachineKind::kZolcFull, {32, 16, 4, 4, 16});
    replayed += lite.replayed_instructions + full.replayed_instructions;
    engagements += lite.engagements + full.engagements;
  }
  // Deep nests are the fast path's home turf: it must engage and carry the
  // bulk of the execution, not just match while declining.
  EXPECT_GT(engagements, 0u);
  EXPECT_GT(replayed, 10'000u);
}

// ---------------- part two: typed bailout reasons ----------------

constexpr std::uint32_t kBase = 0x1000;
constexpr std::uint8_t kScratch = 8;  // register for table payloads
constexpr std::uint8_t kBaseReg = 9;  // register holding the base address

/// Fixed-length (2-instruction) load-immediate so program layouts stay
/// deterministic while we compute table offsets.
void li32(std::vector<Instruction>& out, std::uint8_t reg,
          std::uint32_t value) {
  out.push_back(b::lui(reg, static_cast<std::int32_t>(value >> 16)));
  out.push_back(b::ori(reg, reg, static_cast<std::int32_t>(value & 0xFFFFu)));
}

void emit_table_write(std::vector<Instruction>& out, Opcode op,
                      std::uint8_t idx, std::uint32_t payload) {
  li32(out, kScratch, payload);
  out.push_back(b::zolc_write(op, idx, kScratch));
}

void emit_loop(std::vector<Instruction>& out, std::uint8_t id,
               std::int16_t initial, std::int16_t final, std::int8_t step,
               std::uint8_t index_rf, LoopCond cond = LoopCond::kLt) {
  LoopEntry e;
  e.initial = initial;
  e.final = final;
  e.step = step;
  e.index_rf = index_rf;
  e.cond = cond;
  e.valid = true;
  emit_table_write(out, Opcode::kZolwLp0, id, e.pack_word0());
  emit_table_write(out, Opcode::kZolwLp1, id, e.pack_word1());
}

void emit_task(std::vector<Instruction>& out, std::uint8_t id,
               std::uint16_t start_ofs, std::uint16_t end_ofs,
               std::uint8_t loop_id, std::uint8_t cont, std::uint8_t done,
               bool is_last) {
  TaskEntry e;
  e.end_pc_ofs = end_ofs;
  e.loop_id = loop_id;
  e.next_task_cont = cont;
  e.next_task_done = done;
  e.is_last = is_last;
  e.valid = true;
  emit_table_write(out, Opcode::kZolwTe, id, e.pack());
  emit_table_write(out, Opcode::kZolwTs, id, start_ofs);
}

void emit_activate(std::vector<Instruction>& out, std::uint8_t start_task) {
  li32(out, kBaseReg, kBase);
  out.push_back(b::zolon(start_task, kBaseReg));
}

struct BailoutRun {
  cpu::IssStats stats;
  cpu::RegFile regs;
  FastPathStats fastpath;
  zolc::ZolcStats zolc_stats;
  bool controller_active = false;
};

BailoutRun run_iss_tier(const std::vector<Instruction>& prog,
                        ZolcVariant variant, bool fast,
                        std::uint64_t min_backedges = 2,
                        const std::vector<std::uint32_t>& data = {},
                        std::uint32_t data_base = 0x4000) {
  mem::Memory memory;
  test::load_program(memory, kBase, prog);
  if (!data.empty()) memory.load_words(data_base, data);
  ZolcController controller(variant);
  cpu::Iss iss(memory);
  iss.set_accelerator(&controller);
  iss.set_fast_path(fast);
  iss.summarizer().set_min_backedges(min_backedges);
  iss.set_pc(kBase);
  iss.run(2'000'000);
  EXPECT_TRUE(iss.halted());
  return BailoutRun{iss.stats(), iss.regs(), iss.fastpath_stats(),
                    controller.zolc_stats(), controller.active()};
}

/// The fast tier preempted every `quantum` instructions: the controller's
/// full context is saved, the controller clobbered with reset(), and the
/// context restored (alternating the JSON codec round-trip) before the next
/// slice -- flow::preempt_cycle, DESIGN.md section 9.
BailoutRun run_fast_tier_preempted(const std::vector<Instruction>& prog,
                                   ZolcVariant variant,
                                   std::uint64_t min_backedges,
                                   std::uint64_t quantum,
                                   const std::vector<std::uint32_t>& data = {},
                                   std::uint32_t data_base = 0x4000) {
  mem::Memory memory;
  test::load_program(memory, kBase, prog);
  if (!data.empty()) memory.load_words(data_base, data);
  ZolcController controller(variant);
  cpu::Iss iss(memory);
  iss.set_accelerator(&controller);
  iss.set_fast_path(true);
  iss.summarizer().set_min_backedges(min_backedges);
  iss.set_pc(kBase);
  bool serialize = false;
  while (!iss.halted()) {
    iss.run_slice(quantum);
    if (iss.halted()) break;
    flow::preempt_cycle(controller, serialize);
    serialize = !serialize;
  }
  return BailoutRun{iss.stats(), iss.regs(), iss.fastpath_stats(),
                    controller.zolc_stats(), controller.active()};
}

/// Runs `prog` under both tiers, requires architectural equality, and
/// returns the fast tier's run for bailout-counter assertions. A third run
/// preempts the fast tier mid-replay (save/clobber/restore every 13
/// instructions) and demands the typed bailout still fires while counters
/// and architectural state stay identical to the baseline.
BailoutRun expect_bailout_cosim(const std::vector<Instruction>& prog,
                                ZolcVariant variant, BailoutReason reason,
                                std::uint64_t min_backedges = 2,
                                const std::vector<std::uint32_t>& data = {}) {
  const BailoutRun base =
      run_iss_tier(prog, variant, /*fast=*/false, min_backedges, data);
  const BailoutRun fast =
      run_iss_tier(prog, variant, /*fast=*/true, min_backedges, data);
  EXPECT_TRUE(fast.regs == base.regs)
      << "bailout " << cpu::bailout_reason_name(reason)
      << " is not architecturally invisible";
  EXPECT_EQ(fast.stats.instructions, base.stats.instructions);
  EXPECT_EQ(fast.stats.zolc_fetch_events, base.stats.zolc_fetch_events);
  EXPECT_TRUE(fast.zolc_stats == base.zolc_stats);
  EXPECT_EQ(fast.controller_active, base.controller_active);
  EXPECT_GE(fast.fastpath.bailout(reason), 1u)
      << "expected at least one " << cpu::bailout_reason_name(reason);

  const BailoutRun preempted = run_fast_tier_preempted(
      prog, variant, min_backedges, /*quantum=*/13, data);
  EXPECT_TRUE(preempted.regs == base.regs)
      << "bailout " << cpu::bailout_reason_name(reason)
      << " diverged under mid-replay save/restore";
  EXPECT_EQ(preempted.stats.instructions, base.stats.instructions);
  EXPECT_EQ(preempted.stats.zolc_fetch_events, base.stats.zolc_fetch_events);
  EXPECT_TRUE(preempted.zolc_stats == base.zolc_stats);
  EXPECT_EQ(preempted.controller_active, base.controller_active);
  EXPECT_GE(preempted.fastpath.bailout(reason), 1u)
      << "expected " << cpu::bailout_reason_name(reason)
      << " to survive save/restore mid-replay";
  return fast;
}

/// acc += i for i in [0, n): 17-instruction prologue, then the body.
std::vector<Instruction> summing_loop_program(
    std::int16_t n, const std::vector<Instruction>& body) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));  // acc
  prog.push_back(b::addi(1, 0, 0));  // index register
  emit_loop(prog, 0, 0, n, 1, /*index_rf=*/1);
  const auto start = static_cast<std::uint16_t>(17);
  const auto end = static_cast<std::uint16_t>(17 + body.size() - 1);
  emit_task(prog, 0, start, end, /*loop=*/0, /*cont=*/0, /*done=*/0,
            /*is_last=*/true);
  emit_activate(prog, 0);
  EXPECT_EQ(prog.size(), 17u);
  prog.insert(prog.end(), body.begin(), body.end());
  prog.push_back(b::halt());
  return prog;
}

TEST(FastPathBailouts, ShortLoopDeclinesBelowMinBackedges) {
  const auto prog =
      summing_loop_program(50, {b::add(2, 2, 1), b::nop()});
  const BailoutRun fast = expect_bailout_cosim(
      prog, ZolcVariant::kLite, BailoutReason::kShortLoop,
      /*min_backedges=*/std::uint64_t{1} << 30);
  EXPECT_EQ(fast.regs.read(2), 50 * 49 / 2);
  EXPECT_EQ(fast.fastpath.engagements, 0u);  // every attempt declined
}

TEST(FastPathBailouts, ControlFlowInBodyDeclines) {
  // r5 = 1, so the branch never fires -- but its presence alone must keep
  // the region out of the micro-op tier.
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));  // acc
  prog.push_back(b::addi(1, 0, 0));  // index
  prog.push_back(b::addi(5, 0, 1));  // branch sentinel, never zero
  emit_loop(prog, 0, 0, 50, 1, /*index_rf=*/1);
  emit_task(prog, 0, /*start=*/18, /*end=*/20, 0, 0, 0, true);
  emit_activate(prog, 0);
  ASSERT_EQ(prog.size(), 18u);
  prog.push_back(b::add(2, 2, 1));   // 18
  prog.push_back(b::beq(5, 0, 1));   // 19: never taken
  prog.push_back(b::nop());          // 20: task end
  prog.push_back(b::halt());
  const BailoutRun fast = expect_bailout_cosim(prog, ZolcVariant::kLite,
                                               BailoutReason::kControlFlow);
  EXPECT_EQ(fast.regs.read(2), 50 * 49 / 2);
}

TEST(FastPathBailouts, BodyWritingLoopIndexDeclines) {
  // add r1, r1, r0 rewrites the index with its own value: architecturally a
  // no-op, but the body now writes the index register and closed-form
  // replay of the recurrence is off the table.
  const auto prog = summing_loop_program(
      50, {b::add(2, 2, 1), b::add(1, 1, 0), b::nop()});
  const BailoutRun fast = expect_bailout_cosim(
      prog, ZolcVariant::kLite, BailoutReason::kNonAffineUpdate);
  EXPECT_EQ(fast.regs.read(2), 50 * 49 / 2);
}

TEST(FastPathBailouts, ArmedExitRecordDeclines) {
  // ZOLCfull with a candidate-exit record armed for loop 0. No branch ever
  // takes it (the body is branch-free), but replaying in closed form would
  // skip the per-iteration chance of an exit match, so the tier declines.
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));  // acc
  prog.push_back(b::addi(1, 0, 0));  // index
  emit_loop(prog, 0, 0, 40, 1, /*index_rf=*/1);
  emit_task(prog, 0, /*start=*/20, /*end=*/21, 0, 0, 0, true);
  {
    zolc::ExitRecord rec;
    rec.branch_pc_ofs = 20;
    rec.next_task = 0;
    rec.reinit_mask = 0x1;
    rec.valid = true;
    rec.deactivate = true;
    emit_table_write(prog, Opcode::kZolwEx0, 0, rec.pack_lo());
  }
  emit_activate(prog, 0);
  ASSERT_EQ(prog.size(), 20u);
  prog.push_back(b::add(2, 2, 1));  // 20
  prog.push_back(b::nop());         // 21: task end
  prog.push_back(b::halt());
  const BailoutRun fast = expect_bailout_cosim(prog, ZolcVariant::kFull,
                                               BailoutReason::kExitRecord);
  EXPECT_EQ(fast.regs.read(2), 40 * 39 / 2);
  EXPECT_EQ(fast.fastpath.engagements, 0u);
}

TEST(FastPathBailouts, ZolcInstructionInRegionDeclines) {
  // Two sequential loops; the second body deactivates the controller with
  // zoloff. The first loop replays in closed form, then the chain into the
  // second region hits the ZOLC instruction and bails before executing it.
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));  // acc
  prog.push_back(b::addi(1, 0, 0));  // i
  prog.push_back(b::addi(3, 0, 0));  // j (never advanced: loop 1 dies early)
  emit_loop(prog, 0, 0, 10, 1, /*index_rf=*/1);
  emit_loop(prog, 1, 0, 5, 1, /*index_rf=*/3);
  emit_task(prog, 0, /*start=*/30, /*end=*/31, /*loop=*/0, /*cont=*/0,
            /*done=*/1, /*is_last=*/false);
  emit_task(prog, 1, /*start=*/32, /*end=*/33, /*loop=*/1, /*cont=*/1,
            /*done=*/1, /*is_last=*/true);
  emit_activate(prog, 0);
  ASSERT_EQ(prog.size(), 30u);
  prog.push_back(b::add(2, 2, 1));  // 30: loop 0 body
  prog.push_back(b::nop());         // 31: task 0 end
  prog.push_back(b::zoloff());      // 32: loop 1 body -- kills the controller
  prog.push_back(b::nop());         // 33: task 1 end (never triggers)
  prog.push_back(b::halt());        // 34
  const BailoutRun fast = expect_bailout_cosim(prog, ZolcVariant::kLite,
                                               BailoutReason::kAccelMutation);
  EXPECT_EQ(fast.regs.read(2), 10 * 9 / 2);
  EXPECT_FALSE(fast.controller_active);
  EXPECT_GE(fast.fastpath.engagements, 1u);  // loop 0 still replayed
}

TEST(FastPathBailouts, MisalignedAccessBailsThenTrapsPrecisely) {
  // The pointer advances by 2 each iteration: the first load is aligned,
  // the second traps. The fast path must bail at the exact instruction
  // boundary so the baseline raises the same MemoryFault both ways.
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));  // acc
  prog.push_back(b::addi(1, 0, 0));  // index
  li32(prog, 7, 0x4000);             // data pointer (fills 2 slots)
  emit_loop(prog, 0, 0, 50, 1, /*index_rf=*/1);
  emit_task(prog, 0, /*start=*/19, /*end=*/21, 0, 0, 0, true);
  emit_activate(prog, 0);
  ASSERT_EQ(prog.size(), 19u);
  prog.push_back(b::lw(6, 0, 7));    // 19
  prog.push_back(b::addi(7, 7, 2));  // 20: misaligns the next load
  prog.push_back(b::nop());          // 21: task end
  prog.push_back(b::halt());

  const auto run_to_fault = [&](bool fast, bool preempt) {
    mem::Memory memory;
    test::load_program(memory, kBase, prog);
    const std::vector<std::uint32_t> data = {11, 22, 33};
    memory.load_words(0x4000, data);
    ZolcController controller(ZolcVariant::kLite);
    cpu::Iss iss(memory);
    iss.set_accelerator(&controller);
    iss.set_fast_path(fast);
    iss.set_pc(kBase);
    if (preempt) {
      bool serialize = false;
      EXPECT_THROW(
          {
            while (!iss.halted()) {
              iss.run_slice(13);
              if (iss.halted()) break;
              flow::preempt_cycle(controller, serialize);
              serialize = !serialize;
            }
          },
          mem::MemoryFault);
    } else {
      EXPECT_THROW(iss.run(2'000'000), mem::MemoryFault);
    }
    return BailoutRun{iss.stats(), iss.regs(), iss.fastpath_stats(),
                      controller.zolc_stats(), controller.active()};
  };
  const BailoutRun base = run_to_fault(false, false);
  const BailoutRun fast = run_to_fault(true, false);
  // Both tiers stop at the same architectural point: r7 misaligned, the
  // first element still in r6, the fault instruction not retired.
  EXPECT_TRUE(fast.regs == base.regs);
  EXPECT_EQ(fast.stats.instructions, base.stats.instructions);
  EXPECT_GE(fast.fastpath.bailout(BailoutReason::kTrap), 1u);
  EXPECT_EQ(fast.regs.read_u(7), 0x4002u);
  EXPECT_EQ(fast.regs.read(6), 11);
  // Save/clobber/restore mid-replay must not move the fault point.
  const BailoutRun preempted = run_to_fault(true, true);
  EXPECT_TRUE(preempted.regs == base.regs);
  EXPECT_EQ(preempted.stats.instructions, base.stats.instructions);
  EXPECT_GE(preempted.fastpath.bailout(BailoutReason::kTrap), 1u);
}

TEST(FastPathBailouts, StoreIntoSummarizedCodeDeclines) {
  // The body rewrites its own first instruction with identical bytes: the
  // baseline executes it harmlessly, the fast path must refuse to replay a
  // region whose code it may be invalidating.
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));            // acc
  prog.push_back(b::addi(1, 0, 0));            // index
  li32(prog, 7, kBase + 4 * 19);               // address of body start
  emit_loop(prog, 0, 0, 30, 1, /*index_rf=*/1);
  emit_task(prog, 0, /*start=*/19, /*end=*/22, 0, 0, 0, true);
  emit_activate(prog, 0);
  ASSERT_EQ(prog.size(), 19u);
  prog.push_back(b::lw(6, 0, 7));    // 19: load own encoding
  prog.push_back(b::sw(6, 0, 7));    // 20: store it back unchanged
  prog.push_back(b::add(2, 2, 1));   // 21
  prog.push_back(b::nop());          // 22: task end
  prog.push_back(b::halt());
  const BailoutRun fast = expect_bailout_cosim(
      prog, ZolcVariant::kLite, BailoutReason::kSelfModifyingStore);
  EXPECT_EQ(fast.regs.read(2), 30 * 29 / 2);
}

TEST(FastPathBailouts, OverlappingStoresInOneIterationDecline) {
  // Two word stores to the same address per iteration: the recorded pattern
  // self-overlaps, so closed-form replay (which commits one value per slot)
  // cannot represent the write ordering and must bail after validation.
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 7));  // first store value
  prog.push_back(b::addi(1, 0, 0));  // index
  li32(prog, 7, 0x4000);             // output pointer (loop-invariant)
  emit_loop(prog, 0, 0, 30, 1, /*index_rf=*/1);
  emit_task(prog, 0, /*start=*/19, /*end=*/21, 0, 0, 0, true);
  emit_activate(prog, 0);
  ASSERT_EQ(prog.size(), 19u);
  prog.push_back(b::sw(2, 0, 7));    // 19
  prog.push_back(b::sw(1, 0, 7));    // 20: overwrites the same word
  prog.push_back(b::nop());          // 21: task end
  prog.push_back(b::halt());
  const BailoutRun fast = expect_bailout_cosim(
      prog, ZolcVariant::kLite, BailoutReason::kOverlappingStore);
  // The last iteration's second store wins, exactly as per-instruction
  // execution would have it.
  EXPECT_EQ(fast.regs.read(1), 0);  // reinit-on-exit
}

TEST(FastPathBailouts, ValidationSeamRejectsDoctoredRecordings) {
  using Summarizer = cpu::LoopSummarizer;
  using SR = Summarizer::StoreRecord;
  const auto check = [](std::vector<SR> first, std::vector<SR> second,
                        std::vector<std::int64_t> strides) {
    return Summarizer::check_recorded_iterations(first, second, strides);
  };

  // Consistent recording: disjoint stores advancing by the predicted
  // stride, second iteration matching.
  EXPECT_EQ(check({{0x100, 4}, {0x200, 2}}, {{0x104, 4}, {0x202, 2}}, {4, 2}),
            std::nullopt);
  // First iteration not yet validated (second empty): only overlap checked.
  EXPECT_EQ(check({{0x100, 4}}, {}, {}), std::nullopt);

  // Overlap inside the first iteration, including partial byte overlap.
  EXPECT_EQ(check({{0x100, 4}, {0x102, 4}}, {}, {}),
            BailoutReason::kOverlappingStore);
  EXPECT_EQ(check({{0x100, 4}, {0x103, 1}}, {}, {}),
            BailoutReason::kOverlappingStore);

  // Second iteration contradicting the prediction: wrong stride, wrong
  // store count, or wrong access width.
  EXPECT_EQ(check({{0x100, 4}}, {{0x108, 4}}, {4}),
            BailoutReason::kValidationMismatch);
  EXPECT_EQ(check({{0x100, 4}}, {{0x104, 4}, {0x200, 4}}, {4}),
            BailoutReason::kValidationMismatch);
  EXPECT_EQ(check({{0x100, 4}}, {{0x104, 2}}, {4}),
            BailoutReason::kValidationMismatch);
}

// ---------------- part three: per-run statistics reset ----------------

TEST(FastPathStatsReset, RunCountsThisRunOnly) {
  // Four filler instructions and a halt; two step() calls leave residue
  // that run() must discard before counting its own retirements.
  std::vector<Instruction> prog;
  for (int i = 0; i < 4; ++i) prog.push_back(b::addi(2, 2, 1));
  prog.push_back(b::halt());
  mem::Memory memory;
  test::load_program(memory, kBase, prog);
  cpu::Iss iss(memory);
  iss.set_pc(kBase);
  iss.step();
  iss.step();
  EXPECT_EQ(iss.stats().instructions, 2u);
  iss.run(1000);
  // Only the three instructions this run retired -- not 2 + 3.
  EXPECT_EQ(iss.stats().instructions, 3u);
  EXPECT_EQ(iss.regs().read(2), 4);
}

TEST(FastPathStatsReset, FastPathCountersResetPerRun) {
  const auto prog =
      summing_loop_program(50, {b::add(2, 2, 1), b::nop()});
  mem::Memory memory;
  test::load_program(memory, kBase, prog);
  ZolcController controller(ZolcVariant::kLite);
  cpu::Iss iss(memory);
  iss.set_accelerator(&controller);
  iss.set_fast_path(true);
  iss.set_pc(kBase);
  iss.run(2'000'000);
  EXPECT_TRUE(iss.halted());
  EXPECT_GE(iss.fastpath_stats().engagements, 1u);
  EXPECT_GT(iss.fastpath_stats().replayed_instructions, 0u);
  // A second run (immediately halted) reports a clean slate, not the
  // previous run's engagement history.
  iss.run(1000);
  EXPECT_EQ(iss.stats().instructions, 0u);
  EXPECT_TRUE(iss.fastpath_stats() == FastPathStats{});
}

}  // namespace
}  // namespace zolcsim
