// Unit tests for the ZOLC controller: table formats, init-mode writes,
// task-end semantics (continue / done / cascade), exit and entry records,
// capacity enforcement, and snapshot/rollback.
#include <gtest/gtest.h>

#include "cpu/exec.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::zolc {
namespace {

using cpu::AccelEvent;
using cpu::SimError;
using isa::Opcode;

// ---------------- table pack/unpack ----------------

TEST(Tables, TaskEntryRoundTrip) {
  TaskEntry e;
  e.end_pc_ofs = 0xBEEF;
  e.loop_id = 5;
  e.next_task_cont = 17;
  e.next_task_done = 31;
  e.is_last = true;
  e.valid = true;
  EXPECT_EQ(TaskEntry::unpack(e.pack()), e);
}

TEST(Tables, TaskEntryFieldIsolation) {
  // Flipping one field must not disturb the others.
  TaskEntry e;
  e.valid = true;
  for (unsigned loop = 0; loop < 8; ++loop) {
    e.loop_id = static_cast<std::uint8_t>(loop);
    const TaskEntry back = TaskEntry::unpack(e.pack());
    EXPECT_EQ(back.loop_id, loop);
    EXPECT_EQ(back.end_pc_ofs, 0);
    EXPECT_TRUE(back.valid);
  }
}

TEST(Tables, LoopEntryRoundTrip) {
  LoopEntry e;
  e.initial = -5;
  e.final = 32767;
  e.step = -3;
  e.index_rf = 19;
  e.cond = LoopCond::kGe;
  e.valid = true;
  LoopEntry back;
  back.unpack_word0(e.pack_word0());
  back.unpack_word1(e.pack_word1());
  EXPECT_EQ(back.initial, -5);
  EXPECT_EQ(back.final, 32767);
  EXPECT_EQ(back.step, -3);
  EXPECT_EQ(back.index_rf, 19);
  EXPECT_EQ(back.cond, LoopCond::kGe);
  EXPECT_TRUE(back.valid);
}

TEST(Tables, ExitRecordRoundTrip) {
  ExitRecord r;
  r.branch_pc_ofs = 0x1234;
  r.next_task = 9;
  r.reinit_mask = 0xA5;
  r.valid = true;
  r.deactivate = true;
  ExitRecord back;
  back.unpack_lo(r.pack_lo());
  EXPECT_EQ(back, r);
}

TEST(Tables, EntryRecordRoundTrip) {
  EntryRecord r;
  r.entry_pc_ofs = 0xFFFF;
  r.next_task = 31;
  r.reinit_mask = 0x03;
  r.valid = true;
  EntryRecord back;
  back.unpack_lo(r.pack_lo());
  EXPECT_EQ(back, r);
}

TEST(Tables, CondHolds) {
  EXPECT_TRUE(cond_holds(LoopCond::kLt, 3, 4));
  EXPECT_FALSE(cond_holds(LoopCond::kLt, 4, 4));
  EXPECT_TRUE(cond_holds(LoopCond::kLe, 4, 4));
  EXPECT_FALSE(cond_holds(LoopCond::kLe, 5, 4));
  EXPECT_TRUE(cond_holds(LoopCond::kGt, 1, 0));
  EXPECT_FALSE(cond_holds(LoopCond::kGt, 0, 0));
  EXPECT_TRUE(cond_holds(LoopCond::kGe, 0, 0));
  EXPECT_FALSE(cond_holds(LoopCond::kGe, -1, 0));
}

// ---------------- helpers ----------------

/// Programs a lite/full controller with one loop and `n_tasks` tasks.
void write_loop(ZolcController& c, unsigned id, std::int16_t initial,
                std::int16_t final, std::int8_t step, std::uint8_t index_rf,
                LoopCond cond = LoopCond::kLt) {
  LoopEntry e;
  e.initial = initial;
  e.final = final;
  e.step = step;
  e.index_rf = index_rf;
  e.cond = cond;
  e.valid = true;
  c.init_write(Opcode::kZolwLp0, static_cast<std::uint8_t>(id), e.pack_word0());
  c.init_write(Opcode::kZolwLp1, static_cast<std::uint8_t>(id), e.pack_word1());
}

void write_task(ZolcController& c, unsigned id, std::uint16_t start_ofs,
                std::uint16_t end_ofs, std::uint8_t loop_id,
                std::uint8_t cont, std::uint8_t done, bool is_last) {
  TaskEntry e;
  e.end_pc_ofs = end_ofs;
  e.loop_id = loop_id;
  e.next_task_cont = cont;
  e.next_task_done = done;
  e.is_last = is_last;
  e.valid = true;
  c.init_write(Opcode::kZolwTe, static_cast<std::uint8_t>(id), e.pack());
  c.init_write(Opcode::kZolwTs, static_cast<std::uint8_t>(id), start_ofs);
}

constexpr std::uint32_t kBase = 0x1000;
constexpr std::uint32_t pc_of(std::uint16_t ofs) { return kBase + ofs * 4; }

// ---------------- uZOLC ----------------

class MicroTest : public ::testing::Test {
 protected:
  void program(std::int32_t initial, std::int32_t final, std::int32_t step,
               std::uint8_t index_rf, std::uint32_t start_pc,
               std::uint32_t end_pc, LoopCond cond = LoopCond::kLt) {
    c.init_write(Opcode::kZolwU, 0, static_cast<std::uint32_t>(initial));
    c.init_write(Opcode::kZolwU, 1, static_cast<std::uint32_t>(final));
    c.init_write(Opcode::kZolwU, 2, static_cast<std::uint32_t>(step));
    c.init_write(Opcode::kZolwU, 4, start_pc);
    c.init_write(Opcode::kZolwU, 5, end_pc);
    c.init_write(Opcode::kZolwU, 6, pack_micro_ctrl(index_rf, cond));
  }

  ZolcController c{ZolcVariant::kMicro};
};

TEST_F(MicroTest, SingleLoopSequence) {
  program(0, 3, 1, 7, pc_of(10), pc_of(12));
  c.activate(0, kBase);
  ASSERT_TRUE(c.active());

  // Iteration 1 boundary: 0 -> 1, continue.
  ASSERT_TRUE(c.will_trigger(pc_of(12)));
  auto ev = c.on_fetch(pc_of(12));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->redirect.value(), pc_of(10));
  ASSERT_EQ(ev->rf_writes.size(), 1u);
  EXPECT_EQ(ev->rf_writes[0].reg, 7);
  EXPECT_EQ(ev->rf_writes[0].value, 1);

  // Iteration 2 boundary: 1 -> 2, continue.
  ev = c.on_fetch(pc_of(12));
  EXPECT_EQ(ev->rf_writes[0].value, 2);

  // Iteration 3 boundary: 2 -> 3 == final, done: reinit + fall-through.
  ev = c.on_fetch(pc_of(12));
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->redirect.has_value());
  EXPECT_EQ(ev->rf_writes[0].value, 0);  // reinit-on-exit
  EXPECT_TRUE(c.active());               // stays armed for re-entry

  // Re-entry works without reprogramming.
  ev = c.on_fetch(pc_of(12));
  EXPECT_EQ(ev->rf_writes[0].value, 1);
  EXPECT_EQ(ev->redirect.value(), pc_of(10));
}

TEST_F(MicroTest, NoTriggerOffEndPc) {
  program(0, 3, 1, 7, pc_of(10), pc_of(12));
  c.activate(0, kBase);
  EXPECT_FALSE(c.will_trigger(pc_of(11)));
  EXPECT_FALSE(c.on_fetch(pc_of(11)).has_value());
  EXPECT_FALSE(c.will_trigger(pc_of(13)));
}

TEST_F(MicroTest, InactiveNeverTriggers) {
  program(0, 3, 1, 7, pc_of(10), pc_of(12));
  EXPECT_FALSE(c.will_trigger(pc_of(12)));
  c.activate(0, kBase);
  c.deactivate();
  EXPECT_FALSE(c.will_trigger(pc_of(12)));
}

TEST_F(MicroTest, NegativeStepCountsDown) {
  program(5, 0, -1, 3, pc_of(20), pc_of(22), LoopCond::kGt);
  c.activate(0, kBase);
  std::vector<std::int32_t> seen;
  for (int i = 0; i < 5; ++i) {
    auto ev = c.on_fetch(pc_of(22));
    ASSERT_TRUE(ev.has_value());
    seen.push_back(ev->rf_writes[0].value);
  }
  // 4, 3, 2, 1 continue; then 0 fails (kGt 0) -> reinit to 5.
  EXPECT_EQ(seen, (std::vector<std::int32_t>{4, 3, 2, 1, 5}));
}

TEST_F(MicroTest, RejectsTaskWrites) {
  EXPECT_THROW(c.init_write(Opcode::kZolwTe, 0, 0), SimError);
  EXPECT_THROW(c.init_write(Opcode::kZolwLp0, 0, 0), SimError);
  EXPECT_THROW(c.init_write(Opcode::kZolwEx0, 0, 0), SimError);
  EXPECT_THROW(c.init_write(Opcode::kZolwU, kMicroRegCount, 0), SimError);
}

// ---------------- ZOLClite ----------------

class LiteTest : public ::testing::Test {
 protected:
  ZolcController c{ZolcVariant::kLite};
};

TEST_F(LiteTest, SingleLoopTask) {
  write_loop(c, 0, 0, 4, 1, 9);
  write_task(c, 0, /*start=*/100, /*end=*/105, /*loop=*/0, /*cont=*/0,
             /*done=*/0, /*is_last=*/true);
  c.activate(0, kBase);

  for (int iter = 1; iter < 4; ++iter) {
    auto ev = c.on_fetch(pc_of(105));
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->redirect.value(), pc_of(100));
    EXPECT_EQ(ev->rf_writes[0].value, iter);
  }
  auto ev = c.on_fetch(pc_of(105));
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->redirect.has_value());
  EXPECT_FALSE(c.active());  // is_last deactivates
  EXPECT_EQ(ev->rf_writes[0].value, 0);
  EXPECT_EQ(c.zolc_stats().continue_events, 3u);
  EXPECT_EQ(c.zolc_stats().done_events, 1u);
}

TEST_F(LiteTest, SequentialLoops) {
  // Two back-to-back loops: task0 (loop0, body 100..105) then task1
  // (loop1, body 110..115), then leave.
  write_loop(c, 0, 0, 2, 1, 9);
  write_loop(c, 1, 0, 3, 1, 10);
  write_task(c, 0, 100, 105, 0, /*cont=*/0, /*done=*/1, false);
  write_task(c, 1, 110, 115, 1, /*cont=*/1, /*done=*/1, true);
  c.activate(0, kBase);

  // Loop 0: one continue, then done -> redirect to task1 start.
  auto ev = c.on_fetch(pc_of(105));
  EXPECT_EQ(ev->redirect.value(), pc_of(100));
  ev = c.on_fetch(pc_of(105));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->redirect.value(), pc_of(110));
  EXPECT_EQ(c.current_task(), 1);
  EXPECT_TRUE(c.active());

  // Loop 1 runs 3 iterations.
  ev = c.on_fetch(pc_of(115));
  EXPECT_EQ(ev->rf_writes[0].value, 1);
  ev = c.on_fetch(pc_of(115));
  EXPECT_EQ(ev->rf_writes[0].value, 2);
  ev = c.on_fetch(pc_of(115));
  EXPECT_FALSE(ev->redirect.has_value());
  EXPECT_FALSE(c.active());
}

TEST_F(LiteTest, PerfectNestCascade) {
  // for i in 0..2 { for j in 0..2 { body } } with a shared boundary at 205.
  write_loop(c, 0, 0, 2, 1, 8);  // outer i
  write_loop(c, 1, 0, 2, 1, 9);  // inner j
  write_task(c, 0, 200, 205, 1, /*cont=*/0, /*done=*/1, false);  // inner
  write_task(c, 1, 200, 205, 0, /*cont=*/0, /*done=*/1, true);   // outer
  c.activate(0, kBase);

  // j: 0->1 continue.
  auto ev = c.on_fetch(pc_of(205));
  EXPECT_EQ(ev->redirect.value(), pc_of(200));
  EXPECT_EQ(c.current_task(), 0);

  // j done; cascade to outer: i 0->1 continue; j reinit.
  ev = c.on_fetch(pc_of(205));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->redirect.value(), pc_of(200));
  ASSERT_EQ(ev->rf_writes.size(), 2u);
  EXPECT_EQ(ev->rf_writes[0].reg, 9);   // inner j := 0 (reinit-on-exit)
  EXPECT_EQ(ev->rf_writes[0].value, 0);
  EXPECT_EQ(ev->rf_writes[1].reg, 8);   // outer i := 1
  EXPECT_EQ(ev->rf_writes[1].value, 1);
  EXPECT_EQ(c.current_task(), 0);
  EXPECT_EQ(c.zolc_stats().cascade_chains, 1u);

  // Second inner pass: continue, then final cascade deactivates.
  ev = c.on_fetch(pc_of(205));
  EXPECT_EQ(ev->redirect.value(), pc_of(200));
  ev = c.on_fetch(pc_of(205));
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->redirect.has_value());
  EXPECT_FALSE(c.active());
  EXPECT_EQ(c.zolc_stats().max_cascade_depth, 2u);
}

TEST_F(LiteTest, WriteWhileActiveTraps) {
  write_loop(c, 0, 0, 2, 1, 9);
  write_task(c, 0, 100, 105, 0, 0, 0, true);
  c.activate(0, kBase);
  EXPECT_THROW(write_loop(c, 1, 0, 2, 1, 9), SimError);
  EXPECT_THROW(c.activate(0, kBase), SimError);
}

TEST_F(LiteTest, MisalignedBaseTraps) {
  EXPECT_THROW(c.activate(0, kBase + 2), SimError);
}

TEST_F(LiteTest, TaskReferencingInvalidLoopTraps) {
  write_task(c, 0, 100, 105, /*loop=*/3, 0, 0, true);  // loop 3 never written
  c.activate(0, kBase);
  EXPECT_THROW(c.on_fetch(pc_of(105)), SimError);
}

TEST_F(LiteTest, CircularCascadeTraps) {
  // Two always-done loops whose tasks chain to each other at the same end
  // offset: the cascade would never terminate; hardware depth limit trips.
  write_loop(c, 0, 0, 0, 1, 8);  // 1 < 0 fails instantly (always done)
  write_loop(c, 1, 0, 0, 1, 9);
  write_task(c, 0, 100, 105, 0, 0, /*done=*/1, false);
  write_task(c, 1, 100, 105, 1, 1, /*done=*/0, false);
  c.activate(0, kBase);
  EXPECT_THROW(c.on_fetch(pc_of(105)), SimError);
}

TEST_F(LiteTest, ExitRecordsRejected) {
  ExitRecord r;
  r.valid = true;
  EXPECT_THROW(c.init_write(Opcode::kZolwEx0, 0, r.pack_lo()), SimError);
  EXPECT_THROW(c.init_write(Opcode::kZolwEn0, 0, 0), SimError);
  EXPECT_THROW(c.init_write(Opcode::kZolwU, 0, 0), SimError);
}

TEST_F(LiteTest, OnTakenControlIsInertWithoutRecords) {
  write_loop(c, 0, 0, 4, 1, 9);
  write_task(c, 0, 100, 105, 0, 0, 0, true);
  c.activate(0, kBase);
  EXPECT_FALSE(c.on_taken_control(pc_of(103), pc_of(200)).has_value());
}

TEST_F(LiteTest, OutOfWindowPcNeverTriggers) {
  write_loop(c, 0, 0, 4, 1, 9);
  write_task(c, 0, 0, 0, 0, 0, 0, true);  // end ofs 0 == base
  c.activate(0, kBase);
  EXPECT_TRUE(c.will_trigger(kBase));
  EXPECT_FALSE(c.will_trigger(kBase - 4));          // below base
  EXPECT_FALSE(c.will_trigger(kBase + 0x40000));    // beyond 16-bit window
}

TEST_F(LiteTest, SnapshotRestoreRoundTrip) {
  write_loop(c, 0, 0, 4, 1, 9);
  write_task(c, 0, 100, 105, 0, 0, 0, true);
  c.activate(0, kBase);
  const auto snap = c.snapshot();
  (void)c.on_fetch(pc_of(105));
  (void)c.on_fetch(pc_of(105));
  EXPECT_EQ(c.loop(0).current, 2);
  c.restore(snap);
  EXPECT_EQ(c.loop(0).current, 0);
  EXPECT_TRUE(c.active());
  EXPECT_EQ(c.current_task(), 0);
  // Replay after restore produces the original sequence.
  auto ev = c.on_fetch(pc_of(105));
  EXPECT_EQ(ev->rf_writes[0].value, 1);
}

TEST_F(LiteTest, ResetClearsEverything) {
  write_loop(c, 0, 0, 4, 1, 9);
  write_task(c, 0, 100, 105, 0, 0, 0, true);
  c.activate(0, kBase);
  c.reset();
  EXPECT_FALSE(c.active());
  EXPECT_FALSE(c.loop(0).valid);
  EXPECT_FALSE(c.task(0).valid);
}

// ---------------- ZOLCfull ----------------

class FullTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One loop (0..9, r9) with task0 as its body (100..105).
    write_loop(c, 0, 0, 10, 1, 9);
    write_task(c, 0, 100, 105, 0, 0, 0, true);
  }

  void write_exit(unsigned loop, unsigned slot, std::uint16_t branch_ofs,
                  std::uint8_t next_task, std::uint8_t reinit_mask,
                  bool deactivate) {
    ExitRecord r;
    r.branch_pc_ofs = branch_ofs;
    r.next_task = next_task;
    r.reinit_mask = reinit_mask;
    r.valid = true;
    r.deactivate = deactivate;
    c.init_write(Opcode::kZolwEx0, static_cast<std::uint8_t>(loop * 4 + slot),
                 r.pack_lo());
    c.init_write(Opcode::kZolwEx1, static_cast<std::uint8_t>(loop * 4 + slot),
                 0);
  }

  void write_entry(unsigned idx, std::uint16_t entry_ofs,
                   std::uint8_t next_task, std::uint8_t reinit_mask) {
    EntryRecord r;
    r.entry_pc_ofs = entry_ofs;
    r.next_task = next_task;
    r.reinit_mask = reinit_mask;
    r.valid = true;
    c.init_write(Opcode::kZolwEn0, static_cast<std::uint8_t>(idx), r.pack_lo());
  }

  ZolcController c{ZolcVariant::kFull};
};

TEST_F(FullTest, ExitRecordMatchesAndDeactivates) {
  write_exit(0, 0, /*branch at*/ 103, /*next*/ 0, /*reinit*/ 0x1, true);
  c.activate(0, kBase);
  (void)c.on_fetch(pc_of(105));  // one iteration: index 1

  auto ev = c.on_taken_control(pc_of(103), pc_of(300));
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(c.active());
  ASSERT_EQ(ev->rf_writes.size(), 1u);
  EXPECT_EQ(ev->rf_writes[0].reg, 9);
  EXPECT_EQ(ev->rf_writes[0].value, 0);  // reinit
  EXPECT_EQ(c.zolc_stats().exit_matches, 1u);
}

TEST_F(FullTest, ExitRecordScopedToCurrentLoop) {
  // Record belongs to loop 1, but the current task's loop is 0: no match.
  write_loop(c, 1, 0, 5, 1, 10);
  write_exit(1, 0, 103, 0, 0x2, true);
  c.activate(0, kBase);
  EXPECT_FALSE(c.on_taken_control(pc_of(103), pc_of(300)).has_value());
  EXPECT_TRUE(c.active());
}

TEST_F(FullTest, ExitToEnclosingTaskWithoutDeactivation) {
  // Nest: outer loop 1 (task1 boundary at 110), inner loop 0 (task0).
  // Break from the inner loop jumps to the outer post-segment (task1).
  write_loop(c, 1, 0, 3, 1, 10);
  write_task(c, 1, 90, 110, 1, /*cont=*/1, /*done=*/1, true);
  write_exit(0, 0, /*branch*/ 103, /*next task*/ 1, /*reinit inner*/ 0x1,
             false);
  c.activate(0, kBase);

  auto ev = c.on_taken_control(pc_of(103), pc_of(107));
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(c.active());
  EXPECT_EQ(c.current_task(), 1);
  // Outer boundary still works afterwards.
  auto ev2 = c.on_fetch(pc_of(110));
  ASSERT_TRUE(ev2.has_value());
  EXPECT_EQ(ev2->redirect.value(), pc_of(90));
}

TEST_F(FullTest, SecondSlotMatches) {
  write_exit(0, 0, 200, 0, 0, true);   // unrelated
  write_exit(0, 1, 103, 0, 0x1, true); // the one that should hit
  c.activate(0, kBase);
  EXPECT_TRUE(c.on_taken_control(pc_of(103), pc_of(300)).has_value());
}

TEST_F(FullTest, EntryRecordSwitchesTask) {
  write_entry(0, /*entry at*/ 102, /*task*/ 0, /*reinit*/ 0x1);
  c.activate(0, kBase);
  // A jump from outside landing mid-body.
  auto ev = c.on_taken_control(pc_of(50), pc_of(102));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(c.current_task(), 0);
  EXPECT_EQ(c.zolc_stats().entry_matches, 1u);
  ASSERT_EQ(ev->rf_writes.size(), 1u);
  EXPECT_EQ(ev->rf_writes[0].value, 0);
}

TEST_F(FullTest, UnmatchedBranchIsIgnored) {
  write_exit(0, 0, 103, 0, 0x1, true);
  c.activate(0, kBase);
  EXPECT_FALSE(c.on_taken_control(pc_of(104), pc_of(300)).has_value());
  EXPECT_TRUE(c.active());
}

TEST_F(FullTest, ReinitMaskOverInvalidLoopTraps) {
  write_exit(0, 0, 103, 0, /*mask loop 5 (invalid)*/ 0x20, true);
  c.activate(0, kBase);
  EXPECT_THROW(c.on_taken_control(pc_of(103), pc_of(300)), SimError);
}

TEST_F(FullTest, InactiveIgnoresRecords) {
  write_exit(0, 0, 103, 0, 0x1, true);
  EXPECT_FALSE(c.on_taken_control(pc_of(103), pc_of(300)).has_value());
}

}  // namespace
}  // namespace zolcsim::zolc
