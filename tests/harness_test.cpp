// Experiment-runner behaviour: determinism, error propagation, config
// plumbing, and the reduction metric.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace zolcsim::harness {
namespace {

using codegen::MachineKind;

TEST(Harness, PercentReduction) {
  EXPECT_DOUBLE_EQ(percent_reduction(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(percent_reduction(100, 50), 50.0);
  EXPECT_DOUBLE_EQ(percent_reduction(200, 150), 25.0);
  EXPECT_DOUBLE_EQ(percent_reduction(0, 10), 0.0);
  EXPECT_LT(percent_reduction(100, 110), 0.0);  // regression shows negative
}

TEST(Harness, RunsAreDeterministic) {
  const kernels::Kernel* kernel = kernels::find_kernel("fir");
  ASSERT_NE(kernel, nullptr);
  const auto a = run_experiment(*kernel, MachineKind::kZolcLite);
  const auto b = run_experiment(*kernel, MachineKind::kZolcLite);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().stats.cycles, b.value().stats.cycles);
  EXPECT_EQ(a.value().stats.instructions, b.value().stats.instructions);
  EXPECT_EQ(a.value().zolc_stats.continue_events,
            b.value().zolc_stats.continue_events);
}

TEST(Harness, ResultCarriesMachineMetadata) {
  const kernels::Kernel* kernel = kernels::find_kernel("matmul");
  const auto result = run_experiment(*kernel, MachineKind::kZolcFull);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().kernel, "matmul");
  EXPECT_EQ(result.value().machine, MachineKind::kZolcFull);
  EXPECT_EQ(result.value().hw_loops, 3u);
  EXPECT_GT(result.value().code_words, 0u);
  EXPECT_GT(result.value().init_instructions, 0u);
}

TEST(Harness, NonZolcMachinesReportNoZolcActivity) {
  const kernels::Kernel* kernel = kernels::find_kernel("dotprod");
  const auto result = run_experiment(*kernel, MachineKind::kXrDefault);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.zolc_fetch_events, 0u);
  EXPECT_EQ(result.value().init_instructions, 0u);
  EXPECT_EQ(result.value().zolc_stats.table_writes, 0u);
}

TEST(Harness, PipelineConfigIsHonored) {
  // Use XRhrdwil: dbne's counter is written a whole loop body earlier, so
  // decode-stage resolution saves a cycle per back-edge with no interlock.
  // (On XRdefault the back-edge depends on the addi directly before it, and
  // the interlock stall cancels the early-resolution gain.)
  const kernels::Kernel* kernel = kernels::find_kernel("crc32");
  cpu::PipelineConfig early;
  early.branch_resolve = cpu::BranchResolveStage::kDecode;
  const auto ex = run_experiment(*kernel, MachineKind::kXrHrdwil);
  const auto id = run_experiment(*kernel, MachineKind::kXrHrdwil, {}, early);
  ASSERT_TRUE(ex.ok() && id.ok());
  EXPECT_LT(id.value().stats.cycles, ex.value().stats.cycles);

  const auto def_ex = run_experiment(*kernel, MachineKind::kXrDefault);
  const auto def_id =
      run_experiment(*kernel, MachineKind::kXrDefault, {}, early);
  ASSERT_TRUE(def_ex.ok() && def_id.ok());
  // On XRdefault the back-edge depends on the addi directly before it, so
  // decode resolution pays an interlock stall every iteration (taken or
  // not) -- the two configurations must differ, but either can win.
  EXPECT_NE(def_id.value().stats.cycles, def_ex.value().stats.cycles);
  EXPECT_GT(def_id.value().stats.interlock_stalls, 0u);
}

TEST(Harness, CycleLimitSurfacesAsError) {
  const kernels::Kernel* kernel = kernels::find_kernel("me_fsbm");
  const auto result =
      run_experiment(*kernel, MachineKind::kXrDefault, {}, {}, 100);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kSimulation);
  EXPECT_NE(result.error().to_string().find("simulation failed"),
            std::string::npos);
}

}  // namespace
}  // namespace zolcsim::harness
