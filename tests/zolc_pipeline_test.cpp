// Integration tests: ZOLC controller attached to the cycle-accurate
// pipeline, with initialization performed by the actual zolw*/zolon
// instruction sequence. Verifies the paper's central property -- hardware
// loop back-edges cost zero cycles -- by exact cycle accounting, plus
// speculation rollback, fetch gating, multi-exit breaks, and multi-entry
// jumps. Every program is also co-simulated on the ISS golden model.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "zolc/controller.hpp"

namespace zolcsim {
namespace {

namespace b = isa::build;
using cpu::BranchResolveStage;
using cpu::PipelineConfig;
using cpu::SpeculationPolicy;
using isa::Instruction;
using isa::Opcode;
using zolc::LoopCond;
using zolc::LoopEntry;
using zolc::TaskEntry;
using zolc::ZolcController;
using zolc::ZolcVariant;

constexpr std::uint32_t kBase = 0x1000;
constexpr std::uint8_t kScratch = 8;   // register for table payloads
constexpr std::uint8_t kBaseReg = 9;   // register holding the base address

/// Fixed-length (2-instruction) load-immediate so program layouts stay
/// deterministic while we compute table offsets.
void li32(std::vector<Instruction>& out, std::uint8_t reg,
          std::uint32_t value) {
  out.push_back(b::lui(reg, static_cast<std::int32_t>(value >> 16)));
  out.push_back(b::ori(reg, reg, static_cast<std::int32_t>(value & 0xFFFFu)));
}

void emit_table_write(std::vector<Instruction>& out, Opcode op,
                      std::uint8_t idx, std::uint32_t payload) {
  li32(out, kScratch, payload);
  out.push_back(b::zolc_write(op, idx, kScratch));
}

void emit_loop(std::vector<Instruction>& out, std::uint8_t id,
               std::int16_t initial, std::int16_t final, std::int8_t step,
               std::uint8_t index_rf, LoopCond cond = LoopCond::kLt) {
  LoopEntry e;
  e.initial = initial;
  e.final = final;
  e.step = step;
  e.index_rf = index_rf;
  e.cond = cond;
  e.valid = true;
  emit_table_write(out, Opcode::kZolwLp0, id, e.pack_word0());
  emit_table_write(out, Opcode::kZolwLp1, id, e.pack_word1());
}

void emit_task(std::vector<Instruction>& out, std::uint8_t id,
               std::uint16_t start_ofs, std::uint16_t end_ofs,
               std::uint8_t loop_id, std::uint8_t cont, std::uint8_t done,
               bool is_last) {
  TaskEntry e;
  e.end_pc_ofs = end_ofs;
  e.loop_id = loop_id;
  e.next_task_cont = cont;
  e.next_task_done = done;
  e.is_last = is_last;
  e.valid = true;
  emit_table_write(out, Opcode::kZolwTe, id, e.pack());
  emit_table_write(out, Opcode::kZolwTs, id, start_ofs);
}

void emit_activate(std::vector<Instruction>& out, std::uint8_t start_task) {
  li32(out, kBaseReg, kBase);
  out.push_back(b::zolon(start_task, kBaseReg));
}

/// Runs `prog` on the pipeline with a fresh controller of `variant`, then
/// cross-checks the architectural state against an ISS run with another
/// fresh controller. Returns the pipeline result.
struct ZolcRun {
  cpu::PipelineStats pipe_stats;
  cpu::RegFile regs;
  zolc::ZolcStats zolc_stats;
  bool controller_active = false;
};

ZolcRun run_with_zolc(const std::vector<Instruction>& prog,
                      ZolcVariant variant, PipelineConfig config = {},
                      const std::vector<std::uint32_t>& data = {},
                      std::uint32_t data_base = 0x4000) {
  mem::Memory pipe_mem;
  test::load_program(pipe_mem, kBase, prog);
  if (!data.empty()) pipe_mem.load_words(data_base, data);
  ZolcController pipe_ctrl(variant);
  cpu::Pipeline pipe(pipe_mem, config);
  pipe.set_accelerator(&pipe_ctrl);
  pipe.set_pc(kBase);
  pipe.run(2'000'000);

  // ISS co-simulation with an independent controller instance.
  mem::Memory iss_mem;
  test::load_program(iss_mem, kBase, prog);
  if (!data.empty()) iss_mem.load_words(data_base, data);
  ZolcController iss_ctrl(variant);
  cpu::Iss iss(iss_mem);
  iss.set_accelerator(&iss_ctrl);
  iss.set_pc(kBase);
  iss.run(2'000'000);

  EXPECT_TRUE(pipe.regs() == iss.regs()) << "pipeline/ISS divergence";
  EXPECT_EQ(pipe.stats().instructions, iss.stats().instructions);
  EXPECT_EQ(pipe_ctrl.active(), iss_ctrl.active());

  return ZolcRun{pipe.stats(), pipe.regs(), pipe_ctrl.zolc_stats(),
                 pipe_ctrl.active()};
}

// ---------------- single hardware loop (ZOLClite) ----------------

/// acc += i for i in [0, n): 17-instruction prologue, 2-instruction body.
std::vector<Instruction> single_loop_program(std::int16_t n) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));  // acc
  prog.push_back(b::addi(1, 0, 0));  // index register (software-initialized)
  emit_loop(prog, 0, 0, n, 1, /*index_rf=*/1);
  emit_task(prog, 0, /*start=*/17, /*end=*/18, /*loop=*/0, /*cont=*/0,
            /*done=*/0, /*is_last=*/true);
  emit_activate(prog, 0);
  EXPECT_EQ(prog.size(), 17u);
  prog.push_back(b::add(2, 2, 1));  // body[0]: acc += i
  prog.push_back(b::nop());         // body[1]: task end
  prog.push_back(b::halt());
  return prog;
}

TEST(ZolcPipeline, SingleLoopZeroOverheadCycleCount) {
  constexpr std::int16_t kN = 50;
  const auto prog = single_loop_program(kN);
  const auto r = run_with_zolc(prog, ZolcVariant::kLite);

  EXPECT_EQ(r.regs.read(2), kN * (kN - 1) / 2);
  EXPECT_EQ(r.regs.read(1), 0);  // reinit-on-exit
  EXPECT_FALSE(r.controller_active);

  const std::uint64_t retired = 17 + 2 * kN + 1;
  EXPECT_EQ(r.pipe_stats.instructions, retired);
  // THE paper's claim: no stalls, no flushes, no branches -- the loop's
  // back-edge is completely free. Total = instructions + pipeline fill.
  EXPECT_EQ(r.pipe_stats.cycles, retired + 4);
  EXPECT_EQ(r.pipe_stats.taken_control, 0u);
  EXPECT_EQ(r.pipe_stats.control_flush_slots, 0u);
  EXPECT_EQ(r.pipe_stats.zolc_fetch_events, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(r.zolc_stats.continue_events, static_cast<std::uint64_t>(kN - 1));
  EXPECT_EQ(r.zolc_stats.done_events, 1u);
}

TEST(ZolcPipeline, SingleLoopBeatsSoftwareLoop) {
  constexpr std::int16_t kN = 50;
  const auto zolc_run = run_with_zolc(single_loop_program(kN),
                                      ZolcVariant::kLite);

  // Software equivalent: add/nop body + index update + compare-branch.
  std::vector<Instruction> sw;
  sw.push_back(b::addi(2, 0, 0));
  sw.push_back(b::addi(1, 0, 0));
  sw.push_back(b::addi(3, 0, kN));
  sw.push_back(b::add(2, 2, 1));    // loop:
  sw.push_back(b::nop());
  sw.push_back(b::addi(1, 1, 1));
  sw.push_back(b::bne(1, 3, -4));
  sw.push_back(b::halt());
  const auto sw_run = test::run_pipeline(sw, {}, nullptr, kBase);

  EXPECT_EQ(sw_run.regs.read(2), zolc_run.regs.read(2));
  // Expected software cost: per-iteration 2 loop-overhead instructions plus
  // a 2-cycle taken-branch penalty on every back-edge.
  const std::uint64_t sw_retired = 3 + 4 * kN + 1;
  EXPECT_EQ(sw_run.pipe_stats.cycles, sw_retired + 4 + 2 * (kN - 1));
  EXPECT_LT(zolc_run.pipe_stats.cycles, sw_run.pipe_stats.cycles);
  // For this tight kernel the saving should exceed 45% (Fig. 2's best cases
  // reach 48.2%).
  const double saving =
      1.0 - static_cast<double>(zolc_run.pipe_stats.cycles) /
                static_cast<double>(sw_run.pipe_stats.cycles);
  EXPECT_GT(saving, 0.45);
}

// ---------------- perfect nests and cascades ----------------

std::vector<Instruction> nested_loop_program(std::int16_t outer,
                                             std::int16_t inner) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));  // acc
  prog.push_back(b::addi(4, 0, 0));  // i
  prog.push_back(b::addi(5, 0, 0));  // j
  emit_loop(prog, 0, 0, outer, 1, /*rf=*/4);
  emit_loop(prog, 1, 0, inner, 1, /*rf=*/5);
  emit_task(prog, 0, 30, 31, /*loop=*/1, /*cont=*/0, /*done=*/1, false);
  emit_task(prog, 1, 30, 31, /*loop=*/0, /*cont=*/0, /*done=*/1, true);
  emit_activate(prog, 0);
  EXPECT_EQ(prog.size(), 30u);
  prog.push_back(b::addi(2, 2, 1));  // body
  prog.push_back(b::nop());          // shared boundary of both loops
  prog.push_back(b::halt());
  return prog;
}

TEST(ZolcPipeline, PerfectNestSharedBoundaryIsFree) {
  constexpr std::int16_t kI = 7, kJ = 5;
  const auto r = run_with_zolc(nested_loop_program(kI, kJ), ZolcVariant::kLite);

  EXPECT_EQ(r.regs.read(2), kI * kJ);
  EXPECT_EQ(r.regs.read(4), 0);
  EXPECT_EQ(r.regs.read(5), 0);
  const std::uint64_t retired = 30 + 2 * kI * kJ + 1;
  EXPECT_EQ(r.pipe_stats.instructions, retired);
  // Outer back-edges ride the same fetch event as the inner completion:
  // still zero overhead.
  EXPECT_EQ(r.pipe_stats.cycles, retired + 4);
  EXPECT_EQ(r.zolc_stats.cascade_chains, static_cast<std::uint64_t>(kI));
  EXPECT_EQ(r.zolc_stats.max_cascade_depth, 2u);
  EXPECT_EQ(r.zolc_stats.continue_events,
            static_cast<std::uint64_t>(kI * (kJ - 1) + (kI - 1)));
  EXPECT_EQ(r.zolc_stats.done_events, static_cast<std::uint64_t>(kI + 1));
}

std::vector<Instruction> triple_nest_program(std::int16_t n1, std::int16_t n2,
                                             std::int16_t n3) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));
  prog.push_back(b::addi(4, 0, 0));
  prog.push_back(b::addi(5, 0, 0));
  prog.push_back(b::addi(6, 0, 0));
  emit_loop(prog, 0, 0, n1, 1, 4);
  emit_loop(prog, 1, 0, n2, 1, 5);
  emit_loop(prog, 2, 0, n3, 1, 6);
  emit_task(prog, 0, 43, 44, 2, 0, 1, false);
  emit_task(prog, 1, 43, 44, 1, 0, 2, false);
  emit_task(prog, 2, 43, 44, 0, 0, 2, true);
  emit_activate(prog, 0);
  EXPECT_EQ(prog.size(), 43u);
  prog.push_back(b::addi(2, 2, 1));
  prog.push_back(b::nop());
  prog.push_back(b::halt());
  return prog;
}

TEST(ZolcPipeline, TripleNestCascadesThreeDeep) {
  constexpr std::int16_t kA = 3, kB = 4, kC = 5;
  const auto r = run_with_zolc(triple_nest_program(kA, kB, kC),
                               ZolcVariant::kLite);
  EXPECT_EQ(r.regs.read(2), kA * kB * kC);
  const std::uint64_t retired = 43 + 2 * kA * kB * kC + 1;
  EXPECT_EQ(r.pipe_stats.cycles, retired + 4);
  EXPECT_EQ(r.zolc_stats.max_cascade_depth, 3u);
}

// ---------------- software loop inside a hardware task ----------------

/// The stress case for speculation: a software inner loop whose taken
/// back-branch shadow crosses the hardware task-end PC every iteration.
std::vector<Instruction> mixed_loop_program(std::int16_t outer,
                                            std::int16_t inner) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));      // outer work counter
  prog.push_back(b::addi(4, 0, 0));      // inner work counter
  prog.push_back(b::addi(5, 0, inner));  // inner bound
  prog.push_back(b::addi(1, 0, 0));      // hw index
  emit_loop(prog, 0, 0, outer, 1, 1);
  emit_task(prog, 0, 19, 24, 0, 0, 0, true);
  emit_activate(prog, 0);
  EXPECT_EQ(prog.size(), 19u);
  prog.push_back(b::addi(2, 2, 1));   // 19: outer body work
  prog.push_back(b::addi(3, 0, 0));   // 20: j = 0
  prog.push_back(b::addi(4, 4, 1));   // 21: inner body  <- branch target
  prog.push_back(b::addi(3, 3, 1));   // 22: j++
  prog.push_back(b::bne(3, 5, -3));   // 23: software back-branch
  prog.push_back(b::nop());           // 24: hardware task end
  prog.push_back(b::halt());          // 25
  return prog;
}

TEST(ZolcPipeline, RollbackRecoversFromWrongPathTaskEnd) {
  constexpr std::int16_t kOuter = 4, kInner = 2;
  const auto r = run_with_zolc(mixed_loop_program(kOuter, kInner),
                               ZolcVariant::kLite);
  EXPECT_EQ(r.regs.read(2), kOuter);
  EXPECT_EQ(r.regs.read(4), kOuter * kInner);
  // Each outer iteration takes the inner back-branch (kInner-1) times; every
  // taken back-branch's wrong-path shadow fetches the task-end PC and the
  // speculative ZOLC event must be rolled back.
  EXPECT_EQ(r.pipe_stats.zolc_rollbacks,
            static_cast<std::uint64_t>(kOuter * (kInner - 1)));
  EXPECT_FALSE(r.controller_active);
}

TEST(ZolcPipeline, GatePolicyAvoidsRollbacksAtACycleCost) {
  constexpr std::int16_t kOuter = 4, kInner = 2;
  const auto prog = mixed_loop_program(kOuter, kInner);

  PipelineConfig gate_cfg;
  gate_cfg.speculation = SpeculationPolicy::kGate;
  const auto gated = run_with_zolc(prog, ZolcVariant::kLite, gate_cfg);
  const auto rollback = run_with_zolc(prog, ZolcVariant::kLite);

  EXPECT_TRUE(gated.regs == rollback.regs);
  EXPECT_EQ(gated.pipe_stats.zolc_rollbacks, 0u);
  EXPECT_GT(gated.pipe_stats.gate_stalls, 0u);
  EXPECT_GE(gated.pipe_stats.cycles, rollback.pipe_stats.cycles);
}

// ---------------- multi-exit (ZOLCfull) ----------------

std::vector<Instruction> search_program(std::int16_t n,
                                        std::uint32_t data_base,
                                        std::int32_t key) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(1, 0, 0));  // index
  li32(prog, 7, data_base);          // data pointer
  li32(prog, 10, static_cast<std::uint32_t>(key));
  emit_loop(prog, 0, 0, n, 1, 1);
  emit_task(prog, 0, /*start=*/23, /*end=*/26, 0, 0, 0, true);
  {
    zolc::ExitRecord rec;
    rec.branch_pc_ofs = 25;
    rec.next_task = 0;
    rec.reinit_mask = 0x1;
    rec.valid = true;
    rec.deactivate = true;
    emit_table_write(prog, Opcode::kZolwEx0, 0, rec.pack_lo());
  }
  emit_activate(prog, 0);
  EXPECT_EQ(prog.size(), 23u);
  prog.push_back(b::lw(6, 0, 7));      // 23: load element
  prog.push_back(b::addi(7, 7, 4));    // 24: bump pointer
  prog.push_back(b::beq(6, 10, 1));    // 25: candidate exit -> 27
  prog.push_back(b::nop());            // 26: task end
  prog.push_back(b::halt());           // 27
  return prog;
}

TEST(ZolcPipeline, MultiExitBreakMatchesExitRecord) {
  constexpr std::int16_t kN = 10;
  constexpr std::uint32_t kData = 0x4000;
  std::vector<std::uint32_t> data(kN);
  for (int i = 0; i < kN; ++i) data[static_cast<unsigned>(i)] = 100u + i;
  constexpr int kFoundAt = 6;
  const std::int32_t key = 100 + kFoundAt;

  const auto r = run_with_zolc(search_program(kN, kData, key),
                               ZolcVariant::kFull, {}, data, kData);
  // Pointer stopped right after the match; loop index was re-initialized by
  // the exit record and the controller deactivated.
  EXPECT_EQ(r.regs.read_u(7), kData + 4 * (kFoundAt + 1));
  EXPECT_EQ(r.regs.read(1), 0);
  EXPECT_FALSE(r.controller_active);
  EXPECT_EQ(r.zolc_stats.exit_matches, 1u);
  EXPECT_EQ(r.pipe_stats.taken_control, 1u);
  // The taken exit's shadow fetched the task-end PC: one rollback.
  EXPECT_EQ(r.pipe_stats.zolc_rollbacks, 1u);
}

TEST(ZolcPipeline, MultiExitNotFoundCompletesNormally) {
  constexpr std::int16_t kN = 10;
  constexpr std::uint32_t kData = 0x4000;
  std::vector<std::uint32_t> data(kN, 1u);  // key absent

  const auto r = run_with_zolc(search_program(kN, kData, /*key=*/999),
                               ZolcVariant::kFull, {}, data, kData);
  EXPECT_EQ(r.regs.read_u(7), kData + 4 * kN);
  EXPECT_EQ(r.zolc_stats.exit_matches, 0u);
  EXPECT_EQ(r.zolc_stats.done_events, 1u);
  EXPECT_FALSE(r.controller_active);
}

// ---------------- multi-entry (ZOLCfull) ----------------

std::vector<Instruction> multi_entry_program() {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));
  prog.push_back(b::addi(3, 0, 0));
  prog.push_back(b::addi(1, 0, 0));
  emit_loop(prog, 0, 0, 3, 1, 1);
  emit_task(prog, 0, /*start=*/22, /*end=*/24, 0, 0, 0, true);
  {
    zolc::EntryRecord rec;
    rec.entry_pc_ofs = 23;
    rec.next_task = 0;
    rec.reinit_mask = 0x1;
    rec.valid = true;
    emit_table_write(prog, Opcode::kZolwEn0, 0, rec.pack_lo());
  }
  emit_activate(prog, 0);
  EXPECT_EQ(prog.size(), 21u);
  prog.push_back(b::j(kBase + 23 * 4));  // 21: enter the loop mid-body
  prog.push_back(b::addi(2, 2, 1));      // 22: full-body part
  prog.push_back(b::addi(3, 3, 1));      // 23: entry point
  prog.push_back(b::nop());              // 24: task end
  prog.push_back(b::halt());             // 25
  return prog;
}

TEST(ZolcPipeline, MultiEntryJumpMatchesEntryRecord) {
  const auto r = run_with_zolc(multi_entry_program(), ZolcVariant::kFull);
  // First (partial) pass executes only the tail; two more full passes.
  EXPECT_EQ(r.regs.read(2), 2);
  EXPECT_EQ(r.regs.read(3), 3);
  EXPECT_EQ(r.zolc_stats.entry_matches, 1u);
  EXPECT_FALSE(r.controller_active);
}

// ---------------- micro variant on the pipeline ----------------

std::vector<Instruction> micro_program(std::int32_t n) {
  std::vector<Instruction> prog;
  prog.push_back(b::addi(2, 0, 0));
  prog.push_back(b::addi(1, 0, 0));
  emit_table_write(prog, Opcode::kZolwU, 0, 0);  // initial
  emit_table_write(prog, Opcode::kZolwU, 1, static_cast<std::uint32_t>(n));
  emit_table_write(prog, Opcode::kZolwU, 2, 1);  // step
  emit_table_write(prog, Opcode::kZolwU, 4, kBase + 23 * 4);  // start
  emit_table_write(prog, Opcode::kZolwU, 5, kBase + 24 * 4);  // end
  emit_table_write(prog, Opcode::kZolwU, 6,
                   zolc::pack_micro_ctrl(1, LoopCond::kLt));
  li32(prog, kBaseReg, kBase);
  prog.push_back(b::zolon(0, kBaseReg));
  EXPECT_EQ(prog.size(), 23u);
  prog.push_back(b::add(2, 2, 1));  // 23: body
  prog.push_back(b::nop());         // 24: end
  prog.push_back(b::halt());        // 25
  return prog;
}

TEST(ZolcPipeline, MicroVariantZeroOverhead) {
  constexpr std::int32_t kN = 20;
  const auto r = run_with_zolc(micro_program(kN), ZolcVariant::kMicro);
  EXPECT_EQ(r.regs.read(2), kN * (kN - 1) / 2);
  const std::uint64_t retired = 23 + 2 * kN + 1;
  EXPECT_EQ(r.pipe_stats.cycles, retired + 4);
  EXPECT_TRUE(r.controller_active);  // uZOLC stays armed
}

// ---------------- all configurations agree ----------------

class ZolcConfigMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ZolcConfigMatrix, ArchitecturalStateIndependentOfMicroarchitecture) {
  const auto [prog_id, cfg_id] = GetParam();
  std::vector<Instruction> prog;
  ZolcVariant variant = ZolcVariant::kLite;
  switch (prog_id) {
    case 0: prog = single_loop_program(13); break;
    case 1: prog = nested_loop_program(4, 6); break;
    case 2: prog = mixed_loop_program(3, 3); break;
    case 3:
      prog = multi_entry_program();
      variant = ZolcVariant::kFull;
      break;
    default:
      prog = triple_nest_program(2, 3, 4);
      break;
  }
  PipelineConfig cfg;
  switch (cfg_id) {
    case 0: break;
    case 1: cfg.branch_resolve = BranchResolveStage::kDecode; break;
    case 2: cfg.speculation = SpeculationPolicy::kGate; break;
    default:
      cfg.branch_resolve = BranchResolveStage::kDecode;
      cfg.speculation = SpeculationPolicy::kGate;
      break;
  }
  // run_with_zolc internally cross-checks pipeline vs ISS.
  const auto r = run_with_zolc(prog, variant, cfg);
  EXPECT_GT(r.pipe_stats.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ZolcConfigMatrix,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 4)));

}  // namespace
}  // namespace zolcsim
