// End-to-end geometry tests: extended-geometry controllers, lowering
// against non-paper capacities (the deep-nest kernels), the paper geometry
// as a strict no-op, and the sweep engine's geometry axis.
#include <gtest/gtest.h>

#include "codegen/lower.hpp"
#include "harness/sweep.hpp"
#include "kernels/kernels.hpp"
#include "zolc/area_model.hpp"
#include "zolc/controller.hpp"

namespace zolcsim {
namespace {

using codegen::MachineKind;
using harness::run_experiment;
using zolc::ZolcController;
using zolc::ZolcGeometry;
using zolc::ZolcVariant;

// ---------------- controller with extended geometry ----------------

TEST(GeometryController, TablesAreSizedByTheGeometry) {
  const ZolcGeometry g{32, 16, 4, 4};
  ZolcController c(ZolcVariant::kFull, g);
  // Loop 12 exists here but not on the paper controller.
  zolc::LoopEntry e;
  e.initial = 0;
  e.final = 3;
  e.step = 1;
  e.index_rf = 9;
  e.valid = true;
  c.init_write(isa::Opcode::kZolwLp0, 12, e.pack_word0());
  c.init_write(isa::Opcode::kZolwLp1, 12, e.pack_word1());
  EXPECT_TRUE(c.loop(12).valid);
  EXPECT_THROW(c.init_write(isa::Opcode::kZolwLp0, 16, 0), cpu::SimError);

  ZolcController paper(ZolcVariant::kFull);
  EXPECT_THROW(paper.init_write(isa::Opcode::kZolwLp0, 12, e.pack_word0()),
               cpu::SimError);
}

TEST(GeometryController, TwelveLoopCascadeRunsAndSnapshots) {
  // A 12-deep perfect nest of 2-trip loops sharing one boundary: the
  // cascade walks all 12 tables on the final event.
  const ZolcGeometry g{32, 12, 0, 0};
  ZolcController c(ZolcVariant::kLite, g);
  constexpr std::uint32_t kBase = 0x1000;
  for (unsigned l = 0; l < 12; ++l) {
    zolc::LoopEntry e;
    e.initial = 0;
    e.final = 2;
    e.step = 1;
    e.index_rf = static_cast<std::uint8_t>(1 + l);
    e.valid = true;
    c.init_write(isa::Opcode::kZolwLp0, static_cast<std::uint8_t>(l),
                 e.pack_word0());
    c.init_write(isa::Opcode::kZolwLp1, static_cast<std::uint8_t>(l),
                 e.pack_word1());
    // Task l tests loop (11 - l): task 0 is the innermost loop's.
    zolc::TaskEntry t;
    t.end_pc_ofs = 100;
    t.loop_id = static_cast<std::uint8_t>(11 - l);
    t.next_task_cont = 0;
    t.next_task_done = static_cast<std::uint8_t>(l + 1);
    t.is_last = l == 11;
    t.valid = true;
    c.init_write(isa::Opcode::kZolwTe, static_cast<std::uint8_t>(l),
                 t.pack(g));
    c.init_write(isa::Opcode::kZolwTs, static_cast<std::uint8_t>(l), 50);
  }
  c.activate(0, kBase);
  const auto snap = c.snapshot();
  std::uint64_t events = 0;
  while (c.active()) {
    ASSERT_TRUE(c.will_trigger(kBase + 100 * 4));
    (void)c.on_fetch(kBase + 100 * 4);
    ++events;
    ASSERT_LT(events, 10'000u);
  }
  EXPECT_EQ(events, 1u << 12);  // 2^12 boundary events for 2-trip loops
  EXPECT_EQ(c.zolc_stats().max_cascade_depth, 12u);

  // Snapshot/restore carries all 12 live indices.
  c.restore(snap);
  EXPECT_TRUE(c.active());
  for (unsigned l = 0; l < 12; ++l) EXPECT_EQ(c.loop(l).current, 0);
}

TEST(GeometryController, RejectsPackedIdsBeyondTheTables) {
  // 12 loops round up to 4 id bits: encodings 12..15 decode but have no
  // table entry behind them and must trap at the write port, not at the
  // (hot, unchecked) fetch path.
  const ZolcGeometry g{32, 12, 0, 0};
  ZolcController c(ZolcVariant::kLite, g);
  zolc::TaskEntry t;
  t.end_pc_ofs = 100;
  t.loop_id = 15;
  t.valid = true;
  EXPECT_THROW(c.init_write(isa::Opcode::kZolwTe, 0, t.pack(g)),
               cpu::SimError);
  t.loop_id = 11;
  c.init_write(isa::Opcode::kZolwTe, 0, t.pack(g));  // in range: accepted
  EXPECT_EQ(c.task(0).loop_id, 11u);

  // Same for task ids in exit records of a non-power-of-two task count.
  const ZolcGeometry g20{20, 8, 4, 4};
  ASSERT_TRUE(g20.valid());
  ZolcController full(ZolcVariant::kFull, g20);
  zolc::ExitRecord r;
  r.branch_pc_ofs = 5;
  r.next_task = 25;  // 5 id bits admit it; table has 20 entries
  r.valid = true;
  EXPECT_THROW(full.init_write(isa::Opcode::kZolwEx0, 0, r.pack_lo(g20)),
               cpu::SimError);
}

// ---------------- lowering against geometries ----------------

TEST(GeometryLowering, PaperGeometryIsTheDefault) {
  const auto* kernel = kernels::find_kernel("matmul");
  ASSERT_NE(kernel, nullptr);
  const kernels::KernelEnv env;
  const auto implicit =
      codegen::lower(kernel->build(env), MachineKind::kZolcLite, env.code_base);
  const auto explicit_paper =
      codegen::lower(kernel->build(env), MachineKind::kZolcLite, env.code_base,
                     ZolcGeometry::paper(ZolcVariant::kLite));
  ASSERT_TRUE(implicit.ok());
  ASSERT_TRUE(explicit_paper.ok());
  ASSERT_EQ(implicit.value().code.size(), explicit_paper.value().code.size());
  for (std::size_t i = 0; i < implicit.value().code.size(); ++i) {
    EXPECT_EQ(implicit.value().code[i], explicit_paper.value().code[i]) << i;
  }
}

TEST(GeometryLowering, DeepNestFullyHardwareManagedUnderExtendedGeometry) {
  // The acceptance scenario: a >8-deep nest with zero software loop
  // overhead once the geometry provides the entries.
  const auto* kernel = kernels::find_kernel("deepnest10");
  ASSERT_NE(kernel, nullptr);
  const auto result =
      run_experiment(*kernel, MachineKind::kZolcLite, {}, {}, 200'000'000,
                     true, ZolcGeometry{32, 12, 0, 0});
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().hw_loops, 10u);
  EXPECT_EQ(result.value().sw_loops, 0u);
  EXPECT_GT(result.value().zolc_stats.continue_events, 0u);

  // At the paper geometry the same kernel still runs, demoting two levels.
  const auto paper = run_experiment(*kernel, MachineKind::kZolcLite);
  ASSERT_TRUE(paper.ok()) << paper.error().to_string();
  EXPECT_EQ(paper.value().hw_loops, 8u);
  EXPECT_EQ(paper.value().sw_loops, 2u);
  EXPECT_GT(paper.value().stats.cycles, result.value().stats.cycles);
}

TEST(GeometryLowering, TinyGeometryDemotesGracefully) {
  const auto* kernel = kernels::find_kernel("tiled_mm");
  ASSERT_NE(kernel, nullptr);
  const auto result = run_experiment(*kernel, MachineKind::kZolcLite, {}, {},
                                     200'000'000, true,
                                     ZolcGeometry{8, 2, 0, 0});
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().hw_loops, 2u);
  EXPECT_EQ(result.value().sw_loops, 4u);
}

TEST(GeometryLowering, ExtendedKernelsVerifyOnEveryMachine) {
  for (const auto& kernel : kernels::extended_kernel_registry()) {
    for (const MachineKind machine : codegen::kAllMachines) {
      const auto result = run_experiment(*kernel, machine);
      ASSERT_TRUE(result.ok()) << result.error().to_string();
      EXPECT_GT(result.value().stats.cycles, 0u);
    }
  }
}

TEST(GeometryLowering, WideRecordGeometryRunsZolcFullEndToEnd) {
  // 16 loops push exit records past one init word (record_words() == 2):
  // the zolw.ex1 emission path and the controller's hi-word unpack must
  // survive a real multi-exit run. me_tss carries the suite's break-out.
  const auto* kernel = kernels::find_kernel("me_tss");
  ASSERT_NE(kernel, nullptr);
  const ZolcGeometry wide{32, 16, 4, 4};
  ASSERT_EQ(wide.record_words(), 2u);
  const auto result = run_experiment(*kernel, MachineKind::kZolcFull, {}, {},
                                     200'000'000, true, wide);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto paper = run_experiment(*kernel, MachineKind::kZolcFull);
  ASSERT_TRUE(paper.ok()) << paper.error().to_string();
  // Identical loop structure, but each exit record costs one extra init
  // write (the hi word).
  EXPECT_EQ(result.value().hw_loops, paper.value().hw_loops);
  EXPECT_GT(result.value().zolc_stats.table_writes,
            paper.value().zolc_stats.table_writes);
}

TEST(GeometryLowering, ProgramBeyondThePcWindowIsRejected) {
  // pc_ofs_bits = 8 addresses 256 words; a ~310-word program must be
  // rejected at lowering instead of silently aliasing packed offsets.
  codegen::KernelBuilder kb;
  kb.for_count(1, 0, 4, 1, [&] {
    for (int i = 0; i < 300; ++i) kb.op(isa::build::nop());
  });
  const auto kernel = kb.take();
  const ZolcGeometry narrow{32, 8, 0, 0, 8};
  ASSERT_TRUE(narrow.valid());
  const auto lowered =
      codegen::lower(kernel, MachineKind::kZolcLite, 0x1000, narrow);
  ASSERT_FALSE(lowered.ok());
  EXPECT_EQ(lowered.error().code, ErrorCode::kCapacity);
  EXPECT_NE(lowered.error().message.find("PC-offset window"),
            std::string::npos);
}

TEST(GeometryLowering, InvalidGeometryIsRejected) {
  const auto* kernel = kernels::find_kernel("dotprod");
  ASSERT_NE(kernel, nullptr);
  const kernels::KernelEnv env;
  const auto lowered =
      codegen::lower(kernel->build(env), MachineKind::kZolcLite, env.code_base,
                     ZolcGeometry{32, 64, 4, 4});
  EXPECT_FALSE(lowered.ok());
  const auto experiment = run_experiment(*kernel, MachineKind::kZolcLite, {},
                                         {}, 200'000'000, true,
                                         ZolcGeometry{32, 64, 4, 4});
  EXPECT_FALSE(experiment.ok());
}

// ---------------- sweep geometry axis ----------------

TEST(GeometrySweep, AxisProducesPerGeometryCells) {
  harness::SweepSpec spec;
  spec.kernels = {"deepnest10"};
  spec.machines = {MachineKind::kXrDefault, MachineKind::kZolcLite};
  spec.geometries = {ZolcGeometry{}, ZolcGeometry{32, 12, 0, 0}};
  spec.threads = 2;
  const auto swept = harness::run_sweep(spec);
  ASSERT_TRUE(swept.ok()) << swept.error().to_string();
  const harness::SweepReport& report = swept.value();
  ASSERT_EQ(report.cells.size(), 4u);
  EXPECT_TRUE(report.has_geometry_axis());
  // Paper geometry: 8 hw loops; extended: all 10.
  EXPECT_EQ(report.at(0, 1, 0, 0).hw_loops, 8u);
  EXPECT_EQ(report.at(0, 1, 0, 1).hw_loops, 10u);
  EXPECT_LT(report.cycles(0, 1, 0, 1), report.cycles(0, 1, 0, 0));
  // The baseline machine ignores the geometry.
  EXPECT_EQ(report.cycles(0, 0, 0, 0), report.cycles(0, 0, 0, 1));
  // The geometry column appears in the rendered CSV and JSON.
  EXPECT_NE(report.to_csv().find("geometry"), std::string::npos);
  EXPECT_NE(report.to_csv().find("32t-12l-0x-0e"), std::string::npos);
  EXPECT_NE(report.to_json().find("32t-12l-0x-0e"), std::string::npos);
}

TEST(GeometrySweep, DefaultSweepKeepsTheHistoricalSchema) {
  harness::SweepSpec spec;
  spec.kernels = {"dotprod"};
  spec.machines = {MachineKind::kXrDefault, MachineKind::kZolcLite};
  spec.threads = 1;
  const auto swept = harness::run_sweep(spec);
  ASSERT_TRUE(swept.ok()) << swept.error().to_string();
  EXPECT_FALSE(swept.value().has_geometry_axis());
  EXPECT_EQ(swept.value().to_csv().find("geometry"), std::string::npos);
  EXPECT_EQ(swept.value().to_json().find("geometry"), std::string::npos);
}

// ---------------- area model coupling ----------------

TEST(GeometryArea, StorageScalesWithTheSweepAxis) {
  const auto paper = zolc::area_model(ZolcVariant::kLite);
  const auto deep =
      zolc::area_model(ZolcVariant::kLite, ZolcGeometry{32, 12, 0, 0});
  EXPECT_EQ(paper.storage_bytes, 258u);
  EXPECT_EQ(deep.storage_bits - paper.storage_bits, 4u * 64);
  EXPECT_GT(deep.total_gates, paper.total_gates);
}

}  // namespace
}  // namespace zolcsim
