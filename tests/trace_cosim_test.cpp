// Retirement-stream co-simulation: the pipeline must retire exactly the
// same instruction sequence, in the same program order, as the ISS golden
// model -- the strongest equivalence check available (final-state equality
// can mask compensating errors). Exercised on ZOLC-heavy kernels where
// wrong-path fetches and rollbacks are constant.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "codegen/lower.hpp"
#include "cpu/iss.hpp"
#include "cpu/pipeline.hpp"
#include "kernels/kernels.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::cpu {
namespace {

struct Retired {
  std::uint32_t pc;
  isa::Opcode op;

  friend bool operator==(const Retired&, const Retired&) = default;
};

std::vector<Retired> pipeline_trace(const codegen::Program& prog,
                                    const kernels::Kernel* kernel,
                                    PipelineConfig config = {}) {
  mem::Memory memory;
  prog.load_into(memory);
  if (kernel != nullptr) kernel->setup({}, memory);
  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(prog.machine)) {
    controller = std::make_unique<zolc::ZolcController>(*variant);
  }
  Pipeline pipe(memory, config);
  pipe.set_accelerator(controller.get());
  pipe.set_pc(prog.base);
  std::vector<Retired> trace;
  pipe.set_retire_hook([&trace](std::uint32_t pc, const isa::Instruction& i) {
    trace.push_back(Retired{pc, i.op});
  });
  pipe.run(50'000'000);
  return trace;
}

std::vector<Retired> iss_trace(const codegen::Program& prog,
                               const kernels::Kernel* kernel) {
  mem::Memory memory;
  prog.load_into(memory);
  if (kernel != nullptr) kernel->setup({}, memory);
  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(prog.machine)) {
    controller = std::make_unique<zolc::ZolcController>(*variant);
  }
  Iss iss(memory);
  iss.set_accelerator(controller.get());
  iss.set_pc(prog.base);
  std::vector<Retired> trace;
  iss.set_retire_hook([&trace](std::uint32_t pc, const isa::Instruction& i) {
    trace.push_back(Retired{pc, i.op});
  });
  iss.run(50'000'000);
  return trace;
}

void expect_traces_equal(const std::vector<Retired>& a,
                         const std::vector<Retired>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "first divergence at retirement #" << i
                          << " (pc " << a[i].pc << " vs " << b[i].pc << ")";
  }
}

struct TraceCase {
  const char* kernel;
  codegen::MachineKind machine;
};

class TraceCoSim : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceCoSim, PipelineRetiresExactlyTheIssStream) {
  const auto& [name, machine] = GetParam();
  const kernels::Kernel* kernel = kernels::find_kernel(name);
  ASSERT_NE(kernel, nullptr);
  auto prog = codegen::lower(kernel->build({}), machine, 0x1000);
  ASSERT_TRUE(prog.ok());

  const auto reference = iss_trace(prog.value(), kernel);
  ASSERT_FALSE(reference.empty());
  expect_traces_equal(pipeline_trace(prog.value(), kernel), reference);

  // The stream is also microarchitecture-independent.
  PipelineConfig decode_cfg;
  decode_cfg.branch_resolve = BranchResolveStage::kDecode;
  expect_traces_equal(pipeline_trace(prog.value(), kernel, decode_cfg),
                      reference);
  PipelineConfig gate_cfg;
  gate_cfg.speculation = SpeculationPolicy::kGate;
  expect_traces_equal(pipeline_trace(prog.value(), kernel, gate_cfg),
                      reference);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TraceCoSim,
    ::testing::Values(
        TraceCase{"crc32", codegen::MachineKind::kZolcLite},
        TraceCase{"me_tss", codegen::MachineKind::kZolcFull},
        TraceCase{"me_tss", codegen::MachineKind::kZolcLite},
        TraceCase{"fft", codegen::MachineKind::kUZolc},
        TraceCase{"conv2d", codegen::MachineKind::kZolcLite},
        TraceCase{"vecmax", codegen::MachineKind::kXrDefault},
        TraceCase{"matmul", codegen::MachineKind::kXrHrdwil}),
    [](const ::testing::TestParamInfo<TraceCase>& info) {
      return std::string(info.param.kernel) + "_" +
             std::string(codegen::machine_name(info.param.machine));
    });

TEST(TraceCoSim, WrongPathInstructionsNeverRetire) {
  // A ZOLC program whose body branches constantly (the rollback stress
  // kernel): every retired pc must lie inside the program image, and no
  // instruction after a taken exit's shadow may appear.
  const kernels::Kernel* kernel = kernels::find_kernel("me_tss");
  auto prog = codegen::lower(kernel->build({}),
                             codegen::MachineKind::kZolcFull, 0x1000);
  ASSERT_TRUE(prog.ok());
  const auto trace = pipeline_trace(prog.value(), kernel);
  const std::uint32_t lo = prog.value().base;
  const std::uint32_t hi =
      lo + static_cast<std::uint32_t>(prog.value().code.size()) * 4;
  for (const Retired& r : trace) {
    ASSERT_GE(r.pc, lo);
    ASSERT_LT(r.pc, hi);
    ASSERT_NE(r.op, isa::Opcode::kInvalid);
  }
}

}  // namespace
}  // namespace zolcsim::cpu
