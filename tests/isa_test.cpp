#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.hpp"
#include "isa/build.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"

namespace zolcsim::isa {
namespace {

namespace b = build;

/// A representative instruction per opcode with distinctive field values,
/// used by the encode/decode round-trip property suite.
std::vector<Instruction> representative_instructions() {
  std::vector<Instruction> v;
  v.push_back(b::add(1, 2, 3));
  v.push_back(b::sub(4, 5, 6));
  v.push_back(b::and_(7, 8, 9));
  v.push_back(b::or_(10, 11, 12));
  v.push_back(b::xor_(13, 14, 15));
  v.push_back(b::nor_(16, 17, 18));
  v.push_back(b::slt(19, 20, 21));
  v.push_back(b::sltu(22, 23, 24));
  v.push_back(b::sllv(25, 26, 27));
  v.push_back(b::srlv(28, 29, 30));
  v.push_back(b::srav(31, 1, 2));
  v.push_back(b::sll(3, 4, 31));
  v.push_back(b::srl(5, 6, 1));
  v.push_back(b::sra(7, 8, 16));
  v.push_back(b::jr(31));
  v.push_back(b::jalr(30, 29));
  v.push_back(b::mul(1, 2, 3));
  v.push_back(b::mulh(4, 5, 6));
  v.push_back(b::mulhu(7, 8, 9));
  v.push_back(b::mac(10, 11, 12));
  v.push_back(b::max(13, 14, 15));
  v.push_back(b::min(16, 17, 18));
  v.push_back(b::abs_(19, 20));
  v.push_back(b::clz(21, 22));
  v.push_back(b::addi(1, 2, -32768));
  v.push_back(b::slti(3, 4, 32767));
  v.push_back(b::sltiu(5, 6, 0xFFFF));
  v.push_back(b::andi(7, 8, 0xABCD));
  v.push_back(b::ori(9, 10, 0x1234));
  v.push_back(b::xori(11, 12, 0x0F0F));
  v.push_back(b::lui(13, 0x8000));
  v.push_back(b::beq(1, 2, -4));
  v.push_back(b::bne(3, 4, 100));
  v.push_back(b::blez(5, -1));
  v.push_back(b::bgtz(6, 7));
  v.push_back(b::blt(7, 8, 2));
  v.push_back(b::bge(9, 10, -2));
  v.push_back(b::bltu(11, 12, 3));
  v.push_back(b::bgeu(13, 14, -3));
  v.push_back(b::lb(1, -128, 2));
  v.push_back(b::lh(3, 256, 4));
  v.push_back(b::lw(5, 1024, 6));
  v.push_back(b::lbu(7, 1, 8));
  v.push_back(b::lhu(9, 2, 10));
  v.push_back(b::sb(11, -1, 12));
  v.push_back(b::sh(13, 6, 14));
  v.push_back(b::sw(15, 8, 16));
  v.push_back(b::j(0x0040'0000));
  v.push_back(b::jal(0x0000'1234 & ~3u));
  v.push_back(b::dbne(17, -20));
  v.push_back(b::zolc_write(Opcode::kZolwTe, 31, 8));
  v.push_back(b::zolc_write(Opcode::kZolwTs, 0, 9));
  v.push_back(b::zolc_write(Opcode::kZolwLp0, 7, 10));
  v.push_back(b::zolc_write(Opcode::kZolwLp1, 6, 11));
  v.push_back(b::zolc_write(Opcode::kZolwEx0, 31, 12));
  v.push_back(b::zolc_write(Opcode::kZolwEx1, 30, 13));
  v.push_back(b::zolc_write(Opcode::kZolwEn0, 29, 14));
  v.push_back(b::zolc_write(Opcode::kZolwEn1, 28, 15));
  v.push_back(b::zolc_write(Opcode::kZolwU, 5, 16));
  v.push_back(b::zolon(3, 17));
  v.push_back(b::zoloff());
  v.push_back(b::halt());
  return v;
}

class RoundTrip : public ::testing::TestWithParam<Instruction> {};

TEST_P(RoundTrip, EncodeDecodeIsIdentity) {
  const Instruction original = GetParam();
  const std::uint32_t word = encode(original);
  const Instruction decoded = decode(word);
  EXPECT_EQ(decoded, original) << "word=" << word << " op="
                               << opcode_info(original.op).mnemonic;
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, RoundTrip, ::testing::ValuesIn(representative_instructions()),
    [](const ::testing::TestParamInfo<Instruction>& info) {
      std::string name(opcode_info(info.param.op).mnemonic);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name + "_" + std::to_string(info.index);
    });

TEST(Coverage, RepresentativeSetCoversEveryOpcode) {
  std::vector<bool> seen(static_cast<std::size_t>(Opcode::kOpcodeCount_), false);
  for (const Instruction& instr : representative_instructions()) {
    seen[static_cast<std::size_t>(instr.op)] = true;
  }
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "opcode index " << i << " ("
                         << opcode_info(static_cast<Opcode>(i)).mnemonic
                         << ") missing from the round-trip suite";
  }
}

TEST(Decode, InvalidWordsYieldInvalid) {
  EXPECT_FALSE(decode(0xFFFF'FFFFu).valid());           // halt group, junk funct
  EXPECT_FALSE(decode(0x0000'003Fu).valid());           // SPECIAL, undefined funct
  EXPECT_FALSE(decode(0x7000'0000u).valid());           // undefined primary 0x1C+? (0x1C<<26 is DSP)... 0x70000000>>26=0x1C
  EXPECT_FALSE(decode(0xC000'0000u).valid());           // primary 0x30 undefined
}

TEST(Decode, ZeroWordIsCanonicalNop) {
  const Instruction instr = decode(0);
  EXPECT_TRUE(instr.valid());
  EXPECT_TRUE(is_nop(instr));
}

TEST(Encode, RejectsOutOfRangeImmediates) {
  EXPECT_THROW((void)encode(b::addi(1, 2, 40000)), ContractViolation);
  EXPECT_THROW((void)encode(b::addi(1, 2, -40000)), ContractViolation);
  EXPECT_THROW((void)encode(b::ori(1, 2, -1)), ContractViolation);  // unsigned imm
}

TEST(OpcodeInfo, MnemonicLookupRoundTrips) {
  for (std::size_t i = 1; i < static_cast<std::size_t>(Opcode::kOpcodeCount_);
       ++i) {
    const auto op = static_cast<Opcode>(i);
    const OpcodeInfo& info = opcode_info(op);
    const auto found = opcode_from_mnemonic(info.mnemonic);
    ASSERT_TRUE(found.has_value()) << info.mnemonic;
    EXPECT_EQ(*found, op);
  }
  EXPECT_FALSE(opcode_from_mnemonic("bogus").has_value());
}

TEST(OpcodeInfo, StorePropertiesAreConsistent) {
  for (Opcode op : {Opcode::kSb, Opcode::kSh, Opcode::kSw}) {
    const OpcodeInfo& info = opcode_info(op);
    EXPECT_TRUE(info.is_store);
    EXPECT_TRUE(info.reads_rt);
    EXPECT_FALSE(info.writes_rt);
  }
}

TEST(OpcodeInfo, DbneReadsAndWritesCounter) {
  const OpcodeInfo& info = opcode_info(Opcode::kDbne);
  EXPECT_TRUE(info.reads_rs);
  EXPECT_TRUE(info.writes_rs);
  EXPECT_TRUE(info.is_cond_branch);
}

TEST(Operands, SourceAndDestRegs) {
  EXPECT_EQ(dest_reg(b::add(5, 6, 7)).value(), 5);
  EXPECT_EQ(dest_reg(b::addi(9, 1, 4)).value(), 9);
  EXPECT_EQ(dest_reg(b::dbne(3, -1)).value(), 3);
  EXPECT_EQ(dest_reg(b::jal(0x1000)).value(), 31);
  EXPECT_FALSE(dest_reg(b::sw(1, 0, 2)).has_value());
  EXPECT_FALSE(dest_reg(b::beq(1, 2, 3)).has_value());
  EXPECT_FALSE(dest_reg(b::add(0, 1, 2)).has_value());  // $zero dest

  const SourceRegs mac_srcs = source_regs(b::mac(4, 5, 6));
  EXPECT_EQ(mac_srcs.count, 3);  // rs, rt, and the accumulator rd

  const SourceRegs sw_srcs = source_regs(b::sw(1, 0, 2));
  EXPECT_EQ(sw_srcs.count, 2);
}

TEST(Targets, BranchTargetArithmetic) {
  EXPECT_EQ(branch_target(b::beq(0, 0, -1), 0x1000), 0x1000u);  // self loop
  EXPECT_EQ(branch_target(b::beq(0, 0, 0), 0x1000), 0x1004u);
  EXPECT_EQ(branch_target(b::beq(0, 0, 3), 0x1000), 0x1010u);
  EXPECT_EQ(branch_target(b::beq(0, 0, -5), 0x1010), 0x1000u);
}

TEST(Targets, JumpTargetRegionForm) {
  EXPECT_EQ(jump_target(b::j(0x0123'4560), 0x1000), 0x0123'4560u);
}

TEST(Disasm, GoldenStrings) {
  EXPECT_EQ(disassemble(b::add(8, 9, 10), 0), "add $t0, $t1, $t2");
  EXPECT_EQ(disassemble(b::addi(4, 0, -7), 0), "addi $a0, $zero, -7");
  EXPECT_EQ(disassemble(b::lw(2, 16, 29), 0), "lw $v0, 16($sp)");
  EXPECT_EQ(disassemble(b::sw(2, -4, 30), 0), "sw $v0, -4($fp)");
  EXPECT_EQ(disassemble(b::beq(1, 2, -1), 0x1000), "beq $at, $v0, 0x00001000");
  EXPECT_EQ(disassemble(b::sll(1, 1, 4), 0), "sll $at, $at, 4");
  EXPECT_EQ(disassemble(b::nop(), 0), "nop");
  EXPECT_EQ(disassemble(b::halt(), 0), "halt");
  EXPECT_EQ(disassemble(b::dbne(9, -8), 0x2000),
            "dbne $t1, 0x00001FE4");
  EXPECT_EQ(disassemble(b::zoloff(), 0), "zoloff");
  EXPECT_EQ(disassemble(b::zolon(2, 9), 0), "zolon 2, $t1");
  EXPECT_EQ(disassemble_word(encode(b::mac(1, 2, 3)), 0),
            "mac $at, $v0, $v1");
  EXPECT_EQ(disassemble_word(0xFFFFFFFF, 0), "<invalid>");
}

TEST(Regs, NamesRoundTrip) {
  for (unsigned r = 0; r < kNumRegs; ++r) {
    EXPECT_EQ(reg_from_name(reg_name(r)).value(), r);
  }
  EXPECT_EQ(reg_from_name("$5").value(), 5u);
  EXPECT_EQ(reg_from_name("r31").value(), 31u);
  EXPECT_FALSE(reg_from_name("$32").has_value());
  EXPECT_FALSE(reg_from_name("x1").has_value());
  EXPECT_FALSE(reg_from_name("").has_value());
}

TEST(ControlFlow, Classification) {
  EXPECT_TRUE(is_control_flow(b::beq(0, 0, 1)));
  EXPECT_TRUE(is_control_flow(b::j(0)));
  EXPECT_TRUE(is_control_flow(b::jr(31)));
  EXPECT_TRUE(is_control_flow(b::dbne(1, -1)));
  EXPECT_FALSE(is_control_flow(b::add(1, 2, 3)));
  EXPECT_FALSE(is_control_flow(b::halt()));
}

}  // namespace
}  // namespace zolcsim::isa
