// Tests for the minimal JSON reader (common/json): value grammar, typed
// accessors, parse failures with line numbers, and escaping.
#include "common/json.hpp"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace zolcsim::json {
namespace {

TEST(JsonParse, ScalarsAndNesting) {
  const auto doc = parse(R"({
    "name": "zolc",
    "count": 32,
    "ratio": -0.5,
    "on": true,
    "off": false,
    "nothing": null,
    "list": [1, 2, 3],
    "inner": {"k": "v"}
  })");
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  const Value& root = doc.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("name")->as_string(), "zolc");
  EXPECT_EQ(root.find("count")->as_uint(), 32u);
  EXPECT_DOUBLE_EQ(root.find("ratio")->as_number(), -0.5);
  EXPECT_TRUE(root.find("on")->as_bool());
  EXPECT_FALSE(root.find("off")->as_bool());
  EXPECT_TRUE(root.find("nothing")->is_null());
  ASSERT_TRUE(root.find("list")->is_array());
  EXPECT_EQ(root.find("list")->items().size(), 3u);
  EXPECT_EQ(root.find("inner")->find("k")->as_string(), "v");
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonParse, MemberOrderIsPreserved) {
  const auto doc = parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(doc.ok());
  const auto& members = doc.value().members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  // A spelled without a backslash in source so the C++ lexer cannot
  // touch it; the JSON parser must decode ASCII escapes and pass non-ASCII
  // ones through verbatim (the repo never emits them).
  const std::string unicode = std::string("[\"") + "\\u0041" + "\", \"" +
                              "\\u20AC" + "\"]";
  const auto doc = parse(std::string(R"(["a\"b", "tab\there"])"));
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  const auto& items = doc.value().items();
  EXPECT_EQ(items[0].as_string(), "a\"b");
  EXPECT_EQ(items[1].as_string(), "tab\there");
  const auto uni = parse(unicode);
  ASSERT_TRUE(uni.ok()) << uni.error().to_string();
  EXPECT_EQ(uni.value().items()[0].as_string(), "A");
  EXPECT_EQ(uni.value().items()[1].as_string(), "\\u20AC");
}

TEST(JsonParse, MalformedInputsAreKParse) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\" 1}", "tru", "\"open",
                          "{\"a\": 1,}", "- 1", "[1] trailing"}) {
    const auto doc = parse(bad);
    ASSERT_FALSE(doc.ok()) << "accepted: " << bad;
    EXPECT_EQ(doc.error().code, ErrorCode::kParse) << bad;
  }
}

TEST(JsonParse, ErrorCarriesLineNumber) {
  const auto doc = parse("{\n  \"a\": 1,\n  \"b\": ?\n}");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.error().line, 3);
}

TEST(JsonParse, DepthCapRejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  const auto doc = parse(deep);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.error().code, ErrorCode::kParse);
}

TEST(JsonValue, AsUintRejectsNonRepresentable) {
  EXPECT_EQ(parse("-3").value().as_uint(), std::nullopt);
  EXPECT_EQ(parse("1.5").value().as_uint(), std::nullopt);
  EXPECT_EQ(parse("1e300").value().as_uint(), std::nullopt);
  EXPECT_EQ(parse("9007199254740992").value().as_uint(),
            std::uint64_t{9007199254740992});  // 2^53: last exact double
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

}  // namespace
}  // namespace zolcsim::json
