// zolcsim CLI argument parsing: the string forms of the machine / geometry /
// pipeline-config axes must round-trip with the names the sweep emitters
// print, and bad input must fail with kBadConfig (never crash).
#include <gtest/gtest.h>

#include "cli.hpp"
#include "harness/sweep.hpp"

namespace zolcsim::cli {
namespace {

using codegen::MachineKind;

TEST(CliParse, MachineNamesRoundTrip) {
  for (const MachineKind machine : codegen::kAllMachines) {
    const auto parsed =
        parse_machine(std::string(codegen::machine_name(machine)));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), machine);
  }
  EXPECT_TRUE(parse_machine("zolcfull").ok());  // case-insensitive
  const auto bad = parse_machine("Pentium");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kBadConfig);
}

TEST(CliParse, GeometryLabelsRoundTrip) {
  for (const zolc::ZolcGeometry geometry :
       {zolc::ZolcGeometry{}, zolc::ZolcGeometry{32, 12, 0, 0},
        zolc::ZolcGeometry{64, 16, 4, 4, 14}}) {
    const auto parsed = parse_geometry(geometry.label());
    ASSERT_TRUE(parsed.ok()) << geometry.label();
    EXPECT_EQ(parsed.value(), geometry);
  }
  for (const char* bad : {"", "32t", "32t-8l-4x-4e-q14", "at-8l-4x-4e",
                          "32t-64l-4x-4e" /* invalid geometry */}) {
    const auto parsed = parse_geometry(bad);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.error().code, ErrorCode::kBadConfig);
  }
}

TEST(CliParse, ConfigNamesRoundTrip) {
  for (const cpu::PipelineConfig config :
       {cpu::PipelineConfig{cpu::BranchResolveStage::kExecute,
                            cpu::SpeculationPolicy::kRollback, true},
        cpu::PipelineConfig{cpu::BranchResolveStage::kDecode,
                            cpu::SpeculationPolicy::kGate, true},
        cpu::PipelineConfig{cpu::BranchResolveStage::kExecute,
                            cpu::SpeculationPolicy::kRollback, false}}) {
    const auto parsed = parse_config(harness::config_name(config));
    ASSERT_TRUE(parsed.ok()) << harness::config_name(config);
    EXPECT_EQ(parsed.value().branch_resolve, config.branch_resolve);
    EXPECT_EQ(parsed.value().speculation, config.speculation);
    EXPECT_EQ(parsed.value().forwarding, config.forwarding);
  }
  EXPECT_FALSE(parse_config("EX-resolve").ok());  // missing policy
  EXPECT_FALSE(parse_config("warp-speed/rollback").ok());
  EXPECT_EQ(parse_config("").error().code, ErrorCode::kBadConfig);
  // Contradictory tokens are rejected, not silently last-wins.
  EXPECT_FALSE(parse_config("ID-resolve/EX-resolve/gate").ok());
  EXPECT_FALSE(parse_config("EX-resolve/rollback/gate").ok());
}

TEST(CliParse, ArgsSplitFlagsAndPositionals) {
  const char* argv[] = {"zolcsim", "run",          "fir",
                        "--machine=ZOLClite",      "--no-predecode",
                        "--max-cycles=1000",       "--kernels="};
  const Args args = Args::parse(7, const_cast<char**>(argv), 2);
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional.front(), "fir");
  EXPECT_EQ(args.value_of("machine"), "ZOLClite");
  EXPECT_EQ(args.value_of("max-cycles"), "1000");
  // Absent flag vs explicitly empty value are distinguishable, so the
  // driver can reject "--kernels=" instead of sweeping the full suite.
  EXPECT_FALSE(args.value_of("absent").has_value());
  ASSERT_TRUE(args.value_of("kernels").has_value());
  EXPECT_TRUE(args.value_of("kernels")->empty());
  EXPECT_TRUE(args.has("no-predecode"));
  EXPECT_FALSE(args.has("machine"));  // value flag, not a switch
  EXPECT_TRUE(args.unknown({"machine", "max-cycles", "kernels"},
                           {"no-predecode"})
                  .empty());
  EXPECT_EQ(args.unknown({"machine", "kernels"}, {"no-predecode"}).size(),
            1u);
}

TEST(CliParse, SplitListAndErrorRendering) {
  EXPECT_TRUE(split_list("").empty());
  const auto items = split_list("a,b,c");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[2], "c");
  const Error error =
      Error{ErrorCode::kCapacity, "exit records"}.with_context("me_tss");
  EXPECT_EQ(render_error(error), "error[capacity]: me_tss: exit records");
}

}  // namespace
}  // namespace zolcsim::cli
