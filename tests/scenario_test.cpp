// Tests for the declarative scenario harness: suite parsing (schema shape,
// axis validation, typed error codes), the runner's golden-digest and
// threshold enforcement, and the BENCH_<suite>.json artifact schema
// round-tripped through the repo's own JSON reader.
#include "scenario/scenario.hpp"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "flow/cache.hpp"
#include "scenario/runner.hpp"

namespace zolcsim::scenario {
namespace {

/// A minimal valid suite over a fast two-machine dotprod grid.
constexpr const char* kSmallSuite = R"({
  "suite": "small",
  "version": 1,
  "description": "two-machine dotprod",
  "sweep": {
    "kernels": ["dotprod"],
    "machines": ["XRdefault", "ZOLClite"]
  }
})";

TEST(ParseSuite, AcceptsFullSchema) {
  const auto suite = parse_suite(R"({
    "suite": "full-grid_1",
    "version": 1,
    "description": "everything",
    "sweep": {
      "kernels": ["dotprod", "matmul"],
      "machines": ["XRdefault", "ZOLCfull"],
      "configs": ["ID-resolve/gate/nofwd"],
      "geometries": ["16t-4l-0x-0e", "32t-8l-4x-4e-p14"],
      "baseline": "XRdefault",
      "max_cycles": 1000000,
      "env": {"scale": 3, "seed": 77}
    },
    "expect": {
      "csv_fnv1a64": "00ff00ff00ff00ff",
      "thresholds": [
        {"kernel": "dotprod", "machine": "ZOLCfull", "max_cycles": 5000},
        {"kernel": "matmul", "machine": "XRdefault",
         "geometry": "16t-4l-0x-0e", "min_mips": 0.5}
      ]
    }
  })");
  ASSERT_TRUE(suite.ok()) << suite.error().to_string();
  const Suite& s = suite.value();
  EXPECT_EQ(s.name, "full-grid_1");
  EXPECT_EQ(s.description, "everything");
  EXPECT_EQ(s.sweep.kernels.size(), 2u);
  EXPECT_EQ(s.sweep.machines.size(), 2u);
  ASSERT_EQ(s.sweep.configs.size(), 1u);
  EXPECT_FALSE(s.sweep.configs[0].forwarding);
  ASSERT_EQ(s.sweep.geometries.size(), 2u);
  EXPECT_EQ(s.sweep.geometries[1].pc_ofs_bits, 14u);
  EXPECT_EQ(s.sweep.max_cycles, 1000000u);
  EXPECT_EQ(s.sweep.env.scale, 3u);
  EXPECT_EQ(s.sweep.env.seed, 77u);
  EXPECT_EQ(s.expect_csv_fnv1a64, parse_hex64("00ff00ff00ff00ff"));
  ASSERT_EQ(s.thresholds.size(), 2u);
  EXPECT_EQ(s.thresholds[0].max_cycles, 5000u);
  EXPECT_DOUBLE_EQ(s.thresholds[1].min_mips, 0.5);
}

TEST(ParseSuite, MalformedJsonIsKParse) {
  const auto suite = parse_suite("{\"suite\": ", "broken.json");
  ASSERT_FALSE(suite.ok());
  EXPECT_EQ(suite.error().code, ErrorCode::kParse);
  EXPECT_NE(suite.error().to_string().find("broken.json"), std::string::npos);
}

TEST(ParseSuite, UnknownMembersAreRejected) {
  const auto top = parse_suite(
      R"({"suite": "s", "version": 1, "sweep": {}, "bogus": 1})");
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(top.error().code, ErrorCode::kParse);

  const auto nested = parse_suite(
      R"({"suite": "s", "version": 1, "sweep": {"kernel": ["dotprod"]}})");
  ASSERT_FALSE(nested.ok());  // singular "kernel" is a typo for "kernels"
  EXPECT_EQ(nested.error().code, ErrorCode::kParse);
}

TEST(ParseSuite, UnknownKernelIsTyped) {
  const auto suite = parse_suite(
      R"({"suite": "s", "version": 1,
          "sweep": {"kernels": ["no_such_kernel"]}})");
  ASSERT_FALSE(suite.ok());
  EXPECT_EQ(suite.error().code, ErrorCode::kUnknownKernel);
}

TEST(ParseSuite, BadAxisValuesAreKBadConfig) {
  for (const char* text :
       {R"({"suite": "s", "version": 1,
            "sweep": {"machines": ["PDP11"]}})",
        R"({"suite": "s", "version": 1,
            "sweep": {"geometries": ["32 tasks"]}})",
        R"({"suite": "s", "version": 1,
            "sweep": {"configs": ["WB-resolve/rollback"]}})",
        R"({"suite": "s", "version": 2, "sweep": {}})",
        R"({"suite": "Bad Name", "version": 1, "sweep": {}})"}) {
    const auto suite = parse_suite(text);
    ASSERT_FALSE(suite.ok()) << text;
    EXPECT_EQ(suite.error().code, ErrorCode::kBadConfig) << text;
  }
}

TEST(ParseSuite, ThresholdMustCheckSomething) {
  const auto suite = parse_suite(
      R"({"suite": "s", "version": 1, "sweep": {},
          "expect": {"thresholds": [
            {"kernel": "dotprod", "machine": "ZOLClite"}]}})");
  ASSERT_FALSE(suite.ok());
  EXPECT_EQ(suite.error().code, ErrorCode::kBadConfig);
}

TEST(ParseSuite, BadDigestIsKBadConfig) {
  const auto suite = parse_suite(
      R"({"suite": "s", "version": 1, "sweep": {},
          "expect": {"csv_fnv1a64": "123"}})");
  ASSERT_FALSE(suite.ok());
  EXPECT_EQ(suite.error().code, ErrorCode::kBadConfig);
}

TEST(RunSuite, GoldenDigestMismatchIsKVerifyMismatch) {
  auto suite = parse_suite(kSmallSuite);
  ASSERT_TRUE(suite.ok());
  suite.value().expect_csv_fnv1a64 = 0xDEADBEEFDEADBEEFull;
  flow::CompileCache cache;
  const auto outcome = run_suite(suite.value(), cache);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kVerifyMismatch);
}

TEST(RunSuite, ThresholdViolationIsKThreshold) {
  auto suite = parse_suite(kSmallSuite);
  ASSERT_TRUE(suite.ok());
  Threshold t;
  t.kernel = "dotprod";
  t.machine = "ZOLClite";
  t.max_cycles = 1;  // unsatisfiable
  suite.value().thresholds.push_back(t);
  flow::CompileCache cache;
  const auto outcome = run_suite(suite.value(), cache);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kThreshold);
}

TEST(RunSuite, ThresholdOutsideGridIsKBadConfig) {
  auto suite = parse_suite(kSmallSuite);
  ASSERT_TRUE(suite.ok());
  Threshold t;
  t.kernel = "matmul";  // not part of the small sweep
  t.machine = "ZOLClite";
  t.max_cycles = 1000000;
  suite.value().thresholds.push_back(t);
  flow::CompileCache cache;
  const auto outcome = run_suite(suite.value(), cache);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kBadConfig);
}

TEST(RunSuite, SelfGoldenedRoundTripAndBenchArtifact) {
  auto suite = parse_suite(kSmallSuite);
  ASSERT_TRUE(suite.ok());
  flow::CompileCache cache;

  // First run discovers the digest; a second run pinned to it must verify.
  const auto first = run_suite(suite.value(), cache);
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_FALSE(first.value().golden_checked);
  suite.value().expect_csv_fnv1a64 = first.value().csv_fnv1a64;
  const auto second = run_suite(suite.value(), cache);
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  EXPECT_TRUE(second.value().golden_checked);
  EXPECT_EQ(second.value().csv, first.value().csv);
  // The second run hits the warm shared cache: zero fresh compiles.
  EXPECT_EQ(second.value().report.compile_cache_misses, 0u);
  EXPECT_EQ(second.value().report.compile_cache_hits, 2u);

  // The BENCH artifact parses with the repo's own JSON reader and carries
  // the versioned schema.
  EXPECT_EQ(bench_artifact_name(second.value().suite), "BENCH_small.json");
  const auto artifact = json::parse(bench_artifact_json(second.value()));
  ASSERT_TRUE(artifact.ok()) << artifact.error().to_string();
  const json::Value& root = artifact.value();
  EXPECT_EQ(root.find("schema")->as_string(), kBenchSchema);
  EXPECT_EQ(root.find("suite")->as_string(), "small");
  EXPECT_FALSE(root.find("git_sha")->as_string().empty());
  EXPECT_FALSE(root.find("toolchain")->as_string().empty());
  EXPECT_EQ(root.find("golden")->as_string(), "match");
  EXPECT_EQ(parse_hex64(root.find("csv_fnv1a64")->as_string()),
            second.value().csv_fnv1a64);
  ASSERT_NE(root.find("compile_cache"), nullptr);
  ASSERT_NE(root.find("points"), nullptr);
  const auto& points = root.find("points")->items();
  ASSERT_EQ(points.size(), second.value().report.cells.size());
  for (const json::Value& point : points) {
    EXPECT_EQ(point.find("kernel")->as_string(), "dotprod");
    EXPECT_TRUE(point.find("cycles")->as_uint().has_value());
    EXPECT_TRUE(point.find("instructions")->as_uint().has_value());
    EXPECT_TRUE(point.find("mips")->is_number());
  }
}

TEST(ParseSuite, WarmStartMemberSelectsRunPath) {
  const auto make = [](const char* mode) {
    return parse_suite(std::string(R"({
      "suite": "ws", "version": 1,
      "sweep": {"kernels": ["dotprod"], "warm_start": ")") +
                       mode + "\"}}");
  };
  auto warm = make("warm");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().warm_start, WarmStart::kWarm);
  EXPECT_TRUE(warm.value().sweep.warm_start);

  auto cold = make("cold");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.value().warm_start, WarmStart::kCold);
  EXPECT_FALSE(cold.value().sweep.warm_start);

  auto both = make("both");
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both.value().warm_start, WarmStart::kBoth);

  // Absent: warm is the default run path.
  auto absent = parse_suite(kSmallSuite);
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(absent.value().warm_start, WarmStart::kWarm);
  EXPECT_TRUE(absent.value().sweep.warm_start);

  auto bad = make("tepid");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kBadConfig);

  const auto mistyped = parse_suite(R"({
    "suite": "ws", "version": 1,
    "sweep": {"kernels": ["dotprod"], "warm_start": 1}})");
  ASSERT_FALSE(mistyped.ok());
  EXPECT_EQ(mistyped.error().code, ErrorCode::kParse);
}

TEST(RunSuite, BothModeRunsColdAndWarmAndPinsEquality) {
  auto suite = parse_suite(kSmallSuite);
  ASSERT_TRUE(suite.ok());
  suite.value().warm_start = WarmStart::kBoth;
  flow::CompileCache cache;
  const auto outcome = run_suite(suite.value(), cache);
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_TRUE(outcome.value().warm_cold_checked);
  // The reported (warm) pass ran entirely on copy-on-write resets.
  EXPECT_EQ(outcome.value().report.full_prepares, 0u);

  // The v3 artifact carries the run-path field and the prepare counters.
  const auto artifact = json::parse(bench_artifact_json(outcome.value()));
  ASSERT_TRUE(artifact.ok());
  EXPECT_EQ(artifact.value().find("warm_start")->as_string(), "both");
  ASSERT_NE(artifact.value().find("prepares"), nullptr);
  const json::Value& cc = *artifact.value().find("compile_cache");
  EXPECT_TRUE(cc.find("store_hits")->as_uint().has_value());
  EXPECT_TRUE(cc.find("compiles")->as_uint().has_value());
}

TEST(RunSuite, ColdModeCountsFullPrepares) {
  auto suite = parse_suite(kSmallSuite);
  ASSERT_TRUE(suite.ok());
  suite.value().warm_start = WarmStart::kCold;
  suite.value().sweep.warm_start = false;
  suite.value().sweep.timing_reps = 2;
  flow::CompileCache cache;
  const auto outcome = run_suite(suite.value(), cache);
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  // 2 cells x 2 reps, every one a full image rebuild.
  EXPECT_EQ(outcome.value().report.full_prepares, 4u);
  EXPECT_EQ(outcome.value().report.image_resets, 0u);
}

TEST(SuiteFiles, LoadErrorsAreKIo) {
  const auto missing = load_suite_file("/nonexistent/suite.json");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kIo);

  const auto nodir = list_suite_files("/nonexistent/dir");
  ASSERT_FALSE(nodir.ok());
  EXPECT_EQ(nodir.error().code, ErrorCode::kIo);
}

}  // namespace
}  // namespace zolcsim::scenario
