// Assembler: syntax, directives, symbols, error reporting, disassembler
// round trips, and an end-to-end assembled ZOLC program on the pipeline.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"

#include "isa/build.hpp"
#include "cpu/pipeline.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::assembler {
namespace {

AsmProgram must_assemble(std::string_view source) {
  auto result = assemble(source);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().to_string());
  return std::move(result).value();
}

std::string first_error(std::string_view source) {
  auto result = assemble(source);
  EXPECT_FALSE(result.ok());
  return result.ok() ? "" : result.error().to_string();
}

TEST(Assembler, BasicInstructions) {
  const auto prog = must_assemble(R"(
    addi $t0, $zero, 5
    add  $t1, $t0, $t0
    halt
  )");
  ASSERT_EQ(prog.word_count(), 3u);
  EXPECT_EQ(prog.entry, 0x1000u);
  EXPECT_EQ(isa::decode(prog.chunks[0].words[0]),
            isa::build::addi(8, 0, 5));
  EXPECT_EQ(isa::decode(prog.chunks[0].words[1]),
            isa::build::add(9, 8, 8));
}

TEST(Assembler, RegisterNameForms) {
  const auto prog = must_assemble("add $3, r4, $a1\nhalt\n");
  EXPECT_EQ(isa::decode(prog.chunks[0].words[0]), isa::build::add(3, 4, 5));
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto prog = must_assemble(R"(
    ; full line comment
    # another
    nop      ; trailing
    halt
  )");
  EXPECT_EQ(prog.word_count(), 2u);
}

TEST(Assembler, LabelsAndBranches) {
  const auto prog = must_assemble(R"(
    addi $t0, $zero, 3
  loop:
    addi $t1, $t1, 1
    dbne $t0, loop
    halt
  )");
  ASSERT_EQ(prog.word_count(), 4u);
  const auto dbne = isa::decode(prog.chunks[0].words[2]);
  EXPECT_EQ(dbne.op, isa::Opcode::kDbne);
  EXPECT_EQ(dbne.imm, -2);
  EXPECT_EQ(prog.symbols.at("loop"), 0x1004u);
}

TEST(Assembler, ForwardReferences) {
  const auto prog = must_assemble(R"(
    beq $zero, $zero, end
    nop
  end:
    halt
  )");
  const auto beq = isa::decode(prog.chunks[0].words[0]);
  EXPECT_EQ(beq.imm, 1);
}

TEST(Assembler, MemoryOperands) {
  const auto prog = must_assemble(R"(
    lw $t0, 8($sp)
    sw $t0, -4($fp)
    lw $t1, ($t2)
    halt
  )");
  EXPECT_EQ(isa::decode(prog.chunks[0].words[0]), isa::build::lw(8, 8, 29));
  EXPECT_EQ(isa::decode(prog.chunks[0].words[1]), isa::build::sw(8, -4, 30));
  EXPECT_EQ(isa::decode(prog.chunks[0].words[2]), isa::build::lw(9, 0, 10));
}

TEST(Assembler, LiPseudoExpandsToTwoWords) {
  const auto prog = must_assemble("li $t0, 0xDEADBEEF\nhalt\n");
  ASSERT_EQ(prog.word_count(), 3u);
  EXPECT_EQ(isa::decode(prog.chunks[0].words[0]),
            isa::build::lui(8, 0xDEAD));
  EXPECT_EQ(isa::decode(prog.chunks[0].words[1]),
            isa::build::ori(8, 8, 0xBEEF));
}

TEST(Assembler, DataDirectives) {
  const auto prog = must_assemble(R"(
    .data 0x100000
  table:
    .word 1, 2, 3
    .half 0xAAAA, 0xBBBB
    .byte 1, 2, 3, 4
    .text
    halt
  )");
  EXPECT_EQ(prog.symbols.at("table"), 0x100000u);
  mem::Memory memory;
  prog.load_into(memory);
  EXPECT_EQ(memory.read32(0x100000), 1u);
  EXPECT_EQ(memory.read32(0x100008), 3u);
  EXPECT_EQ(memory.read16(0x10000C), 0xAAAAu);
  EXPECT_EQ(memory.read8(0x100010), 1u);
  EXPECT_EQ(memory.read8(0x100013), 4u);
}

TEST(Assembler, OrgAndAlign) {
  const auto prog = must_assemble(R"(
    .text 0x2000
    nop
    .org 0x2010
  target:
    halt
  )");
  EXPECT_EQ(prog.symbols.at("target"), 0x2010u);
  EXPECT_EQ(prog.entry, 0x2000u);
}

TEST(Assembler, SymbolsInImmediates) {
  const auto prog = must_assemble(R"(
    .data 0x4000
  buf: .word 0
    .text
    li $t0, buf
    halt
  )");
  EXPECT_EQ(isa::decode(prog.chunks[0].words[0]), isa::build::lui(8, 0));
  EXPECT_EQ(isa::decode(prog.chunks[0].words[1]),
            isa::build::ori(8, 8, 0x4000));
}

TEST(AssemblerErrors, ReportLineNumbers) {
  EXPECT_NE(first_error("addi $t0, $zero\nhalt\n").find("line 1"),
            std::string::npos);
  EXPECT_NE(first_error("nop\nbogus $t0\n").find("line 2"),
            std::string::npos);
}

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_NE(first_error("frobnicate $t0\n").find("unknown mnemonic"),
            std::string::npos);
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_NE(first_error("j nowhere\n").find("undefined symbol"),
            std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_NE(first_error("a:\nnop\na:\nhalt\n").find("duplicate label"),
            std::string::npos);
}

TEST(AssemblerErrors, ImmediateRange) {
  EXPECT_NE(first_error("addi $t0, $zero, 40000\n").find("out of range"),
            std::string::npos);
  EXPECT_NE(first_error("sll $t0, $t0, 32\n").find("out of range"),
            std::string::npos);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_NE(first_error("add $t0, $bogus, $t1\n").find("bad register"),
            std::string::npos);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_NE(first_error("add $t0, $t1\n").find("expected 3"),
            std::string::npos);
}

TEST(Assembler, RoundTripsWithDisassembler) {
  const char* source =
      "add $t0, $t1, $t2\n"
      "addi $a0, $zero, -7\n"
      "lw $v0, 16($sp)\n"
      "mac $at, $v0, $v1\n"
      "sll $at, $at, 4\n"
      "zoloff\n"
      "halt\n";
  const auto prog = must_assemble(source);
  std::string rebuilt;
  std::uint32_t pc = prog.entry;
  for (const std::uint32_t word : prog.chunks[0].words) {
    rebuilt += isa::disassemble_word(word, pc) + "\n";
    pc += 4;
  }
  const auto prog2 = must_assemble(rebuilt);
  EXPECT_EQ(prog.chunks[0].words, prog2.chunks[0].words);
}

TEST(Assembler, AssembledProgramRunsOnPipeline) {
  const auto prog = must_assemble(R"(
    ; sum 1..10 with dbne
    addi $t0, $zero, 10
    addi $t1, $zero, 0
  loop:
    add  $t1, $t1, $t0
    dbne $t0, loop
    halt
  )");
  mem::Memory memory;
  prog.load_into(memory);
  cpu::Pipeline pipe(memory);
  pipe.set_pc(prog.entry);
  pipe.run(1000);
  EXPECT_EQ(pipe.regs().read(9), 55);
}

TEST(Assembler, AssembledZolcProgramRunsWithController) {
  // Hand-written ZOLC init + single hardware loop: acc += 1 ten times.
  // Loop entry: initial=0 final=10 step=1 index=$t0(r8), cond LT.
  const auto prog = must_assemble(R"(
    .text 0x1000
    addi $t1, $zero, 0        ; acc
    addi $t0, $zero, 0        ; index
    li   $t2, 0x000A0000      ; lp0: initial=0, final=10
    zolw.lp0 0, $t2
    li   $t2, 0x00008801      ; lp1: step=1, index_rf=8, cond=LT, valid
    zolw.lp1 0, $t2
    li   $t2, 0x60000012      ; te0: end_ofs=18, loop 0, cont 0, last, valid
    zolw.te 0, $t2
    li   $t2, 17              ; ts0: body start offset
    zolw.ts 0, $t2
    li   $t2, 0x1000          ; base
    zolon 0, $t2
  body:
    add $t1, $t1, $zero       ; offset 17
    addi $t1, $t1, 1          ; offset 18 = task end
    halt
  )");
  mem::Memory memory;
  prog.load_into(memory);
  zolc::ZolcController controller(zolc::ZolcVariant::kLite);
  cpu::Pipeline pipe(memory);
  pipe.set_accelerator(&controller);
  pipe.set_pc(prog.entry);
  pipe.run(1000);
  EXPECT_EQ(pipe.regs().read(9), 10);
  EXPECT_EQ(pipe.stats().zolc_fetch_events, 10u);
  EXPECT_EQ(pipe.stats().control_flush_slots, 0u);
}

}  // namespace
}  // namespace zolcsim::assembler
