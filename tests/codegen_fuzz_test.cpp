// Randomized structural property test: generate random well-formed kernels
// (nested counted loops, conditionals, break-outs, random ALU bodies) and
// check that every machine configuration computes the same architectural
// result, with ZOLC machines additionally co-simulated against the ISS.
// This is the widest net over the lowering + controller + pipeline stack.
#include <gtest/gtest.h>

#include <random>

#include "codegen/lower.hpp"
#include "cpu/iss.hpp"
#include "cpu/pipeline.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::codegen {
namespace {

namespace b = isa::build;
using isa::Opcode;

/// Accumulator registers whose final values define the kernel's observable
/// result (checked across machines).
constexpr std::uint8_t kAccRegs[] = {16, 17, 18, 19};
/// Index registers by loop depth.
constexpr std::uint8_t kIndexRegs[] = {1, 2, 3, 4};
/// Temps the random bodies may write.
constexpr std::uint8_t kTempRegs[] = {5, 6, 7, 10, 11, 12};

class RandomKernel {
 public:
  explicit RandomKernel(std::uint32_t seed) : rng_(seed) {}

  std::vector<KNode> generate() {
    KernelBuilder kb;
    // Seed accumulators with small values.
    for (const std::uint8_t acc : kAccRegs) {
      kb.li(acc, pick(0, 9));
    }
    kb.li(13, pick(1, 5));  // comparison fodder for ifs/breaks
    emit_scope(kb, /*depth=*/0, /*in_loop=*/false);
    return kb.take();
  }

 private:
  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  void emit_alu(KernelBuilder& kb) {
    const auto acc = kAccRegs[static_cast<unsigned>(pick(0, 3))];
    const auto tmp = kTempRegs[static_cast<unsigned>(pick(0, 5))];
    switch (pick(0, 5)) {
      case 0:
        kb.op(b::addi(acc, acc, pick(1, 7)));
        break;
      case 1:
        kb.op(b::add(acc, acc, kAccRegs[static_cast<unsigned>(pick(0, 3))]));
        break;
      case 2:
        kb.op(b::addi(tmp, acc, pick(-3, 3)));
        kb.op(b::xor_(acc, acc, tmp));
        break;
      case 3:
        kb.op(b::sll(tmp, acc, static_cast<std::uint8_t>(pick(0, 2))));
        kb.op(b::add(acc, acc, tmp));
        break;
      case 4:
        kb.op(b::max(acc, acc, kAccRegs[static_cast<unsigned>(pick(0, 3))]));
        break;
      default:
        kb.op(b::mul(tmp, acc, 13));
        kb.op(b::sub(acc, tmp, acc));
        break;
    }
  }

  void emit_scope(KernelBuilder& kb, unsigned depth, bool in_loop) {
    const int items = pick(1, 3);
    for (int i = 0; i < items; ++i) {
      const int choice = pick(0, 9);
      if (choice <= 3 || depth >= 4) {
        emit_alu(kb);
      } else if (choice <= 6) {
        // Nested counted loop (possibly with a loop index read).
        const std::uint8_t idx = kIndexRegs[depth];
        const int trips = pick(1, 5);
        kb.for_count(idx, 0, trips, 1, [&] {
          if (pick(0, 1) == 0) {
            const auto acc = kAccRegs[static_cast<unsigned>(pick(0, 3))];
            kb.op(b::add(acc, acc, idx));  // index-consuming body
          }
          emit_scope(kb, depth + 1, /*in_loop=*/true);
          if (pick(0, 2) == 0) {
            kb.break_if(Opcode::kBgtz, kAccRegs[static_cast<unsigned>(
                                           pick(0, 3))],
                        0);
          }
        });
      } else if (choice <= 8) {
        kb.if_cond(pick(0, 1) == 0 ? Opcode::kBlt : Opcode::kBge,
                   kAccRegs[static_cast<unsigned>(pick(0, 3))], 13, [&] {
                     emit_alu(kb);
                     if (depth < 4 && pick(0, 1) == 0) emit_alu(kb);
                   });
      } else if (in_loop) {
        kb.break_if(Opcode::kBeq,
                    kAccRegs[static_cast<unsigned>(pick(0, 3))],
                    kAccRegs[static_cast<unsigned>(pick(0, 3))]);
      } else {
        emit_alu(kb);
      }
    }
  }

  std::mt19937 rng_;
};

struct MachineOutcome {
  std::array<std::int32_t, 4> accs{};
  std::uint64_t cycles = 0;
  bool ok = false;
  std::string error;
};

MachineOutcome run_machine(const std::vector<KNode>& kernel,
                           MachineKind machine) {
  MachineOutcome out;
  auto prog = lower(kernel, machine, 0x1000);
  if (!prog.ok()) {
    out.error = prog.error().to_string();
    return out;
  }
  mem::Memory memory;
  prog.value().load_into(memory);
  std::unique_ptr<zolc::ZolcController> pipe_ctrl;
  if (const auto variant = machine_zolc_variant(machine)) {
    pipe_ctrl = std::make_unique<zolc::ZolcController>(*variant);
  }
  cpu::Pipeline pipe(memory);
  pipe.set_accelerator(pipe_ctrl.get());
  pipe.set_pc(0x1000);
  pipe.run(5'000'000);

  // ISS co-simulation with an independent controller.
  mem::Memory iss_mem;
  prog.value().load_into(iss_mem);
  std::unique_ptr<zolc::ZolcController> iss_ctrl;
  if (const auto variant = machine_zolc_variant(machine)) {
    iss_ctrl = std::make_unique<zolc::ZolcController>(*variant);
  }
  cpu::Iss iss(iss_mem);
  iss.set_accelerator(iss_ctrl.get());
  iss.set_pc(0x1000);
  iss.run(5'000'000);
  EXPECT_TRUE(pipe.regs() == iss.regs())
      << "pipeline/ISS divergence on " << machine_name(machine);

  for (unsigned i = 0; i < 4; ++i) out.accs[i] = pipe.regs().read(kAccRegs[i]);
  out.cycles = pipe.stats().cycles;
  out.ok = true;
  return out;
}

class KernelFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KernelFuzz, AllMachinesComputeTheSameResult) {
  RandomKernel generator(GetParam() * 2654435761u + 17u);
  const auto kernel = generator.generate();

  const auto baseline = run_machine(kernel, MachineKind::kXrDefault);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  for (const MachineKind machine :
       {MachineKind::kXrHrdwil, MachineKind::kUZolc, MachineKind::kZolcLite,
        MachineKind::kZolcFull}) {
    const auto got = run_machine(kernel, machine);
    ASSERT_TRUE(got.ok) << machine_name(machine) << ": " << got.error;
    EXPECT_EQ(got.accs, baseline.accs)
        << "architectural divergence on " << machine_name(machine)
        << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz, ::testing::Range(1u, 41u));

// Also fuzz the decoder: random words either decode to a canonical
// instruction (encode(decode(w)) == w) or are rejected.
TEST(DecoderFuzz, DecodeIsCanonicalOnRandomWords) {
  std::mt19937 rng(0xD15EA5E);
  for (int i = 0; i < 20000; ++i) {
    const std::uint32_t word = rng();
    const isa::Instruction instr = isa::decode(word);
    if (instr.valid()) {
      EXPECT_EQ(isa::encode(instr), word);
    }
  }
}

}  // namespace
}  // namespace zolcsim::codegen
