// Loop-structure explorer: for a chosen benchmark, shows
//   * the software (XRdefault) machine code and its recovered CFG loop
//     forest (the "arbitrarily complex loop structure" the ZOLC targets),
//   * the ZOLCfull lowering: init sequence, task decomposition, and the
//     controller's programmed tables after executing just the init.
//
// Usage: loop_explorer [kernel-name]       (default: me_tss)
#include <cstdio>
#include <string>

#include "cfg/cfg.hpp"
#include "cpu/iss.hpp"
#include "flow/compiled_unit.hpp"
#include "isa/disasm.hpp"
#include "kernels/kernels.hpp"
#include "zolc/controller.hpp"

int main(int argc, char** argv) {
  using namespace zolcsim;

  const std::string name = argc > 1 ? argv[1] : "me_tss";
  const kernels::Kernel* kernel = kernels::find_kernel(name);
  if (kernel == nullptr) {
    std::fprintf(stderr, "unknown kernel '%s'; available:\n", name.c_str());
    for (const auto& k : kernels::kernel_registry()) {
      std::fprintf(stderr, "  %s\n", std::string(k->name()).c_str());
    }
    return 1;
  }

  std::printf("=== %s: %s ===\n\n", name.c_str(),
              std::string(kernel->description()).c_str());

  // ---- software shape ----
  flow::CompileSpec spec;
  spec.kernel = name;
  spec.machine = codegen::MachineKind::kXrDefault;
  const auto sw = flow::CompiledUnit::compile(spec);
  if (!sw.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 sw.error().to_string().c_str());
    return 1;
  }
  const codegen::Program& sw_prog = sw.value().program();
  cfg::Cfg graph(sw_prog.code, sw_prog.base);
  const auto forest = cfg::find_loops(graph);
  std::printf("software (XRdefault) control-flow structure:\n%s\n",
              cfg::describe_structure(graph, forest).c_str());

  // ---- ZOLCfull lowering ----
  spec.machine = codegen::MachineKind::kZolcFull;
  const auto hw = flow::CompiledUnit::compile(spec);
  if (!hw.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 hw.error().to_string().c_str());
    return 1;
  }
  const codegen::Program& prog = hw.value().program();
  std::printf("ZOLCfull lowering: %zu words total, %u init, %u hardware / "
              "%u software loops\n",
              prog.size_words(), prog.init_instructions, prog.hw_loop_count,
              prog.sw_loop_count);
  for (const std::string& note : prog.notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  std::printf("\ninitialization sequence (the paper's \"initialization "
              "mode\"):\n");
  for (unsigned i = 0; i < prog.init_instructions; ++i) {
    const std::uint32_t pc = prog.base + i * 4;
    std::printf("  %08X:  %s\n", pc,
                isa::disassemble(prog.code[i], pc).c_str());
  }

  // Execute only the init sequence on the ISS to fill the tables.
  mem::Memory memory;
  prog.load_into(memory);
  zolc::ZolcController controller(zolc::ZolcVariant::kFull);
  cpu::Iss iss(memory);
  iss.set_accelerator(&controller);
  iss.set_pc(prog.base);
  for (unsigned i = 0; i < prog.init_instructions; ++i) iss.step();

  std::printf("\ncontroller state after init (task LUT, loop parameter "
              "tables, exit records):\n%s\n",
              controller.describe().c_str());

  std::printf("first instructions of the kernel body (no loop overhead "
              "instructions remain):\n");
  const unsigned body_start = prog.init_instructions;
  const unsigned body_end =
      std::min<unsigned>(body_start + 12,
                         static_cast<unsigned>(prog.code.size()));
  for (unsigned i = body_start; i < body_end; ++i) {
    const std::uint32_t pc = prog.base + i * 4;
    std::printf("  %08X:  %s\n", pc,
                isa::disassemble(prog.code[i], pc).c_str());
  }
  return 0;
}
