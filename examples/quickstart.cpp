// Quickstart: the staged zolcsim toolchain in one file.
//
//   1. Compile stage -- flow::CompiledUnit::compile() turns a (kernel,
//      machine, geometry, env) point into an immutable artifact: lowered
//      program, predecoded image, zolcscan metadata.
//   2. Runtime stage -- flow::run() executes that unit under any number of
//      pipeline configurations without recompiling.
//   3. Comparison -- a second unit for the unmodified core gives the
//      paper's cycle-reduction metric.
//
// The same flow drives the `zolcsim` CLI:
//   zolcsim compile fir --machine=ZOLClite --disasm
//   zolcsim run fir --machine=ZOLClite
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "flow/compiled_unit.hpp"
#include "flow/run.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace zolcsim;

  // --- 1. Compile once per machine. ---------------------------------------
  flow::CompileSpec spec;
  spec.kernel = "fir";  // 16-tap FIR filter from the paper suite
  spec.machine = codegen::MachineKind::kZolcLite;
  const auto zolc_unit = flow::CompiledUnit::compile(spec);

  spec.machine = codegen::MachineKind::kXrDefault;
  const auto base_unit = flow::CompiledUnit::compile(spec);

  if (!zolc_unit.ok() || !base_unit.ok()) {
    const Error& error =
        zolc_unit.ok() ? base_unit.error() : zolc_unit.error();
    std::fprintf(stderr, "compile failed: %s\n", error.to_string().c_str());
    return 1;
  }
  std::printf("baseline image: %zu words, ZOLC image: %zu words "
              "(%u of them one-time init, %u hardware loops)\n",
              base_unit.value().program().size_words(),
              zolc_unit.value().program().size_words(),
              zolc_unit.value().program().init_instructions,
              zolc_unit.value().program().hw_loop_count);

  // --- 2. Run the compiled units (recompile-free per config). -------------
  const auto run_once = [](const flow::CompiledUnit& unit,
                           const flow::RunPlan& plan) -> std::uint64_t {
    const auto result = flow::run(unit, plan);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.error().to_string().c_str());
      std::exit(1);
    }
    std::printf("  %-10s %6llu cycles, %6llu instructions (verified)\n",
                std::string(codegen::machine_name(unit.machine())).c_str(),
                static_cast<unsigned long long>(result.value().stats.cycles),
                static_cast<unsigned long long>(
                    result.value().stats.instructions));
    return result.value().stats.cycles;
  };

  std::printf("running on the 5-stage cycle-accurate pipeline:\n");
  const std::uint64_t base_cycles = run_once(base_unit.value(), {});
  const std::uint64_t zolc_cycles = run_once(zolc_unit.value(), {});

  // The same ZOLC unit again under a different pipeline configuration --
  // this is the step the compile-once split makes free.
  flow::RunPlan early;
  early.config.branch_resolve = cpu::BranchResolveStage::kDecode;
  std::printf("same compiled unit, ID-resolve pipeline:\n");
  run_once(zolc_unit.value(), early);

  // --- 3. The paper's metric. ---------------------------------------------
  std::printf("\nZOLC removes the loop's index update, compare-branch and "
              "flush:\n  %.1f%% fewer cycles\n",
              harness::percent_reduction(base_cycles, zolc_cycles));
  return 0;
}
