// Quickstart: the whole zolcsim flow in one file.
//
//   1. Describe a loop kernel in the structured kernel IR.
//   2. Lower it for the baseline core and for a ZOLC-equipped core.
//   3. Run both on the cycle-accurate pipeline and compare cycles.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "codegen/lower.hpp"
#include "cpu/pipeline.hpp"
#include "isa/build.hpp"
#include "zolc/controller.hpp"

int main() {
  using namespace zolcsim;
  namespace b = isa::build;

  // --- 1. A small kernel: acc = sum of i*i for i in [0, 100). -------------
  codegen::KernelBuilder kb;
  kb.li(16, 0);                       // acc
  kb.for_count(/*index reg=*/1, /*initial=*/0, /*final=*/100, /*step=*/1, [&] {
    kb.op(b::mul(2, 1, 1));           // i*i
    kb.op(b::add(16, 16, 2));         // acc +=
  });
  const auto kernel = kb.take();

  // --- 2. Lower for both machines. ----------------------------------------
  const auto baseline =
      codegen::lower(kernel, codegen::MachineKind::kXrDefault);
  const auto zolc = codegen::lower(kernel, codegen::MachineKind::kZolcLite);
  if (!baseline.ok() || !zolc.ok()) {
    std::fprintf(stderr, "lowering failed\n");
    return 1;
  }
  std::printf("baseline image: %zu words, ZOLC image: %zu words "
              "(%u of them one-time init)\n",
              baseline.value().size_words(), zolc.value().size_words(),
              zolc.value().init_instructions);

  // --- 3. Run. -------------------------------------------------------------
  const auto run = [](const codegen::Program& prog) {
    mem::Memory memory;
    prog.load_into(memory);
    std::unique_ptr<zolc::ZolcController> controller;
    if (const auto variant = codegen::machine_zolc_variant(prog.machine)) {
      controller = std::make_unique<zolc::ZolcController>(*variant);
    }
    cpu::Pipeline pipe(memory);
    pipe.set_accelerator(controller.get());
    pipe.set_pc(prog.base);
    pipe.run(1'000'000);
    std::printf("  %-10s %6llu cycles, %6llu instructions, acc = %d\n",
                std::string(codegen::machine_name(prog.machine)).c_str(),
                static_cast<unsigned long long>(pipe.stats().cycles),
                static_cast<unsigned long long>(pipe.stats().instructions),
                pipe.regs().read(16));
    return pipe.stats().cycles;
  };

  std::printf("running on the 5-stage cycle-accurate pipeline:\n");
  const auto base_cycles = run(baseline.value());
  const auto zolc_cycles = run(zolc.value());

  std::printf("\nZOLC removes the loop's index update, compare-branch and "
              "flush:\n  %.1f%% fewer cycles\n",
              100.0 * (1.0 - static_cast<double>(zolc_cycles) /
                                 static_cast<double>(base_cycles)));
  return 0;
}
