// Motion estimation across the machine configurations -- the paper's
// motivating workload class. Shows where each ZOLC variant pays:
//   * me_fsbm: a perfect 4-deep nest every variant accelerates;
//   * me_tss : a multi-exit candidate loop only ZOLCfull keeps in hardware.
#include <cstdio>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/run.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace zolcsim;
  using codegen::MachineKind;

  std::printf("Motion estimation on every machine configuration\n\n");

  for (const char* name : {"me_fsbm", "me_tss"}) {
    const kernels::Kernel* kernel = kernels::find_kernel(name);
    std::printf("%s -- %s\n", name,
                std::string(kernel->description()).c_str());

    TextTable table({"machine", "cycles", "vs XRdefault", "hw loops",
                     "ZOLC exit hits", "notes"});
    std::uint64_t baseline = 0;
    for (const MachineKind machine : codegen::kAllMachines) {
      // Staged flow: compile the unit, then run it (one config here; the
      // split pays off when a unit is run under many).
      flow::CompileSpec spec;
      spec.kernel = name;
      spec.machine = machine;
      const auto unit = flow::CompiledUnit::compile(spec);
      const auto result = unit.ok()
                              ? flow::run(unit.value())
                              : Result<harness::ExperimentResult>(
                                    Error(unit.error()));
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n",
                     result.error().to_string().c_str());
        return 1;
      }
      const auto& r = result.value();
      if (machine == MachineKind::kXrDefault) baseline = r.stats.cycles;
      std::string note;
      for (const std::string& n : r.notes) {
        if (!note.empty()) note += "; ";
        note += n;
      }
      if (note.size() > 46) note = note.substr(0, 43) + "...";
      table.add_row(
          {std::string(codegen::machine_name(machine)),
           std::to_string(r.stats.cycles),
           format_fixed(harness::percent_reduction(baseline, r.stats.cycles),
                        1) +
               "%",
           std::to_string(r.hw_loops),
           std::to_string(r.zolc_stats.exit_matches), note});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "reading me_tss: the candidate loop's perfect-match break makes it a\n"
      "multi-exit loop. ZOLClite must lower it (and the SAD loops inside it)\n"
      "to software and loses nearly all benefit; ZOLCfull registers the\n"
      "break as a candidate-exit record and keeps the entire structure in\n"
      "hardware -- the paper's argument for arbitrary loop structures.\n");
  return 0;
}
