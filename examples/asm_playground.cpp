// Assembler playground: assembles a source file (or a built-in demo that
// programs the ZOLC by hand), prints the listing, and runs it on the
// cycle-accurate pipeline with a ZOLCfull controller attached.
//
// Usage: asm_playground [file.s]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "assembler/assembler.hpp"
#include "cpu/pipeline.hpp"
#include "isa/disasm.hpp"
#include "zolc/controller.hpp"

namespace {

// Hand-written ZOLC demo: 2-instruction hardware loop summing 0..19 into
// $t1, programmed entirely with zolw.*/zolon instructions.
constexpr const char* kDemo = R"(
; zolcsim assembler demo: hand-programmed ZOLC loop
        .text 0x1000
        addi $t1, $zero, 0        ; acc
        addi $t0, $zero, 0        ; index register ($t0 = r8)
        li   $t2, 0x00140000      ; lp0: initial=0, final=20
        zolw.lp0 0, $t2
        li   $t2, 0x00008801      ; lp1: step=1, index_rf=8, cond=LT, valid
        zolw.lp1 0, $t2
        li   $t2, 0x60000012      ; te0: end_ofs=18, loop 0, is_last, valid
        zolw.te 0, $t2
        li   $t2, 17              ; ts0: body start word offset
        zolw.ts 0, $t2
        li   $t2, 0x1000
        zolon 0, $t2              ; activate, task 0, base 0x1000
body:   add  $t1, $t1, $t0       ; word offset 17: acc += i
        nop                       ; word offset 18: task end
        halt
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace zolcsim;

  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    source = kDemo;
    std::printf("(no file given; using the built-in ZOLC demo)\n\n%s\n",
                kDemo);
  }

  const auto assembled = assembler::assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly error: %s\n",
                 assembled.error().to_string().c_str());
    return 1;
  }
  const assembler::AsmProgram& prog = assembled.value();

  std::printf("listing (%zu words):\n", prog.word_count());
  for (const auto& chunk : prog.chunks) {
    std::uint32_t pc = chunk.addr;
    for (const std::uint32_t word : chunk.words) {
      std::printf("  %08X:  %08X  %s\n", pc, word,
                  isa::disassemble_word(word, pc).c_str());
      pc += 4;
    }
  }
  std::printf("symbols:\n");
  for (const auto& [name, addr] : prog.symbols) {
    std::printf("  %-16s 0x%08X\n", name.c_str(), addr);
  }

  mem::Memory memory;
  prog.load_into(memory);
  zolc::ZolcController controller(zolc::ZolcVariant::kFull);
  cpu::Pipeline pipe(memory);
  pipe.set_accelerator(&controller);
  pipe.set_pc(prog.entry);
  try {
    pipe.run(10'000'000);
  } catch (const cpu::SimError& e) {
    std::fprintf(stderr, "simulation stopped: %s\n", e.what());
    return 1;
  }

  std::printf("\nran to halt in %llu cycles (%llu instructions, %llu ZOLC "
              "loop events)\n",
              static_cast<unsigned long long>(pipe.stats().cycles),
              static_cast<unsigned long long>(pipe.stats().instructions),
              static_cast<unsigned long long>(pipe.stats().zolc_fetch_events));
  std::printf("register file (non-zero):\n");
  for (unsigned r = 1; r < isa::kNumRegs; ++r) {
    if (pipe.regs().read(r) != 0) {
      std::printf("  %-6s = %d\n", std::string(isa::reg_name(r)).c_str(),
                  pipe.regs().read(r));
    }
  }
  return 0;
}
