#include "suite_main.hpp"

#include <cstdio>
#include <fstream>
#include <string>

#include "common/strings.hpp"
#include "flow/cache.hpp"
#include "harness/sweep.hpp"
#include "scenario/runner.hpp"

#ifndef ZOLCSIM_SCENARIO_DIR
#define ZOLCSIM_SCENARIO_DIR "scenarios"
#endif

namespace zolcsim::bench {

namespace {

std::string suite_dir_from_args(int argc, char** argv) {
  const std::string_view prefix = "--suite-dir=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (starts_with(arg, prefix) && arg.size() > prefix.size()) {
      return std::string(arg.substr(prefix.size()));
    }
  }
  return ZOLCSIM_SCENARIO_DIR;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary);
  file << content;
  file.flush();
  return file.good();
}

}  // namespace

int suite_main(const char* suite_name, int argc, char** argv) {
  const std::string path =
      suite_dir_from_args(argc, argv) + "/" + suite_name + ".json";
  auto suite = scenario::load_suite_file(path);
  if (!suite.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", suite.error().to_string().c_str());
    return 1;
  }
  std::printf("%s: %s\n", suite.value().name.c_str(),
              suite.value().description.c_str());

  scenario::RunOptions options;
  options.threads = harness::threads_from_args(argc, argv);
  flow::CompileCache cache;
  auto outcome = scenario::run_suite(suite.value(), cache, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", outcome.error().to_string().c_str());
    return 1;
  }
  const scenario::SuiteOutcome& done = outcome.value();

  const std::string csv_path = std::string(suite_name) + ".csv";
  if (!write_file(csv_path, done.csv)) {
    std::fprintf(stderr, "FAILED: cannot write %s\n", csv_path.c_str());
    return 1;
  }
  const std::string artifact = scenario::bench_artifact_name(done.suite);
  if (!write_file(artifact, scenario::bench_artifact_json(done))) {
    std::fprintf(stderr, "FAILED: cannot write %s\n", artifact.c_str());
    return 1;
  }

  std::printf(
      "  %zu cells  golden %s  %.2fs  %.2f MIPS  (%zu compiles, %zu cache "
      "hits)\n"
      "  wrote %s and %s\n",
      done.report.cells.size(), done.golden_checked ? "match" : "unchecked",
      done.wall_seconds, done.mips, done.report.compile_cache_compiles,
      done.report.compile_cache_hits, csv_path.c_str(), artifact.c_str());
  return 0;
}

}  // namespace zolcsim::bench
