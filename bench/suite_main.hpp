// Shared entry point for the scenario-backed benchmark binaries. Each of
// the five paper benches is a two-line main over this: the grid, golden
// digest, and thresholds live in scenarios/<suite>.json, and the binary is
// kept only as a stable name for CI and local runs.
#ifndef ZOLCSIM_BENCH_SUITE_MAIN_HPP
#define ZOLCSIM_BENCH_SUITE_MAIN_HPP

namespace zolcsim::bench {

/// Loads scenarios/<suite_name>.json (directory overridable with
/// --suite-dir=DIR; the compiled-in default points at the source tree),
/// runs it, verifies the golden CSV digest, writes <suite_name>.csv and
/// BENCH_<suite_name>.json to the working directory, and prints a summary.
/// Honors --threads=N. Returns a process exit code.
int suite_main(const char* suite_name, int argc, char** argv);

}  // namespace zolcsim::bench

#endif  // ZOLCSIM_BENCH_SUITE_MAIN_HPP
