// E4 -- variant ablation across the full machine set (extension of the
// paper's Section 3 variant comparison): uZOLC vs ZOLClite vs ZOLCfull on
// every benchmark, highlighting where each capability pays:
//   * uZOLC: one hot innermost loop;
//   * ZOLClite: whole nests, but multi-exit loops fall back to software;
//   * ZOLCfull: multi-exit loops stay in hardware (candidate-exit records).
// One SweepSpec whose variant axis is expressed via machines_for_variants.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace zolcsim;
  using codegen::MachineKind;

  std::printf("E4: ZOLC variant ablation (cycle reduction vs XRdefault)\n\n");

  harness::SweepSpec spec;
  spec.machines = {MachineKind::kXrDefault};
  for (const MachineKind machine : harness::machines_for_variants(
           {zolc::ZolcVariant::kMicro, zolc::ZolcVariant::kLite,
            zolc::ZolcVariant::kFull})) {
    spec.machines.push_back(machine);
  }
  spec.threads = harness::threads_from_args(argc, argv);
  const auto swept = harness::run_sweep(spec);
  if (!swept.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", swept.error().to_string().c_str());
    return 1;
  }
  const harness::SweepReport& report = swept.value();

  TextTable table({"benchmark", "XRdefault", "uZOLC", "ZOLClite", "ZOLCfull",
                   "uZOLC red.", "lite red.", "full red.", "hw loops u/l/f"});
  for (std::size_t k = 0; k < report.kernels.size(); ++k) {
    table.add_row(
        {report.kernels[k], std::to_string(report.cycles(k, 0)),
         std::to_string(report.cycles(k, 1)),
         std::to_string(report.cycles(k, 2)),
         std::to_string(report.cycles(k, 3)),
         format_fixed(report.reduction(k, 1), 1) + "%",
         format_fixed(report.reduction(k, 2), 1) + "%",
         format_fixed(report.reduction(k, 3), 1) + "%",
         std::to_string(report.at(k, 1).hw_loops) + "/" +
             std::to_string(report.at(k, 2).hw_loops) + "/" +
             std::to_string(report.at(k, 3).hw_loops)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: full >= lite >= micro on nests; on multi-exit kernels\n"
      "(me_tss) lite degrades to near-baseline while full keeps the whole\n"
      "structure in hardware -- the paper's motivation for multiple-exit\n"
      "support.\n");
  if (std::ofstream("ablation_variants.csv") << report.to_csv()) {
    std::printf("(csv written to ablation_variants.csv)\n");
  }
  return 0;
}
