// E4 -- ZOLC variant ablation: uZOLC vs ZOLClite vs ZOLCfull on every
// benchmark. The grid and golden digest live in
// scenarios/ablation_variants.json.
#include "suite_main.hpp"

int main(int argc, char** argv) {
  return zolcsim::bench::suite_main("ablation_variants", argc, argv);
}
