// E4 -- variant ablation across the full machine set (extension of the
// paper's Section 3 variant comparison): uZOLC vs ZOLClite vs ZOLCfull on
// every benchmark, highlighting where each capability pays:
//   * uZOLC: one hot innermost loop;
//   * ZOLClite: whole nests, but multi-exit loops fall back to software;
//   * ZOLCfull: multi-exit loops stay in hardware (candidate-exit records).
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace zolcsim;
  using codegen::MachineKind;

  std::printf("E4: ZOLC variant ablation (cycle reduction vs XRdefault)\n\n");

  TextTable table({"benchmark", "XRdefault", "uZOLC", "ZOLClite", "ZOLCfull",
                   "uZOLC red.", "lite red.", "full red.", "hw loops u/l/f"});
  CsvWriter csv({"benchmark", "xrdefault", "uzolc", "zolclite", "zolcfull",
                 "uzolc_reduction", "lite_reduction", "full_reduction"});

  for (const auto& kernel : kernels::kernel_registry()) {
    std::uint64_t cycles[4] = {};
    unsigned hw[4] = {};
    const MachineKind machines[4] = {MachineKind::kXrDefault,
                                     MachineKind::kUZolc,
                                     MachineKind::kZolcLite,
                                     MachineKind::kZolcFull};
    for (int i = 0; i < 4; ++i) {
      const auto result = harness::run_experiment(*kernel, machines[i]);
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n", result.error().message.c_str());
        return 1;
      }
      cycles[i] = result.value().stats.cycles;
      hw[i] = result.value().hw_loops;
    }
    const double red_u = harness::percent_reduction(cycles[0], cycles[1]);
    const double red_l = harness::percent_reduction(cycles[0], cycles[2]);
    const double red_f = harness::percent_reduction(cycles[0], cycles[3]);
    table.add_row({std::string(kernel->name()), std::to_string(cycles[0]),
                   std::to_string(cycles[1]), std::to_string(cycles[2]),
                   std::to_string(cycles[3]), format_fixed(red_u, 1) + "%",
                   format_fixed(red_l, 1) + "%", format_fixed(red_f, 1) + "%",
                   std::to_string(hw[1]) + "/" + std::to_string(hw[2]) + "/" +
                       std::to_string(hw[3])});
    csv.add_row({std::string(kernel->name()), std::to_string(cycles[0]),
                 std::to_string(cycles[1]), std::to_string(cycles[2]),
                 std::to_string(cycles[3]), format_fixed(red_u, 2),
                 format_fixed(red_l, 2), format_fixed(red_f, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: full >= lite >= micro on nests; on multi-exit kernels\n"
      "(me_tss) lite degrades to near-baseline while full keeps the whole\n"
      "structure in hardware -- the paper's motivation for multiple-exit\n"
      "support.\n");
  if (csv.write_file("ablation_variants.csv")) {
    std::printf("(csv written to ablation_variants.csv)\n");
  }
  return 0;
}
