// E5 -- methodology ablation: how sensitive are the Figure 2 savings to the
// modelled branch micro-architecture? Sweeps the branch-resolution stage
// (EX: 2-cycle taken penalty, the default; ID: 1-cycle early branch) and the
// ZOLC speculation policy (rollback vs conservative fetch gating), reporting
// the suite-average ZOLClite cycle reduction for each point.
#include <cstdio>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace zolcsim;
  using codegen::MachineKind;
  using cpu::BranchResolveStage;
  using cpu::PipelineConfig;
  using cpu::SpeculationPolicy;

  std::printf("E5: sensitivity of ZOLC gains to branch handling\n\n");

  const struct {
    const char* name;
    PipelineConfig config;
  } points[] = {
      {"EX-resolve + rollback (default)",
       {BranchResolveStage::kExecute, SpeculationPolicy::kRollback, true}},
      {"EX-resolve + fetch gating",
       {BranchResolveStage::kExecute, SpeculationPolicy::kGate, true}},
      {"ID-resolve + rollback",
       {BranchResolveStage::kDecode, SpeculationPolicy::kRollback, true}},
      {"ID-resolve + fetch gating",
       {BranchResolveStage::kDecode, SpeculationPolicy::kGate, true}},
  };

  TextTable table({"configuration", "avg ZOLC reduction", "max ZOLC reduction",
                   "avg hrdwil reduction", "gate stalls (suite)"});
  for (const auto& point : points) {
    double zolc_sum = 0.0, zolc_max = 0.0, hrdwil_sum = 0.0;
    std::uint64_t gate_stalls = 0;
    unsigned count = 0;
    for (const auto& kernel : kernels::kernel_registry()) {
      const auto base = harness::run_experiment(
          *kernel, MachineKind::kXrDefault, {}, point.config);
      const auto hrdwil = harness::run_experiment(
          *kernel, MachineKind::kXrHrdwil, {}, point.config);
      const auto zolc = harness::run_experiment(
          *kernel, MachineKind::kZolcLite, {}, point.config);
      if (!base.ok() || !hrdwil.ok() || !zolc.ok()) {
        std::fprintf(stderr, "FAILED on %s\n",
                     std::string(kernel->name()).c_str());
        return 1;
      }
      const double red_z = harness::percent_reduction(
          base.value().stats.cycles, zolc.value().stats.cycles);
      zolc_sum += red_z;
      zolc_max = std::max(zolc_max, red_z);
      hrdwil_sum += harness::percent_reduction(base.value().stats.cycles,
                                               hrdwil.value().stats.cycles);
      gate_stalls += zolc.value().stats.gate_stalls;
      ++count;
    }
    const double n = count;
    table.add_row({point.name, format_fixed(zolc_sum / n, 1) + "%",
                   format_fixed(zolc_max, 1) + "%",
                   format_fixed(hrdwil_sum / n, 1) + "%",
                   std::to_string(gate_stalls)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the ZOLC gain is robust across branch handling. Early (ID)\n"
      "resolution halves the flush penalty but adds an operand interlock on\n"
      "back-edges that depend on the index update they follow, so XRdefault\n"
      "gains little while dbne (whose counter is written a full body\n"
      "earlier) benefits -- hrdwil's average roughly doubles. Fetch gating\n"
      "trades the rollback hardware for a handful of stall cycles with no\n"
      "architectural difference.\n");
  return 0;
}
