// E5 -- methodology ablation: sensitivity of the Figure 2 savings to the
// modelled branch micro-architecture (resolve stage x speculation policy).
// The grid and golden digest live in scenarios/penalty_sweep.json.
#include "suite_main.hpp"

int main(int argc, char** argv) {
  return zolcsim::bench::suite_main("penalty_sweep", argc, argv);
}
