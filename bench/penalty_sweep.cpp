// E5 -- methodology ablation: how sensitive are the Figure 2 savings to the
// modelled branch micro-architecture? One SweepSpec over the full pipeline
// config grid: branch-resolution stage (EX: 2-cycle taken penalty, the
// default; ID: 1-cycle early branch) x ZOLC speculation policy (rollback vs
// conservative fetch gating), reporting the suite-average ZOLClite cycle
// reduction for each point.
#include <cstdio>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace zolcsim;
  using codegen::MachineKind;
  using cpu::BranchResolveStage;
  using cpu::PipelineConfig;
  using cpu::SpeculationPolicy;

  std::printf("E5: sensitivity of ZOLC gains to branch handling\n\n");

  harness::SweepSpec spec;
  spec.machines = {MachineKind::kXrDefault, MachineKind::kXrHrdwil,
                   MachineKind::kZolcLite};
  spec.configs = {
      {BranchResolveStage::kExecute, SpeculationPolicy::kRollback, true},
      {BranchResolveStage::kExecute, SpeculationPolicy::kGate, true},
      {BranchResolveStage::kDecode, SpeculationPolicy::kRollback, true},
      {BranchResolveStage::kDecode, SpeculationPolicy::kGate, true}};
  spec.threads = harness::threads_from_args(argc, argv);
  const auto swept = harness::run_sweep(spec);
  if (!swept.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", swept.error().to_string().c_str());
    return 1;
  }
  const harness::SweepReport& report = swept.value();

  TextTable table({"configuration", "avg ZOLC reduction", "max ZOLC reduction",
                   "avg hrdwil reduction", "gate stalls (suite)"});
  for (std::size_t c = 0; c < report.configs.size(); ++c) {
    const harness::SweepAggregate zolc = report.aggregate(2, c);
    const harness::SweepAggregate hrdwil = report.aggregate(1, c);
    table.add_row({harness::config_name(report.configs[c]),
                   format_fixed(zolc.avg_reduction, 1) + "%",
                   format_fixed(zolc.max_reduction, 1) + "%",
                   format_fixed(hrdwil.avg_reduction, 1) + "%",
                   std::to_string(zolc.gate_stalls)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the ZOLC gain is robust across branch handling. Early (ID)\n"
      "resolution halves the flush penalty but adds an operand interlock on\n"
      "back-edges that depend on the index update they follow, so XRdefault\n"
      "gains little while dbne (whose counter is written a full body\n"
      "earlier) benefits -- hrdwil's average roughly doubles. Fetch gating\n"
      "trades the rollback hardware for a handful of stall cycles with no\n"
      "architectural difference.\n");
  return 0;
}
