// E1 -- Figure 2 of the paper: cycle performance of the benchmark suite on
// XRdefault (baseline), XRhrdwil (dbne), and XiRisc+ZOLClite. The grid and
// golden digest live in scenarios/fig2_cycles.json.
#include "suite_main.hpp"

int main(int argc, char** argv) {
  return zolcsim::bench::suite_main("fig2_cycles", argc, argv);
}
