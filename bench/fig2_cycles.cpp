// E1 -- Figure 2 of the paper: relative cycle counts for the benchmark
// suite on XRdefault (baseline 1.0), XRhrdwil (branch-decrement), and
// XiRisc+ZOLClite, plus the in-text summary claims:
//   "branch-decrement ... up to 27.5% and about 11.1% in average"
//   "ZOLC ... up to 48.2% and about 26.2% in average"
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"

namespace {

using namespace zolcsim;
using codegen::MachineKind;

struct Row {
  std::string kernel;
  std::uint64_t base = 0;
  std::uint64_t hrdwil = 0;
  std::uint64_t zolc = 0;
};

}  // namespace

int main() {
  std::printf(
      "E1 / Figure 2: cycle performance, 12 benchmarks\n"
      "machines: XRdefault (baseline), XRhrdwil (dbne), XiRisc+ZOLClite\n\n");

  std::vector<Row> rows;
  for (const auto& kernel : kernels::kernel_registry()) {
    Row row;
    row.kernel = std::string(kernel->name());
    for (const MachineKind machine :
         {MachineKind::kXrDefault, MachineKind::kXrHrdwil,
          MachineKind::kZolcLite}) {
      const auto result = harness::run_experiment(*kernel, machine);
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n", result.error().message.c_str());
        return 1;
      }
      const std::uint64_t cycles = result.value().stats.cycles;
      if (machine == MachineKind::kXrDefault) row.base = cycles;
      if (machine == MachineKind::kXrHrdwil) row.hrdwil = cycles;
      if (machine == MachineKind::kZolcLite) row.zolc = cycles;
    }
    rows.push_back(row);
  }

  TextTable table({"benchmark", "XRdefault", "XRhrdwil", "ZOLClite",
                   "hrdwil rel", "ZOLC rel", "ZOLC saving"});
  CsvWriter csv({"benchmark", "xrdefault_cycles", "xrhrdwil_cycles",
                 "zolclite_cycles", "hrdwil_relative", "zolc_relative"});
  double hrdwil_sum = 0.0, hrdwil_max = 0.0;
  double zolc_sum = 0.0, zolc_max = 0.0;
  for (const Row& row : rows) {
    const double rel_h =
        static_cast<double>(row.hrdwil) / static_cast<double>(row.base);
    const double rel_z =
        static_cast<double>(row.zolc) / static_cast<double>(row.base);
    const double red_h = harness::percent_reduction(row.base, row.hrdwil);
    const double red_z = harness::percent_reduction(row.base, row.zolc);
    hrdwil_sum += red_h;
    hrdwil_max = std::max(hrdwil_max, red_h);
    zolc_sum += red_z;
    zolc_max = std::max(zolc_max, red_z);
    table.add_row({row.kernel, std::to_string(row.base),
                   std::to_string(row.hrdwil), std::to_string(row.zolc),
                   format_fixed(rel_h, 3), format_fixed(rel_z, 3),
                   format_fixed(red_z, 1) + "%"});
    csv.add_row({row.kernel, std::to_string(row.base),
                 std::to_string(row.hrdwil), std::to_string(row.zolc),
                 format_fixed(rel_h, 4), format_fixed(rel_z, 4)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("relative cycles (XRdefault = 1.0):\n");
  for (const Row& row : rows) {
    const double rel_h =
        static_cast<double>(row.hrdwil) / static_cast<double>(row.base);
    const double rel_z =
        static_cast<double>(row.zolc) / static_cast<double>(row.base);
    std::printf("  %-10s default |%s\n", row.kernel.c_str(),
                ascii_bar(1.0, 1.0, 40).c_str());
    std::printf("  %-10s hrdwil  |%s\n", "", ascii_bar(rel_h, 1.0, 40).c_str());
    std::printf("  %-10s ZOLC    |%s\n", "", ascii_bar(rel_z, 1.0, 40).c_str());
  }

  const double n = static_cast<double>(rows.size());
  std::printf("\nsummary (cycle reduction vs XRdefault):\n");
  std::printf("  XRhrdwil : max %.1f%%  avg %.1f%%   (paper: up to 27.5%%, avg 11.1%%)\n",
              hrdwil_max, hrdwil_sum / n);
  std::printf("  ZOLClite : max %.1f%%  avg %.1f%%   (paper: up to 48.2%%, avg 26.2%%)\n",
              zolc_max, zolc_sum / n);

  if (csv.write_file("fig2_cycles.csv")) {
    std::printf("\n(csv written to fig2_cycles.csv)\n");
  }
  return 0;
}
