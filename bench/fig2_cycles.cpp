// E1 -- Figure 2 of the paper: relative cycle counts for the benchmark
// suite on XRdefault (baseline 1.0), XRhrdwil (branch-decrement), and
// XiRisc+ZOLClite, plus the in-text summary claims:
//   "branch-decrement ... up to 27.5% and about 11.1% in average"
//   "ZOLC ... up to 48.2% and about 26.2% in average"
// Declarative SweepSpec over the batched engine; pass --threads=N to pick
// the worker count (default: hardware concurrency).
#include <cstdio>
#include <fstream>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace zolcsim;
  using codegen::MachineKind;

  std::printf(
      "E1 / Figure 2: cycle performance, 12 benchmarks\n"
      "machines: XRdefault (baseline), XRhrdwil (dbne), XiRisc+ZOLClite\n\n");

  harness::SweepSpec spec;
  spec.machines = {MachineKind::kXrDefault, MachineKind::kXrHrdwil,
                   MachineKind::kZolcLite};
  spec.threads = harness::threads_from_args(argc, argv);
  const auto swept = harness::run_sweep(spec);
  if (!swept.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", swept.error().to_string().c_str());
    return 1;
  }
  const harness::SweepReport& report = swept.value();

  TextTable table({"benchmark", "XRdefault", "XRhrdwil", "ZOLClite",
                   "hrdwil rel", "ZOLC rel", "ZOLC saving"});
  for (std::size_t k = 0; k < report.kernels.size(); ++k) {
    const std::uint64_t base = report.cycles(k, 0);
    const std::uint64_t hrdwil = report.cycles(k, 1);
    const std::uint64_t zolc = report.cycles(k, 2);
    const double rel_h = static_cast<double>(hrdwil) / static_cast<double>(base);
    const double rel_z = static_cast<double>(zolc) / static_cast<double>(base);
    table.add_row({report.kernels[k], std::to_string(base),
                   std::to_string(hrdwil), std::to_string(zolc),
                   format_fixed(rel_h, 3), format_fixed(rel_z, 3),
                   format_fixed(report.reduction(k, 2), 1) + "%"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("relative cycles (XRdefault = 1.0):\n");
  for (std::size_t k = 0; k < report.kernels.size(); ++k) {
    const double base = static_cast<double>(report.cycles(k, 0));
    const double rel_h = static_cast<double>(report.cycles(k, 1)) / base;
    const double rel_z = static_cast<double>(report.cycles(k, 2)) / base;
    std::printf("  %-10s default |%s\n", report.kernels[k].c_str(),
                ascii_bar(1.0, 1.0, 40).c_str());
    std::printf("  %-10s hrdwil  |%s\n", "", ascii_bar(rel_h, 1.0, 40).c_str());
    std::printf("  %-10s ZOLC    |%s\n", "", ascii_bar(rel_z, 1.0, 40).c_str());
  }

  const harness::SweepAggregate hrdwil = report.aggregate(1);
  const harness::SweepAggregate zolc = report.aggregate(2);
  std::printf("\nsummary (cycle reduction vs XRdefault):\n");
  std::printf("  XRhrdwil : max %.1f%%  avg %.1f%%   (paper: up to 27.5%%, avg 11.1%%)\n",
              hrdwil.max_reduction, hrdwil.avg_reduction);
  std::printf("  ZOLClite : max %.1f%%  avg %.1f%%   (paper: up to 48.2%%, avg 26.2%%)\n",
              zolc.max_reduction, zolc.avg_reduction);

  if (std::ofstream("fig2_cycles.csv") << report.to_csv()) {
    std::printf("\n(csv written to fig2_cycles.csv)\n");
  }
  if (std::ofstream("fig2_cycles.json") << report.to_json()) {
    std::printf("(json written to fig2_cycles.json)\n");
  }
  return 0;
}
