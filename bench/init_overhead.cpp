// E3 -- Section 2 claim: ZOLC initialization is a one-time cost outside the
// loop nest. The grid and golden digest live in
// scenarios/init_overhead.json; init_instructions and table_writes are
// per-cell columns of the sweep CSV.
#include "suite_main.hpp"

int main(int argc, char** argv) {
  return zolcsim::bench::suite_main("init_overhead", argc, argv);
}
