// E3 -- Section 2 claim: "The initialization of ZOLC presents only a very
// small cycle overhead since it occurs outside of loop nests."
// Reports, per benchmark, the init-sequence length, its share of total
// cycles, and the cycles the loop hardware saves -- i.e. how quickly the
// one-time investment amortizes. One two-machine SweepSpec.
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace zolcsim;
  using codegen::MachineKind;

  std::printf("E3: ZOLC initialization overhead (ZOLClite)\n\n");

  harness::SweepSpec spec;
  spec.machines = {MachineKind::kXrDefault, MachineKind::kZolcLite};
  spec.threads = harness::threads_from_args(argc, argv);
  const auto swept = harness::run_sweep(spec);
  if (!swept.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", swept.error().to_string().c_str());
    return 1;
  }
  const harness::SweepReport& report = swept.value();

  TextTable table({"benchmark", "init instrs", "table writes", "total cycles",
                   "init share", "cycles saved vs default"});
  CsvWriter csv({"benchmark", "init_instructions", "table_writes",
                 "total_cycles", "init_share_percent", "cycles_saved"});
  for (std::size_t k = 0; k < report.kernels.size(); ++k) {
    const harness::ExperimentResult& z = report.at(k, 1);
    const double share = 100.0 * static_cast<double>(z.init_instructions) /
                         static_cast<double>(z.stats.cycles);
    const auto saved = static_cast<std::int64_t>(report.cycles(k, 0)) -
                       static_cast<std::int64_t>(z.stats.cycles);
    table.add_row({report.kernels[k], std::to_string(z.init_instructions),
                   std::to_string(z.zolc_stats.table_writes),
                   std::to_string(z.stats.cycles),
                   format_fixed(share, 2) + "%", std::to_string(saved)});
    csv.add_row({report.kernels[k], std::to_string(z.init_instructions),
                 std::to_string(z.zolc_stats.table_writes),
                 std::to_string(z.stats.cycles), format_fixed(share, 3),
                 std::to_string(saved)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper claim: init occurs once, outside the loop nest; the "
              "share column should stay in the low single digits.\n");
  if (csv.write_file("init_overhead.csv")) {
    std::printf("(csv written to init_overhead.csv)\n");
  }
  return 0;
}
