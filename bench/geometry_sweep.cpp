// E8 (extension) -- ZOLC geometry design-space exploration: run the deep
// loop-structure kernels against controller geometries from 2 to 16 loops
// and report cycles alongside the area model's storage/gate cost for each
// point. The paper prototype (32 tasks / 8 loops) is one row; the sweep
// shows what a deeper or shallower controller buys, turning the fixed
// evaluation configuration into a tunable design axis.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "harness/sweep.hpp"
#include "zolc/area_model.hpp"

int main(int argc, char** argv) {
  using namespace zolcsim;
  using codegen::MachineKind;
  using zolc::ZolcGeometry;

  std::printf(
      "E8: ZOLC geometry sweep (deep-nest kernels, ZOLClite vs XRdefault)\n"
      "geometry points span 2..16 loop entries; the paper prototype is "
      "32t-8l\n\n");

  harness::SweepSpec spec;
  spec.kernels = {"tiled_mm", "deepnest10", "wavelet4", "matmul", "conv2d"};
  spec.machines = {MachineKind::kXrDefault, MachineKind::kZolcLite};
  spec.geometries = {
      ZolcGeometry{8, 2, 0, 0},   ZolcGeometry{16, 4, 0, 0},
      ZolcGeometry{32, 8, 0, 0},  ZolcGeometry{32, 12, 0, 0},
      ZolcGeometry{32, 16, 0, 0},
  };
  spec.threads = harness::threads_from_args(argc, argv);
  const auto swept = harness::run_sweep(spec);
  if (!swept.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", swept.error().to_string().c_str());
    return 1;
  }
  const harness::SweepReport& report = swept.value();

  CsvWriter csv({"kernel", "geometry", "tasks", "loops", "cycles_base",
                 "cycles_zolc", "reduction_pct", "hw_loops", "sw_loops",
                 "storage_bytes", "total_gates"});
  for (std::size_t g = 0; g < report.geometries.size(); ++g) {
    const ZolcGeometry& geom = report.geometries[g];
    const auto area = zolc::area_model(zolc::ZolcVariant::kLite, geom);
    std::printf("geometry %s  (storage %u B, %.0f gates)\n",
                geom.label().c_str(), area.storage_bytes, area.total_gates);
    TextTable table({"kernel", "XRdefault", "ZOLClite", "reduction",
                     "hw loops", "sw loops"});
    for (std::size_t k = 0; k < report.kernels.size(); ++k) {
      const auto& base = report.at(k, 0, 0, g);
      const auto& zolc_cell = report.at(k, 1, 0, g);
      table.add_row({report.kernels[k],
                     std::to_string(base.stats.cycles),
                     std::to_string(zolc_cell.stats.cycles),
                     format_fixed(report.reduction(k, 1, 0, g), 1) + "%",
                     std::to_string(zolc_cell.hw_loops),
                     std::to_string(zolc_cell.sw_loops)});
      csv.add_row({report.kernels[k], geom.label(),
                   std::to_string(geom.max_tasks),
                   std::to_string(geom.max_loops),
                   std::to_string(base.stats.cycles),
                   std::to_string(zolc_cell.stats.cycles),
                   format_fixed(report.reduction(k, 1, 0, g), 4),
                   std::to_string(zolc_cell.hw_loops),
                   std::to_string(zolc_cell.sw_loops),
                   std::to_string(area.storage_bytes),
                   format_fixed(area.total_gates, 0)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "reading: at 2 loops only innermost pairs stay in hardware; the paper\n"
      "geometry (8) fully covers the classic kernels but demotes two levels\n"
      "of deepnest10; from 12 loops up the 10-deep nest runs entirely\n"
      "hardware-managed -- zero software loop overhead -- for ~12%% more\n"
      "storage than the prototype (290 B vs 258 B).\n");

  if (csv.write_file("geometry_sweep.csv")) {
    std::printf("\n(csv written to geometry_sweep.csv)\n");
  }
  if (std::ofstream("geometry_sweep_grid.csv") << report.to_csv()) {
    std::printf("(full grid csv written to geometry_sweep_grid.csv)\n");
  }
  return 0;
}
