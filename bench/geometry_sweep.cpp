// E8 (extension) -- ZOLC geometry design-space exploration over the
// deep-nest kernels. The geometry axis and golden digest live in
// scenarios/geometry_sweep.json; see zolc/area_model.hpp for the
// storage/gate cost of each geometry point.
#include "suite_main.hpp"

int main(int argc, char** argv) {
  return zolcsim::bench::suite_main("geometry_sweep", argc, argv);
}
