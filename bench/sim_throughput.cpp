// E6 -- engineering microbenchmark: simulator throughput through the sweep
// engine. Times the full-suite sweep (12 kernels x {XRdefault, ZOLClite})
// with the predecoded instruction image on and off, single-threaded and on
// the full worker pool, reporting simulated MIPS / Mcycles per wall second.
// Also times the raw ISS on matmul with and without the image. No external
// benchmark library: wall time via steady_clock, best of --reps=N (default 3).
#include <chrono>
#include <cstdio>
#include <string>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "cpu/iss.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/workload.hpp"
#include "harness/sweep.hpp"

namespace {

using namespace zolcsim;
using codegen::MachineKind;
using Clock = std::chrono::steady_clock;

struct Measurement {
  double seconds = 0.0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
};

Measurement time_sweep(bool predecode, unsigned threads, int reps) {
  harness::SweepSpec spec;
  spec.machines = {MachineKind::kXrDefault, MachineKind::kZolcLite};
  spec.predecode = predecode;
  spec.threads = threads;
  Measurement best;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    const auto report = harness::run_sweep(spec);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (!report.ok()) {
      std::fprintf(stderr, "FAILED: %s\n", report.error().to_string().c_str());
      std::exit(1);
    }
    std::uint64_t instructions = 0, cycles = 0;
    for (const auto& cell : report.value().cells) {
      instructions += cell.result.stats.instructions;
      cycles += cell.result.stats.cycles;
    }
    if (best.seconds == 0.0 || elapsed.count() < best.seconds) {
      best = {elapsed.count(), instructions, cycles};
    }
  }
  return best;
}

Measurement time_iss(bool predecode, int reps) {
  flow::CompileSpec unit_spec;
  unit_spec.kernel = "matmul";
  unit_spec.machine = MachineKind::kXrDefault;
  const auto unit = flow::CompiledUnit::compile(unit_spec);
  if (!unit.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", unit.error().to_string().c_str());
    std::exit(1);
  }
  const codegen::Program& prog = unit.value().program();
  Measurement best;
  for (int r = 0; r < reps; ++r) {
    flow::Workload workload = flow::Workload::prepare(unit.value());
    cpu::Iss iss(workload.memory());
    if (predecode) iss.set_code_image(unit.value().image());
    iss.set_pc(prog.base);
    const auto start = Clock::now();
    iss.run(100'000'000);
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    if (best.seconds == 0.0 || elapsed.count() < best.seconds) {
      best = {elapsed.count(), iss.stats().instructions,
              iss.stats().instructions};
    }
  }
  return best;
}

// Compile-stage throughput: full ZOLCfull units of me_tss (the multi-exit
// worst case) per wall second -- KIR build, lowering, predecode, and the
// zolcscan metadata. This is the cost the sweep engine's compile cache
// amortizes across the pipeline-config axis.
double time_compiles(int reps) {
  double best = 0.0;
  constexpr int kCompiles = 200;
  flow::CompileSpec spec;
  spec.kernel = "me_tss";
  spec.machine = MachineKind::kZolcFull;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    for (int i = 0; i < kCompiles; ++i) {
      auto unit = flow::CompiledUnit::compile(spec);
      if (!unit.ok()) {
        std::fprintf(stderr, "FAILED: %s\n",
                     unit.error().to_string().c_str());
        std::exit(1);
      }
    }
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    const double rate = kCompiles / elapsed.count();
    best = std::max(best, rate);
  }
  return best;
}

std::string mips(const Measurement& m) {
  return format_fixed(static_cast<double>(m.instructions) / m.seconds / 1e6, 2);
}

std::string mcps(const Measurement& m) {
  return format_fixed(static_cast<double>(m.cycles) / m.seconds / 1e6, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned reps_arg = harness::uint_from_args(argc, argv, "--reps=");
  const int reps = reps_arg != 0 ? static_cast<int>(reps_arg) : 3;
  const unsigned pool = harness::threads_from_args(argc, argv);

  std::printf(
      "E6: simulator throughput (full-suite sweep, best of %d runs)\n\n",
      reps);

  const Measurement legacy1 = time_sweep(/*predecode=*/false, 1, reps);
  const Measurement fast1 = time_sweep(/*predecode=*/true, 1, reps);
  const Measurement fastN = time_sweep(/*predecode=*/true, pool, reps);

  TextTable table({"configuration", "wall ms", "sim MIPS", "sim Mcycles/s",
                   "speedup"});
  const auto row = [&](const char* name, const Measurement& m,
                       const Measurement& ref) {
    table.add_row({name, format_fixed(m.seconds * 1e3, 1), mips(m), mcps(m),
                   format_fixed(ref.seconds / m.seconds, 2) + "x"});
  };
  row("pipeline, decode-per-cycle, 1 thread", legacy1, legacy1);
  row("pipeline, predecoded image, 1 thread", fast1, legacy1);
  row("pipeline, predecoded image, pool", fastN, legacy1);
  std::printf("%s\n", table.render().c_str());

  const Measurement iss_legacy = time_iss(/*predecode=*/false, reps);
  const Measurement iss_fast = time_iss(/*predecode=*/true, reps);
  TextTable iss_table({"configuration", "wall ms", "sim MIPS", "speedup"});
  iss_table.add_row({"ISS matmul, decode-per-step",
                     format_fixed(iss_legacy.seconds * 1e3, 2),
                     mips(iss_legacy), "1.00x"});
  iss_table.add_row({"ISS matmul, predecoded image",
                     format_fixed(iss_fast.seconds * 1e3, 2), mips(iss_fast),
                     format_fixed(iss_legacy.seconds / iss_fast.seconds, 2) +
                         "x"});
  std::printf("%s\n", iss_table.render().c_str());

  std::printf("compile stage: %.0f ZOLCfull me_tss units/s (multi-exit "
              "worst case)\n\n",
              time_compiles(reps));

  std::printf(
      "reading: the predecoded image removes the per-step field extraction\n"
      "from the fetch path; the worker pool then scales the batched sweep\n"
      "across cores with byte-identical results (tests/sweep_test.cpp).\n");
  return 0;
}
