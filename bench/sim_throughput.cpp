// E6 -- engineering microbenchmark (google-benchmark): simulator throughput
// in simulated cycles per second for the cycle-accurate pipeline, with and
// without a ZOLC controller attached, and ISS instruction throughput.
#include <benchmark/benchmark.h>

#include "harness/experiment.hpp"
#include "cpu/iss.hpp"

#include <map>

namespace {

using namespace zolcsim;
using codegen::MachineKind;

const codegen::Program& program_for(MachineKind machine) {
  static const auto* cache = new std::map<MachineKind, codegen::Program>();
  auto* mutable_cache = const_cast<std::map<MachineKind, codegen::Program>*>(cache);
  auto it = mutable_cache->find(machine);
  if (it == mutable_cache->end()) {
    const auto* kernel = kernels::find_kernel("matmul");
    auto prog = codegen::lower(kernel->build({}), machine, 0x1000);
    it = mutable_cache->emplace(machine, std::move(prog).value()).first;
  }
  return it->second;
}

void bench_pipeline(benchmark::State& state, MachineKind machine) {
  const codegen::Program& prog = program_for(machine);
  const auto* kernel = kernels::find_kernel("matmul");
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    mem::Memory memory;
    prog.load_into(memory);
    kernel->setup({}, memory);
    std::unique_ptr<zolc::ZolcController> controller;
    if (const auto variant = codegen::machine_zolc_variant(machine)) {
      controller = std::make_unique<zolc::ZolcController>(*variant);
    }
    cpu::Pipeline pipe(memory);
    pipe.set_accelerator(controller.get());
    pipe.set_pc(prog.base);
    pipe.run(100'000'000);
    cycles += pipe.stats().cycles;
    benchmark::DoNotOptimize(pipe.regs());
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_PipelineBaseline(benchmark::State& state) {
  bench_pipeline(state, MachineKind::kXrDefault);
}
BENCHMARK(BM_PipelineBaseline);

void BM_PipelineWithZolc(benchmark::State& state) {
  bench_pipeline(state, MachineKind::kZolcLite);
}
BENCHMARK(BM_PipelineWithZolc);

void BM_IssBaseline(benchmark::State& state) {
  const codegen::Program& prog = program_for(MachineKind::kXrDefault);
  const auto* kernel = kernels::find_kernel("matmul");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    mem::Memory memory;
    prog.load_into(memory);
    kernel->setup({}, memory);
    cpu::Iss iss(memory);
    iss.set_pc(prog.base);
    iss.run(100'000'000);
    instructions += iss.stats().instructions;
    benchmark::DoNotOptimize(iss.regs());
  }
  state.counters["sim_instrs_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssBaseline);

void BM_LoweringZolcFull(benchmark::State& state) {
  const auto* kernel = kernels::find_kernel("me_tss");
  for (auto _ : state) {
    auto prog = codegen::lower(kernel->build({}), MachineKind::kZolcFull,
                               0x1000);
    benchmark::DoNotOptimize(prog.ok());
  }
}
BENCHMARK(BM_LoweringZolcFull);

}  // namespace

BENCHMARK_MAIN();
