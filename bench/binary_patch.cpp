// E7 (extension) -- post-link acceleration with zolcscan: take the compiled
// XRdefault binary of each benchmark, find the hottest safe counted loop,
// patch its overhead instructions to nops, program a uZOLC with the
// recovered plan, and measure the speedup. No recompilation involved --
// the deployment story for fielding a ZOLC under existing binaries.
#include <cstdio>
#include <string>

#include "cfg/zolcscan.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "cpu/pipeline.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/workload.hpp"
#include "isa/encoding.hpp"
#include "kernels/kernels.hpp"

int main() {
  using namespace zolcsim;
  constexpr std::uint32_t kBase = 0x1000;

  std::printf("E7: binary patching with zolcscan (uZOLC, no recompilation)\n\n");

  TextTable table({"benchmark", "candidates", "chosen depth", "baseline",
                   "patched+uZOLC", "reduction", "verified"});
  for (const auto& kernel : kernels::kernel_registry()) {
    const kernels::KernelEnv env;
    // The compile-stage artifact already carries the zolcscan analysis
    // (geometry-derived init window, a superset of the old fixed-8 scan;
    // identical plans for this suite -- verified against the seed output).
    flow::CompileSpec spec;
    spec.kernel = std::string(kernel->name());
    spec.machine = codegen::MachineKind::kXrDefault;
    spec.env = env;
    const auto unit = flow::CompiledUnit::compile(spec);
    if (!unit.ok()) continue;
    const codegen::Program& prog = unit.value().program();

    const cfg::ScanReport& report = unit.value().scan();
    const cfg::MicroPlan* plan = report.best();

    flow::Workload baseline_load = flow::Workload::prepare(unit.value());
    cpu::Pipeline baseline(baseline_load.memory());
    baseline.set_pc(kBase);
    baseline.run(200'000'000);

    if (plan == nullptr) {
      table.add_row({std::string(kernel->name()), "0", "-",
                     std::to_string(baseline.stats().cycles), "-", "-",
                     "(no safe loop)"});
      continue;
    }

    const auto patched = cfg::apply_patch(prog.code, *plan);
    mem::Memory fast_mem;
    std::vector<std::uint32_t> words;
    for (const auto& instr : patched) words.push_back(isa::encode(instr));
    fast_mem.load_words(kBase, words);
    kernel->setup(env, fast_mem);
    zolc::ZolcController micro(zolc::ZolcVariant::kMicro);
    cfg::program_micro_controller(micro, *plan);
    cpu::Pipeline fast(fast_mem);
    fast.set_accelerator(&micro);
    fast.set_pc(kBase);
    fast.run(200'000'000);

    const bool ok = kernel->verify(env, fast_mem).ok();
    const double red = 100.0 * (1.0 - static_cast<double>(fast.stats().cycles) /
                                          static_cast<double>(
                                              baseline.stats().cycles));
    table.add_row({std::string(kernel->name()),
                   std::to_string(report.candidates.size()),
                   std::to_string(plan->depth),
                   std::to_string(baseline.stats().cycles),
                   std::to_string(fast.stats().cycles),
                   format_fixed(red, 1) + "%", ok ? "yes" : "NO (!)"});
    if (!ok) {
      std::fprintf(stderr, "VERIFICATION FAILED for %s\n",
                   std::string(kernel->name()).c_str());
      return 1;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "zolcscan recovers nearly the full uZOLC benefit of the recompiling\n"
      "flow (compare bench/ablation_variants) from unmodified binaries;\n"
      "loops it cannot prove safe (multi-exit, live-out index, branches\n"
      "into the patched tail) are skipped with a reason.\n");
  return 0;
}
