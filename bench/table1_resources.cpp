// E2 -- the Section 3 in-text resource table: storage bytes, combinational
// equivalent gates, and the timing claim ("processor cycle time is not
// affected ... about 170 MHz on a 0.13 um ASIC process").
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "zolc/area_model.hpp"

int main() {
  using namespace zolcsim;
  using zolc::ZolcVariant;

  std::printf("E2 / Section 3 resources: ZOLC variants\n\n");

  // Paper-reported values for side-by-side comparison.
  const struct {
    ZolcVariant variant;
    unsigned paper_bytes;
    unsigned paper_gates;
  } paper[] = {
      {ZolcVariant::kMicro, 30, 298},
      {ZolcVariant::kLite, 258, 4056},
      {ZolcVariant::kFull, 642, 4428},
  };

  TextTable table({"variant", "storage (model)", "storage (paper)",
                   "gates (model)", "gates (paper)", "structural", "glue"});
  for (const auto& row : paper) {
    const auto b = zolc::area_model(row.variant);
    table.add_row({std::string(zolc::variant_name(row.variant)),
                   std::to_string(b.storage_bytes) + " B",
                   std::to_string(row.paper_bytes) + " B",
                   format_fixed(b.total_gates, 0),
                   std::to_string(row.paper_gates),
                   format_fixed(b.structural_gates, 0),
                   format_fixed(b.glue_gates, 0)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("component inventory:\n");
  for (const auto& row : paper) {
    const auto b = zolc::area_model(row.variant);
    std::printf("  %s (%u bits of storage):\n",
                std::string(zolc::variant_name(row.variant)).c_str(),
                b.storage_bits);
    for (const auto& item : b.items) {
      std::printf("    %-46s %8.0f gates\n", item.name.c_str(), item.gates);
    }
    std::printf("    %-46s %8.0f gates (calibrated)\n", "control FSM / glue",
                b.glue_gates);
  }

  std::printf("\nstatic timing (0.13 um-class delays):\n");
  TextTable timing({"variant", "CPU path", "ZOLC path", "fmax",
                    "ZOLC limits clock?"});
  for (const auto& row : paper) {
    const auto t = zolc::timing_model(row.variant);
    timing.add_row({std::string(zolc::variant_name(row.variant)),
                    format_fixed(t.cpu_critical_ns, 2) + " ns",
                    format_fixed(t.zolc_critical_ns, 2) + " ns",
                    format_fixed(t.fmax_mhz, 1) + " MHz",
                    t.zolc_limits_clock ? "YES (!)" : "no"});
  }
  std::printf("%s\n", timing.render().c_str());
  std::printf("paper claim: cycle time unaffected, ~170 MHz  -->  model fmax "
              "is set by the CPU path for every variant.\n");
  return 0;
}
