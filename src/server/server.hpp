// The serve daemon: a long-running front over the warm flow state
// (flow::WarmState = process-wide CompileCache + optional on-disk
// UnitStore), accepting zolcsim-serve-v1 frames over a Unix-domain socket.
//
// Concurrency model: one accept thread hands connections to a fixed worker
// pool; each worker owns one connection at a time and serves frames off it
// until the peer closes, the idle timeout fires, or the daemon drains.
// Every request resolves units through the shared cache, so two clients
// racing on the same sweep still compile each unit exactly once (the
// striped cache's singleflight guarantee), and every request after the
// first runs against warm units and prepared images -- the per-request
// reply counters (compiles / store hits / full prepares) make that
// measurable from the client side.
//
// Drain semantics (normative; DESIGN.md section 10): a "shutdown" request
// or begin_drain() stops the accept loop, lets every in-flight request
// finish and its reply flush, then closes idle connections and exits the
// workers. New connection attempts after drain begins are refused by the
// closed listener. SIGTERM handling lives in the CLI, which forwards it to
// begin_drain().
#ifndef ZOLCSIM_SERVER_SERVER_HPP
#define ZOLCSIM_SERVER_SERVER_HPP

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "flow/warm_state.hpp"
#include "server/protocol.hpp"

namespace zolcsim::server {

struct ServeOptions {
  std::string socket_path;       ///< Unix-domain socket to bind (required)
  std::string store_dir;         ///< on-disk unit store; empty = memory only
  unsigned workers = 4;          ///< connection-serving worker threads
  unsigned sweep_threads = 0;    ///< sweep workers per request; 0 = hardware
  unsigned idle_timeout_ms = 30'000;  ///< close silent connections after this
};

/// Aggregate counters, snapshotted under the stats lock. Latency/MIPS
/// percentiles are rendered by the "stats" reply from the same samples.
struct ServerStats {
  std::uint64_t connections = 0;  ///< connections accepted
  std::uint64_t requests = 0;     ///< well-formed requests dispatched
  std::uint64_t errors = 0;       ///< typed error replies sent
  std::array<std::uint64_t, kNumRequestTypes> by_type{};
  std::uint64_t full_prepares = 0;  ///< summed over sweep/bench replies
  std::uint64_t image_resets = 0;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();  // begins drain and joins all threads

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket (replacing any stale file at the path), starts the
  /// accept loop and the worker pool. Errors: kBadConfig (empty/overlong
  /// path, zero workers), kIo (socket/bind/listen failure).
  [[nodiscard]] Result<void> start();

  /// Initiates graceful drain: stop accepting, finish in-flight requests,
  /// close connections, exit workers. Idempotent; safe from any thread.
  void begin_drain();

  /// True once drain has been initiated (by begin_drain or a shutdown
  /// request). The CLI polls this to know the daemon is going down.
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Joins the accept loop and every worker. Returns immediately if start()
  /// was never called. Call after begin_drain() (or let a client's
  /// "shutdown" trigger it) -- waiting without a drain blocks forever.
  void wait();

  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] flow::WarmState& warm() noexcept { return warm_; }
  [[nodiscard]] ServerStats stats() const;

 private:
  enum class ReadStatus : std::uint8_t {
    kFrame,  ///< a complete payload was read
    kClose,  ///< clean close / idle timeout / drain -- just close
  };

  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  /// Reads one frame payload; sends the typed error reply itself for
  /// framing violations (oversized length, truncated frame).
  ReadStatus read_frame(int fd, std::string& payload);

  /// Dispatches one parsed request to its handler; the string is the reply
  /// payload. `drain_after_reply` is set by the shutdown handler.
  [[nodiscard]] Result<std::string> handle(const Request& request,
                                           bool& drain_after_reply);
  [[nodiscard]] Result<std::string> handle_compile(const Request& request);
  [[nodiscard]] Result<std::string> handle_run(const Request& request);
  [[nodiscard]] Result<std::string> handle_suite(const Request& request);
  [[nodiscard]] std::string handle_store_stat();
  [[nodiscard]] std::string handle_stats();

  void record_request(RequestType type, double wall_ms, double mips);

  ServeOptions options_;
  flow::WarmState warm_;

  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_connections_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
  std::vector<double> wall_ms_samples_;
  std::vector<double> mips_samples_;
};

}  // namespace zolcsim::server

#endif  // ZOLCSIM_SERVER_SERVER_HPP
