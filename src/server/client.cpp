#include "server/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace zolcsim::server {

namespace {

Error io_error(std::string what) {
  return Error{ErrorCode::kIo, std::move(what) + ": " + std::strerror(errno)};
}

}  // namespace

Result<Client> Client::connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Error{ErrorCode::kIo,
                 "bad socket path '" + socket_path + "'"};
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return io_error("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Error error = io_error("connect '" + socket_path + "'");
    ::close(fd);
    return error;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<void> Client::send_bytes(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return {};
}

void Client::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

Result<std::string> Client::read_reply(int timeout_ms) {
  unsigned char header[kFrameHeaderBytes];
  std::size_t have = 0;
  std::size_t want = kFrameHeaderBytes;
  unsigned char* dest = header;
  bool reading_header = true;
  std::string payload;

  while (have < want) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      return Error{ErrorCode::kIo, "timed out waiting for a reply"};
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return io_error("poll");
    }
    const ssize_t n = ::recv(fd_, dest + have, want - have, 0);
    if (n == 0) {
      return Error{ErrorCode::kIo,
                   "connection closed before a complete reply"};
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return io_error("recv");
    }
    have += static_cast<std::size_t>(n);
    if (reading_header && have == kFrameHeaderBytes) {
      const std::uint32_t length = decode_frame_length(header);
      if (length > kMaxFrameBytes) {
        return Error{ErrorCode::kParse,
                     "reply frame length " + std::to_string(length) +
                         " exceeds the cap"};
      }
      payload.assign(length, '\0');
      dest = reinterpret_cast<unsigned char*>(payload.data());
      have = 0;
      want = length;
      reading_header = false;
      if (length == 0) break;
    }
  }
  return payload;
}

Result<std::string> Client::call_raw(std::string_view request_payload,
                                     int timeout_ms) {
  if (auto sent = send_bytes(encode_frame(request_payload)); !sent.ok()) {
    return std::move(sent).error();
  }
  return read_reply(timeout_ms);
}

Result<json::Value> Client::call(std::string_view request_payload,
                                 int timeout_ms) {
  auto payload = call_raw(request_payload, timeout_ms);
  if (!payload.ok()) return std::move(payload).error();
  return parse_reply(payload.value());
}

std::string simple_request(RequestType type) {
  std::string out = "{\"schema\": \"";
  out += kServeSchema;
  out += "\", \"type\": \"";
  out += request_type_name(type);
  out += "\"}";
  return out;
}

namespace {

Result<std::string> suite_carrying_request(std::string_view suite_document,
                                           RequestType type,
                                           std::string_view extra_members) {
  auto parsed = json::parse(suite_document);
  if (!parsed.ok()) {
    return std::move(parsed).error().with_context("suite document");
  }
  if (!parsed.value().is_object()) {
    return Error{ErrorCode::kParse, "suite document must be a JSON object"}
        .with_context("suite document");
  }
  std::string out = "{\"schema\": \"";
  out += kServeSchema;
  out += "\", \"type\": \"";
  out += request_type_name(type);
  out += "\"";
  out += extra_members;
  out += ", \"suite\": ";
  out += json::serialize(parsed.value());
  out += "}";
  return out;
}

}  // namespace

Result<std::string> sweep_request(std::string_view suite_document,
                                  bool json_format) {
  return suite_carrying_request(
      suite_document, RequestType::kSweep,
      json_format ? ", \"format\": \"json\"" : ", \"format\": \"csv\"");
}

Result<std::string> bench_suite_request(std::string_view suite_document) {
  return suite_carrying_request(suite_document, RequestType::kBenchSuite, "");
}

}  // namespace zolcsim::server
