// zolcsim-serve-v1: the wire protocol of the serve daemon (DESIGN.md
// section 10 is the normative spec).
//
// Framing: every message -- request or reply -- is one frame: a 4-byte
// big-endian unsigned payload length followed by exactly that many bytes of
// UTF-8 JSON. Lengths above kMaxFrameBytes are a framing error (the server
// replies with a typed error and closes the connection, since the stream
// cannot be resynchronized); everything below the cap that fails to parse
// is a *request* error -- the connection survives and the reply is the
// typed error object, so a client bug never kills a long-lived connection.
//
// Requests are strict JSON objects (unknown members rejected, exactly like
// the scenario-suite schema): a "schema" member pinning the protocol
// version, a "type" member naming one of the eight request types, and
// type-specific members. Replies carry the same "schema" plus a "reply"
// member that either echoes the request type or is "error" with the
// Error{code, message, context} triple, so clients branch on
// machine-checkable codes, never message text.
#ifndef ZOLCSIM_SERVER_PROTOCOL_HPP
#define ZOLCSIM_SERVER_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "common/result.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/run.hpp"

namespace zolcsim::server {

/// Protocol version tag; every request and reply carries it verbatim.
inline constexpr std::string_view kServeSchema = "zolcsim-serve-v1";

/// Frame payload cap. Large enough for any suite or rendered report the
/// repo produces (the biggest checked-in artifact is a few hundred KiB);
/// small enough that a corrupt length prefix cannot make the server
/// allocate unbounded memory.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{8} << 20;

/// Bytes of the frame length prefix (big-endian).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// The eight request types of zolcsim-serve-v1.
enum class RequestType : std::uint8_t {
  kPing,        ///< liveness probe; replies "pong"
  kCompile,     ///< resolve one unit through the warm cache; summary reply
  kRun,         ///< compile + execute one experiment; statistics reply
  kSweep,       ///< run an inline scenario suite; rendered CSV/JSON reply
  kBenchSuite,  ///< run an inline suite; BENCH_<suite>.json artifact reply
  kStoreStat,   ///< inventory of the attached on-disk unit store
  kStats,       ///< aggregate server statistics (requests, cache, latency)
  kShutdown,    ///< begin graceful drain; the daemon exits once idle
};

inline constexpr std::size_t kNumRequestTypes = 8;

/// Wire name of a request type ("ping", "compile", ...).
[[nodiscard]] std::string_view request_type_name(RequestType type);

/// A parsed, validated request. Axis values (machine names, geometry
/// labels, suite grids) are validated here with the same parsers the CLI
/// and scenario layers use, so the daemon accepts exactly the strings
/// `zolcsim` accepts locally.
struct Request {
  RequestType type = RequestType::kPing;
  flow::CompileSpec spec;   ///< compile / run: kernel + machine + geometry
  flow::RunPlan plan;       ///< run: config / mode / budgets / tenants
  std::string suite_text;   ///< sweep / bench-suite: suite doc, serialized
  bool json_format = false; ///< sweep: render the report as JSON, not CSV
};

/// Parses and validates one request payload. Errors: kParse (malformed
/// JSON, missing/unsupported "schema", unknown members, wrong member
/// types), kBadConfig (unknown request type, invalid axis values).
[[nodiscard]] Result<Request> parse_request(std::string_view payload);

/// Wraps `payload` in a frame (length prefix + bytes). Precondition:
/// payload.size() <= kMaxFrameBytes.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Decodes a frame length prefix (exactly kFrameHeaderBytes bytes).
[[nodiscard]] std::uint32_t decode_frame_length(const unsigned char* header);

/// Renders the typed error reply for `error`.
[[nodiscard]] std::string error_reply(const Error& error);

/// Decodes a reply payload: an "error" reply becomes the carried Error,
/// anything else parses into the returned document. Used by the client.
[[nodiscard]] Result<json::Value> parse_reply(std::string_view payload);

/// Reply member lookup helpers (shape errors -> kParse).
[[nodiscard]] Result<std::string> reply_string(const json::Value& reply,
                                               std::string_view key);
[[nodiscard]] Result<std::uint64_t> reply_uint(const json::Value& reply,
                                               std::string_view key);

}  // namespace zolcsim::server

#endif  // ZOLCSIM_SERVER_PROTOCOL_HPP
