#include "server/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/strings.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace zolcsim::server {

namespace {

/// Poll slice: the granularity at which blocked reads notice the idle
/// timeout and the drain flag. Short enough for responsive shutdown, long
/// enough to cost nothing.
constexpr int kPollSliceMs = 50;

/// Writes the whole frame; false when the peer is gone (EPIPE et al).
bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_reply(int fd, std::string_view payload) {
  return write_all(fd, encode_frame(payload));
}

/// q-th percentile of `samples` (copied and sorted); 0 when empty.
double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size()));
  return samples[std::min(rank, samples.size() - 1)];
}

std::string percentile_object(const std::vector<double>& samples,
                              int digits) {
  return "{\"p50\": " + format_fixed(percentile(samples, 0.50), digits) +
         ", \"p90\": " + format_fixed(percentile(samples, 0.90), digits) +
         ", \"p99\": " + format_fixed(percentile(samples, 0.99), digits) +
         ", \"samples\": " + std::to_string(samples.size()) + "}";
}

std::string reply_head(std::string_view reply) {
  std::string out = "{\"schema\": \"";
  out += kServeSchema;
  out += "\", \"reply\": \"";
  out += reply;
  out += "\"";
  return out;
}

/// The shared warm-state counters of a sweep/bench reply: what this request
/// compiled vs reused. These are the numbers the warm-serving story is
/// measured by (a second identical request must report all-zero compiles
/// and full prepares).
std::string counters_members(const harness::SweepReport& report) {
  return ", \"cache\": {\"hits\": " +
         std::to_string(report.compile_cache_hits) +
         ", \"misses\": " + std::to_string(report.compile_cache_misses) +
         ", \"store_hits\": " +
         std::to_string(report.compile_cache_store_hits) +
         ", \"compiles\": " + std::to_string(report.compile_cache_compiles) +
         "}, \"prepares\": {\"full\": " +
         std::to_string(report.full_prepares) +
         ", \"image_resets\": " + std::to_string(report.image_resets) + "}";
}

}  // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)), warm_(options_.store_dir) {}

Server::~Server() {
  begin_drain();
  wait();
}

Result<void> Server::start() {
  if (options_.socket_path.empty()) {
    return Error{ErrorCode::kBadConfig, "serve requires a socket path"};
  }
  if (options_.workers == 0) {
    return Error{ErrorCode::kBadConfig, "serve requires at least one worker"};
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Error{ErrorCode::kBadConfig,
                 "socket path '" + options_.socket_path + "' exceeds " +
                     std::to_string(sizeof(addr.sun_path) - 1) + " bytes"};
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Error{ErrorCode::kIo,
                 std::string("socket: ") + std::strerror(errno)};
  }
  // The daemon owns the path: a leftover file from a crashed predecessor
  // would otherwise wedge every restart on EADDRINUSE.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int bind_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error{ErrorCode::kIo, "bind '" + options_.socket_path +
                                     "': " + std::strerror(bind_errno)};
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int listen_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    return Error{ErrorCode::kIo,
                 std::string("listen: ") + std::strerror(listen_errno)};
  }

  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return {};
}

void Server::begin_drain() {
  draining_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
}

void Server::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Server::accept_loop() {
  while (!draining()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready <= 0) continue;  // timeout or EINTR; re-check the drain flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_connections_.push_back(fd);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    queue_cv_.notify_one();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !pending_connections_.empty() || draining();
      });
      if (!pending_connections_.empty()) {
        fd = pending_connections_.front();
        pending_connections_.pop_front();
      } else if (draining()) {
        return;
      }
    }
    if (fd >= 0) serve_connection(fd);
  }
}

void Server::serve_connection(int fd) {
  for (;;) {
    std::string payload;
    if (read_frame(fd, payload) != ReadStatus::kFrame) break;

    auto request = parse_request(payload);
    if (!request.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.errors;
      }
      // A malformed request never kills the connection (let alone the
      // daemon): the framing is still synchronized, so reply and carry on.
      if (!send_reply(fd, error_reply(request.error()))) break;
      continue;
    }

    bool drain_after_reply = false;
    const auto started = std::chrono::steady_clock::now();
    auto reply = handle(request.value(), drain_after_reply);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    if (!reply.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.errors;
      }
      if (!send_reply(fd, error_reply(reply.error()))) break;
      continue;
    }
    record_request(request.value().type, wall_ms, /*mips=*/0.0);
    const bool sent = send_reply(fd, reply.value());
    if (drain_after_reply) {
      begin_drain();
      break;
    }
    if (!sent) break;
  }
  ::close(fd);
}

Server::ReadStatus Server::read_frame(int fd, std::string& payload) {
  unsigned char header[kFrameHeaderBytes];
  std::size_t have = 0;
  std::size_t want = kFrameHeaderBytes;
  unsigned char* dest = header;
  bool reading_header = true;
  std::uint32_t length = 0;
  int idle_ms = 0;

  while (have < want) {
    // Between frames a drain closes the connection immediately; once a
    // frame has started we finish reading it (and reply) first.
    if (draining() && reading_header && have == 0) return ReadStatus::kClose;
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready == 0) {
      idle_ms += kPollSliceMs;
      if (idle_ms < static_cast<int>(options_.idle_timeout_ms)) continue;
      if (reading_header && have == 0) return ReadStatus::kClose;
      // Mid-frame silence: the peer promised more bytes than it sent.
      (void)send_reply(fd, error_reply(Error{
                               ErrorCode::kParse,
                               "truncated frame (timed out mid-frame)"}));
      return ReadStatus::kClose;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kClose;
    }
    const ssize_t n = ::recv(fd, dest + have, want - have, 0);
    if (n == 0) {
      if (reading_header && have == 0) return ReadStatus::kClose;
      // EOF inside a frame: typed error on the (possibly half-closed)
      // socket, best effort -- the client may still be reading.
      (void)send_reply(
          fd, error_reply(Error{ErrorCode::kParse,
                                "truncated frame (connection closed after " +
                                    std::to_string(have) + " of " +
                                    std::to_string(want) + " bytes)"}));
      return ReadStatus::kClose;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadStatus::kClose;
    }
    idle_ms = 0;
    have += static_cast<std::size_t>(n);
    if (reading_header && have == kFrameHeaderBytes) {
      length = decode_frame_length(header);
      if (length > kMaxFrameBytes) {
        // The stream cannot be resynchronized past a bogus length; reply
        // with the violation and drop the connection.
        (void)send_reply(
            fd, error_reply(Error{
                    ErrorCode::kParse,
                    "frame length " + std::to_string(length) +
                        " exceeds the " + std::to_string(kMaxFrameBytes) +
                        "-byte cap"}));
        return ReadStatus::kClose;
      }
      payload.assign(length, '\0');
      dest = reinterpret_cast<unsigned char*>(payload.data());
      have = 0;
      want = length;
      reading_header = false;
      if (length == 0) break;
    }
  }
  return ReadStatus::kFrame;
}

Result<std::string> Server::handle(const Request& request,
                                   bool& drain_after_reply) {
  switch (request.type) {
    case RequestType::kPing:
      return reply_head("pong") + "}";
    case RequestType::kCompile:
      return handle_compile(request);
    case RequestType::kRun:
      return handle_run(request);
    case RequestType::kSweep:
    case RequestType::kBenchSuite:
      return handle_suite(request);
    case RequestType::kStoreStat:
      return handle_store_stat();
    case RequestType::kStats:
      return handle_stats();
    case RequestType::kShutdown:
      drain_after_reply = true;
      return reply_head("shutdown") + ", \"draining\": true}";
  }
  return Error{ErrorCode::kUnknown, "unhandled request type"};
}

Result<std::string> Server::handle_compile(const Request& request) {
  auto unit = warm_.cache().get_or_compile(request.spec);
  if (!unit.ok()) return std::move(unit).error();
  const flow::CompiledUnit& u = *unit.value();
  std::string out = reply_head("compile");
  out += ", \"kernel\": \"" + json::escape(u.spec().kernel) + "\"";
  out += ", \"machine\": \"";
  out += codegen::machine_name(u.machine());
  out += "\", \"geometry\": \"" + u.geometry().label() + "\"";
  out += ", \"code_words\": " + std::to_string(u.program().size_words());
  out += ", \"init_instructions\": " +
         std::to_string(u.program().init_instructions);
  out += ", \"hw_loops\": " + std::to_string(u.program().hw_loop_count);
  out += ", \"sw_loops\": " + std::to_string(u.program().sw_loop_count);
  out += ", \"scan_candidates\": " + std::to_string(u.scan().candidates.size());
  out += ", \"key\": \"" + json::escape(u.spec().key()) + "\"}";
  return out;
}

Result<std::string> Server::handle_run(const Request& request) {
  auto unit = warm_.cache().get_or_compile(request.spec);
  if (!unit.ok()) return std::move(unit).error();
  auto result = flow::run(*unit.value(), request.plan);
  if (!result.ok()) return std::move(result).error();
  const harness::ExperimentResult& r = result.value();
  std::string out = reply_head("run");
  out += ", \"kernel\": \"" + json::escape(r.kernel) + "\"";
  out += ", \"machine\": \"";
  out += codegen::machine_name(r.machine);
  out += "\", \"geometry\": \"" + r.geometry.label() + "\"";
  out += ", \"config\": \"" +
         json::escape(harness::config_name(request.plan.config)) + "\"";
  out += ", \"mode\": \"";
  out += harness::mode_name(r.mode);
  out += "\", \"cycles\": " + std::to_string(r.stats.cycles);
  out += ", \"instructions\": " + std::to_string(r.stats.instructions);
  out += ", \"continue_events\": " +
         std::to_string(r.zolc_stats.continue_events);
  out += ", \"done_events\": " + std::to_string(r.zolc_stats.done_events);
  out += ", \"table_writes\": " + std::to_string(r.zolc_stats.table_writes);
  out += ", \"tenants\": " + std::to_string(r.tenants);
  out += ", \"ctx_switches\": " + std::to_string(r.context_switches);
  out += ", \"ctx_switch_cycles\": " +
         std::to_string(r.context_switch_cycles);
  out += ", \"full_prepares\": " + std::to_string(r.full_prepares) + "}";
  return out;
}

Result<std::string> Server::handle_suite(const Request& request) {
  auto suite = scenario::parse_suite(request.suite_text, "serve request");
  if (!suite.ok()) return std::move(suite).error();
  scenario::RunOptions options;
  options.threads = options_.sweep_threads;
  auto outcome = scenario::run_suite(suite.value(), warm_.cache(), options);
  if (!outcome.ok()) return std::move(outcome).error();
  const scenario::SuiteOutcome& done = outcome.value();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.full_prepares += done.report.full_prepares;
    stats_.image_resets += done.report.image_resets;
    if (done.mips > 0.0) mips_samples_.push_back(done.mips);
  }

  const bool bench = request.type == RequestType::kBenchSuite;
  std::string out = reply_head(bench ? "bench-suite" : "sweep");
  out += ", \"suite\": \"" + json::escape(done.suite.name) + "\"";
  out += counters_members(done.report);
  out += std::string(", \"golden\": \"") +
         (done.golden_checked ? "match" : "unchecked") + "\"";
  out += ", \"cells\": " + std::to_string(done.report.cells.size());
  out += ", \"wall_seconds\": " + format_fixed(done.wall_seconds, 4);
  out += ", \"mips\": " + format_fixed(done.mips, 2);
  if (bench) {
    out += ", \"artifact_name\": \"" +
           json::escape(scenario::bench_artifact_name(done.suite)) + "\"";
    out += ", \"artifact\": \"" +
           json::escape(scenario::bench_artifact_json(done)) + "\"";
  } else {
    out += std::string(", \"format\": \"") +
           (request.json_format ? "json" : "csv") + "\"";
    out += ", \"output\": \"" +
           json::escape(request.json_format ? done.report.to_json()
                                            : done.csv) +
           "\"";
  }
  out += "}";
  return out;
}

std::string Server::handle_store_stat() {
  std::string out = reply_head("store-stat");
  flow::UnitStore* store = warm_.store();
  if (store == nullptr) {
    out += ", \"attached\": false}";
    return out;
  }
  out += ", \"attached\": true";
  out += ", \"dir\": \"" + json::escape(options_.store_dir) + "\"";
  std::size_t current = 0, stale = 0, corrupt = 0;
  std::uintmax_t bytes = 0;
  if (auto artifacts = store->scan_artifacts(); artifacts.ok()) {
    for (const flow::UnitStore::ArtifactInfo& info : artifacts.value()) {
      switch (info.state) {
        case flow::UnitStore::ArtifactInfo::State::kCurrent: ++current; break;
        case flow::UnitStore::ArtifactInfo::State::kStale: ++stale; break;
        case flow::UnitStore::ArtifactInfo::State::kCorrupt: ++corrupt; break;
      }
      bytes += info.bytes;
    }
  }
  out += ", \"current\": " + std::to_string(current);
  out += ", \"stale\": " + std::to_string(stale);
  out += ", \"corrupt\": " + std::to_string(corrupt);
  out += ", \"bytes\": " + std::to_string(bytes);
  out += ", \"toolchain_tag\": \"" +
         json::escape(flow::UnitStore::toolchain_tag()) + "\"}";
  return out;
}

std::string Server::handle_stats() {
  ServerStats snapshot;
  std::vector<double> wall_ms;
  std::vector<double> mips;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
    wall_ms = wall_ms_samples_;
    mips = mips_samples_;
  }
  const flow::CompileCache::Stats cache = warm_.cache().stats();
  const std::size_t lookups = cache.hits + cache.misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(cache.hits) /
                         static_cast<double>(lookups);

  std::string out = reply_head("stats");
  out += ", \"requests\": " + std::to_string(snapshot.requests);
  out += ", \"connections\": " + std::to_string(snapshot.connections);
  out += ", \"errors\": " + std::to_string(snapshot.errors);
  out += ", \"by_type\": {";
  bool first = true;
  for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += request_type_name(static_cast<RequestType>(i));
    out += "\": " + std::to_string(snapshot.by_type[i]);
  }
  out += "}";
  out += ", \"cache\": {\"hits\": " + std::to_string(cache.hits) +
         ", \"misses\": " + std::to_string(cache.misses) +
         ", \"store_hits\": " + std::to_string(cache.store_hits) +
         ", \"compiles\": " + std::to_string(cache.compiles) +
         ", \"hit_rate\": " + format_fixed(hit_rate, 3) + "}";
  out += ", \"prepares\": {\"full\": " +
         std::to_string(snapshot.full_prepares) +
         ", \"image_resets\": " + std::to_string(snapshot.image_resets) + "}";
  out += ", \"wall_ms\": " + percentile_object(wall_ms, 3);
  out += ", \"mips\": " + percentile_object(mips, 2);
  out += ", \"workers\": " + std::to_string(options_.workers);
  out += ", \"draining\": ";
  out += draining() ? "true" : "false";
  out += "}";
  return out;
}

void Server::record_request(RequestType type, double wall_ms, double mips) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.requests;
  ++stats_.by_type[static_cast<std::size_t>(type)];
  wall_ms_samples_.push_back(wall_ms);
  if (mips > 0.0) mips_samples_.push_back(mips);
}

}  // namespace zolcsim::server
