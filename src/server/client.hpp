// Client side of zolcsim-serve-v1: connect to a serve daemon's Unix-domain
// socket, exchange one framed request/reply at a time, and decode error
// replies back into the Error{code, message, context} the server carried --
// a remote failure is indistinguishable from a local one at the call site.
// Used by the `zolcsim client` verbs and the server tests.
#ifndef ZOLCSIM_SERVER_CLIENT_HPP
#define ZOLCSIM_SERVER_CLIENT_HPP

#include <string>
#include <string_view>

#include "common/json.hpp"
#include "common/result.hpp"
#include "server/protocol.hpp"

namespace zolcsim::server {

class Client {
 public:
  /// Connects to the daemon at `socket_path`. Error: kIo (no daemon,
  /// refused, path too long).
  [[nodiscard]] static Result<Client> connect(const std::string& socket_path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request payload and blocks for the reply (up to
  /// `timeout_ms`). Error replies come back as their carried Error; kIo
  /// covers transport failures and timeouts.
  [[nodiscard]] Result<json::Value> call(std::string_view request_payload,
                                         int timeout_ms = 120'000);

  /// Raw variant: the reply payload text, error replies included verbatim.
  [[nodiscard]] Result<std::string> call_raw(std::string_view request_payload,
                                             int timeout_ms = 120'000);

  /// Sends raw bytes with no framing -- protocol-robustness tests use this
  /// to speak malformed frames at the daemon.
  [[nodiscard]] Result<void> send_bytes(std::string_view bytes);

  /// Half-closes the write side (the peer sees EOF mid-frame).
  void shutdown_write();

  /// Reads one reply frame without sending anything first.
  [[nodiscard]] Result<std::string> read_reply(int timeout_ms = 120'000);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

/// Request builders (the client half of the schema).
[[nodiscard]] std::string simple_request(RequestType type);

/// Embeds a suite document (a JSON object, e.g. the text of a
/// scenarios/*.json file) into a sweep / bench-suite request. The document
/// is parsed first so malformed input fails client-side with the same
/// kParse errors the suite loader gives. For sweep requests `json_format`
/// selects the reply rendering.
[[nodiscard]] Result<std::string> sweep_request(std::string_view suite_document,
                                                bool json_format);
[[nodiscard]] Result<std::string> bench_suite_request(
    std::string_view suite_document);

}  // namespace zolcsim::server

#endif  // ZOLCSIM_SERVER_CLIENT_HPP
