#include "server/protocol.hpp"

#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "scenario/parse.hpp"

namespace zolcsim::server {

namespace {

Error shape_error(std::string msg) {
  return Error{ErrorCode::kParse, std::move(msg)}.with_context(
      "serve request");
}

Error config_error(std::string msg) {
  return Error{ErrorCode::kBadConfig, std::move(msg)}.with_context(
      "serve request");
}

std::string member_error(std::string_view key, std::string_view what) {
  std::string msg = "'";
  msg += key;
  msg += "' must be ";
  msg += what;
  return msg;
}

/// Member as a string; nullopt when absent, error when the wrong kind.
Result<std::optional<std::string>> string_member(const json::Value& object,
                                                 std::string_view key) {
  const json::Value* member = object.find(key);
  if (member == nullptr) return std::optional<std::string>{};
  if (!member->is_string()) {
    return shape_error(member_error(key, "a string"));
  }
  return std::optional<std::string>{member->as_string()};
}

/// Member as a strictly positive integer; nullopt when absent.
Result<std::optional<std::uint64_t>> positive_member(
    const json::Value& object, std::string_view key) {
  const json::Value* member = object.find(key);
  if (member == nullptr) return std::optional<std::uint64_t>{};
  const auto n = member->as_uint();
  if (!n || *n == 0) {
    return shape_error(member_error(key, "a positive integer"));
  }
  return std::optional<std::uint64_t>{*n};
}

/// Member as a bool with a default.
Result<bool> bool_member(const json::Value& object, std::string_view key,
                         bool fallback) {
  const json::Value* member = object.find(key);
  if (member == nullptr) return fallback;
  if (!member->is_bool()) {
    return shape_error(member_error(key, "a boolean"));
  }
  return member->as_bool();
}

/// Strict schema: every member of `object` must appear in `allowed`.
Result<void> reject_unknown_members(
    const json::Value& object, const std::vector<std::string_view>& allowed) {
  for (const json::Value::Member& member : object.members()) {
    bool known = false;
    for (const std::string_view name : allowed) {
      if (member.first == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return shape_error("unknown request member '" + member.first + "'");
    }
  }
  return {};
}

/// Fills spec.machine / spec.geometry from the optional request members
/// (defaults: ZOLCfull on the paper geometry, matching the CLI verbs).
Result<void> parse_unit_members(const json::Value& root,
                                flow::CompileSpec& spec) {
  auto kernel = string_member(root, "kernel");
  if (!kernel.ok()) return std::move(kernel).error();
  if (!kernel.value() || kernel.value()->empty()) {
    return shape_error("a 'kernel' member is required");
  }
  spec.kernel = *kernel.value();
  spec.machine = codegen::MachineKind::kZolcFull;
  auto machine = string_member(root, "machine");
  if (!machine.ok()) return std::move(machine).error();
  if (machine.value()) {
    auto parsed = scenario::parse_machine(*machine.value());
    if (!parsed.ok()) {
      return std::move(parsed).error().with_context("serve request");
    }
    spec.machine = parsed.value();
  }
  auto geometry = string_member(root, "geometry");
  if (!geometry.ok()) return std::move(geometry).error();
  if (geometry.value()) {
    auto parsed = scenario::parse_geometry(*geometry.value());
    if (!parsed.ok()) {
      return std::move(parsed).error().with_context("serve request");
    }
    spec.geometry = parsed.value();
  }
  return {};
}

/// The run-plan members of a "run" request (config / mode / budgets /
/// preemption / tenants), validated with the shared axis parsers.
Result<void> parse_plan_members(const json::Value& root,
                                flow::RunPlan& plan) {
  auto config = string_member(root, "config");
  if (!config.ok()) return std::move(config).error();
  if (config.value()) {
    auto parsed = scenario::parse_config(*config.value());
    if (!parsed.ok()) {
      return std::move(parsed).error().with_context("serve request");
    }
    plan.config = parsed.value();
  }
  auto mode = string_member(root, "mode");
  if (!mode.ok()) return std::move(mode).error();
  if (mode.value()) {
    auto parsed = scenario::parse_mode(*mode.value());
    if (!parsed.ok()) {
      return std::move(parsed).error().with_context("serve request");
    }
    plan.mode = parsed.value();
  }
  auto cycles = positive_member(root, "max_cycles");
  if (!cycles.ok()) return std::move(cycles).error();
  if (cycles.value()) plan.max_cycles = *cycles.value();
  auto tenants = positive_member(root, "tenants");
  if (!tenants.ok()) return std::move(tenants).error();
  if (tenants.value()) {
    if (*tenants.value() > 64) {
      return config_error("'tenants' must be in [1, 64]");
    }
    plan.tenants = static_cast<unsigned>(*tenants.value());
  }
  auto every = positive_member(root, "preempt_every");
  if (!every.ok()) return std::move(every).error();
  if (every.value()) plan.preempt_every = *every.value();
  auto serialize = bool_member(root, "preempt_serialize", false);
  if (!serialize.ok()) return std::move(serialize).error();
  plan.preempt_serialize = serialize.value();
  auto predecode = bool_member(root, "predecode", true);
  if (!predecode.ok()) return std::move(predecode).error();
  plan.predecode = predecode.value();
  return {};
}

}  // namespace

std::string_view request_type_name(RequestType type) {
  switch (type) {
    case RequestType::kPing: return "ping";
    case RequestType::kCompile: return "compile";
    case RequestType::kRun: return "run";
    case RequestType::kSweep: return "sweep";
    case RequestType::kBenchSuite: return "bench-suite";
    case RequestType::kStoreStat: return "store-stat";
    case RequestType::kStats: return "stats";
    case RequestType::kShutdown: return "shutdown";
  }
  return "?";
}

Result<Request> parse_request(std::string_view payload) {
  auto document = json::parse(payload);
  if (!document.ok()) {
    return std::move(document).error().with_context("serve request");
  }
  const json::Value& root = document.value();
  if (!root.is_object()) {
    return shape_error("request must be a JSON object");
  }
  const json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return shape_error("a string 'schema' member is required");
  }
  if (schema->as_string() != kServeSchema) {
    return shape_error("unsupported schema '" + schema->as_string() +
                       "' (this daemon speaks " + std::string(kServeSchema) +
                       ")");
  }
  const json::Value* type_v = root.find("type");
  if (type_v == nullptr || !type_v->is_string()) {
    return shape_error("a string 'type' member is required");
  }
  const std::string& name = type_v->as_string();

  Request request;
  bool known_type = false;
  for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
    const auto type = static_cast<RequestType>(i);
    if (request_type_name(type) == name) {
      request.type = type;
      known_type = true;
      break;
    }
  }
  if (!known_type) {
    return config_error("unknown request type '" + name + "'");
  }

  switch (request.type) {
    case RequestType::kPing:
    case RequestType::kStoreStat:
    case RequestType::kStats:
    case RequestType::kShutdown: {
      if (auto strict = reject_unknown_members(root, {"schema", "type"});
          !strict.ok()) {
        return std::move(strict).error();
      }
      break;
    }
    case RequestType::kCompile: {
      if (auto strict = reject_unknown_members(
              root, {"schema", "type", "kernel", "machine", "geometry"});
          !strict.ok()) {
        return std::move(strict).error();
      }
      if (auto unit = parse_unit_members(root, request.spec); !unit.ok()) {
        return std::move(unit).error();
      }
      break;
    }
    case RequestType::kRun: {
      if (auto strict = reject_unknown_members(
              root, {"schema", "type", "kernel", "machine", "geometry",
                     "config", "mode", "max_cycles", "tenants",
                     "preempt_every", "preempt_serialize", "predecode"});
          !strict.ok()) {
        return std::move(strict).error();
      }
      if (auto unit = parse_unit_members(root, request.spec); !unit.ok()) {
        return std::move(unit).error();
      }
      if (auto plan = parse_plan_members(root, request.plan); !plan.ok()) {
        return std::move(plan).error();
      }
      break;
    }
    case RequestType::kSweep:
    case RequestType::kBenchSuite: {
      const bool sweep = request.type == RequestType::kSweep;
      if (auto strict = reject_unknown_members(
              root, sweep ? std::vector<std::string_view>{"schema", "type",
                                                          "suite", "format"}
                          : std::vector<std::string_view>{"schema", "type",
                                                          "suite"});
          !strict.ok()) {
        return std::move(strict).error();
      }
      const json::Value* suite = root.find("suite");
      if (suite == nullptr || !suite->is_object()) {
        return shape_error("a 'suite' object member is required");
      }
      request.suite_text = json::serialize(*suite);
      if (sweep) {
        auto format = string_member(root, "format");
        if (!format.ok()) return std::move(format).error();
        if (format.value()) {
          if (*format.value() != "csv" && *format.value() != "json") {
            return config_error("bad 'format' value '" + *format.value() +
                                "' (csv or json)");
          }
          request.json_format = *format.value() == "json";
        }
      }
      break;
    }
  }
  return request;
}

std::string encode_frame(std::string_view payload) {
  ZS_EXPECTS(payload.size() <= kMaxFrameBytes);
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xFF));
  frame.push_back(static_cast<char>((length >> 16) & 0xFF));
  frame.push_back(static_cast<char>((length >> 8) & 0xFF));
  frame.push_back(static_cast<char>(length & 0xFF));
  frame.append(payload);
  return frame;
}

std::uint32_t decode_frame_length(const unsigned char* header) {
  return (static_cast<std::uint32_t>(header[0]) << 24) |
         (static_cast<std::uint32_t>(header[1]) << 16) |
         (static_cast<std::uint32_t>(header[2]) << 8) |
         static_cast<std::uint32_t>(header[3]);
}

std::string error_reply(const Error& error) {
  std::string out = "{\"schema\": \"";
  out += kServeSchema;
  out += "\", \"reply\": \"error\", \"code\": \"";
  out += error_code_name(error.code);
  out += "\", \"message\": \"";
  out += json::escape(error.message);
  out += "\", \"context\": [";
  bool first = true;
  for (const std::string& frame : error.context) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += json::escape(frame);
    out += '"';
  }
  out += "]}";
  return out;
}

Result<json::Value> parse_reply(std::string_view payload) {
  auto document = json::parse(payload);
  if (!document.ok()) {
    return std::move(document).error().with_context("serve reply");
  }
  const json::Value& root = document.value();
  const json::Value* reply = root.find("reply");
  if (reply == nullptr || !reply->is_string()) {
    return Error{ErrorCode::kParse,
                 "reply lacks a string 'reply' member"}
        .with_context("serve reply");
  }
  if (reply->as_string() == "error") {
    // Reconstitute the server-side Error so callers branch on the code
    // exactly as they would on a local failure.
    Error error;
    error.code = ErrorCode::kUnknown;
    if (const json::Value* code = root.find("code");
        code != nullptr && code->is_string()) {
      error.code = parse_error_code(code->as_string());
    }
    if (const json::Value* message = root.find("message");
        message != nullptr && message->is_string()) {
      error.message = message->as_string();
    }
    if (const json::Value* context = root.find("context");
        context != nullptr && context->is_array()) {
      for (const json::Value& frame : context->items()) {
        if (frame.is_string()) error.context.push_back(frame.as_string());
      }
    }
    return error;
  }
  return std::move(document).value();
}

Result<std::string> reply_string(const json::Value& reply,
                                 std::string_view key) {
  const json::Value* member = reply.find(key);
  if (member == nullptr || !member->is_string()) {
    std::string msg = "reply lacks a string '";
    msg += key;
    msg += "' member";
    return Error{ErrorCode::kParse, std::move(msg)}.with_context(
        "serve reply");
  }
  return member->as_string();
}

Result<std::uint64_t> reply_uint(const json::Value& reply,
                                 std::string_view key) {
  const json::Value* member = reply.find(key);
  const auto n = member ? member->as_uint() : std::nullopt;
  if (!n) {
    std::string msg = "reply lacks an integer '";
    msg += key;
    msg += "' member";
    return Error{ErrorCode::kParse, std::move(msg)}.with_context(
        "serve reply");
  }
  return *n;
}

}  // namespace zolcsim::server
