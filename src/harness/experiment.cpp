#include "harness/experiment.hpp"

#include <memory>

namespace zolcsim::harness {

Result<ExperimentResult> run_experiment(const kernels::Kernel& kernel,
                                        codegen::MachineKind machine,
                                        const kernels::KernelEnv& env,
                                        cpu::PipelineConfig config,
                                        std::uint64_t max_cycles,
                                        bool predecode,
                                        const zolc::ZolcGeometry& geometry) {
  if (!geometry.valid()) {
    return Error{std::string(kernel.name()) + ": invalid ZOLC geometry " +
                 geometry.label()};
  }
  auto lowered =
      codegen::lower(kernel.build(env), machine, env.code_base, geometry);
  if (!lowered.ok()) {
    return Error{std::string(kernel.name()) + " (" +
                 std::string(codegen::machine_name(machine)) +
                 "): lowering failed: " + lowered.error().message};
  }
  const codegen::Program& program = lowered.value();

  mem::Memory memory;
  program.load_into(memory);
  kernel.setup(env, memory);

  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(machine)) {
    controller = std::make_unique<zolc::ZolcController>(*variant, geometry);
  }

  cpu::Pipeline pipe(memory, config);
  pipe.set_accelerator(controller.get());
  if (predecode) pipe.set_code_image(program.image());
  pipe.set_pc(program.base);
  try {
    pipe.run(max_cycles);
  } catch (const cpu::SimError& e) {
    return Error{std::string(kernel.name()) + " (" +
                 std::string(codegen::machine_name(machine)) +
                 "): simulation failed: " + e.what()};
  }

  if (auto verified = kernel.verify(env, memory); !verified.ok()) {
    return Error{std::string(kernel.name()) + " (" +
                 std::string(codegen::machine_name(machine)) +
                 "): verification failed: " + verified.error().message};
  }

  ExperimentResult result;
  result.kernel = std::string(kernel.name());
  result.machine = machine;
  result.geometry = geometry;
  result.stats = pipe.stats();
  if (controller) result.zolc_stats = controller->zolc_stats();
  result.init_instructions = program.init_instructions;
  result.hw_loops = program.hw_loop_count;
  result.sw_loops = program.sw_loop_count;
  result.code_words = program.size_words();
  result.notes = program.notes;
  return result;
}

double percent_reduction(std::uint64_t baseline, std::uint64_t cycles) {
  if (baseline == 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(cycles) /
                            static_cast<double>(baseline));
}

}  // namespace zolcsim::harness
