#include "harness/experiment.hpp"

#include <string>

#include "flow/cache.hpp"
#include "flow/run.hpp"

namespace zolcsim::harness {

std::string_view mode_name(const ExecMode& mode) {
  if (mode.engine == SimEngine::kPipeline) return "pipeline";
  return mode.fast_path ? "iss-fast" : "iss";
}

Result<ExperimentResult> run_experiment(const kernels::Kernel& kernel,
                                        codegen::MachineKind machine,
                                        const kernels::KernelEnv& env,
                                        cpu::PipelineConfig config,
                                        std::uint64_t max_cycles,
                                        bool predecode,
                                        const zolc::ZolcGeometry& geometry) {
  flow::CompileSpec spec;
  spec.kernel = std::string(kernel.name());
  spec.machine = machine;
  spec.geometry = geometry;
  spec.env = env;
  auto unit = flow::CompiledUnit::compile(kernel, spec);
  if (!unit.ok()) return std::move(unit).error();
  flow::RunPlan plan;
  plan.config = config;
  plan.max_cycles = max_cycles;
  plan.predecode = predecode;
  return flow::run(unit.value(), plan);
}

double percent_reduction(std::uint64_t baseline, std::uint64_t cycles) {
  if (baseline == 0) return 0.0;
  return 100.0 * (1.0 - static_cast<double>(cycles) /
                            static_cast<double>(baseline));
}

}  // namespace zolcsim::harness
