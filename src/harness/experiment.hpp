// Experiment runner: lowers a kernel for a machine configuration, runs it
// on the cycle-accurate pipeline (with the right ZOLC variant attached),
// verifies outputs against the kernel's golden reference, and returns the
// cycle statistics the benchmarks report.
#ifndef ZOLCSIM_HARNESS_EXPERIMENT_HPP
#define ZOLCSIM_HARNESS_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "codegen/lower.hpp"
#include "cpu/pipeline.hpp"
#include "cpu/summary.hpp"
#include "kernels/kernels.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::harness {

/// Which simulator executes a cell.
enum class SimEngine : std::uint8_t {
  kPipeline,  ///< cycle-accurate 5-stage pipeline (the default)
  kIss,       ///< functional ISS (1 instruction per cycle by construction)
};

/// Execution mode of a run: the engine, plus (for the ISS) whether the
/// loop-summary fast path (DESIGN.md section 7) is enabled. The fast path
/// is architecturally invisible, so "iss" and "iss-fast" cells must agree
/// on every reported statistic -- the scenario runner cross-checks this.
struct ExecMode {
  SimEngine engine = SimEngine::kPipeline;
  bool fast_path = false;  ///< ISS only; ignored for the pipeline

  friend bool operator==(const ExecMode&, const ExecMode&) = default;
};

/// "pipeline" | "iss" | "iss-fast" -- the sweep emitters' mode column.
[[nodiscard]] std::string_view mode_name(const ExecMode& mode);

struct ExperimentResult {
  std::string kernel;
  codegen::MachineKind machine = codegen::MachineKind::kXrDefault;
  zolc::ZolcGeometry geometry;    ///< ZOLC geometry the cell ran against
  ExecMode mode;                  ///< engine + fast-path the cell ran under
  cpu::PipelineStats stats;       ///< ISS runs report cycles == instructions
  zolc::ZolcStats zolc_stats;     ///< zeros for non-ZOLC machines
  cpu::FastPathStats fastpath;    ///< all-zero unless mode is iss-fast
  unsigned init_instructions = 0; ///< ZOLC init prologue length
  unsigned hw_loops = 0;
  unsigned sw_loops = 0;
  std::size_t code_words = 0;
  std::vector<std::string> notes;
  /// Host wall time of the simulation itself (not the compile). Feeds the
  /// BENCH_*.json MIPS figures only -- never the deterministic CSV/JSON
  /// report emitters, which must stay byte-identical across hosts.
  std::uint64_t wall_ns = 0;
  /// Warm-start accounting for this cell: how many times the full memory
  /// image was built (program load + Kernel::setup) vs restored by an
  /// O(dirty) copy-on-write baseline reset. BENCH-artifact material only,
  /// like wall_ns -- never part of the deterministic emitters.
  std::uint64_t full_prepares = 0;
  std::uint64_t image_resets = 0;
  /// Multi-tenant / preemption accounting: workloads time-sliced over one
  /// controller, context switches performed, and their modeled cost in
  /// cycles (init-bus words moved; DESIGN.md section 9). The cost is
  /// reported alongside -- never folded into -- stats.cycles, so preempted
  /// runs stay cycle-identical to uninterrupted ones and the tenant CSV
  /// columns surface the overhead as its own figure.
  unsigned tenants = 1;
  std::uint64_t context_switches = 0;
  std::uint64_t context_switch_cycles = 0;
};

/// Runs one (kernel, machine) experiment. Output verification failures and
/// lowering errors are returned as Error (a failed verification is a bug,
/// never a reportable data point). `predecode` selects the predecoded
/// instruction-image fetch fast path (identical architectural behaviour;
/// off is kept for throughput comparisons). `geometry` sizes the ZOLC
/// controller and drives the lowering's capacity decisions (ignored for
/// non-ZOLC machines; the default is the paper prototype).
///
/// Compatibility wrapper: compiles and runs in one shot, discarding the
/// compile-stage artifact. Callers that run the same compile under several
/// pipeline configurations should use flow::CompiledUnit + flow::run()
/// (or the sweep engine, which caches units) to pay the compile once.
[[nodiscard]] Result<ExperimentResult> run_experiment(
    const kernels::Kernel& kernel, codegen::MachineKind machine,
    const kernels::KernelEnv& env = {}, cpu::PipelineConfig config = {},
    std::uint64_t max_cycles = 200'000'000, bool predecode = true,
    const zolc::ZolcGeometry& geometry = zolc::ZolcGeometry{});

/// Percentage cycle reduction of `cycles` vs `baseline` (paper's metric).
[[nodiscard]] double percent_reduction(std::uint64_t baseline,
                                       std::uint64_t cycles);

}  // namespace zolcsim::harness

#endif  // ZOLCSIM_HARNESS_EXPERIMENT_HPP
