#include "harness/sweep.hpp"

#include <atomic>
#include <thread>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "flow/cache.hpp"
#include "flow/run.hpp"

namespace zolcsim::harness {

namespace {

/// Default-constructible per-cell outcome so workers can write results into
/// preallocated slots without synchronization. kNotRun marks cells skipped
/// by the early-abort after another cell failed; kCopyGeometryZero marks
/// cells of geometry-independent (non-ZOLC) machines at geometry index > 0,
/// which are filled from the geometry-0 cell after the pool joins instead
/// of re-simulating an identical experiment.
struct CellOutcome {
  enum class State : std::uint8_t { kNotRun, kOk, kError, kCopyGeometryZero };
  State state = State::kNotRun;
  ExperimentResult result;
  Error error;
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

std::vector<codegen::MachineKind> machines_for_variants(
    const std::vector<zolc::ZolcVariant>& variants) {
  std::vector<codegen::MachineKind> machines;
  for (const zolc::ZolcVariant variant : variants) {
    switch (variant) {
      case zolc::ZolcVariant::kMicro:
        machines.push_back(codegen::MachineKind::kUZolc);
        break;
      case zolc::ZolcVariant::kLite:
        machines.push_back(codegen::MachineKind::kZolcLite);
        break;
      case zolc::ZolcVariant::kFull:
        machines.push_back(codegen::MachineKind::kZolcFull);
        break;
    }
  }
  return machines;
}

std::string config_name(const cpu::PipelineConfig& config) {
  std::string name =
      config.branch_resolve == cpu::BranchResolveStage::kExecute
          ? "EX-resolve"
          : "ID-resolve";
  name += config.speculation == cpu::SpeculationPolicy::kRollback
              ? "/rollback"
              : "/gate";
  if (!config.forwarding) name += "/nofwd";
  return name;
}

const ExperimentResult& SweepReport::at(std::size_t kernel,
                                        std::size_t machine,
                                        std::size_t config,
                                        std::size_t geometry,
                                        std::size_t mode,
                                        std::size_t tenant) const {
  ZS_EXPECTS(kernel < kernels.size() && machine < machines.size() &&
             config < configs.size() && geometry < geometries.size() &&
             mode < modes.size() && tenant < tenants.size());
  return cells[((((kernel * machines.size() + machine) * configs.size() +
                  config) *
                     geometries.size() +
                 geometry) *
                    modes.size() +
                mode) *
                   tenants.size() +
               tenant]
      .result;
}

const ExperimentResult* SweepReport::find(std::string_view kernel,
                                          codegen::MachineKind machine,
                                          std::size_t config,
                                          std::size_t geometry,
                                          std::size_t mode,
                                          std::size_t tenant) const {
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    if (kernels[k] != kernel) continue;
    for (std::size_t m = 0; m < machines.size(); ++m) {
      if (machines[m] != machine) continue;
      if (config >= configs.size() || geometry >= geometries.size() ||
          mode >= modes.size() || tenant >= tenants.size()) {
        return nullptr;
      }
      return &at(k, m, config, geometry, mode, tenant);
    }
  }
  return nullptr;
}

std::uint64_t SweepReport::cycles(std::size_t kernel, std::size_t machine,
                                  std::size_t config, std::size_t geometry,
                                  std::size_t mode, std::size_t tenant) const {
  return at(kernel, machine, config, geometry, mode, tenant).stats.cycles;
}

double SweepReport::reduction(std::size_t kernel, std::size_t machine,
                              std::size_t config, std::size_t geometry,
                              std::size_t mode, std::size_t tenant) const {
  for (std::size_t m = 0; m < machines.size(); ++m) {
    if (machines[m] == baseline) {
      return percent_reduction(
          cycles(kernel, m, config, geometry, mode, tenant),
          cycles(kernel, machine, config, geometry, mode, tenant));
    }
  }
  return 0.0;
}

bool SweepReport::has_geometry_axis() const {
  return geometries.size() > 1 ||
         (geometries.size() == 1 && !(geometries[0] == zolc::ZolcGeometry{}));
}

bool SweepReport::has_mode_axis() const {
  return modes.size() > 1 || (modes.size() == 1 && !(modes[0] == ExecMode{}));
}

bool SweepReport::has_tenant_axis() const {
  return tenants.size() > 1 || (tenants.size() == 1 && tenants[0] != 1);
}

SweepAggregate SweepReport::aggregate(std::size_t machine,
                                      std::size_t config,
                                      std::size_t geometry,
                                      std::size_t mode,
                                      std::size_t tenant) const {
  SweepAggregate agg;
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const ExperimentResult& r = at(k, machine, config, geometry, mode, tenant);
    const double red = reduction(k, machine, config, geometry, mode, tenant);
    agg.avg_reduction += red;
    agg.max_reduction = std::max(agg.max_reduction, red);
    agg.total_cycles += r.stats.cycles;
    agg.total_instructions += r.stats.instructions;
    agg.gate_stalls += r.stats.gate_stalls;
    agg.zolc_fetch_events += r.stats.zolc_fetch_events;
    agg.continue_events += r.zolc_stats.continue_events;
    agg.done_events += r.zolc_stats.done_events;
    agg.table_writes += r.zolc_stats.table_writes;
  }
  if (!kernels.empty()) {
    agg.avg_reduction /= static_cast<double>(kernels.size());
  }
  return agg;
}

std::string SweepReport::to_csv() const {
  const bool with_geometry = has_geometry_axis();
  const bool with_mode = has_mode_axis();
  const bool with_tenants = has_tenant_axis();
  std::vector<std::string> header = {"kernel", "machine", "config"};
  if (with_geometry) header.push_back("geometry");
  if (with_mode) header.push_back("mode");
  if (with_tenants) header.push_back("tenants");
  for (const char* column :
       {"cycles", "instructions", "reduction_pct", "init_instructions",
        "hw_loops", "sw_loops", "code_words", "continue_events",
        "done_events", "table_writes", "gate_stalls", "load_use_stalls",
        "control_flush_slots"}) {
    header.emplace_back(column);
  }
  if (with_tenants) {
    header.emplace_back("ctx_switches");
    header.emplace_back("ctx_switch_cycles");
  }
  CsvWriter csv(header);
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    for (std::size_t m = 0; m < machines.size(); ++m) {
      for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t g = 0; g < geometries.size(); ++g) {
        for (std::size_t x = 0; x < modes.size(); ++x) {
        for (std::size_t t = 0; t < tenants.size(); ++t) {
          const ExperimentResult& r = at(k, m, c, g, x, t);
          std::vector<std::string> row = {
              kernels[k], std::string(codegen::machine_name(machines[m])),
              config_name(configs[c])};
          if (with_geometry) row.push_back(geometries[g].label());
          if (with_mode) row.emplace_back(mode_name(modes[x]));
          if (with_tenants) row.push_back(std::to_string(tenants[t]));
          for (const std::string& value :
               {std::to_string(r.stats.cycles),
                std::to_string(r.stats.instructions),
                format_fixed(reduction(k, m, c, g, x, t), 4),
                std::to_string(r.init_instructions),
                std::to_string(r.hw_loops), std::to_string(r.sw_loops),
                std::to_string(r.code_words),
                std::to_string(r.zolc_stats.continue_events),
                std::to_string(r.zolc_stats.done_events),
                std::to_string(r.zolc_stats.table_writes),
                std::to_string(r.stats.gate_stalls),
                std::to_string(r.stats.load_use_stalls),
                std::to_string(r.stats.control_flush_slots)}) {
            row.push_back(value);
          }
          if (with_tenants) {
            row.push_back(std::to_string(r.context_switches));
            row.push_back(std::to_string(r.context_switch_cycles));
          }
          csv.add_row(std::move(row));
        }
        }
        }
      }
    }
  }
  return csv.render();
}

std::string SweepReport::to_json() const {
  const bool with_geometry = has_geometry_axis();
  const bool with_mode = has_mode_axis();
  const bool with_tenants = has_tenant_axis();
  std::string out = "{\n  \"baseline\": \"";
  out += codegen::machine_name(baseline);
  out += "\",\n  \"cells\": [\n";
  bool first = true;
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    for (std::size_t m = 0; m < machines.size(); ++m) {
      for (std::size_t c = 0; c < configs.size(); ++c) {
        for (std::size_t g = 0; g < geometries.size(); ++g) {
        for (std::size_t x = 0; x < modes.size(); ++x) {
        for (std::size_t t = 0; t < tenants.size(); ++t) {
          const ExperimentResult& r = at(k, m, c, g, x, t);
          if (!first) out += ",\n";
          first = false;
          out += "    {\"kernel\": \"" + json_escape(kernels[k]) +
                 "\", \"machine\": \"" +
                 std::string(codegen::machine_name(machines[m])) +
                 "\", \"config\": \"" + json_escape(config_name(configs[c])) +
                 "\", ";
          if (with_geometry) {
            out += "\"geometry\": \"" + geometries[g].label() + "\", ";
          }
          if (with_mode) {
            out += "\"mode\": \"" + std::string(mode_name(modes[x])) +
                   "\", ";
          }
          if (with_tenants) {
            out += "\"tenants\": " + std::to_string(tenants[t]) + ", ";
          }
          out += "\"cycles\": " + std::to_string(r.stats.cycles) +
                 ", \"instructions\": " +
                 std::to_string(r.stats.instructions) +
                 ", \"reduction_pct\": " +
                 format_fixed(reduction(k, m, c, g, x, t), 4) +
                 ", \"init_instructions\": " +
                 std::to_string(r.init_instructions) +
                 ", \"hw_loops\": " + std::to_string(r.hw_loops) +
                 ", \"sw_loops\": " + std::to_string(r.sw_loops) +
                 ", \"continue_events\": " +
                 std::to_string(r.zolc_stats.continue_events) +
                 ", \"done_events\": " +
                 std::to_string(r.zolc_stats.done_events);
          if (with_tenants) {
            out += ", \"ctx_switches\": " +
                   std::to_string(r.context_switches) +
                   ", \"ctx_switch_cycles\": " +
                   std::to_string(r.context_switch_cycles);
          }
          out += "}";
        }
        }
        }
      }
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

Result<SweepReport> run_sweep(const SweepSpec& spec) {
  flow::CompileCache cache;
  return run_sweep(spec, cache);
}

Result<SweepReport> run_sweep(const SweepSpec& spec,
                              flow::CompileCache& cache) {
  SweepReport report;
  report.baseline = spec.baseline;

  if (spec.kernels.empty()) {
    for (const auto& kernel : kernels::kernel_registry()) {
      report.kernels.emplace_back(kernel->name());
    }
  } else {
    report.kernels = spec.kernels;
  }
  for (const std::string& name : report.kernels) {
    if (kernels::find_kernel(name) == nullptr) {
      return Error{ErrorCode::kUnknownKernel,
                   "sweep: unknown kernel '" + name + "'"};
    }
  }

  if (spec.machines.empty()) {
    report.machines.assign(std::begin(codegen::kAllMachines),
                           std::end(codegen::kAllMachines));
  } else {
    report.machines = spec.machines;
  }
  report.configs = spec.configs.empty()
                       ? std::vector<cpu::PipelineConfig>{cpu::PipelineConfig{}}
                       : spec.configs;
  report.geometries =
      spec.geometries.empty()
          ? std::vector<zolc::ZolcGeometry>{zolc::ZolcGeometry{}}
          : spec.geometries;
  report.modes = spec.modes.empty() ? std::vector<ExecMode>{ExecMode{}}
                                    : spec.modes;
  report.tenants = spec.tenants.empty() ? std::vector<unsigned>{1}
                                        : spec.tenants;
  for (const zolc::ZolcGeometry& geometry : report.geometries) {
    if (!geometry.valid()) {
      return Error{ErrorCode::kBadConfig,
                   "sweep: invalid ZOLC geometry " + geometry.label()};
    }
  }
  // Tenant scheduling and preemption are ISS-engine features; reject the
  // combination with any pipeline mode up front rather than per cell.
  const bool all_iss = [&] {
    for (const ExecMode& mode : report.modes) {
      if (mode.engine != SimEngine::kIss) return false;
    }
    return true;
  }();
  for (const unsigned count : report.tenants) {
    if (count == 0) {
      return Error{ErrorCode::kBadConfig, "sweep: tenant count must be >= 1"};
    }
    if (count > 1 && !all_iss) {
      return Error{ErrorCode::kBadConfig,
                   "sweep: tenant counts > 1 require ISS execution modes"};
    }
  }
  if (spec.preempt_every != 0 && !all_iss) {
    return Error{ErrorCode::kBadConfig,
                 "sweep: preemption requires ISS execution modes"};
  }

  const std::size_t n_machines = report.machines.size();
  const std::size_t n_configs = report.configs.size();
  const std::size_t n_geoms = report.geometries.size();
  const std::size_t n_modes = report.modes.size();
  const std::size_t n_tenants = report.tenants.size();
  const std::size_t n_cells = report.kernels.size() * n_machines * n_configs *
                              n_geoms * n_modes * n_tenants;
  std::vector<CellOutcome> outcomes(n_cells);

  // Each worker claims cell indices from a shared counter and writes only
  // its own slot; cell order (and thus the report) is thread-count
  // independent. Any failure stops further claims -- the sweep is already
  // lost, so remaining cells (up to max_cycles each) are not worth running.
  //
  // The pipeline-config axis repeats the same (kernel, machine, geometry)
  // compile, so all workers draw units from the shared CompileCache: each
  // unit is compiled at most once per cache lifetime and every further cell
  // is a cache hit (per-sweep deltas surface in the report).
  const flow::CompileCache::Stats stats_before = cache.stats();
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1);
         i < n_cells && !failed.load(std::memory_order_relaxed);
         i = next.fetch_add(1)) {
      const std::size_t k =
          i / (n_machines * n_configs * n_geoms * n_modes * n_tenants);
      const std::size_t m =
          (i / (n_configs * n_geoms * n_modes * n_tenants)) % n_machines;
      const std::size_t c = (i / (n_geoms * n_modes * n_tenants)) % n_configs;
      const std::size_t g = (i / (n_modes * n_tenants)) % n_geoms;
      const std::size_t x = (i / n_tenants) % n_modes;
      const std::size_t t = i % n_tenants;
      CellOutcome& out = outcomes[i];
      // Machines that ignore the geometry (non-ZOLC, and uZOLC whose single
      // loop is fixed) would repeat the g == 0 simulation exactly at every
      // other geometry point, so fill those cells by copy afterwards.
      const auto cell_variant =
          codegen::machine_zolc_variant(report.machines[m]);
      if (g > 0 && (!cell_variant.has_value() ||
                    *cell_variant == zolc::ZolcVariant::kMicro)) {
        out.state = CellOutcome::State::kCopyGeometryZero;
        continue;
      }
      try {
        flow::CompileSpec unit_spec;
        unit_spec.kernel = report.kernels[k];
        unit_spec.machine = report.machines[m];
        unit_spec.geometry = report.geometries[g];
        unit_spec.env = spec.env;
        auto unit = cache.get_or_compile(unit_spec);
        flow::RunPlan plan;
        plan.config = report.configs[c];
        plan.max_cycles = spec.max_cycles;
        plan.predecode = spec.predecode;
        plan.mode = report.modes[x];
        plan.timing_reps = spec.timing_reps;
        plan.warm_start = spec.warm_start;
        plan.preempt_every = spec.preempt_every;
        plan.preempt_serialize = spec.preempt_serialize;
        plan.tenants = report.tenants[t];
        auto result =
            unit.ok() ? flow::run(*unit.value(), plan)
                      : Result<ExperimentResult>(std::move(unit).error());
        if (result.ok()) {
          out.state = CellOutcome::State::kOk;
          out.result = std::move(result).value();
        } else {
          out.state = CellOutcome::State::kError;
          out.error = result.error();
          failed.store(true, std::memory_order_relaxed);
        }
      } catch (const std::exception& e) {
        out.state = CellOutcome::State::kError;
        out.error =
            Error{ErrorCode::kSimulation,
                  "sweep cell " + report.kernels[k] + "/" +
                      std::string(codegen::machine_name(report.machines[m])) +
                      ": " + e.what()};
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  unsigned threads = spec.threads != 0 ? spec.threads
                                       : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n_cells == 0 ? 1 : n_cells));

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (failed.load()) {
    for (const CellOutcome& out : outcomes) {
      if (out.state == CellOutcome::State::kError) return out.error;
    }
  }
  const flow::CompileCache::Stats cache_stats = cache.stats();
  report.compile_cache_hits = cache_stats.hits - stats_before.hits;
  report.compile_cache_misses = cache_stats.misses - stats_before.misses;
  report.compile_cache_store_hits =
      cache_stats.store_hits - stats_before.store_hits;
  report.compile_cache_compiles =
      cache_stats.compiles - stats_before.compiles;
  report.cells.reserve(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    if (outcomes[i].state == CellOutcome::State::kCopyGeometryZero) {
      const std::size_t g = (i / (n_modes * n_tenants)) % n_geoms;
      outcomes[i].result = outcomes[i - g * (n_modes * n_tenants)].result;
      outcomes[i].result.geometry = report.geometries[g];
      outcomes[i].state = CellOutcome::State::kOk;
    }
    ZS_ASSERT(outcomes[i].state == CellOutcome::State::kOk);
    SweepCell cell;
    cell.kernel =
        i / (n_machines * n_configs * n_geoms * n_modes * n_tenants);
    cell.machine =
        (i / (n_configs * n_geoms * n_modes * n_tenants)) % n_machines;
    cell.config = (i / (n_geoms * n_modes * n_tenants)) % n_configs;
    cell.geometry = (i / (n_modes * n_tenants)) % n_geoms;
    cell.mode = (i / n_tenants) % n_modes;
    cell.tenant = i % n_tenants;
    cell.result = std::move(outcomes[i].result);
    report.full_prepares += cell.result.full_prepares;
    report.image_resets += cell.result.image_resets;
    report.cells.push_back(std::move(cell));
  }
  return report;
}

unsigned uint_from_args(int argc, char** argv, std::string_view prefix) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (starts_with(arg, prefix)) {
      if (const auto n = parse_int(arg.substr(prefix.size())); n && *n > 0) {
        return static_cast<unsigned>(*n);
      }
    }
  }
  return 0;
}

unsigned threads_from_args(int argc, char** argv) {
  return uint_from_args(argc, argv, "--threads=");
}

}  // namespace zolcsim::harness
