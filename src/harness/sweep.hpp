// Batched sweep engine: declaratively describes a kernel x machine x
// pipeline-config x ZOLC-geometry x execution-mode experiment grid and
// executes it on a worker pool. Every benchmark binary is a thin SweepSpec
// over this engine instead of a hand-rolled serial loop.
//
// Determinism: cells are indexed kernel-major (kernel, then machine, then
// config, then geometry, then mode, then tenant count) and each worker
// writes only its claimed
// cell, so the report -- and everything rendered from it -- is
// byte-identical for any thread count. A sweep that leaves the geometry or
// mode axis at its default renders exactly as a pre-axis sweep did (no
// extra CSV column).
#ifndef ZOLCSIM_HARNESS_SWEEP_HPP
#define ZOLCSIM_HARNESS_SWEEP_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.hpp"

namespace zolcsim::flow {
class CompileCache;
}

namespace zolcsim::harness {

/// The experiment grid. Empty dimension = the engine's default for it
/// (all registry kernels / all machines / the default pipeline config).
struct SweepSpec {
  std::vector<std::string> kernels;
  std::vector<codegen::MachineKind> machines;
  std::vector<cpu::PipelineConfig> configs;
  /// ZOLC geometry axis; empty = the paper-default geometry only.
  std::vector<zolc::ZolcGeometry> geometries;
  /// Execution-mode axis (pipeline / iss / iss-fast); empty = pipeline only.
  std::vector<ExecMode> modes;
  /// Tenant-count axis: N workloads time-sliced over one controller
  /// (flow::run_tenants). Empty = single-tenant only; counts > 1 require
  /// every mode on the ISS engine (kBadConfig otherwise).
  std::vector<unsigned> tenants;
  kernels::KernelEnv env;
  codegen::MachineKind baseline = codegen::MachineKind::kXrDefault;
  std::uint64_t max_cycles = 200'000'000;
  unsigned threads = 0;     ///< 0 = hardware concurrency
  bool predecode = true;    ///< use the predecoded instruction image
  /// Timing repetitions per cell (RunPlan::timing_reps): wall_ns keeps the
  /// minimum over this many identical runs. Use >1 for suites whose cells
  /// are too short for stable one-shot MIPS.
  std::uint64_t timing_reps = 1;
  /// Warm-start run path (RunPlan::warm_start, default on): cells run on
  /// copy-on-write views of each unit's shared prepared image instead of
  /// rebuilding the memory image per run. Architecturally identical either
  /// way (scenario golden digests pin it); off reproduces the historical
  /// cold path for comparison.
  bool warm_start = true;
  /// Preempt-anywhere execution knobs (RunPlan::preempt_every /
  /// preempt_serialize): every ISS cell is preempted at this instruction
  /// interval with a full context save/clobber/restore. Architecturally
  /// invisible -- the differential tests pin that a preempted sweep renders
  /// byte-identical CSVs -- and requires ISS modes when set.
  std::uint64_t preempt_every = 0;
  bool preempt_serialize = false;
};

/// Machines carrying the given ZOLC variants (the variant axis of a sweep
/// expressed in MachineKind terms).
[[nodiscard]] std::vector<codegen::MachineKind> machines_for_variants(
    const std::vector<zolc::ZolcVariant>& variants);

/// One point of the grid. `kernel/machine/config/geometry/mode` index into
/// the report's resolved dimension vectors.
struct SweepCell {
  std::size_t kernel = 0;
  std::size_t machine = 0;
  std::size_t config = 0;
  std::size_t geometry = 0;
  std::size_t mode = 0;
  std::size_t tenant = 0;
  ExperimentResult result;
};

/// Suite-level aggregate for one (machine, config) column.
struct SweepAggregate {
  double avg_reduction = 0.0;  ///< mean %-reduction vs the baseline machine
  double max_reduction = 0.0;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_instructions = 0;
  std::uint64_t gate_stalls = 0;
  std::uint64_t zolc_fetch_events = 0;
  std::uint64_t continue_events = 0;
  std::uint64_t done_events = 0;
  std::uint64_t table_writes = 0;
};

/// Order-stable sweep output. Cell (k, m, c, g, x, t) lives at index
/// ((((k * machines.size() + m) * configs.size() + c) * geometries.size() +
/// g) * modes.size() + x) * tenants.size() + t.
struct SweepReport {
  std::vector<std::string> kernels;             ///< resolved kernel names
  std::vector<codegen::MachineKind> machines;   ///< resolved machine set
  std::vector<cpu::PipelineConfig> configs;     ///< resolved config grid
  std::vector<zolc::ZolcGeometry> geometries;   ///< resolved geometry axis
  std::vector<ExecMode> modes;                  ///< resolved mode axis
  std::vector<unsigned> tenants;                ///< resolved tenant axis
  codegen::MachineKind baseline = codegen::MachineKind::kXrDefault;
  std::vector<SweepCell> cells;

  /// Compile-cache counters for the sweep: `compile_cache_misses` is the
  /// number of units not already in memory (exactly one per distinct
  /// (kernel, machine, geometry) point that ran), `compile_cache_hits` the
  /// number of cells that reused one. With an attached UnitStore, misses
  /// split into `compile_cache_store_hits` (reloaded from disk) and
  /// `compile_cache_compiles` (actually compiled); without one, compiles ==
  /// misses. Not part of the CSV/JSON emitters.
  std::size_t compile_cache_hits = 0;
  std::size_t compile_cache_misses = 0;
  std::size_t compile_cache_store_hits = 0;
  std::size_t compile_cache_compiles = 0;

  /// Warm-start accounting summed over all cells (see ExperimentResult):
  /// full image builds vs O(dirty) copy-on-write resets. BENCH-artifact
  /// material, not part of the CSV/JSON emitters.
  std::uint64_t full_prepares = 0;
  std::uint64_t image_resets = 0;

  [[nodiscard]] const ExperimentResult& at(std::size_t kernel,
                                           std::size_t machine,
                                           std::size_t config = 0,
                                           std::size_t geometry = 0,
                                           std::size_t mode = 0,
                                           std::size_t tenant = 0) const;
  /// Lookup by names; nullptr when the cell is not in the grid.
  [[nodiscard]] const ExperimentResult* find(std::string_view kernel,
                                             codegen::MachineKind machine,
                                             std::size_t config = 0,
                                             std::size_t geometry = 0,
                                             std::size_t mode = 0,
                                             std::size_t tenant = 0) const;

  [[nodiscard]] std::uint64_t cycles(std::size_t kernel, std::size_t machine,
                                     std::size_t config = 0,
                                     std::size_t geometry = 0,
                                     std::size_t mode = 0,
                                     std::size_t tenant = 0) const;
  /// %-reduction of (kernel, machine, config, geometry, mode, tenant) vs
  /// the baseline machine at the same config, geometry, mode, and tenant
  /// count. 0 when the baseline machine is not part of the sweep.
  [[nodiscard]] double reduction(std::size_t kernel, std::size_t machine,
                                 std::size_t config = 0,
                                 std::size_t geometry = 0,
                                 std::size_t mode = 0,
                                 std::size_t tenant = 0) const;
  [[nodiscard]] SweepAggregate aggregate(std::size_t machine,
                                         std::size_t config = 0,
                                         std::size_t geometry = 0,
                                         std::size_t mode = 0,
                                         std::size_t tenant = 0) const;

  /// True iff the sweep explored a non-default geometry axis; the CSV/JSON
  /// emitters add the geometry column only in that case, so paper-default
  /// sweeps keep their historical schema.
  [[nodiscard]] bool has_geometry_axis() const;

  /// True iff the sweep explored a non-default execution-mode axis; like
  /// the geometry column, the mode column appears only in that case.
  [[nodiscard]] bool has_mode_axis() const;

  /// True iff the sweep explored a non-default tenant axis; the emitters
  /// then add the tenants column plus the context-switch cost columns
  /// (ctx_switches, ctx_switch_cycles), keeping single-tenant sweeps on
  /// their historical schema.
  [[nodiscard]] bool has_tenant_axis() const;

  /// Full grid as CSV (one row per cell) / JSON (meta + cell array).
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_json() const;
};

/// Short human-readable name for a pipeline config, e.g.
/// "EX-resolve/rollback" (suffixes "/nofwd" and "/nopredecode" as needed).
[[nodiscard]] std::string config_name(const cpu::PipelineConfig& config);

/// Executes the sweep against a caller-supplied compile cache, so several
/// sweeps (CLI invocations, scenario suites) share one set of warm units.
/// The report's cache counters are the delta this sweep contributed, not the
/// cache's lifetime totals. Any failing cell (lowering, simulation, or
/// output verification) fails the whole sweep with the lowest-index cell's
/// error.
[[nodiscard]] Result<SweepReport> run_sweep(const SweepSpec& spec,
                                            flow::CompileCache& cache);

/// Convenience overload for one-shot sweeps: a private cache per call.
[[nodiscard]] Result<SweepReport> run_sweep(const SweepSpec& spec);

/// Parses a "--name=N" unsigned flag from argv (for the bench binaries);
/// 0 when absent, malformed, or non-positive.
[[nodiscard]] unsigned uint_from_args(int argc, char** argv,
                                      std::string_view prefix);

/// Parses "--threads=N" from argv; 0 when absent.
[[nodiscard]] unsigned threads_from_args(int argc, char** argv);

}  // namespace zolcsim::harness

#endif  // ZOLCSIM_HARNESS_SWEEP_HPP
