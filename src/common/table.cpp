#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/contracts.hpp"

namespace zolcsim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ZS_EXPECTS(!headers_.empty());
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t column, Align align) {
  ZS_EXPECTS(column < aligns_.size());
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  ZS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TextTable::add_separator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto emit_cell = [&](std::ostringstream& os, const std::string& text,
                             std::size_t c) {
    const std::size_t pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };

  const auto emit_separator = [&](std::ostringstream& os) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c > 0) os << "-+-";
      os << std::string(widths[c], '-');
    }
    os << '\n';
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << " | ";
    emit_cell(os, headers_[c], c);
  }
  os << '\n';
  emit_separator(os);
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_separator(os);
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c > 0) os << " | ";
      emit_cell(os, row.cells[c], c);
    }
    os << '\n';
  }
  return os.str();
}

std::string ascii_bar(double value, double scale, int max_width) {
  ZS_EXPECTS(scale > 0.0 && max_width > 0);
  const double clamped = std::clamp(value, 0.0, scale);
  const int n = static_cast<int>(clamped / scale * max_width + 0.5);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace zolcsim
