// Result<T>: a lightweight expected-like type for operations with anticipated
// failure modes (parsing, assembling, configuration). Per the Core Guidelines
// (E.2/E.14 area), exceptions are reserved for contract violations and
// simulator traps; everything a caller is expected to handle flows through
// Result.
#ifndef ZOLCSIM_COMMON_RESULT_HPP
#define ZOLCSIM_COMMON_RESULT_HPP

#include <string>
#include <utility>
#include <variant>

#include "common/contracts.hpp"

namespace zolcsim {

/// An error with a human-readable message and optional source location info
/// (used by the assembler to report line numbers).
struct Error {
  std::string message;
  int line = 0;  ///< 1-based source line when applicable; 0 = not applicable.

  [[nodiscard]] std::string to_string() const {
    if (line > 0) {
      return "line " + std::to_string(line) + ": " + message;
    }
    return message;
  }
};

/// Holds either a value of type T or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return error;` both work
  // at call sites (mirrors std::expected).
  Result(T value) : data_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return ok(); }

  /// Value access. Precondition: ok().
  [[nodiscard]] const T& value() const& {
    ZS_EXPECTS(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    ZS_EXPECTS(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    ZS_EXPECTS(ok());
    return std::get<T>(std::move(data_));
  }

  /// Error access. Precondition: !ok().
  [[nodiscard]] const Error& error() const& {
    ZS_EXPECTS(!ok());
    return std::get<Error>(data_);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no value to return.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), has_error_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return !has_error_; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const& {
    ZS_EXPECTS(!ok());
    return error_;
  }

 private:
  Error error_;
  bool has_error_ = false;
};

}  // namespace zolcsim

#endif  // ZOLCSIM_COMMON_RESULT_HPP
