// Result<T>: a lightweight expected-like type for operations with anticipated
// failure modes (parsing, assembling, configuration). Per the Core Guidelines
// (E.2/E.14 area), exceptions are reserved for contract violations and
// simulator traps; everything a caller is expected to handle flows through
// Result.
//
// Errors are structured: a machine-checkable ErrorCode (what class of thing
// went wrong), a human-readable message (the innermost detail), and a context
// chain that grows as the error propagates up through the staged toolchain
// (kernel -> lowering -> run), so callers can both branch on the code and
// print a full "where it happened" trail.
#ifndef ZOLCSIM_COMMON_RESULT_HPP
#define ZOLCSIM_COMMON_RESULT_HPP

#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "common/contracts.hpp"

namespace zolcsim {

/// Machine-checkable failure classes. Tests and tools branch on these, never
/// on message text.
enum class ErrorCode : std::uint8_t {
  kUnknown = 0,     ///< unclassified (avoid: classify at the throw site)
  kParse,           ///< assembler syntax / directive / operand errors
  kEncode,          ///< instruction encoding range violations (imm/offset)
  kBadConfig,       ///< invalid geometry, sweep spec, or CLI usage
  kUnknownKernel,   ///< kernel name not present in any registry
  kInvalidKernel,   ///< malformed KIR (reserved regs, zero-trip loops, ...)
  kCapacity,        ///< ZOLC table / window capacity overrun, no SW fallback
  kSimulation,      ///< simulator trap or cycle-budget exhaustion
  kVerifyMismatch,  ///< output differs from the golden reference
  kIo,              ///< file read/write failure (CLI)
  kThreshold,       ///< scenario perf threshold violated (cycles / MIPS)

  // zolcscan rejection classes: why a counted loop was not accelerable.
  // Rejections are ordinary analysis output (the scan itself still
  // succeeds), but they share the Error shape so tests and tools branch on
  // the code, never on message text.
  kScanNotInnermost,     ///< loop contains a nested loop (uZOLC is 1-level)
  kScanIrregularShape,   ///< back edge is not the addi/blt counted idiom
  kScanMultiExit,        ///< multiple exits/entries need ZOLCfull
  kScanNonConstantBound, ///< index/bound are not simple constants
  kScanUnsafeBody,       ///< body writes index/bound or makes calls
  kScanTailTargeted,     ///< a branch targets the patched tail
  kScanLiveIndex,        ///< index register is live after the loop

  // On-disk unit store (flow::UnitStore) artifact rejections.
  kStoreCorrupt,  ///< artifact fails shape / integrity / key checks
  kStoreStale,    ///< artifact written under a different toolchain tag

  // Accelerator context switching (zolc::ZolcContext).
  kBadContext,  ///< context/snapshot does not fit the controller's geometry
};

[[nodiscard]] constexpr std::string_view error_code_name(
    ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kEncode: return "encode";
    case ErrorCode::kBadConfig: return "bad-config";
    case ErrorCode::kUnknownKernel: return "unknown-kernel";
    case ErrorCode::kInvalidKernel: return "invalid-kernel";
    case ErrorCode::kCapacity: return "capacity";
    case ErrorCode::kSimulation: return "simulation";
    case ErrorCode::kVerifyMismatch: return "verify-mismatch";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kThreshold: return "threshold";
    case ErrorCode::kScanNotInnermost: return "scan-not-innermost";
    case ErrorCode::kScanIrregularShape: return "scan-irregular-shape";
    case ErrorCode::kScanMultiExit: return "scan-multi-exit";
    case ErrorCode::kScanNonConstantBound: return "scan-non-constant-bound";
    case ErrorCode::kScanUnsafeBody: return "scan-unsafe-body";
    case ErrorCode::kScanTailTargeted: return "scan-tail-targeted";
    case ErrorCode::kScanLiveIndex: return "scan-live-index";
    case ErrorCode::kStoreCorrupt: return "store-corrupt";
    case ErrorCode::kStoreStale: return "store-stale";
    case ErrorCode::kBadContext: return "bad-context";
  }
  return "?";
}

/// Every ErrorCode, for name round-trips (keep in sync with the enum).
inline constexpr ErrorCode kAllErrorCodes[] = {
    ErrorCode::kUnknown,        ErrorCode::kParse,
    ErrorCode::kEncode,         ErrorCode::kBadConfig,
    ErrorCode::kUnknownKernel,  ErrorCode::kInvalidKernel,
    ErrorCode::kCapacity,       ErrorCode::kSimulation,
    ErrorCode::kVerifyMismatch, ErrorCode::kIo,
    ErrorCode::kThreshold,      ErrorCode::kScanNotInnermost,
    ErrorCode::kScanIrregularShape, ErrorCode::kScanMultiExit,
    ErrorCode::kScanNonConstantBound, ErrorCode::kScanUnsafeBody,
    ErrorCode::kScanTailTargeted, ErrorCode::kScanLiveIndex,
    ErrorCode::kStoreCorrupt,   ErrorCode::kStoreStale,
    ErrorCode::kBadContext,
};

/// Inverse of error_code_name(); kUnknown for unrecognized names (serialized
/// artifacts from newer builds degrade gracefully rather than failing).
[[nodiscard]] constexpr ErrorCode parse_error_code(
    std::string_view name) noexcept {
  for (const ErrorCode code : kAllErrorCodes) {
    if (error_code_name(code) == name) return code;
  }
  return ErrorCode::kUnknown;
}

/// A structured error: code + innermost message + outermost-first context
/// chain, with optional source line info (used by the assembler).
struct Error {
  ErrorCode code = ErrorCode::kUnknown;
  std::string message;
  std::vector<std::string> context;  ///< outermost frame first
  int line = 0;  ///< 1-based source line when applicable; 0 = not applicable.

  Error() = default;
  Error(ErrorCode code, std::string message, int line = 0)
      : code(code), message(std::move(message)), line(line) {}

  /// Returns this error with `frame` prepended as the new outermost context
  /// (value-chaining style: `return std::move(e).with_context("lowering")`).
  [[nodiscard]] Error with_context(std::string frame) && {
    context.insert(context.begin(), std::move(frame));
    return std::move(*this);
  }
  [[nodiscard]] Error with_context(std::string frame) const& {
    Error copy = *this;
    return std::move(copy).with_context(std::move(frame));
  }

  /// "ctx1: ctx2: line N: message" -- the full trail, outermost first.
  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const std::string& frame : context) {
      out += frame;
      out += ": ";
    }
    if (line > 0) {
      out += "line " + std::to_string(line) + ": ";
    }
    out += message;
    return out;
  }
};

/// Holds either a value of type T or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  using value_type = T;

  // Intentionally implicit so `return value;` and `return error;` both work
  // at call sites (mirrors std::expected).
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return ok(); }

  /// Value access. Precondition: ok().
  [[nodiscard]] const T& value() const& {
    ZS_EXPECTS(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    ZS_EXPECTS(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    ZS_EXPECTS(ok());
    return std::get<T>(std::move(data_));
  }

  /// Error access. Precondition: !ok().
  [[nodiscard]] const Error& error() const& {
    ZS_EXPECTS(!ok());
    return std::get<Error>(data_);
  }
  [[nodiscard]] Error&& error() && {
    ZS_EXPECTS(!ok());
    return std::get<Error>(std::move(data_));
  }

  /// Applies `f` to the value; errors pass through untouched.
  /// `Result<T> -> Result<decltype(f(T))>`.
  template <typename F>
  [[nodiscard]] auto map(F&& f) && -> Result<std::invoke_result_t<F, T&&>> {
    if (!ok()) return std::get<Error>(std::move(data_));
    return std::forward<F>(f)(std::get<T>(std::move(data_)));
  }
  template <typename F>
  [[nodiscard]] auto map(
      F&& f) const& -> Result<std::invoke_result_t<F, const T&>> {
    if (!ok()) return std::get<Error>(data_);
    return std::forward<F>(f)(std::get<T>(data_));
  }

  /// Monadic chain: `f` returns a Result itself; errors short-circuit.
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) && -> std::invoke_result_t<F, T&&> {
    if (!ok()) return std::get<Error>(std::move(data_));
    return std::forward<F>(f)(std::get<T>(std::move(data_)));
  }
  template <typename F>
  [[nodiscard]] auto and_then(
      F&& f) const& -> std::invoke_result_t<F, const T&> {
    if (!ok()) return std::get<Error>(data_);
    return std::forward<F>(f)(std::get<T>(data_));
  }

  /// Adds an outermost context frame to the error, if any.
  [[nodiscard]] Result<T> with_context(std::string frame) && {
    if (ok()) return std::move(*this);
    return std::get<Error>(std::move(data_)).with_context(std::move(frame));
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no value to return.
template <>
class [[nodiscard]] Result<void> {
 public:
  using value_type = void;

  Result() = default;
  Result(Error error) : error_(std::move(error)), has_error_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return !has_error_; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const& {
    ZS_EXPECTS(!ok());
    return error_;
  }
  [[nodiscard]] Error&& error() && {
    ZS_EXPECTS(!ok());
    return std::move(error_);
  }

  /// Monadic chain for void results: `f` takes no arguments.
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) const& -> std::invoke_result_t<F> {
    if (!ok()) return error_;
    return std::forward<F>(f)();
  }

  [[nodiscard]] Result<void> with_context(std::string frame) && {
    if (ok()) return {};
    return std::move(error_).with_context(std::move(frame));
  }

 private:
  Error error_;
  bool has_error_ = false;
};

}  // namespace zolcsim

#endif  // ZOLCSIM_COMMON_RESULT_HPP
