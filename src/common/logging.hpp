// Minimal leveled logger. No global mutable state beyond the level knob;
// output goes to stderr so benchmark/table output on stdout stays clean.
#ifndef ZOLCSIM_COMMON_LOGGING_HPP
#define ZOLCSIM_COMMON_LOGGING_HPP

#include <sstream>
#include <string_view>

namespace zolcsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the current global log threshold (default kWarn).
LogLevel log_level() noexcept;

/// Sets the global log threshold.
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, std::string_view message);
}  // namespace detail

/// Logs `message` if `level` passes the threshold.
inline void log(LogLevel level, std::string_view message) {
  if (level >= log_level() && log_level() != LogLevel::kOff) {
    detail::log_emit(level, message);
  }
}

}  // namespace zolcsim

#define ZS_LOG_DEBUG(msg)                                        \
  do {                                                           \
    if (::zolcsim::log_level() <= ::zolcsim::LogLevel::kDebug) { \
      std::ostringstream zs_log_os;                              \
      zs_log_os << msg;                                          \
      ::zolcsim::log(::zolcsim::LogLevel::kDebug, zs_log_os.str()); \
    }                                                            \
  } while (false)

#define ZS_LOG_INFO(msg)                                         \
  do {                                                           \
    if (::zolcsim::log_level() <= ::zolcsim::LogLevel::kInfo) {  \
      std::ostringstream zs_log_os;                              \
      zs_log_os << msg;                                          \
      ::zolcsim::log(::zolcsim::LogLevel::kInfo, zs_log_os.str()); \
    }                                                            \
  } while (false)

#define ZS_LOG_WARN(msg)                                         \
  do {                                                           \
    if (::zolcsim::log_level() <= ::zolcsim::LogLevel::kWarn) {  \
      std::ostringstream zs_log_os;                              \
      zs_log_os << msg;                                          \
      ::zolcsim::log(::zolcsim::LogLevel::kWarn, zs_log_os.str()); \
    }                                                            \
  } while (false)

#endif  // ZOLCSIM_COMMON_LOGGING_HPP
