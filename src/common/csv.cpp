#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace zolcsim {

namespace {

std::string escape_field(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ZS_EXPECTS(!headers_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  ZS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape_field(row[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << render();
  return static_cast<bool>(out);
}

}  // namespace zolcsim
