// Contract-checking macros in the style of the C++ Core Guidelines' Expects /
// Ensures (I.6, I.8). Violations signal programming errors and throw
// ContractViolation so tests can assert on them; they are never used for
// expected runtime failures (those use Result<T>).
#ifndef ZOLCSIM_COMMON_CONTRACTS_HPP
#define ZOLCSIM_COMMON_CONTRACTS_HPP

#include <stdexcept>
#include <string>

namespace zolcsim {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace detail
}  // namespace zolcsim

/// Precondition check: argument/state requirements at function entry.
#define ZS_EXPECTS(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::zolcsim::detail::contract_fail("precondition", #cond, __FILE__,   \
                                       __LINE__);                         \
    }                                                                     \
  } while (false)

/// Postcondition check: guarantees at function exit.
#define ZS_ENSURES(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::zolcsim::detail::contract_fail("postcondition", #cond, __FILE__,  \
                                       __LINE__);                         \
    }                                                                     \
  } while (false)

/// Internal invariant check (mid-function assertions).
#define ZS_ASSERT(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::zolcsim::detail::contract_fail("invariant", #cond, __FILE__,      \
                                       __LINE__);                         \
    }                                                                     \
  } while (false)

/// Marks unreachable control flow.
#define ZS_UNREACHABLE(msg)                                               \
  ::zolcsim::detail::contract_fail("unreachable", msg, __FILE__, __LINE__)

#endif  // ZOLCSIM_COMMON_CONTRACTS_HPP
