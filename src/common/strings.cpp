#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace zolcsim {

namespace {
constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    s.remove_prefix(1);
    if (s.empty()) return std::nullopt;
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    s.remove_prefix(2);
  }
  std::uint64_t acc = 0;
  for (char c : s) {
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    if (digit < 0 || digit >= base) return std::nullopt;
    const std::uint64_t next = acc * static_cast<std::uint64_t>(base) +
                               static_cast<std::uint64_t>(digit);
    if (next < acc) return std::nullopt;  // overflow
    acc = next;
  }
  if (acc > static_cast<std::uint64_t>(INT64_MAX)) {
    // Allow INT64_MIN via "-9223372036854775808".
    if (!(negative && acc == static_cast<std::uint64_t>(INT64_MAX) + 1)) {
      return std::nullopt;
    }
  }
  const auto magnitude = static_cast<std::int64_t>(acc);
  return negative ? -magnitude : magnitude;
}

std::string hex32(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08X", value);
  return buf;
}

std::string hex64(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::optional<std::uint64_t> parse_hex64(std::string_view s) noexcept {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t acc = 0;
  for (const char c : s) {
    int digit = -1;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    if (digit < 0) return std::nullopt;
    acc = (acc << 4) | static_cast<std::uint64_t>(digit);
  }
  return acc;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace zolcsim
