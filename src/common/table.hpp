// ASCII table formatter used by the benchmark harness to print the paper's
// tables and Figure-2-style series in aligned columns.
#ifndef ZOLCSIM_COMMON_TABLE_HPP
#define ZOLCSIM_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace zolcsim {

/// Column alignment inside a TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them with aligned columns,
/// a header separator, and optional per-column alignment.
class TextTable {
 public:
  /// Creates a table with the given column headers (left-aligned header row).
  explicit TextTable(std::vector<std::string> headers);

  /// Sets alignment for a column (default kRight for all but column 0).
  void set_align(std::size_t column, Align align);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Renders the table as a multi-line string (trailing newline included).
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Renders a horizontal ASCII bar of proportional width: value/scale of
/// `max_width` characters, using '#' glyphs. Used for Figure-2 style charts.
[[nodiscard]] std::string ascii_bar(double value, double scale, int max_width);

}  // namespace zolcsim

#endif  // ZOLCSIM_COMMON_TABLE_HPP
