// Minimal JSON reader for the declarative layers (scenario suites, BENCH
// artifact round-trips). Full RFC 8259 value grammar minus the exotica the
// repo never emits: numbers are parsed as double (every count we carry fits
// a 53-bit mantissa exactly) and \uXXXX escapes outside ASCII are passed
// through verbatim. Parse failures are Result errors (ErrorCode::kParse)
// carrying the 1-based line of the offending token, matching the assembler's
// error shape.
#ifndef ZOLCSIM_COMMON_JSON_HPP
#define ZOLCSIM_COMMON_JSON_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace zolcsim::json {

/// A parsed JSON value. Object member order is preserved (emitters are
/// deterministic, so round-trip tests can compare member sequences).
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };
  using Member = std::pair<std::string, Value>;

  Value() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors. Precondition: the matching kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Number as an unsigned integer; nullopt when not a number, negative,
  /// non-integral, or beyond 2^53 (where double stops being exact).
  [[nodiscard]] std::optional<std::uint64_t> as_uint() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Parses one JSON document (trailing non-whitespace is an error).
[[nodiscard]] Result<Value> parse(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
[[nodiscard]] std::string escape(std::string_view s);

/// Renders `value` back to compact JSON text (no whitespace). Deterministic:
/// member order is preserved, integral numbers print without a fraction, and
/// non-integral numbers use the shortest form that parses back to the same
/// double -- so parse(serialize(v)) reproduces v exactly. Used wherever a
/// parsed sub-document must be handed to another parser (the serve
/// protocol's inline suite objects).
[[nodiscard]] std::string serialize(const Value& value);

}  // namespace zolcsim::json

#endif  // ZOLCSIM_COMMON_JSON_HPP
