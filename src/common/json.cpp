#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <system_error>

#include "common/contracts.hpp"

namespace zolcsim::json {

bool Value::as_bool() const {
  ZS_EXPECTS(is_bool());
  return bool_;
}

double Value::as_number() const {
  ZS_EXPECTS(is_number());
  return number_;
}

const std::string& Value::as_string() const {
  ZS_EXPECTS(is_string());
  return string_;
}

const std::vector<Value>& Value::items() const {
  ZS_EXPECTS(is_array());
  return items_;
}

const std::vector<Value::Member>& Value::members() const {
  ZS_EXPECTS(is_object());
  return members_;
}

std::optional<std::uint64_t> Value::as_uint() const {
  if (!is_number() || number_ < 0) return std::nullopt;
  constexpr double kExactMax = 9007199254740992.0;  // 2^53
  if (number_ > kExactMax) return std::nullopt;
  const auto n = static_cast<std::uint64_t>(number_);
  if (static_cast<double>(n) != number_) return std::nullopt;  // fractional
  return n;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<Member> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> parse_document() {
    auto value = parse_value();
    if (!value.ok()) return value;
    skip_whitespace();
    if (pos_ != text_.size()) {
      return fail("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  Error fail(std::string message) const {
    return Error{ErrorCode::kParse, std::move(message), line_};
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Result<Value> parse_value() {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    auto value = parse_value_inner();
    --depth_;
    return value;
  }

  Result<Value> parse_value_inner() {
    skip_whitespace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return std::move(s).error();
      return Value::make_string(std::move(s).value());
    }
    if (consume_word("true")) return Value::make_bool(true);
    if (consume_word("false")) return Value::make_bool(false);
    if (consume_word("null")) return Value::make_null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    return fail(std::string("unexpected character '") + c + "'");
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("malformed number");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("malformed number: digit expected after '.'");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("malformed number: digit expected in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value::make_number(std::strtod(token.c_str(), nullptr));
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') return fail("unterminated string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {  // pass through as literal escape text; we never emit these
            out += "\\u" + std::string(text_.substr(pos_ - 4, 4));
          }
          break;
        }
        default:
          return fail(std::string("unknown escape '\\") + esc + "'");
      }
    }
    return fail("unterminated string");
  }

  Result<Value> parse_array() {
    ZS_ASSERT(consume('['));
    std::vector<Value> items;
    skip_whitespace();
    if (consume(']')) return Value::make_array(std::move(items));
    while (true) {
      auto item = parse_value();
      if (!item.ok()) return item;
      items.push_back(std::move(item).value());
      skip_whitespace();
      if (consume(']')) return Value::make_array(std::move(items));
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Result<Value> parse_object() {
    ZS_ASSERT(consume('{'));
    std::vector<Value::Member> members;
    skip_whitespace();
    if (consume('}')) return Value::make_object(std::move(members));
    while (true) {
      skip_whitespace();
      auto key = parse_string();
      if (!key.ok()) return std::move(key).error();
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      auto value = parse_value();
      if (!value.ok()) return value;
      members.emplace_back(std::move(key).value(), std::move(value).value());
      skip_whitespace();
      if (consume('}')) return Value::make_object(std::move(members));
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int depth_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

namespace {

void serialize_into(const Value& value, std::string& out) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kNumber: {
      const double n = value.as_number();
      // Integral doubles within the 53-bit exact window print as integers
      // (the form every count in the repo's documents uses); everything
      // else takes the shortest round-trip form from to_chars.
      constexpr double kExactMax = 9007199254740992.0;  // 2^53
      if (n == static_cast<double>(static_cast<std::int64_t>(n)) &&
          n >= -kExactMax && n <= kExactMax) {
        out += std::to_string(static_cast<std::int64_t>(n));
        break;
      }
      char buffer[64];
      const auto [end, ec] =
          std::to_chars(buffer, buffer + sizeof(buffer), n);
      ZS_ASSERT(ec == std::errc());
      out.append(buffer, end);
      break;
    }
    case Value::Kind::kString:
      out += '"';
      out += escape(value.as_string());
      out += '"';
      break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& item : value.items()) {
        if (!first) out += ',';
        first = false;
        serialize_into(item, out);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const Value::Member& member : value.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(member.first);
        out += "\":";
        serialize_into(member.second, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string serialize(const Value& value) {
  std::string out;
  serialize_into(value, out);
  return out;
}

}  // namespace zolcsim::json
