// CSV writer used by the benchmark harness to dump machine-readable copies
// of every regenerated table/figure next to the ASCII rendering.
#ifndef ZOLCSIM_COMMON_CSV_HPP
#define ZOLCSIM_COMMON_CSV_HPP

#include <string>
#include <vector>

namespace zolcsim {

/// Accumulates rows and renders RFC-4180-style CSV (quoting only when
/// needed: commas, quotes, or newlines in a field).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders the full document including the header row.
  [[nodiscard]] std::string render() const;

  /// Writes render() to `path`. Returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zolcsim

#endif  // ZOLCSIM_COMMON_CSV_HPP
