// Bit-manipulation helpers used by the ISA encoder/decoder and the ZOLC
// storage model. All operations are on unsigned types (ES.101) with explicit
// widths; sign extension is the single place signedness is reintroduced.
#ifndef ZOLCSIM_COMMON_BITUTIL_HPP
#define ZOLCSIM_COMMON_BITUTIL_HPP

#include <cstdint>

#include "common/contracts.hpp"

namespace zolcsim {

/// Returns a mask with the low `width` bits set. width in [0, 32].
constexpr std::uint32_t mask32(unsigned width) noexcept {
  return width >= 32 ? 0xFFFF'FFFFu : ((1u << width) - 1u);
}

/// Returns a mask with the low `width` bits set. width in [0, 64].
constexpr std::uint64_t mask64(unsigned width) noexcept {
  return width >= 64 ? ~0ull : ((1ull << width) - 1ull);
}

/// Extracts `width` bits of `value` starting at bit `lsb`.
constexpr std::uint32_t extract_bits(std::uint32_t value, unsigned lsb,
                                     unsigned width) noexcept {
  return (value >> lsb) & mask32(width);
}

/// Extracts `width` bits of a 64-bit `value` starting at bit `lsb`.
constexpr std::uint64_t extract_bits64(std::uint64_t value, unsigned lsb,
                                       unsigned width) noexcept {
  return (value >> lsb) & mask64(width);
}

/// Returns `value` with `width` bits of `field` inserted at bit `lsb`.
/// Precondition: field fits in `width` bits.
inline std::uint32_t insert_bits(std::uint32_t value, unsigned lsb,
                                 unsigned width, std::uint32_t field) {
  ZS_EXPECTS(lsb < 32 && lsb + width <= 32);
  ZS_EXPECTS((field & ~mask32(width)) == 0);
  const std::uint32_t m = mask32(width) << lsb;
  return (value & ~m) | (field << lsb);
}

/// Returns `value` with `width` bits of `field` inserted at bit `lsb` (64b).
inline std::uint64_t insert_bits64(std::uint64_t value, unsigned lsb,
                                   unsigned width, std::uint64_t field) {
  ZS_EXPECTS(lsb < 64 && lsb + width <= 64);
  ZS_EXPECTS((field & ~mask64(width)) == 0);
  const std::uint64_t m = mask64(width) << lsb;
  return (value & ~m) | (field << lsb);
}

/// Sign-extends the low `width` bits of `value` to a signed 32-bit integer.
constexpr std::int32_t sign_extend(std::uint32_t value,
                                   unsigned width) noexcept {
  const std::uint32_t m = mask32(width);
  const std::uint32_t v = value & m;
  const std::uint32_t sign_bit = 1u << (width - 1);
  return static_cast<std::int32_t>((v ^ sign_bit) - sign_bit);
}

/// True iff the signed value fits in `width` bits (two's complement).
constexpr bool fits_signed(std::int64_t value, unsigned width) noexcept {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True iff the unsigned value fits in `width` bits.
constexpr bool fits_unsigned(std::uint64_t value, unsigned width) noexcept {
  return width >= 64 || value <= mask64(width);
}

/// True iff `value` is aligned to `align` (a power of two).
constexpr bool is_aligned(std::uint32_t value, std::uint32_t align) noexcept {
  return (value & (align - 1u)) == 0u;
}

/// Rounds `value` up to the next multiple of `align` (a power of two).
constexpr std::uint32_t align_up(std::uint32_t value,
                                 std::uint32_t align) noexcept {
  return (value + align - 1u) & ~(align - 1u);
}

/// Number of bits needed to represent `n` distinct values (ceil(log2(n))),
/// with bits_for_values(1) == 0.
constexpr unsigned bits_for_values(std::uint64_t n) noexcept {
  unsigned bits = 0;
  std::uint64_t span = 1;
  while (span < n) {
    span <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace zolcsim

#endif  // ZOLCSIM_COMMON_BITUTIL_HPP
