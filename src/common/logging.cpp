#include "common/logging.hpp"

#include <atomic>
#include <iostream>

namespace zolcsim {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, std::string_view message) {
  std::cerr << "[zolcsim " << level_tag(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace zolcsim
