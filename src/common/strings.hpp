// Small string helpers shared by the assembler and report formatters.
#ifndef ZOLCSIM_COMMON_STRINGS_HPP
#define ZOLCSIM_COMMON_STRINGS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace zolcsim {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits `s` into non-empty whitespace-separated tokens.
[[nodiscard]] std::vector<std::string_view> split_whitespace(
    std::string_view s);

/// Lowercases ASCII characters.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True iff `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s,
                               std::string_view prefix) noexcept;

/// Parses a signed integer. Accepts decimal, 0x-hex, 0b-binary, and a leading
/// '-'. Returns nullopt on any malformed input or overflow past 64 bits.
[[nodiscard]] std::optional<std::int64_t> parse_int(
    std::string_view s) noexcept;

/// Formats `value` as 0xXXXXXXXX (8 hex digits).
[[nodiscard]] std::string hex32(std::uint32_t value);

/// Formats `value` as 16 lowercase hex digits (no 0x prefix).
[[nodiscard]] std::string hex64(std::uint64_t value);

/// Parses exactly 16 lowercase/uppercase hex digits (the hex64 form).
[[nodiscard]] std::optional<std::uint64_t> parse_hex64(
    std::string_view s) noexcept;

/// FNV-1a 64-bit content hash: the scenario goldens' digest of a rendered
/// CSV. Not cryptographic -- it pins deterministic simulator output, it does
/// not defend against an adversary.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Formats a double with `digits` digits after the decimal point.
[[nodiscard]] std::string format_fixed(double value, int digits);

}  // namespace zolcsim

#endif  // ZOLCSIM_COMMON_STRINGS_HPP
