// Sparse byte-addressable memory model. Little-endian, paged allocation so a
// full 4 GiB address space can be simulated with only the touched pages
// resident. Misaligned accesses raise MemoryFault (the modelled core, like
// XiRisc, has no misaligned access support).
//
// A Memory can additionally reference an immutable shared baseline image
// (copy-on-write): reads fall through to the baseline, the first write to a
// page privatizes a local copy, and reset_to_baseline() drops the private
// (dirty) pages in O(dirty) — the warm-start alternative to rebuilding the
// image with Kernel::setup.
#ifndef ZOLCSIM_MEM_MEMORY_HPP
#define ZOLCSIM_MEM_MEMORY_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace zolcsim::mem {

/// Thrown on misaligned accesses. Models a precise alignment trap.
class MemoryFault : public std::runtime_error {
 public:
  explicit MemoryFault(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Access counters, reset with Memory::reset_stats().
struct MemoryStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class Memory {
 public:
  static constexpr std::uint32_t kPageBits = 12;  // 4 KiB pages
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;

  Memory() = default;

  // Reads. Unwritten memory reads as zero.
  [[nodiscard]] std::uint8_t read8(std::uint32_t addr) const;
  [[nodiscard]] std::uint16_t read16(std::uint32_t addr) const;
  [[nodiscard]] std::uint32_t read32(std::uint32_t addr) const;

  // Writes.
  void write8(std::uint32_t addr, std::uint8_t value);
  void write16(std::uint32_t addr, std::uint16_t value);
  void write32(std::uint32_t addr, std::uint32_t value);

  /// Instruction fetch: same as read32 but not counted in data statistics.
  [[nodiscard]] std::uint32_t fetch32(std::uint32_t addr) const;

  /// Copies a block of bytes into memory starting at `addr`.
  void load_bytes(std::uint32_t addr, std::span<const std::uint8_t> bytes);

  /// Copies 32-bit words (little-endian) into memory starting at `addr`.
  void load_words(std::uint32_t addr, std::span<const std::uint32_t> words);

  /// Reads `count` words starting at `addr` into a vector.
  [[nodiscard]] std::vector<std::uint32_t> read_words(std::uint32_t addr,
                                                      std::size_t count) const;

  [[nodiscard]] const MemoryStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = MemoryStats{}; }

  /// Number of locally resident (touched) pages; used by tests to verify
  /// sparseness. Baseline pages are not counted: with a baseline attached
  /// this is the dirty-page count.
  [[nodiscard]] std::size_t resident_pages() const noexcept {
    return pages_.size();
  }

  // ---- copy-on-write baseline ----

  /// Attaches `baseline` as the immutable shared image this memory reads
  /// through. Requires: `baseline` non-null, itself baseline-free (no COW
  /// chains), and this memory still empty (no pages written yet). The
  /// baseline must not be mutated while any view references it.
  void set_baseline(std::shared_ptr<const Memory> baseline);

  [[nodiscard]] bool has_baseline() const noexcept {
    return baseline_ != nullptr;
  }
  [[nodiscard]] const std::shared_ptr<const Memory>& baseline() const noexcept {
    return baseline_;
  }

  /// Discards every private page so the memory reads as the baseline image
  /// again, in O(dirty pages). Requires a baseline. Statistics are kept;
  /// reset them separately if the next run should start from zero.
  void reset_to_baseline();

  /// Pages privatized (or newly created) since set_baseline(); without a
  /// baseline, identical to resident_pages().
  [[nodiscard]] std::size_t dirty_pages() const noexcept {
    return pages_.size();
  }

  /// Incremented whenever a raw page pointer handed out earlier may have
  /// become invalid: a baseline page is privatized (the read pointer now
  /// aliases stale data) or reset_to_baseline() frees private pages.
  /// Consumers that cache peek_page()/touch_page() results across calls
  /// (cpu::LoopSummarizer) must drop their caches when this changes.
  [[nodiscard]] std::uint64_t cow_epoch() const noexcept { return cow_epoch_; }

  /// Content equality over the union of both memories' effective pages
  /// (private pages shadowing baseline pages); a page resident on one side
  /// only must be all-zero (absent memory reads as zero, so residency
  /// itself is not architectural state). Statistics are not compared. Used
  /// by co-simulation tests to compare full images.
  friend bool operator==(const Memory& a, const Memory& b);

  // Raw page access for the ISS summary tier (cpu::LoopSummarizer), which
  // caches the returned pointers across a replay. Without a baseline, pages
  // are never moved or freed once allocated, so the pointers stay valid for
  // the Memory's lifetime. With a baseline, peek_page() may return a
  // baseline page that a later write shadows, and reset_to_baseline() frees
  // private pages — both bump cow_epoch(), which caching consumers must
  // check. These do no statistics accounting: callers batch the counts
  // through count_accesses() so MemoryStats stay exact.

  /// The resident page containing `addr` (private first, then baseline), or
  /// nullptr when the page was never written (such memory reads as zero).
  [[nodiscard]] const std::uint8_t* peek_page(std::uint32_t addr) const {
    return page_for_read(addr);
  }

  /// The writable (private) page containing `addr`, allocated — and copied
  /// from the baseline when one covers it — on first touch.
  [[nodiscard]] std::uint8_t* touch_page(std::uint32_t addr) {
    return page_for_write(addr);
  }

  /// Batch statistics accounting for accesses performed through raw pages.
  void count_accesses(std::uint64_t reads, std::uint64_t bytes_read,
                      std::uint64_t writes,
                      std::uint64_t bytes_written) const noexcept {
    stats_.reads += reads;
    stats_.bytes_read += bytes_read;
    stats_.writes += writes;
    stats_.bytes_written += bytes_written;
  }

 private:
  using Page = std::unique_ptr<std::uint8_t[]>;

  [[nodiscard]] const std::uint8_t* page_for_read(std::uint32_t addr) const;
  [[nodiscard]] std::uint8_t* page_for_write(std::uint32_t addr);

  std::unordered_map<std::uint32_t, Page> pages_;
  std::shared_ptr<const Memory> baseline_;
  std::uint64_t cow_epoch_ = 0;
  mutable MemoryStats stats_;
};

}  // namespace zolcsim::mem

#endif  // ZOLCSIM_MEM_MEMORY_HPP
