#include "mem/memory.hpp"

#include <cstring>
#include <vector>

#include "common/bitutil.hpp"
#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace zolcsim::mem {

namespace {

[[noreturn]] void misaligned(std::uint32_t addr, unsigned size) {
  throw MemoryFault("misaligned " + std::to_string(size) +
                    "-byte access at " + hex32(addr));
}

}  // namespace

const std::uint8_t* Memory::page_for_read(std::uint32_t addr) const {
  const auto it = pages_.find(addr >> kPageBits);
  if (it != pages_.end()) return it->second.get();
  if (baseline_) {
    const auto base = baseline_->pages_.find(addr >> kPageBits);
    if (base != baseline_->pages_.end()) return base->second.get();
  }
  return nullptr;
}

std::uint8_t* Memory::page_for_write(std::uint32_t addr) {
  Page& page = pages_[addr >> kPageBits];
  if (!page) {
    page = std::make_unique<std::uint8_t[]>(kPageSize);
    const std::uint8_t* base = nullptr;
    if (baseline_) {
      const auto it = baseline_->pages_.find(addr >> kPageBits);
      if (it != baseline_->pages_.end()) base = it->second.get();
    }
    if (base) {
      // Privatizing a baseline page invalidates read pointers handed out
      // for it earlier; advertise that to pointer-caching consumers.
      std::memcpy(page.get(), base, kPageSize);
      ++cow_epoch_;
    } else {
      std::memset(page.get(), 0, kPageSize);
    }
  }
  return page.get();
}

void Memory::set_baseline(std::shared_ptr<const Memory> baseline) {
  ZS_EXPECTS(baseline != nullptr);
  ZS_EXPECTS(!baseline->has_baseline());  // no COW chains
  ZS_EXPECTS(pages_.empty());
  baseline_ = std::move(baseline);
}

void Memory::reset_to_baseline() {
  ZS_EXPECTS(baseline_ != nullptr);
  if (pages_.empty()) return;
  pages_.clear();
  ++cow_epoch_;
}

bool operator==(const Memory& a, const Memory& b) {
  static const std::uint8_t kZeroPage[Memory::kPageSize] = {};
  // Effective view: private pages shadow baseline pages, absent reads as 0.
  const auto effective = [](const Memory& m,
                            std::uint32_t page_no) -> const std::uint8_t* {
    const auto it = m.pages_.find(page_no);
    if (it != m.pages_.end()) return it->second.get();
    if (m.baseline_) {
      const auto base = m.baseline_->pages_.find(page_no);
      if (base != m.baseline_->pages_.end()) return base->second.get();
    }
    return kZeroPage;
  };
  const auto covered_by = [&effective](const Memory& lhs, const Memory& rhs) {
    const auto pages_match = [&](std::uint32_t page_no) {
      return std::memcmp(effective(lhs, page_no), effective(rhs, page_no),
                         Memory::kPageSize) == 0;
    };
    for (const auto& [page_no, page] : lhs.pages_) {
      if (!pages_match(page_no)) return false;
    }
    if (lhs.baseline_) {
      for (const auto& [page_no, page] : lhs.baseline_->pages_) {
        if (!pages_match(page_no)) return false;
      }
    }
    return true;
  };
  return covered_by(a, b) && covered_by(b, a);
}

std::uint8_t Memory::read8(std::uint32_t addr) const {
  ++stats_.reads;
  ++stats_.bytes_read;
  const std::uint8_t* page = page_for_read(addr);
  return page ? page[addr & (kPageSize - 1)] : 0;
}

std::uint16_t Memory::read16(std::uint32_t addr) const {
  if (!is_aligned(addr, 2)) misaligned(addr, 2);
  ++stats_.reads;
  stats_.bytes_read += 2;
  const std::uint8_t* page = page_for_read(addr);
  if (!page) return 0;
  const std::uint32_t ofs = addr & (kPageSize - 1);
  return static_cast<std::uint16_t>(
      page[ofs] | (static_cast<std::uint16_t>(page[ofs + 1]) << 8));
}

std::uint32_t Memory::read32(std::uint32_t addr) const {
  if (!is_aligned(addr, 4)) misaligned(addr, 4);
  ++stats_.reads;
  stats_.bytes_read += 4;
  const std::uint8_t* page = page_for_read(addr);
  if (!page) return 0;
  const std::uint32_t ofs = addr & (kPageSize - 1);
  std::uint32_t value = 0;
  std::memcpy(&value, page + ofs, 4);  // host is little-endian (x86/ARM64)
  return value;
}

std::uint32_t Memory::fetch32(std::uint32_t addr) const {
  if (!is_aligned(addr, 4)) misaligned(addr, 4);
  const std::uint8_t* page = page_for_read(addr);
  if (!page) return 0;
  std::uint32_t value = 0;
  std::memcpy(&value, page + (addr & (kPageSize - 1)), 4);
  return value;
}

void Memory::write8(std::uint32_t addr, std::uint8_t value) {
  ++stats_.writes;
  ++stats_.bytes_written;
  page_for_write(addr)[addr & (kPageSize - 1)] = value;
}

void Memory::write16(std::uint32_t addr, std::uint16_t value) {
  if (!is_aligned(addr, 2)) misaligned(addr, 2);
  ++stats_.writes;
  stats_.bytes_written += 2;
  std::uint8_t* page = page_for_write(addr);
  const std::uint32_t ofs = addr & (kPageSize - 1);
  page[ofs] = static_cast<std::uint8_t>(value & 0xFF);
  page[ofs + 1] = static_cast<std::uint8_t>(value >> 8);
}

void Memory::write32(std::uint32_t addr, std::uint32_t value) {
  if (!is_aligned(addr, 4)) misaligned(addr, 4);
  ++stats_.writes;
  stats_.bytes_written += 4;
  std::uint8_t* page = page_for_write(addr);
  std::memcpy(page + (addr & (kPageSize - 1)), &value, 4);
}

void Memory::load_bytes(std::uint32_t addr,
                        std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::uint8_t* page = page_for_write(addr + static_cast<std::uint32_t>(i));
    page[(addr + i) & (kPageSize - 1)] = bytes[i];
  }
}

void Memory::load_words(std::uint32_t addr,
                        std::span<const std::uint32_t> words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint32_t a = addr + static_cast<std::uint32_t>(i) * 4;
    if (!is_aligned(a, 4)) misaligned(a, 4);
    std::uint8_t* page = page_for_write(a);
    std::memcpy(page + (a & (kPageSize - 1)), &words[i], 4);
  }
}

std::vector<std::uint32_t> Memory::read_words(std::uint32_t addr,
                                              std::size_t count) const {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(fetch32(addr + static_cast<std::uint32_t>(i) * 4));
  }
  return out;
}

}  // namespace zolcsim::mem
