#include "assembler/assembler.hpp"

#include <algorithm>
#include <optional>

#include "common/bitutil.hpp"
#include "common/strings.hpp"
#include "isa/build.hpp"
#include "isa/encoding.hpp"

namespace zolcsim::assembler {

namespace {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

constexpr std::uint32_t kDefaultTextBase = 0x0000'1000;
/// Error constructors for the two assembler failure classes: syntax and
/// directive problems (kParse) vs encoding-range/alignment violations
/// (kEncode).
Error parse_error(std::string msg, int line) {
  return Error{ErrorCode::kParse, std::move(msg), line};
}
Error encode_error(std::string msg, int line) {
  return Error{ErrorCode::kEncode, std::move(msg), line};
}

constexpr std::uint32_t kDefaultDataBase = 0x0010'0000;

struct Statement {
  int line = 0;
  std::string label;      ///< empty if none
  std::string mnemonic;   ///< empty for pure label / directive lines
  std::string directive;  ///< without the dot, empty if none
  std::vector<std::string> operands;
};

/// Splits an operand list on commas, keeping "ofs(base)" together.
std::vector<std::string> split_operands(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.emplace_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!trim(current).empty()) out.emplace_back(trim(current));
  return out;
}

Result<std::vector<Statement>> parse(std::string_view source) {
  std::vector<Statement> statements;
  int line_no = 0;
  for (std::string_view raw : split(source, '\n')) {
    ++line_no;
    // Strip comments.
    for (const char marker : {';', '#'}) {
      const auto pos = raw.find(marker);
      if (pos != std::string_view::npos) raw = raw.substr(0, pos);
    }
    std::string_view text = trim(raw);
    if (text.empty()) continue;

    Statement st;
    st.line = line_no;
    // Label prefix.
    const auto colon = text.find(':');
    if (colon != std::string_view::npos &&
        text.substr(0, colon).find_first_of(" \t") == std::string_view::npos) {
      st.label = std::string(trim(text.substr(0, colon)));
      if (st.label.empty()) {
        return parse_error("empty label", line_no);
      }
      text = trim(text.substr(colon + 1));
    }
    if (!text.empty()) {
      const auto space = text.find_first_of(" \t");
      const std::string_view head =
          space == std::string_view::npos ? text : text.substr(0, space);
      const std::string_view rest =
          space == std::string_view::npos ? "" : trim(text.substr(space));
      if (head.front() == '.') {
        st.directive = to_lower(head.substr(1));
      } else {
        st.mnemonic = to_lower(head);
      }
      st.operands = split_operands(rest);
    }
    statements.push_back(std::move(st));
  }
  return statements;
}

class Assembler {
 public:
  Result<AsmProgram> run(std::string_view source) {
    auto parsed = parse(source);
    if (!parsed.ok()) return parsed.error();
    statements_ = std::move(parsed).value();

    if (auto r = layout_pass(); !r.ok()) return r.error();
    if (auto r = encode_pass(); !r.ok()) return r.error();
    return std::move(program_);
  }

 private:
  /// Words a statement occupies (pseudo-ops have fixed sizes so pass 1
  /// layout is independent of symbol values).
  Result<std::uint32_t> statement_size(const Statement& st) const {
    if (!st.directive.empty()) {
      const auto count = static_cast<std::uint32_t>(st.operands.size());
      if (st.directive == "word") return count * 4;
      if (st.directive == "half") return count * 2;
      if (st.directive == "byte") return count * 1;
      if (st.directive == "space") {
        const auto n = parse_int(st.operands.empty() ? "" : st.operands[0]);
        if (!n || *n < 0) return parse_error("bad .space size", st.line);
        return static_cast<std::uint32_t>(*n);
      }
      return 0u;  // org/text/data/align handled in layout
    }
    if (st.mnemonic.empty()) return 0u;
    if (st.mnemonic == "li") return 8u;  // always lui+ori
    if (st.mnemonic == "nop") return 4u;
    if (isa::opcode_from_mnemonic(st.mnemonic)) return 4u;
    return parse_error("unknown mnemonic '" + st.mnemonic + "'", st.line);
  }

  Result<void> layout_pass() {
    std::uint32_t text_pc = kDefaultTextBase;
    std::uint32_t data_pc = kDefaultDataBase;
    bool in_text = true;
    bool entry_set = false;
    addresses_.resize(statements_.size());

    for (std::size_t i = 0; i < statements_.size(); ++i) {
      const Statement& st = statements_[i];
      std::uint32_t& pc = in_text ? text_pc : data_pc;

      if (st.directive == "text" || st.directive == "data") {
        in_text = st.directive == "text";
        std::uint32_t& new_pc = in_text ? text_pc : data_pc;
        if (!st.operands.empty()) {
          const auto addr = parse_int(st.operands[0]);
          if (!addr) return parse_error("bad section address", st.line);
          new_pc = static_cast<std::uint32_t>(*addr);
        }
        addresses_[i] = new_pc;
        if (!st.label.empty()) {
          if (!define_symbol(st.label, new_pc, st.line)) {
            return parse_error("duplicate label '" + st.label + "'", st.line);
          }
        }
        continue;
      }
      if (st.directive == "org") {
        const auto addr =
            parse_int(st.operands.empty() ? "" : st.operands[0]);
        if (!addr) return parse_error("bad .org address", st.line);
        pc = static_cast<std::uint32_t>(*addr);
      }
      if (st.directive == "align") {
        const auto n = parse_int(st.operands.empty() ? "" : st.operands[0]);
        if (!n || *n <= 0 || (*n & (*n - 1)) != 0) {
          return parse_error("bad .align (need a power of two)", st.line);
        }
        pc = align_up(pc, static_cast<std::uint32_t>(*n));
      }

      addresses_[i] = pc;
      if (!st.label.empty()) {
        if (!define_symbol(st.label, pc, st.line)) {
          return parse_error("duplicate label '" + st.label + "'", st.line);
        }
      }
      if (in_text && !st.mnemonic.empty() && !entry_set) {
        program_.entry = pc;
        entry_set = true;
      }
      if (in_text && !st.mnemonic.empty() && !is_aligned(pc, 4)) {
        return encode_error("instruction at unaligned address", st.line);
      }
      auto size = statement_size(st);
      if (!size.ok()) return size.error();
      pc += size.value();
    }
    if (!entry_set) program_.entry = kDefaultTextBase;
    return {};
  }

  bool define_symbol(const std::string& name, std::uint32_t value, int line) {
    (void)line;
    return program_.symbols.emplace(name, value).second;
  }

  Result<std::int64_t> eval(const std::string& token, int line) const {
    if (const auto number = parse_int(token)) return *number;
    const auto it = program_.symbols.find(token);
    if (it != program_.symbols.end()) {
      return static_cast<std::int64_t>(it->second);
    }
    return parse_error("undefined symbol '" + token + "'", line);
  }

  Result<std::uint8_t> reg(const std::string& token, int line) const {
    const auto r = isa::reg_from_name(token);
    if (!r) return parse_error("bad register '" + token + "'", line);
    return static_cast<std::uint8_t>(*r);
  }

  void emit_word(std::uint32_t addr, std::uint32_t word) {
    if (program_.chunks.empty() ||
        program_.chunks.back().addr +
                program_.chunks.back().words.size() * 4 !=
            addr) {
      program_.chunks.push_back(AsmProgram::Chunk{addr, {}});
    }
    program_.chunks.back().words.push_back(word);
  }

  Result<void> encode_instruction(const Statement& st, std::uint32_t pc) {
    namespace b = isa::build;
    const int line = st.line;
    const auto need = [&](std::size_t n) -> Result<void> {
      if (st.operands.size() != n) {
        return parse_error("expected " + std::to_string(n) +
                               " operand(s), got " +
                               std::to_string(st.operands.size()),
                           line);
      }
      return {};
    };

    if (st.mnemonic == "nop") {
      if (auto r = need(0); !r.ok()) return r.error();
      emit_word(pc, isa::encode(b::nop()));
      return {};
    }
    if (st.mnemonic == "li") {
      if (auto r = need(2); !r.ok()) return r.error();
      auto rt = reg(st.operands[0], line);
      if (!rt.ok()) return rt.error();
      auto value = eval(st.operands[1], line);
      if (!value.ok()) return value.error();
      const auto uv = static_cast<std::uint32_t>(value.value());
      emit_word(pc, isa::encode(b::lui(rt.value(),
                                       static_cast<std::int32_t>(uv >> 16))));
      emit_word(pc + 4,
                isa::encode(b::ori(rt.value(), rt.value(),
                                   static_cast<std::int32_t>(uv & 0xFFFFu))));
      return {};
    }

    const auto op = isa::opcode_from_mnemonic(st.mnemonic);
    ZS_ASSERT(op.has_value());  // screened in layout
    const isa::OpcodeInfo& info = isa::opcode_info(*op);
    Instruction instr;
    instr.op = *op;

    const auto branch_offset = [&](const std::string& token)
        -> Result<std::int32_t> {
      auto target = eval(token, line);
      if (!target.ok()) return target.error();
      const std::int64_t delta =
          target.value() - (static_cast<std::int64_t>(pc) + 4);
      if (delta % 4 != 0) return encode_error("misaligned branch target", line);
      const std::int64_t words = delta / 4;
      if (!fits_signed(words, 16)) {
        return encode_error("branch target out of range", line);
      }
      return static_cast<std::int32_t>(words);
    };

    switch (info.format) {
      case Format::kR3:
      case Format::kR3Acc: {
        if (auto r = need(3); !r.ok()) return r.error();
        auto rd = reg(st.operands[0], line);
        auto rs = reg(st.operands[1], line);
        auto rt = reg(st.operands[2], line);
        if (!rd.ok()) return rd.error();
        if (!rs.ok()) return rs.error();
        if (!rt.ok()) return rt.error();
        instr.rd = rd.value();
        instr.rs = rs.value();
        instr.rt = rt.value();
        break;
      }
      case Format::kRShift: {
        if (auto r = need(3); !r.ok()) return r.error();
        auto rd = reg(st.operands[0], line);
        auto rt = reg(st.operands[1], line);
        auto sh = eval(st.operands[2], line);
        if (!rd.ok()) return rd.error();
        if (!rt.ok()) return rt.error();
        if (!sh.ok()) return sh.error();
        if (sh.value() < 0 || sh.value() > 31) {
          return encode_error("shift amount out of range", line);
        }
        instr.rd = rd.value();
        instr.rt = rt.value();
        instr.shamt = static_cast<std::uint8_t>(sh.value());
        break;
      }
      case Format::kR2: {
        if (auto r = need(2); !r.ok()) return r.error();
        auto rd = reg(st.operands[0], line);
        auto rs = reg(st.operands[1], line);
        if (!rd.ok()) return rd.error();
        if (!rs.ok()) return rs.error();
        instr.rd = rd.value();
        instr.rs = rs.value();
        break;
      }
      case Format::kR1: {
        if (auto r = need(1); !r.ok()) return r.error();
        auto rs = reg(st.operands[0], line);
        if (!rs.ok()) return rs.error();
        instr.rs = rs.value();
        break;
      }
      case Format::kI: {
        if (auto r = need(3); !r.ok()) return r.error();
        auto rt = reg(st.operands[0], line);
        auto rs = reg(st.operands[1], line);
        auto imm = eval(st.operands[2], line);
        if (!rt.ok()) return rt.error();
        if (!rs.ok()) return rs.error();
        if (!imm.ok()) return imm.error();
        const bool fits = info.imm_is_signed
                              ? fits_signed(imm.value(), 16)
                              : fits_unsigned(
                                    static_cast<std::uint64_t>(imm.value()), 16);
        if (!fits) return encode_error("immediate out of range", line);
        instr.rt = rt.value();
        instr.rs = rs.value();
        instr.imm = static_cast<std::int32_t>(imm.value());
        break;
      }
      case Format::kLui: {
        if (auto r = need(2); !r.ok()) return r.error();
        auto rt = reg(st.operands[0], line);
        auto imm = eval(st.operands[1], line);
        if (!rt.ok()) return rt.error();
        if (!imm.ok()) return imm.error();
        if (!fits_unsigned(static_cast<std::uint64_t>(imm.value()), 16)) {
          return encode_error("immediate out of range", line);
        }
        instr.rt = rt.value();
        instr.imm = static_cast<std::int32_t>(imm.value());
        break;
      }
      case Format::kBranchCmp: {
        if (auto r = need(3); !r.ok()) return r.error();
        auto rs = reg(st.operands[0], line);
        auto rt = reg(st.operands[1], line);
        if (!rs.ok()) return rs.error();
        if (!rt.ok()) return rt.error();
        auto ofs = branch_offset(st.operands[2]);
        if (!ofs.ok()) return ofs.error();
        instr.rs = rs.value();
        instr.rt = rt.value();
        instr.imm = ofs.value();
        break;
      }
      case Format::kBranchZero: {
        if (auto r = need(2); !r.ok()) return r.error();
        auto rs = reg(st.operands[0], line);
        if (!rs.ok()) return rs.error();
        auto ofs = branch_offset(st.operands[1]);
        if (!ofs.ok()) return ofs.error();
        instr.rs = rs.value();
        instr.imm = ofs.value();
        break;
      }
      case Format::kMem: {
        if (auto r = need(2); !r.ok()) return r.error();
        auto rt = reg(st.operands[0], line);
        if (!rt.ok()) return rt.error();
        // "offset(base)"
        const std::string& addr = st.operands[1];
        const auto open = addr.find('(');
        const auto close = addr.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open) {
          return parse_error("expected offset(base) operand", line);
        }
        const std::string ofs_text(trim(addr.substr(0, open)));
        auto base = reg(std::string(trim(
                            addr.substr(open + 1, close - open - 1))),
                        line);
        if (!base.ok()) return base.error();
        auto ofs = ofs_text.empty() ? Result<std::int64_t>(0)
                                    : eval(ofs_text, line);
        if (!ofs.ok()) return ofs.error();
        if (!fits_signed(ofs.value(), 16)) {
          return encode_error("memory offset out of range", line);
        }
        instr.rt = rt.value();
        instr.rs = base.value();
        instr.imm = static_cast<std::int32_t>(ofs.value());
        break;
      }
      case Format::kJump: {
        if (auto r = need(1); !r.ok()) return r.error();
        auto target = eval(st.operands[0], line);
        if (!target.ok()) return target.error();
        const auto addr = static_cast<std::uint32_t>(target.value());
        if (!is_aligned(addr, 4)) {
          return encode_error("misaligned jump target", line);
        }
        if (((pc + 4) & 0xF000'0000u) != (addr & 0xF000'0000u)) {
          return encode_error("jump target outside the current 256 MiB region",
                       line);
        }
        instr.target = (addr >> 2) & 0x03FF'FFFFu;
        break;
      }
      case Format::kZolcWrite: {
        if (auto r = need(2); !r.ok()) return r.error();
        auto idx = eval(st.operands[0], line);
        auto rs = reg(st.operands[1], line);
        if (!idx.ok()) return idx.error();
        if (!rs.ok()) return rs.error();
        if (idx.value() < 0 || idx.value() > 255) {
          return encode_error("table index out of range", line);
        }
        instr.zidx = static_cast<std::uint8_t>(idx.value());
        instr.rs = rs.value();
        break;
      }
      case Format::kZolcNone:
      case Format::kNone:
        if (auto r = need(0); !r.ok()) return r.error();
        break;
    }
    emit_word(pc, isa::encode(instr));
    return {};
  }

  Result<void> encode_pass() {
    for (std::size_t i = 0; i < statements_.size(); ++i) {
      const Statement& st = statements_[i];
      const std::uint32_t pc = addresses_[i];
      if (!st.mnemonic.empty()) {
        if (auto r = encode_instruction(st, pc); !r.ok()) return r.error();
        continue;
      }
      if (st.directive == "word" || st.directive == "half" ||
          st.directive == "byte") {
        std::uint32_t addr = pc;
        for (const std::string& token : st.operands) {
          auto value = eval(token, st.line);
          if (!value.ok()) return value.error();
          if (st.directive == "word") {
            emit_data(addr, static_cast<std::uint32_t>(value.value()), 4);
            addr += 4;
          } else if (st.directive == "half") {
            emit_data(addr, static_cast<std::uint32_t>(value.value()), 2);
            addr += 2;
          } else {
            emit_data(addr, static_cast<std::uint32_t>(value.value()), 1);
            addr += 1;
          }
        }
      } else if (st.directive == "space") {
        auto size = statement_size(st);
        ZS_ASSERT(size.ok());
        for (std::uint32_t k = 0; k < size.value(); ++k) {
          emit_data(pc + k, 0, 1);
        }
      }
      // text/data/org/align already handled in layout.
    }
    return {};
  }

  /// Byte-granular emission for data directives (packs into the byte
  /// stream; chunks carry whole words, so buffer bytes separately).
  void emit_data(std::uint32_t addr, std::uint32_t value, unsigned size) {
    for (unsigned k = 0; k < size; ++k) {
      data_bytes_.emplace_back(addr + k,
                               static_cast<std::uint8_t>(value >> (8 * k)));
    }
  }

  std::vector<Statement> statements_;
  std::vector<std::uint32_t> addresses_;
  AsmProgram program_;

 public:
  std::vector<std::pair<std::uint32_t, std::uint8_t>> data_bytes_;
};

}  // namespace

void AsmProgram::load_into(mem::Memory& memory) const {
  for (const Chunk& chunk : chunks) {
    memory.load_words(chunk.addr, chunk.words);
  }
}

std::size_t AsmProgram::word_count() const {
  std::size_t n = 0;
  for (const Chunk& chunk : chunks) n += chunk.words.size();
  return n;
}

Result<AsmProgram> assemble(std::string_view source) {
  Assembler assembler;
  auto program = assembler.run(source);
  if (!program.ok()) return program.error();
  // Fold data bytes into word chunks (aligned groups of 4 where possible;
  // stragglers become single read-modify-write words).
  AsmProgram result = std::move(program).value();
  if (!assembler.data_bytes_.empty()) {
    mem::Memory staging;
    std::uint32_t lo = UINT32_MAX, hi = 0;
    for (const auto& [addr, byte] : assembler.data_bytes_) {
      staging.write8(addr, byte);
      lo = std::min(lo, addr);
      hi = std::max(hi, addr);
    }
    const std::uint32_t start = lo & ~3u;
    const std::uint32_t end = align_up(hi + 1, 4);
    AsmProgram::Chunk chunk;
    chunk.addr = start;
    for (std::uint32_t a = start; a < end; a += 4) {
      chunk.words.push_back(staging.fetch32(a));
    }
    result.chunks.push_back(std::move(chunk));
  }
  return result;
}

}  // namespace zolcsim::assembler
