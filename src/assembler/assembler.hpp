// Two-pass assembler for the modelled core's ISA, matching the
// disassembler's syntax so text <-> binary round trips:
//
//   ; comments (also #)
//   .text [addr]   .data [addr]   .org addr
//   .word v,...    .half v,...    .byte v,...   .space n   .align n
//   label:  addi $t0, $zero, 5
//           lw   $t0, 4($sp)
//           beq  $t0, $t1, loop        ; branch targets are labels/addresses
//           li   $t0, 0x12345678       ; pseudo: lui+ori (always 2 words)
//           zolw.te 3, $t0             ; ZOLC init-mode table write
//           zolon 0, $t0
//
// Numbers: decimal, 0x hex, 0b binary. Registers: $0..$31, r0..r31, or ABI
// names ($zero, $t0, ...). Errors carry 1-based line numbers.
#ifndef ZOLCSIM_ASSEMBLER_ASSEMBLER_HPP
#define ZOLCSIM_ASSEMBLER_ASSEMBLER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "mem/memory.hpp"

namespace zolcsim::assembler {

/// Assembled image: address-tagged word chunks plus the symbol table.
struct AsmProgram {
  struct Chunk {
    std::uint32_t addr = 0;
    std::vector<std::uint32_t> words;
  };

  std::vector<Chunk> chunks;
  std::map<std::string, std::uint32_t, std::less<>> symbols;
  std::uint32_t entry = 0;  ///< address of the first .text content

  void load_into(mem::Memory& memory) const;

  /// Total assembled words across all chunks.
  [[nodiscard]] std::size_t word_count() const;
};

/// Assembles `source`. Default text origin 0x1000, data origin 0x100000.
[[nodiscard]] Result<AsmProgram> assemble(std::string_view source);

}  // namespace zolcsim::assembler

#endif  // ZOLCSIM_ASSEMBLER_ASSEMBLER_HPP
