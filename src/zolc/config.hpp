// ZOLC hardware variants and their table geometry (Section 3 of the paper):
//   uZOLC    -- single-loop controller, no task sequencing
//   ZOLClite -- task-sequenced, single-entry/exit loops only
//   ZOLCfull -- ZOLClite + candidate-exit and multi-entry records
//
// The paper's evaluation prototype is one point of a design space: 32 task
// entries, 8 loops, 4 exits+entries per loop. ZolcGeometry makes that point a
// runtime parameter so deeper/wider loop structures can be explored; the
// default-constructed geometry is the paper configuration, and every packed
// field layout and storage byte count reproduces DESIGN.md 4.1 exactly for
// it.
#ifndef ZOLCSIM_ZOLC_CONFIG_HPP
#define ZOLCSIM_ZOLC_CONFIG_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bitutil.hpp"

namespace zolcsim::zolc {

enum class ZolcVariant : std::uint8_t { kMicro, kLite, kFull };

constexpr std::string_view variant_name(ZolcVariant variant) noexcept {
  switch (variant) {
    case ZolcVariant::kMicro: return "uZOLC";
    case ZolcVariant::kLite:  return "ZOLClite";
    case ZolcVariant::kFull:  return "ZOLCfull";
  }
  return "?";
}

/// Upper bound on `max_loops` for any geometry: the loop-index snapshot the
/// CPU keeps for speculative fetch events (cpu::AccelSnapshot) and the
/// reinit masks in exit/entry records are sized for it.
inline constexpr unsigned kMaxGeometryLoops = 32;

/// Runtime ZOLC table geometry. Counts size the tables; the id/offset field
/// widths of every packed storage word derive from them (DESIGN.md 4.1).
/// Default-constructed = the paper's ZOLCfull prototype.
struct ZolcGeometry {
  unsigned max_tasks = 32;            ///< task selection LUT entries
  unsigned max_loops = 8;             ///< loop parameter table entries
  unsigned max_exits_per_loop = 4;    ///< candidate-exit records per loop
  unsigned max_entries_per_loop = 4;  ///< multi-entry records per loop
  unsigned pc_ofs_bits = 16;          ///< width of word-offset PC fields

  // ---- derived field widths ----
  [[nodiscard]] constexpr unsigned task_id_bits() const noexcept {
    return bits_for_values(max_tasks < 2 ? 2 : max_tasks);
  }
  [[nodiscard]] constexpr unsigned loop_id_bits() const noexcept {
    return bits_for_values(max_loops < 2 ? 2 : max_loops);
  }
  /// Bits used by a packed task entry (one init word + valid/is_last).
  [[nodiscard]] constexpr unsigned task_entry_bits() const noexcept {
    return pc_ofs_bits + loop_id_bits() + 2 * task_id_bits() + 2;
  }
  /// Bits used by a packed exit record (pc, task, reinit mask, valid, kind).
  [[nodiscard]] constexpr unsigned exit_record_bits() const noexcept {
    return pc_ofs_bits + task_id_bits() + max_loops + 3;
  }
  /// Init words needed per exit/entry record (1 or 2).
  [[nodiscard]] constexpr unsigned record_words() const noexcept {
    return exit_record_bits() <= 32 ? 1u : 2u;
  }

  [[nodiscard]] constexpr unsigned exit_record_count() const noexcept {
    return max_loops * max_exits_per_loop;
  }
  [[nodiscard]] constexpr unsigned entry_record_count() const noexcept {
    return max_loops * max_entries_per_loop;
  }

  /// True iff every table index and packed field fits its storage word and
  /// the CPU-side snapshot/mask machinery can carry the loop count.
  [[nodiscard]] constexpr bool valid() const noexcept {
    return max_loops >= 1 && max_loops <= kMaxGeometryLoops &&
           max_tasks <= 256 &&
           max_exits_per_loop <= 8 && max_entries_per_loop <= 8 &&
           pc_ofs_bits >= 8 && pc_ofs_bits <= 16 &&
           task_entry_bits() <= 32 && exit_record_bits() <= 64 &&
           exit_record_count() <= 256 && entry_record_count() <= 256;
  }

  /// The paper's prototype geometry for each hardware variant.
  [[nodiscard]] static constexpr ZolcGeometry paper(
      ZolcVariant variant) noexcept {
    switch (variant) {
      case ZolcVariant::kMicro: return {0, 1, 0, 0, 16};
      case ZolcVariant::kLite:  return {32, 8, 0, 0, 16};
      case ZolcVariant::kFull:  return {32, 8, 4, 4, 16};
    }
    return {};
  }

  /// This geometry with the tables the variant does not implement removed
  /// (uZOLC has no tables at all; ZOLClite has no exit/entry records).
  [[nodiscard]] constexpr ZolcGeometry for_variant(
      ZolcVariant variant) const noexcept {
    switch (variant) {
      case ZolcVariant::kMicro:
        return {0, 1, 0, 0, pc_ofs_bits};
      case ZolcVariant::kLite:
        return {max_tasks, max_loops, 0, 0, pc_ofs_bits};
      case ZolcVariant::kFull:
        return *this;
    }
    return *this;
  }

  /// Compact CSV-friendly label, e.g. "32t-8l-4x-4e"; a non-default PC
  /// offset width is appended ("-p14") so geometries differing only there
  /// stay distinguishable in reports and error messages.
  [[nodiscard]] std::string label() const {
    std::string s = std::to_string(max_tasks) + "t-" +
                    std::to_string(max_loops) + "l-" +
                    std::to_string(max_exits_per_loop) + "x-" +
                    std::to_string(max_entries_per_loop) + "e";
    if (pc_ofs_bits != 16) s += "-p" + std::to_string(pc_ofs_bits);
    return s;
  }

  friend constexpr bool operator==(const ZolcGeometry&,
                                   const ZolcGeometry&) = default;
};

}  // namespace zolcsim::zolc

#endif  // ZOLCSIM_ZOLC_CONFIG_HPP
