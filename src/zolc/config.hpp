// ZOLC hardware variants and their capacities (Section 3 of the paper):
//   uZOLC    -- single-loop controller, no task sequencing
//   ZOLClite -- 32 task entries, 8 loops, single-entry/exit loops only
//   ZOLCfull -- ZOLClite + up to 4 entry and 4 exit nodes per loop
#ifndef ZOLCSIM_ZOLC_CONFIG_HPP
#define ZOLCSIM_ZOLC_CONFIG_HPP

#include <cstdint>
#include <string_view>

namespace zolcsim::zolc {

enum class ZolcVariant : std::uint8_t { kMicro, kLite, kFull };

struct ZolcCapacity {
  unsigned max_tasks = 0;
  unsigned max_loops = 0;
  unsigned max_exits_per_loop = 0;
  unsigned max_entries_per_loop = 0;
};

constexpr ZolcCapacity capacity(ZolcVariant variant) noexcept {
  switch (variant) {
    case ZolcVariant::kMicro:
      return {0, 1, 0, 0};
    case ZolcVariant::kLite:
      return {32, 8, 0, 0};
    case ZolcVariant::kFull:
      return {32, 8, 4, 4};
  }
  return {};
}

constexpr std::string_view variant_name(ZolcVariant variant) noexcept {
  switch (variant) {
    case ZolcVariant::kMicro: return "uZOLC";
    case ZolcVariant::kLite:  return "ZOLClite";
    case ZolcVariant::kFull:  return "ZOLCfull";
  }
  return "?";
}

/// Total number of exit/entry records in the full variant (8 loops x 4).
inline constexpr unsigned kFullExitRecords = 32;
inline constexpr unsigned kFullEntryRecords = 32;

}  // namespace zolcsim::zolc

#endif  // ZOLCSIM_ZOLC_CONFIG_HPP
