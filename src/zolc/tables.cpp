#include "zolc/tables.hpp"

#include "common/bitutil.hpp"

namespace zolcsim::zolc {

std::uint32_t TaskEntry::pack(const ZolcGeometry& geom) const noexcept {
  const unsigned p = geom.pc_ofs_bits;
  const unsigned lb = geom.loop_id_bits();
  const unsigned tb = geom.task_id_bits();
  std::uint32_t w = 0;
  w |= end_pc_ofs & mask32(p);
  w |= (loop_id & mask32(lb)) << p;
  w |= (next_task_cont & mask32(tb)) << (p + lb);
  w |= (next_task_done & mask32(tb)) << (p + lb + tb);
  w |= static_cast<std::uint32_t>(is_last ? 1u : 0u) << (p + lb + 2 * tb);
  w |= static_cast<std::uint32_t>(valid ? 1u : 0u) << (p + lb + 2 * tb + 1);
  return w;
}

TaskEntry TaskEntry::unpack(std::uint32_t word,
                            const ZolcGeometry& geom) noexcept {
  const unsigned p = geom.pc_ofs_bits;
  const unsigned lb = geom.loop_id_bits();
  const unsigned tb = geom.task_id_bits();
  TaskEntry e;
  e.end_pc_ofs = static_cast<std::uint16_t>(extract_bits(word, 0, p));
  e.loop_id = static_cast<std::uint8_t>(extract_bits(word, p, lb));
  e.next_task_cont = static_cast<std::uint8_t>(extract_bits(word, p + lb, tb));
  e.next_task_done =
      static_cast<std::uint8_t>(extract_bits(word, p + lb + tb, tb));
  e.is_last = extract_bits(word, p + lb + 2 * tb, 1) != 0;
  e.valid = extract_bits(word, p + lb + 2 * tb + 1, 1) != 0;
  return e;
}

std::uint32_t LoopEntry::pack_word0() const noexcept {
  return (static_cast<std::uint32_t>(static_cast<std::uint16_t>(initial))) |
         (static_cast<std::uint32_t>(static_cast<std::uint16_t>(final)) << 16);
}

std::uint32_t LoopEntry::pack_word1() const noexcept {
  std::uint32_t w = 0;
  w |= static_cast<std::uint8_t>(step);
  w |= static_cast<std::uint32_t>(index_rf & 0x1Fu) << 8;
  w |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(cond) & 0x3u) << 13;
  w |= static_cast<std::uint32_t>(valid ? 1u : 0u) << 15;
  return w;
}

void LoopEntry::unpack_word0(std::uint32_t word) noexcept {
  initial = static_cast<std::int16_t>(extract_bits(word, 0, 16));
  final = static_cast<std::int16_t>(extract_bits(word, 16, 16));
}

void LoopEntry::unpack_word1(std::uint32_t word) noexcept {
  step = static_cast<std::int8_t>(extract_bits(word, 0, 8));
  index_rf = static_cast<std::uint8_t>(extract_bits(word, 8, 5));
  cond = static_cast<LoopCond>(extract_bits(word, 13, 2));
  valid = extract_bits(word, 15, 1) != 0;
}

std::uint64_t ExitRecord::pack64(const ZolcGeometry& geom) const noexcept {
  const unsigned p = geom.pc_ofs_bits;
  const unsigned tb = geom.task_id_bits();
  const unsigned lm = geom.max_loops;
  std::uint64_t w = 0;
  w |= branch_pc_ofs & mask64(p);
  w |= static_cast<std::uint64_t>(next_task & mask32(tb)) << p;
  w |= (reinit_mask & mask64(lm)) << (p + tb);
  w |= static_cast<std::uint64_t>(valid ? 1u : 0u) << (p + tb + lm);
  w |= static_cast<std::uint64_t>(deactivate ? 1u : 0u) << (p + tb + lm + 1);
  return w;
}

ExitRecord ExitRecord::unpack64(std::uint64_t bits,
                                const ZolcGeometry& geom) noexcept {
  const unsigned p = geom.pc_ofs_bits;
  const unsigned tb = geom.task_id_bits();
  const unsigned lm = geom.max_loops;
  ExitRecord r;
  r.branch_pc_ofs = static_cast<std::uint16_t>(extract_bits64(bits, 0, p));
  r.next_task = static_cast<std::uint8_t>(extract_bits64(bits, p, tb));
  r.reinit_mask = static_cast<std::uint32_t>(extract_bits64(bits, p + tb, lm));
  r.valid = extract_bits64(bits, p + tb + lm, 1) != 0;
  r.deactivate = extract_bits64(bits, p + tb + lm + 1, 1) != 0;
  return r;
}

void ExitRecord::unpack_lo(std::uint32_t word,
                           const ZolcGeometry& geom) noexcept {
  *this = unpack64((pack64(geom) & ~std::uint64_t{0xFFFF'FFFFu}) | word, geom);
}

void ExitRecord::unpack_hi(std::uint32_t word,
                           const ZolcGeometry& geom) noexcept {
  *this = unpack64((pack64(geom) & std::uint64_t{0xFFFF'FFFFu}) |
                       (static_cast<std::uint64_t>(word) << 32),
                   geom);
}

std::uint64_t EntryRecord::pack64(const ZolcGeometry& geom) const noexcept {
  const unsigned p = geom.pc_ofs_bits;
  const unsigned tb = geom.task_id_bits();
  const unsigned lm = geom.max_loops;
  std::uint64_t w = 0;
  w |= entry_pc_ofs & mask64(p);
  w |= static_cast<std::uint64_t>(next_task & mask32(tb)) << p;
  w |= (reinit_mask & mask64(lm)) << (p + tb);
  w |= static_cast<std::uint64_t>(valid ? 1u : 0u) << (p + tb + lm);
  return w;
}

EntryRecord EntryRecord::unpack64(std::uint64_t bits,
                                  const ZolcGeometry& geom) noexcept {
  const unsigned p = geom.pc_ofs_bits;
  const unsigned tb = geom.task_id_bits();
  const unsigned lm = geom.max_loops;
  EntryRecord r;
  r.entry_pc_ofs = static_cast<std::uint16_t>(extract_bits64(bits, 0, p));
  r.next_task = static_cast<std::uint8_t>(extract_bits64(bits, p, tb));
  r.reinit_mask = static_cast<std::uint32_t>(extract_bits64(bits, p + tb, lm));
  r.valid = extract_bits64(bits, p + tb + lm, 1) != 0;
  return r;
}

void EntryRecord::unpack_lo(std::uint32_t word,
                            const ZolcGeometry& geom) noexcept {
  *this = unpack64((pack64(geom) & ~std::uint64_t{0xFFFF'FFFFu}) | word, geom);
}

void EntryRecord::unpack_hi(std::uint32_t word,
                            const ZolcGeometry& geom) noexcept {
  *this = unpack64((pack64(geom) & std::uint64_t{0xFFFF'FFFFu}) |
                       (static_cast<std::uint64_t>(word) << 32),
                   geom);
}

std::uint32_t pack_micro_ctrl(std::uint8_t index_rf, LoopCond cond) noexcept {
  return static_cast<std::uint32_t>(index_rf & 0x1Fu) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(cond) & 0x3u)
          << 5);
}

}  // namespace zolcsim::zolc
