#include "zolc/tables.hpp"

#include "common/bitutil.hpp"

namespace zolcsim::zolc {

std::uint32_t TaskEntry::pack() const noexcept {
  std::uint32_t w = 0;
  w |= end_pc_ofs;
  w |= static_cast<std::uint32_t>(loop_id & 0x7u) << 16;
  w |= static_cast<std::uint32_t>(next_task_cont & 0x1Fu) << 19;
  w |= static_cast<std::uint32_t>(next_task_done & 0x1Fu) << 24;
  w |= static_cast<std::uint32_t>(is_last ? 1u : 0u) << 29;
  w |= static_cast<std::uint32_t>(valid ? 1u : 0u) << 30;
  return w;
}

TaskEntry TaskEntry::unpack(std::uint32_t word) noexcept {
  TaskEntry e;
  e.end_pc_ofs = static_cast<std::uint16_t>(extract_bits(word, 0, 16));
  e.loop_id = static_cast<std::uint8_t>(extract_bits(word, 16, 3));
  e.next_task_cont = static_cast<std::uint8_t>(extract_bits(word, 19, 5));
  e.next_task_done = static_cast<std::uint8_t>(extract_bits(word, 24, 5));
  e.is_last = extract_bits(word, 29, 1) != 0;
  e.valid = extract_bits(word, 30, 1) != 0;
  return e;
}

std::uint32_t LoopEntry::pack_word0() const noexcept {
  return (static_cast<std::uint32_t>(static_cast<std::uint16_t>(initial))) |
         (static_cast<std::uint32_t>(static_cast<std::uint16_t>(final)) << 16);
}

std::uint32_t LoopEntry::pack_word1() const noexcept {
  std::uint32_t w = 0;
  w |= static_cast<std::uint8_t>(step);
  w |= static_cast<std::uint32_t>(index_rf & 0x1Fu) << 8;
  w |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(cond) & 0x3u) << 13;
  w |= static_cast<std::uint32_t>(valid ? 1u : 0u) << 15;
  return w;
}

void LoopEntry::unpack_word0(std::uint32_t word) noexcept {
  initial = static_cast<std::int16_t>(extract_bits(word, 0, 16));
  final = static_cast<std::int16_t>(extract_bits(word, 16, 16));
}

void LoopEntry::unpack_word1(std::uint32_t word) noexcept {
  step = static_cast<std::int8_t>(extract_bits(word, 0, 8));
  index_rf = static_cast<std::uint8_t>(extract_bits(word, 8, 5));
  cond = static_cast<LoopCond>(extract_bits(word, 13, 2));
  valid = extract_bits(word, 15, 1) != 0;
}

std::uint32_t ExitRecord::pack_lo() const noexcept {
  std::uint32_t w = 0;
  w |= branch_pc_ofs;
  w |= static_cast<std::uint32_t>(next_task & 0x1Fu) << 16;
  w |= static_cast<std::uint32_t>(reinit_mask) << 21;
  w |= static_cast<std::uint32_t>(valid ? 1u : 0u) << 29;
  w |= static_cast<std::uint32_t>(deactivate ? 1u : 0u) << 30;
  return w;
}

void ExitRecord::unpack_lo(std::uint32_t word) noexcept {
  branch_pc_ofs = static_cast<std::uint16_t>(extract_bits(word, 0, 16));
  next_task = static_cast<std::uint8_t>(extract_bits(word, 16, 5));
  reinit_mask = static_cast<std::uint8_t>(extract_bits(word, 21, 8));
  valid = extract_bits(word, 29, 1) != 0;
  deactivate = extract_bits(word, 30, 1) != 0;
}

std::uint32_t EntryRecord::pack_lo() const noexcept {
  std::uint32_t w = 0;
  w |= entry_pc_ofs;
  w |= static_cast<std::uint32_t>(next_task & 0x1Fu) << 16;
  w |= static_cast<std::uint32_t>(reinit_mask) << 21;
  w |= static_cast<std::uint32_t>(valid ? 1u : 0u) << 29;
  return w;
}

void EntryRecord::unpack_lo(std::uint32_t word) noexcept {
  entry_pc_ofs = static_cast<std::uint16_t>(extract_bits(word, 0, 16));
  next_task = static_cast<std::uint8_t>(extract_bits(word, 16, 5));
  reinit_mask = static_cast<std::uint8_t>(extract_bits(word, 21, 8));
  valid = extract_bits(word, 29, 1) != 0;
}

std::uint32_t pack_micro_ctrl(std::uint8_t index_rf, LoopCond cond) noexcept {
  return static_cast<std::uint32_t>(index_rf & 0x1Fu) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(cond) & 0x3u)
          << 5);
}

}  // namespace zolcsim::zolc
