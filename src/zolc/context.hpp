// Full accelerator context: everything a ZolcController holds that is not
// derivable from its construction parameters -- table images, live loop
// indices, task position, the armed uZOLC register file, the activation
// base, and the event counters. A context is the unit of multi-tenant
// scheduling: save_context()/restore_context() move a suspended nest off and
// back onto one shared controller, and the JSON codec round-trips contexts
// through the same key/format/integrity discipline as the on-disk unit
// store (DESIGN.md section 9 is the normative layout).
#ifndef ZOLCSIM_ZOLC_CONTEXT_HPP
#define ZOLCSIM_ZOLC_CONTEXT_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "zolc/config.hpp"
#include "zolc/tables.hpp"

namespace zolcsim::zolc {

/// Event counters exposed for tests and the benchmark harness. Counters are
/// part of the schedulable context: a restored run must report the same
/// final statistics as an uninterrupted one.
struct ZolcStats {
  std::uint64_t continue_events = 0;  ///< hardware loop back-edges taken
  std::uint64_t done_events = 0;      ///< loop completions (incl. cascades)
  std::uint64_t cascade_chains = 0;   ///< events that resolved >1 boundary
  std::uint64_t max_cascade_depth = 0;
  std::uint64_t exit_matches = 0;     ///< candidate-exit record hits
  std::uint64_t entry_matches = 0;    ///< entry record hits
  std::uint64_t table_writes = 0;     ///< init-mode writes accepted

  friend bool operator==(const ZolcStats&, const ZolcStats&) = default;
};

/// uZOLC register state (six 32-bit data registers plus control); shared by
/// the controller's live state and the saved context.
struct MicroLoopState {
  std::int32_t initial = 0;
  std::int32_t final = 0;
  std::int32_t step = 0;
  std::int32_t current = 0;
  std::uint32_t start_pc = 0;
  std::uint32_t end_pc = 0;
  std::uint8_t index_rf = 0;
  LoopCond cond = LoopCond::kLt;

  friend bool operator==(const MicroLoopState&,
                         const MicroLoopState&) = default;
};

/// A complete controller state image, sized by the geometry it was saved
/// from. Restorable only onto a controller of the same variant and geometry
/// (ErrorCode::kBadContext otherwise).
struct ZolcContext {
  /// Serialized-artifact format tag; bumped on any layout change so stale
  /// artifacts are rejected, mirroring the unit store's version discipline.
  static constexpr std::string_view kFormat = "zolcsim-context-v1";

  ZolcVariant variant = ZolcVariant::kFull;
  ZolcGeometry geometry;  ///< variant-restricted (for_variant applied)
  std::vector<TaskEntry> tasks;
  std::vector<std::uint16_t> task_start;
  std::vector<LoopEntry> loops;  ///< includes the live `current` indices
  std::vector<ExitRecord> exits;
  std::vector<EntryRecord> entries;
  MicroLoopState micro;
  std::uint32_t base = 0;
  std::uint8_t current_task = 0;
  bool active = false;
  ZolcStats stats;

  friend bool operator==(const ZolcContext&, const ZolcContext&) = default;

  /// Content-addressed identity key (FNV-1a 64 over variant, geometry, and
  /// every state field) -- the unit-store key discipline applied to
  /// contexts. Doubles as the serialized artifact's integrity digest.
  [[nodiscard]] std::uint64_t key() const;

  /// Deterministic field-wise JSON document (packed table words are wider
  /// than a double's exact-integer range, so fields serialize individually).
  /// from_json(to_json()).to_json() is byte-identical to to_json().
  [[nodiscard]] std::string to_json() const;

  /// Parses and validates a serialized context. Failure modes: kParse
  /// (malformed JSON), kStoreStale (format tag from another build),
  /// kStoreCorrupt (shape or digest violations), kBadContext (fields
  /// inconsistent with the declared geometry).
  [[nodiscard]] static Result<ZolcContext> from_json(std::string_view text);
};

/// Modeled cost of one full context switch in init-bus words (the bus moves
/// one 32-bit word per cycle, the same accounting as the paper's init
/// overhead). Save transfers only live state -- the loop index copies, the
/// uZOLC current register, and one position/status word; restore replays the
/// full init sequence for every valid table entry plus the live state, so
/// restore cost tracks the paper's per-kernel init overhead.
struct ContextSwitchCost {
  std::uint64_t save_words = 0;
  std::uint64_t restore_words = 0;

  [[nodiscard]] std::uint64_t total_cycles() const noexcept {
    return save_words + restore_words;
  }
};

[[nodiscard]] ContextSwitchCost context_switch_cost(const ZolcContext& ctx);

}  // namespace zolcsim::zolc

#endif  // ZOLCSIM_ZOLC_CONTEXT_HPP
