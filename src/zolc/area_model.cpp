#include "zolc/area_model.hpp"

#include <numeric>

#include "common/contracts.hpp"

namespace zolcsim::zolc {

namespace {

using namespace gate_cost;

double eq(unsigned bits) { return kEqPerBit * bits; }
double adder(unsigned bits) { return kAddPerBit * bits; }
double cmp(unsigned bits) { return kCmpPerBit * bits; }
double mux2(unsigned bits) { return kMux2PerBit * bits; }
/// n:1 read-mux tree over `bits`-wide words: (n-1) 2:1 muxes per bit.
double read_tree(unsigned n, unsigned bits) {
  return kMux2PerBit * (n - 1) * bits;
}

/// Calibrated control/glue terms (mode FSM, write sequencing, enables) such
/// that structural + glue equals the paper's synthesis totals.
constexpr double kGlueMicro = 18.0;
constexpr double kGlueLite = 288.0;
constexpr double kGlueFull = 356.0;

unsigned storage_bits_for(ZolcVariant variant) {
  switch (variant) {
    case ZolcVariant::kMicro:
      // Six 32-bit data registers + three 16-bit control registers.
      return 6 * 32 + 3 * 16;
    case ZolcVariant::kLite:
      // Task LUT 32x32 + task-start 32x16 + loop table 8x64 + status 16.
      return 32 * 32 + 32 * 16 + 8 * 64 + 16;
    case ZolcVariant::kFull:
      // Lite storage + 32 exit records x 48 + 32 entry records x 48.
      return storage_bits_for(ZolcVariant::kLite) +
             kFullExitRecords * 48 + kFullEntryRecords * 48;
  }
  ZS_UNREACHABLE("unknown variant");
}

}  // namespace

AreaBreakdown area_model(ZolcVariant variant) {
  AreaBreakdown b;
  b.variant = variant;
  b.storage_bits = storage_bits_for(variant);
  b.storage_bytes = b.storage_bits / 8;

  auto add = [&b](std::string name, double gates) {
    b.items.push_back(AreaItem{std::move(name), gates});
  };

  switch (variant) {
    case ZolcVariant::kMicro:
      add("end-PC equality comparator (32b)", eq(32));
      add("index update adder (32b)", adder(32));
      add("termination comparator (32b)", cmp(32));
      add("next-PC select mux (32b 2:1)", mux2(32));
      b.glue_gates = kGlueMicro;
      break;
    case ZolcVariant::kLite:
    case ZolcVariant::kFull:
      add("end-PC equality comparator (16b offset)", eq(16));
      add("task LUT read tree (32:1 x 32b)", read_tree(32, 32));
      add("task-start read tree (32:1 x 16b)", read_tree(32, 16));
      add("loop table read tree (8:1 x 64b)", read_tree(8, 64));
      add("index update adder (16b)", adder(16));
      add("termination comparator (16b)", cmp(16));
      add("next-PC offset adder (base + ofs<<2, 32b)", adder(32));
      add("next-PC select mux (32b 2:1)", mux2(32));
      add("RF write-port data mux (32b 2:1)", mux2(32));
      add("table write-address decoders (5b + 3b)", 28.0);
      b.glue_gates = kGlueLite;
      if (variant == ZolcVariant::kFull) {
        add("candidate-exit comparators (4 x 16b)", 4 * eq(16));
        add("multi-entry comparators (4 x 16b)", 4 * eq(16));
        add("record valid/match logic (32 records)", 32.0);
        add("matched-record wired-OR networks (2 x 48b)", 96.0);
        add("reinit-mask distribution (8 loops)", 48.0);
        b.glue_gates = kGlueFull;
      }
      break;
  }

  b.structural_gates =
      std::accumulate(b.items.begin(), b.items.end(), 0.0,
                      [](double acc, const AreaItem& item) {
                        return acc + item.gates;
                      });
  b.total_gates = b.structural_gates + b.glue_gates;
  return b;
}

TimingEstimate timing_model(ZolcVariant variant) {
  TimingEstimate t;
  // Processor EX-stage path (0.13 um-class): RF read, forwarding mux,
  // 32-bit ALU add, result setup/bypass.
  constexpr double kRfRead = 1.40, kFwdMux = 0.55, kAlu32 = 2.45,
                   kSetup = 1.48;
  t.cpu_critical_ns = kRfRead + kFwdMux + kAlu32 + kSetup;  // 5.88 ns

  switch (variant) {
    case ZolcVariant::kMicro:
      // end-PC compare -> 32b index add -> termination cmp -> next-PC mux.
      t.zolc_critical_ns = 0.80 + 1.95 + 1.10 + 0.35;  // 4.20 ns
      break;
    case ZolcVariant::kLite:
    case ZolcVariant::kFull:
      // end-PC compare -> task LUT read -> loop param read -> 16b index add
      // -> termination cmp -> cascade priority select -> next-PC mux.
      t.zolc_critical_ns = 0.62 + 1.15 + 0.95 + 1.30 + 0.75 + 0.40 + 0.35;
      break;
  }
  t.zolc_limits_clock = t.zolc_critical_ns > t.cpu_critical_ns;
  t.fmax_mhz = 1000.0 /
               (t.zolc_limits_clock ? t.zolc_critical_ns : t.cpu_critical_ns);
  return t;
}

}  // namespace zolcsim::zolc
