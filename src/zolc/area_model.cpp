#include "zolc/area_model.hpp"

#include <numeric>

#include "common/contracts.hpp"

namespace zolcsim::zolc {

namespace {

using namespace gate_cost;

double eq(unsigned bits) { return kEqPerBit * bits; }
double adder(unsigned bits) { return kAddPerBit * bits; }
double cmp(unsigned bits) { return kCmpPerBit * bits; }
double mux2(unsigned bits) { return kMux2PerBit * bits; }
/// n:1 read-mux tree over `bits`-wide words: (n-1) 2:1 muxes per bit.
double read_tree(unsigned n, unsigned bits) {
  return n < 2 ? 0.0 : kMux2PerBit * (n - 1) * bits;
}

std::string num(unsigned n) { return std::to_string(n); }

/// Calibrated control/glue terms (mode FSM, write sequencing, enables) such
/// that structural + glue equals the paper's synthesis totals at the paper
/// geometry.
constexpr double kGlueMicro = 18.0;
constexpr double kGlueLite = 288.0;
constexpr double kGlueFull = 356.0;

/// Storage words are counted as the hardware holds them (DESIGN.md 4.1):
/// one 32-bit word per task entry, a pc_ofs-wide task-start entry, 64 bits
/// per loop entry (parameters + live index), 16 status bits, and per
/// exit/entry record the init words plus a 16-bit reserved half-word.
unsigned record_storage_bits(const ZolcGeometry& g) {
  return 32 * g.record_words() + 16;
}

unsigned storage_bits_for(ZolcVariant variant, const ZolcGeometry& g) {
  switch (variant) {
    case ZolcVariant::kMicro:
      // Six 32-bit data registers + three 16-bit control registers.
      return 6 * 32 + 3 * 16;
    case ZolcVariant::kLite:
      // Task LUT + task-start table + loop table + status.
      return g.max_tasks * 32 + g.max_tasks * g.pc_ofs_bits +
             g.max_loops * 64 + 16;
    case ZolcVariant::kFull:
      // Lite storage + the exit and entry record banks.
      return storage_bits_for(ZolcVariant::kLite, g) +
             (g.exit_record_count() + g.entry_record_count()) *
                 record_storage_bits(g);
  }
  ZS_UNREACHABLE("unknown variant");
}

}  // namespace

AreaBreakdown area_model(ZolcVariant variant, const ZolcGeometry& geometry) {
  ZS_EXPECTS(geometry.valid());
  const ZolcGeometry g = geometry.for_variant(variant);
  AreaBreakdown b;
  b.variant = variant;
  b.geometry = g;
  b.storage_bits = storage_bits_for(variant, g);
  b.storage_bytes = b.storage_bits / 8;

  auto add = [&b](std::string name, double gates) {
    b.items.push_back(AreaItem{std::move(name), gates});
  };

  switch (variant) {
    case ZolcVariant::kMicro:
      add("end-PC equality comparator (32b)", eq(32));
      add("index update adder (32b)", adder(32));
      add("termination comparator (32b)", cmp(32));
      add("next-PC select mux (32b 2:1)", mux2(32));
      b.glue_gates = kGlueMicro;
      break;
    case ZolcVariant::kLite:
    case ZolcVariant::kFull:
      add("end-PC equality comparator (" + num(g.pc_ofs_bits) + "b offset)",
          eq(g.pc_ofs_bits));
      add("task LUT read tree (" + num(g.max_tasks) + ":1 x 32b)",
          read_tree(g.max_tasks, 32));
      add("task-start read tree (" + num(g.max_tasks) + ":1 x " +
              num(g.pc_ofs_bits) + "b)",
          read_tree(g.max_tasks, g.pc_ofs_bits));
      add("loop table read tree (" + num(g.max_loops) + ":1 x 64b)",
          read_tree(g.max_loops, 64));
      add("index update adder (16b)", adder(16));
      add("termination comparator (16b)", cmp(16));
      add("next-PC offset adder (base + ofs<<2, 32b)", adder(32));
      add("next-PC select mux (32b 2:1)", mux2(32));
      add("RF write-port data mux (32b 2:1)", mux2(32));
      add("table write-address decoders (" + num(g.task_id_bits()) + "b + " +
              num(g.loop_id_bits()) + "b)",
          kDecodePerOut * ((1u << g.task_id_bits()) + (1u << g.loop_id_bits())));
      b.glue_gates = kGlueLite;
      if (variant == ZolcVariant::kFull) {
        add("candidate-exit comparators (" + num(g.max_exits_per_loop) +
                " x " + num(g.pc_ofs_bits) + "b)",
            g.max_exits_per_loop * eq(g.pc_ofs_bits));
        add("multi-entry comparators (" + num(g.max_entries_per_loop) +
                " x " + num(g.pc_ofs_bits) + "b)",
            g.max_entries_per_loop * eq(g.pc_ofs_bits));
        add("record valid/match logic (" +
                num(g.exit_record_count() + g.entry_record_count()) +
                " records)",
            kMatchPerRecord *
                (g.exit_record_count() + g.entry_record_count()));
        add("matched-record wired-OR networks (2 x " +
                num(record_storage_bits(g)) + "b)",
            kWiredOrPerBit * record_storage_bits(g));
        add("reinit-mask distribution (" + num(g.max_loops) + " loops)",
            kReinitPerLoop * g.max_loops);
        b.glue_gates = kGlueFull;
      }
      break;
  }

  b.structural_gates =
      std::accumulate(b.items.begin(), b.items.end(), 0.0,
                      [](double acc, const AreaItem& item) {
                        return acc + item.gates;
                      });
  b.total_gates = b.structural_gates + b.glue_gates;
  return b;
}

TimingEstimate timing_model(ZolcVariant variant) {
  TimingEstimate t;
  // Processor EX-stage path (0.13 um-class): RF read, forwarding mux,
  // 32-bit ALU add, result setup/bypass.
  constexpr double kRfRead = 1.40, kFwdMux = 0.55, kAlu32 = 2.45,
                   kSetup = 1.48;
  t.cpu_critical_ns = kRfRead + kFwdMux + kAlu32 + kSetup;  // 5.88 ns

  switch (variant) {
    case ZolcVariant::kMicro:
      // end-PC compare -> 32b index add -> termination cmp -> next-PC mux.
      t.zolc_critical_ns = 0.80 + 1.95 + 1.10 + 0.35;  // 4.20 ns
      break;
    case ZolcVariant::kLite:
    case ZolcVariant::kFull:
      // end-PC compare -> task LUT read -> loop param read -> 16b index add
      // -> termination cmp -> cascade priority select -> next-PC mux.
      t.zolc_critical_ns = 0.62 + 1.15 + 0.95 + 1.30 + 0.75 + 0.40 + 0.35;
      break;
  }
  t.zolc_limits_clock = t.zolc_critical_ns > t.cpu_critical_ns;
  t.fmax_mhz = 1000.0 /
               (t.zolc_limits_clock ? t.zolc_critical_ns : t.cpu_critical_ns);
  return t;
}

}  // namespace zolcsim::zolc
