// ZolcController: architectural model of the zero-overhead loop controller,
// implementing the cpu::LoopAccelerator interface. One class models all
// three hardware variants (table geometry differs; uZOLC additionally
// bypasses the task machinery entirely and uses its private register file).
// The geometry is a construction-time parameter: the default reproduces the
// paper's prototype, wider/deeper geometries size every table at runtime.
//
// Event semantics (DESIGN.md 4.2):
//  * task end     -- fetch PC matches the current task's end_pc: update the
//                    controlling loop's index, pick the continue/done
//                    successor, redirect fetch; `done` re-initializes the
//                    index (reinit-on-exit) so any later re-entry finds it
//                    ready; `done` at an is_last task deactivates.
//  * cascade      -- done-successor tasks sharing the same end_pc resolve
//                    combinationally in the same event (perfect-nest shared
//                    boundaries cost zero cycles).
//  * taken branch -- ZOLCfull matches candidate exit records (scoped to the
//                    current task's loop) and entry records; a match switches
//                    tasks and re-initializes the loops in the record's mask.
#ifndef ZOLCSIM_ZOLC_CONTROLLER_HPP
#define ZOLCSIM_ZOLC_CONTROLLER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "cpu/accel.hpp"
#include "zolc/config.hpp"
#include "zolc/context.hpp"
#include "zolc/tables.hpp"

namespace zolcsim::zolc {

class ZolcController final : public cpu::LoopAccelerator {
 public:
  /// Builds a controller of `variant` with the tables sized by `geometry`
  /// (restricted to the tables the variant implements). The default geometry
  /// is the paper's prototype. Precondition: geometry.valid().
  explicit ZolcController(ZolcVariant variant,
                          const ZolcGeometry& geometry = ZolcGeometry{});

  [[nodiscard]] ZolcVariant variant() const noexcept { return variant_; }
  [[nodiscard]] const ZolcGeometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint8_t current_task() const noexcept {
    return current_task_;
  }
  [[nodiscard]] const ZolcStats& zolc_stats() const noexcept { return stats_; }

  /// Direct table access for tests and the loop-structure explorer example.
  [[nodiscard]] const TaskEntry& task(unsigned idx) const;
  [[nodiscard]] std::uint16_t task_start(unsigned idx) const;
  [[nodiscard]] const LoopEntry& loop(unsigned idx) const;
  [[nodiscard]] const ExitRecord& exit_record(unsigned idx) const;
  [[nodiscard]] const EntryRecord& entry_record(unsigned idx) const;

  /// Human-readable dump of the programmed tables.
  [[nodiscard]] std::string describe() const;

  /// Clears all tables and state back to power-on.
  void reset();

  // ---- full context switching (DESIGN.md section 9) ----

  /// Captures the complete controller state: table images, live loop
  /// indices, task position, uZOLC registers, activation base, and event
  /// counters. The counters travel with the context so a resumed run
  /// reports the same final statistics as an uninterrupted one.
  [[nodiscard]] ZolcContext save_context() const;

  /// Restores a context captured from a controller of the same variant and
  /// geometry; kBadContext otherwise, with this controller untouched.
  [[nodiscard]] Result<void> restore_context(const ZolcContext& context);

  /// Typed restore of the CPU-side loop-index snapshot: kBadContext when
  /// the snapshot's loop count does not match the active geometry (this
  /// controller untouched), instead of the untyped contract failure the
  /// virtual restore() surface turns it into.
  [[nodiscard]] Result<void> try_restore(const cpu::AccelSnapshot& snapshot);

  // ---- cpu::LoopAccelerator ----
  void init_write(isa::Opcode op, std::uint8_t idx,
                  std::uint32_t value) override;
  void activate(std::uint8_t start_task, std::uint32_t base) override;
  void deactivate() override;
  [[nodiscard]] bool will_trigger(std::uint32_t pc) const override;
  std::optional<cpu::AccelEvent> on_fetch(std::uint32_t pc) override;
  std::optional<cpu::AccelEvent> on_taken_control(std::uint32_t pc,
                                                  std::uint32_t target) override;
  [[nodiscard]] cpu::AccelSnapshot snapshot() const override;
  void restore(const cpu::AccelSnapshot& snapshot) override;
  [[nodiscard]] std::optional<std::uint32_t> trigger_pc() const override;
  [[nodiscard]] std::optional<cpu::LoopSummaryInfo> innermost_summary()
      const override;
  void advance_innermost(std::uint64_t iterations) override;
  [[nodiscard]] const cpu::NestProgram* nest_program() const override;
  void credit_summary_events(std::uint64_t continues, std::uint64_t dones,
                             std::uint64_t cascades,
                             std::uint64_t max_cascade_depth) override;

 private:
  /// Maps a byte PC to a word offset (pc_ofs_bits wide) from the activation
  /// base; returns false when the PC lies outside the addressable window.
  [[nodiscard]] bool pc_to_ofs(std::uint32_t pc, std::uint16_t& ofs) const;
  [[nodiscard]] std::uint32_t ofs_to_pc(std::uint16_t ofs) const noexcept;

  /// Re-initializes every loop in `mask`, appending RF write-backs to `ev`.
  void apply_reinit_mask(std::uint32_t mask, cpu::AccelEvent& ev);

  /// Recomputes trigger_pc_ -- the hardware's latched task-end comparator
  /// input -- after anything that changes the current task, the base, or
  /// the active flag.
  void refresh_trigger() noexcept;

  /// Sentinel trigger_pc_ value no word-aligned fetch can match.
  static constexpr std::uint32_t kNoTrigger = 1;

  ZolcVariant variant_;
  ZolcGeometry geom_;
  std::uint32_t pc_mask_ = 0;      ///< mask32(geom_.pc_ofs_bits), cached
  std::uint32_t trigger_pc_ = kNoTrigger;

  // ZOLClite / ZOLCfull storage, sized by geom_.
  std::vector<TaskEntry> tasks_;
  std::vector<std::uint16_t> task_start_;
  std::vector<LoopEntry> loops_;
  std::vector<ExitRecord> exits_;
  std::vector<EntryRecord> entries_;
  std::uint32_t base_ = 0;

  // uZOLC storage (six 32-bit + control registers).
  MicroLoopState micro_;

  std::uint8_t current_task_ = 0;
  bool active_ = false;

  /// Lazily built nest_program() export: a pure function of the tables and
  /// the activation base, so it is invalidated by init writes, activation,
  /// and reset, never by active-mode events.
  mutable cpu::NestProgram nest_prog_;
  mutable bool nest_dirty_ = true;

  ZolcStats stats_;
};

}  // namespace zolcsim::zolc

#endif  // ZOLCSIM_ZOLC_CONTROLLER_HPP
