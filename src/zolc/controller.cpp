#include "zolc/controller.hpp"

#include <algorithm>
#include <sstream>

#include "common/bitutil.hpp"
#include "common/contracts.hpp"
#include "common/strings.hpp"
#include "cpu/exec.hpp"

namespace zolcsim::zolc {

namespace {

using cpu::AccelEvent;
using cpu::RfWrite;
using cpu::SimError;
using isa::Opcode;

static_assert(kMaxGeometryLoops <= cpu::kMaxAccelLoops,
              "AccelSnapshot cannot carry the largest geometry");

}  // namespace

ZolcController::ZolcController(ZolcVariant variant,
                               const ZolcGeometry& geometry)
    : variant_(variant),
      geom_(geometry.for_variant(variant)),
      pc_mask_(mask32(geom_.pc_ofs_bits)) {
  ZS_EXPECTS(geometry.valid());
  tasks_.resize(geom_.max_tasks);
  task_start_.resize(geom_.max_tasks);
  loops_.resize(geom_.max_loops);
  exits_.resize(geom_.exit_record_count());
  entries_.resize(geom_.entry_record_count());
}

const TaskEntry& ZolcController::task(unsigned idx) const {
  ZS_EXPECTS(idx < tasks_.size());
  return tasks_[idx];
}

std::uint16_t ZolcController::task_start(unsigned idx) const {
  ZS_EXPECTS(idx < task_start_.size());
  return task_start_[idx];
}

const LoopEntry& ZolcController::loop(unsigned idx) const {
  ZS_EXPECTS(variant_ != ZolcVariant::kMicro && idx < loops_.size());
  return loops_[idx];
}

const ExitRecord& ZolcController::exit_record(unsigned idx) const {
  ZS_EXPECTS(variant_ == ZolcVariant::kFull && idx < exits_.size());
  return exits_[idx];
}

const EntryRecord& ZolcController::entry_record(unsigned idx) const {
  ZS_EXPECTS(variant_ == ZolcVariant::kFull && idx < entries_.size());
  return entries_[idx];
}

void ZolcController::reset() {
  std::fill(tasks_.begin(), tasks_.end(), TaskEntry{});
  std::fill(task_start_.begin(), task_start_.end(), std::uint16_t{0});
  std::fill(loops_.begin(), loops_.end(), LoopEntry{});
  std::fill(exits_.begin(), exits_.end(), ExitRecord{});
  std::fill(entries_.begin(), entries_.end(), EntryRecord{});
  micro_ = {};
  base_ = 0;
  current_task_ = 0;
  active_ = false;
  stats_ = {};
  trigger_pc_ = kNoTrigger;
  nest_dirty_ = true;
}

void ZolcController::refresh_trigger() noexcept {
  if (!active_ || variant_ == ZolcVariant::kMicro || tasks_.empty()) {
    trigger_pc_ = kNoTrigger;
    return;
  }
  const TaskEntry& t = tasks_[current_task_];
  trigger_pc_ = t.valid ? ofs_to_pc(t.end_pc_ofs) : kNoTrigger;
}

void ZolcController::init_write(Opcode op, std::uint8_t idx,
                                std::uint32_t value) {
  if (active_) {
    throw SimError("ZOLC table write while the controller is active");
  }
  ++stats_.table_writes;
  nest_dirty_ = true;
  switch (op) {
    case Opcode::kZolwTe: {
      if (variant_ == ZolcVariant::kMicro || idx >= tasks_.size()) {
        throw SimError("zolw.te: no task entry " + std::to_string(idx) +
                       " on " + std::string(variant_name(variant_)));
      }
      // Range-check the packed ids: the field widths are rounded up to
      // whole bits, so non-power-of-two geometries admit encodings beyond
      // the table sizes (the hardware write decoder traps them).
      const TaskEntry entry = TaskEntry::unpack(value, geom_);
      if (entry.loop_id >= geom_.max_loops ||
          entry.next_task_cont >= geom_.max_tasks ||
          entry.next_task_done >= geom_.max_tasks) {
        throw SimError("zolw.te: packed id out of range for geometry " +
                       geom_.label());
      }
      tasks_[idx] = entry;
      break;
    }
    case Opcode::kZolwTs:
      if (variant_ == ZolcVariant::kMicro || idx >= tasks_.size()) {
        throw SimError("zolw.ts: no task entry " + std::to_string(idx) +
                       " on " + std::string(variant_name(variant_)));
      }
      task_start_[idx] =
          static_cast<std::uint16_t>(value & mask32(geom_.pc_ofs_bits));
      break;
    case Opcode::kZolwLp0:
    case Opcode::kZolwLp1:
      if (variant_ == ZolcVariant::kMicro || idx >= loops_.size()) {
        throw SimError("zolw.lp: no loop entry " + std::to_string(idx) +
                       " on " + std::string(variant_name(variant_)));
      }
      if (op == Opcode::kZolwLp0) loops_[idx].unpack_word0(value);
      else loops_[idx].unpack_word1(value);
      break;
    case Opcode::kZolwEx0:
    case Opcode::kZolwEx1:
      if (variant_ != ZolcVariant::kFull || idx >= exits_.size()) {
        throw SimError("zolw.ex: no exit record " + std::to_string(idx) +
                       " on " + std::string(variant_name(variant_)));
      }
      if (op == Opcode::kZolwEx0) exits_[idx].unpack_lo(value, geom_);
      else exits_[idx].unpack_hi(value, geom_);
      if (exits_[idx].next_task >= geom_.max_tasks) {
        throw SimError("zolw.ex: packed next_task out of range for geometry " +
                       geom_.label());
      }
      break;
    case Opcode::kZolwEn0:
    case Opcode::kZolwEn1:
      if (variant_ != ZolcVariant::kFull || idx >= entries_.size()) {
        throw SimError("zolw.en: no entry record " + std::to_string(idx) +
                       " on " + std::string(variant_name(variant_)));
      }
      if (op == Opcode::kZolwEn0) entries_[idx].unpack_lo(value, geom_);
      else entries_[idx].unpack_hi(value, geom_);
      if (entries_[idx].next_task >= geom_.max_tasks) {
        throw SimError("zolw.en: packed next_task out of range for geometry " +
                       geom_.label());
      }
      break;
    case Opcode::kZolwU: {
      if (variant_ != ZolcVariant::kMicro || idx >= kMicroRegCount) {
        throw SimError("zolw.u: no uZOLC register " + std::to_string(idx) +
                       " on " + std::string(variant_name(variant_)));
      }
      const auto sv = static_cast<std::int32_t>(value);
      switch (static_cast<MicroReg>(idx)) {
        case MicroReg::kInitial: micro_.initial = sv; break;
        case MicroReg::kFinal:   micro_.final = sv; break;
        case MicroReg::kStep:    micro_.step = sv; break;
        case MicroReg::kCurrent: micro_.current = sv; break;
        case MicroReg::kStartPc: micro_.start_pc = value; break;
        case MicroReg::kEndPc:   micro_.end_pc = value; break;
        case MicroReg::kCtrl:
          micro_.index_rf = static_cast<std::uint8_t>(extract_bits(value, 0, 5));
          micro_.cond = static_cast<LoopCond>(extract_bits(value, 5, 2));
          break;
        case MicroReg::kCount:
        case MicroReg::kStatus:
          break;  // reserved, accepted and ignored
      }
      break;
    }
    default:
      throw SimError("not a ZOLC table-write opcode");
  }
}

void ZolcController::activate(std::uint8_t start_task, std::uint32_t base) {
  if (active_) {
    throw SimError("zolon while the controller is already active");
  }
  if (variant_ == ZolcVariant::kMicro) {
    micro_.current = micro_.initial;
    active_ = true;
    return;
  }
  if (start_task >= tasks_.size()) {
    throw SimError("zolon: start task " + std::to_string(start_task) +
                   " out of range");
  }
  if (!is_aligned(base, 4)) {
    throw SimError("zolon: base address " + hex32(base) +
                   " is not word-aligned");
  }
  base_ = base;
  nest_dirty_ = true;  // the export resolves table offsets against base_
  current_task_ = start_task;
  for (LoopEntry& loop : loops_) {
    if (loop.valid) loop.current = loop.initial;
  }
  active_ = true;
  refresh_trigger();
}

void ZolcController::deactivate() {
  active_ = false;
  trigger_pc_ = kNoTrigger;
}

bool ZolcController::pc_to_ofs(std::uint32_t pc, std::uint16_t& ofs) const {
  if (pc < base_) return false;
  const std::uint32_t delta = (pc - base_) >> 2;
  if (delta > pc_mask_) return false;
  ofs = static_cast<std::uint16_t>(delta);
  return true;
}

std::uint32_t ZolcController::ofs_to_pc(std::uint16_t ofs) const noexcept {
  return base_ + (static_cast<std::uint32_t>(ofs) << 2);
}

bool ZolcController::will_trigger(std::uint32_t pc) const {
  if (!active_) return false;
  if (variant_ == ZolcVariant::kMicro) return pc == micro_.end_pc;
  // Single comparison against the latched end PC of the current task (the
  // hardware's task-end comparator); refresh_trigger() keeps it coherent
  // across task switches.
  return pc == trigger_pc_;
}

std::optional<AccelEvent> ZolcController::on_fetch(std::uint32_t pc) {
  if (!will_trigger(pc)) return std::nullopt;

  AccelEvent ev;
  if (variant_ == ZolcVariant::kMicro) {
    const std::int32_t next = micro_.current + micro_.step;
    if (cond_holds(micro_.cond, next, micro_.final)) {
      micro_.current = next;
      ev.rf_writes.push_back(RfWrite{micro_.index_rf, next});
      ev.redirect = micro_.start_pc;
      ++stats_.continue_events;
    } else {
      // Reinit-on-exit: the controller stays armed so an enclosing software
      // loop can re-enter the region with no reprogramming.
      micro_.current = micro_.initial;
      ev.rf_writes.push_back(RfWrite{micro_.index_rf, micro_.initial});
      ++stats_.done_events;
    }
    return ev;
  }

  std::uint16_t ofs = 0;
  ZS_ASSERT(pc_to_ofs(pc, ofs));
  unsigned depth = 0;
  while (active_) {
    const TaskEntry& t = tasks_[current_task_];
    if (!t.valid || t.end_pc_ofs != ofs) break;
    if (++depth > geom_.max_loops) {
      throw SimError("ZOLC cascade exceeded hardware depth at " + hex32(pc));
    }
    LoopEntry& loop = loops_[t.loop_id];
    if (!loop.valid) {
      throw SimError("task " + std::to_string(current_task_) +
                     " references invalid loop " + std::to_string(t.loop_id));
    }
    const std::int32_t next = loop.current + loop.step;
    if (cond_holds(loop.cond, next, loop.final)) {
      // Loop back-edge: zero-overhead task switch to the body start.
      loop.current = next;
      ev.rf_writes.push_back(RfWrite{loop.index_rf, next});
      current_task_ = t.next_task_cont;
      ev.redirect = ofs_to_pc(task_start_[t.next_task_cont]);
      ++stats_.continue_events;
      break;
    }
    // Loop completion: reinit-on-exit, then hand over to the done successor
    // (which may share this end_pc -- the combinational cascade).
    loop.current = loop.initial;
    ev.rf_writes.push_back(RfWrite{loop.index_rf, loop.initial});
    ++stats_.done_events;
    if (t.is_last) {
      active_ = false;
      ev.redirect.reset();  // fall through to the code after the region
      break;
    }
    current_task_ = t.next_task_done;
    ev.redirect = ofs_to_pc(task_start_[t.next_task_done]);
  }
  if (depth > 1) {
    ++stats_.cascade_chains;
    stats_.max_cascade_depth = std::max<std::uint64_t>(stats_.max_cascade_depth,
                                                       depth);
  }
  refresh_trigger();
  return ev;
}

void ZolcController::apply_reinit_mask(std::uint32_t mask, AccelEvent& ev) {
  for (unsigned i = 0; i < geom_.max_loops; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    LoopEntry& loop = loops_[i];
    if (!loop.valid) {
      throw SimError("reinit mask references invalid loop " +
                     std::to_string(i));
    }
    loop.current = loop.initial;
    ev.rf_writes.push_back(RfWrite{loop.index_rf, loop.initial});
  }
}

std::optional<AccelEvent> ZolcController::on_taken_control(
    std::uint32_t pc, std::uint32_t target) {
  if (!active_ || variant_ != ZolcVariant::kFull) return std::nullopt;

  AccelEvent ev;
  bool matched = false;

  // Candidate exits, scoped to the current task's controlling loop (the
  // hardware compares only that loop's bank of records).
  const TaskEntry& t = tasks_[current_task_];
  std::uint16_t ofs = 0;
  if (t.valid && pc_to_ofs(pc, ofs)) {
    const unsigned bank = t.loop_id * geom_.max_exits_per_loop;
    for (unsigned slot = 0; slot < geom_.max_exits_per_loop; ++slot) {
      const ExitRecord& r = exits_[bank + slot];
      if (!r.valid || r.branch_pc_ofs != ofs) continue;
      matched = true;
      ++stats_.exit_matches;
      apply_reinit_mask(r.reinit_mask, ev);
      current_task_ = r.next_task;
      if (r.deactivate) active_ = false;
      break;
    }
  }

  // Multi-entry records, matched on the transfer target.
  std::uint16_t tofs = 0;
  if (active_ && pc_to_ofs(target, tofs)) {
    for (const EntryRecord& r : entries_) {
      if (!r.valid || r.entry_pc_ofs != tofs) continue;
      matched = true;
      ++stats_.entry_matches;
      apply_reinit_mask(r.reinit_mask, ev);
      current_task_ = r.next_task;
      break;
    }
  }

  if (!matched) return std::nullopt;
  refresh_trigger();
  return ev;
}

cpu::AccelSnapshot ZolcController::snapshot() const {
  cpu::AccelSnapshot s;
  s.loop_count = static_cast<std::uint8_t>(loops_.size());
  for (unsigned i = 0; i < loops_.size(); ++i) {
    s.loop_current[i] = loops_[i].current;
  }
  s.micro_current = micro_.current;
  s.current_task = current_task_;
  s.active = active_;
  return s;
}

namespace {

/// Back-edges a loop in state `cur` will still take: the largest n >= 0 with
/// cond_holds(cur + k*step, final) for every k in [1, n]. All conditions are
/// monotone along the step direction, so the count is closed-form. Returns
/// -1 when the recurrence does not terminate (step against the condition
/// direction, or zero) -- the caller then declines to summarize.
std::int64_t remaining_backedges(std::int64_t cur, std::int64_t step,
                                 std::int64_t fin, LoopCond cond) {
  switch (cond) {
    case LoopCond::kLt:
      if (step <= 0) return -1;
      return cur >= fin ? 0 : (fin - cur - 1) / step;
    case LoopCond::kLe:
      if (step <= 0) return -1;
      return cur > fin ? 0 : (fin - cur) / step;
    case LoopCond::kGt:
      if (step >= 0) return -1;
      return cur <= fin ? 0 : (cur - fin - 1) / -step;
    case LoopCond::kGe:
      if (step >= 0) return -1;
      return cur < fin ? 0 : (cur - fin) / -step;
  }
  return -1;
}

}  // namespace

std::optional<std::uint32_t> ZolcController::trigger_pc() const {
  if (!active_) return std::nullopt;
  if (variant_ == ZolcVariant::kMicro) return micro_.end_pc;
  if (trigger_pc_ == kNoTrigger) return std::nullopt;
  return trigger_pc_;
}

std::optional<cpu::LoopSummaryInfo> ZolcController::innermost_summary() const {
  if (!active_) return std::nullopt;
  cpu::LoopSummaryInfo info;
  if (variant_ == ZolcVariant::kMicro) {
    const std::int64_t remaining = remaining_backedges(
        micro_.current, micro_.step, micro_.final, micro_.cond);
    if (remaining < 0 || micro_.start_pc > micro_.end_pc) return std::nullopt;
    info.body_start = micro_.start_pc;
    info.body_end = micro_.end_pc;
    info.index_rf = micro_.index_rf;
    info.step = micro_.step;
    info.current = micro_.current;
    info.remaining = static_cast<std::uint64_t>(remaining);
    return info;
  }
  // Summaries describe only a self-looping task: the continue successor
  // re-enters the same task, so the whole body repeats under one back-edge
  // comparator with no task switching in between.
  const TaskEntry& t = tasks_[current_task_];
  if (!t.valid || t.next_task_cont != current_task_) return std::nullopt;
  const LoopEntry& loop = loops_[t.loop_id];
  if (!loop.valid) return std::nullopt;
  if (task_start_[current_task_] > t.end_pc_ofs) return std::nullopt;
  const std::int64_t remaining =
      remaining_backedges(loop.current, loop.step, loop.final, loop.cond);
  if (remaining < 0) return std::nullopt;
  info.body_start = ofs_to_pc(task_start_[current_task_]);
  info.body_end = ofs_to_pc(t.end_pc_ofs);
  info.index_rf = loop.index_rf;
  info.step = loop.step;
  info.current = loop.current;
  info.remaining = static_cast<std::uint64_t>(remaining);
  if (variant_ == ZolcVariant::kFull) {
    const unsigned bank = t.loop_id * geom_.max_exits_per_loop;
    for (unsigned slot = 0; slot < geom_.max_exits_per_loop; ++slot) {
      if (exits_[bank + slot].valid) {
        info.has_exit_records = true;
        break;
      }
    }
  }
  return info;
}

void ZolcController::advance_innermost(std::uint64_t iterations) {
  ZS_EXPECTS(active_);
  if (variant_ == ZolcVariant::kMicro) {
    micro_.current = static_cast<std::int32_t>(
        micro_.current +
        static_cast<std::int64_t>(micro_.step) *
            static_cast<std::int64_t>(iterations));
  } else {
    const TaskEntry& t = tasks_[current_task_];
    ZS_EXPECTS(t.valid && t.next_task_cont == current_task_);
    LoopEntry& loop = loops_[t.loop_id];
    loop.current = static_cast<std::int32_t>(
        loop.current + static_cast<std::int64_t>(loop.step) *
                           static_cast<std::int64_t>(iterations));
  }
  stats_.continue_events += iterations;
}

const cpu::NestProgram* ZolcController::nest_program() const {
  if (variant_ == ZolcVariant::kMicro || !active_) return nullptr;
  if (!nest_dirty_) return &nest_prog_;
  nest_prog_.loops.assign(loops_.size(), cpu::NestLoopDesc{});
  nest_prog_.tasks.assign(tasks_.size(), cpu::NestTaskDesc{});
  static_assert(static_cast<int>(LoopCond::kLt) ==
                        static_cast<int>(cpu::NestCond::kLt) &&
                    static_cast<int>(LoopCond::kGe) ==
                        static_cast<int>(cpu::NestCond::kGe),
                "NestCond must mirror LoopCond");
  for (unsigned i = 0; i < loops_.size(); ++i) {
    const LoopEntry& l = loops_[i];
    cpu::NestLoopDesc& d = nest_prog_.loops[i];
    d.valid = l.valid;
    if (!l.valid) continue;
    d.index_rf = l.index_rf;
    d.cond = static_cast<cpu::NestCond>(l.cond);
    d.step = l.step;
    d.initial = l.initial;
    d.final = l.final;
    const std::int64_t edges =
        remaining_backedges(l.initial, l.step, l.final, l.cond);
    d.trips = edges < 0 ? 0 : static_cast<std::uint64_t>(edges) + 1;
    if (variant_ == ZolcVariant::kFull) {
      const unsigned bank = i * geom_.max_exits_per_loop;
      for (unsigned slot = 0; slot < geom_.max_exits_per_loop; ++slot) {
        if (exits_[bank + slot].valid) {
          d.has_exit_records = true;
          break;
        }
      }
    }
  }
  for (unsigned i = 0; i < tasks_.size(); ++i) {
    const TaskEntry& t = tasks_[i];
    cpu::NestTaskDesc& d = nest_prog_.tasks[i];
    // start_pc resolves for every entry: on_fetch redirects through
    // task_start_ without a validity check, and the export must mirror that.
    d.start_pc = ofs_to_pc(task_start_[i]);
    d.valid = t.valid;
    if (!t.valid) continue;
    d.end_pc = ofs_to_pc(t.end_pc_ofs);
    d.loop = t.loop_id;
    d.cont = t.next_task_cont;
    d.done = t.next_task_done;
    d.is_last = t.is_last;
  }
  // walk_safe: the worst-case done-cascade from each task (successors
  // sharing its end PC) references only valid loops and stays within the
  // hardware depth limit, so an inline event walk can never hit a condition
  // on_fetch would report as a SimError.
  for (cpu::NestTaskDesc& d : nest_prog_.tasks) {
    if (!d.valid) continue;
    bool safe = true;
    unsigned cur = static_cast<unsigned>(&d - nest_prog_.tasks.data());
    unsigned depth = 0;
    while (true) {
      const cpu::NestTaskDesc& t = nest_prog_.tasks[cur];
      if (!t.valid || t.end_pc != d.end_pc) break;  // cascade stops cleanly
      if (++depth > geom_.max_loops || !nest_prog_.loops[t.loop].valid) {
        safe = false;
        break;
      }
      if (t.is_last) break;  // done here deactivates
      cur = t.done;
    }
    d.walk_safe = safe;
  }
  nest_dirty_ = false;
  return &nest_prog_;
}

void ZolcController::credit_summary_events(std::uint64_t continues,
                                           std::uint64_t dones,
                                           std::uint64_t cascades,
                                           std::uint64_t max_cascade_depth) {
  stats_.continue_events += continues;
  stats_.done_events += dones;
  stats_.cascade_chains += cascades;
  stats_.max_cascade_depth =
      std::max(stats_.max_cascade_depth, max_cascade_depth);
}

void ZolcController::restore(const cpu::AccelSnapshot& snapshot) {
  if (auto restored = try_restore(snapshot); !restored.ok()) {
    throw SimError(restored.error().to_string());
  }
}

Result<void> ZolcController::try_restore(const cpu::AccelSnapshot& snapshot) {
  if (snapshot.loop_count != loops_.size()) {
    return Error{ErrorCode::kBadContext,
                 "snapshot carries " + std::to_string(snapshot.loop_count) +
                     " loops, geometry " + geom_.label() + " has " +
                     std::to_string(loops_.size())};
  }
  for (unsigned i = 0; i < loops_.size(); ++i) {
    loops_[i].current = snapshot.loop_current[i];
  }
  micro_.current = snapshot.micro_current;
  current_task_ = snapshot.current_task;
  active_ = snapshot.active;
  refresh_trigger();
  return {};
}

ZolcContext ZolcController::save_context() const {
  ZolcContext ctx;
  ctx.variant = variant_;
  ctx.geometry = geom_;
  ctx.tasks = tasks_;
  ctx.task_start = task_start_;
  ctx.loops = loops_;
  ctx.exits = exits_;
  ctx.entries = entries_;
  ctx.micro = micro_;
  ctx.base = base_;
  ctx.current_task = current_task_;
  ctx.active = active_;
  ctx.stats = stats_;
  return ctx;
}

Result<void> ZolcController::restore_context(const ZolcContext& context) {
  if (context.variant != variant_ || !(context.geometry == geom_)) {
    return Error{ErrorCode::kBadContext,
                 "context for " + std::string(variant_name(context.variant)) +
                     "/" + context.geometry.label() + " cannot restore onto " +
                     std::string(variant_name(variant_)) + "/" + geom_.label()};
  }
  if (context.tasks.size() != tasks_.size() ||
      context.task_start.size() != task_start_.size() ||
      context.loops.size() != loops_.size() ||
      context.exits.size() != exits_.size() ||
      context.entries.size() != entries_.size()) {
    return Error{ErrorCode::kBadContext,
                 "context table sizes do not match geometry " + geom_.label()};
  }
  tasks_ = context.tasks;
  task_start_ = context.task_start;
  loops_ = context.loops;
  exits_ = context.exits;
  entries_ = context.entries;
  micro_ = context.micro;
  base_ = context.base;
  current_task_ = context.current_task;
  active_ = context.active;
  stats_ = context.stats;
  nest_dirty_ = true;  // the export resolves table offsets against base_
  refresh_trigger();
  return {};
}

std::string ZolcController::describe() const {
  std::ostringstream os;
  os << "ZOLC variant: " << variant_name(variant_)
     << (active_ ? " [active, task " + std::to_string(current_task_) + "]"
                 : " [inactive]")
     << '\n';
  if (variant_ == ZolcVariant::kMicro) {
    os << "  loop: initial=" << micro_.initial << " final=" << micro_.final
       << " step=" << micro_.step << " current=" << micro_.current
       << " index_rf=" << isa::reg_name(micro_.index_rf)
       << " start=" << hex32(micro_.start_pc) << " end=" << hex32(micro_.end_pc)
       << '\n';
    return os.str();
  }
  os << "  geometry: " << geom_.label() << '\n';
  os << "  base: " << hex32(base_) << '\n';
  for (unsigned i = 0; i < tasks_.size(); ++i) {
    const TaskEntry& t = tasks_[i];
    if (!t.valid) continue;
    os << "  task " << i << ": start_ofs=" << task_start_[i]
       << " end_ofs=" << t.end_pc_ofs << " loop=" << unsigned(t.loop_id)
       << " cont->" << unsigned(t.next_task_cont) << " done->"
       << unsigned(t.next_task_done) << (t.is_last ? " [last]" : "") << '\n';
  }
  for (unsigned i = 0; i < loops_.size(); ++i) {
    const LoopEntry& l = loops_[i];
    if (!l.valid) continue;
    os << "  loop " << i << ": init=" << l.initial << " final=" << l.final
       << " step=" << int(l.step) << " index_rf=" << isa::reg_name(l.index_rf)
       << " cond=" << unsigned(static_cast<std::uint8_t>(l.cond))
       << " current=" << l.current << '\n';
  }
  if (variant_ == ZolcVariant::kFull) {
    for (unsigned i = 0; i < exits_.size(); ++i) {
      const ExitRecord& r = exits_[i];
      if (!r.valid) continue;
      os << "  exit[" << i / geom_.max_exits_per_loop << '.'
         << i % geom_.max_exits_per_loop << "]: branch_ofs=" << r.branch_pc_ofs
         << " next_task=" << unsigned(r.next_task) << " reinit=0x" << std::hex
         << r.reinit_mask << std::dec
         << (r.deactivate ? " [deactivate]" : "") << '\n';
    }
    for (unsigned i = 0; i < entries_.size(); ++i) {
      const EntryRecord& r = entries_[i];
      if (!r.valid) continue;
      os << "  entry[" << i / geom_.max_entries_per_loop << '.'
         << i % geom_.max_entries_per_loop << "]: entry_ofs=" << r.entry_pc_ofs
         << " next_task=" << unsigned(r.next_task) << " reinit=0x" << std::hex
         << r.reinit_mask << std::dec << '\n';
    }
  }
  return os.str();
}

}  // namespace zolcsim::zolc
