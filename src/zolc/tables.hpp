// Bit-accurate ZOLC storage formats. These pack/unpack routines are the
// single source of truth shared by the controller (decoding init-mode
// writes) and the code generator (emitting init sequences), so the two can
// never disagree on a field layout. Field positions derive from a
// ZolcGeometry (DESIGN.md 4.1); with the default (paper) geometry the
// layouts and storage byte counts reproduce the paper exactly.
#ifndef ZOLCSIM_ZOLC_TABLES_HPP
#define ZOLCSIM_ZOLC_TABLES_HPP

#include <cstdint>

#include "zolc/config.hpp"

namespace zolcsim::zolc {

/// Loop-continuation condition: after the index update, the loop continues
/// iff `cond_holds(cond, next_index, final)`.
enum class LoopCond : std::uint8_t { kLt = 0, kLe = 1, kGt = 2, kGe = 3 };

[[nodiscard]] constexpr bool cond_holds(LoopCond cond, std::int32_t next,
                                        std::int32_t final) noexcept {
  switch (cond) {
    case LoopCond::kLt: return next < final;
    case LoopCond::kLe: return next <= final;
    case LoopCond::kGt: return next > final;
    case LoopCond::kGe: return next >= final;
  }
  return false;
}

/// Task selection LUT entry (one 32-bit init word). Generic layout, LSB
/// first: end_pc_ofs (pc_ofs_bits), loop_id, next_task_cont, next_task_done,
/// is_last, valid. Paper geometry (16/3/5 bits):
///   [15:0]  end_pc_ofs   word offset (from the activation base) of the last
///                        instruction of the task
///   [18:16] loop_id      loop tested at this boundary
///   [23:19] next_task_cont  task entered when the loop continues
///   [28:24] next_task_done  task entered when the loop completes
///   [29]    is_last      completing here leaves the outermost region
///   [30]    valid
///   [31]    reserved
struct TaskEntry {
  std::uint16_t end_pc_ofs = 0;
  std::uint8_t loop_id = 0;
  std::uint8_t next_task_cont = 0;
  std::uint8_t next_task_done = 0;
  bool is_last = false;
  bool valid = false;

  [[nodiscard]] std::uint32_t pack(
      const ZolcGeometry& geom = ZolcGeometry{}) const noexcept;
  [[nodiscard]] static TaskEntry unpack(
      std::uint32_t word, const ZolcGeometry& geom = ZolcGeometry{}) noexcept;

  friend bool operator==(const TaskEntry&, const TaskEntry&) = default;
};

/// Loop parameter table entry (64 bits = two init words; geometry-invariant,
/// only the entry *count* scales):
///   word0: [15:0] initial (signed), [31:16] final (signed)
///   word1: [7:0]  step (signed), [12:8] index_rf, [14:13] cond, [15] valid,
///          [31:16] reserved (the live index copy occupies these bits in
///          hardware; it is runtime state, not init-written)
struct LoopEntry {
  std::int16_t initial = 0;
  std::int16_t final = 0;
  std::int8_t step = 0;
  std::uint8_t index_rf = 0;
  LoopCond cond = LoopCond::kLt;
  bool valid = false;
  /// Runtime state: live index value (mirrors the RF index register).
  std::int32_t current = 0;

  [[nodiscard]] std::uint32_t pack_word0() const noexcept;
  [[nodiscard]] std::uint32_t pack_word1() const noexcept;
  void unpack_word0(std::uint32_t word) noexcept;
  void unpack_word1(std::uint32_t word) noexcept;

  friend bool operator==(const LoopEntry&, const LoopEntry&) = default;
};

/// Candidate-exit record, ZOLCfull only. Generic layout, LSB first:
/// branch_pc_ofs (pc_ofs_bits), next_task, reinit_mask (max_loops bits),
/// valid, kind (bit0: deactivate, leaves the region). Records wider than one
/// init word spill into the hi word. Paper geometry (48 bits = 32 + 16):
///   lo: [15:0] branch_pc_ofs, [20:16] next_task, [28:21] reinit_mask,
///       [29] valid, [31:30] kind
///   hi: [15:0] reserved
struct ExitRecord {
  std::uint16_t branch_pc_ofs = 0;
  std::uint8_t next_task = 0;
  std::uint32_t reinit_mask = 0;
  bool valid = false;
  bool deactivate = false;

  [[nodiscard]] std::uint64_t pack64(
      const ZolcGeometry& geom = ZolcGeometry{}) const noexcept;
  [[nodiscard]] static ExitRecord unpack64(
      std::uint64_t bits, const ZolcGeometry& geom = ZolcGeometry{}) noexcept;

  [[nodiscard]] std::uint32_t pack_lo(
      const ZolcGeometry& geom = ZolcGeometry{}) const noexcept {
    return static_cast<std::uint32_t>(pack64(geom));
  }
  [[nodiscard]] std::uint32_t pack_hi(
      const ZolcGeometry& geom = ZolcGeometry{}) const noexcept {
    return static_cast<std::uint32_t>(pack64(geom) >> 32);
  }
  void unpack_lo(std::uint32_t word,
                 const ZolcGeometry& geom = ZolcGeometry{}) noexcept;
  void unpack_hi(std::uint32_t word,
                 const ZolcGeometry& geom = ZolcGeometry{}) noexcept;

  friend bool operator==(const ExitRecord&, const ExitRecord&) = default;
};

/// Multi-entry record, ZOLCfull only. Same generic layout as ExitRecord but
/// keyed on the transfer target and without the kind field. Paper geometry
/// (48 bits = 32 + 16):
///   lo: [15:0] entry_pc_ofs, [20:16] next_task, [28:21] reinit_mask,
///       [29] valid
///   hi: [15:0] reserved
struct EntryRecord {
  std::uint16_t entry_pc_ofs = 0;
  std::uint8_t next_task = 0;
  std::uint32_t reinit_mask = 0;
  bool valid = false;

  [[nodiscard]] std::uint64_t pack64(
      const ZolcGeometry& geom = ZolcGeometry{}) const noexcept;
  [[nodiscard]] static EntryRecord unpack64(
      std::uint64_t bits, const ZolcGeometry& geom = ZolcGeometry{}) noexcept;

  [[nodiscard]] std::uint32_t pack_lo(
      const ZolcGeometry& geom = ZolcGeometry{}) const noexcept {
    return static_cast<std::uint32_t>(pack64(geom));
  }
  [[nodiscard]] std::uint32_t pack_hi(
      const ZolcGeometry& geom = ZolcGeometry{}) const noexcept {
    return static_cast<std::uint32_t>(pack64(geom) >> 32);
  }
  void unpack_lo(std::uint32_t word,
                 const ZolcGeometry& geom = ZolcGeometry{}) noexcept;
  void unpack_hi(std::uint32_t word,
                 const ZolcGeometry& geom = ZolcGeometry{}) noexcept;

  friend bool operator==(const EntryRecord&, const EntryRecord&) = default;
};

/// uZOLC register file indices for zolw.u (six 32-bit data registers plus
/// three 16-bit control registers; DESIGN.md 4.1).
enum class MicroReg : std::uint8_t {
  kInitial = 0,
  kFinal = 1,
  kStep = 2,
  kCurrent = 3,
  kStartPc = 4,
  kEndPc = 5,
  kCtrl = 6,   ///< [4:0] index_rf, [6:5] cond
  kCount = 7,  ///< reserved
  kStatus = 8, ///< reserved
};

inline constexpr unsigned kMicroRegCount = 9;

/// Packs the uZOLC control register payload.
[[nodiscard]] std::uint32_t pack_micro_ctrl(std::uint8_t index_rf,
                                            LoopCond cond) noexcept;

}  // namespace zolcsim::zolc

#endif  // ZOLCSIM_ZOLC_TABLES_HPP
