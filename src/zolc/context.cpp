#include "zolc/context.hpp"

#include <limits>

#include "common/bitutil.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"

namespace zolcsim::zolc {

namespace {

// ---- payload emission ----
//
// The payload object is the canonical byte form of a context: key() and the
// serialized artifact's integrity digest are both FNV-1a 64 over this exact
// string, and from_json() re-emits the parsed payload to verify the digest,
// so any accepted document round-trips byte-identically.

void append_uint(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_int(std::string& out, std::int64_t v) { out += std::to_string(v); }

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

std::string payload_json(const ZolcContext& ctx) {
  std::string out = "{\"variant\":\"";
  out += variant_name(ctx.variant);
  out += "\",\"geometry\":{\"max_tasks\":";
  append_uint(out, ctx.geometry.max_tasks);
  out += ",\"max_loops\":";
  append_uint(out, ctx.geometry.max_loops);
  out += ",\"max_exits_per_loop\":";
  append_uint(out, ctx.geometry.max_exits_per_loop);
  out += ",\"max_entries_per_loop\":";
  append_uint(out, ctx.geometry.max_entries_per_loop);
  out += ",\"pc_ofs_bits\":";
  append_uint(out, ctx.geometry.pc_ofs_bits);
  out += "},\"base\":";
  append_uint(out, ctx.base);
  out += ",\"current_task\":";
  append_uint(out, ctx.current_task);
  out += ",\"active\":";
  append_bool(out, ctx.active);
  out += ",\"micro\":{\"initial\":";
  append_int(out, ctx.micro.initial);
  out += ",\"final\":";
  append_int(out, ctx.micro.final);
  out += ",\"step\":";
  append_int(out, ctx.micro.step);
  out += ",\"current\":";
  append_int(out, ctx.micro.current);
  out += ",\"start_pc\":";
  append_uint(out, ctx.micro.start_pc);
  out += ",\"end_pc\":";
  append_uint(out, ctx.micro.end_pc);
  out += ",\"index_rf\":";
  append_uint(out, ctx.micro.index_rf);
  out += ",\"cond\":";
  append_uint(out, static_cast<std::uint8_t>(ctx.micro.cond));
  out += "},\"tasks\":[";
  for (std::size_t i = 0; i < ctx.tasks.size(); ++i) {
    const TaskEntry& t = ctx.tasks[i];
    if (i != 0) out += ',';
    out += "{\"end_pc_ofs\":";
    append_uint(out, t.end_pc_ofs);
    out += ",\"loop_id\":";
    append_uint(out, t.loop_id);
    out += ",\"next_task_cont\":";
    append_uint(out, t.next_task_cont);
    out += ",\"next_task_done\":";
    append_uint(out, t.next_task_done);
    out += ",\"is_last\":";
    append_bool(out, t.is_last);
    out += ",\"valid\":";
    append_bool(out, t.valid);
    out += '}';
  }
  out += "],\"task_start\":[";
  for (std::size_t i = 0; i < ctx.task_start.size(); ++i) {
    if (i != 0) out += ',';
    append_uint(out, ctx.task_start[i]);
  }
  out += "],\"loops\":[";
  for (std::size_t i = 0; i < ctx.loops.size(); ++i) {
    const LoopEntry& l = ctx.loops[i];
    if (i != 0) out += ',';
    out += "{\"initial\":";
    append_int(out, l.initial);
    out += ",\"final\":";
    append_int(out, l.final);
    out += ",\"step\":";
    append_int(out, l.step);
    out += ",\"index_rf\":";
    append_uint(out, l.index_rf);
    out += ",\"cond\":";
    append_uint(out, static_cast<std::uint8_t>(l.cond));
    out += ",\"valid\":";
    append_bool(out, l.valid);
    out += ",\"current\":";
    append_int(out, l.current);
    out += '}';
  }
  out += "],\"exits\":[";
  for (std::size_t i = 0; i < ctx.exits.size(); ++i) {
    const ExitRecord& r = ctx.exits[i];
    if (i != 0) out += ',';
    out += "{\"branch_pc_ofs\":";
    append_uint(out, r.branch_pc_ofs);
    out += ",\"next_task\":";
    append_uint(out, r.next_task);
    out += ",\"reinit_mask\":";
    append_uint(out, r.reinit_mask);
    out += ",\"valid\":";
    append_bool(out, r.valid);
    out += ",\"deactivate\":";
    append_bool(out, r.deactivate);
    out += '}';
  }
  out += "],\"entries\":[";
  for (std::size_t i = 0; i < ctx.entries.size(); ++i) {
    const EntryRecord& r = ctx.entries[i];
    if (i != 0) out += ',';
    out += "{\"entry_pc_ofs\":";
    append_uint(out, r.entry_pc_ofs);
    out += ",\"next_task\":";
    append_uint(out, r.next_task);
    out += ",\"reinit_mask\":";
    append_uint(out, r.reinit_mask);
    out += ",\"valid\":";
    append_bool(out, r.valid);
    out += '}';
  }
  out += "],\"stats\":{\"continue_events\":";
  append_uint(out, ctx.stats.continue_events);
  out += ",\"done_events\":";
  append_uint(out, ctx.stats.done_events);
  out += ",\"cascade_chains\":";
  append_uint(out, ctx.stats.cascade_chains);
  out += ",\"max_cascade_depth\":";
  append_uint(out, ctx.stats.max_cascade_depth);
  out += ",\"exit_matches\":";
  append_uint(out, ctx.stats.exit_matches);
  out += ",\"entry_matches\":";
  append_uint(out, ctx.stats.entry_matches);
  out += ",\"table_writes\":";
  append_uint(out, ctx.stats.table_writes);
  out += "}}";
  return out;
}

// ---- parse helpers ----

Error corrupt(const std::string& what) {
  return Error{ErrorCode::kStoreCorrupt, "context: " + what};
}

Error bad(const std::string& what) {
  return Error{ErrorCode::kBadContext, "context: " + what};
}

/// Member as an unsigned integer <= `max`; nullopt on absence or range.
std::optional<std::uint64_t> get_uint(const json::Value& obj,
                                      std::string_view name,
                                      std::uint64_t max) {
  const json::Value* v = obj.find(name);
  if (v == nullptr) return std::nullopt;
  const auto n = v->as_uint();
  if (!n || *n > max) return std::nullopt;
  return n;
}

/// Member as a signed integer in [min, max]; nullopt otherwise.
std::optional<std::int64_t> get_int(const json::Value& obj,
                                    std::string_view name, std::int64_t min,
                                    std::int64_t max) {
  const json::Value* v = obj.find(name);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double d = v->as_number();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d || i < min || i > max) return std::nullopt;
  return i;
}

std::optional<bool> get_bool(const json::Value& obj, std::string_view name) {
  const json::Value* v = obj.find(name);
  if (v == nullptr || !v->is_bool()) return std::nullopt;
  return v->as_bool();
}

constexpr std::int64_t kI16Min = std::numeric_limits<std::int16_t>::min();
constexpr std::int64_t kI16Max = std::numeric_limits<std::int16_t>::max();
constexpr std::int64_t kI32Min = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kI32Max = std::numeric_limits<std::int32_t>::max();
constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

}  // namespace

std::uint64_t ZolcContext::key() const { return fnv1a64(payload_json(*this)); }

std::string ZolcContext::to_json() const {
  const std::string payload = payload_json(*this);
  std::string out = "{\n  \"format\": \"";
  out += kFormat;
  out += "\",\n  \"payload_fnv1a64\": \"";
  out += hex64(fnv1a64(payload));
  out += "\",\n  \"payload\": ";
  out += payload;
  out += "\n}\n";
  return out;
}

Result<ZolcContext> ZolcContext::from_json(std::string_view text) {
  auto parsed = json::parse(text);
  if (!parsed.ok()) {
    return std::move(parsed).error().with_context("context artifact");
  }
  const json::Value& doc = parsed.value();
  if (!doc.is_object()) return corrupt("document is not an object");

  const json::Value* format = doc.find("format");
  if (format == nullptr || !format->is_string()) {
    return corrupt("missing format tag");
  }
  if (format->as_string() != kFormat) {
    return Error{ErrorCode::kStoreStale,
                 "context: format '" + format->as_string() + "' (expected '" +
                     std::string(kFormat) + "')"};
  }
  const json::Value* digest = doc.find("payload_fnv1a64");
  if (digest == nullptr || !digest->is_string()) {
    return corrupt("missing payload digest");
  }
  const auto want = parse_hex64(digest->as_string());
  if (!want) return corrupt("malformed payload digest");
  const json::Value* payload = doc.find("payload");
  if (payload == nullptr || !payload->is_object()) {
    return corrupt("missing payload object");
  }

  ZolcContext ctx;
  const json::Value* variant = payload->find("variant");
  if (variant == nullptr || !variant->is_string()) {
    return corrupt("missing variant");
  }
  bool known_variant = false;
  for (const ZolcVariant v :
       {ZolcVariant::kMicro, ZolcVariant::kLite, ZolcVariant::kFull}) {
    if (variant->as_string() == variant_name(v)) {
      ctx.variant = v;
      known_variant = true;
      break;
    }
  }
  if (!known_variant) {
    return bad("unknown variant '" + variant->as_string() + "'");
  }

  const json::Value* geometry = payload->find("geometry");
  if (geometry == nullptr || !geometry->is_object()) {
    return corrupt("missing geometry");
  }
  {
    const auto tasks = get_uint(*geometry, "max_tasks", 256);
    const auto loops = get_uint(*geometry, "max_loops", kMaxGeometryLoops);
    const auto exits = get_uint(*geometry, "max_exits_per_loop", 8);
    const auto entries = get_uint(*geometry, "max_entries_per_loop", 8);
    const auto pc_bits = get_uint(*geometry, "pc_ofs_bits", 16);
    if (!tasks || !loops || !exits || !entries || !pc_bits) {
      return corrupt("malformed geometry");
    }
    ctx.geometry = ZolcGeometry{
        static_cast<unsigned>(*tasks), static_cast<unsigned>(*loops),
        static_cast<unsigned>(*exits), static_cast<unsigned>(*entries),
        static_cast<unsigned>(*pc_bits)};
  }
  if (!ctx.geometry.valid() ||
      !(ctx.geometry == ctx.geometry.for_variant(ctx.variant))) {
    return bad("geometry " + ctx.geometry.label() + " does not fit variant " +
               std::string(variant_name(ctx.variant)));
  }

  const auto base = get_uint(*payload, "base", 0xffffffffull);
  const auto current_task = get_uint(*payload, "current_task", 0xff);
  const auto active = get_bool(*payload, "active");
  if (!base || !current_task || !active) return corrupt("malformed header");
  ctx.base = static_cast<std::uint32_t>(*base);
  ctx.current_task = static_cast<std::uint8_t>(*current_task);
  ctx.active = *active;
  if (ctx.current_task != 0 && ctx.current_task >= ctx.geometry.max_tasks) {
    return bad("current_task " + std::to_string(ctx.current_task) +
               " out of range for geometry " + ctx.geometry.label());
  }

  const json::Value* micro = payload->find("micro");
  if (micro == nullptr || !micro->is_object()) return corrupt("missing micro");
  {
    const auto initial = get_int(*micro, "initial", kI32Min, kI32Max);
    const auto final_v = get_int(*micro, "final", kI32Min, kI32Max);
    const auto step = get_int(*micro, "step", kI32Min, kI32Max);
    const auto current = get_int(*micro, "current", kI32Min, kI32Max);
    const auto start_pc = get_uint(*micro, "start_pc", 0xffffffffull);
    const auto end_pc = get_uint(*micro, "end_pc", 0xffffffffull);
    const auto index_rf = get_uint(*micro, "index_rf", 31);
    const auto cond = get_uint(*micro, "cond", 3);
    if (!initial || !final_v || !step || !current || !start_pc || !end_pc ||
        !index_rf || !cond) {
      return corrupt("malformed micro state");
    }
    ctx.micro.initial = static_cast<std::int32_t>(*initial);
    ctx.micro.final = static_cast<std::int32_t>(*final_v);
    ctx.micro.step = static_cast<std::int32_t>(*step);
    ctx.micro.current = static_cast<std::int32_t>(*current);
    ctx.micro.start_pc = static_cast<std::uint32_t>(*start_pc);
    ctx.micro.end_pc = static_cast<std::uint32_t>(*end_pc);
    ctx.micro.index_rf = static_cast<std::uint8_t>(*index_rf);
    ctx.micro.cond = static_cast<LoopCond>(*cond);
  }

  const json::Value* tasks = payload->find("tasks");
  const json::Value* task_start = payload->find("task_start");
  const json::Value* loops = payload->find("loops");
  const json::Value* exits = payload->find("exits");
  const json::Value* entries = payload->find("entries");
  for (const json::Value* table : {tasks, task_start, loops, exits, entries}) {
    if (table == nullptr || !table->is_array()) {
      return corrupt("missing table array");
    }
  }
  if (tasks->items().size() != ctx.geometry.max_tasks ||
      task_start->items().size() != ctx.geometry.max_tasks ||
      loops->items().size() != ctx.geometry.max_loops ||
      exits->items().size() != ctx.geometry.exit_record_count() ||
      entries->items().size() != ctx.geometry.entry_record_count()) {
    return bad("table sizes do not match geometry " + ctx.geometry.label());
  }

  const std::uint64_t pc_ofs_max = mask32(ctx.geometry.pc_ofs_bits);
  const std::uint64_t mask_max = mask32(ctx.geometry.max_loops);
  for (const json::Value& item : tasks->items()) {
    if (!item.is_object()) return corrupt("malformed task entry");
    const auto end_pc_ofs = get_uint(item, "end_pc_ofs", pc_ofs_max);
    const auto loop_id = get_uint(item, "loop_id", ctx.geometry.max_loops - 1);
    const auto cont = get_uint(item, "next_task_cont", 0xff);
    const auto done = get_uint(item, "next_task_done", 0xff);
    const auto is_last = get_bool(item, "is_last");
    const auto valid = get_bool(item, "valid");
    if (!end_pc_ofs || !loop_id || !cont || !done || !is_last || !valid) {
      return corrupt("malformed task entry");
    }
    TaskEntry t;
    t.end_pc_ofs = static_cast<std::uint16_t>(*end_pc_ofs);
    t.loop_id = static_cast<std::uint8_t>(*loop_id);
    t.next_task_cont = static_cast<std::uint8_t>(*cont);
    t.next_task_done = static_cast<std::uint8_t>(*done);
    t.is_last = *is_last;
    t.valid = *valid;
    ctx.tasks.push_back(t);
  }
  for (const json::Value& item : task_start->items()) {
    const auto ofs = item.as_uint();
    if (!ofs || *ofs > pc_ofs_max) return corrupt("malformed task start");
    ctx.task_start.push_back(static_cast<std::uint16_t>(*ofs));
  }
  for (const json::Value& item : loops->items()) {
    if (!item.is_object()) return corrupt("malformed loop entry");
    const auto initial = get_int(item, "initial", kI16Min, kI16Max);
    const auto final_v = get_int(item, "final", kI16Min, kI16Max);
    const auto step = get_int(item, "step", -128, 127);
    const auto index_rf = get_uint(item, "index_rf", 31);
    const auto cond = get_uint(item, "cond", 3);
    const auto valid = get_bool(item, "valid");
    const auto current = get_int(item, "current", kI32Min, kI32Max);
    if (!initial || !final_v || !step || !index_rf || !cond || !valid ||
        !current) {
      return corrupt("malformed loop entry");
    }
    LoopEntry l;
    l.initial = static_cast<std::int16_t>(*initial);
    l.final = static_cast<std::int16_t>(*final_v);
    l.step = static_cast<std::int8_t>(*step);
    l.index_rf = static_cast<std::uint8_t>(*index_rf);
    l.cond = static_cast<LoopCond>(*cond);
    l.valid = *valid;
    l.current = static_cast<std::int32_t>(*current);
    ctx.loops.push_back(l);
  }
  for (const json::Value& item : exits->items()) {
    if (!item.is_object()) return corrupt("malformed exit record");
    const auto branch = get_uint(item, "branch_pc_ofs", pc_ofs_max);
    const auto next_task = get_uint(item, "next_task", 0xff);
    const auto reinit = get_uint(item, "reinit_mask", mask_max);
    const auto valid = get_bool(item, "valid");
    const auto deactivate = get_bool(item, "deactivate");
    if (!branch || !next_task || !reinit || !valid || !deactivate) {
      return corrupt("malformed exit record");
    }
    ExitRecord r;
    r.branch_pc_ofs = static_cast<std::uint16_t>(*branch);
    r.next_task = static_cast<std::uint8_t>(*next_task);
    r.reinit_mask = static_cast<std::uint32_t>(*reinit);
    r.valid = *valid;
    r.deactivate = *deactivate;
    ctx.exits.push_back(r);
  }
  for (const json::Value& item : entries->items()) {
    if (!item.is_object()) return corrupt("malformed entry record");
    const auto entry_pc = get_uint(item, "entry_pc_ofs", pc_ofs_max);
    const auto next_task = get_uint(item, "next_task", 0xff);
    const auto reinit = get_uint(item, "reinit_mask", mask_max);
    const auto valid = get_bool(item, "valid");
    if (!entry_pc || !next_task || !reinit || !valid) {
      return corrupt("malformed entry record");
    }
    EntryRecord r;
    r.entry_pc_ofs = static_cast<std::uint16_t>(*entry_pc);
    r.next_task = static_cast<std::uint8_t>(*next_task);
    r.reinit_mask = static_cast<std::uint32_t>(*reinit);
    r.valid = *valid;
    ctx.entries.push_back(r);
  }

  const json::Value* stats = payload->find("stats");
  if (stats == nullptr || !stats->is_object()) return corrupt("missing stats");
  {
    const auto continues = get_uint(*stats, "continue_events", kU64Max);
    const auto dones = get_uint(*stats, "done_events", kU64Max);
    const auto cascades = get_uint(*stats, "cascade_chains", kU64Max);
    const auto depth = get_uint(*stats, "max_cascade_depth", kU64Max);
    const auto exit_m = get_uint(*stats, "exit_matches", kU64Max);
    const auto entry_m = get_uint(*stats, "entry_matches", kU64Max);
    const auto writes = get_uint(*stats, "table_writes", kU64Max);
    if (!continues || !dones || !cascades || !depth || !exit_m || !entry_m ||
        !writes) {
      return corrupt("malformed stats");
    }
    ctx.stats.continue_events = *continues;
    ctx.stats.done_events = *dones;
    ctx.stats.cascade_chains = *cascades;
    ctx.stats.max_cascade_depth = *depth;
    ctx.stats.exit_matches = *exit_m;
    ctx.stats.entry_matches = *entry_m;
    ctx.stats.table_writes = *writes;
  }

  // Integrity: the canonical re-emission of what we parsed must hash to the
  // declared digest; anything else is a tampered or truncated artifact.
  if (fnv1a64(payload_json(ctx)) != *want) {
    return corrupt("payload digest mismatch");
  }
  return ctx;
}

ContextSwitchCost context_switch_cost(const ZolcContext& ctx) {
  ContextSwitchCost cost;
  if (ctx.variant == ZolcVariant::kMicro) {
    // Save: the live index register + one status word. Restore: the seven
    // meaningful uZOLC registers + the status word.
    cost.save_words = 2;
    cost.restore_words = 8;
    return cost;
  }
  std::uint64_t valid_loops = 0;
  for (const LoopEntry& l : ctx.loops) valid_loops += l.valid ? 1 : 0;
  std::uint64_t valid_tasks = 0;
  for (const TaskEntry& t : ctx.tasks) valid_tasks += t.valid ? 1 : 0;
  std::uint64_t valid_records = 0;
  for (const ExitRecord& r : ctx.exits) valid_records += r.valid ? 1 : 0;
  for (const EntryRecord& r : ctx.entries) valid_records += r.valid ? 1 : 0;

  // Save moves only live state: one word per valid loop's index copy plus
  // one position/status word (current task, active flag).
  cost.save_words = valid_loops + 1;
  // Restore replays the init sequence -- two words per valid task (entry +
  // start), two per valid loop, record_words() per valid exit/entry record
  // (the paper's init-overhead accounting) -- then the live loop indices,
  // the activation base, and the position/status word.
  cost.restore_words = 2 * valid_tasks + 2 * valid_loops +
                       ctx.geometry.record_words() * valid_records +
                       valid_loops + 2;
  return cost;
}

}  // namespace zolcsim::zolc
