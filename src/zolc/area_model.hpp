// Storage / combinational-area / timing model for the three ZOLC variants.
//
// The paper reports synthesis results on a 0.13 um ASIC process:
//   storage: uZOLC 30 B, ZOLClite 258 B, ZOLCfull 642 B
//   area:    uZOLC 298, ZOLClite 4056, ZOLCfull 4428 equivalent gates
//   timing:  processor cycle time unaffected, ~170 MHz
//
// We cannot re-run the original synthesis flow, so this module derives the
// same numbers structurally:
//   * storage is computed exactly from the table geometry (DESIGN.md 4.1)
//     -- no calibration involved; the paper geometry reproduces the paper's
//     byte counts, and any ZolcGeometry yields its own counts the same way;
//   * combinational area is a component inventory (comparators, adders,
//     read-mux trees, match logic) priced in NAND2-equivalent gates with
//     fixed per-bit coefficients, plus a per-variant "control/glue" term
//     calibrated so the paper-geometry totals match the paper's synthesis
//     results; tests assert the glue term stays positive and below 15% of
//     the total, i.e. the *structure* explains the area scaling between
//     variants. For non-paper geometries the structural terms scale with the
//     geometry while the glue term is held at its calibrated value;
//   * timing is a static longest-path estimate showing the ZOLC next-PC
//     path is shorter than the processor's ALU path (hence "cycle time not
//     affected").
#ifndef ZOLCSIM_ZOLC_AREA_MODEL_HPP
#define ZOLCSIM_ZOLC_AREA_MODEL_HPP

#include <string>
#include <vector>

#include "zolc/config.hpp"

namespace zolcsim::zolc {

/// One component line in the area inventory.
struct AreaItem {
  std::string name;
  double gates = 0.0;  ///< NAND2-equivalent gates
};

struct AreaBreakdown {
  ZolcVariant variant = ZolcVariant::kMicro;
  ZolcGeometry geometry;         ///< geometry the model was evaluated at
  unsigned storage_bits = 0;
  unsigned storage_bytes = 0;
  std::vector<AreaItem> items;   ///< structural components
  double structural_gates = 0.0; ///< sum of items
  double glue_gates = 0.0;       ///< calibrated control/glue term
  double total_gates = 0.0;      ///< structural + glue (matches the paper)
};

/// Computes the storage and area inventory for `variant` at `geometry`
/// (restricted to the tables the variant implements; the default geometry
/// is the paper prototype).
[[nodiscard]] AreaBreakdown area_model(
    ZolcVariant variant, const ZolcGeometry& geometry = ZolcGeometry{});

/// Static timing estimate (0.13 um-class delays).
struct TimingEstimate {
  double cpu_critical_ns = 0.0;   ///< processor's EX-stage path
  double zolc_critical_ns = 0.0;  ///< ZOLC task-end -> next-PC path
  double fmax_mhz = 0.0;          ///< 1000 / max(cpu, zolc)
  bool zolc_limits_clock = false; ///< true would contradict the paper
};

[[nodiscard]] TimingEstimate timing_model(ZolcVariant variant);

/// NAND2-equivalent per-bit pricing used by the inventory (exposed so tests
/// and documentation can reference one authoritative set of coefficients).
namespace gate_cost {
inline constexpr double kEqPerBit = 1.0;     ///< XNOR + AND-tree slice
inline constexpr double kAddPerBit = 4.0;    ///< optimized ripple adder
inline constexpr double kCmpPerBit = 2.0;    ///< magnitude comparator slice
inline constexpr double kMux2PerBit = 1.75;  ///< 2:1 mux (read trees use n-1)
inline constexpr double kDecodePerOut = 0.7; ///< write-address decoder output
inline constexpr double kMatchPerRecord = 0.5;  ///< record valid/match slice
inline constexpr double kWiredOrPerBit = 2.0;   ///< matched-record OR network
inline constexpr double kReinitPerLoop = 6.0;   ///< reinit-mask distribution
}  // namespace gate_cost

}  // namespace zolcsim::zolc

#endif  // ZOLCSIM_ZOLC_AREA_MODEL_HPP
