#include "cfg/cfg.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/contracts.hpp"

namespace zolcsim::cfg {

namespace {

using isa::Instruction;
using isa::Opcode;

[[maybe_unused]] bool ends_block(const Instruction& instr) {
  if (!instr.valid()) return true;
  const isa::OpcodeInfo& info = isa::opcode_info(instr.op);
  return info.is_cond_branch || info.is_jump || instr.op == Opcode::kHalt;
}

}  // namespace

Cfg::Cfg(std::span<const Instruction> code, std::uint32_t base)
    : base_(base) {
  const auto n = static_cast<unsigned>(code.size());
  ZS_EXPECTS(n > 0);

  // Pass 1: leaders.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  const auto mark_target = [&](std::uint32_t addr) {
    if (addr < base_) return;
    const std::uint32_t idx = (addr - base_) / 4;
    if (idx < n) leader[idx] = true;
  };
  for (unsigned i = 0; i < n; ++i) {
    const Instruction& instr = code[i];
    if (!instr.valid()) continue;
    const std::uint32_t pc = base_ + i * 4;
    const isa::OpcodeInfo& info = isa::opcode_info(instr.op);
    if (info.is_cond_branch) {
      mark_target(isa::branch_target(instr, pc));
      if (i + 1 < n) leader[i + 1] = true;
    } else if (instr.op == Opcode::kJ || instr.op == Opcode::kJal) {
      mark_target(isa::jump_target(instr, pc));
      if (i + 1 < n) leader[i + 1] = true;
    } else if (info.is_jump || instr.op == Opcode::kHalt) {
      if (i + 1 < n) leader[i + 1] = true;
    }
  }

  // Pass 2: blocks.
  block_index_.assign(n, -1);
  for (unsigned i = 0; i < n; ++i) {
    if (leader[i]) {
      BasicBlock block;
      block.first = i;
      blocks_.push_back(block);
    }
    block_index_[i] = static_cast<int>(blocks_.size()) - 1;
  }
  for (auto& block : blocks_) {
    unsigned last = block.first;
    while (last + 1 < n && !leader[last + 1]) ++last;
    block.last = last;
  }

  // Pass 3: edges.
  const auto block_at_addr = [&](std::uint32_t addr) -> int {
    if (addr < base_) return -1;
    const std::uint32_t idx = (addr - base_) / 4;
    if (idx >= n) return -1;
    return block_index_[idx];
  };
  for (unsigned bi = 0; bi < blocks_.size(); ++bi) {
    BasicBlock& block = blocks_[bi];
    const Instruction& term = code[block.last];
    const std::uint32_t pc = base_ + block.last * 4;
    const auto add_edge = [&](int target) {
      if (target < 0) return;
      block.succs.push_back(static_cast<unsigned>(target));
    };
    if (!term.valid() || term.op == Opcode::kHalt) {
      // no successors
    } else {
      const isa::OpcodeInfo& info = isa::opcode_info(term.op);
      if (info.is_cond_branch) {
        add_edge(block_at_addr(isa::branch_target(term, pc)));
        if (block.last + 1 < n) add_edge(block_index_[block.last + 1]);
      } else if (term.op == Opcode::kJ || term.op == Opcode::kJal) {
        add_edge(block_at_addr(isa::jump_target(term, pc)));
      } else if (info.is_jump) {
        // jr/jalr: indirect, no static successors.
      } else if (block.last + 1 < n) {
        add_edge(block_index_[block.last + 1]);
      }
    }
  }
  for (unsigned bi = 0; bi < blocks_.size(); ++bi) {
    for (const unsigned succ : blocks_[bi].succs) {
      blocks_[succ].preds.push_back(bi);
    }
  }

  compute_dominators();
}

int Cfg::block_of(unsigned instr) const {
  if (instr >= block_index_.size()) return -1;
  return block_index_[instr];
}

void Cfg::compute_dominators() {
  const auto n = static_cast<unsigned>(blocks_.size());
  // Reverse post-order DFS from block 0.
  rpo_number_.assign(n, -1);
  std::vector<unsigned> postorder;
  std::vector<std::pair<unsigned, unsigned>> stack;  // (block, next succ)
  std::vector<bool> visited(n, false);
  visited[0] = true;
  stack.emplace_back(0, 0);
  while (!stack.empty()) {
    auto& [block, next] = stack.back();
    if (next < blocks_[block].succs.size()) {
      const unsigned succ = blocks_[block].succs[next++];
      if (!visited[succ]) {
        visited[succ] = true;
        stack.emplace_back(succ, 0);
      }
    } else {
      postorder.push_back(block);
      stack.pop_back();
    }
  }
  rpo_.assign(postorder.rbegin(), postorder.rend());
  for (unsigned i = 0; i < rpo_.size(); ++i) {
    rpo_number_[rpo_[i]] = static_cast<int>(i);
  }

  // Cooper-Harvey-Kennedy iteration.
  constexpr unsigned kUndef = ~0u;
  idom_.assign(n, kUndef);
  idom_[0] = 0;
  const auto intersect = [&](unsigned a, unsigned b) {
    while (a != b) {
      while (rpo_number_[a] > rpo_number_[b]) a = idom_[a];
      while (rpo_number_[b] > rpo_number_[a]) b = idom_[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const unsigned block : rpo_) {
      if (block == 0) continue;
      unsigned new_idom = kUndef;
      for (const unsigned pred : blocks_[block].preds) {
        if (rpo_number_[pred] < 0 || idom_[pred] == kUndef) continue;
        new_idom = new_idom == kUndef ? pred : intersect(pred, new_idom);
      }
      if (new_idom != kUndef && idom_[block] != new_idom) {
        idom_[block] = new_idom;
        changed = true;
      }
    }
  }
}

bool Cfg::dominates(unsigned a, unsigned b) const {
  ZS_EXPECTS(a < blocks_.size() && b < blocks_.size());
  if (!reachable(b)) return false;
  unsigned walk = b;
  while (true) {
    if (walk == a) return true;
    if (walk == 0) return a == 0;
    walk = idom_[walk];
  }
}

unsigned LoopForest::max_depth() const {
  unsigned depth = 0;
  for (const LoopInfo& loop : loops) depth = std::max(depth, loop.depth);
  return depth;
}

LoopForest find_loops(const Cfg& cfg) {
  LoopForest forest;
  const auto& blocks = cfg.blocks();

  // Back edges: tail -> header where the header dominates the tail.
  std::vector<std::pair<unsigned, unsigned>> back_edges;
  for (unsigned b = 0; b < blocks.size(); ++b) {
    if (!cfg.reachable(b)) continue;
    for (const unsigned succ : blocks[b].succs) {
      if (cfg.dominates(succ, b)) back_edges.emplace_back(b, succ);
    }
  }
  // Irreducibility: an edge u->v is retreating if v precedes u in RPO;
  // retreating edges that are not back edges indicate irreducible regions.
  std::vector<int> order(blocks.size(), -1);
  for (unsigned i = 0; i < cfg.rpo().size(); ++i) {
    order[cfg.rpo()[i]] = static_cast<int>(i);
  }
  for (unsigned b = 0; b < blocks.size(); ++b) {
    if (order[b] < 0) continue;
    for (const unsigned succ : blocks[b].succs) {
      if (order[succ] >= 0 && order[succ] <= order[b] &&
          !cfg.dominates(succ, b)) {
        forest.irreducible = true;
      }
    }
  }

  // Natural loops: union of back-edge loops sharing a header.
  std::vector<std::pair<unsigned, std::set<unsigned>>> header_loops;
  for (const auto& [tail, header] : back_edges) {
    auto it = std::find_if(header_loops.begin(), header_loops.end(),
                           [h = header](const auto& e) { return e.first == h; });
    if (it == header_loops.end()) {
      header_loops.emplace_back(header, std::set<unsigned>{header});
      it = std::prev(header_loops.end());
    }
    // Backward flood from tail to header.
    std::vector<unsigned> work{tail};
    while (!work.empty()) {
      const unsigned b = work.back();
      work.pop_back();
      if (it->second.count(b) != 0) continue;
      it->second.insert(b);
      for (const unsigned pred : blocks[b].preds) {
        if (cfg.reachable(pred)) work.push_back(pred);
      }
    }
  }

  for (const auto& [header, members] : header_loops) {
    LoopInfo loop;
    loop.header = header;
    loop.blocks.assign(members.begin(), members.end());
    for (const auto& [tail, h] : back_edges) {
      if (h == header) loop.back_edges.push_back(tail);
    }
    for (const unsigned b : members) {
      for (const unsigned succ : blocks[b].succs) {
        if (members.count(succ) == 0) {
          loop.exit_blocks.push_back(b);
          break;
        }
      }
    }
    for (const unsigned b : members) {
      if (b == header) continue;
      for (const unsigned pred : blocks[b].preds) {
        if (cfg.reachable(pred) && members.count(pred) == 0) {
          loop.entry_blocks.push_back(b);
          break;
        }
      }
    }
    forest.loops.push_back(std::move(loop));
  }

  // Nesting: parent = smallest strictly-containing loop.
  std::sort(forest.loops.begin(), forest.loops.end(),
            [](const LoopInfo& a, const LoopInfo& b) {
              return a.blocks.size() > b.blocks.size();
            });
  for (unsigned i = 0; i < forest.loops.size(); ++i) {
    for (int j = static_cast<int>(i) - 1; j >= 0; --j) {
      const auto& candidate = forest.loops[static_cast<unsigned>(j)].blocks;
      if (std::includes(candidate.begin(), candidate.end(),
                        forest.loops[i].blocks.begin(),
                        forest.loops[i].blocks.end()) &&
          candidate.size() > forest.loops[i].blocks.size()) {
        forest.loops[i].parent = j;
        forest.loops[i].depth =
            forest.loops[static_cast<unsigned>(j)].depth + 1;
        break;
      }
    }
  }
  return forest;
}

std::string describe_structure(const Cfg& cfg, const LoopForest& forest) {
  std::ostringstream os;
  os << "blocks: " << cfg.block_count() << ", loops: " << forest.loops.size()
     << ", max depth: " << forest.max_depth()
     << (forest.irreducible ? ", IRREDUCIBLE" : "") << '\n';
  for (unsigned i = 0; i < forest.loops.size(); ++i) {
    const LoopInfo& loop = forest.loops[i];
    os << std::string(loop.depth * 2, ' ') << "loop " << i << ": header=B"
       << loop.header << " blocks=" << loop.blocks.size()
       << " exits=" << loop.exit_blocks.size()
       << (loop.multi_exit() ? " [multi-exit]" : "")
       << (loop.multi_entry() ? " [multi-entry]" : "") << '\n';
  }
  return os.str();
}

}  // namespace zolcsim::cfg
