// Control-flow graph over decoded programs: basic blocks, successor edges,
// dominators, and natural-loop analysis. This is the analysis view of "task
// regions among loop boundaries" (Section 2 of the paper): it recovers loop
// structure from plain machine code, classifies loops the way the ZOLC
// variants care about (single vs multiple entry/exit), and is used to
// cross-validate the structured lowering.
#ifndef ZOLCSIM_CFG_CFG_HPP
#define ZOLCSIM_CFG_CFG_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/instruction.hpp"

namespace zolcsim::cfg {

/// A maximal straight-line block. Indices are instruction (word) positions
/// within the analyzed code span.
struct BasicBlock {
  unsigned first = 0;
  unsigned last = 0;  ///< inclusive
  std::vector<unsigned> succs;
  std::vector<unsigned> preds;
};

class Cfg {
 public:
  /// Builds the CFG of `code` located at byte address `base`. Indirect jumps
  /// (jr/jalr) are treated as block terminators with no static successors.
  Cfg(std::span<const isa::Instruction> code, std::uint32_t base);

  [[nodiscard]] const std::vector<BasicBlock>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] std::uint32_t base() const noexcept { return base_; }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_.size();
  }

  /// Block containing instruction index `instr`, or -1.
  [[nodiscard]] int block_of(unsigned instr) const;

  /// Immediate dominator of each block (entry's idom is itself). Computed
  /// with the Cooper-Harvey-Kennedy iterative algorithm.
  [[nodiscard]] const std::vector<unsigned>& idom() const noexcept {
    return idom_;
  }

  /// True iff block `a` dominates block `b`.
  [[nodiscard]] bool dominates(unsigned a, unsigned b) const;

  /// Reverse post-order of reachable blocks.
  [[nodiscard]] const std::vector<unsigned>& rpo() const noexcept {
    return rpo_;
  }

  [[nodiscard]] bool reachable(unsigned block) const {
    return rpo_number_[block] >= 0;
  }

 private:
  void compute_dominators();

  std::uint32_t base_ = 0;
  std::vector<BasicBlock> blocks_;
  std::vector<int> block_index_;   ///< instruction index -> block
  std::vector<unsigned> idom_;
  std::vector<unsigned> rpo_;
  std::vector<int> rpo_number_;
};

/// A natural loop discovered from back edges (plus irreducible regions
/// flagged separately).
struct LoopInfo {
  unsigned header = 0;                 ///< header block
  std::vector<unsigned> blocks;        ///< member blocks (sorted)
  std::vector<unsigned> back_edges;    ///< source blocks of back edges
  std::vector<unsigned> exit_blocks;   ///< members with a successor outside
  std::vector<unsigned> entry_blocks;  ///< non-header members with an
                                       ///< outside predecessor (multi-entry)
  int parent = -1;                     ///< enclosing loop index, -1 = top
  unsigned depth = 1;

  [[nodiscard]] bool multi_exit() const noexcept {
    return exit_blocks.size() > 1;
  }
  [[nodiscard]] bool multi_entry() const noexcept {
    return !entry_blocks.empty();
  }
};

struct LoopForest {
  std::vector<LoopInfo> loops;  ///< outer loops before their children
  bool irreducible = false;     ///< retreating non-back edges exist

  [[nodiscard]] unsigned max_depth() const;
};

/// Natural-loop detection over `cfg`.
[[nodiscard]] LoopForest find_loops(const Cfg& cfg);

/// Human-readable structure report (used by the loop explorer example).
[[nodiscard]] std::string describe_structure(const Cfg& cfg,
                                             const LoopForest& forest);

}  // namespace zolcsim::cfg

#endif  // ZOLCSIM_CFG_CFG_HPP
