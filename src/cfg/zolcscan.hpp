// zolcscan: post-link loop acceleration. Scans a compiled binary's CFG for
// the counted-loop back-edge idiom
//
//     head:  <body>
//            addi  idx, idx, step
//            blt   idx, bound, head      (or blt bound, idx for step < 0)
//
// with a constant-initialized index and bound, verifies the loop is safe to
// hardware-manage (single exit, no calls, index not live-out, nothing
// branches into the patched tail), then:
//   * patches the two overhead instructions to nops, and
//   * produces a uZOLC programming plan (start/end PCs, bounds, index reg)
//     that a loader applies through the controller's init interface.
//
// The accelerated loop then iterates at body-only cost -- zero-overhead
// looping for existing binaries, no recompilation. This is the analysis
// counterpart of the structured lowering in src/codegen and mirrors the
// compiler-less deployment story of the ZOLC line of work.
#ifndef ZOLCSIM_CFG_ZOLCSCAN_HPP
#define ZOLCSIM_CFG_ZOLCSCAN_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cfg/cfg.hpp"
#include "common/result.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::cfg {

/// A hardware-manageable counted loop recovered from a binary.
struct MicroPlan {
  std::uint32_t start_pc = 0;  ///< first body instruction
  std::uint32_t end_pc = 0;    ///< last body instruction after patching
  std::int32_t initial = 0;
  std::int32_t final = 0;
  std::int32_t step = 0;
  std::uint8_t index_reg = 0;
  zolc::LoopCond cond = zolc::LoopCond::kLt;
  unsigned update_index = 0;  ///< instruction index of the patched addi
  unsigned branch_index = 0;  ///< instruction index of the patched branch
  unsigned depth = 1;         ///< loop nesting depth (hotness heuristic)

  friend bool operator==(const MicroPlan&, const MicroPlan&) = default;
};

struct ScanReport {
  std::vector<MicroPlan> candidates;  ///< all safely accelerable loops
  /// Per-loop rejection verdicts: a typed kScan* ErrorCode (branch on the
  /// code, never the text) plus a human-readable "loop at BN: why" message.
  std::vector<Error> rejected;

  /// The deepest (hottest) candidate, or nullptr.
  [[nodiscard]] const MicroPlan* best() const;

  /// True iff any rejection carries `code`.
  [[nodiscard]] bool rejected_with(ErrorCode code) const {
    return std::any_of(rejected.begin(), rejected.end(),
                       [code](const Error& e) { return e.code == code; });
  }
};

/// Tunable analysis limits. The defaults match the paper prototype; deriving
/// them from a ZolcGeometry widens the constant-init scan window with the
/// loop capacity, since every enclosing loop contributes prologue
/// instructions between a constant's materialization and the loop header.
struct ScanOptions {
  unsigned init_window = 8;  ///< backward scan distance for constant inits

  [[nodiscard]] static ScanOptions for_geometry(const zolc::ZolcGeometry& g) {
    ScanOptions o;
    o.init_window = std::max(8u, 4 * g.max_loops);
    return o;
  }
};

/// Scans `code` (loaded at `base`) for accelerable counted loops.
[[nodiscard]] ScanReport scan_for_micro_loops(
    std::span<const isa::Instruction> code, std::uint32_t base,
    const ScanOptions& options = {});

/// Returns a copy of `code` with the plan's overhead instructions nop-ed.
[[nodiscard]] std::vector<isa::Instruction> apply_patch(
    std::span<const isa::Instruction> code, const MicroPlan& plan);

/// Programs a uZOLC controller with the plan and activates it (the loader
/// side of the deployment; equivalent to the zolw.u/zolon sequence).
void program_micro_controller(zolc::ZolcController& controller,
                              const MicroPlan& plan);

}  // namespace zolcsim::cfg

#endif  // ZOLCSIM_CFG_ZOLCSCAN_HPP
