#include "cfg/zolcscan.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/contracts.hpp"
#include "isa/build.hpp"

namespace zolcsim::cfg {

namespace {

using isa::Instruction;
using isa::Opcode;

/// Matches a constant materialization `addi reg, $zero, imm` scanning
/// backwards from `from` (exclusive), giving up after `window` instructions
/// or at the first other write to `reg`.
std::optional<std::int32_t> find_constant_init(
    std::span<const Instruction> code, unsigned from, std::uint8_t reg,
    unsigned window = 8) {
  for (unsigned back = 1; back <= window && back <= from; ++back) {
    const Instruction& instr = code[from - back];
    if (!instr.valid()) return std::nullopt;
    const auto dest = isa::dest_reg(instr);
    if (!dest || *dest != reg) continue;
    if (instr.op == Opcode::kAddi && instr.rs == 0) return instr.imm;
    return std::nullopt;  // written by something other than a simple li
  }
  return std::nullopt;
}

/// True iff any instruction in [first, last] reads `reg` before writing it
/// (straight-line scan; conservative for the liveness check below).
bool read_before_write(std::span<const Instruction> code, unsigned first,
                       unsigned last, std::uint8_t reg) {
  for (unsigned i = first; i <= last && i < code.size(); ++i) {
    const Instruction& instr = code[i];
    if (!instr.valid()) continue;
    const isa::SourceRegs srcs = isa::source_regs(instr);
    for (std::uint8_t s = 0; s < srcs.count; ++s) {
      if (srcs.regs[s] == reg) return true;
    }
    const auto dest = isa::dest_reg(instr);
    if (dest && *dest == reg) return false;
  }
  return false;
}

}  // namespace

const MicroPlan* ScanReport::best() const {
  const MicroPlan* best_plan = nullptr;
  for (const MicroPlan& plan : candidates) {
    if (best_plan == nullptr || plan.depth > best_plan->depth) {
      best_plan = &plan;
    }
  }
  return best_plan;
}

ScanReport scan_for_micro_loops(std::span<const Instruction> code,
                                std::uint32_t base,
                                const ScanOptions& options) {
  ScanReport report;
  const Cfg cfg(code, base);
  const LoopForest forest = find_loops(cfg);

  const auto reject = [&report](ErrorCode code, unsigned header,
                                const char* why) {
    std::ostringstream os;
    os << "loop at B" << header << ": " << why;
    report.rejected.emplace_back(code, os.str());
  };

  for (const LoopInfo& loop : forest.loops) {
    // Innermost only: uZOLC manages a single loop level.
    const bool has_child = std::any_of(
        forest.loops.begin(), forest.loops.end(), [&](const LoopInfo& other) {
          return &other != &loop &&
                 std::includes(loop.blocks.begin(), loop.blocks.end(),
                               other.blocks.begin(), other.blocks.end());
        });
    if (has_child) {
      reject(ErrorCode::kScanNotInnermost, loop.header, "not innermost");
      continue;
    }
    if (loop.multi_exit() || loop.multi_entry()) {
      reject(ErrorCode::kScanMultiExit, loop.header,
             "multiple exits/entries need ZOLCfull");
      continue;
    }
    if (loop.back_edges.size() != 1) {
      reject(ErrorCode::kScanIrregularShape, loop.header,
             "multiple back edges");
      continue;
    }

    // The back-edge block must end with the addi/blt idiom.
    const BasicBlock& latch = cfg.blocks()[loop.back_edges.front()];
    const unsigned branch_idx = latch.last;
    if (branch_idx == 0) {
      reject(ErrorCode::kScanIrregularShape, loop.header, "degenerate latch");
      continue;
    }
    const Instruction& branch = code[branch_idx];
    const Instruction& update = code[branch_idx - 1];
    if (branch.op != Opcode::kBlt || update.op != Opcode::kAddi ||
        update.rs != update.rt) {
      reject(ErrorCode::kScanIrregularShape, loop.header,
             "back edge is not the addi/blt idiom");
      continue;
    }
    const std::uint8_t idx_reg = update.rt;
    const std::int32_t step = update.imm;
    std::uint8_t bound_reg = 0;
    zolc::LoopCond cond = zolc::LoopCond::kLt;
    if (branch.rs == idx_reg) {
      bound_reg = branch.rt;  // blt idx, bound: continue while idx < bound
      cond = zolc::LoopCond::kLt;
    } else if (branch.rt == idx_reg) {
      bound_reg = branch.rs;  // blt bound, idx: continue while idx > bound
      cond = zolc::LoopCond::kGt;
    } else {
      reject(ErrorCode::kScanIrregularShape, loop.header,
             "branch does not test the updated index");
      continue;
    }
    if (step == 0 || (step > 0) != (cond == zolc::LoopCond::kLt)) {
      reject(ErrorCode::kScanIrregularShape, loop.header,
             "step direction disagrees with the bound test");
      continue;
    }

    const unsigned header_first = cfg.blocks()[loop.header].first;
    if (header_first + 1 > branch_idx - 1) {
      reject(ErrorCode::kScanIrregularShape, loop.header,
             "no body instructions besides the overhead pair");
      continue;
    }

    // Constant index initial and bound from the preheader.
    const auto initial = find_constant_init(code, header_first, idx_reg,
                                            options.init_window);
    const auto bound = find_constant_init(code, header_first, bound_reg,
                                          options.init_window);
    if (!initial || !bound) {
      reject(ErrorCode::kScanNonConstantBound, loop.header,
             "index/bound are not simple constants");
      continue;
    }

    // Safety: nothing inside the loop may write the index or the bound
    // (besides the patched update), no calls, and no branch may target the
    // patched tail (a path that skips the new end PC would fall out of the
    // loop without a boundary event). A re-materialization of the bound to
    // the same constant (deep software nests recycle bound registers that
    // way) is semantically a no-op and stays safe.
    bool safe = true;
    for (const unsigned block_id : loop.blocks) {
      const BasicBlock& block = cfg.blocks()[block_id];
      for (unsigned i = block.first; i <= block.last && safe; ++i) {
        const Instruction& instr = code[i];
        if (!instr.valid()) {
          safe = false;
          break;
        }
        if (instr.op == Opcode::kJal || instr.op == Opcode::kJalr ||
            instr.op == Opcode::kJr) {
          safe = false;
          break;
        }
        if (i == branch_idx || i == branch_idx - 1) continue;
        const auto dest = isa::dest_reg(instr);
        if (!dest || (*dest != idx_reg && *dest != bound_reg)) continue;
        const bool bound_rematerialization =
            *dest == bound_reg && instr.op == Opcode::kAddi && instr.rs == 0 &&
            instr.imm == *bound;
        if (!bound_rematerialization) safe = false;
      }
    }
    if (!safe) {
      reject(ErrorCode::kScanUnsafeBody, loop.header,
             "loop body writes the index/bound or makes calls");
      continue;
    }
    bool tail_targeted = false;
    for (unsigned i = 0; i < code.size(); ++i) {
      const Instruction& instr = code[i];
      if (!instr.valid() ||
          !isa::opcode_info(instr.op).is_cond_branch) {
        continue;
      }
      const std::uint32_t target = isa::branch_target(instr, base + i * 4);
      const std::uint32_t t_idx = (target - base) / 4;
      if (t_idx == branch_idx || t_idx == branch_idx - 1) {
        tail_targeted = true;
      }
    }
    if (tail_targeted) {
      reject(ErrorCode::kScanTailTargeted, loop.header,
             "a branch targets the patched tail");
      continue;
    }

    // Index liveness after the loop: the hardware leaves `initial` in the
    // register where software left `final`; reject if the code after the
    // loop reads it before redefining it.
    if (read_before_write(code, branch_idx + 1,
                          static_cast<unsigned>(code.size()) - 1, idx_reg)) {
      reject(ErrorCode::kScanLiveIndex, loop.header,
             "index register is live after the loop");
      continue;
    }

    MicroPlan plan;
    plan.start_pc = base + header_first * 4;
    plan.end_pc = base + (branch_idx - 2) * 4;  // last real body instruction
    plan.initial = *initial;
    plan.final = *bound;
    plan.step = step;
    plan.index_reg = idx_reg;
    plan.cond = cond;
    plan.update_index = branch_idx - 1;
    plan.branch_index = branch_idx;
    plan.depth = loop.depth;
    report.candidates.push_back(plan);
  }
  return report;
}

std::vector<Instruction> apply_patch(std::span<const Instruction> code,
                                     const MicroPlan& plan) {
  ZS_EXPECTS(plan.branch_index < code.size() && plan.update_index < code.size());
  std::vector<Instruction> patched(code.begin(), code.end());
  patched[plan.update_index] = isa::build::nop();
  patched[plan.branch_index] = isa::build::nop();
  return patched;
}

void program_micro_controller(zolc::ZolcController& controller,
                              const MicroPlan& plan) {
  ZS_EXPECTS(controller.variant() == zolc::ZolcVariant::kMicro);
  using MR = zolc::MicroReg;
  const auto write = [&controller](MR reg, std::uint32_t value) {
    controller.init_write(Opcode::kZolwU, static_cast<std::uint8_t>(reg),
                          value);
  };
  write(MR::kInitial, static_cast<std::uint32_t>(plan.initial));
  write(MR::kFinal, static_cast<std::uint32_t>(plan.final));
  write(MR::kStep, static_cast<std::uint32_t>(plan.step));
  write(MR::kStartPc, plan.start_pc);
  write(MR::kEndPc, plan.end_pc);
  write(MR::kCtrl, zolc::pack_micro_ctrl(plan.index_reg, plan.cond));
  controller.activate(0, plan.start_pc & ~0xFFFu);
}

}  // namespace zolcsim::cfg
