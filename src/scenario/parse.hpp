// String forms of the sweep axes (machine / ZOLC geometry / pipeline
// config), matching the names the sweep emitters print (machine_name,
// ZolcGeometry::label, config_name) so report output and declarative input
// round-trip. Shared by the zolcsim CLI flags and the scenario-suite parser;
// every error is kBadConfig.
#ifndef ZOLCSIM_SCENARIO_PARSE_HPP
#define ZOLCSIM_SCENARIO_PARSE_HPP

#include <string_view>

#include "codegen/program.hpp"
#include "common/result.hpp"
#include "cpu/pipeline.hpp"
#include "harness/experiment.hpp"
#include "zolc/config.hpp"

namespace zolcsim::scenario {

/// "XRdefault" | "XRhrdwil" | "uZOLC" | "ZOLClite" | "ZOLCfull"
/// (case-insensitive).
[[nodiscard]] Result<codegen::MachineKind> parse_machine(std::string_view s);

/// "Nt-Nl-Nx-Ne[-pB]" -- the ZolcGeometry::label() form, e.g. "32t-8l-4x-4e"
/// or "64t-12l-4x-4e-p14".
[[nodiscard]] Result<zolc::ZolcGeometry> parse_geometry(std::string_view s);

/// "EX-resolve|ID-resolve" "/rollback|/gate" ["/nofwd"] -- the
/// harness::config_name() form.
[[nodiscard]] Result<cpu::PipelineConfig> parse_config(std::string_view s);

/// "pipeline" | "iss" | "iss-fast" -- the harness::mode_name() form.
[[nodiscard]] Result<harness::ExecMode> parse_mode(std::string_view s);

}  // namespace zolcsim::scenario

#endif  // ZOLCSIM_SCENARIO_PARSE_HPP
