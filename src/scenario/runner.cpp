#include "scenario/runner.hpp"

#include <chrono>
#include <optional>

#include "common/contracts.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "scenario/parse.hpp"

namespace zolcsim::scenario {

namespace {

/// Simulated MIPS of one cell: simulated instructions over host wall time.
double cell_mips(const harness::ExperimentResult& r) {
  if (r.wall_ns == 0) return 0.0;
  return static_cast<double>(r.stats.instructions) /
         (static_cast<double>(r.wall_ns) * 1e-9) / 1e6;
}

/// Index of the config named `name` (config_name form) in the resolved
/// axis; empty selects index 0. nullopt when the name is not in the sweep.
std::optional<std::size_t> config_index(const harness::SweepReport& report,
                                        const std::string& name) {
  if (name.empty()) return 0;
  for (std::size_t c = 0; c < report.configs.size(); ++c) {
    if (harness::config_name(report.configs[c]) == name) return c;
  }
  return std::nullopt;
}

std::optional<std::size_t> geometry_index(const harness::SweepReport& report,
                                          const std::string& label) {
  if (label.empty()) return 0;
  for (std::size_t g = 0; g < report.geometries.size(); ++g) {
    if (report.geometries[g].label() == label) return g;
  }
  return std::nullopt;
}

std::optional<std::size_t> mode_index(const harness::SweepReport& report,
                                      const std::string& name) {
  if (name.empty()) return 0;
  for (std::size_t x = 0; x < report.modes.size(); ++x) {
    if (harness::mode_name(report.modes[x]) == name) return x;
  }
  return std::nullopt;
}

/// The loop-summary fast path must be architecturally invisible: wherever
/// the sweep ran both "iss" and "iss-fast", the two cells must agree on
/// every deterministic statistic. A difference is always a simulator bug.
Result<void> check_mode_equivalence(const Suite& suite,
                                    const harness::SweepReport& report) {
  std::optional<std::size_t> iss;
  std::optional<std::size_t> fast;
  for (std::size_t x = 0; x < report.modes.size(); ++x) {
    if (report.modes[x].engine != harness::SimEngine::kIss) continue;
    (report.modes[x].fast_path ? fast : iss) = x;
  }
  if (!iss || !fast) return {};
  for (std::size_t k = 0; k < report.kernels.size(); ++k) {
    for (std::size_t m = 0; m < report.machines.size(); ++m) {
      for (std::size_t c = 0; c < report.configs.size(); ++c) {
        for (std::size_t g = 0; g < report.geometries.size(); ++g) {
          for (std::size_t t = 0; t < report.tenants.size(); ++t) {
            const harness::ExperimentResult& a =
                report.at(k, m, c, g, *iss, t);
            const harness::ExperimentResult& b =
                report.at(k, m, c, g, *fast, t);
            const bool equal =
                a.stats.cycles == b.stats.cycles &&
                a.stats.instructions == b.stats.instructions &&
                a.stats.taken_control == b.stats.taken_control &&
                a.stats.zolc_fetch_events == b.stats.zolc_fetch_events &&
                a.zolc_stats == b.zolc_stats;
            if (!equal) {
              return Error{ErrorCode::kVerifyMismatch,
                           report.kernels[k] + " on " +
                               std::string(codegen::machine_name(
                                   report.machines[m])) +
                               ": iss and iss-fast cells disagree (fast path "
                               "is not architecturally invisible)"}
                  .with_context("suite " + suite.name);
            }
          }
        }
      }
    }
  }
  return {};
}

Result<void> check_thresholds(const Suite& suite,
                              const harness::SweepReport& report) {
  for (const Threshold& t : suite.thresholds) {
    const auto machine = parse_machine(t.machine);
    ZS_ASSERT(machine.ok());  // validated by parse_suite
    const auto c = config_index(report, t.config);
    const auto g = geometry_index(report, t.geometry);
    const auto x = mode_index(report, t.mode);
    const harness::ExperimentResult* cell =
        c && g && x ? report.find(t.kernel, machine.value(), *c, *g, *x)
                    : nullptr;
    if (cell == nullptr) {
      return Error{ErrorCode::kBadConfig,
                   "threshold names a cell outside the grid: " + t.kernel +
                       " on " + t.machine}
          .with_context("suite " + suite.name);
    }
    if (t.max_cycles != 0 && cell->stats.cycles > t.max_cycles) {
      return Error{ErrorCode::kThreshold,
                   t.kernel + " on " + t.machine + ": " +
                       std::to_string(cell->stats.cycles) +
                       " cycles exceeds the threshold of " +
                       std::to_string(t.max_cycles)}
          .with_context("suite " + suite.name);
    }
    if (t.min_mips > 0.0 && cell_mips(*cell) < t.min_mips) {
      return Error{ErrorCode::kThreshold,
                   t.kernel + " on " + t.machine + ": " +
                       format_fixed(cell_mips(*cell), 2) +
                       " MIPS below the threshold of " +
                       format_fixed(t.min_mips, 2)}
          .with_context("suite " + suite.name);
    }
  }
  return {};
}

}  // namespace

Result<SuiteOutcome> run_suite(const Suite& suite, flow::CompileCache& cache,
                               const RunOptions& options) {
  SuiteOutcome outcome;
  outcome.suite = suite;

  harness::SweepSpec spec = suite.sweep;
  spec.threads = options.threads;

  // A "both" suite runs the grid cold first; the warm pass below must then
  // render a byte-identical CSV, pinning the copy-on-write run path against
  // the historical cold path on this exact grid. The warm pass is the
  // reported one (its timings reflect the default run path).
  std::optional<std::string> cold_csv;
  if (suite.warm_start == WarmStart::kBoth) {
    harness::SweepSpec cold = spec;
    cold.warm_start = false;
    auto cold_swept = harness::run_sweep(cold, cache);
    if (!cold_swept.ok()) {
      return std::move(cold_swept)
          .error()
          .with_context("suite " + suite.name + " (cold pass)");
    }
    cold_csv = cold_swept.value().to_csv();
    spec.warm_start = true;
  }

  const auto started = std::chrono::steady_clock::now();
  auto swept = harness::run_sweep(spec, cache);
  if (!swept.ok()) {
    return std::move(swept).error().with_context("suite " + suite.name);
  }
  outcome.report = std::move(swept).value();
  outcome.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  outcome.csv = outcome.report.to_csv();
  outcome.csv_fnv1a64 = fnv1a64(outcome.csv);
  if (cold_csv) {
    if (*cold_csv != outcome.csv) {
      return Error{ErrorCode::kVerifyMismatch,
                   "warm-start CSV differs from the cold-start CSV (the "
                   "copy-on-write run path is not architecturally "
                   "invisible)"}
          .with_context("suite " + suite.name);
    }
    outcome.warm_cold_checked = true;
  }
  if (suite.expect_csv_fnv1a64) {
    if (*suite.expect_csv_fnv1a64 != outcome.csv_fnv1a64) {
      if (options.enforce_golden) {
        return Error{ErrorCode::kVerifyMismatch,
                     "CSV digest " + hex64(outcome.csv_fnv1a64) +
                         " differs from the golden " +
                         hex64(*suite.expect_csv_fnv1a64)}
            .with_context("suite " + suite.name);
      }
    } else {
      outcome.golden_checked = true;
    }
  }

  if (auto equal = check_mode_equivalence(suite, outcome.report);
      !equal.ok()) {
    return std::move(equal).error();
  }

  if (options.enforce_thresholds) {
    if (auto checked = check_thresholds(suite, outcome.report);
        !checked.ok()) {
      return std::move(checked).error();
    }
  }

  std::uint64_t instructions = 0;
  for (const harness::SweepCell& cell : outcome.report.cells) {
    instructions += cell.result.stats.instructions;
  }
  if (outcome.wall_seconds > 0.0) {
    outcome.mips =
        static_cast<double>(instructions) / outcome.wall_seconds / 1e6;
  }
  return outcome;
}

std::string bench_artifact_name(const Suite& suite) {
  return "BENCH_" + suite.name + ".json";
}

std::string bench_artifact_json(const SuiteOutcome& outcome) {
  const harness::SweepReport& report = outcome.report;
  const std::size_t total_compiles =
      report.compile_cache_hits + report.compile_cache_misses;
  const double hit_rate =
      total_compiles == 0
          ? 0.0
          : static_cast<double>(report.compile_cache_hits) /
                static_cast<double>(total_compiles);

  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kBenchSchema) + "\",\n";
  out += "  \"suite\": \"" + json::escape(outcome.suite.name) + "\",\n";
  out += "  \"description\": \"" + json::escape(outcome.suite.description) +
         "\",\n";
  out += "  \"git_sha\": \"" + json::escape(build_git_sha()) + "\",\n";
  out += "  \"toolchain\": \"" + json::escape(build_toolchain()) + "\",\n";
  out += "  \"baseline\": \"";
  out += codegen::machine_name(report.baseline);
  out += "\",\n";
  out += "  \"wall_seconds\": " + format_fixed(outcome.wall_seconds, 4) +
         ",\n";
  out += "  \"mips\": " + format_fixed(outcome.mips, 2) + ",\n";
  out += "  \"warm_start\": \"";
  out += warm_start_name(outcome.suite.warm_start);
  out += "\",\n";
  out += "  \"compile_cache\": {\"hits\": " +
         std::to_string(report.compile_cache_hits) +
         ", \"misses\": " + std::to_string(report.compile_cache_misses) +
         ", \"store_hits\": " +
         std::to_string(report.compile_cache_store_hits) +
         ", \"compiles\": " + std::to_string(report.compile_cache_compiles) +
         ", \"hit_rate\": " + format_fixed(hit_rate, 3) + "},\n";
  out += "  \"prepares\": {\"full\": " +
         std::to_string(report.full_prepares) +
         ", \"image_resets\": " + std::to_string(report.image_resets) +
         "},\n";
  out += "  \"csv_fnv1a64\": \"" + hex64(outcome.csv_fnv1a64) + "\",\n";
  out += std::string("  \"golden\": \"") +
         (outcome.golden_checked ? "match" : "unchecked") + "\",\n";
  out += "  \"points\": [\n";
  bool first = true;
  for (const harness::SweepCell& cell : report.cells) {
    const harness::ExperimentResult& r = cell.result;
    if (!first) out += ",\n";
    first = false;
    out += "    {\"kernel\": \"" + json::escape(report.kernels[cell.kernel]) +
           "\", \"machine\": \"";
    out += codegen::machine_name(report.machines[cell.machine]);
    out += "\", \"config\": \"" +
           json::escape(harness::config_name(report.configs[cell.config])) +
           "\", \"geometry\": \"" +
           report.geometries[cell.geometry].label() + "\", \"mode\": \"" +
           std::string(harness::mode_name(report.modes[cell.mode])) + "\", ";
    if (report.has_tenant_axis()) {
      // Multi-tenant material: the tenant count plus the modeled
      // context-switch cost (reported alongside, never folded into,
      // cycles; DESIGN.md section 9).
      out += "\"tenants\": " + std::to_string(report.tenants[cell.tenant]) +
             ", \"ctx_switches\": " + std::to_string(r.context_switches) +
             ", \"ctx_switch_cycles\": " +
             std::to_string(r.context_switch_cycles) + ", ";
    }
    out += "\"cycles\": " + std::to_string(r.stats.cycles) +
           ", \"instructions\": " + std::to_string(r.stats.instructions) +
           ", \"reduction_pct\": " +
           format_fixed(
               report.reduction(cell.kernel, cell.machine, cell.config,
                                cell.geometry, cell.mode, cell.tenant),
               4) +
           ", \"wall_ns\": " + std::to_string(r.wall_ns) +
           ", \"mips\": " + format_fixed(cell_mips(r), 2);
    if (report.modes[cell.mode].fast_path) {
      // Fast-path effectiveness counters: host-side diagnostics, BENCH-only
      // (never part of the deterministic CSV/JSON sweep reports).
      out += ", \"fastpath\": {\"attempts\": " +
             std::to_string(r.fastpath.attempts) +
             ", \"engagements\": " + std::to_string(r.fastpath.engagements) +
             ", \"replayed_instructions\": " +
             std::to_string(r.fastpath.replayed_instructions) +
             ", \"replayed_backedges\": " +
             std::to_string(r.fastpath.replayed_backedges) +
             ", \"bailouts\": {";
      bool first_bail = true;
      for (std::size_t b = 0; b < cpu::kNumBailoutReasons; ++b) {
        if (r.fastpath.bailouts[b] == 0) continue;
        if (!first_bail) out += ", ";
        first_bail = false;
        out += std::string("\"") +
               cpu::bailout_reason_name(static_cast<cpu::BailoutReason>(b)) +
               "\": " + std::to_string(r.fastpath.bailouts[b]);
      }
      out += "}}";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string_view build_git_sha() {
#ifdef ZOLCSIM_GIT_SHA
  return ZOLCSIM_GIT_SHA;
#else
  return "unknown";
#endif
}

std::string build_toolchain() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace zolcsim::scenario
