// Declarative scenario suites: the JSON format that replaced the hand-coded
// benchmark mains. A suite file names a sweep grid (kernels x machines x
// pipeline configs x ZOLC geometries x execution modes, plus the kernel
// env), an optional
// golden digest of the rendered CSV, and optional per-cell performance
// thresholds. The parser returns a Result<Suite>; the runner (runner.hpp)
// lowers a Suite onto harness::SweepSpec / run_sweep and emits the
// versioned BENCH_<suite>.json perf artifact. DESIGN.md sec. 6 is the
// normative schema spec.
#ifndef ZOLCSIM_SCENARIO_SCENARIO_HPP
#define ZOLCSIM_SCENARIO_SCENARIO_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "harness/sweep.hpp"

namespace zolcsim::scenario {

/// Current suite-file schema version ("version" field). Parsers accept only
/// this value so a future incompatible change fails loudly.
inline constexpr unsigned kSuiteSchemaVersion = 1;

/// One per-cell performance expectation. `kernel` and `machine` name the
/// cell; `config` / `geometry` select along the remaining axes when the
/// suite sweeps them (empty = the first/only point). Zero-valued limits are
/// unchecked.
struct Threshold {
  std::string kernel;
  std::string machine;
  std::string config;            ///< config_name() form; "" = first config
  std::string geometry;          ///< ZolcGeometry::label(); "" = first point
  std::string mode;              ///< mode_name() form; "" = first mode
  std::uint64_t max_cycles = 0;  ///< fail when cell cycles exceed this
  double min_mips = 0.0;         ///< fail when simulated MIPS falls below
};

/// Run-path selection for a suite ("warm_start" sweep member). `kBoth`
/// runs the grid twice -- once cold, once warm -- and fails the suite with
/// kVerifyMismatch unless the two rendered CSVs are byte-identical; the
/// warm run's report becomes the suite outcome.
enum class WarmStart { kWarm, kCold, kBoth };

/// Canonical spelling ("warm" / "cold" / "both").
[[nodiscard]] std::string_view warm_start_name(WarmStart mode);

/// A parsed scenario suite: grid + expectations.
struct Suite {
  std::string name;         ///< "suite" field; names the BENCH artifact
  std::string description;
  harness::SweepSpec sweep;  ///< lowered grid (threads left at the default)
  /// Run-path axis; kWarm/kCold also set sweep.warm_start directly.
  WarmStart warm_start = WarmStart::kWarm;
  /// Expected fnv1a64 of the rendered paper-default CSV (the golden).
  std::optional<std::uint64_t> expect_csv_fnv1a64;
  std::vector<Threshold> thresholds;
};

/// Parses one suite document. `origin` labels errors (file name or "<buf>").
/// Errors: kParse (malformed JSON or schema shape), kBadConfig (bad axis
/// values, bad version), kUnknownKernel.
[[nodiscard]] Result<Suite> parse_suite(std::string_view text,
                                        std::string_view origin = "<buffer>");

/// Reads and parses a suite file. Additional error: kIo.
[[nodiscard]] Result<Suite> load_suite_file(const std::string& path);

/// Lists the *.json suite files directly under `dir`, sorted by file name
/// for deterministic bench ordering. Error: kIo when `dir` is not readable.
[[nodiscard]] Result<std::vector<std::string>> list_suite_files(
    const std::string& dir);

}  // namespace zolcsim::scenario

#endif  // ZOLCSIM_SCENARIO_SCENARIO_HPP
