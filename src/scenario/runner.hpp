// Scenario runner: lowers a parsed Suite onto the batched sweep engine,
// verifies the suite's expectations (golden CSV digest, per-cell perf
// thresholds), and renders the versioned BENCH_<suite>.json perf artifact
// that gives the roadmap's perf trajectory its data points. The runner
// never owns a CompileCache -- callers (zolcsim, the bench wrappers) pass a
// process-wide cache so consecutive suites share warm units.
#ifndef ZOLCSIM_SCENARIO_RUNNER_HPP
#define ZOLCSIM_SCENARIO_RUNNER_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "flow/cache.hpp"
#include "scenario/scenario.hpp"

namespace zolcsim::scenario {

/// Current BENCH artifact schema ("schema" field). v2 added the per-point
/// "mode" field and the conditional "fastpath" counter object; v3 added
/// the suite "warm_start" field, the compile-cache store_hits/compiles
/// split, and the "prepares" counter object; v4 added the per-point
/// "tenants" / "ctx_switches" / "ctx_switch_cycles" fields for multi-tenant
/// suites. `zolcsim bench --compare` still accepts v1/v2/v3 artifacts
/// (absent fields take their defaults, tenants defaulting to 1).
inline constexpr std::string_view kBenchSchema = "zolcsim-bench-v4";

struct RunOptions {
  unsigned threads = 0;            ///< sweep worker count; 0 = hardware
  bool enforce_golden = true;      ///< fail on csv_fnv1a64 mismatch
  bool enforce_thresholds = true;  ///< fail on threshold violations
};

/// Everything a completed suite produced. `csv` is the deterministic
/// paper-default sweep CSV (the goldened artifact); wall time and MIPS are
/// host measurements that feed only the BENCH json.
struct SuiteOutcome {
  Suite suite;
  harness::SweepReport report;
  std::string csv;
  std::uint64_t csv_fnv1a64 = 0;
  bool golden_checked = false;  ///< an expected digest existed and matched
  /// A WarmStart::kBoth suite ran cold + warm and the CSVs matched byte
  /// for byte (always false for single-pass suites).
  bool warm_cold_checked = false;
  double wall_seconds = 0.0;    ///< whole-suite wall time (compile + run)
  double mips = 0.0;            ///< simulated instructions / wall / 1e6
};

/// Runs the suite's grid. Errors: everything run_sweep can fail with, plus
/// kVerifyMismatch when the rendered CSV's digest differs from the suite's
/// golden (or, for warm_start "both", when the warm CSV differs from the
/// cold one) and kThreshold when a per-cell expectation is violated (both
/// subject to RunOptions).
[[nodiscard]] Result<SuiteOutcome> run_suite(const Suite& suite,
                                             flow::CompileCache& cache,
                                             const RunOptions& options = {});

/// "BENCH_<suite>.json" -- the artifact file name for a suite.
[[nodiscard]] std::string bench_artifact_name(const Suite& suite);

/// Renders the versioned BENCH artifact: suite identity, build provenance
/// (git sha, toolchain), whole-suite wall time / MIPS / compile-cache hit
/// rate, and one point per sweep cell with cycles + host MIPS.
[[nodiscard]] std::string bench_artifact_json(const SuiteOutcome& outcome);

/// Build provenance baked in at configure time ("unknown" outside git).
[[nodiscard]] std::string_view build_git_sha();
/// Compiler identity, e.g. "gcc 13.2.0".
[[nodiscard]] std::string build_toolchain();

}  // namespace zolcsim::scenario

#endif  // ZOLCSIM_SCENARIO_RUNNER_HPP
