#include "scenario/parse.hpp"

#include <string>
#include <vector>

#include "common/strings.hpp"

namespace zolcsim::scenario {

namespace {

Error bad_config(std::string msg) {
  return Error{ErrorCode::kBadConfig, std::move(msg)};
}

/// Parses the "<number><suffix>" geometry segments ("32t", "8l", ...).
Result<unsigned> geometry_field(std::string_view seg, char suffix) {
  if (seg.empty() || seg.back() != suffix) {
    return bad_config(std::string("expected a '") + suffix +
                      "' geometry segment, got '" + std::string(seg) + "'");
  }
  const auto n = parse_int(seg.substr(0, seg.size() - 1));
  if (!n || *n < 0 || *n > 0xFFFF) {  // every table count fits well below
    return bad_config("bad geometry segment '" + std::string(seg) + "'");
  }
  return static_cast<unsigned>(*n);
}

}  // namespace

Result<codegen::MachineKind> parse_machine(std::string_view s) {
  const std::string lower = to_lower(s);
  for (const codegen::MachineKind machine : codegen::kAllMachines) {
    if (lower == to_lower(codegen::machine_name(machine))) {
      return machine;
    }
  }
  std::string known;
  for (const codegen::MachineKind machine : codegen::kAllMachines) {
    if (!known.empty()) known += ", ";
    known += codegen::machine_name(machine);
  }
  return bad_config("unknown machine '" + std::string(s) + "' (known: " +
                    known + ")");
}

Result<zolc::ZolcGeometry> parse_geometry(std::string_view s) {
  const std::vector<std::string_view> segs = split(s, '-');
  if (segs.size() != 4 && segs.size() != 5) {
    return bad_config("geometry must look like 32t-8l-4x-4e[-p14], got '" +
                      std::string(s) + "'");
  }
  zolc::ZolcGeometry g;
  const char suffixes[4] = {'t', 'l', 'x', 'e'};
  unsigned* fields[4] = {&g.max_tasks, &g.max_loops, &g.max_exits_per_loop,
                         &g.max_entries_per_loop};
  for (int i = 0; i < 4; ++i) {
    auto field = geometry_field(segs[static_cast<std::size_t>(i)],
                                suffixes[i]);
    if (!field.ok()) return std::move(field).error();
    *fields[i] = field.value();
  }
  if (segs.size() == 5) {
    const std::string_view seg = segs[4];
    if (seg.size() < 2 || seg.front() != 'p') {
      return bad_config("bad geometry PC-width segment '" + std::string(seg) +
                        "' (expected e.g. p14)");
    }
    const auto bits = parse_int(seg.substr(1));
    if (!bits || *bits <= 0 || *bits > 64) {
      return bad_config("bad geometry PC-width segment '" + std::string(seg) +
                        "'");
    }
    g.pc_ofs_bits = static_cast<unsigned>(*bits);
  }
  if (!g.valid()) {
    return bad_config("invalid ZOLC geometry " + g.label());
  }
  return g;
}

Result<cpu::PipelineConfig> parse_config(std::string_view s) {
  cpu::PipelineConfig config;
  bool saw_resolve = false;
  bool saw_policy = false;
  for (const std::string_view part : split(s, '/')) {
    const std::string lower = to_lower(part);
    if (lower == "ex-resolve" || lower == "id-resolve") {
      if (saw_resolve) {
        return bad_config("conflicting resolve-stage tokens in '" +
                          std::string(s) + "'");
      }
      config.branch_resolve = lower == "ex-resolve"
                                  ? cpu::BranchResolveStage::kExecute
                                  : cpu::BranchResolveStage::kDecode;
      saw_resolve = true;
    } else if (lower == "rollback" || lower == "gate") {
      if (saw_policy) {
        return bad_config("conflicting speculation-policy tokens in '" +
                          std::string(s) + "'");
      }
      config.speculation = lower == "rollback"
                               ? cpu::SpeculationPolicy::kRollback
                               : cpu::SpeculationPolicy::kGate;
      saw_policy = true;
    } else if (lower == "nofwd") {
      config.forwarding = false;
    } else {
      return bad_config("unknown pipeline-config token '" +
                        std::string(part) +
                        "' (expected EX-resolve|ID-resolve, rollback|gate, "
                        "nofwd)");
    }
  }
  if (!saw_resolve || !saw_policy) {
    return bad_config("pipeline config needs a resolve stage and a "
                      "speculation policy, e.g. EX-resolve/rollback");
  }
  return config;
}

Result<harness::ExecMode> parse_mode(std::string_view s) {
  const std::string lower = to_lower(s);
  harness::ExecMode mode;
  if (lower == "pipeline") return mode;
  mode.engine = harness::SimEngine::kIss;
  if (lower == "iss") return mode;
  mode.fast_path = true;
  if (lower == "iss-fast") return mode;
  return bad_config("unknown execution mode '" + std::string(s) +
                    "' (known: pipeline, iss, iss-fast)");
}

}  // namespace zolcsim::scenario
