#include "scenario/scenario.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "kernels/kernels.hpp"
#include "scenario/parse.hpp"

namespace zolcsim::scenario {

namespace {

Error shape_error(std::string_view origin, std::string msg) {
  return Error{ErrorCode::kParse, std::move(msg)}.with_context(
      "suite " + std::string(origin));
}

Error config_error(std::string_view origin, std::string msg) {
  return Error{ErrorCode::kBadConfig, std::move(msg)}.with_context(
      "suite " + std::string(origin));
}

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '\'';
  out += s;
  out += '\'';
  return out;
}

/// Member as an array of strings; an absent member yields an empty vector.
Result<std::vector<std::string>> string_list(const json::Value& object,
                                             std::string_view key,
                                             std::string_view origin) {
  std::vector<std::string> out;
  const json::Value* member = object.find(key);
  if (member == nullptr) return out;
  if (!member->is_array()) {
    return shape_error(origin, quoted(key) + " must be an array");
  }
  for (const json::Value& item : member->items()) {
    if (!item.is_string()) {
      return shape_error(origin, quoted(key) + " must contain only strings");
    }
    out.push_back(item.as_string());
  }
  return out;
}

/// Member as an unsigned integer with a default; rejects non-integers.
Result<std::uint64_t> uint_member(const json::Value& object,
                                  std::string_view key,
                                  std::uint64_t fallback,
                                  std::string_view origin) {
  const json::Value* member = object.find(key);
  if (member == nullptr) return fallback;
  const auto n = member->as_uint();
  if (!n) {
    return shape_error(origin,
                       quoted(key) + " must be a non-negative integer");
  }
  return *n;
}

Result<void> parse_sweep(const json::Value& sweep, Suite& suite,
                         std::string_view origin) {
  static constexpr std::string_view kKnown[] = {
      "kernels",    "machines", "configs",     "geometries", "modes",
      "tenants",    "baseline", "max_cycles",  "env",        "timing_reps",
      "warm_start"};
  for (const auto& [key, value] : sweep.members()) {
    (void)value;
    bool known = false;
    for (const std::string_view k : kKnown) known |= key == k;
    if (!known) {
      return shape_error(origin, "unknown sweep member '" + key + "'");
    }
  }

  auto kernels = string_list(sweep, "kernels", origin);
  if (!kernels.ok()) return std::move(kernels).error();
  suite.sweep.kernels = std::move(kernels).value();
  for (const std::string& name : suite.sweep.kernels) {
    if (kernels::find_kernel(name) == nullptr) {
      return Error{ErrorCode::kUnknownKernel,
                   "unknown kernel '" + name + "'"}
          .with_context("suite " + std::string(origin));
    }
  }

  auto machines = string_list(sweep, "machines", origin);
  if (!machines.ok()) return std::move(machines).error();
  for (const std::string& name : machines.value()) {
    auto machine = parse_machine(name);
    if (!machine.ok()) {
      return std::move(machine).error().with_context("suite " +
                                                     std::string(origin));
    }
    suite.sweep.machines.push_back(machine.value());
  }

  auto configs = string_list(sweep, "configs", origin);
  if (!configs.ok()) return std::move(configs).error();
  for (const std::string& name : configs.value()) {
    auto config = parse_config(name);
    if (!config.ok()) {
      return std::move(config).error().with_context("suite " +
                                                    std::string(origin));
    }
    suite.sweep.configs.push_back(config.value());
  }

  auto geometries = string_list(sweep, "geometries", origin);
  if (!geometries.ok()) return std::move(geometries).error();
  for (const std::string& name : geometries.value()) {
    auto geometry = parse_geometry(name);
    if (!geometry.ok()) {
      return std::move(geometry).error().with_context("suite " +
                                                      std::string(origin));
    }
    suite.sweep.geometries.push_back(geometry.value());
  }

  auto modes = string_list(sweep, "modes", origin);
  if (!modes.ok()) return std::move(modes).error();
  for (const std::string& name : modes.value()) {
    auto mode = parse_mode(name);
    if (!mode.ok()) {
      return std::move(mode).error().with_context("suite " +
                                                  std::string(origin));
    }
    suite.sweep.modes.push_back(mode.value());
  }

  if (const json::Value* tenants = sweep.find("tenants")) {
    if (!tenants->is_array()) {
      return shape_error(origin,
                         "'tenants' must be an array of positive integers");
    }
    for (const json::Value& item : tenants->items()) {
      const auto count = item.as_uint();
      if (!count || *count == 0 || *count > 64) {
        return config_error(origin,
                            "'tenants' entries must be integers in [1, 64]");
      }
      suite.sweep.tenants.push_back(static_cast<unsigned>(*count));
    }
  }

  if (const json::Value* baseline = sweep.find("baseline")) {
    if (!baseline->is_string()) {
      return shape_error(origin, "'baseline' must be a machine name string");
    }
    auto machine = parse_machine(baseline->as_string());
    if (!machine.ok()) {
      return std::move(machine).error().with_context("suite " +
                                                     std::string(origin));
    }
    suite.sweep.baseline = machine.value();
  }

  auto max_cycles =
      uint_member(sweep, "max_cycles", suite.sweep.max_cycles, origin);
  if (!max_cycles.ok()) return std::move(max_cycles).error();
  if (max_cycles.value() == 0) {
    return config_error(origin, "'max_cycles' must be positive");
  }
  suite.sweep.max_cycles = max_cycles.value();

  auto timing_reps =
      uint_member(sweep, "timing_reps", suite.sweep.timing_reps, origin);
  if (!timing_reps.ok()) return std::move(timing_reps).error();
  if (timing_reps.value() == 0 || timing_reps.value() > 1000) {
    return config_error(origin, "'timing_reps' must be in [1, 1000]");
  }
  suite.sweep.timing_reps = timing_reps.value();

  if (const json::Value* warm = sweep.find("warm_start")) {
    if (!warm->is_string()) {
      return shape_error(origin,
                         "'warm_start' must be \"warm\", \"cold\", or "
                         "\"both\"");
    }
    const std::string_view mode = warm->as_string();
    if (mode == "warm") {
      suite.warm_start = WarmStart::kWarm;
    } else if (mode == "cold") {
      suite.warm_start = WarmStart::kCold;
    } else if (mode == "both") {
      suite.warm_start = WarmStart::kBoth;
    } else {
      return config_error(origin,
                          "bad 'warm_start' value " + quoted(mode) +
                              " (want warm, cold, or both)");
    }
    // kBoth leaves sweep.warm_start at its default; the runner overrides
    // it per pass.
    if (suite.warm_start != WarmStart::kBoth) {
      suite.sweep.warm_start = suite.warm_start == WarmStart::kWarm;
    }
  }

  if (const json::Value* env = sweep.find("env")) {
    if (!env->is_object()) {
      return shape_error(origin, "'env' must be an object");
    }
    for (const auto& [key, value] : env->members()) {
      (void)value;
      if (key != "scale" && key != "seed") {
        return shape_error(origin, "unknown env member '" + key + "'");
      }
    }
    auto scale = uint_member(*env, "scale", suite.sweep.env.scale, origin);
    if (!scale.ok()) return std::move(scale).error();
    if (scale.value() == 0 || scale.value() > 0xFFFF) {
      return config_error(origin, "env 'scale' out of range");
    }
    suite.sweep.env.scale = static_cast<unsigned>(scale.value());
    auto seed = uint_member(*env, "seed", suite.sweep.env.seed, origin);
    if (!seed.ok()) return std::move(seed).error();
    if (seed.value() > 0xFFFF'FFFFull) {
      return config_error(origin, "env 'seed' must fit 32 bits");
    }
    suite.sweep.env.seed = static_cast<std::uint32_t>(seed.value());
  }
  return {};
}

Result<void> parse_expect(const json::Value& expect, Suite& suite,
                          std::string_view origin) {
  for (const auto& [key, value] : expect.members()) {
    (void)value;
    if (key != "csv_fnv1a64" && key != "thresholds") {
      return shape_error(origin, "unknown expect member '" + key + "'");
    }
  }
  if (const json::Value* hash = expect.find("csv_fnv1a64")) {
    if (!hash->is_string()) {
      return shape_error(origin,
                         "'csv_fnv1a64' must be a 16-hex-digit string");
    }
    const auto digest = parse_hex64(hash->as_string());
    if (!digest) {
      return config_error(origin, "bad 'csv_fnv1a64' digest '" +
                                      hash->as_string() + "'");
    }
    suite.expect_csv_fnv1a64 = *digest;
  }
  const json::Value* thresholds = expect.find("thresholds");
  if (thresholds == nullptr) return {};
  if (!thresholds->is_array()) {
    return shape_error(origin, "'thresholds' must be an array");
  }
  for (const json::Value& entry : thresholds->items()) {
    if (!entry.is_object()) {
      return shape_error(origin, "each threshold must be an object");
    }
    static constexpr std::string_view kKnown[] = {
        "kernel",   "machine",    "config",  "geometry",
        "mode",     "max_cycles", "min_mips"};
    for (const auto& [key, value] : entry.members()) {
      (void)value;
      bool known = false;
      for (const std::string_view k : kKnown) known |= key == k;
      if (!known) {
        return shape_error(origin, "unknown threshold member '" + key + "'");
      }
    }
    Threshold t;
    for (const char* required : {"kernel", "machine"}) {
      const json::Value* member = entry.find(required);
      if (member == nullptr || !member->is_string()) {
        return shape_error(origin, std::string("threshold needs a string '") +
                                       required + "'");
      }
    }
    t.kernel = entry.find("kernel")->as_string();
    t.machine = entry.find("machine")->as_string();
    if (auto machine = parse_machine(t.machine); !machine.ok()) {
      return std::move(machine).error().with_context("suite " +
                                                     std::string(origin));
    }
    if (const json::Value* config = entry.find("config")) {
      if (!config->is_string()) {
        return shape_error(origin, "threshold 'config' must be a string");
      }
      t.config = config->as_string();
    }
    if (const json::Value* geometry = entry.find("geometry")) {
      if (!geometry->is_string()) {
        return shape_error(origin, "threshold 'geometry' must be a string");
      }
      t.geometry = geometry->as_string();
    }
    if (const json::Value* mode = entry.find("mode")) {
      if (!mode->is_string()) {
        return shape_error(origin, "threshold 'mode' must be a string");
      }
      if (auto parsed = parse_mode(mode->as_string()); !parsed.ok()) {
        return std::move(parsed).error().with_context(
            "suite " + std::string(origin));
      }
      t.mode = mode->as_string();
    }
    auto max_cycles = uint_member(entry, "max_cycles", 0, origin);
    if (!max_cycles.ok()) return std::move(max_cycles).error();
    t.max_cycles = max_cycles.value();
    if (const json::Value* mips = entry.find("min_mips")) {
      if (!mips->is_number() || mips->as_number() < 0) {
        return shape_error(origin,
                           "threshold 'min_mips' must be a non-negative "
                           "number");
      }
      t.min_mips = mips->as_number();
    }
    if (t.max_cycles == 0 && t.min_mips == 0.0) {
      return config_error(origin,
                          "threshold on '" + t.kernel +
                              "' checks nothing (set max_cycles or "
                              "min_mips)");
    }
    suite.thresholds.push_back(std::move(t));
  }
  return {};
}

}  // namespace

std::string_view warm_start_name(WarmStart mode) {
  switch (mode) {
    case WarmStart::kWarm:
      return "warm";
    case WarmStart::kCold:
      return "cold";
    case WarmStart::kBoth:
      return "both";
  }
  return "warm";
}

Result<Suite> parse_suite(std::string_view text, std::string_view origin) {
  auto document = json::parse(text);
  if (!document.ok()) {
    return std::move(document).error().with_context("suite " +
                                                    std::string(origin));
  }
  const json::Value& root = document.value();
  if (!root.is_object()) {
    return shape_error(origin, "suite document must be a JSON object");
  }
  for (const auto& [key, value] : root.members()) {
    (void)value;
    if (key != "suite" && key != "version" && key != "description" &&
        key != "sweep" && key != "expect") {
      return shape_error(origin, "unknown top-level member '" + key + "'");
    }
  }

  Suite suite;
  const json::Value* name = root.find("suite");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return shape_error(origin, "missing or empty 'suite' name");
  }
  suite.name = name->as_string();
  for (const char c : suite.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) {
      return config_error(origin,
                          "suite name '" + suite.name +
                              "' must be [a-z0-9_-] (it names the "
                              "BENCH_<suite>.json artifact)");
    }
  }

  auto version = uint_member(root, "version", 0, origin);
  if (!version.ok()) return std::move(version).error();
  if (version.value() != kSuiteSchemaVersion) {
    return config_error(origin,
                        "unsupported suite schema version " +
                            std::to_string(version.value()) + " (expected " +
                            std::to_string(kSuiteSchemaVersion) + ")");
  }

  if (const json::Value* description = root.find("description")) {
    if (!description->is_string()) {
      return shape_error(origin, "'description' must be a string");
    }
    suite.description = description->as_string();
  }

  const json::Value* sweep = root.find("sweep");
  if (sweep == nullptr || !sweep->is_object()) {
    return shape_error(origin, "missing 'sweep' object");
  }
  if (auto parsed = parse_sweep(*sweep, suite, origin); !parsed.ok()) {
    return std::move(parsed).error();
  }

  if (const json::Value* expect = root.find("expect")) {
    if (!expect->is_object()) {
      return shape_error(origin, "'expect' must be an object");
    }
    if (auto parsed = parse_expect(*expect, suite, origin); !parsed.ok()) {
      return std::move(parsed).error();
    }
  }
  return suite;
}

Result<Suite> load_suite_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Error{ErrorCode::kIo, "cannot read suite file '" + path + "'"};
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_suite(text.str(), path);
}

Result<std::vector<std::string>> list_suite_files(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Error{ErrorCode::kIo,
                 "cannot list suite directory '" + dir + "': " + ec.message()};
  }
  std::vector<std::string> files;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace zolcsim::scenario
