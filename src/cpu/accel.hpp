// LoopAccelerator: the interface between the processor model and a
// zero-overhead loop controller. The CPU module depends only on this
// interface; src/zolc provides the implementations (uZOLC / ZOLClite /
// ZOLCfull). The interface mirrors the hardware hookup in Fig. 1 of the
// paper: the instruction decoder drives init-mode writes, the PC decoding
// unit exchanges task-end / redirect / candidate-exit information, and the
// register file receives index write-backs.
#ifndef ZOLCSIM_CPU_ACCEL_HPP
#define ZOLCSIM_CPU_ACCEL_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "isa/opcodes.hpp"

namespace zolcsim::cpu {

/// An index write-back destined for the integer register file through the
/// ZOLC's dedicated write port.
struct RfWrite {
  std::uint8_t reg = 0;
  std::int32_t value = 0;

  friend bool operator==(const RfWrite&, const RfWrite&) = default;
};

/// Result of a fetch-time or resolution-time ZOLC event.
struct AccelEvent {
  /// New fetch target (task switching); nullopt = fall through.
  std::optional<std::uint32_t> redirect;
  /// Index write-backs. The pipeline applies them when the triggering
  /// instruction becomes non-speculative (entering its resolution stage).
  std::vector<RfWrite> rf_writes;
};

/// Capacity of the per-loop snapshot state. Matches the largest loop table
/// any ZolcGeometry may declare (zolc::kMaxGeometryLoops).
inline constexpr unsigned kMaxAccelLoops = 32;

/// Architectural controller state that changes in active mode; saved before
/// each speculative fetch-time event and restored on wrong-path flushes.
/// Snapshots sit on the simulators' hot paths (they ride the pipeline
/// latches while a fetch event is in flight), so copies touch only the
/// `loop_count` live entries, not the full worst-case array; entries at
/// index >= loop_count are uninitialized and must never be read.
struct AccelSnapshot {
  std::array<std::int32_t, kMaxAccelLoops> loop_current;
  std::int32_t micro_current = 0;
  std::uint8_t loop_count = 0;  ///< live prefix of loop_current
  std::uint8_t current_task = 0;
  bool active = false;

  AccelSnapshot() noexcept {}
  AccelSnapshot(const AccelSnapshot& other) noexcept { *this = other; }
  AccelSnapshot& operator=(const AccelSnapshot& other) noexcept {
    for (std::uint8_t i = 0; i < other.loop_count; ++i) {
      loop_current[i] = other.loop_current[i];
    }
    micro_current = other.micro_current;
    loop_count = other.loop_count;
    current_task = other.current_task;
    active = other.active;
    return *this;
  }

  friend bool operator==(const AccelSnapshot& a,
                         const AccelSnapshot& b) noexcept {
    if (a.loop_count != b.loop_count || a.micro_current != b.micro_current ||
        a.current_task != b.current_task || a.active != b.active) {
      return false;
    }
    for (std::uint8_t i = 0; i < a.loop_count; ++i) {
      if (a.loop_current[i] != b.loop_current[i]) return false;
    }
    return true;
  }
};

class LoopAccelerator {
 public:
  virtual ~LoopAccelerator() = default;

  /// Initialization-mode table write (zolw.* instructions). `op` selects the
  /// table, `idx` the entry, `value` the payload (from GPR rs).
  virtual void init_write(isa::Opcode op, std::uint8_t idx,
                          std::uint32_t value) = 0;

  /// zolon: switch to active mode starting at `start_task`, with table PC
  /// offsets relative to byte address `base`.
  virtual void activate(std::uint8_t start_task, std::uint32_t base) = 0;

  /// zoloff: leave active mode.
  virtual void deactivate() = 0;

  /// Cheap check: would on_fetch(pc) produce an event? Used by the pipeline
  /// to avoid snapshots on the common path and by the fetch-gating policy.
  [[nodiscard]] virtual bool will_trigger(std::uint32_t pc) const = 0;

  /// Fetch-time hook ("PC decode" side): if `pc` ends the current task,
  /// performs the task switch (including combinational cascades across
  /// shared nest boundaries) and returns the redirect + index write-backs.
  virtual std::optional<AccelEvent> on_fetch(std::uint32_t pc) = 0;

  /// Resolution-time hook: a taken branch/jump at `pc` targeting `target`.
  /// Matches candidate exit records (loop break-outs) and entry records
  /// (multi-entry loops); returns reinit write-backs when one matches.
  virtual std::optional<AccelEvent> on_taken_control(std::uint32_t pc,
                                                     std::uint32_t target) = 0;

  [[nodiscard]] virtual AccelSnapshot snapshot() const = 0;
  virtual void restore(const AccelSnapshot& snapshot) = 0;
};

}  // namespace zolcsim::cpu

#endif  // ZOLCSIM_CPU_ACCEL_HPP
