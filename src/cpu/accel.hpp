// LoopAccelerator: the interface between the processor model and a
// zero-overhead loop controller. The CPU module depends only on this
// interface; src/zolc provides the implementations (uZOLC / ZOLClite /
// ZOLCfull). The interface mirrors the hardware hookup in Fig. 1 of the
// paper: the instruction decoder drives init-mode writes, the PC decoding
// unit exchanges task-end / redirect / candidate-exit information, and the
// register file receives index write-backs.
#ifndef ZOLCSIM_CPU_ACCEL_HPP
#define ZOLCSIM_CPU_ACCEL_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "isa/opcodes.hpp"

namespace zolcsim::cpu {

/// An index write-back destined for the integer register file through the
/// ZOLC's dedicated write port.
struct RfWrite {
  std::uint8_t reg = 0;
  std::int32_t value = 0;

  friend bool operator==(const RfWrite&, const RfWrite&) = default;
};

/// Small-vector of RfWrites. Events sit on both simulators' hot paths and
/// almost always carry one or two writes (a continue event's index update,
/// a done event's reinit), so the common case stays inline and
/// allocation-free; deep cascade reinits spill to the heap.
class RfWriteList {
 public:
  void push_back(const RfWrite& w) {
    if (spill_.empty() && n_ < kInlineCap) {
      inline_[n_++] = w;
      return;
    }
    if (spill_.empty()) {
      spill_.assign(inline_.begin(), inline_.begin() + n_);
      n_ = 0;  // invariant: a non-empty spill owns all elements
    }
    spill_.push_back(w);
  }

  [[nodiscard]] const RfWrite* begin() const noexcept {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  [[nodiscard]] const RfWrite* end() const noexcept { return begin() + size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return spill_.empty() ? n_ : spill_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const RfWrite& operator[](std::size_t i) const noexcept {
    return begin()[i];
  }

 private:
  static constexpr std::size_t kInlineCap = 4;
  std::array<RfWrite, kInlineCap> inline_{};
  std::uint8_t n_ = 0;
  std::vector<RfWrite> spill_;
};

/// Result of a fetch-time or resolution-time ZOLC event.
struct AccelEvent {
  /// New fetch target (task switching); nullopt = fall through.
  std::optional<std::uint32_t> redirect;
  /// Index write-backs. The pipeline applies them when the triggering
  /// instruction becomes non-speculative (entering its resolution stage).
  RfWriteList rf_writes;
};

/// Capacity of the per-loop snapshot state. Matches the largest loop table
/// any ZolcGeometry may declare (zolc::kMaxGeometryLoops).
inline constexpr unsigned kMaxAccelLoops = 32;

/// Architectural controller state that changes in active mode; saved before
/// each speculative fetch-time event and restored on wrong-path flushes.
/// Snapshots sit on the simulators' hot paths (they ride the pipeline
/// latches while a fetch event is in flight), so copies touch only the
/// `loop_count` live entries, not the full worst-case array; entries at
/// index >= loop_count are uninitialized and must never be read.
struct AccelSnapshot {
  std::array<std::int32_t, kMaxAccelLoops> loop_current;
  std::int32_t micro_current = 0;
  std::uint8_t loop_count = 0;  ///< live prefix of loop_current
  std::uint8_t current_task = 0;
  bool active = false;

  AccelSnapshot() noexcept {}
  AccelSnapshot(const AccelSnapshot& other) noexcept { *this = other; }
  AccelSnapshot& operator=(const AccelSnapshot& other) noexcept {
    for (std::uint8_t i = 0; i < other.loop_count; ++i) {
      loop_current[i] = other.loop_current[i];
    }
    micro_current = other.micro_current;
    loop_count = other.loop_count;
    current_task = other.current_task;
    active = other.active;
    return *this;
  }

  friend bool operator==(const AccelSnapshot& a,
                         const AccelSnapshot& b) noexcept {
    if (a.loop_count != b.loop_count || a.micro_current != b.micro_current ||
        a.current_task != b.current_task || a.active != b.active) {
      return false;
    }
    for (std::uint8_t i = 0; i < a.loop_count; ++i) {
      if (a.loop_current[i] != b.loop_current[i]) return false;
    }
    return true;
  }
};

/// Static description of the innermost hardware-managed loop the controller
/// is currently iterating: the summary-execution tier's view of the
/// hardware. Valid only while the controller sits in a self-looping task
/// (the continue successor re-enters the same task), i.e. a body that
/// repeats under pure back-edge control with no task switching.
struct LoopSummaryInfo {
  std::uint32_t body_start = 0;  ///< PC of the first body instruction
  std::uint32_t body_end = 0;    ///< PC of the last body instruction (the
                                 ///< task-end trigger comparator value)
  std::uint8_t index_rf = 0;     ///< GPR receiving the index write-back
  std::int32_t step = 0;         ///< index increment per back-edge
  std::int32_t current = 0;      ///< live index value (mirrors index_rf)
  /// Back-edges the hardware will still take before the done event, by the
  /// loop-condition recurrence. The body therefore executes remaining + 1
  /// more times (the final iteration's boundary event is `done`).
  std::uint64_t remaining = 0;
  /// ZOLCfull only: candidate-exit records are armed for this loop. The
  /// summary tier must decline (a record could fire on a body branch).
  bool has_exit_records = false;
};

/// Loop-condition relation for NestLoopDesc, matching the controller's
/// comparator semantics: the back-edge is taken while
/// nest_cond_holds(cond, current + step, final).
enum class NestCond : std::uint8_t { kLt, kLe, kGt, kGe };

[[nodiscard]] inline bool nest_cond_holds(NestCond cond, std::int32_t value,
                                          std::int32_t final_value) noexcept {
  switch (cond) {
    case NestCond::kLt: return value < final_value;
    case NestCond::kLe: return value <= final_value;
    case NestCond::kGt: return value > final_value;
    case NestCond::kGe: return value >= final_value;
  }
  return false;
}

/// One loop-table entry exported to the summary tier (NestProgram).
struct NestLoopDesc {
  std::uint8_t index_rf = 0;
  NestCond cond = NestCond::kLt;
  bool valid = false;
  /// ZOLCfull: candidate-exit records are armed for this loop; the summary
  /// tier declines bodies it controls.
  bool has_exit_records = false;
  std::int32_t step = 0;
  std::int32_t initial = 0;
  std::int32_t final = 0;
  /// Total iterations per entry from `initial` (back-edges + 1), or 0 when
  /// the recurrence does not terminate.
  std::uint64_t trips = 0;
};

/// One task-table entry exported to the summary tier, with the PC offsets
/// resolved to byte addresses against the activation base.
struct NestTaskDesc {
  std::uint32_t start_pc = 0;
  std::uint32_t end_pc = 0;
  std::uint8_t loop = 0;  ///< controlling loop (index into NestProgram::loops)
  std::uint8_t cont = 0;  ///< continue-successor task
  std::uint8_t done = 0;  ///< done-successor task
  bool is_last = false;
  bool valid = false;
  /// A fetch event at end_pc is statically guaranteed to resolve without a
  /// hardware fault (every task in the done-cascade from here references a
  /// valid loop and the chain cannot exceed the cascade depth limit).
  /// Tasks without it never enter summary execution, so the baseline raises
  /// any table-programming fault precisely.
  bool walk_safe = false;
};

/// The controller's task/loop tables in summary-executable form: a pure
/// function of the programmed tables and activation base, so it stays valid
/// for a whole active period (tables cannot be rewritten while active).
/// Dynamic state (loop currents, current task) comes from AccelSnapshot.
struct NestProgram {
  std::vector<NestTaskDesc> tasks;
  std::vector<NestLoopDesc> loops;
};

class LoopAccelerator {
 public:
  virtual ~LoopAccelerator() = default;

  /// Initialization-mode table write (zolw.* instructions). `op` selects the
  /// table, `idx` the entry, `value` the payload (from GPR rs).
  virtual void init_write(isa::Opcode op, std::uint8_t idx,
                          std::uint32_t value) = 0;

  /// zolon: switch to active mode starting at `start_task`, with table PC
  /// offsets relative to byte address `base`.
  virtual void activate(std::uint8_t start_task, std::uint32_t base) = 0;

  /// zoloff: leave active mode.
  virtual void deactivate() = 0;

  /// Cheap check: would on_fetch(pc) produce an event? Used by the pipeline
  /// to avoid snapshots on the common path and by the fetch-gating policy.
  [[nodiscard]] virtual bool will_trigger(std::uint32_t pc) const = 0;

  /// Fetch-time hook ("PC decode" side): if `pc` ends the current task,
  /// performs the task switch (including combinational cascades across
  /// shared nest boundaries) and returns the redirect + index write-backs.
  virtual std::optional<AccelEvent> on_fetch(std::uint32_t pc) = 0;

  /// Resolution-time hook: a taken branch/jump at `pc` targeting `target`.
  /// Matches candidate exit records (loop break-outs) and entry records
  /// (multi-entry loops); returns reinit write-backs when one matches.
  virtual std::optional<AccelEvent> on_taken_control(std::uint32_t pc,
                                                     std::uint32_t target) = 0;

  [[nodiscard]] virtual AccelSnapshot snapshot() const = 0;
  virtual void restore(const AccelSnapshot& snapshot) = 0;

  /// The latched task-end comparator value: the PC whose fetch will raise
  /// the next event, when the controller is active and armed. The summary
  /// tier uses it to bound the straight-line region it may replay.
  /// Equivalent to the will_trigger() predicate, exposed as a value.
  [[nodiscard]] virtual std::optional<std::uint32_t> trigger_pc() const {
    return std::nullopt;
  }

  /// Summary-tier hook: the innermost loop currently being iterated, when
  /// the controller can describe it (active, self-looping task, computable
  /// trip count). Default: no summary, so accelerators that do not opt in
  /// simply never engage the fast path.
  [[nodiscard]] virtual std::optional<LoopSummaryInfo> innermost_summary()
      const {
    return std::nullopt;
  }

  /// Summary-tier hook: applies `iterations` back-edges of the innermost
  /// loop in one step -- index advance and continue-event accounting exactly
  /// as if on_fetch had fired that many times without reaching `done`.
  /// Precondition: innermost_summary() returned remaining >= iterations.
  virtual void advance_innermost(std::uint64_t iterations) {
    (void)iterations;
  }

  /// Summary-tier hook: the programmed tables in executable form, or
  /// nullptr when the accelerator cannot export them (then the summary tier
  /// falls back to per-event chaining through on_fetch). The pointer stays
  /// valid until the next table write, activation, or reset.
  [[nodiscard]] virtual const NestProgram* nest_program() const {
    return nullptr;
  }

  /// Summary-tier hook: credits event counters for boundary events the
  /// summary tier resolved itself via nest_program() (their architectural
  /// effects were applied through restore() and direct register writes).
  /// Mirrors exactly what the skipped on_fetch calls would have counted.
  virtual void credit_summary_events(std::uint64_t continues,
                                     std::uint64_t dones,
                                     std::uint64_t cascades,
                                     std::uint64_t max_cascade_depth) {
    (void)continues;
    (void)dones;
    (void)cascades;
    (void)max_cascade_depth;
  }
};

}  // namespace zolcsim::cpu

#endif  // ZOLCSIM_CPU_ACCEL_HPP
