// Instruction-set simulator (functional golden model). Executes one
// instruction per step with ZOLC semantics identical to the pipeline's:
// fetch-time task-end events are speculated and rolled back if the
// triggering instruction turns out to be a taken control transfer. Used for
// co-simulation tests against the cycle-accurate pipeline and for fast
// functional verification of kernels.
#ifndef ZOLCSIM_CPU_ISS_HPP
#define ZOLCSIM_CPU_ISS_HPP

#include <cstdint>
#include <functional>

#include "cpu/accel.hpp"
#include "cpu/exec.hpp"
#include "cpu/regfile.hpp"
#include "cpu/summary.hpp"
#include "isa/code_image.hpp"
#include "mem/memory.hpp"

namespace zolcsim::cpu {

/// Observer invoked once per architecturally executed instruction, in
/// program order. Shared by the ISS and the pipeline so retirement streams
/// can be compared instruction-by-instruction.
using RetireHook =
    std::function<void(std::uint32_t pc, const isa::Instruction& instr)>;

struct IssStats {
  std::uint64_t instructions = 0;
  std::uint64_t taken_control = 0;
  std::uint64_t zolc_fetch_events = 0;
  std::uint64_t zolc_resolution_events = 0;
};

class Iss {
 public:
  explicit Iss(mem::Memory& memory) : mem_(memory) {}

  /// Attaches a loop accelerator (non-owning; may be nullptr).
  void set_accelerator(LoopAccelerator* accel) noexcept { accel_ = accel; }

  /// Attaches a predecoded code image (non-owning; must outlive the ISS).
  /// Fetches inside the image skip the per-step decode; fetches outside it
  /// decode from memory as before.
  void set_code_image(isa::CodeImage image) noexcept {
    image_ = image;
    summarizer_.clear_cache();
  }

  /// Enables the loop-summary fast path (DESIGN.md section 7): hardware-
  /// managed innermost loops replay through pre-bound micro-ops instead of
  /// per-instruction stepping. Architecturally invisible; automatically
  /// disabled while a retire hook is attached (the hook must observe every
  /// instruction individually).
  void set_fast_path(bool on) noexcept { fast_path_ = on; }
  [[nodiscard]] bool fast_path() const noexcept { return fast_path_; }

  /// Observer called after each executed instruction.
  void set_retire_hook(RetireHook hook) { retire_hook_ = std::move(hook); }

  void set_pc(std::uint32_t pc) noexcept { pc_ = pc; }
  [[nodiscard]] std::uint32_t pc() const noexcept { return pc_; }
  [[nodiscard]] bool halted() const noexcept { return halted_; }

  [[nodiscard]] RegFile& regs() noexcept { return regs_; }
  [[nodiscard]] const RegFile& regs() const noexcept { return regs_; }
  [[nodiscard]] const IssStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FastPathStats& fastpath_stats() const noexcept {
    return summarizer_.stats();
  }
  /// Direct summarizer access for tests (thresholds, validation seam).
  [[nodiscard]] LoopSummarizer& summarizer() noexcept { return summarizer_; }

  /// Executes one instruction. No-op when halted. Throws SimError on an
  /// invalid instruction or a ZOLC instruction with no accelerator attached.
  void step();

  /// Runs until halt or `max_steps`. Returns the number of instructions
  /// executed by this call. Throws SimError if the limit is hit. Starts
  /// from clean IssStats and FastPathStats so counters describe this run
  /// only, regardless of earlier step()/run() activity.
  std::uint64_t run(std::uint64_t max_steps);

  /// Runs until halt or until `max_steps` more instructions executed,
  /// whichever comes first, and returns the number executed by this call.
  /// Unlike run(), statistics accumulate across slices and exhausting the
  /// budget is not an error: callers time-slicing execution (preemption,
  /// tenant scheduling) check halted() and enforce their own global budget.
  std::uint64_t run_slice(std::uint64_t max_steps);

 private:
  mem::Memory& mem_;
  RegFile regs_;
  isa::CodeImage image_;
  LoopAccelerator* accel_ = nullptr;
  RetireHook retire_hook_;
  LoopSummarizer summarizer_;
  std::uint32_t pc_ = 0;
  bool halted_ = false;
  bool fast_path_ = false;
  bool fetch_redirected_ = false;  ///< last step applied a fetch-event redirect
  IssStats stats_;
};

}  // namespace zolcsim::cpu

#endif  // ZOLCSIM_CPU_ISS_HPP
