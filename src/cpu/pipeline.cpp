#include "cpu/pipeline.hpp"

#include "common/strings.hpp"

namespace zolcsim::cpu {

namespace {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

bool is_zolc_instr(const Instruction& instr) {
  return isa::opcode_info(instr.op).is_zolc;
}

}  // namespace

Pipeline::Pipeline(mem::Memory& memory, PipelineConfig config)
    : mem_(memory), config_(config) {}

std::int32_t Pipeline::forward_to_ex(const Latches& cur, std::uint8_t reg,
                                     std::int32_t id_value) const {
  if (!config_.forwarding || reg == 0) return id_value;
  // Youngest producer wins: EX/MEM latch first, then MEM/WB.
  if (cur.ex_mem.valid && cur.ex_mem.dest && *cur.ex_mem.dest == reg &&
      !cur.ex_mem.is_load) {
    return cur.ex_mem.alu;
  }
  if (cur.mem_wb.valid && cur.mem_wb.dest && *cur.mem_wb.dest == reg) {
    return cur.mem_wb.value;
  }
  return id_value;
}

std::int32_t Pipeline::read_in_id(const Latches& cur, std::uint8_t reg) const {
  // The register file was already updated by this cycle's WB (write-before-
  // read). The only in-flight value visible to ID is the previous EX result.
  if (config_.forwarding && reg != 0 && cur.ex_mem.valid && cur.ex_mem.dest &&
      *cur.ex_mem.dest == reg && !cur.ex_mem.is_load) {
    return cur.ex_mem.alu;
  }
  return regs_.read(reg);
}

bool Pipeline::writes_reg(const std::optional<std::uint8_t>& dest,
                          const isa::SourceRegs& srcs) const {
  if (!dest) return false;
  for (std::uint8_t i = 0; i < srcs.count; ++i) {
    if (srcs.regs[i] == *dest) return true;
  }
  return false;
}

bool Pipeline::control_in_flight(const Latches& cur) const {
  if (cur.if_id.valid && cur.if_id.instr.valid() &&
      isa::is_control_flow(cur.if_id.instr)) {
    return true;
  }
  if (config_.branch_resolve == BranchResolveStage::kExecute &&
      cur.id_ex.valid && cur.id_ex.instr.valid() &&
      isa::is_control_flow(cur.id_ex.instr)) {
    return true;
  }
  return false;
}

void Pipeline::cycle() {
  if (halted_) return;
  const Latches cur = latches_;
  Latches next;

  // Redirect bookkeeping for this cycle.
  bool redirect = false;
  std::uint32_t redirect_target = 0;
  std::uint32_t resolved_pc = 0;
  bool redirect_from_ex = false;
  // Oldest accel snapshot to restore on a wrong-path rollback.
  std::optional<AccelSnapshot> rollback_to;

  // ---------------- WB ----------------
  if (cur.mem_wb.valid) {
    // Commit-time illegal-instruction trap: wrong-path garbage never gets
    // here (squashed at resolution), correct-path garbage traps precisely.
    if (!cur.mem_wb.instr.valid()) {
      throw SimError("illegal instruction at " + hex32(cur.mem_wb.pc));
    }
    if (cur.mem_wb.dest) regs_.write(*cur.mem_wb.dest, cur.mem_wb.value);
    ++stats_.instructions;
    if (retire_hook_) retire_hook_(cur.mem_wb.pc, cur.mem_wb.instr);
    if (is_zolc_instr(cur.mem_wb.instr)) ++stats_.zolc_init_instructions;
    if (cur.mem_wb.instr.op == Opcode::kHalt) halted_ = true;
  }

  // ---------------- MEM ----------------
  if (cur.ex_mem.valid) {
    MemWb wb;
    wb.valid = true;
    wb.pc = cur.ex_mem.pc;
    wb.instr = cur.ex_mem.instr;
    wb.dest = cur.ex_mem.dest;
    wb.value = cur.ex_mem.alu;
    if (cur.ex_mem.is_load) {
      wb.value = mem_load(cur.ex_mem.instr.op, mem_,
                          static_cast<std::uint32_t>(cur.ex_mem.alu));
      ++stats_.loads;
    } else if (cur.ex_mem.is_store) {
      mem_store(cur.ex_mem.instr.op, mem_,
                static_cast<std::uint32_t>(cur.ex_mem.alu),
                cur.ex_mem.store_val);
      ++stats_.stores;
    }
    next.mem_wb = wb;
  }

  // ---------------- EX ----------------
  if (cur.id_ex.valid && !cur.id_ex.instr.valid()) {
    // Pass invalid instructions through as inert bubbles; they trap at WB.
    ExMem ex;
    ex.valid = true;
    ex.pc = cur.id_ex.pc;
    ex.instr = cur.id_ex.instr;
    next.ex_mem = ex;
  } else if (cur.id_ex.valid) {
    const Instruction& instr = cur.id_ex.instr;
    const isa::OpcodeInfo& info = isa::opcode_info(instr.op);

    const std::int32_t a = forward_to_ex(cur, instr.rs, cur.id_ex.rs_val);
    const std::int32_t rt_fwd = forward_to_ex(cur, instr.rt, cur.id_ex.rt_val);
    const std::int32_t acc = forward_to_ex(cur, instr.rd, cur.id_ex.rd_val);

    // Resolve control flow first (EX-resolution config); under kDecode it
    // was already resolved in ID and the latch carries no live branch work.
    bool taken = false;
    std::uint32_t target = 0;
    if (config_.branch_resolve == BranchResolveStage::kExecute) {
      if (info.is_cond_branch) {
        std::int32_t lhs = a;
        if (instr.op == Opcode::kDbne) {
          lhs = alu_eval(Opcode::kDbne, AluInputs{a, 0, 0, 0});
        }
        taken = branch_taken(instr.op, lhs, rt_fwd);
        target = isa::branch_target(instr, cur.id_ex.pc);
      } else if (info.is_jump) {
        taken = true;
        target = (instr.op == Opcode::kJ || instr.op == Opcode::kJal)
                     ? isa::jump_target(instr, cur.id_ex.pc)
                     : static_cast<std::uint32_t>(a);
      }
    }

    // Commit this instruction's fetch-time ZOLC write-backs now that it is
    // entering EX (non-speculative) -- unless it is itself a taken control
    // transfer, in which case the fetch-time speculation was wrong-path.
    if (cur.id_ex.fetch_info) {
      if (taken) {
        rollback_to = cur.id_ex.fetch_info->before;
      } else {
        for (const RfWrite& w : cur.id_ex.fetch_info->event.rf_writes) {
          regs_.write(w.reg, w.value);
        }
      }
    }

    if (taken) {
      redirect = true;
      redirect_from_ex = true;
      redirect_target = target;
      resolved_pc = cur.id_ex.pc;
      ++stats_.taken_control;
    }

    ExMem ex;
    ex.valid = true;
    ex.pc = cur.id_ex.pc;
    ex.instr = instr;
    ex.dest = isa::dest_reg(instr);
    ex.is_load = info.is_load;
    ex.is_store = info.is_store;

    switch (info.format) {
      case Format::kR3:
      case Format::kR3Acc:
      case Format::kR2:
      case Format::kR1:
      case Format::kRShift: {
        if (instr.op == Opcode::kJr) break;
        if (instr.op == Opcode::kJalr) {
          ex.alu = static_cast<std::int32_t>(cur.id_ex.pc + 4);
          break;
        }
        AluInputs in;
        in.a = a;
        in.b = rt_fwd;
        in.acc = acc;
        in.shamt = instr.shamt;
        ex.alu = alu_eval(instr.op, in);
        break;
      }
      case Format::kI:
      case Format::kLui: {
        AluInputs in;
        in.a = a;
        in.b = instr.imm;
        ex.alu = alu_eval(instr.op, in);
        break;
      }
      case Format::kMem:
        ex.alu =
            static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                      static_cast<std::uint32_t>(instr.imm));
        ex.store_val = rt_fwd;
        break;
      case Format::kBranchCmp:
      case Format::kBranchZero:
        if (instr.op == Opcode::kDbne) {
          ex.alu = alu_eval(Opcode::kDbne, AluInputs{a, 0, 0, 0});
        }
        break;
      case Format::kJump:
        if (instr.op == Opcode::kJal) {
          ex.alu = static_cast<std::int32_t>(cur.id_ex.pc + 4);
          ex.dest = 31;
        }
        break;
      case Format::kZolcWrite:
      case Format::kZolcNone: {
        if (accel_ == nullptr) {
          throw SimError("ZOLC instruction at " + hex32(cur.id_ex.pc) +
                         " with no loop accelerator attached");
        }
        if (instr.op == Opcode::kZolOn) {
          accel_->activate(instr.zidx, static_cast<std::uint32_t>(a));
        } else if (instr.op == Opcode::kZolOff) {
          accel_->deactivate();
        } else {
          accel_->init_write(instr.op, instr.zidx,
                             static_cast<std::uint32_t>(a));
        }
        break;
      }
      case Format::kNone:
        break;
    }
    next.ex_mem = ex;
  }

  // ---------------- ID ----------------
  // Skip decode entirely when the EX stage redirected this cycle: the
  // instruction in ID is wrong-path and is squashed below.
  bool stall = false;
  if (cur.if_id.valid && !redirect_from_ex && !cur.if_id.instr.valid()) {
    // Inert pass-through; traps at WB if it ever retires.
    IdEx id;
    id.valid = true;
    id.pc = cur.if_id.pc;
    id.instr = cur.if_id.instr;
    next.id_ex = id;
  } else if (cur.if_id.valid && !redirect_from_ex) {
    const Instruction& instr = cur.if_id.instr;
    const isa::SourceRegs srcs = isa::source_regs(instr);

    // An invalid (wrong-path garbage) instruction in EX is inert: it has no
    // destination and participates in no hazards.
    const bool ex_stage_valid = cur.id_ex.valid && cur.id_ex.instr.valid();
    if (config_.forwarding) {
      // Load-use interlock: producer load currently in EX.
      if (ex_stage_valid && isa::opcode_info(cur.id_ex.instr.op).is_load &&
          writes_reg(isa::dest_reg(cur.id_ex.instr), srcs)) {
        stall = true;
        ++stats_.load_use_stalls;
      }
      // ID-resolution interlocks: branch operands must be available in ID.
      if (!stall && config_.branch_resolve == BranchResolveStage::kDecode &&
          isa::is_control_flow(instr)) {
        const bool ex_hazard =
            ex_stage_valid && writes_reg(isa::dest_reg(cur.id_ex.instr), srcs);
        const bool mem_load_hazard = cur.ex_mem.valid && cur.ex_mem.is_load &&
                                     writes_reg(cur.ex_mem.dest, srcs);
        if (ex_hazard || mem_load_hazard) {
          stall = true;
          ++stats_.interlock_stalls;
        }
      }
    } else {
      // No forwarding: wait until every producer has written back.
      const bool hazard =
          (ex_stage_valid &&
           writes_reg(isa::dest_reg(cur.id_ex.instr), srcs)) ||
          (cur.ex_mem.valid && writes_reg(cur.ex_mem.dest, srcs));
      if (hazard) {
        stall = true;
        ++stats_.raw_stalls;
      }
    }

    if (!stall) {
      IdEx id;
      id.valid = true;
      id.pc = cur.if_id.pc;
      id.instr = instr;
      id.rs_val = read_in_id(cur, instr.rs);
      id.rt_val = read_in_id(cur, instr.rt);
      id.rd_val = read_in_id(cur, instr.rd);
      id.fetch_info = cur.if_id.fetch_info;

      // Early (decode-stage) control resolution.
      if (config_.branch_resolve == BranchResolveStage::kDecode &&
          isa::is_control_flow(instr)) {
        const isa::OpcodeInfo& info = isa::opcode_info(instr.op);
        bool taken = false;
        std::uint32_t target = 0;
        if (info.is_cond_branch) {
          std::int32_t lhs = id.rs_val;
          if (instr.op == Opcode::kDbne) {
            lhs = alu_eval(Opcode::kDbne, AluInputs{id.rs_val, 0, 0, 0});
          }
          taken = branch_taken(instr.op, lhs, id.rt_val);
          target = isa::branch_target(instr, id.pc);
        } else {
          taken = true;
          target = (instr.op == Opcode::kJ || instr.op == Opcode::kJal)
                       ? isa::jump_target(instr, id.pc)
                       : static_cast<std::uint32_t>(id.rs_val);
        }
        if (taken) {
          redirect = true;
          redirect_target = target;
          resolved_pc = id.pc;
          ++stats_.taken_control;
          // This branch's own fetch-time event was fall-through speculation:
          // cancel it (write-backs never applied) and remember the rollback.
          if (id.fetch_info) {
            if (!rollback_to) rollback_to = id.fetch_info->before;
            id.fetch_info.reset();
          }
        }
      }
      next.id_ex = id;
    } else {
      next.if_id = cur.if_id;  // hold
    }
  }

  // ---------------- IF ----------------
  bool fetched = false;
  std::uint32_t next_pc = pc_;
  if (!stall) {
    const bool gate = config_.speculation == SpeculationPolicy::kGate &&
                      accel_ != nullptr && accel_->will_trigger(pc_) &&
                      control_in_flight(cur);
    if (gate) {
      ++stats_.gate_stalls;
    } else {
      IfId ifi;
      ifi.valid = true;
      ifi.pc = pc_;
      ifi.instr = image_.covers(pc_) ? image_.at(pc_)
                                     : isa::decode(mem_.fetch32(pc_));
      if (accel_ != nullptr && accel_->will_trigger(pc_)) {
        FetchInfo fi;
        fi.before = accel_->snapshot();
        auto event = accel_->on_fetch(pc_);
        ZS_ASSERT(event.has_value());
        fi.event = std::move(*event);
        ++stats_.zolc_fetch_events;
        next_pc = fi.event.redirect.value_or(pc_ + 4);
        ifi.fetch_info = std::move(fi);
      } else {
        next_pc = pc_ + 4;
      }
      next.if_id = ifi;
      fetched = true;
    }
  }

  // ------------- redirect / squash -------------
  if (redirect) {
    // Determine the oldest wrong-path ZOLC event and restore its snapshot.
    // Priority (oldest first): the branch's own event (already captured in
    // rollback_to), then the squashed IF/ID instruction (EX resolution
    // only), then this cycle's squashed fetch.
    if (!rollback_to && redirect_from_ex && cur.if_id.valid &&
        cur.if_id.fetch_info) {
      rollback_to = cur.if_id.fetch_info->before;
    }
    if (!rollback_to && fetched && next.if_id.fetch_info) {
      rollback_to = next.if_id.fetch_info->before;
    }
    if (rollback_to) {
      ZS_ASSERT(accel_ != nullptr);
      accel_->restore(*rollback_to);
      ++stats_.zolc_rollbacks;
    }
    // Resolution-time ZOLC hook (candidate exits / entries).
    if (accel_ != nullptr) {
      if (auto resolution = accel_->on_taken_control(resolved_pc,
                                                     redirect_target)) {
        ++stats_.zolc_resolution_events;
        for (const RfWrite& w : resolution->rf_writes) {
          regs_.write(w.reg, w.value);
        }
      }
    }
    // Squash wrong-path slots (this cycle's fetch or a held IF/ID entry,
    // plus -- for EX resolution -- the instruction that was in ID).
    if (next.if_id.valid) ++stats_.control_flush_slots;
    next.if_id = IfId{};
    if (redirect_from_ex) {
      if (cur.if_id.valid) ++stats_.control_flush_slots;
      next.id_ex = IdEx{};
    }
    next_pc = redirect_target;
  }

  latches_ = next;
  pc_ = next_pc;
  ++stats_.cycles;
}

std::uint64_t Pipeline::run(std::uint64_t max_cycles) {
  std::uint64_t consumed = 0;
  while (!halted_) {
    if (consumed >= max_cycles) {
      throw SimError("pipeline cycle limit (" + std::to_string(max_cycles) +
                     ") exceeded at pc " + hex32(pc_));
    }
    cycle();
    ++consumed;
  }
  return consumed;
}

}  // namespace zolcsim::cpu
