#include "cpu/exec.hpp"

#include <bit>

#include "common/contracts.hpp"

namespace zolcsim::cpu {

namespace {

// Two's-complement arithmetic via unsigned math (defined overflow), as the
// hardware does; the core has no overflow traps.
std::int32_t wrap_add(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}

std::int32_t wrap_sub(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}

std::int32_t wrap_mul(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                   static_cast<std::uint32_t>(b));
}

}  // namespace

std::int32_t alu_eval(isa::Opcode op, const AluInputs& in) {
  using O = isa::Opcode;
  const auto ua = static_cast<std::uint32_t>(in.a);
  const auto ub = static_cast<std::uint32_t>(in.b);
  switch (op) {
    case O::kAdd:
    case O::kAddi:
      return wrap_add(in.a, in.b);
    case O::kSub:
      return wrap_sub(in.a, in.b);
    case O::kAnd:
    case O::kAndi:
      return static_cast<std::int32_t>(ua & ub);
    case O::kOr:
    case O::kOri:
      return static_cast<std::int32_t>(ua | ub);
    case O::kXor:
    case O::kXori:
      return static_cast<std::int32_t>(ua ^ ub);
    case O::kNor:
      return static_cast<std::int32_t>(~(ua | ub));
    case O::kSlt:
    case O::kSlti:
      return in.a < in.b ? 1 : 0;
    case O::kSltu:
    case O::kSltiu:
      return ua < ub ? 1 : 0;
    case O::kSll:
      return static_cast<std::int32_t>(ub << in.shamt);
    case O::kSrl:
      return static_cast<std::int32_t>(ub >> in.shamt);
    case O::kSra:
      return in.b >> in.shamt;
    case O::kSllv:
      return static_cast<std::int32_t>(ub << (ua & 31u));
    case O::kSrlv:
      return static_cast<std::int32_t>(ub >> (ua & 31u));
    case O::kSrav:
      return in.b >> (ua & 31u);
    case O::kLui:
      return static_cast<std::int32_t>(ub << 16);
    case O::kMul:
      return wrap_mul(in.a, in.b);
    case O::kMulh:
      return static_cast<std::int32_t>(
          (static_cast<std::int64_t>(in.a) * static_cast<std::int64_t>(in.b)) >>
          32);
    case O::kMulhu:
      return static_cast<std::int32_t>(
          (static_cast<std::uint64_t>(ua) * static_cast<std::uint64_t>(ub)) >>
          32);
    case O::kMac:
      return wrap_add(in.acc, wrap_mul(in.a, in.b));
    case O::kMax:
      return in.a > in.b ? in.a : in.b;
    case O::kMin:
      return in.a < in.b ? in.a : in.b;
    case O::kAbs:
      return in.a < 0 ? wrap_sub(0, in.a) : in.a;
    case O::kClz:
      return static_cast<std::int32_t>(std::countl_zero(ua));
    case O::kDbne:
      return wrap_sub(in.a, 1);  // decremented counter, written back to rs
    case O::kJal:
    case O::kJalr:
      return in.acc;  // link value (pc + 4), supplied by the caller
    default:
      ZS_UNREACHABLE("alu_eval: opcode has no ALU result");
  }
}

bool branch_taken(isa::Opcode op, std::int32_t rs, std::int32_t rt) {
  using O = isa::Opcode;
  const auto urs = static_cast<std::uint32_t>(rs);
  const auto urt = static_cast<std::uint32_t>(rt);
  switch (op) {
    case O::kBeq:  return rs == rt;
    case O::kBne:  return rs != rt;
    case O::kBlez: return rs <= 0;
    case O::kBgtz: return rs > 0;
    case O::kBlt:  return rs < rt;
    case O::kBge:  return rs >= rt;
    case O::kBltu: return urs < urt;
    case O::kBgeu: return urs >= urt;
    case O::kDbne: return rs != 0;  // rs is the decremented value
    default:
      ZS_UNREACHABLE("branch_taken: not a conditional branch");
  }
}

bool uses_immediate_operand(isa::Opcode op) {
  const isa::OpcodeInfo& info = isa::opcode_info(op);
  return info.format == isa::Format::kI || info.format == isa::Format::kMem ||
         info.format == isa::Format::kLui;
}

}  // namespace zolcsim::cpu
