#include "cpu/iss.hpp"

#include "common/strings.hpp"
#include "isa/encoding.hpp"

namespace zolcsim::cpu {

namespace {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

}  // namespace

void Iss::step() {
  if (halted_) return;
  fetch_redirected_ = false;

  const Instruction instr =
      image_.covers(pc_) ? image_.at(pc_) : isa::decode(mem_.fetch32(pc_));
  if (!instr.valid()) {
    throw SimError("illegal instruction " + hex32(mem_.fetch32(pc_)) +
                   " at " + hex32(pc_));
  }
  const isa::OpcodeInfo& info = isa::opcode_info(instr.op);

  // Fetch-time ZOLC event (speculative: discarded if this instruction is a
  // taken control transfer, mirroring the pipeline's rollback).
  std::optional<AccelEvent> fetch_event;
  AccelSnapshot pre_fetch{};
  if (accel_ != nullptr && accel_->will_trigger(pc_)) {
    pre_fetch = accel_->snapshot();
    fetch_event = accel_->on_fetch(pc_);
    ++stats_.zolc_fetch_events;
  }

  // Operand reads (before any write-backs of this step).
  const std::int32_t rs_val = regs_.read(instr.rs);
  const std::int32_t rt_val = regs_.read(instr.rt);
  const std::int32_t rd_val = regs_.read(instr.rd);

  bool taken_control = false;
  std::uint32_t control_target = 0;

  switch (info.format) {
    case Format::kR3:
    case Format::kR3Acc:
    case Format::kR2:
    case Format::kR1:
    case Format::kRShift: {
      if (instr.op == Opcode::kJr || instr.op == Opcode::kJalr) {
        taken_control = true;
        control_target = static_cast<std::uint32_t>(rs_val);
        if (instr.op == Opcode::kJalr) {
          regs_.write(instr.rd, static_cast<std::int32_t>(pc_ + 4));
        }
        break;
      }
      AluInputs in;
      in.a = rs_val;
      in.b = rt_val;
      in.acc = rd_val;
      in.shamt = instr.shamt;
      regs_.write(instr.rd, alu_eval(instr.op, in));
      break;
    }
    case Format::kI:
    case Format::kLui: {
      AluInputs in;
      in.a = rs_val;
      in.b = instr.imm;
      regs_.write(instr.rt, alu_eval(instr.op, in));
      break;
    }
    case Format::kBranchCmp:
    case Format::kBranchZero: {
      std::int32_t lhs = rs_val;
      if (instr.op == Opcode::kDbne) {
        lhs = alu_eval(Opcode::kDbne, AluInputs{rs_val, 0, 0, 0});
        regs_.write(instr.rs, lhs);
      }
      if (branch_taken(instr.op, lhs, rt_val)) {
        taken_control = true;
        control_target = isa::branch_target(instr, pc_);
      }
      break;
    }
    case Format::kMem: {
      const auto addr = static_cast<std::uint32_t>(
          rs_val + instr.imm);
      const isa::OpcodeInfo& minfo = isa::opcode_info(instr.op);
      if (minfo.is_load) {
        regs_.write(instr.rt, mem_load(instr.op, mem_, addr));
      } else if (minfo.is_store) {
        mem_store(instr.op, mem_, addr, rt_val);
      } else {
        ZS_UNREACHABLE("memory format without memory opcode");
      }
      break;
    }
    case Format::kJump: {
      taken_control = true;
      control_target = isa::jump_target(instr, pc_);
      if (instr.op == Opcode::kJal) {
        regs_.write(31, static_cast<std::int32_t>(pc_ + 4));
      }
      break;
    }
    case Format::kZolcWrite:
    case Format::kZolcNone: {
      if (accel_ == nullptr) {
        throw SimError("ZOLC instruction at " + hex32(pc_) +
                       " with no loop accelerator attached");
      }
      if (instr.op == Opcode::kZolOn) {
        accel_->activate(instr.zidx, static_cast<std::uint32_t>(rs_val));
      } else if (instr.op == Opcode::kZolOff) {
        accel_->deactivate();
      } else {
        accel_->init_write(instr.op, instr.zidx,
                           static_cast<std::uint32_t>(rs_val));
      }
      break;
    }
    case Format::kNone: {
      if (instr.op == Opcode::kHalt) halted_ = true;
      break;
    }
  }

  ++stats_.instructions;
  if (retire_hook_) retire_hook_(pc_, instr);

  if (taken_control) {
    ++stats_.taken_control;
    // The fetch-time speculation assumed fall-through; discard it.
    if (fetch_event) {
      accel_->restore(pre_fetch);
    }
    if (accel_ != nullptr) {
      if (auto resolution = accel_->on_taken_control(pc_, control_target)) {
        ++stats_.zolc_resolution_events;
        for (const RfWrite& w : resolution->rf_writes) {
          regs_.write(w.reg, w.value);
        }
      }
    }
    pc_ = control_target;
    return;
  }

  if (fetch_event) {
    for (const RfWrite& w : fetch_event->rf_writes) {
      regs_.write(w.reg, w.value);
    }
    fetch_redirected_ = fetch_event->redirect.has_value();
    pc_ = fetch_event->redirect.value_or(pc_ + 4);
    return;
  }
  pc_ += 4;
}

std::uint64_t Iss::run(std::uint64_t max_steps) {
  stats_ = IssStats{};
  summarizer_.reset_stats();
  const std::uint64_t executed = run_slice(max_steps);
  if (!halted_) {
    throw SimError("ISS step limit (" + std::to_string(max_steps) +
                   ") exceeded at pc " + hex32(pc_));
  }
  return executed;
}

std::uint64_t Iss::run_slice(std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (!halted_ && executed < max_steps) {
    step();
    ++executed;
    // A fetch-event redirect is the only way execution (re-)enters a
    // ZOLC-managed body's first instruction mid-region; that is where the
    // summary tier can take over. Disabled under a retire hook, which must
    // observe every instruction individually. The slice budget caps the
    // replay, so a preemption point inside a would-be replay simply ends
    // the replay early and re-validates after the restore.
    if (fast_path_ && fetch_redirected_ && accel_ != nullptr &&
        !retire_hook_) {
      const LoopSummarizer::Replay replay = summarizer_.try_engage(
          *accel_, image_, mem_, regs_, pc_, max_steps - executed);
      if (replay.engaged) {
        executed += replay.instructions;
        stats_.instructions += replay.instructions;
        stats_.zolc_fetch_events += replay.fetch_events;
        pc_ = replay.resume_pc;
      }
    }
  }
  return executed;
}

}  // namespace zolcsim::cpu
