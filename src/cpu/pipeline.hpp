// Cycle-accurate model of the modelled embedded RISC core: classic 5-stage
// in-order pipeline (IF/ID/EX/MEM/WB) with full forwarding, a load-use
// interlock, configurable branch resolution stage, and the ZOLC hookup of
// Fig. 1 of the paper:
//   * IF consults the loop accelerator each fetch ("PC decode" task-end
//     detection); a task end redirects the *next* fetch in the same cycle,
//     so hardware-managed loop back-edges cost zero cycles;
//   * index write-backs ride with the triggering instruction and commit when
//     it enters its resolution stage (modelling the dedicated RF write port);
//   * wrong-path fetches that crossed a task-end PC are rolled back from a
//     snapshot when the older taken branch resolves (kRollback policy), or
//     avoided entirely by stalling fetch while control flow is unresolved
//     (kGate policy, costs cycles; used for the ablation study).
#ifndef ZOLCSIM_CPU_PIPELINE_HPP
#define ZOLCSIM_CPU_PIPELINE_HPP

#include <cstdint>
#include <optional>

#include "cpu/accel.hpp"
#include "cpu/exec.hpp"
#include "cpu/iss.hpp"
#include "cpu/regfile.hpp"
#include "isa/code_image.hpp"
#include "isa/encoding.hpp"
#include "mem/memory.hpp"

namespace zolcsim::cpu {

/// Stage in which conditional branches and jumps resolve. kExecute models
/// the default core (2-cycle taken penalty); kDecode models an early-branch
/// core (1-cycle penalty, extra operand interlocks).
enum class BranchResolveStage : std::uint8_t { kDecode, kExecute };

/// How fetch-time ZOLC events interact with in-flight unresolved control
/// flow (see file comment).
enum class SpeculationPolicy : std::uint8_t { kRollback, kGate };

struct PipelineConfig {
  BranchResolveStage branch_resolve = BranchResolveStage::kExecute;
  SpeculationPolicy speculation = SpeculationPolicy::kRollback;
  bool forwarding = true;  ///< false: stall until write-back (ablation)
};

struct PipelineStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  ///< retired (reaching WB)
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t taken_control = 0;
  std::uint64_t control_flush_slots = 0;  ///< squashed wrong-path slots
  std::uint64_t load_use_stalls = 0;
  std::uint64_t interlock_stalls = 0;  ///< ID-resolution operand interlocks
  std::uint64_t raw_stalls = 0;        ///< no-forwarding hazard stalls
  std::uint64_t gate_stalls = 0;       ///< kGate fetch stalls
  std::uint64_t zolc_fetch_events = 0;
  std::uint64_t zolc_rollbacks = 0;
  std::uint64_t zolc_resolution_events = 0;
  std::uint64_t zolc_init_instructions = 0;  ///< retired zolw*/zolon/zoloff
};

class Pipeline {
 public:
  explicit Pipeline(mem::Memory& memory, PipelineConfig config = {});

  /// Attaches a loop accelerator (non-owning; may be nullptr).
  void set_accelerator(LoopAccelerator* accel) noexcept { accel_ = accel; }

  /// Attaches a predecoded code image (non-owning; must outlive the
  /// pipeline). Fetches inside the image skip the per-cycle decode; fetches
  /// outside it decode from memory as before.
  void set_code_image(isa::CodeImage image) noexcept { image_ = image; }

  /// Observer called at write-back for every retired instruction (program
  /// order; wrong-path instructions never reach it).
  void set_retire_hook(RetireHook hook) { retire_hook_ = std::move(hook); }

  void set_pc(std::uint32_t pc) noexcept { pc_ = pc; }
  [[nodiscard]] bool halted() const noexcept { return halted_; }

  [[nodiscard]] RegFile& regs() noexcept { return regs_; }
  [[nodiscard]] const RegFile& regs() const noexcept { return regs_; }
  [[nodiscard]] const PipelineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }

  /// Advances one clock cycle. No-op when halted.
  void cycle();

  /// Runs until HALT retires or `max_cycles` elapse. Returns total cycles
  /// consumed by this call. Throws SimError if the limit is hit.
  std::uint64_t run(std::uint64_t max_cycles);

 private:
  /// Fetch-time ZOLC event riding with the triggering instruction.
  struct FetchInfo {
    AccelEvent event;
    AccelSnapshot before;  ///< accelerator state before the event fired
  };

  struct IfId {
    bool valid = false;
    std::uint32_t pc = 0;
    isa::Instruction instr;
    std::optional<FetchInfo> fetch_info;
  };

  struct IdEx {
    bool valid = false;
    std::uint32_t pc = 0;
    isa::Instruction instr;
    std::int32_t rs_val = 0;
    std::int32_t rt_val = 0;
    std::int32_t rd_val = 0;
    std::optional<FetchInfo> fetch_info;
  };

  struct ExMem {
    bool valid = false;
    std::uint32_t pc = 0;
    isa::Instruction instr;
    std::int32_t alu = 0;
    std::int32_t store_val = 0;
    std::optional<std::uint8_t> dest;
    bool is_load = false;
    bool is_store = false;
  };

  struct MemWb {
    bool valid = false;
    std::uint32_t pc = 0;
    isa::Instruction instr;
    std::int32_t value = 0;
    std::optional<std::uint8_t> dest;
  };

  struct Latches {
    IfId if_id;
    IdEx id_ex;
    ExMem ex_mem;
    MemWb mem_wb;
  };

  // Stage helpers (operate on the previous-cycle latch copy `cur`).
  [[nodiscard]] std::int32_t forward_to_ex(const Latches& cur, std::uint8_t reg,
                                           std::int32_t id_value) const;
  [[nodiscard]] std::int32_t read_in_id(const Latches& cur,
                                        std::uint8_t reg) const;
  [[nodiscard]] bool writes_reg(const std::optional<std::uint8_t>& dest,
                                const isa::SourceRegs& srcs) const;
  [[nodiscard]] bool control_in_flight(const Latches& cur) const;

  mem::Memory& mem_;
  PipelineConfig config_;
  RegFile regs_;
  isa::CodeImage image_;
  LoopAccelerator* accel_ = nullptr;
  RetireHook retire_hook_;
  Latches latches_;
  std::uint32_t pc_ = 0;
  bool halted_ = false;
  PipelineStats stats_;
};

}  // namespace zolcsim::cpu

#endif  // ZOLCSIM_CPU_PIPELINE_HPP
