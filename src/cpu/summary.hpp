// Loop-summary fast path for the ISS (DESIGN.md section 7). When execution
// lands inside a ZOLC-managed region, the LoopSummarizer takes over from
// per-instruction stepping: it decodes the straight-line region between the
// current PC and the controller's latched trigger into pre-bound micro-ops,
// executes it in a tight loop, raises the boundary event (on_fetch) itself,
// and follows the redirect into the next region. When the current task
// self-loops (an innermost loop body repeating under pure back-edge
// control), it goes further: it records the first iteration's store pattern,
// validates it against the second, then replays all remaining iterations
// with the index recurrence applied in closed form (advance_innermost) --
// no per-iteration controller event at all. Replay is architecturally
// invisible: micro-ops reuse the exact alu_eval / mem_load / mem_store
// semantics and every disqualifying event bails out to cycle-accurate mode
// at an exact instruction boundary with a typed BailoutReason surfaced as a
// counter.
#ifndef ZOLCSIM_CPU_SUMMARY_HPP
#define ZOLCSIM_CPU_SUMMARY_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cpu/accel.hpp"
#include "cpu/regfile.hpp"
#include "isa/code_image.hpp"
#include "isa/instruction.hpp"
#include "mem/memory.hpp"

namespace zolcsim::cpu {

/// Why a summary attempt declined to engage, or an engaged replay fell back
/// to cycle-accurate stepping. The first six are qualification failures
/// detected before the offending work executes; the last three are detected
/// mid-replay and bail out at an exact instruction boundary.
enum class BailoutReason : std::uint8_t {
  kShortLoop,           ///< too few remaining back-edges to amortize setup
  kControlFlow,         ///< region contains a branch, jump, or halt
  kNonAffineUpdate,     ///< body writes the loop index, or a store's base
                        ///< register is neither invariant nor self-affine
  kExitRecord,          ///< ZOLCfull candidate-exit records armed for loop
  kAccelMutation,       ///< region contains a ZOLC instruction
  kTrap,                ///< invalid instruction, misaligned data access, or
                        ///< a table-programming fault in the event walk --
                        ///< all re-raised precisely by the baseline
  kSelfModifyingStore,  ///< a store targets summarized code
  kOverlappingStore,    ///< recorded store ranges overlap within an iteration
  kValidationMismatch,  ///< second iteration contradicts the recorded pattern
};

inline constexpr std::size_t kNumBailoutReasons = 9;

/// Stable lower_snake name for JSON emission and test messages.
[[nodiscard]] const char* bailout_reason_name(BailoutReason reason);

/// Fast-path effectiveness counters, reset per Iss::run.
struct FastPathStats {
  std::uint64_t attempts = 0;     ///< times the tier was offered a region
  std::uint64_t engagements = 0;  ///< attempts that replayed >=1 instruction
  /// ZOLC events replayed (closed-form back-edges + chained boundary
  /// events); mirrors the zolc_fetch_events the baseline would count.
  std::uint64_t replayed_backedges = 0;
  std::uint64_t replayed_instructions = 0;
  std::array<std::uint64_t, kNumBailoutReasons> bailouts{};

  [[nodiscard]] std::uint64_t bailout(BailoutReason reason) const noexcept {
    return bailouts[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t total_bailouts() const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t b : bailouts) total += b;
    return total;
  }

  friend bool operator==(const FastPathStats&, const FastPathStats&) = default;
};

class LoopSummarizer {
 public:
  /// One store executed during a recorded iteration: byte address + width.
  struct StoreRecord {
    std::uint32_t addr = 0;
    std::uint8_t size = 0;

    friend bool operator==(const StoreRecord&, const StoreRecord&) = default;
  };

  /// Outcome of try_engage. When `engaged`, the caller must account
  /// `instructions` executed instructions and `fetch_events` ZOLC events,
  /// and resume cycle-accurate stepping at `resume_pc` (always an exact
  /// instruction boundary).
  struct Replay {
    std::uint64_t instructions = 0;
    std::uint64_t fetch_events = 0;
    std::uint32_t resume_pc = 0;
    bool engaged = false;
  };

  /// Offers the fast path a chance to run at `pc`. Engages when `pc` opens
  /// a qualifying straight-line region bounded by the controller's trigger;
  /// then alternates closed-form replay of self-looping tasks with chained
  /// region execution across boundary events, until a region disqualifies,
  /// the controller disarms, or `max_instructions` is reached. Leaves
  /// registers, memory, and accelerator state exactly as cycle-accurate
  /// stepping would at resume_pc.
  Replay try_engage(LoopAccelerator& accel, const isa::CodeImage& image,
                    mem::Memory& mem, RegFile& regs, std::uint32_t pc,
                    std::uint64_t max_instructions);

  /// Validation seam (also exercised directly by unit tests with doctored
  /// records): checks the first recorded iteration for overlapping store
  /// ranges and the second against the statically predicted per-iteration
  /// strides. Returns the bailout to take, or nullopt when the recording is
  /// consistent. `second` may be empty (iteration 2 not yet recorded).
  [[nodiscard]] static std::optional<BailoutReason> check_recorded_iterations(
      const std::vector<StoreRecord>& first,
      const std::vector<StoreRecord>& second,
      const std::vector<std::int64_t>& predicted_strides);

  [[nodiscard]] const FastPathStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = FastPathStats{}; }

  /// Drops decoded regions, cached disqualifications, and raw page
  /// pointers (call when the code image or program memory changes).
  void clear_cache() noexcept {
    cache_.clear();
    cache_lo_ = UINT32_MAX;
    cache_hi_ = 0;
    mru_key_[0] = mru_key_[1] = 0;
    mru_entry_[0] = mru_entry_[1] = nullptr;
    drop_page_cache();
  }

  /// Minimum remaining back-edges required to engage closed-form replay on
  /// a freshly entered self-loop (below it the attempt counts a kShortLoop
  /// bailout). Tests tune it to force engagement or short-loop declines.
  void set_min_backedges(std::uint64_t n) noexcept { min_backedges_ = n; }
  [[nodiscard]] std::uint64_t min_backedges() const noexcept {
    return min_backedges_;
  }

 private:
  /// A pre-bound micro-op: the region instruction with its operand routing
  /// resolved, so replay is a flat switch with no decode or table lookups.
  /// The hottest opcodes (addi/add/mac/max, word load/store) get dedicated
  /// kinds; everything else dispatches through the shared alu_eval.
  struct Uop {
    enum class Kind : std::uint8_t {
      kAlu,     ///< generic register-form op via alu_eval
      kAluImm,  ///< generic immediate-form op via alu_eval
      kAddi,
      kAdd,
      kMac,
      kMax,
      kSll,
      kMul,
      kLoad,
      kStore,
    };
    Kind kind = Kind::kAlu;
    isa::Opcode op = isa::Opcode::kInvalid;
    std::uint8_t dest = 0;  ///< rd (register forms) or rt (imm/load forms)
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::uint8_t shamt = 0;
    std::uint8_t width = 0;     ///< access bytes for kLoad / kStore
    bool sign_extend = false;   ///< kLoad: sign- vs zero-extend
    std::int32_t imm = 0;
  };

  /// Decoded region plus the static dataflow facts qualification needs.
  struct BodyInfo {
    std::vector<Uop> uops;
    std::vector<std::uint32_t> store_slots;  ///< uop indices of stores
    std::uint32_t reads_mask = 0;   ///< registers any uop reads
    std::uint32_t writes_mask = 0;  ///< registers any uop writes
    /// Net per-iteration delta for registers written only by affine
    /// self-increments (addi r, r, imm); zero for invariant registers.
    std::array<std::int32_t, isa::kNumRegs> affine_delta{};
  };

  struct CacheEntry {
    std::optional<BailoutReason> rejected;  ///< region cannot run as uops
    /// Region runs fine one pass at a time but cannot be replayed in
    /// closed form (a store base is neither invariant nor self-affine).
    std::optional<BailoutReason> bulk_rejected;
    /// Cleared the first time this region is chained while the controller
    /// is NOT self-looping over it, eliding the innermost_summary() query
    /// on later visits (boundary regions never become loop bodies).
    bool maybe_self_loop = true;
    BodyInfo body;  ///< valid iff !rejected
  };

  static CacheEntry analyze_body(std::uint32_t body_start,
                                 std::uint32_t body_end,
                                 const isa::CodeImage& image,
                                 const mem::Memory& mem);

  /// Looks up (or analyzes and caches) the region [start, end].
  CacheEntry& region(std::uint32_t start, std::uint32_t end,
                     const isa::CodeImage& image, const mem::Memory& mem);

  /// Outcome of run_region: fully completed passes, plus the number of uops
  /// executed into the bailed pass (the uop at `partial` did NOT execute).
  struct RunOutcome {
    std::uint64_t passes = 0;
    std::size_t partial = 0;
  };

  /// Executes up to `passes` back-to-back passes over `body` via micro-ops.
  /// After each of the first `edge_limit` completed passes the fused
  /// back-edge index write is applied: *idx_val += idx_step, written to
  /// `idx_reg` (callers replaying an index-blind body pass edge_limit 0 and
  /// land the final value themselves). `*bail` is set on a mid-pass
  /// bailout. When `record` is non-null, store addresses of every pass are
  /// appended to it. Memory goes through cached raw page pointers with the
  /// access statistics accounted in one batch.
  RunOutcome run_region(const BodyInfo& body, mem::Memory& mem, RegFile& regs,
                        std::uint64_t passes, std::uint64_t edge_limit,
                        std::uint8_t idx_reg, std::int32_t idx_step,
                        std::int32_t* idx_val,
                        std::vector<StoreRecord>* record,
                        std::optional<BailoutReason>* bail);

  /// Summary execution against an exported NestProgram: runs regions and
  /// resolves every boundary event inline on engagement-local copies of the
  /// controller's dynamic state (no per-event virtual dispatch), then
  /// writes the final state back through restore() and credits the elided
  /// event counters. Architecturally exact, including ZolcStats.
  Replay engage_nest(const NestProgram& np, LoopAccelerator& accel,
                     const isa::CodeImage& image, mem::Memory& mem,
                     RegFile& regs, std::uint32_t pc,
                     std::uint64_t max_instructions);

  std::uint64_t min_backedges_ = 2;
  FastPathStats stats_;
  /// Keyed (start << 32) | end; cleared on clear_cache().
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  /// Two most-recently-used cache entries (map nodes are pointer-stable);
  /// way 0 is the most recent.
  std::uint64_t mru_key_[2] = {0, 0};
  CacheEntry* mru_entry_[2] = {nullptr, nullptr};
  /// Cached raw data pages (see mem::Memory::peek_page): four round-robin
  /// load ways (a tiled body streams two input arrays plus an accumulator)
  /// and the last store target. The load ways only hold resident pages, so
  /// a page materializing later is still observed.
  std::uint32_t load_page_no_[4] = {UINT32_MAX, UINT32_MAX, UINT32_MAX,
                                    UINT32_MAX};
  const std::uint8_t* load_page_[4] = {nullptr, nullptr, nullptr, nullptr};
  std::uint32_t load_victim_ = 0;
  std::uint32_t store_page_no_ = UINT32_MAX;
  std::uint8_t* store_page_ = nullptr;
  /// mem::Memory::cow_epoch() observed when the page caches were last
  /// (re)filled. Copy-on-write memories bump their epoch when a baseline
  /// page is privatized or reset_to_baseline() frees private pages; a
  /// mismatch at engagement entry drops the cached page pointers above.
  std::uint64_t mem_epoch_ = 0;

  /// Drops only the raw page-pointer caches (keeps decoded regions, which
  /// depend on the code image, not on data-page identity).
  void drop_page_cache() noexcept {
    for (unsigned w = 0; w < 4; ++w) {
      load_page_no_[w] = UINT32_MAX;
      load_page_[w] = nullptr;
    }
    load_victim_ = 0;
    store_page_no_ = UINT32_MAX;
    store_page_ = nullptr;
  }
  /// Scratch buffers reused across engagements (allocation-free replay).
  std::vector<std::int64_t> scratch_strides_;
  std::vector<StoreRecord> scratch_rec_[2];
  /// Bounds of all cached executable regions: a store landing inside
  /// [cache_lo_, cache_hi_ + 3] bails out (kSelfModifyingStore) before
  /// executing, so cached micro-ops can never go stale.
  std::uint32_t cache_lo_ = UINT32_MAX;
  std::uint32_t cache_hi_ = 0;
};

}  // namespace zolcsim::cpu

#endif  // ZOLCSIM_CPU_SUMMARY_HPP
