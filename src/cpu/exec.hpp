// Shared functional semantics: pure ALU evaluation, branch decisions, and
// load/store memory-op behaviour used identically by the ISS (golden model)
// and the pipeline (EX and MEM stages), so the two simulators cannot diverge
// on instruction behaviour.
#ifndef ZOLCSIM_CPU_EXEC_HPP
#define ZOLCSIM_CPU_EXEC_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"
#include "isa/instruction.hpp"
#include "mem/memory.hpp"

namespace zolcsim::cpu {

/// Thrown on simulator traps: illegal instruction, disabled ISA extension,
/// runaway execution.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Operand bundle for alu_eval. `a` = rs value, `b` = rt value or extended
/// immediate (per format), `acc` = rd value for accumulating ops (mac).
struct AluInputs {
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t acc = 0;
  std::uint8_t shamt = 0;
};

/// Evaluates the ALU/DSP result of `op`. For jal/jalr pass the link value
/// through `in.acc`. Precondition: op has an ALU result (not a pure branch,
/// store, or zolc op).
[[nodiscard]] std::int32_t alu_eval(isa::Opcode op, const AluInputs& in);

/// Branch decision for conditional branches. For dbne, `rs` must be the
/// *decremented* value (rs_old - 1).
[[nodiscard]] bool branch_taken(isa::Opcode op, std::int32_t rs,
                                std::int32_t rt);

/// True iff `op` produces its operand `b` from the immediate field
/// (I-type ALU and memory address computation).
[[nodiscard]] bool uses_immediate_operand(isa::Opcode op);

/// Performs the load described by `op` at byte address `addr` and returns
/// the register write-back value (width and sign extension per opcode).
/// Precondition: op is a load. Inline: this sits on both simulators' hot
/// paths (ISS step and pipeline MEM stage).
[[nodiscard]] inline std::int32_t mem_load(isa::Opcode op,
                                           const mem::Memory& memory,
                                           std::uint32_t addr) {
  using O = isa::Opcode;
  switch (op) {
    case O::kLb:
      return static_cast<std::int8_t>(memory.read8(addr));
    case O::kLbu:
      return memory.read8(addr);
    case O::kLh:
      return static_cast<std::int16_t>(memory.read16(addr));
    case O::kLhu:
      return memory.read16(addr);
    case O::kLw:
      return static_cast<std::int32_t>(memory.read32(addr));
    default:
      ZS_UNREACHABLE("mem_load: not a load opcode");
  }
}

/// Performs the store described by `op` at byte address `addr` with register
/// value `value` (truncated to the access width). Precondition: op is a
/// store.
inline void mem_store(isa::Opcode op, mem::Memory& memory, std::uint32_t addr,
                      std::int32_t value) {
  using O = isa::Opcode;
  const auto uv = static_cast<std::uint32_t>(value);
  switch (op) {
    case O::kSb:
      memory.write8(addr, static_cast<std::uint8_t>(uv));
      break;
    case O::kSh:
      memory.write16(addr, static_cast<std::uint16_t>(uv));
      break;
    case O::kSw:
      memory.write32(addr, uv);
      break;
    default:
      ZS_UNREACHABLE("mem_store: not a store opcode");
  }
}

}  // namespace zolcsim::cpu

#endif  // ZOLCSIM_CPU_EXEC_HPP
