// Shared functional semantics: pure ALU evaluation and branch decisions used
// identically by the ISS (golden model) and the pipeline's EX stage, so the
// two simulators cannot diverge on instruction behaviour.
#ifndef ZOLCSIM_CPU_EXEC_HPP
#define ZOLCSIM_CPU_EXEC_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "isa/instruction.hpp"

namespace zolcsim::cpu {

/// Thrown on simulator traps: illegal instruction, disabled ISA extension,
/// runaway execution.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
};

/// Operand bundle for alu_eval. `a` = rs value, `b` = rt value or extended
/// immediate (per format), `acc` = rd value for accumulating ops (mac).
struct AluInputs {
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t acc = 0;
  std::uint8_t shamt = 0;
};

/// Evaluates the ALU/DSP result of `op`. For jal/jalr pass the link value
/// through `in.acc`. Precondition: op has an ALU result (not a pure branch,
/// store, or zolc op).
[[nodiscard]] std::int32_t alu_eval(isa::Opcode op, const AluInputs& in);

/// Branch decision for conditional branches. For dbne, `rs` must be the
/// *decremented* value (rs_old - 1).
[[nodiscard]] bool branch_taken(isa::Opcode op, std::int32_t rs,
                                std::int32_t rt);

/// True iff `op` produces its operand `b` from the immediate field
/// (I-type ALU and memory address computation).
[[nodiscard]] bool uses_immediate_operand(isa::Opcode op);

}  // namespace zolcsim::cpu

#endif  // ZOLCSIM_CPU_EXEC_HPP
