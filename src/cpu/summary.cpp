#include "cpu/summary.hpp"

#include <algorithm>
#include <cstring>

#include "common/contracts.hpp"
#include "cpu/exec.hpp"
#include "isa/encoding.hpp"

namespace zolcsim::cpu {

namespace {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

constexpr std::size_t idx(BailoutReason reason) noexcept {
  return static_cast<std::size_t>(reason);
}

std::uint8_t access_width(Opcode op) noexcept {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kSb:
      return 1;
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kSh:
      return 2;
    case Opcode::kLw:
    case Opcode::kSw:
      return 4;
    default:
      ZS_UNREACHABLE("access_width: not a memory opcode");
  }
}

// Two's-complement add via unsigned math (defined overflow), mirroring
// alu_eval's wrap_add for the specialized micro-op kinds.
std::int32_t wrap_add(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}

std::int32_t wrap_mul(std::int32_t a, std::int32_t b) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                   static_cast<std::uint32_t>(b));
}

// Back-edges a loop at `cur` will still take before its done event: the
// largest n >= 0 with nest_cond_holds(cur + k*step, fin) for every k in
// [1, n]. Conditions are monotone along the step direction, so the count is
// closed-form. Returns -1 when the recurrence does not terminate. Mirrors
// the controller's own remaining-backedge arithmetic exactly.
std::int64_t nest_remaining_backedges(std::int64_t cur, std::int64_t step,
                                      std::int64_t fin, NestCond cond) {
  switch (cond) {
    case NestCond::kLt:
      if (step <= 0) return -1;
      return cur >= fin ? 0 : (fin - cur - 1) / step;
    case NestCond::kLe:
      if (step <= 0) return -1;
      return cur > fin ? 0 : (fin - cur) / step;
    case NestCond::kGt:
      if (step >= 0) return -1;
      return cur <= fin ? 0 : (cur - fin - 1) / -step;
    case NestCond::kGe:
      if (step >= 0) return -1;
      return cur < fin ? 0 : (cur - fin) / -step;
  }
  return -1;
}

}  // namespace

const char* bailout_reason_name(BailoutReason reason) {
  switch (reason) {
    case BailoutReason::kShortLoop:
      return "short_loop";
    case BailoutReason::kControlFlow:
      return "control_flow";
    case BailoutReason::kNonAffineUpdate:
      return "non_affine_update";
    case BailoutReason::kExitRecord:
      return "exit_record";
    case BailoutReason::kAccelMutation:
      return "accel_mutation";
    case BailoutReason::kTrap:
      return "trap";
    case BailoutReason::kSelfModifyingStore:
      return "self_modifying_store";
    case BailoutReason::kOverlappingStore:
      return "overlapping_store";
    case BailoutReason::kValidationMismatch:
      return "validation_mismatch";
  }
  ZS_UNREACHABLE("bailout_reason_name: bad enum value");
}

LoopSummarizer::CacheEntry LoopSummarizer::analyze_body(
    std::uint32_t body_start, std::uint32_t body_end,
    const isa::CodeImage& image, const mem::Memory& mem) {
  CacheEntry entry;
  if (body_start > body_end || ((body_end - body_start) & 3u) != 0) {
    entry.rejected = BailoutReason::kTrap;
    return entry;
  }
  BodyInfo& body = entry.body;
  // Registers with at least one non-self-affine write; such a register can
  // still be read, but disqualifies closed-form replay of any store whose
  // address it bases.
  std::uint32_t nonaffine_mask = 0;
  for (std::uint32_t p = body_start;; p += 4) {
    const Instruction instr =
        image.covers(p) ? image.at(p) : isa::decode(mem.fetch32(p));
    if (!instr.valid()) {
      entry.rejected = BailoutReason::kTrap;
      return entry;
    }
    const isa::OpcodeInfo& info = isa::opcode_info(instr.op);
    if (info.is_zolc) {
      entry.rejected = BailoutReason::kAccelMutation;
      return entry;
    }
    if (isa::is_control_flow(instr) || instr.op == Opcode::kHalt) {
      entry.rejected = BailoutReason::kControlFlow;
      return entry;
    }
    Uop u;
    u.op = instr.op;
    u.rs = instr.rs;
    u.rt = instr.rt;
    u.shamt = instr.shamt;
    u.imm = instr.imm;
    switch (info.format) {
      case Format::kR3:
      case Format::kR3Acc:
      case Format::kR2:
      case Format::kR1:
      case Format::kRShift:
        u.dest = instr.rd;
        switch (instr.op) {
          case Opcode::kAdd:
            u.kind = Uop::Kind::kAdd;
            break;
          case Opcode::kMac:
            u.kind = Uop::Kind::kMac;
            break;
          case Opcode::kMax:
            u.kind = Uop::Kind::kMax;
            break;
          case Opcode::kSll:
            u.kind = Uop::Kind::kSll;
            break;
          case Opcode::kMul:
            u.kind = Uop::Kind::kMul;
            break;
          default:
            u.kind = Uop::Kind::kAlu;
            break;
        }
        break;
      case Format::kI:
      case Format::kLui:
        u.kind = instr.op == Opcode::kAddi ? Uop::Kind::kAddi
                                           : Uop::Kind::kAluImm;
        u.dest = instr.rt;
        break;
      case Format::kMem:
        u.kind = info.is_load ? Uop::Kind::kLoad : Uop::Kind::kStore;
        u.dest = instr.rt;
        u.width = access_width(instr.op);
        u.sign_extend =
            instr.op == Opcode::kLb || instr.op == Opcode::kLh;
        break;
      default:
        // Branches/jumps were rejected above; anything else left in the
        // region (e.g. a stray no-format opcode) cannot be micro-op'd.
        entry.rejected = BailoutReason::kControlFlow;
        return entry;
    }

    const isa::SourceRegs srcs = isa::source_regs(instr);
    for (std::uint8_t i = 0; i < srcs.count; ++i) {
      body.reads_mask |= 1u << srcs.regs[i];
    }
    if (const auto dest = isa::dest_reg(instr)) {
      body.writes_mask |= 1u << *dest;
      if (instr.op == Opcode::kAddi && instr.rs == *dest) {
        body.affine_delta[*dest] += instr.imm;
      } else {
        nonaffine_mask |= 1u << *dest;
      }
    }
    if (u.kind == Uop::Kind::kStore) {
      body.store_slots.push_back(static_cast<std::uint32_t>(body.uops.size()));
    }
    body.uops.push_back(u);
    if (p == body_end) break;
  }
  // A non-affine write poisons the affine delta too: the register's
  // per-iteration advance is no longer the sum of its addi immediates.
  for (unsigned r = 0; r < isa::kNumRegs; ++r) {
    if ((nonaffine_mask >> r) & 1u) body.affine_delta[r] = 0;
  }
  for (std::uint32_t slot : body.store_slots) {
    const std::uint8_t base = body.uops[slot].rs;
    if (((body.writes_mask >> base) & 1u) != 0 &&
        ((nonaffine_mask >> base) & 1u) != 0) {
      entry.bulk_rejected = BailoutReason::kNonAffineUpdate;
      break;
    }
  }
  return entry;
}

LoopSummarizer::CacheEntry& LoopSummarizer::region(std::uint32_t start,
                                                   std::uint32_t end,
                                                   const isa::CodeImage& image,
                                                   const mem::Memory& mem) {
  const std::uint64_t key = (static_cast<std::uint64_t>(start) << 32) | end;
  // Two MRU ways: a loop nest with an imperfect level alternates between
  // the innermost body and the wrapper region every iteration.
  if (mru_entry_[0] != nullptr && key == mru_key_[0]) return *mru_entry_[0];
  if (mru_entry_[1] != nullptr && key == mru_key_[1]) {
    std::swap(mru_key_[0], mru_key_[1]);
    std::swap(mru_entry_[0], mru_entry_[1]);
    return *mru_entry_[0];
  }
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, analyze_body(start, end, image, mem)).first;
    if (!it->second.rejected) {
      cache_lo_ = std::min(cache_lo_, start);
      cache_hi_ = std::max(cache_hi_, end);
    }
  }
  mru_key_[1] = mru_key_[0];
  mru_entry_[1] = mru_entry_[0];
  mru_key_[0] = key;
  mru_entry_[0] = &it->second;
  return it->second;
}

std::optional<BailoutReason> LoopSummarizer::check_recorded_iterations(
    const std::vector<StoreRecord>& first,
    const std::vector<StoreRecord>& second,
    const std::vector<std::int64_t>& predicted_strides) {
  for (std::size_t i = 0; i < first.size(); ++i) {
    const std::uint64_t a_lo = first[i].addr;
    const std::uint64_t a_hi = a_lo + first[i].size;
    for (std::size_t j = i + 1; j < first.size(); ++j) {
      const std::uint64_t b_lo = first[j].addr;
      const std::uint64_t b_hi = b_lo + first[j].size;
      if (a_lo < b_hi && b_lo < a_hi) return BailoutReason::kOverlappingStore;
    }
  }
  if (second.empty()) return std::nullopt;
  if (second.size() != first.size() ||
      predicted_strides.size() != first.size()) {
    return BailoutReason::kValidationMismatch;
  }
  for (std::size_t i = 0; i < first.size(); ++i) {
    const std::int64_t observed = static_cast<std::int64_t>(second[i].addr) -
                                  static_cast<std::int64_t>(first[i].addr);
    if (observed != predicted_strides[i] || second[i].size != first[i].size) {
      return BailoutReason::kValidationMismatch;
    }
  }
  return std::nullopt;
}

LoopSummarizer::RunOutcome LoopSummarizer::run_region(
    const BodyInfo& body, mem::Memory& mem, RegFile& regs,
    std::uint64_t passes, std::uint64_t edge_limit, std::uint8_t idx_reg,
    std::int32_t idx_step, std::int32_t* idx_val,
    std::vector<StoreRecord>* record, std::optional<BailoutReason>* bail) {
  RunOutcome out;
  const Uop* const uops = body.uops.data();
  const std::size_t n = body.uops.size();
  // Access statistics are batched into one count_accesses() call so the
  // raw-page accesses below leave MemoryStats exactly as read*/write*
  // would have (misaligned accesses bail before they are counted, just as
  // the throwing path counts nothing).
  std::uint64_t reads = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_written = 0;
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
  for (std::size_t j = 0; j < n; ++j) {
    const Uop& u = uops[j];
    switch (u.kind) {
      case Uop::Kind::kAddi:
        regs.write_raw(u.dest, wrap_add(regs.read_raw(u.rs), u.imm));
        break;
      case Uop::Kind::kAdd:
        regs.write_raw(u.dest,
                       wrap_add(regs.read_raw(u.rs), regs.read_raw(u.rt)));
        break;
      case Uop::Kind::kMac: {
        const std::int32_t prod =
            wrap_mul(regs.read_raw(u.rs), regs.read_raw(u.rt));
        regs.write_raw(u.dest, wrap_add(regs.read_raw(u.dest), prod));
        break;
      }
      case Uop::Kind::kMax: {
        const std::int32_t a = regs.read_raw(u.rs);
        const std::int32_t b = regs.read_raw(u.rt);
        regs.write_raw(u.dest, a > b ? a : b);
        break;
      }
      case Uop::Kind::kSll:
        regs.write_raw(u.dest,
                       static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(regs.read_raw(u.rt))
                           << u.shamt));
        break;
      case Uop::Kind::kMul:
        regs.write_raw(u.dest,
                       wrap_mul(regs.read_raw(u.rs), regs.read_raw(u.rt)));
        break;
      case Uop::Kind::kAlu: {
        AluInputs in;
        in.a = regs.read_raw(u.rs);
        in.b = regs.read_raw(u.rt);
        in.acc = regs.read_raw(u.dest);
        in.shamt = u.shamt;
        regs.write_raw(u.dest, alu_eval(u.op, in));
        break;
      }
      case Uop::Kind::kAluImm: {
        AluInputs in;
        in.a = regs.read_raw(u.rs);
        in.b = u.imm;
        regs.write_raw(u.dest, alu_eval(u.op, in));
        break;
      }
      case Uop::Kind::kLoad: {
        const auto addr =
            static_cast<std::uint32_t>(regs.read_raw(u.rs) + u.imm);
        if ((addr & (u.width - 1u)) != 0) {
          // Resume at this instruction; the baseline re-executes it and
          // raises the MemoryFault with its precise message.
          *bail = BailoutReason::kTrap;
          out.partial = j;
          goto account;
        }
        ++reads;
        bytes_read += u.width;
        const std::uint32_t page_no = addr >> mem::Memory::kPageBits;
        const std::uint8_t* page;
        if (page_no == load_page_no_[0]) {
          page = load_page_[0];
        } else if (page_no == load_page_no_[1]) {
          page = load_page_[1];
        } else if (page_no == load_page_no_[2]) {
          page = load_page_[2];
        } else if (page_no == load_page_no_[3]) {
          page = load_page_[3];
        } else {
          // Only resident pages are cached: a miss (nullptr) is re-looked
          // up every time so a page materializing later is observed.
          page = mem.peek_page(addr);
          if (page == nullptr) {
            regs.write_raw(u.dest, 0);
            break;
          }
          load_page_no_[load_victim_] = page_no;
          load_page_[load_victim_] = page;
          load_victim_ = (load_victim_ + 1) & 3u;
        }
        const std::uint32_t ofs = addr & (mem::Memory::kPageSize - 1);
        std::int32_t value = 0;
        switch (u.width) {
          case 1:
            value = u.sign_extend ? static_cast<std::int8_t>(page[ofs])
                                  : page[ofs];
            break;
          case 2: {
            std::uint16_t v = 0;
            std::memcpy(&v, page + ofs, 2);
            value = u.sign_extend ? static_cast<std::int16_t>(v) : v;
            break;
          }
          default: {
            std::uint32_t v = 0;
            std::memcpy(&v, page + ofs, 4);
            value = static_cast<std::int32_t>(v);
            break;
          }
        }
        regs.write_raw(u.dest, value);
        break;
      }
      case Uop::Kind::kStore: {
        const auto addr =
            static_cast<std::uint32_t>(regs.read_raw(u.rs) + u.imm);
        if ((addr & (u.width - 1u)) != 0) {
          *bail = BailoutReason::kTrap;
          out.partial = j;
          goto account;
        }
        // Bail before a store lands inside any summarized region: the
        // cached micro-ops must never go stale. Conservative (the bounds
        // cover the whole cached span), costs two compares per store.
        if (addr <= cache_hi_ + 3 && addr + u.width > cache_lo_) {
          *bail = BailoutReason::kSelfModifyingStore;
          out.partial = j;
          goto account;
        }
        if (record != nullptr) record->push_back({addr, u.width});
        ++writes;
        bytes_written += u.width;
        const std::uint32_t page_no = addr >> mem::Memory::kPageBits;
        if (page_no != store_page_no_) {
          store_page_no_ = page_no;
          store_page_ = mem.touch_page(addr);
          // touch_page may have just privatized a copy-on-write baseline
          // page; a load way still holding the baseline pointer for the
          // same page would read pre-store data. Repoint it.
          for (unsigned w = 0; w < 4; ++w) {
            if (load_page_no_[w] == page_no) load_page_[w] = store_page_;
          }
          mem_epoch_ = mem.cow_epoch();
        }
        const std::uint32_t ofs = addr & (mem::Memory::kPageSize - 1);
        const auto uv = static_cast<std::uint32_t>(regs.read_raw(u.rt));
        switch (u.width) {
          case 1:
            store_page_[ofs] = static_cast<std::uint8_t>(uv);
            break;
          case 2: {
            const auto v = static_cast<std::uint16_t>(uv);
            std::memcpy(store_page_ + ofs, &v, 2);
            break;
          }
          default:
            std::memcpy(store_page_ + ofs, &uv, 4);
            break;
        }
        break;
      }
    }
  }
  ++out.passes;
  if (out.passes <= edge_limit) {
    // Fused back-edge: the hardware's continue event at the body's last
    // instruction -- index recurrence applied; the redirect is implicit in
    // the next pass starting over at the first micro-op.
    *idx_val = wrap_add(*idx_val, idx_step);
    regs.write_raw(idx_reg, *idx_val);
  }
  }
account:
  mem.count_accesses(reads, bytes_read, writes, bytes_written);
  return out;
}

LoopSummarizer::Replay LoopSummarizer::try_engage(
    LoopAccelerator& accel, const isa::CodeImage& image, mem::Memory& mem,
    RegFile& regs, std::uint32_t pc, std::uint64_t max_instructions) {
  // Copy-on-write memories invalidate handed-out page pointers when a
  // baseline page is privatized or the dirty set is reset; re-validate the
  // page caches against the epoch before touching them.
  if (mem.cow_epoch() != mem_epoch_) {
    drop_page_cache();
    mem_epoch_ = mem.cow_epoch();
  }
  // Accelerators that export their tables get summary execution: every
  // boundary event resolves inline, with no controller call per event. The
  // chaining path below remains for accelerators that only expose the
  // per-event hooks (uZOLC, custom implementations).
  if (const NestProgram* np = accel.nest_program()) {
    return engage_nest(*np, accel, image, mem, regs, pc, max_instructions);
  }
  Replay out;
  out.resume_pc = pc;
  {
    const std::optional<std::uint32_t> trig = accel.trigger_pc();
    if (!trig || pc > *trig) return out;
  }
  ++stats_.attempts;

  std::uint32_t cur_pc = pc;
  std::optional<BailoutReason> bail;

  while (out.instructions < max_instructions) {
    const std::optional<std::uint32_t> trig = accel.trigger_pc();
    if (!trig || cur_pc > *trig) break;
    CacheEntry& entry = region(cur_pc, *trig, image, mem);
    if (entry.rejected) {
      bail = *entry.rejected;
      break;
    }
    const BodyInfo& body = entry.body;
    const std::size_t body_len = body.uops.size();

    std::optional<LoopSummaryInfo> summary;
    if (entry.maybe_self_loop) {
      summary = accel.innermost_summary();
      if (!(summary && summary->body_start == cur_pc &&
            summary->body_end == *trig)) {
        summary.reset();
        entry.maybe_self_loop = false;
      }
    }
    if (summary) {
      // The current task self-loops: the region is an innermost loop body
      // repeating under pure back-edge control, so its remaining iterations
      // can replay in closed form -- no boundary event per back-edge.
      if (summary->has_exit_records) {
        bail = BailoutReason::kExitRecord;
        break;
      }
      if (((body.writes_mask >> summary->index_rf) & 1u) != 0 ||
          entry.bulk_rejected) {
        bail = BailoutReason::kNonAffineUpdate;
        break;
      }
      if (summary->remaining > 0 && summary->remaining >= min_backedges_) {
        const bool reads_index =
            ((body.reads_mask >> summary->index_rf) & 1u) != 0;
        // Per-iteration address stride each store slot is predicted to
        // take: `step` when based on the loop index, the net self-increment
        // when based on an affine register, zero when invariant.
        std::vector<std::int64_t>& strides = scratch_strides_;
        strides.clear();
        for (std::uint32_t slot : body.store_slots) {
          const std::uint8_t base = body.uops[slot].rs;
          strides.push_back(base == summary->index_rf
                                ? summary->step
                                : body.affine_delta[base]);
        }

        const std::uint64_t room =
            (max_instructions - out.instructions) / body_len;
        const std::uint64_t iters =
            std::min<std::uint64_t>(summary->remaining, room);
        std::vector<StoreRecord>* const recorded = scratch_rec_;
        recorded[0].clear();
        recorded[1].clear();
        std::int64_t cur_index = summary->current;
        std::uint64_t backedges = 0;
        std::size_t partial = 0;
        for (std::uint64_t it = 0; it < iters && !bail; ++it) {
          std::vector<StoreRecord>* rec = it < 2 ? &recorded[it] : nullptr;
          partial = run_region(body, mem, regs, 1, 0, 0, 0, nullptr, rec, &bail)
                        .partial;
          if (bail) break;
          // Fused back-edge: the hardware's continue event at the body's
          // last instruction -- index recurrence + redirect to body_start.
          cur_index += summary->step;
          ++backedges;
          if (reads_index) {
            regs.write(summary->index_rf, static_cast<std::int32_t>(cur_index));
          }
          if (it == 1) {
            if (auto check = check_recorded_iterations(recorded[0],
                                                       recorded[1], strides)) {
              bail = check;
              partial = 0;  // the iteration completed; boundary is exact
              break;
            }
          }
        }
        if (backedges > 0) {
          accel.advance_innermost(backedges);
          // Index writes elided during replay (the body never reads the
          // index): one closed-form write lands the final value.
          if (!reads_index) {
            regs.write(summary->index_rf, static_cast<std::int32_t>(cur_index));
          }
        }
        out.instructions += backedges * body_len + (bail ? partial : 0);
        out.fetch_events += backedges;
        if (bail) {
          cur_pc =
              summary->body_start + 4 * static_cast<std::uint32_t>(partial);
          break;
        }
        if (iters < summary->remaining) break;  // out of budget mid-loop
        continue;  // same region: the final iteration runs below, and its
                   // boundary event resolves the loop's done/cascade
      }
      if (out.instructions == 0) {
        bail = BailoutReason::kShortLoop;
        break;
      }
    }

    // Single pass over the region, then raise the boundary event ourselves
    // and follow the redirect into the next region.
    if (out.instructions + body_len > max_instructions) break;
    const std::size_t partial =
        run_region(body, mem, regs, 1, 0, 0, 0, nullptr, nullptr, &bail)
            .partial;
    if (bail) {
      out.instructions += partial;
      cur_pc += 4 * static_cast<std::uint32_t>(partial);
      break;
    }
    out.instructions += body_len;
    ++out.fetch_events;  // mirrors the baseline's zolc_fetch_events count
    const std::optional<AccelEvent> ev = accel.on_fetch(*trig);
    if (!ev) {
      cur_pc = *trig + 4;
      continue;
    }
    for (const RfWrite& w : ev->rf_writes) regs.write(w.reg, w.value);
    cur_pc = ev->redirect.value_or(*trig + 4);
  }

  out.resume_pc = cur_pc;
  if (bail) ++stats_.bailouts[idx(*bail)];
  out.engaged = out.instructions > 0;
  if (out.engaged) ++stats_.engagements;
  stats_.replayed_instructions += out.instructions;
  stats_.replayed_backedges += out.fetch_events;
  return out;
}

LoopSummarizer::Replay LoopSummarizer::engage_nest(
    const NestProgram& np, LoopAccelerator& accel, const isa::CodeImage& image,
    mem::Memory& mem, RegFile& regs, std::uint32_t pc,
    std::uint64_t max_instructions) {
  Replay out;
  out.resume_pc = pc;
  AccelSnapshot snap = accel.snapshot();
  if (!snap.active || snap.current_task >= np.tasks.size()) return out;
  if (!np.tasks[snap.current_task].valid ||
      pc > np.tasks[snap.current_task].end_pc) {
    return out;
  }
  ++stats_.attempts;

  // Engagement-local copies of the controller's dynamic state. The entire
  // run below -- region passes, back-edges, boundary events, cascades --
  // operates on these; the final state is written back once via restore().
  std::array<std::int32_t, kMaxAccelLoops> cur;
  for (std::uint8_t i = 0; i < snap.loop_count; ++i) {
    cur[i] = snap.loop_current[i];
  }
  std::uint8_t cur_task = snap.current_task;
  bool active = true;
  std::uint32_t cur_pc = pc;
  std::uint64_t continues = 0;
  std::uint64_t dones = 0;
  std::uint64_t cascades = 0;
  std::uint64_t max_depth = 0;
  std::optional<BailoutReason> bail;

  const NestTaskDesc* const tasks = np.tasks.data();
  const NestLoopDesc* const loops = np.loops.data();
  // Engagement-local direct-mapped region cache: a nest cycles through a
  // handful of regions, and this keeps their CacheEntry pointers (stable
  // map nodes) in locals, skipping the region() call on the steady state.
  std::uint64_t rkey[4] = {0, 0, 0, 0};
  CacheEntry* rent[4] = {nullptr, nullptr, nullptr, nullptr};

  while (out.instructions < max_instructions && active) {
    const NestTaskDesc& task = tasks[cur_task];
    // An invalid current task never raises an event; nothing bounds a
    // summarizable region, so hand back to cycle-accurate stepping.
    if (!task.valid) break;
    if (!task.walk_safe) {
      // The boundary event could hit a table-programming fault mid-walk;
      // decline so the baseline raises the SimError precisely at the fetch.
      bail = BailoutReason::kTrap;
      break;
    }
    const std::uint32_t trig = task.end_pc;
    if (cur_pc > trig) break;
    const std::uint64_t rk =
        (static_cast<std::uint64_t>(cur_pc) << 32) | trig;
    const unsigned ri = (cur_pc >> 2) & 3u;
    CacheEntry* entry_p = rent[ri];
    if (entry_p == nullptr || rkey[ri] != rk) {
      entry_p = &region(cur_pc, trig, image, mem);
      rkey[ri] = rk;
      rent[ri] = entry_p;
    }
    CacheEntry& entry = *entry_p;
    if (entry.rejected) {
      bail = *entry.rejected;
      break;
    }
    const BodyInfo& body = entry.body;
    const std::size_t body_len = body.uops.size();

    // A self-looping task from its body start replays in bulk: all its
    // remaining passes run fused in run_region, back-edges included, with
    // no boundary-event resolution until the final (done) iteration. A
    // task whose continue successor self-loops over the same loop and body
    // (the per-level re-entry tasks a nest compiles to) is equally
    // bulk-eligible: its first back-edge just renames the current task.
    bool body_done = false;  // final pass already executed by the bulk path
    bool self = task.cont == cur_task && cur_pc == task.start_pc;
    if (!self && cur_pc == task.start_pc) {
      const NestTaskDesc& ct = tasks[task.cont];
      self = ct.valid && ct.walk_safe && ct.cont == task.cont &&
             ct.loop == task.loop && ct.start_pc == task.start_pc &&
             ct.end_pc == task.end_pc;
    }
    if (self) {
      const NestLoopDesc& loop = loops[task.loop];
      if (loop.has_exit_records) {
        bail = BailoutReason::kExitRecord;
        break;
      }
      if (((body.writes_mask >> loop.index_rf) & 1u) != 0 ||
          entry.bulk_rejected) {
        bail = BailoutReason::kNonAffineUpdate;
        break;
      }
      const std::int64_t remaining =
          cur[task.loop] == loop.initial && loop.trips > 0
              ? static_cast<std::int64_t>(loop.trips) - 1
              : nest_remaining_backedges(cur[task.loop], loop.step, loop.final,
                                         loop.cond);
      if (remaining > 0 &&
          static_cast<std::uint64_t>(remaining) >= min_backedges_) {
        const bool reads_index =
            ((body.reads_mask >> loop.index_rf) & 1u) != 0;

        const std::uint64_t budget = max_instructions - out.instructions;
        // Passes to run: remaining + 1 includes the final (done) iteration,
        // whose boundary event the walk below resolves. A budget clamp
        // stops mid-loop instead, with every completed pass back-edged.
        // The guard multiplies instead of dividing (the division is hot);
        // the magnitude pre-check keeps the product from overflowing.
        std::uint64_t want = static_cast<std::uint64_t>(remaining) + 1;
        bool budget_stop = false;
        if (want > (std::uint64_t{1} << 40) || want * body_len > budget) {
          const std::uint64_t room = budget / body_len;
          if (room < want) {
            want = room;
            budget_stop = true;
          }
        }
        if (want == 0) break;
        const std::uint64_t backedges_total =
            budget_stop ? want : static_cast<std::uint64_t>(remaining);

        // With stores present, the first two passes run singly with store
        // recording, validating the static stride prediction before the
        // fused remainder commits. A store-free body has nothing to
        // validate (the check is vacuous), so all passes fuse directly.
        const std::int32_t entry_index = cur[task.loop];
        std::int32_t ival = entry_index;
        std::uint64_t done_passes = 0;
        std::size_t partial = 0;
        scratch_rec_[0].clear();
        scratch_rec_[1].clear();
        const std::uint64_t prefix =
            body.store_slots.empty() ? 0 : std::min<std::uint64_t>(2, want);
        std::vector<std::int64_t>& strides = scratch_strides_;
        if (prefix != 0) {
          // Per-iteration address stride each store slot is predicted to
          // take, for validating the recorded passes below.
          strides.clear();
          for (std::uint32_t slot : body.store_slots) {
            const std::uint8_t base = body.uops[slot].rs;
            strides.push_back(base == loop.index_rf
                                  ? loop.step
                                  : body.affine_delta[base]);
          }
        }
        for (std::uint64_t it = 0; it < prefix && !bail; ++it) {
          partial = run_region(body, mem, regs, 1, 0, 0, 0, nullptr,
                               &scratch_rec_[it], &bail)
                        .partial;
          if (bail) break;
          ++done_passes;
          if (done_passes <= backedges_total) {
            ival = wrap_add(ival, loop.step);
            if (reads_index) regs.write_raw(loop.index_rf, ival);
          }
          if (it == 1) {
            if (auto check = check_recorded_iterations(
                    scratch_rec_[0], scratch_rec_[1], strides)) {
              bail = check;
              partial = 0;  // the iteration completed; boundary is exact
            }
          }
        }
        if (!bail && done_passes < want) {
          const std::uint64_t rem_edges =
              backedges_total > done_passes ? backedges_total - done_passes
                                            : 0;
          const RunOutcome o = run_region(
              body, mem, regs, want - done_passes,
              reads_index ? rem_edges : 0, loop.index_rf, loop.step, &ival,
              nullptr, &bail);
          partial = o.partial;
          done_passes += o.passes;
        }
        const std::uint64_t backedges_taken =
            std::min<std::uint64_t>(done_passes, backedges_total);
        if (!reads_index) {
          // Index writes elided during replay (the body never reads the
          // index): one closed-form write lands the final value.
          ival = static_cast<std::int32_t>(
              static_cast<std::uint32_t>(entry_index) +
              static_cast<std::uint32_t>(loop.step) *
                  static_cast<std::uint32_t>(backedges_taken));
          if (backedges_taken > 0) regs.write_raw(loop.index_rf, ival);
        }
        cur[task.loop] = ival;
        out.instructions += done_passes * body_len + (bail ? partial : 0);
        out.fetch_events += backedges_taken;
        continues += backedges_taken;
        // The first back-edge switched to the continue successor (a no-op
        // for a strictly self-looping task).
        if (backedges_taken > 0) cur_task = task.cont;
        if (bail) {
          cur_pc = task.start_pc + 4 * static_cast<std::uint32_t>(partial);
          break;
        }
        if (budget_stop) {
          cur_pc = task.start_pc;
          break;
        }
        body_done = true;
      } else if (remaining >= 0 && out.instructions == 0) {
        bail = BailoutReason::kShortLoop;
        break;
      }
      // remaining < 0 (non-terminating recurrence) or a short loop reached
      // mid-chain: run pass-by-pass, the walk taking each back-edge.
    }

    if (!body_done) {
      if (out.instructions + body_len > max_instructions) break;
      const std::size_t partial =
          run_region(body, mem, regs, 1, 0, 0, 0, nullptr, nullptr, &bail)
              .partial;
      if (bail) {
        out.instructions += partial;
        cur_pc += 4 * static_cast<std::uint32_t>(partial);
        break;
      }
      out.instructions += body_len;
    }

    // Boundary event at trig, resolved inline: an exact mirror of the
    // controller's on_fetch walk (continue / done / combinational cascade /
    // deactivate), on the engagement-local state.
    ++out.fetch_events;  // mirrors the baseline's zolc_fetch_events count
    unsigned depth = 0;
    std::uint8_t t = cur_task;
    std::optional<std::uint32_t> redirect;
    while (active) {
      const NestTaskDesc& td = tasks[t];
      if (!td.valid || td.end_pc != trig) break;
      ++depth;
      const NestLoopDesc& ld = loops[td.loop];
      const std::int32_t next = wrap_add(cur[td.loop], ld.step);
      if (nest_cond_holds(ld.cond, next, ld.final)) {
        cur[td.loop] = next;
        regs.write_raw(ld.index_rf, next);
        t = td.cont;
        redirect = tasks[td.cont].start_pc;
        ++continues;
        break;
      }
      cur[td.loop] = ld.initial;
      regs.write_raw(ld.index_rf, ld.initial);
      ++dones;
      if (td.is_last) {
        active = false;
        redirect.reset();  // fall through to the code after the region
        break;
      }
      t = td.done;
      redirect = tasks[td.done].start_pc;
    }
    if (depth > 1) {
      ++cascades;
      if (depth > max_depth) max_depth = depth;
    }
    cur_task = t;
    cur_pc = redirect ? *redirect : trig + 4;
  }

  // One write-back covers every event resolved above; the credited counters
  // are exactly what the skipped on_fetch calls would have counted.
  if (continues + dones > 0) {
    for (std::uint8_t i = 0; i < snap.loop_count; ++i) {
      snap.loop_current[i] = cur[i];
    }
    snap.current_task = cur_task;
    snap.active = active;
    accel.restore(snap);
    accel.credit_summary_events(continues, dones, cascades, max_depth);
  }

  out.resume_pc = cur_pc;
  if (bail) ++stats_.bailouts[idx(*bail)];
  out.engaged = out.instructions > 0;
  if (out.engaged) ++stats_.engagements;
  stats_.replayed_instructions += out.instructions;
  stats_.replayed_backedges += out.fetch_events;
  return out;
}

}  // namespace zolcsim::cpu
