// General-purpose register file: 32 x 32-bit, register 0 hardwired to zero.
#ifndef ZOLCSIM_CPU_REGFILE_HPP
#define ZOLCSIM_CPU_REGFILE_HPP

#include <array>
#include <cstdint>

#include "common/contracts.hpp"
#include "isa/opcodes.hpp"

namespace zolcsim::cpu {

class RegFile {
 public:
  [[nodiscard]] std::int32_t read(unsigned reg) const {
    ZS_EXPECTS(reg < isa::kNumRegs);
    return regs_[reg];
  }

  [[nodiscard]] std::uint32_t read_u(unsigned reg) const {
    return static_cast<std::uint32_t>(read(reg));
  }

  /// Writes `value`; writes to register 0 are architectural no-ops.
  void write(unsigned reg, std::int32_t value) {
    ZS_EXPECTS(reg < isa::kNumRegs);
    if (reg != 0) regs_[reg] = value;
  }

  void write_u(unsigned reg, std::uint32_t value) {
    write(reg, static_cast<std::int32_t>(value));
  }

  // Unchecked accessors for the ISS summary tier's replay loop: its
  // pre-bound micro-ops and exported loop descriptors carry 5-bit register
  // fields, so the precondition holds by construction.

  [[nodiscard]] std::int32_t read_raw(unsigned reg) const noexcept {
    return regs_[reg];
  }

  void write_raw(unsigned reg, std::int32_t value) noexcept {
    if (reg != 0) regs_[reg] = value;
  }

  void reset() { regs_.fill(0); }

  friend bool operator==(const RegFile&, const RegFile&) = default;

 private:
  std::array<std::int32_t, isa::kNumRegs> regs_{};
};

}  // namespace zolcsim::cpu

#endif  // ZOLCSIM_CPU_REGFILE_HPP
