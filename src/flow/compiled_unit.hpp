// CompiledUnit: the compile-time artifact of the staged toolchain.
//
// The evaluation flow of the paper is inherently staged -- lower a kernel
// for a machine/geometry, install the ZOLC tables, then run and measure.
// CompiledUnit captures everything the compile stage produces for one
// (kernel, machine, geometry, env) point:
//
//   KIR build -> lower() -> Program -> predecoded CodeImage -> zolcscan
//
// and is immutable thereafter, so sweeps (and any other caller) can run the
// same unit against many pipeline configurations without paying the
// lowering/assembly/predecode cost again. See flow/run.hpp for the runtime
// stage and flow/cache.hpp for keyed sharing across sweep cells.
#ifndef ZOLCSIM_FLOW_COMPILED_UNIT_HPP
#define ZOLCSIM_FLOW_COMPILED_UNIT_HPP

#include <memory>
#include <mutex>
#include <string>

#include "cfg/zolcscan.hpp"
#include "codegen/lower.hpp"
#include "codegen/program.hpp"
#include "common/result.hpp"
#include "isa/code_image.hpp"
#include "kernels/kernels.hpp"
#include "mem/memory.hpp"
#include "zolc/config.hpp"

namespace zolcsim::flow {

/// The "kernel (machine)" label every flow stage uses as its error context
/// frame (DESIGN.md sec. 5 documents the format as part of the contract).
[[nodiscard]] std::string unit_label(std::string_view kernel,
                                     codegen::MachineKind machine);

/// Everything that identifies one compile: the full cache key of a unit.
struct CompileSpec {
  std::string kernel;  ///< registry name (see kernels::find_kernel)
  codegen::MachineKind machine = codegen::MachineKind::kXrDefault;
  zolc::ZolcGeometry geometry;  ///< paper prototype by default
  kernels::KernelEnv env;

  /// Stable string key over every field (used by CompileCache).
  [[nodiscard]] std::string key() const;
};

/// The immutable compile-stage artifact. Construct via compile(); every
/// accessor is const and the underlying Program never changes, so the
/// predecoded image() stays valid for the unit's whole lifetime (including
/// after moves -- vector storage is stable under move).
class CompiledUnit {
 public:
  /// Compiles `spec.kernel` (looked up in the registries) for
  /// `spec.machine`/`spec.geometry`. Errors: kUnknownKernel, kBadConfig
  /// (invalid geometry), kInvalidKernel, kCapacity -- each carrying a
  /// "kernel (machine)" context frame.
  [[nodiscard]] static Result<CompiledUnit> compile(const CompileSpec& spec);

  /// Same, for a caller-owned kernel (must outlive the unit). Used by tests
  /// and tools that build ad-hoc kernels outside the registries.
  [[nodiscard]] static Result<CompiledUnit> compile(
      const kernels::Kernel& kernel, const CompileSpec& spec);

  [[nodiscard]] const kernels::Kernel& kernel() const noexcept {
    return *kernel_;
  }
  [[nodiscard]] const CompileSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] codegen::MachineKind machine() const noexcept {
    return spec_.machine;
  }
  [[nodiscard]] const zolc::ZolcGeometry& geometry() const noexcept {
    return spec_.geometry;
  }
  [[nodiscard]] const kernels::KernelEnv& env() const noexcept {
    return spec_.env;
  }

  [[nodiscard]] const codegen::Program& program() const noexcept {
    return program_;
  }
  /// Predecoded instruction image (the fetch fast path). Non-owning view
  /// into this unit; valid while the unit is alive.
  [[nodiscard]] isa::CodeImage image() const noexcept {
    return program_.image();
  }
  /// Post-link loop-acceleration metadata: the zolcscan analysis of the
  /// lowered code (candidate counted loops + rejection reasons).
  [[nodiscard]] const cfg::ScanReport& scan() const noexcept { return scan_; }

  /// The prepared memory image for this unit -- program words at
  /// env.code_base plus the kernel's deterministic input data
  /// (Kernel::setup) -- built on first use and cached for the unit's
  /// lifetime. Immutable once built: warm Workloads attach it as their
  /// copy-on-write baseline (mem::Memory::set_baseline) and must never
  /// write through it. Thread-safe; copies of the unit share the image.
  [[nodiscard]] std::shared_ptr<const mem::Memory> prepared_image() const;

  /// Full disassembly listing of the lowered program (one line per word).
  [[nodiscard]] std::string disassembly() const;

  /// The whole compile artifact as JSON: unit identity, program summary and
  /// encoded words, the ZOLC table image recovered from the init prologue
  /// (one {op, index, payload} record per zolw write), and the zolcscan
  /// metadata with typed rejection codes. `zolcsim compile --format=json`
  /// prints exactly this.
  [[nodiscard]] std::string to_json() const;

 private:
  // UnitStore reconstructs units from deserialized parts (bypassing the
  // compile pipeline) and must reach this constructor.
  friend class UnitStore;

  CompiledUnit(const kernels::Kernel& kernel, CompileSpec spec,
               codegen::Program program, cfg::ScanReport scan)
      : kernel_(&kernel),
        spec_(std::move(spec)),
        program_(std::move(program)),
        scan_(std::move(scan)),
        image_slot_(std::make_shared<ImageSlot>()) {}

  /// Lazily built prepared image; shared (not deep-copied) across unit
  /// copies -- the image depends only on the immutable program + env.
  struct ImageSlot {
    std::mutex mutex;
    std::shared_ptr<const mem::Memory> image;
  };

  const kernels::Kernel* kernel_;  ///< non-owning; registry or caller-owned
  CompileSpec spec_;
  codegen::Program program_;
  cfg::ScanReport scan_;
  std::shared_ptr<ImageSlot> image_slot_;
};

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_COMPILED_UNIT_HPP
