// The runtime stage: executes a CompiledUnit on the cycle-accurate pipeline
// under a RunPlan and returns the harness's ExperimentResult. run() is the
// cheap, repeatable half of the staged toolchain -- one CompiledUnit can be
// run under any number of pipeline configurations without recompiling.
#ifndef ZOLCSIM_FLOW_RUN_HPP
#define ZOLCSIM_FLOW_RUN_HPP

#include <cstdint>

#include "cpu/pipeline.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/workload.hpp"
#include "harness/experiment.hpp"

namespace zolcsim::flow {

/// Runtime-stage parameters: everything that varies per run of the same
/// compiled unit.
struct RunPlan {
  cpu::PipelineConfig config;
  std::uint64_t max_cycles = 200'000'000;
  bool predecode = true;  ///< use the unit's predecoded instruction image
  /// Execution mode: pipeline (default), ISS, or ISS with the loop-summary
  /// fast path. ISS runs ignore `config` and report cycles == instructions
  /// (the functional model is 1-CPI by construction); `max_cycles` bounds
  /// the instruction count instead.
  harness::ExecMode mode;
  /// Wall-clock repetitions for the fresh-Workload overload: the simulation
  /// runs this many times on identical initial state and wall_ns reports
  /// the minimum. Architectural results and statistics come from a single
  /// run -- they are rep-invariant. Use >1 when a cell is too short for
  /// one-shot timing (MIPS thresholds, bench artifacts); ignored by the
  /// caller-prepared-Workload overload.
  std::uint64_t timing_reps = 1;
  /// Warm-start (the default): the fresh-Workload overload runs on a
  /// copy-on-write view of the unit's cached prepared image, and timing
  /// reps restore it with an O(dirty-pages) reset instead of re-running
  /// Kernel::setup. Architecturally identical to a cold start (the golden
  /// digests of every scenario suite pin this); disable to measure or
  /// exercise the historical build-image-per-run path.
  bool warm_start = true;
  /// ISS-only preemption interval: every `preempt_every` executed
  /// instructions the controller's full context is saved, the controller is
  /// clobbered with reset(), and the context restored (round-tripping
  /// through the JSON codec when `preempt_serialize` is set) before
  /// execution resumes. 0 disables. Architecturally invisible -- the
  /// differential tests pin bit-identical results -- and rejected
  /// (kBadConfig) under the pipeline engine. Doubles as the scheduling
  /// quantum when `tenants` > 1.
  std::uint64_t preempt_every = 0;
  bool preempt_serialize = false;
  /// Workloads time-sliced over one controller (flow::run_tenants); the
  /// fresh-Workload run() overload dispatches there when > 1. ISS only;
  /// timing_reps are not applied to tenant cells.
  unsigned tenants = 1;
};

/// Runs `unit` on a fresh Workload. Failure modes: kSimulation (trap or
/// cycle budget) and kVerifyMismatch (outputs differ from the golden
/// reference; always a bug, never a reportable data point).
[[nodiscard]] Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                                    const RunPlan& plan = {});

/// Same, against a caller-prepared Workload (consumed: the run mutates its
/// memory, and verify() is called on it afterwards).
[[nodiscard]] Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                                    Workload& workload,
                                                    const RunPlan& plan = {});

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_RUN_HPP
