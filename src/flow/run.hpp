// The runtime stage: executes a CompiledUnit on the cycle-accurate pipeline
// under a RunPlan and returns the harness's ExperimentResult. run() is the
// cheap, repeatable half of the staged toolchain -- one CompiledUnit can be
// run under any number of pipeline configurations without recompiling.
#ifndef ZOLCSIM_FLOW_RUN_HPP
#define ZOLCSIM_FLOW_RUN_HPP

#include <cstdint>

#include "cpu/pipeline.hpp"
#include "flow/compiled_unit.hpp"
#include "flow/workload.hpp"
#include "harness/experiment.hpp"

namespace zolcsim::flow {

/// Runtime-stage parameters: everything that varies per run of the same
/// compiled unit.
struct RunPlan {
  cpu::PipelineConfig config;
  std::uint64_t max_cycles = 200'000'000;
  bool predecode = true;  ///< use the unit's predecoded instruction image
};

/// Runs `unit` on a fresh Workload. Failure modes: kSimulation (trap or
/// cycle budget) and kVerifyMismatch (outputs differ from the golden
/// reference; always a bug, never a reportable data point).
[[nodiscard]] Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                                    const RunPlan& plan = {});

/// Same, against a caller-prepared Workload (consumed: the run mutates its
/// memory, and verify() is called on it afterwards).
[[nodiscard]] Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                                    Workload& workload,
                                                    const RunPlan& plan = {});

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_RUN_HPP
