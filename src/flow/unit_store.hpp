// UnitStore: an on-disk, content-addressed cache of CompiledUnits, so a
// fresh process can skip the compile stage entirely for units any earlier
// process already compiled (ROADMAP: "zolcsim as a service").
//
// Artifacts are one JSON file per unit under a caller-chosen directory,
// named unit-<key>.json where key = FNV-1a 64 over the full CompileSpec key
// (kernel | machine | geometry | env) plus the toolchain tag. The payload
// reuses the `zolcsim compile --format=json` codec verbatim, wrapped in an
// envelope carrying the format version, toolchain tag, the spec (so load
// can reject hash collisions), and an FNV-1a 64 integrity digest of the
// canonical unit JSON. load() re-emits the reconstructed unit through the
// same codec and compares digests, so any content-altering corruption --
// and any codec infidelity -- is caught as ErrorCode::kStoreCorrupt;
// artifacts written by a different compiler build are rejected as
// kStoreStale. Writes go through a temp file + rename, so a concurrent
// reader never observes a half-written artifact.
//
// A UnitStore never fails a compile pipeline: CompileCache treats every
// load() error as a plain miss (and recompiles over the bad artifact); the
// typed errors surface to direct callers, `zolcsim store stat`, and tests.
#ifndef ZOLCSIM_FLOW_UNIT_STORE_HPP
#define ZOLCSIM_FLOW_UNIT_STORE_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "flow/compiled_unit.hpp"

namespace zolcsim::json {
class Value;
}

namespace zolcsim::flow {

class UnitStore {
 public:
  /// Artifact format version; part of every artifact's envelope (but not of
  /// the key: a format bump makes old artifacts collectable, not aliased).
  static constexpr std::string_view kFormat = "zolcsim-unit-v1";

  /// The directory is created lazily on first save(); a missing directory
  /// loads as all-misses.
  explicit UnitStore(std::string dir) : dir_(std::move(dir)) {}

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Compatibility tag baked into the key and the envelope: artifacts are
  /// shared only between identical simulator builds (compiler + format
  /// version), the conservative validity condition for compiled output.
  [[nodiscard]] static std::string toolchain_tag();

  /// Content key of `spec` under the current toolchain tag.
  [[nodiscard]] static std::uint64_t key_of(const CompileSpec& spec);

  /// Loads the artifact for `spec`. A missing artifact is a miss, not an
  /// error: ok(nullptr). Typed failures: kStoreStale (foreign toolchain
  /// tag), kStoreCorrupt (unparsable / wrong shape / key or digest
  /// mismatch), kUnknownKernel (kernel no longer registered), kIo.
  [[nodiscard]] Result<std::shared_ptr<const CompiledUnit>> load(
      const CompileSpec& spec);

  /// Serializes `unit` under its spec's key (atomic replace). kIo on
  /// filesystem failure.
  [[nodiscard]] Result<void> save(const CompiledUnit& unit);

  /// Session counters (since construction). Thread-safe, like load/save.
  struct Stats {
    std::size_t hits = 0;      ///< load() returned a unit
    std::size_t misses = 0;    ///< load() found no artifact
    std::size_t rejects = 0;   ///< load() failed typed validation
    std::size_t saves = 0;     ///< successful save() calls
  };
  [[nodiscard]] Stats stats() const;

  /// One artifact as seen by stat()/gc(), classified with the same full
  /// validation load() applies (envelope, spec/filename key, payload
  /// digest), so `store stat` reports exactly what load() would do.
  struct ArtifactInfo {
    std::string file;  ///< filename within dir()
    std::uint64_t bytes = 0;
    enum class State : std::uint8_t {
      kCurrent,  ///< load() would return this unit
      kStale,    ///< foreign toolchain tag or unregistered kernel
      kCorrupt,  ///< unparsable, wrong shape, or failed integrity check
    } state = State::kCorrupt;
  };

  /// Scans the store directory (unit-*.json). A missing directory is an
  /// empty store; kIo only for real filesystem failures.
  [[nodiscard]] Result<std::vector<ArtifactInfo>> scan_artifacts() const;

  struct GcOutcome {
    std::size_t removed = 0;
    std::uint64_t bytes_freed = 0;
    std::size_t kept = 0;
  };
  /// Deletes stale and corrupt artifacts, keeps current ones.
  [[nodiscard]] Result<GcOutcome> gc();

 private:
  [[nodiscard]] std::string path_for(const CompileSpec& spec) const;
  /// Full-load classification of one parsed artifact for scan_artifacts().
  [[nodiscard]] static ArtifactInfo::State classify_artifact(
      const json::Value& root, const std::string& filename);

  std::string dir_;
  mutable std::mutex mutex_;  ///< guards stats_ only; files are per-key
  Stats stats_;
};

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_UNIT_STORE_HPP
