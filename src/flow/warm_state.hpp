// WarmState: the process-wide warm half of "zolcsim as a service" -- one
// CompileCache optionally fronted by an on-disk UnitStore, bundled so the
// store outlives the cache that points at it. Both long-running fronts (the
// CLI across subcommand invocations within a process, and the serve daemon
// across client requests) hold exactly one of these; every request after
// the first then resolves units from memory (cache hits), then disk (store
// hits), and compiles only what neither has seen.
#ifndef ZOLCSIM_FLOW_WARM_STATE_HPP
#define ZOLCSIM_FLOW_WARM_STATE_HPP

#include <optional>
#include <string>

#include "flow/cache.hpp"
#include "flow/unit_store.hpp"

namespace zolcsim::flow {

class WarmState {
 public:
  /// An empty `store_dir` runs memory-only; otherwise the cache's misses
  /// are served from (and fresh compiles written back to) the store.
  explicit WarmState(const std::string& store_dir = "");

  [[nodiscard]] CompileCache& cache() noexcept { return cache_; }
  [[nodiscard]] const CompileCache& cache() const noexcept { return cache_; }
  /// nullptr when running memory-only.
  [[nodiscard]] UnitStore* store() noexcept {
    return store_ ? &*store_ : nullptr;
  }

 private:
  // Declaration order is the lifetime contract: the store must be
  // constructed before -- and destroyed after -- the cache attached to it.
  std::optional<UnitStore> store_;
  CompileCache cache_;
};

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_WARM_STATE_HPP
