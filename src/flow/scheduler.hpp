// TenantScheduler: time-slices N workloads of one compiled unit over a
// single simulated ZOLC controller, swapping the full accelerator context
// (zolc::ZolcContext) at every quantum boundary. Each tenant keeps its own
// CPU state and memory image -- only the loop controller is the shared,
// contended fabric, matching the runtime-reconfigurable-accelerator model
// the multi-tenant sweep axis quantifies. The modeled context-switch cost
// (init-bus words moved, DESIGN.md section 9) is reported alongside the
// summed execution cycles, never folded into them, so tenant cells stay
// comparable with single-tenant cells.
#ifndef ZOLCSIM_FLOW_SCHEDULER_HPP
#define ZOLCSIM_FLOW_SCHEDULER_HPP

#include <cstdint>

#include "flow/run.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::flow {

/// Scheduling quantum (instructions per tenant slice) when the plan leaves
/// preempt_every at 0.
inline constexpr std::uint64_t kDefaultQuantum = 4096;

/// One preemption event on `controller`: saves the full context, optionally
/// round-trips it through the JSON codec, clobbers the controller with
/// reset(), and restores the saved context. Returns the modeled switch cost
/// in cycles. Throws cpu::SimError when the codec or restore fails (always
/// a bug: the context came from this controller).
std::uint64_t preempt_cycle(zolc::ZolcController& controller, bool serialize);

/// Runs `plan.tenants` identical workloads of `unit` round-robin over one
/// controller, one quantum (plan.preempt_every, default kDefaultQuantum)
/// at a time. Every tenant is verified against the kernel's golden
/// reference; the result reports summed statistics plus the context-switch
/// count and cost. Requires the ISS engine (kBadConfig otherwise);
/// max_cycles bounds each tenant's instruction count like a single run.
[[nodiscard]] Result<harness::ExperimentResult> run_tenants(
    const CompiledUnit& unit, const RunPlan& plan);

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_SCHEDULER_HPP
