#include "flow/workload.hpp"

namespace zolcsim::flow {

Workload Workload::prepare(const CompiledUnit& unit) {
  Workload workload(unit);
  unit.program().load_into(workload.memory_);
  unit.kernel().setup(unit.env(), workload.memory_);
  return workload;
}

Workload Workload::prepare_warm(const CompiledUnit& unit) {
  Workload workload(unit);
  workload.memory_.set_baseline(unit.prepared_image());
  return workload;
}

void Workload::reset() {
  if (memory_.has_baseline()) {
    memory_.reset_to_baseline();
  } else {
    memory_ = mem::Memory();
    unit_->program().load_into(memory_);
    unit_->kernel().setup(unit_->env(), memory_);
  }
  memory_.reset_stats();
}

Result<void> Workload::verify() const {
  auto checked = unit_->kernel().verify(unit_->env(), memory_);
  if (checked.ok()) return checked;
  Error error = std::move(checked).error();
  if (error.code == ErrorCode::kUnknown) {
    error.code = ErrorCode::kVerifyMismatch;
  }
  return std::move(error).with_context(
      unit_label(unit_->kernel().name(), unit_->machine()) + ": verification");
}

}  // namespace zolcsim::flow
