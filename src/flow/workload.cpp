#include "flow/workload.hpp"

namespace zolcsim::flow {

Workload Workload::prepare(const CompiledUnit& unit) {
  Workload workload(unit.kernel(), unit.spec());
  unit.program().load_into(workload.memory_);
  unit.kernel().setup(unit.env(), workload.memory_);
  return workload;
}

Result<void> Workload::verify() const {
  auto checked = kernel_->verify(spec_->env, memory_);
  if (checked.ok()) return checked;
  Error error = std::move(checked).error();
  if (error.code == ErrorCode::kUnknown) {
    error.code = ErrorCode::kVerifyMismatch;
  }
  return std::move(error).with_context(
      unit_label(kernel_->name(), spec_->machine) + ": verification");
}

}  // namespace zolcsim::flow
