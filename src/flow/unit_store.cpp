#include "flow/unit_store.hpp"

#include <unistd.h>

#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "isa/encoding.hpp"

namespace zolcsim::flow {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] Error io_error(const std::string& what, const fs::path& path) {
  return Error{ErrorCode::kIo, what + ": " + path.string()};
}

[[nodiscard]] Error corrupt(std::string what) {
  return Error{ErrorCode::kStoreCorrupt, std::move(what)};
}

[[nodiscard]] std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

[[nodiscard]] std::optional<codegen::MachineKind> parse_machine_kind(
    std::string_view name) {
  for (const codegen::MachineKind kind : codegen::kAllMachines) {
    if (codegen::machine_name(kind) == name) return kind;
  }
  return std::nullopt;
}

/// Number member as a signed integral (json::Value::as_uint rejects
/// negatives, which MicroPlan bounds and steps can be).
[[nodiscard]] std::optional<std::int64_t> as_int(const json::Value& v) {
  if (!v.is_number()) return std::nullopt;
  const double d = v.as_number();
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) return std::nullopt;
  return i;
}

/// String member holding a hex32 ("0x%08X") value.
[[nodiscard]] std::optional<std::uint32_t> as_hex32(const json::Value* v) {
  if (v == nullptr || !v->is_string()) return std::nullopt;
  const auto parsed = parse_int(v->as_string());
  if (!parsed || *parsed < 0 || *parsed > 0xFFFF'FFFFll) return std::nullopt;
  return static_cast<std::uint32_t>(*parsed);
}

[[nodiscard]] std::optional<std::uint64_t> as_u64(const json::Value* v) {
  return v == nullptr ? std::nullopt : v->as_uint();
}

/// The envelope's numeric geometry object (label strings are display-only).
[[nodiscard]] std::string geometry_json(const zolc::ZolcGeometry& g) {
  return "{\"tasks\": " + std::to_string(g.max_tasks) +
         ", \"loops\": " + std::to_string(g.max_loops) +
         ", \"exits\": " + std::to_string(g.max_exits_per_loop) +
         ", \"entries\": " + std::to_string(g.max_entries_per_loop) +
         ", \"pc_ofs_bits\": " + std::to_string(g.pc_ofs_bits) + "}";
}

[[nodiscard]] std::string env_json(const kernels::KernelEnv& env) {
  return "{\"code_base\": \"" + hex32(env.code_base) + "\", \"in_base\": \"" +
         hex32(env.in_base) + "\", \"in2_base\": \"" + hex32(env.in2_base) +
         "\", \"out_base\": \"" + hex32(env.out_base) +
         "\", \"aux_base\": \"" + hex32(env.aux_base) +
         "\", \"scale\": " + std::to_string(env.scale) + ", \"seed\": \"" +
         hex32(env.seed) + "\"}";
}

/// Rebuilds the CompileSpec from the envelope's "spec" object.
[[nodiscard]] std::optional<CompileSpec> parse_spec(const json::Value& spec) {
  const json::Value* kernel = spec.find("kernel");
  const json::Value* machine = spec.find("machine");
  const json::Value* geometry = spec.find("geometry");
  const json::Value* env = spec.find("env");
  if (kernel == nullptr || !kernel->is_string() || machine == nullptr ||
      !machine->is_string() || geometry == nullptr || env == nullptr) {
    return std::nullopt;
  }
  CompileSpec out;
  out.kernel = kernel->as_string();
  const auto kind = parse_machine_kind(machine->as_string());
  if (!kind) return std::nullopt;
  out.machine = *kind;

  const auto tasks = as_u64(geometry->find("tasks"));
  const auto loops = as_u64(geometry->find("loops"));
  const auto exits = as_u64(geometry->find("exits"));
  const auto entries = as_u64(geometry->find("entries"));
  const auto pc_bits = as_u64(geometry->find("pc_ofs_bits"));
  if (!tasks || !loops || !exits || !entries || !pc_bits) return std::nullopt;
  out.geometry.max_tasks = static_cast<unsigned>(*tasks);
  out.geometry.max_loops = static_cast<unsigned>(*loops);
  out.geometry.max_exits_per_loop = static_cast<unsigned>(*exits);
  out.geometry.max_entries_per_loop = static_cast<unsigned>(*entries);
  out.geometry.pc_ofs_bits = static_cast<unsigned>(*pc_bits);

  const auto code_base = as_hex32(env->find("code_base"));
  const auto in_base = as_hex32(env->find("in_base"));
  const auto in2_base = as_hex32(env->find("in2_base"));
  const auto out_base = as_hex32(env->find("out_base"));
  const auto aux_base = as_hex32(env->find("aux_base"));
  const auto scale = as_u64(env->find("scale"));
  const auto seed = as_hex32(env->find("seed"));
  if (!code_base || !in_base || !in2_base || !out_base || !aux_base ||
      !scale || !seed) {
    return std::nullopt;
  }
  out.env.code_base = *code_base;
  out.env.in_base = *in_base;
  out.env.in2_base = *in2_base;
  out.env.out_base = *out_base;
  out.env.aux_base = *aux_base;
  out.env.scale = static_cast<unsigned>(*scale);
  out.env.seed = *seed;
  return out;
}

/// Rebuilds the Program and ScanReport from the payload ("unit") object,
/// the inverse of CompiledUnit::to_json(). Returns nullopt on any shape
/// violation; numeric garbage that survives shape checks is caught by the
/// caller's payload-digest comparison.
struct ReloadedParts {
  codegen::Program program;
  cfg::ScanReport scan;
};

[[nodiscard]] std::optional<ReloadedParts> parse_unit_payload(
    const json::Value& unit, codegen::MachineKind machine) {
  const json::Value* program = unit.find("program");
  const json::Value* scan = unit.find("scan");
  if (program == nullptr || scan == nullptr) return std::nullopt;

  ReloadedParts out;
  out.program.machine = machine;
  const auto base = as_hex32(program->find("base"));
  const auto init = as_u64(program->find("init_instructions"));
  const auto hw = as_u64(program->find("hw_loops"));
  const auto sw = as_u64(program->find("sw_loops"));
  const json::Value* notes = program->find("notes");
  const json::Value* words = program->find("words");
  if (!base || !init || !hw || !sw || notes == nullptr ||
      !notes->is_array() || words == nullptr || !words->is_array()) {
    return std::nullopt;
  }
  out.program.base = *base;
  out.program.init_instructions = static_cast<unsigned>(*init);
  out.program.hw_loop_count = static_cast<unsigned>(*hw);
  out.program.sw_loop_count = static_cast<unsigned>(*sw);
  for (const json::Value& note : notes->items()) {
    if (!note.is_string()) return std::nullopt;
    out.program.notes.push_back(note.as_string());
  }
  out.program.code.reserve(words->items().size());
  for (const json::Value& word : words->items()) {
    if (!word.is_string()) return std::nullopt;
    const auto parsed = parse_int(word.as_string());
    if (!parsed || *parsed < 0 || *parsed > 0xFFFF'FFFFll) return std::nullopt;
    out.program.code.push_back(
        isa::decode(static_cast<std::uint32_t>(*parsed)));
  }

  const json::Value* candidates = scan->find("candidates");
  const json::Value* rejected = scan->find("rejected");
  if (candidates == nullptr || !candidates->is_array() || rejected == nullptr ||
      !rejected->is_array()) {
    return std::nullopt;
  }
  for (const json::Value& c : candidates->items()) {
    cfg::MicroPlan plan;
    const auto depth = as_u64(c.find("depth"));
    const auto start_pc = as_hex32(c.find("start_pc"));
    const auto end_pc = as_hex32(c.find("end_pc"));
    const auto index_reg = as_u64(c.find("index_reg"));
    const json::Value* initial = c.find("initial");
    const json::Value* final_v = c.find("final");
    const json::Value* step = c.find("step");
    const auto cond = as_u64(c.find("cond"));
    const auto update_index = as_u64(c.find("update_index"));
    const auto branch_index = as_u64(c.find("branch_index"));
    if (!depth || !start_pc || !end_pc || !index_reg || initial == nullptr ||
        final_v == nullptr || step == nullptr || !cond || *cond > 3 ||
        !update_index || !branch_index) {
      return std::nullopt;
    }
    const auto initial_i = as_int(*initial);
    const auto final_i = as_int(*final_v);
    const auto step_i = as_int(*step);
    if (!initial_i || !final_i || !step_i) return std::nullopt;
    plan.depth = static_cast<unsigned>(*depth);
    plan.start_pc = *start_pc;
    plan.end_pc = *end_pc;
    plan.index_reg = static_cast<std::uint8_t>(*index_reg);
    plan.initial = static_cast<std::int32_t>(*initial_i);
    plan.final = static_cast<std::int32_t>(*final_i);
    plan.step = static_cast<std::int32_t>(*step_i);
    plan.cond = static_cast<zolc::LoopCond>(*cond);
    plan.update_index = static_cast<unsigned>(*update_index);
    plan.branch_index = static_cast<unsigned>(*branch_index);
    out.scan.candidates.push_back(plan);
  }
  for (const json::Value& r : rejected->items()) {
    const json::Value* code = r.find("code");
    const json::Value* message = r.find("message");
    if (code == nullptr || !code->is_string() || message == nullptr ||
        !message->is_string()) {
      return std::nullopt;
    }
    out.scan.rejected.emplace_back(parse_error_code(code->as_string()),
                                   message->as_string());
  }
  return out;
}

}  // namespace

std::string UnitStore::toolchain_tag() {
  return std::string(kFormat) + "|" + compiler_id();
}

std::uint64_t UnitStore::key_of(const CompileSpec& spec) {
  return fnv1a64(spec.key() + "\n" + toolchain_tag());
}

std::string UnitStore::path_for(const CompileSpec& spec) const {
  return dir_ + "/unit-" + hex64(key_of(spec)) + ".json";
}

Result<std::shared_ptr<const CompiledUnit>> UnitStore::load(
    const CompileSpec& spec) {
  const fs::path path = path_for(spec);
  const auto frame = [&] { return "unit artifact " + path.string(); };
  const auto reject = [&](Error error) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.rejects;
    }
    return std::move(error).with_context(frame());
  };

  std::error_code ec;
  if (!fs::exists(path, ec) || ec) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return std::shared_ptr<const CompiledUnit>{};
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return io_error("cannot read", path).with_context(frame());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto parsed = json::parse(text);
  if (!parsed.ok()) {
    return reject(corrupt("not valid JSON: " +
                          std::move(parsed).error().message));
  }
  const json::Value& root = parsed.value();
  const json::Value* format = root.find("format");
  const json::Value* tag = root.find("tag");
  const json::Value* spec_v = root.find("spec");
  const json::Value* digest = root.find("payload_fnv1a64");
  const json::Value* unit_v = root.find("unit");
  if (format == nullptr || !format->is_string() || tag == nullptr ||
      !tag->is_string() || spec_v == nullptr || digest == nullptr ||
      !digest->is_string() || unit_v == nullptr) {
    return reject(corrupt("envelope members missing or mistyped"));
  }
  if (format->as_string() != kFormat) {
    return reject(corrupt("unknown format '" + format->as_string() + "'"));
  }
  if (tag->as_string() != toolchain_tag()) {
    return reject(Error{ErrorCode::kStoreStale,
                        "artifact tag '" + tag->as_string() +
                            "' does not match this build's '" +
                            toolchain_tag() + "'"});
  }
  const auto stored_spec = parse_spec(*spec_v);
  if (!stored_spec) return reject(corrupt("malformed spec"));
  if (stored_spec->key() != spec.key()) {
    return reject(corrupt("spec key mismatch (hash collision or tampering): "
                          "artifact holds '" +
                          stored_spec->key() + "'"));
  }
  const auto stored_digest = parse_hex64(digest->as_string());
  if (!stored_digest) return reject(corrupt("malformed payload digest"));

  const kernels::Kernel* kernel = kernels::find_kernel(stored_spec->kernel);
  if (kernel == nullptr) {
    return reject(Error{ErrorCode::kUnknownKernel,
                        "kernel '" + stored_spec->kernel +
                            "' is not registered in this build"});
  }

  // Reconstruct, then prove fidelity end-to-end: re-emitting through the
  // canonical codec must reproduce the exact bytes that were hashed at
  // save time. decode/encode of hostile words can trip contract checks;
  // that is corruption too, not a crash.
  try {
    auto parts = parse_unit_payload(*unit_v, stored_spec->machine);
    if (!parts) return reject(corrupt("malformed unit payload"));
    CompiledUnit unit(*kernel, *stored_spec, std::move(parts->program),
                      std::move(parts->scan));
    if (fnv1a64(unit.to_json()) != *stored_digest) {
      return reject(corrupt("payload digest mismatch"));
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.hits;
    }
    return std::make_shared<const CompiledUnit>(std::move(unit));
  } catch (const std::exception& e) {
    return reject(corrupt(std::string("payload rejected: ") + e.what()));
  }
}

Result<void> UnitStore::save(const CompiledUnit& unit) {
  const fs::path path = path_for(unit.spec());
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return io_error("cannot create store directory", dir_);

  const std::string payload = unit.to_json();
  std::string out = "{\n";
  out += "  \"format\": \"" + std::string(kFormat) + "\",\n";
  out += "  \"tag\": \"" + json::escape(toolchain_tag()) + "\",\n";
  out += "  \"spec\": {\n";
  out += "    \"kernel\": \"" + json::escape(unit.spec().kernel) + "\",\n";
  out += "    \"machine\": \"";
  out += codegen::machine_name(unit.spec().machine);
  out += "\",\n";
  out += "    \"geometry\": " + geometry_json(unit.spec().geometry) + ",\n";
  out += "    \"env\": " + env_json(unit.spec().env) + "\n";
  out += "  },\n";
  out += "  \"payload_fnv1a64\": \"" + hex64(fnv1a64(payload)) + "\",\n";
  out += "  \"unit\": ";
  out += payload;
  while (!out.empty() && out.back() == '\n') out.pop_back();
  out += "\n}\n";

  // Atomic publish: a concurrent load() sees the old artifact or the new
  // one, never a torn write. The temp name is per-process so two processes
  // saving the same unit cannot interleave into one torn temp file.
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return io_error("cannot write", tmp);
    file << out;
    if (!file.flush()) return io_error("write failed", tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return io_error("cannot publish", path);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.saves;
  return {};
}

UnitStore::Stats UnitStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

UnitStore::ArtifactInfo::State UnitStore::classify_artifact(
    const json::Value& root, const std::string& filename) {
  using State = ArtifactInfo::State;
  const json::Value* format = root.find("format");
  const json::Value* tag = root.find("tag");
  const json::Value* spec_v = root.find("spec");
  const json::Value* digest = root.find("payload_fnv1a64");
  const json::Value* unit_v = root.find("unit");
  if (format == nullptr || !format->is_string() || tag == nullptr ||
      !tag->is_string() || spec_v == nullptr || digest == nullptr ||
      !digest->is_string() || unit_v == nullptr) {
    return State::kCorrupt;
  }
  if (format->as_string() != kFormat) return State::kCorrupt;
  if (tag->as_string() != toolchain_tag()) return State::kStale;
  const auto spec = parse_spec(*spec_v);
  if (!spec) return State::kCorrupt;
  if (filename != "unit-" + hex64(key_of(*spec)) + ".json") {
    return State::kCorrupt;  // artifact filed under a key it does not own
  }
  const auto stored_digest = parse_hex64(digest->as_string());
  if (!stored_digest) return State::kCorrupt;
  const kernels::Kernel* kernel = kernels::find_kernel(spec->kernel);
  // An unregistered kernel is unusable by this build but not damaged.
  if (kernel == nullptr) return State::kStale;
  try {
    auto parts = parse_unit_payload(*unit_v, spec->machine);
    if (!parts) return State::kCorrupt;
    const CompiledUnit unit(*kernel, *spec, std::move(parts->program),
                            std::move(parts->scan));
    if (fnv1a64(unit.to_json()) != *stored_digest) return State::kCorrupt;
  } catch (const std::exception&) {
    return State::kCorrupt;
  }
  return State::kCurrent;
}

Result<std::vector<UnitStore::ArtifactInfo>> UnitStore::scan_artifacts()
    const {
  std::vector<ArtifactInfo> out;
  std::error_code ec;
  if (!fs::exists(dir_, ec) || ec) return out;
  fs::directory_iterator it(dir_, ec);
  if (ec) return io_error("cannot scan store directory", dir_);
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    if (!starts_with(name, "unit-") || !name.ends_with(".json")) continue;
    ArtifactInfo info;
    info.file = name;
    info.bytes = entry.file_size(ec);
    if (ec) info.bytes = 0;

    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = json::parse(buffer.str());
    if (in && parsed.ok()) {
      info.state = classify_artifact(parsed.value(), name);
    }
    out.push_back(std::move(info));
  }
  return out;
}

Result<UnitStore::GcOutcome> UnitStore::gc() {
  auto scanned = scan_artifacts();
  if (!scanned.ok()) return std::move(scanned).error();
  GcOutcome outcome;
  for (const ArtifactInfo& info : scanned.value()) {
    if (info.state == ArtifactInfo::State::kCurrent) {
      ++outcome.kept;
      continue;
    }
    std::error_code ec;
    fs::remove(fs::path(dir_) / info.file, ec);
    if (ec) return io_error("cannot remove", fs::path(dir_) / info.file);
    ++outcome.removed;
    outcome.bytes_freed += info.bytes;
  }
  return outcome;
}

}  // namespace zolcsim::flow
