// Workload: the runtime-stage memory image for one CompiledUnit.
//
// prepare() loads the program image and the kernel's deterministic input
// data into a fresh simulator memory; prepare_warm() instead attaches the
// unit's cached immutable PreparedImage as a copy-on-write baseline, so the
// per-run cost is O(1) to create and O(dirty pages) to reset() between
// repetitions -- no Kernel::setup re-run. Both produce bit-identical
// effective memory. verify() closes the loop by checking the outputs
// against the kernel's golden C++ reference. A Workload is consumed by one
// run (the run mutates its memory); warm workloads can be reset() and
// reused, cold ones are prepared fresh per run.
#ifndef ZOLCSIM_FLOW_WORKLOAD_HPP
#define ZOLCSIM_FLOW_WORKLOAD_HPP

#include <memory>

#include "common/result.hpp"
#include "flow/compiled_unit.hpp"
#include "mem/memory.hpp"

namespace zolcsim::flow {

class Workload {
 public:
  /// Builds the initial memory image from scratch: program words at
  /// env.code_base plus the kernel's input/constant tables (Kernel::setup).
  [[nodiscard]] static Workload prepare(const CompiledUnit& unit);

  /// Warm-start variant: a copy-on-write view over the unit's shared
  /// prepared_image(). Reads the same bytes as prepare() but allocates no
  /// pages up front; the image is built at most once per unit.
  [[nodiscard]] static Workload prepare_warm(const CompiledUnit& unit);

  [[nodiscard]] mem::Memory& memory() noexcept { return memory_; }
  [[nodiscard]] const mem::Memory& memory() const noexcept { return memory_; }

  /// Restores the pristine prepared image so the workload can host another
  /// run: O(dirty pages) for warm workloads, a full rebuild for cold ones.
  /// Also clears the memory access statistics.
  void reset();

  /// True when this workload reads through a shared baseline image.
  [[nodiscard]] bool warm() const noexcept {
    return memory_.has_baseline();
  }

  /// Golden-reference output check (Kernel::verify). Fails with
  /// ErrorCode::kVerifyMismatch and a "kernel (machine)" context frame.
  [[nodiscard]] Result<void> verify() const;

 private:
  explicit Workload(const CompiledUnit& unit) : unit_(&unit) {}

  const CompiledUnit* unit_;  ///< non-owning (unit outlives workload)
  mem::Memory memory_;
};

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_WORKLOAD_HPP
