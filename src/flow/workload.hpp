// Workload: the runtime-stage memory image for one CompiledUnit.
//
// prepare() loads the program image and the kernel's deterministic input
// data into a fresh simulator memory; verify() closes the loop by checking
// the outputs against the kernel's golden C++ reference. A Workload is
// cheap relative to a compile and is consumed by one run (the run mutates
// its memory), so callers that sweep a unit across pipeline configs prepare
// one Workload per run while sharing the CompiledUnit.
#ifndef ZOLCSIM_FLOW_WORKLOAD_HPP
#define ZOLCSIM_FLOW_WORKLOAD_HPP

#include "common/result.hpp"
#include "flow/compiled_unit.hpp"
#include "mem/memory.hpp"

namespace zolcsim::flow {

class Workload {
 public:
  /// Builds the initial memory image: program words at env.code_base plus
  /// the kernel's input/constant tables (Kernel::setup).
  [[nodiscard]] static Workload prepare(const CompiledUnit& unit);

  [[nodiscard]] mem::Memory& memory() noexcept { return memory_; }
  [[nodiscard]] const mem::Memory& memory() const noexcept { return memory_; }

  /// Golden-reference output check (Kernel::verify). Fails with
  /// ErrorCode::kVerifyMismatch and a "kernel (machine)" context frame.
  [[nodiscard]] Result<void> verify() const;

 private:
  Workload(const kernels::Kernel& kernel, const CompileSpec& spec)
      : kernel_(&kernel), spec_(&spec) {}

  const kernels::Kernel* kernel_;  ///< non-owning (unit outlives workload)
  const CompileSpec* spec_;        ///< non-owning view of the unit's spec
  mem::Memory memory_;
};

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_WORKLOAD_HPP
