#include "flow/scheduler.hpp"

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cpu/iss.hpp"

namespace zolcsim::flow {

namespace {

/// Round-trips `context` through the JSON codec, throwing on any rejection:
/// a context saved from a live controller must always serialize cleanly.
zolc::ZolcContext serialized_copy(const zolc::ZolcContext& context) {
  auto parsed = zolc::ZolcContext::from_json(context.to_json());
  if (!parsed.ok()) {
    throw cpu::SimError("context serialization round-trip failed: " +
                        parsed.error().to_string());
  }
  return std::move(parsed).value();
}

void restore_or_throw(zolc::ZolcController& controller,
                      const zolc::ZolcContext& context) {
  if (auto restored = controller.restore_context(context); !restored.ok()) {
    throw cpu::SimError("context restore failed: " +
                        restored.error().to_string());
  }
}

void accumulate(zolc::ZolcStats& total, const zolc::ZolcStats& part) {
  total.continue_events += part.continue_events;
  total.done_events += part.done_events;
  total.cascade_chains += part.cascade_chains;
  total.max_cascade_depth =
      std::max(total.max_cascade_depth, part.max_cascade_depth);
  total.exit_matches += part.exit_matches;
  total.entry_matches += part.entry_matches;
  total.table_writes += part.table_writes;
}

void accumulate(cpu::FastPathStats& total, const cpu::FastPathStats& part) {
  total.attempts += part.attempts;
  total.engagements += part.engagements;
  total.replayed_backedges += part.replayed_backedges;
  total.replayed_instructions += part.replayed_instructions;
  for (std::size_t i = 0; i < part.bailouts.size(); ++i) {
    total.bailouts[i] += part.bailouts[i];
  }
}

}  // namespace

std::uint64_t preempt_cycle(zolc::ZolcController& controller, bool serialize) {
  zolc::ZolcContext context = controller.save_context();
  if (serialize) context = serialized_copy(context);
  controller.reset();  // clobber: restore must rebuild everything
  restore_or_throw(controller, context);
  return zolc::context_switch_cost(context).total_cycles();
}

Result<harness::ExperimentResult> run_tenants(const CompiledUnit& unit,
                                              const RunPlan& plan) {
  if (plan.tenants == 0) {
    return Error{ErrorCode::kBadConfig, "tenant count must be >= 1"};
  }
  if (plan.mode.engine != harness::SimEngine::kIss) {
    return Error{ErrorCode::kBadConfig,
                 "tenant scheduling requires the ISS engine"};
  }
  const codegen::Program& program = unit.program();
  const std::size_t n = plan.tenants;
  const std::uint64_t quantum =
      plan.preempt_every != 0 ? plan.preempt_every : kDefaultQuantum;

  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(unit.machine())) {
    controller =
        std::make_unique<zolc::ZolcController>(*variant, unit.geometry());
  }

  // Workloads are built first and never moved afterwards: each Iss holds a
  // reference to its workload's memory.
  std::vector<Workload> workloads;
  workloads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workloads.push_back(plan.warm_start ? Workload::prepare_warm(unit)
                                        : Workload::prepare(unit));
  }
  std::vector<std::unique_ptr<cpu::Iss>> cpus;
  cpus.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto iss = std::make_unique<cpu::Iss>(workloads[i].memory());
    iss->set_accelerator(controller.get());
    if (plan.predecode) iss->set_code_image(unit.image());
    iss->set_fast_path(plan.mode.fast_path);
    iss->set_pc(program.base);
    cpus.push_back(std::move(iss));
  }
  // Every tenant starts from the power-on context of the shared controller.
  std::vector<zolc::ZolcContext> contexts(
      n, controller ? controller->save_context() : zolc::ZolcContext{});

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t resident = kNone;  ///< tenant whose context is on the fabric
  std::vector<std::uint64_t> executed(n, 0);
  std::uint64_t switches = 0;
  std::uint64_t switch_cycles = 0;

  const auto started = std::chrono::steady_clock::now();
  try {
    bool any_ran = true;
    while (any_ran) {
      any_ran = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (cpus[i]->halted()) continue;
        any_ran = true;
        if (executed[i] >= plan.max_cycles) {
          throw cpu::SimError("tenant " + std::to_string(i) +
                              " exceeded the step limit (" +
                              std::to_string(plan.max_cycles) + ")");
        }
        if (controller && resident != i) {
          std::uint64_t cost = 0;
          if (resident != kNone) {
            contexts[resident] = controller->save_context();
            if (plan.preempt_serialize) {
              contexts[resident] = serialized_copy(contexts[resident]);
            }
            cost += zolc::context_switch_cost(contexts[resident]).save_words;
            ++switches;
          }
          controller->reset();
          restore_or_throw(*controller, contexts[i]);
          cost += zolc::context_switch_cost(contexts[i]).restore_words;
          switch_cycles += cost;
          resident = i;
        }
        executed[i] += cpus[i]->run_slice(
            std::min(quantum, plan.max_cycles - executed[i]));
      }
    }
    if (controller && resident != kNone) {
      contexts[resident] = controller->save_context();
    }
  } catch (const cpu::SimError& e) {
    return Error{ErrorCode::kSimulation, e.what()}.with_context(
        unit_label(unit.kernel().name(), unit.machine()) +
        ": tenant schedule failed");
  }
  const auto wall = std::chrono::steady_clock::now() - started;

  harness::ExperimentResult result;
  for (std::size_t i = 0; i < n; ++i) {
    if (auto verified = workloads[i].verify(); !verified.ok()) {
      return std::move(verified).error().with_context(
          "tenant " + std::to_string(i));
    }
    const cpu::IssStats& stats = cpus[i]->stats();
    result.stats.cycles += stats.instructions;  // ISS is 1-CPI
    result.stats.instructions += stats.instructions;
    result.stats.taken_control += stats.taken_control;
    result.stats.zolc_fetch_events += stats.zolc_fetch_events;
    result.stats.zolc_resolution_events += stats.zolc_resolution_events;
    accumulate(result.fastpath, cpus[i]->fastpath_stats());
    if (controller) accumulate(result.zolc_stats, contexts[i].stats);
  }

  result.kernel = std::string(unit.kernel().name());
  result.machine = unit.machine();
  result.geometry = unit.geometry();
  result.mode = plan.mode;
  result.init_instructions = program.init_instructions;
  result.hw_loops = program.hw_loop_count;
  result.sw_loops = program.sw_loop_count;
  result.code_words = program.size_words();
  result.notes = program.notes;
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
  result.full_prepares = plan.warm_start ? 0 : n;
  result.tenants = plan.tenants;
  result.context_switches = switches;
  result.context_switch_cycles = switch_cycles;
  return result;
}

}  // namespace zolcsim::flow
