#include "flow/compiled_unit.hpp"

#include <array>
#include <optional>
#include <utility>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"

namespace zolcsim::flow {

std::string unit_label(std::string_view kernel,
                       codegen::MachineKind machine) {
  return std::string(kernel) + " (" +
         std::string(codegen::machine_name(machine)) + ")";
}

std::string CompileSpec::key() const {
  // Every field that can change the compile output participates; the env's
  // memory map and sizing feed the KIR builder and data layout.
  std::string k = kernel;
  k += '|';
  k += codegen::machine_name(machine);
  k += '|';
  k += geometry.label();
  k += '|';
  k += hex32(env.code_base);
  k += ',';
  k += hex32(env.in_base);
  k += ',';
  k += hex32(env.in2_base);
  k += ',';
  k += hex32(env.out_base);
  k += ',';
  k += hex32(env.aux_base);
  k += ',';
  k += std::to_string(env.scale);
  k += ',';
  k += hex32(env.seed);
  return k;
}

Result<CompiledUnit> CompiledUnit::compile(const CompileSpec& spec) {
  const kernels::Kernel* kernel = kernels::find_kernel(spec.kernel);
  if (kernel == nullptr) {
    return Error{ErrorCode::kUnknownKernel,
                 "unknown kernel '" + spec.kernel + "'"};
  }
  return compile(*kernel, spec);
}

Result<CompiledUnit> CompiledUnit::compile(const kernels::Kernel& kernel,
                                           const CompileSpec& spec) {
  const auto frame = [&] { return unit_label(kernel.name(), spec.machine); };
  if (!spec.geometry.valid()) {
    return Error{ErrorCode::kBadConfig,
                 "invalid ZOLC geometry " + spec.geometry.label()}
        .with_context(frame());
  }

  auto lowered = codegen::lower(kernel.build(spec.env), spec.machine,
                                spec.env.code_base, spec.geometry);
  if (!lowered.ok()) {
    return std::move(lowered).error().with_context(frame() + ": lowering");
  }
  codegen::Program program = std::move(lowered).value();

  // Post-link analysis metadata rides with the unit: which counted loops a
  // binary-level scan would still recover from the lowered code.
  cfg::ScanReport scan = cfg::scan_for_micro_loops(
      program.code, program.base,
      cfg::ScanOptions::for_geometry(spec.geometry));

  CompileSpec stored = spec;
  stored.kernel = std::string(kernel.name());
  return CompiledUnit(kernel, std::move(stored), std::move(program),
                      std::move(scan));
}

namespace {

/// One recovered ZOLC table write: which table, which slot, what payload.
struct TableWrite {
  std::string_view op;
  std::uint8_t index = 0;
  std::uint32_t payload = 0;
};

/// Recovers the table image from the init prologue without re-simulating:
/// the lowering materializes every payload as a fixed lui/ori pair into the
/// scratch register, so tracking just those two opcodes reconstructs the
/// value each zolw.* writes.
std::vector<TableWrite> collect_table_writes(const codegen::Program& program) {
  std::vector<TableWrite> writes;
  std::array<std::optional<std::uint32_t>, 32> known{};
  for (const isa::Instruction& instr : program.code) {
    const isa::OpcodeInfo& info = isa::opcode_info(instr.op);
    if (instr.op == isa::Opcode::kLui) {
      known[instr.rt] = static_cast<std::uint32_t>(instr.imm) << 16;
    } else if (instr.op == isa::Opcode::kOri && instr.rs == instr.rt &&
               known[instr.rs]) {
      known[instr.rt] =
          *known[instr.rs] | (static_cast<std::uint32_t>(instr.imm) & 0xFFFFu);
    } else if (info.format == isa::Format::kZolcWrite &&
               starts_with(info.mnemonic, "zolw")) {
      if (known[instr.rs]) {
        writes.push_back(TableWrite{info.mnemonic, instr.zidx,
                                    *known[instr.rs]});
      }
    } else if (const auto dest = isa::dest_reg(instr)) {
      known[*dest] = std::nullopt;  // any other producer spoils the tracking
    }
  }
  return writes;
}

}  // namespace

std::shared_ptr<const mem::Memory> CompiledUnit::prepared_image() const {
  const std::lock_guard<std::mutex> lock(image_slot_->mutex);
  if (!image_slot_->image) {
    auto image = std::make_shared<mem::Memory>();
    program_.load_into(*image);
    kernel_->setup(spec_.env, *image);
    image->reset_stats();  // preparation writes are not run statistics
    image_slot_->image = std::move(image);
  }
  return image_slot_->image;
}

std::string CompiledUnit::disassembly() const {
  std::string out;
  std::uint32_t pc = program_.base;
  for (const isa::Instruction& instr : program_.code) {
    out += hex32(pc);
    out += "  ";
    out += isa::disassemble(instr, pc);
    out += '\n';
    pc += 4;
  }
  return out;
}

std::string CompiledUnit::to_json() const {
  std::string out = "{\n";
  out += "  \"kernel\": \"" + json::escape(spec_.kernel) + "\",\n";
  out += "  \"machine\": \"";
  out += codegen::machine_name(spec_.machine);
  out += "\",\n";
  out += "  \"geometry\": \"" + spec_.geometry.label() + "\",\n";
  out += "  \"program\": {\n";
  out += "    \"base\": \"" + hex32(program_.base) + "\",\n";
  out += "    \"init_instructions\": " +
         std::to_string(program_.init_instructions) + ",\n";
  out += "    \"hw_loops\": " + std::to_string(program_.hw_loop_count) +
         ",\n";
  out += "    \"sw_loops\": " + std::to_string(program_.sw_loop_count) +
         ",\n";
  out += "    \"notes\": [";
  for (std::size_t i = 0; i < program_.notes.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += json::escape(program_.notes[i]);
    out += '"';
  }
  out += "],\n";
  out += "    \"words\": [";
  for (std::size_t i = 0; i < program_.code.size(); ++i) {
    if (i != 0) out += ", ";
    if (i % 8 == 0) out += "\n      ";
    out += '"';
    out += hex32(isa::encode(program_.code[i]));
    out += '"';
  }
  out += "\n    ]\n  },\n";

  out += "  \"tables\": [";
  const std::vector<TableWrite> writes = collect_table_writes(program_);
  for (std::size_t i = 0; i < writes.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n    {\"op\": \"";
    out += writes[i].op;
    out += "\", \"index\": " + std::to_string(writes[i].index) +
           ", \"payload\": \"" + hex32(writes[i].payload) + "\"}";
  }
  out += writes.empty() ? "],\n" : "\n  ],\n";

  out += "  \"scan\": {\n    \"candidates\": [";
  for (std::size_t i = 0; i < scan_.candidates.size(); ++i) {
    const cfg::MicroPlan& plan = scan_.candidates[i];
    if (i != 0) out += ",";
    out += "\n      {\"depth\": " + std::to_string(plan.depth) +
           ", \"start_pc\": \"" + hex32(plan.start_pc) +
           "\", \"end_pc\": \"" + hex32(plan.end_pc) +
           "\", \"index_reg\": " + std::to_string(plan.index_reg) +
           ", \"initial\": " + std::to_string(plan.initial) +
           ", \"final\": " + std::to_string(plan.final) +
           ", \"step\": " + std::to_string(plan.step) +
           ", \"cond\": " +
           std::to_string(static_cast<unsigned>(plan.cond)) +
           ", \"update_index\": " + std::to_string(plan.update_index) +
           ", \"branch_index\": " + std::to_string(plan.branch_index) + "}";
  }
  out += scan_.candidates.empty() ? "],\n" : "\n    ],\n";
  out += "    \"rejected\": [";
  for (std::size_t i = 0; i < scan_.rejected.size(); ++i) {
    const Error& reason = scan_.rejected[i];
    if (i != 0) out += ",";
    out += "\n      {\"code\": \"";
    out += error_code_name(reason.code);
    out += "\", \"message\": \"" + json::escape(reason.message) + "\"}";
  }
  out += scan_.rejected.empty() ? "]\n  }\n" : "\n    ]\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace zolcsim::flow
