#include "flow/compiled_unit.hpp"

#include <utility>

#include "common/strings.hpp"
#include "isa/disasm.hpp"

namespace zolcsim::flow {

std::string unit_label(std::string_view kernel,
                       codegen::MachineKind machine) {
  return std::string(kernel) + " (" +
         std::string(codegen::machine_name(machine)) + ")";
}

std::string CompileSpec::key() const {
  // Every field that can change the compile output participates; the env's
  // memory map and sizing feed the KIR builder and data layout.
  std::string k = kernel;
  k += '|';
  k += codegen::machine_name(machine);
  k += '|';
  k += geometry.label();
  k += '|';
  k += hex32(env.code_base);
  k += ',';
  k += hex32(env.in_base);
  k += ',';
  k += hex32(env.in2_base);
  k += ',';
  k += hex32(env.out_base);
  k += ',';
  k += hex32(env.aux_base);
  k += ',';
  k += std::to_string(env.scale);
  k += ',';
  k += hex32(env.seed);
  return k;
}

Result<CompiledUnit> CompiledUnit::compile(const CompileSpec& spec) {
  const kernels::Kernel* kernel = kernels::find_kernel(spec.kernel);
  if (kernel == nullptr) {
    return Error{ErrorCode::kUnknownKernel,
                 "unknown kernel '" + spec.kernel + "'"};
  }
  return compile(*kernel, spec);
}

Result<CompiledUnit> CompiledUnit::compile(const kernels::Kernel& kernel,
                                           const CompileSpec& spec) {
  const auto frame = [&] { return unit_label(kernel.name(), spec.machine); };
  if (!spec.geometry.valid()) {
    return Error{ErrorCode::kBadConfig,
                 "invalid ZOLC geometry " + spec.geometry.label()}
        .with_context(frame());
  }

  auto lowered = codegen::lower(kernel.build(spec.env), spec.machine,
                                spec.env.code_base, spec.geometry);
  if (!lowered.ok()) {
    return std::move(lowered).error().with_context(frame() + ": lowering");
  }
  codegen::Program program = std::move(lowered).value();

  // Post-link analysis metadata rides with the unit: which counted loops a
  // binary-level scan would still recover from the lowered code.
  cfg::ScanReport scan = cfg::scan_for_micro_loops(
      program.code, program.base,
      cfg::ScanOptions::for_geometry(spec.geometry));

  CompileSpec stored = spec;
  stored.kernel = std::string(kernel.name());
  return CompiledUnit(kernel, std::move(stored), std::move(program),
                      std::move(scan));
}

std::string CompiledUnit::disassembly() const {
  std::string out;
  std::uint32_t pc = program_.base;
  for (const isa::Instruction& instr : program_.code) {
    out += hex32(pc);
    out += "  ";
    out += isa::disassemble(instr, pc);
    out += '\n';
    pc += 4;
  }
  return out;
}

}  // namespace zolcsim::flow
