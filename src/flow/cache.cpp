#include "flow/cache.hpp"

#include <utility>

namespace zolcsim::flow {

Result<std::shared_ptr<const CompiledUnit>> CompileCache::get_or_compile(
    const CompileSpec& spec) {
  const std::string key = spec.key();
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = units_.find(key); it != units_.end()) {
    ++stats_.hits;
    return it->second;
  }
  // Compiling under the lock serializes compiles, but a compile is cheap
  // next to the simulations that consume it, and this guarantees the
  // exactly-once property the miss counter advertises.
  auto compiled = CompiledUnit::compile(spec);
  if (!compiled.ok()) return std::move(compiled).error();
  ++stats_.misses;
  auto unit =
      std::make_shared<const CompiledUnit>(std::move(compiled).value());
  units_.emplace(key, unit);
  return unit;
}

CompileCache::Stats CompileCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CompileCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return units_.size();
}

void CompileCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  units_.clear();
  stats_ = {};
}

}  // namespace zolcsim::flow
