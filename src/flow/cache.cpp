#include "flow/cache.hpp"

#include <utility>

#include "common/strings.hpp"

namespace zolcsim::flow {

CompileCache::Shard& CompileCache::shard_for(const std::string& key) noexcept {
  return shards_[fnv1a64(key) % kShardCount];
}

Result<std::shared_ptr<const CompiledUnit>> CompileCache::get_or_compile(
    const CompileSpec& spec) {
  const std::string key = spec.key();
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.units.find(key); it != shard.units.end()) {
    ++shard.stats.hits;
    return it->second;
  }
  // Resolving under the shard lock serializes same-shard misses, but a
  // resolution is cheap next to the simulations that consume it, and this
  // guarantees the exactly-once property the compile counter advertises.
  // Failed resolutions count nowhere: misses only tallies units resolved.
  if (store_ != nullptr) {
    // Any load failure (miss, stale tag, corrupt artifact) falls through
    // to a compile; the save below then replaces the bad artifact.
    if (auto loaded = store_->load(spec); loaded.ok() && loaded.value()) {
      ++shard.stats.misses;
      ++shard.stats.store_hits;
      shard.units.emplace(key, loaded.value());
      return std::move(loaded).value();
    }
  }
  auto compiled = CompiledUnit::compile(spec);
  if (!compiled.ok()) return std::move(compiled).error();
  ++shard.stats.misses;
  ++shard.stats.compiles;
  auto unit =
      std::make_shared<const CompiledUnit>(std::move(compiled).value());
  shard.units.emplace(key, unit);
  if (store_ != nullptr) {
    // Best-effort write-back: a full disk or read-only store directory
    // must not fail the sweep that compiled the unit.
    (void)store_->save(*unit);
  }
  return unit;
}

CompileCache::Stats CompileCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.store_hits += shard.stats.store_hits;
    total.compiles += shard.stats.compiles;
  }
  return total;
}

std::size_t CompileCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.units.size();
  }
  return total;
}

void CompileCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.units.clear();
    shard.stats = {};
  }
}

}  // namespace zolcsim::flow
