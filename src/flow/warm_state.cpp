#include "flow/warm_state.hpp"

namespace zolcsim::flow {

WarmState::WarmState(const std::string& store_dir) {
  if (!store_dir.empty()) {
    store_.emplace(store_dir);
    cache_.attach_store(&*store_);
  }
}

}  // namespace zolcsim::flow
