#include "flow/run.hpp"

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "zolc/controller.hpp"

namespace zolcsim::flow {

Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                      const RunPlan& plan) {
  Workload workload = Workload::prepare(unit);
  return run(unit, workload, plan);
}

Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                      Workload& workload,
                                      const RunPlan& plan) {
  const codegen::Program& program = unit.program();

  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(unit.machine())) {
    controller =
        std::make_unique<zolc::ZolcController>(*variant, unit.geometry());
  }

  cpu::Pipeline pipe(workload.memory(), plan.config);
  pipe.set_accelerator(controller.get());
  if (plan.predecode) pipe.set_code_image(unit.image());
  pipe.set_pc(program.base);
  const auto started = std::chrono::steady_clock::now();
  try {
    pipe.run(plan.max_cycles);
  } catch (const cpu::SimError& e) {
    return Error{ErrorCode::kSimulation, e.what()}.with_context(
        unit_label(unit.kernel().name(), unit.machine()) +
        ": simulation failed");
  }
  const auto wall = std::chrono::steady_clock::now() - started;

  if (auto verified = workload.verify(); !verified.ok()) {
    return std::move(verified).error();
  }

  harness::ExperimentResult result;
  result.kernel = std::string(unit.kernel().name());
  result.machine = unit.machine();
  result.geometry = unit.geometry();
  result.stats = pipe.stats();
  if (controller) result.zolc_stats = controller->zolc_stats();
  result.init_instructions = program.init_instructions;
  result.hw_loops = program.hw_loop_count;
  result.sw_loops = program.sw_loop_count;
  result.code_words = program.size_words();
  result.notes = program.notes;
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
  return result;
}

}  // namespace zolcsim::flow
