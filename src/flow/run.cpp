#include "flow/run.hpp"

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "cpu/iss.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::flow {

namespace {

/// Runs the unit on the functional ISS. The ISS is 1-CPI by construction,
/// so the returned PipelineStats report cycles == instructions; pipeline-
/// specific counters (stalls, flushes) stay zero.
cpu::PipelineStats run_iss(const CompiledUnit& unit, Workload& workload,
                           const RunPlan& plan,
                           zolc::ZolcController* controller,
                           cpu::FastPathStats& fastpath) {
  cpu::Iss iss(workload.memory());
  iss.set_accelerator(controller);
  if (plan.predecode) iss.set_code_image(unit.image());
  iss.set_fast_path(plan.mode.fast_path);
  iss.set_pc(unit.program().base);
  iss.run(plan.max_cycles);
  fastpath = iss.fastpath_stats();

  const cpu::IssStats& stats = iss.stats();
  cpu::PipelineStats out;
  out.cycles = stats.instructions;
  out.instructions = stats.instructions;
  out.taken_control = stats.taken_control;
  out.zolc_fetch_events = stats.zolc_fetch_events;
  out.zolc_resolution_events = stats.zolc_resolution_events;
  return out;
}

}  // namespace

Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                      const RunPlan& plan) {
  // One workload serves every repetition: warm starts reset the
  // copy-on-write dirty set between reps, cold starts rebuild the image
  // (the single prepare here is also the only one on the reps == 1 path).
  Workload workload = plan.warm_start ? Workload::prepare_warm(unit)
                                      : Workload::prepare(unit);
  auto result = run(unit, workload, plan);
  if (result.ok() && !plan.warm_start) ++result.value().full_prepares;
  // Extra timing reps: identical runs on restored initial state, keeping
  // the minimum wall time (the least-disturbed measurement of the same
  // work).
  for (std::uint64_t rep = 1; result.ok() && rep < plan.timing_reps; ++rep) {
    workload.reset();
    auto again = run(unit, workload, plan);
    if (!again.ok()) return again;
    if (again.value().wall_ns < result.value().wall_ns) {
      result.value().wall_ns = again.value().wall_ns;
    }
    if (plan.warm_start) {
      ++result.value().image_resets;
    } else {
      ++result.value().full_prepares;
    }
  }
  return result;
}

Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                      Workload& workload,
                                      const RunPlan& plan) {
  const codegen::Program& program = unit.program();

  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(unit.machine())) {
    controller =
        std::make_unique<zolc::ZolcController>(*variant, unit.geometry());
  }

  cpu::PipelineStats stats;
  cpu::FastPathStats fastpath;
  const auto started = std::chrono::steady_clock::now();
  try {
    if (plan.mode.engine == harness::SimEngine::kIss) {
      stats = run_iss(unit, workload, plan, controller.get(), fastpath);
    } else {
      cpu::Pipeline pipe(workload.memory(), plan.config);
      pipe.set_accelerator(controller.get());
      if (plan.predecode) pipe.set_code_image(unit.image());
      pipe.set_pc(program.base);
      pipe.run(plan.max_cycles);
      stats = pipe.stats();
    }
  } catch (const cpu::SimError& e) {
    return Error{ErrorCode::kSimulation, e.what()}.with_context(
        unit_label(unit.kernel().name(), unit.machine()) +
        ": simulation failed");
  }
  const auto wall = std::chrono::steady_clock::now() - started;

  if (auto verified = workload.verify(); !verified.ok()) {
    return std::move(verified).error();
  }

  harness::ExperimentResult result;
  result.kernel = std::string(unit.kernel().name());
  result.machine = unit.machine();
  result.geometry = unit.geometry();
  result.mode = plan.mode;
  result.stats = stats;
  result.fastpath = fastpath;
  if (controller) result.zolc_stats = controller->zolc_stats();
  result.init_instructions = program.init_instructions;
  result.hw_loops = program.hw_loop_count;
  result.sw_loops = program.sw_loop_count;
  result.code_words = program.size_words();
  result.notes = program.notes;
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
  return result;
}

}  // namespace zolcsim::flow
