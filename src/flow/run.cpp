#include "flow/run.hpp"

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "common/strings.hpp"
#include "cpu/iss.hpp"
#include "flow/scheduler.hpp"
#include "zolc/controller.hpp"

namespace zolcsim::flow {

namespace {

/// Runs the unit on the functional ISS. The ISS is 1-CPI by construction,
/// so the returned PipelineStats report cycles == instructions; pipeline-
/// specific counters (stalls, flushes) stay zero. With plan.preempt_every
/// set, execution is sliced and the controller's full context is clobbered
/// and restored at every boundary (counters reported through `switches` /
/// `switch_cycles`) -- architecturally invisible by the differential tests.
cpu::PipelineStats run_iss(const CompiledUnit& unit, Workload& workload,
                           const RunPlan& plan,
                           zolc::ZolcController* controller,
                           cpu::FastPathStats& fastpath,
                           std::uint64_t& switches,
                           std::uint64_t& switch_cycles) {
  cpu::Iss iss(workload.memory());
  iss.set_accelerator(controller);
  if (plan.predecode) iss.set_code_image(unit.image());
  iss.set_fast_path(plan.mode.fast_path);
  iss.set_pc(unit.program().base);
  if (plan.preempt_every == 0) {
    iss.run(plan.max_cycles);
  } else {
    std::uint64_t executed = 0;
    while (!iss.halted()) {
      if (executed >= plan.max_cycles) {
        throw cpu::SimError("ISS step limit (" +
                            std::to_string(plan.max_cycles) +
                            ") exceeded at pc " + hex32(iss.pc()));
      }
      executed += iss.run_slice(
          std::min(plan.preempt_every, plan.max_cycles - executed));
      if (iss.halted()) break;
      if (controller != nullptr) {
        switch_cycles += preempt_cycle(*controller, plan.preempt_serialize);
        ++switches;
      }
    }
  }
  fastpath = iss.fastpath_stats();

  const cpu::IssStats& stats = iss.stats();
  cpu::PipelineStats out;
  out.cycles = stats.instructions;
  out.instructions = stats.instructions;
  out.taken_control = stats.taken_control;
  out.zolc_fetch_events = stats.zolc_fetch_events;
  out.zolc_resolution_events = stats.zolc_resolution_events;
  return out;
}

}  // namespace

Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                      const RunPlan& plan) {
  if (plan.tenants != 1) return run_tenants(unit, plan);
  // One workload serves every repetition: warm starts reset the
  // copy-on-write dirty set between reps, cold starts rebuild the image
  // (the single prepare here is also the only one on the reps == 1 path).
  Workload workload = plan.warm_start ? Workload::prepare_warm(unit)
                                      : Workload::prepare(unit);
  auto result = run(unit, workload, plan);
  if (result.ok() && !plan.warm_start) ++result.value().full_prepares;
  // Extra timing reps: identical runs on restored initial state, keeping
  // the minimum wall time (the least-disturbed measurement of the same
  // work).
  for (std::uint64_t rep = 1; result.ok() && rep < plan.timing_reps; ++rep) {
    workload.reset();
    auto again = run(unit, workload, plan);
    if (!again.ok()) return again;
    if (again.value().wall_ns < result.value().wall_ns) {
      result.value().wall_ns = again.value().wall_ns;
    }
    if (plan.warm_start) {
      ++result.value().image_resets;
    } else {
      ++result.value().full_prepares;
    }
  }
  return result;
}

Result<harness::ExperimentResult> run(const CompiledUnit& unit,
                                      Workload& workload,
                                      const RunPlan& plan) {
  if (plan.tenants != 1) {
    return Error{ErrorCode::kBadConfig,
                 "tenant scheduling requires the fresh-workload run() path"};
  }
  if (plan.preempt_every != 0 &&
      plan.mode.engine != harness::SimEngine::kIss) {
    return Error{ErrorCode::kBadConfig,
                 "preemption requires the ISS engine"};
  }
  const codegen::Program& program = unit.program();

  std::unique_ptr<zolc::ZolcController> controller;
  if (const auto variant = codegen::machine_zolc_variant(unit.machine())) {
    controller =
        std::make_unique<zolc::ZolcController>(*variant, unit.geometry());
  }

  cpu::PipelineStats stats;
  cpu::FastPathStats fastpath;
  std::uint64_t switches = 0;
  std::uint64_t switch_cycles = 0;
  const auto started = std::chrono::steady_clock::now();
  try {
    if (plan.mode.engine == harness::SimEngine::kIss) {
      stats = run_iss(unit, workload, plan, controller.get(), fastpath,
                      switches, switch_cycles);
    } else {
      cpu::Pipeline pipe(workload.memory(), plan.config);
      pipe.set_accelerator(controller.get());
      if (plan.predecode) pipe.set_code_image(unit.image());
      pipe.set_pc(program.base);
      pipe.run(plan.max_cycles);
      stats = pipe.stats();
    }
  } catch (const cpu::SimError& e) {
    return Error{ErrorCode::kSimulation, e.what()}.with_context(
        unit_label(unit.kernel().name(), unit.machine()) +
        ": simulation failed");
  }
  const auto wall = std::chrono::steady_clock::now() - started;

  if (auto verified = workload.verify(); !verified.ok()) {
    return std::move(verified).error();
  }

  harness::ExperimentResult result;
  result.kernel = std::string(unit.kernel().name());
  result.machine = unit.machine();
  result.geometry = unit.geometry();
  result.mode = plan.mode;
  result.stats = stats;
  result.fastpath = fastpath;
  if (controller) result.zolc_stats = controller->zolc_stats();
  result.init_instructions = program.init_instructions;
  result.hw_loops = program.hw_loop_count;
  result.sw_loops = program.sw_loop_count;
  result.code_words = program.size_words();
  result.notes = program.notes;
  result.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
  result.context_switches = switches;
  result.context_switch_cycles = switch_cycles;
  return result;
}

}  // namespace zolcsim::flow
