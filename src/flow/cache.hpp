// CompileCache: keyed, thread-safe sharing of CompiledUnits.
//
// The sweep engine's grid repeats each (kernel, machine, geometry, env)
// point once per pipeline configuration; the cache collapses those to one
// compile each. The map is striped over kShardCount mutexes keyed by the
// spec's FNV-1a hash, so parallel sweep workers resolving different units
// no longer convoy on a single lock; within a shard, resolution happens
// under the lock, so a unit is still resolved exactly once no matter how
// many workers race for it. The miss counter counts in-memory misses; with
// an attached UnitStore a miss is first served from disk (store_hits), so
// the number of compiles actually performed is the separate `compiles`
// counter (== misses when no store is attached), which SweepReport exposes
// (and tests assert).
#ifndef ZOLCSIM_FLOW_CACHE_HPP
#define ZOLCSIM_FLOW_CACHE_HPP

#include <array>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "flow/compiled_unit.hpp"
#include "flow/unit_store.hpp"

namespace zolcsim::flow {

class CompileCache {
 public:
  /// Mutex stripes. A power of two well above typical sweep thread counts;
  /// the per-shard cost is one mutex and one small map.
  static constexpr std::size_t kShardCount = 16;

  struct Stats {
    std::size_t hits = 0;        ///< served from memory
    std::size_t misses = 0;      ///< not in memory (store or compile)
    std::size_t store_hits = 0;  ///< misses served by the attached store
    std::size_t compiles = 0;    ///< compiles performed (misses - store_hits)
  };

  /// Attaches an on-disk UnitStore (non-owning; must outlive the cache):
  /// misses try store.load() before compiling, and fresh compiles are
  /// written back with store.save(). Store failures never fail a lookup --
  /// a bad artifact is recompiled and overwritten. Attach before sharing
  /// the cache across threads.
  void attach_store(UnitStore* store) noexcept { store_ = store; }
  [[nodiscard]] UnitStore* store() const noexcept { return store_; }

  /// Returns the unit for `spec`, resolving it on first use (store load or
  /// compile). A failed compile is not cached (every caller for that spec
  /// gets the error).
  [[nodiscard]] Result<std::shared_ptr<const CompiledUnit>> get_or_compile(
      const CompileSpec& spec);

  /// Counters summed over all shards. With concurrent callers in flight
  /// the sum is a snapshot; quiesced, it is exact.
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<const CompiledUnit>>
        units;
    Stats stats;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key) noexcept;

  std::array<Shard, kShardCount> shards_;
  UnitStore* store_ = nullptr;  ///< non-owning; set once before use
};

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_CACHE_HPP
