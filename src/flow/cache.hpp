// CompileCache: keyed, thread-safe sharing of CompiledUnits.
//
// The sweep engine's grid repeats each (kernel, machine, geometry, env)
// point once per pipeline configuration; the cache collapses those to one
// compile each. Compilation happens under the lock, so a unit is compiled
// exactly once no matter how many workers race for it -- the miss counter
// is therefore also the number of compiles performed, which SweepReport
// exposes (and tests assert).
#ifndef ZOLCSIM_FLOW_CACHE_HPP
#define ZOLCSIM_FLOW_CACHE_HPP

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "flow/compiled_unit.hpp"

namespace zolcsim::flow {

class CompileCache {
 public:
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;  ///< == number of compiles performed
  };

  /// Returns the unit for `spec`, compiling it on first use. A failed
  /// compile is not cached (every caller for that spec gets the error).
  [[nodiscard]] Result<std::shared_ptr<const CompiledUnit>> get_or_compile(
      const CompileSpec& spec);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledUnit>> units_;
  Stats stats_;
};

}  // namespace zolcsim::flow

#endif  // ZOLCSIM_FLOW_CACHE_HPP
