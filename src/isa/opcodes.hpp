// Instruction set of the modelled embedded RISC core ("XR" below, standing in
// for the XiRisc soft core of the paper). A classic 32-bit load/store RISC:
//  * base integer ISA (MIPS/DLX-flavoured) with compare-and-branch,
//  * a small DSP group (mul/mac/min/max/abs/clz) as found on embedded DSPs,
//  * the XRhrdwil extension: `dbne` branch-decrement (configurable option of
//    the XiRisc core in the paper),
//  * the ZOLC extension: COP2-style table-write / activate instructions used
//    only in ZOLC "initialization" mode (Section 2 of the paper).
#ifndef ZOLCSIM_ISA_OPCODES_HPP
#define ZOLCSIM_ISA_OPCODES_HPP

#include <cstdint>
#include <optional>
#include <string_view>

namespace zolcsim::isa {

/// Every decodable operation, flattened (ZOLC sub-functions get their own
/// enumerators so the rest of the system never re-inspects funct fields).
enum class Opcode : std::uint8_t {
  kInvalid = 0,
  // R-type ALU (opcode 0x00 + funct)
  kAdd, kSub, kAnd, kOr, kXor, kNor, kSlt, kSltu,
  kSllv, kSrlv, kSrav,
  kSll, kSrl, kSra,          // shift-by-immediate (shamt field)
  kJr, kJalr,
  // DSP group (opcode 0x1C + funct)
  kMul, kMulh, kMulhu, kMac, kMax, kMin, kAbs, kClz,
  // I-type ALU
  kAddi, kSlti, kSltiu, kAndi, kOri, kXori, kLui,
  // Conditional branches (PC-relative, offset in words)
  kBeq, kBne, kBlez, kBgtz, kBlt, kBge, kBltu, kBgeu,
  // Loads / stores
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
  // Jumps
  kJ, kJal,
  // XRhrdwil extension: decrement rs, branch if result non-zero.
  kDbne,
  // ZOLC extension (opcode 0x12 + funct), initialization-mode writes:
  kZolwTe,   ///< task LUT entry[idx]  := rs (32 bits)
  kZolwTs,   ///< task start[idx]      := rs[15:0]
  kZolwLp0,  ///< loop[idx] word0      := rs (initial:16 | final:16)
  kZolwLp1,  ///< loop[idx] word1      := rs (step/index_rf/cond/flags)
  kZolwEx0,  ///< exit record[idx] lo  := rs (32 bits)
  kZolwEx1,  ///< exit record[idx] hi  := rs[15:0]
  kZolwEn0,  ///< entry record[idx] lo := rs (32 bits)
  kZolwEn1,  ///< entry record[idx] hi := rs[15:0]
  kZolwU,    ///< uZOLC register[idx]  := rs
  kZolOn,    ///< activate: base := rs, current task := idx
  kZolOff,   ///< deactivate
  // Simulation control
  kHalt,
  kOpcodeCount_,  // sentinel
};

/// Number of real opcodes (excluding kInvalid and the sentinel).
constexpr std::size_t opcode_count() noexcept {
  return static_cast<std::size_t>(Opcode::kOpcodeCount_) - 1;
}

/// Operand/encoding format classes.
enum class Format : std::uint8_t {
  kR3,          ///< rd, rs, rt
  kR3Acc,       ///< rd, rs, rt with rd also read (mac)
  kRShift,      ///< rd, rt, shamt
  kR2,          ///< rd, rs          (abs, clz, jalr)
  kR1,          ///< rs              (jr)
  kI,           ///< rt, rs, imm16 (signed unless noted)
  kLui,         ///< rt, imm16
  kBranchCmp,   ///< rs, rt, offset16
  kBranchZero,  ///< rs, offset16    (blez, bgtz, dbne)
  kMem,         ///< rt, offset16(rs)
  kJump,        ///< target26
  kZolcWrite,   ///< rs, idx8        (table writes, zolon)
  kZolcNone,    ///< no operands     (zoloff)
  kNone,        ///< no operands     (halt)
};

/// Static per-opcode properties consumed by the decoder, the pipeline's
/// hazard logic, the CFG builder, and the assembler.
struct OpcodeInfo {
  Opcode op = Opcode::kInvalid;
  std::string_view mnemonic;
  Format format = Format::kNone;
  std::uint8_t primary = 0;   ///< bits [31:26]
  std::uint8_t funct = 0;     ///< bits [5:0] for R/DSP/ZOLC groups
  bool reads_rs = false;
  bool reads_rt = false;
  bool reads_rd = false;      ///< mac accumulates into rd
  bool writes_rd = false;
  bool writes_rt = false;     ///< I-type destination
  bool writes_rs = false;     ///< dbne decrements rs
  bool is_cond_branch = false;
  bool is_jump = false;       ///< unconditional control transfer
  bool is_load = false;
  bool is_store = false;
  bool is_zolc = false;
  bool imm_is_signed = true;  ///< for kI: andi/ori/xori/sltiu are zero-extended
};

/// Returns the metadata record for `op`. Precondition: op is a real opcode.
const OpcodeInfo& opcode_info(Opcode op);

/// Looks up an opcode by assembler mnemonic (lowercase). Returns nullopt for
/// unknown mnemonics.
std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic);

/// Primary opcode field values for the instruction groups.
inline constexpr std::uint8_t kPrimarySpecial = 0x00;  // R-type group
inline constexpr std::uint8_t kPrimaryDsp = 0x1C;      // DSP group
inline constexpr std::uint8_t kPrimaryZolc = 0x12;     // ZOLC group (COP2)
inline constexpr std::uint8_t kPrimaryDbne = 0x1D;
inline constexpr std::uint8_t kPrimaryHalt = 0x3F;

/// Number of general-purpose registers; register 0 is hardwired to zero.
inline constexpr unsigned kNumRegs = 32;

/// Conventional register names ($zero, $at, $v0, ... $ra), index 0..31.
std::string_view reg_name(unsigned reg);

/// Parses "$3" / "$t0" / "r3" style register names. Returns nullopt if the
/// name is unknown or out of range.
std::optional<unsigned> reg_from_name(std::string_view name);

}  // namespace zolcsim::isa

#endif  // ZOLCSIM_ISA_OPCODES_HPP
