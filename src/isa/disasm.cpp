#include "isa/disasm.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "isa/encoding.hpp"

namespace zolcsim::isa {

namespace {

std::string reg(unsigned r) { return std::string(reg_name(r)); }

}  // namespace

std::string disassemble(const Instruction& instr, std::uint32_t pc) {
  if (!instr.valid()) return "<invalid>";
  if (is_nop(instr)) return "nop";

  const OpcodeInfo& info = opcode_info(instr.op);
  std::ostringstream os;
  os << info.mnemonic;

  switch (info.format) {
    case Format::kR3:
    case Format::kR3Acc:
      os << ' ' << reg(instr.rd) << ", " << reg(instr.rs) << ", "
         << reg(instr.rt);
      break;
    case Format::kRShift:
      os << ' ' << reg(instr.rd) << ", " << reg(instr.rt) << ", "
         << static_cast<unsigned>(instr.shamt);
      break;
    case Format::kR2:
      os << ' ' << reg(instr.rd) << ", " << reg(instr.rs);
      break;
    case Format::kR1:
      os << ' ' << reg(instr.rs);
      break;
    case Format::kI:
      os << ' ' << reg(instr.rt) << ", " << reg(instr.rs) << ", " << instr.imm;
      break;
    case Format::kLui:
      os << ' ' << reg(instr.rt) << ", " << instr.imm;
      break;
    case Format::kBranchCmp:
      os << ' ' << reg(instr.rs) << ", " << reg(instr.rt) << ", "
         << hex32(branch_target(instr, pc));
      break;
    case Format::kBranchZero:
      os << ' ' << reg(instr.rs) << ", " << hex32(branch_target(instr, pc));
      break;
    case Format::kMem:
      os << ' ' << reg(instr.rt) << ", " << instr.imm << '(' << reg(instr.rs)
         << ')';
      break;
    case Format::kJump:
      os << ' ' << hex32(jump_target(instr, pc));
      break;
    case Format::kZolcWrite:
      if (instr.op == Opcode::kZolOn) {
        os << ' ' << static_cast<unsigned>(instr.zidx) << ", " << reg(instr.rs);
      } else {
        os << ' ' << static_cast<unsigned>(instr.zidx) << ", " << reg(instr.rs);
      }
      break;
    case Format::kZolcNone:
    case Format::kNone:
      break;
  }
  return os.str();
}

std::string disassemble_word(std::uint32_t word, std::uint32_t pc) {
  return disassemble(decode(word), pc);
}

}  // namespace zolcsim::isa
