// Disassembler: renders decoded instructions in the same syntax the
// assembler accepts, so text<->binary round trips are testable.
#ifndef ZOLCSIM_ISA_DISASM_HPP
#define ZOLCSIM_ISA_DISASM_HPP

#include <cstdint>
#include <string>

#include "isa/instruction.hpp"

namespace zolcsim::isa {

/// Renders one instruction. `pc` is the instruction's own address, used to
/// print absolute targets for branches/jumps.
[[nodiscard]] std::string disassemble(const Instruction& instr,
                                      std::uint32_t pc);

/// Convenience: decode + disassemble a raw word.
[[nodiscard]] std::string disassemble_word(std::uint32_t word,
                                           std::uint32_t pc);

}  // namespace zolcsim::isa

#endif  // ZOLCSIM_ISA_DISASM_HPP
