// Decoded instruction representation plus operand-access helpers used by the
// executor, the pipeline hazard logic, and the CFG builder.
#ifndef ZOLCSIM_ISA_INSTRUCTION_HPP
#define ZOLCSIM_ISA_INSTRUCTION_HPP

#include <array>
#include <cstdint>
#include <optional>

#include "isa/opcodes.hpp"

namespace zolcsim::isa {

/// A fully decoded instruction. Field validity depends on the opcode's
/// Format; unused fields are zero.
struct Instruction {
  Opcode op = Opcode::kInvalid;
  std::uint8_t rd = 0;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t shamt = 0;
  std::int32_t imm = 0;      ///< sign- or zero-extended per opcode_info()
  std::uint32_t target = 0;  ///< 26-bit jump target field (raw)
  std::uint8_t zidx = 0;     ///< ZOLC table index field

  [[nodiscard]] bool valid() const noexcept { return op != Opcode::kInvalid; }

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Up to three source registers read by an instruction.
struct SourceRegs {
  std::array<std::uint8_t, 3> regs{};
  std::uint8_t count = 0;

  void push(std::uint8_t r) { regs[count++] = r; }
};

/// Returns the registers `instr` reads (rs/rt/rd-accumulator as applicable).
[[nodiscard]] SourceRegs source_regs(const Instruction& instr);

/// Returns the register `instr` writes, if any (register 0 never counts:
/// writes to $zero are architectural no-ops).
[[nodiscard]] std::optional<std::uint8_t> dest_reg(const Instruction& instr);

/// True iff the instruction can redirect control flow (branch or jump).
[[nodiscard]] bool is_control_flow(const Instruction& instr);

/// For PC-relative branches: the byte target given the branch's own PC.
/// Precondition: instr is a conditional branch or dbne.
[[nodiscard]] std::uint32_t branch_target(const Instruction& instr,
                                          std::uint32_t pc);

/// For J/JAL: the byte target given the jump's own PC (region-form like MIPS).
/// Precondition: instr is kJ or kJal.
[[nodiscard]] std::uint32_t jump_target(const Instruction& instr,
                                        std::uint32_t pc);

/// Canonical NOP encoding (sll $zero, $zero, 0).
[[nodiscard]] Instruction make_nop() noexcept;

/// True iff `instr` is the canonical NOP.
[[nodiscard]] bool is_nop(const Instruction& instr) noexcept;

}  // namespace zolcsim::isa

#endif  // ZOLCSIM_ISA_INSTRUCTION_HPP
