// Instruction factories: the canonical way to construct decoded instructions
// programmatically (code generator, tests, examples). Field placement
// mirrors the assembler's operand order.
#ifndef ZOLCSIM_ISA_BUILD_HPP
#define ZOLCSIM_ISA_BUILD_HPP

#include <cstdint>

#include "isa/instruction.hpp"

namespace zolcsim::isa::build {

using Reg = std::uint8_t;

inline Instruction r3(Opcode op, Reg rd, Reg rs, Reg rt) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rs = rs;
  i.rt = rt;
  return i;
}

inline Instruction add(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kAdd, rd, rs, rt); }
inline Instruction sub(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kSub, rd, rs, rt); }
inline Instruction and_(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kAnd, rd, rs, rt); }
inline Instruction or_(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kOr, rd, rs, rt); }
inline Instruction xor_(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kXor, rd, rs, rt); }
inline Instruction nor_(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kNor, rd, rs, rt); }
inline Instruction slt(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kSlt, rd, rs, rt); }
inline Instruction sltu(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kSltu, rd, rs, rt); }
inline Instruction sllv(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kSllv, rd, rs, rt); }
inline Instruction srlv(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kSrlv, rd, rs, rt); }
inline Instruction srav(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kSrav, rd, rs, rt); }
inline Instruction mul(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kMul, rd, rs, rt); }
inline Instruction mulh(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kMulh, rd, rs, rt); }
inline Instruction mulhu(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kMulhu, rd, rs, rt); }
inline Instruction mac(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kMac, rd, rs, rt); }
inline Instruction max(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kMax, rd, rs, rt); }
inline Instruction min(Reg rd, Reg rs, Reg rt) { return r3(Opcode::kMin, rd, rs, rt); }

inline Instruction shift(Opcode op, Reg rd, Reg rt, std::uint8_t shamt) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rt = rt;
  i.shamt = shamt;
  return i;
}
inline Instruction sll(Reg rd, Reg rt, std::uint8_t sh) { return shift(Opcode::kSll, rd, rt, sh); }
inline Instruction srl(Reg rd, Reg rt, std::uint8_t sh) { return shift(Opcode::kSrl, rd, rt, sh); }
inline Instruction sra(Reg rd, Reg rt, std::uint8_t sh) { return shift(Opcode::kSra, rd, rt, sh); }

inline Instruction r2(Opcode op, Reg rd, Reg rs) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rs = rs;
  return i;
}
inline Instruction abs_(Reg rd, Reg rs) { return r2(Opcode::kAbs, rd, rs); }
inline Instruction clz(Reg rd, Reg rs) { return r2(Opcode::kClz, rd, rs); }
inline Instruction jalr(Reg rd, Reg rs) { return r2(Opcode::kJalr, rd, rs); }

inline Instruction jr(Reg rs) {
  Instruction i;
  i.op = Opcode::kJr;
  i.rs = rs;
  return i;
}

inline Instruction itype(Opcode op, Reg rt, Reg rs, std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.rt = rt;
  i.rs = rs;
  i.imm = imm;
  return i;
}
inline Instruction addi(Reg rt, Reg rs, std::int32_t imm) { return itype(Opcode::kAddi, rt, rs, imm); }
inline Instruction slti(Reg rt, Reg rs, std::int32_t imm) { return itype(Opcode::kSlti, rt, rs, imm); }
inline Instruction sltiu(Reg rt, Reg rs, std::int32_t imm) { return itype(Opcode::kSltiu, rt, rs, imm); }
inline Instruction andi(Reg rt, Reg rs, std::int32_t imm) { return itype(Opcode::kAndi, rt, rs, imm); }
inline Instruction ori(Reg rt, Reg rs, std::int32_t imm) { return itype(Opcode::kOri, rt, rs, imm); }
inline Instruction xori(Reg rt, Reg rs, std::int32_t imm) { return itype(Opcode::kXori, rt, rs, imm); }

inline Instruction lui(Reg rt, std::int32_t imm) {
  Instruction i;
  i.op = Opcode::kLui;
  i.rt = rt;
  i.imm = imm;
  return i;
}

/// Branch offsets are in *words* relative to pc + 4 (the raw encoding field).
inline Instruction branch(Opcode op, Reg rs, Reg rt, std::int32_t word_ofs) {
  Instruction i;
  i.op = op;
  i.rs = rs;
  i.rt = rt;
  i.imm = word_ofs;
  return i;
}
inline Instruction beq(Reg rs, Reg rt, std::int32_t ofs) { return branch(Opcode::kBeq, rs, rt, ofs); }
inline Instruction bne(Reg rs, Reg rt, std::int32_t ofs) { return branch(Opcode::kBne, rs, rt, ofs); }
inline Instruction blt(Reg rs, Reg rt, std::int32_t ofs) { return branch(Opcode::kBlt, rs, rt, ofs); }
inline Instruction bge(Reg rs, Reg rt, std::int32_t ofs) { return branch(Opcode::kBge, rs, rt, ofs); }
inline Instruction bltu(Reg rs, Reg rt, std::int32_t ofs) { return branch(Opcode::kBltu, rs, rt, ofs); }
inline Instruction bgeu(Reg rs, Reg rt, std::int32_t ofs) { return branch(Opcode::kBgeu, rs, rt, ofs); }
inline Instruction blez(Reg rs, std::int32_t ofs) { return branch(Opcode::kBlez, rs, 0, ofs); }
inline Instruction bgtz(Reg rs, std::int32_t ofs) { return branch(Opcode::kBgtz, rs, 0, ofs); }
inline Instruction dbne(Reg rs, std::int32_t ofs) { return branch(Opcode::kDbne, rs, 0, ofs); }

inline Instruction memop(Opcode op, Reg rt, std::int32_t offset, Reg base) {
  Instruction i;
  i.op = op;
  i.rt = rt;
  i.rs = base;
  i.imm = offset;
  return i;
}
inline Instruction lw(Reg rt, std::int32_t ofs, Reg base) { return memop(Opcode::kLw, rt, ofs, base); }
inline Instruction lh(Reg rt, std::int32_t ofs, Reg base) { return memop(Opcode::kLh, rt, ofs, base); }
inline Instruction lhu(Reg rt, std::int32_t ofs, Reg base) { return memop(Opcode::kLhu, rt, ofs, base); }
inline Instruction lb(Reg rt, std::int32_t ofs, Reg base) { return memop(Opcode::kLb, rt, ofs, base); }
inline Instruction lbu(Reg rt, std::int32_t ofs, Reg base) { return memop(Opcode::kLbu, rt, ofs, base); }
inline Instruction sw(Reg rt, std::int32_t ofs, Reg base) { return memop(Opcode::kSw, rt, ofs, base); }
inline Instruction sh(Reg rt, std::int32_t ofs, Reg base) { return memop(Opcode::kSh, rt, ofs, base); }
inline Instruction sb(Reg rt, std::int32_t ofs, Reg base) { return memop(Opcode::kSb, rt, ofs, base); }

/// Jump to an absolute byte address (within the current 256 MiB region).
inline Instruction j(std::uint32_t target_addr) {
  Instruction i;
  i.op = Opcode::kJ;
  i.target = (target_addr >> 2) & 0x03FF'FFFFu;
  return i;
}
inline Instruction jal(std::uint32_t target_addr) {
  Instruction i;
  i.op = Opcode::kJal;
  i.target = (target_addr >> 2) & 0x03FF'FFFFu;
  return i;
}

inline Instruction zolc_write(Opcode op, std::uint8_t idx, Reg rs) {
  Instruction i;
  i.op = op;
  i.zidx = idx;
  i.rs = rs;
  return i;
}
inline Instruction zolon(std::uint8_t start_task, Reg base) {
  return zolc_write(Opcode::kZolOn, start_task, base);
}
inline Instruction zoloff() {
  Instruction i;
  i.op = Opcode::kZolOff;
  return i;
}

inline Instruction halt() {
  Instruction i;
  i.op = Opcode::kHalt;
  return i;
}

inline Instruction nop() { return make_nop(); }

}  // namespace zolcsim::isa::build

#endif  // ZOLCSIM_ISA_BUILD_HPP
