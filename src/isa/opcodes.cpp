#include "isa/opcodes.hpp"

#include <array>
#include <unordered_map>

#include "common/contracts.hpp"
#include "common/strings.hpp"

namespace zolcsim::isa {

namespace {

// Funct encodings inside the SPECIAL (0x00) group, MIPS-flavoured.
constexpr std::uint8_t kFnSll = 0x00, kFnSrl = 0x02, kFnSra = 0x03;
constexpr std::uint8_t kFnSllv = 0x04, kFnSrlv = 0x06, kFnSrav = 0x07;
constexpr std::uint8_t kFnJr = 0x08, kFnJalr = 0x09;
constexpr std::uint8_t kFnAdd = 0x20, kFnSub = 0x22, kFnAnd = 0x24;
constexpr std::uint8_t kFnOr = 0x25, kFnXor = 0x26, kFnNor = 0x27;
constexpr std::uint8_t kFnSlt = 0x2A, kFnSltu = 0x2B;

// Funct encodings inside the DSP (0x1C) group.
constexpr std::uint8_t kFnMul = 0x02, kFnMulh = 0x03, kFnMulhu = 0x04;
constexpr std::uint8_t kFnMac = 0x05, kFnMax = 0x06, kFnMin = 0x07;
constexpr std::uint8_t kFnAbs = 0x08, kFnClz = 0x09;

// Funct encodings inside the ZOLC (0x12) group.
constexpr std::uint8_t kFnZolwTe = 0x00, kFnZolwTs = 0x01;
constexpr std::uint8_t kFnZolwLp0 = 0x02, kFnZolwLp1 = 0x03;
constexpr std::uint8_t kFnZolwEx0 = 0x04, kFnZolwEx1 = 0x05;
constexpr std::uint8_t kFnZolwEn0 = 0x06, kFnZolwEn1 = 0x07;
constexpr std::uint8_t kFnZolwU = 0x0A;
constexpr std::uint8_t kFnZolOn = 0x08, kFnZolOff = 0x09;

struct InfoBuilder {
  OpcodeInfo info;

  static InfoBuilder make(Opcode op, std::string_view mnemonic, Format fmt,
                          std::uint8_t primary, std::uint8_t funct = 0) {
    InfoBuilder b;
    b.info.op = op;
    b.info.mnemonic = mnemonic;
    b.info.format = fmt;
    b.info.primary = primary;
    b.info.funct = funct;
    switch (fmt) {
      case Format::kR3:
        b.info.reads_rs = b.info.reads_rt = b.info.writes_rd = true;
        break;
      case Format::kR3Acc:
        b.info.reads_rs = b.info.reads_rt = b.info.reads_rd = true;
        b.info.writes_rd = true;
        break;
      case Format::kRShift:
        b.info.reads_rt = b.info.writes_rd = true;
        break;
      case Format::kR2:
        b.info.reads_rs = b.info.writes_rd = true;
        break;
      case Format::kR1:
        b.info.reads_rs = true;
        break;
      case Format::kI:
      case Format::kMem:
        b.info.reads_rs = true;
        b.info.writes_rt = true;  // overridden for stores below
        break;
      case Format::kLui:
        b.info.writes_rt = true;
        break;
      case Format::kBranchCmp:
        b.info.reads_rs = b.info.reads_rt = true;
        b.info.is_cond_branch = true;
        break;
      case Format::kBranchZero:
        b.info.reads_rs = true;
        b.info.is_cond_branch = true;
        break;
      case Format::kJump:
      case Format::kZolcWrite:
      case Format::kZolcNone:
      case Format::kNone:
        break;
    }
    return b;
  }

  InfoBuilder load() { info.is_load = true; return *this; }
  InfoBuilder store() {
    info.is_store = true;
    info.writes_rt = false;
    info.reads_rt = true;
    return *this;
  }
  InfoBuilder jump() { info.is_jump = true; info.is_cond_branch = false; return *this; }
  InfoBuilder zolc() { info.is_zolc = true; info.reads_rs = true; return *this; }
  InfoBuilder zolc_noreg() { info.is_zolc = true; info.reads_rs = false; return *this; }
  InfoBuilder unsigned_imm() { info.imm_is_signed = false; return *this; }
  InfoBuilder writes_rs_too() { info.writes_rs = true; return *this; }
};

using Table = std::array<OpcodeInfo, static_cast<std::size_t>(Opcode::kOpcodeCount_)>;

Table build_table() {
  Table t{};
  const auto set = [&t](InfoBuilder b) {
    t[static_cast<std::size_t>(b.info.op)] = b.info;
  };
  using B = InfoBuilder;
  using O = Opcode;
  using F = Format;

  // SPECIAL group.
  set(B::make(O::kAdd, "add", F::kR3, kPrimarySpecial, kFnAdd));
  set(B::make(O::kSub, "sub", F::kR3, kPrimarySpecial, kFnSub));
  set(B::make(O::kAnd, "and", F::kR3, kPrimarySpecial, kFnAnd));
  set(B::make(O::kOr, "or", F::kR3, kPrimarySpecial, kFnOr));
  set(B::make(O::kXor, "xor", F::kR3, kPrimarySpecial, kFnXor));
  set(B::make(O::kNor, "nor", F::kR3, kPrimarySpecial, kFnNor));
  set(B::make(O::kSlt, "slt", F::kR3, kPrimarySpecial, kFnSlt));
  set(B::make(O::kSltu, "sltu", F::kR3, kPrimarySpecial, kFnSltu));
  set(B::make(O::kSllv, "sllv", F::kR3, kPrimarySpecial, kFnSllv));
  set(B::make(O::kSrlv, "srlv", F::kR3, kPrimarySpecial, kFnSrlv));
  set(B::make(O::kSrav, "srav", F::kR3, kPrimarySpecial, kFnSrav));
  set(B::make(O::kSll, "sll", F::kRShift, kPrimarySpecial, kFnSll));
  set(B::make(O::kSrl, "srl", F::kRShift, kPrimarySpecial, kFnSrl));
  set(B::make(O::kSra, "sra", F::kRShift, kPrimarySpecial, kFnSra));
  set(B::make(O::kJr, "jr", F::kR1, kPrimarySpecial, kFnJr).jump());
  set(B::make(O::kJalr, "jalr", F::kR2, kPrimarySpecial, kFnJalr).jump());

  // DSP group.
  set(B::make(O::kMul, "mul", F::kR3, kPrimaryDsp, kFnMul));
  set(B::make(O::kMulh, "mulh", F::kR3, kPrimaryDsp, kFnMulh));
  set(B::make(O::kMulhu, "mulhu", F::kR3, kPrimaryDsp, kFnMulhu));
  set(B::make(O::kMac, "mac", F::kR3Acc, kPrimaryDsp, kFnMac));
  set(B::make(O::kMax, "max", F::kR3, kPrimaryDsp, kFnMax));
  set(B::make(O::kMin, "min", F::kR3, kPrimaryDsp, kFnMin));
  set(B::make(O::kAbs, "abs", F::kR2, kPrimaryDsp, kFnAbs));
  set(B::make(O::kClz, "clz", F::kR2, kPrimaryDsp, kFnClz));

  // I-type ALU.
  set(B::make(O::kAddi, "addi", F::kI, 0x08));
  set(B::make(O::kSlti, "slti", F::kI, 0x0A));
  set(B::make(O::kSltiu, "sltiu", F::kI, 0x0B).unsigned_imm());
  set(B::make(O::kAndi, "andi", F::kI, 0x0C).unsigned_imm());
  set(B::make(O::kOri, "ori", F::kI, 0x0D).unsigned_imm());
  set(B::make(O::kXori, "xori", F::kI, 0x0E).unsigned_imm());
  set(B::make(O::kLui, "lui", F::kLui, 0x0F).unsigned_imm());

  // Branches.
  set(B::make(O::kBeq, "beq", F::kBranchCmp, 0x04));
  set(B::make(O::kBne, "bne", F::kBranchCmp, 0x05));
  set(B::make(O::kBlez, "blez", F::kBranchZero, 0x06));
  set(B::make(O::kBgtz, "bgtz", F::kBranchZero, 0x07));
  set(B::make(O::kBlt, "blt", F::kBranchCmp, 0x18));
  set(B::make(O::kBge, "bge", F::kBranchCmp, 0x19));
  set(B::make(O::kBltu, "bltu", F::kBranchCmp, 0x1A));
  set(B::make(O::kBgeu, "bgeu", F::kBranchCmp, 0x1B));

  // Loads / stores.
  set(B::make(O::kLb, "lb", F::kMem, 0x20).load());
  set(B::make(O::kLh, "lh", F::kMem, 0x21).load());
  set(B::make(O::kLw, "lw", F::kMem, 0x23).load());
  set(B::make(O::kLbu, "lbu", F::kMem, 0x24).load());
  set(B::make(O::kLhu, "lhu", F::kMem, 0x25).load());
  set(B::make(O::kSb, "sb", F::kMem, 0x28).store());
  set(B::make(O::kSh, "sh", F::kMem, 0x29).store());
  set(B::make(O::kSw, "sw", F::kMem, 0x2B).store());

  // Jumps.
  set(B::make(O::kJ, "j", F::kJump, 0x02).jump());
  set(B::make(O::kJal, "jal", F::kJump, 0x03).jump());

  // XRhrdwil branch-decrement: reads and writes rs, conditional branch.
  set(B::make(O::kDbne, "dbne", F::kBranchZero, kPrimaryDbne).writes_rs_too());

  // ZOLC initialization-mode instructions.
  set(B::make(O::kZolwTe, "zolw.te", F::kZolcWrite, kPrimaryZolc, kFnZolwTe).zolc());
  set(B::make(O::kZolwTs, "zolw.ts", F::kZolcWrite, kPrimaryZolc, kFnZolwTs).zolc());
  set(B::make(O::kZolwLp0, "zolw.lp0", F::kZolcWrite, kPrimaryZolc, kFnZolwLp0).zolc());
  set(B::make(O::kZolwLp1, "zolw.lp1", F::kZolcWrite, kPrimaryZolc, kFnZolwLp1).zolc());
  set(B::make(O::kZolwEx0, "zolw.ex0", F::kZolcWrite, kPrimaryZolc, kFnZolwEx0).zolc());
  set(B::make(O::kZolwEx1, "zolw.ex1", F::kZolcWrite, kPrimaryZolc, kFnZolwEx1).zolc());
  set(B::make(O::kZolwEn0, "zolw.en0", F::kZolcWrite, kPrimaryZolc, kFnZolwEn0).zolc());
  set(B::make(O::kZolwEn1, "zolw.en1", F::kZolcWrite, kPrimaryZolc, kFnZolwEn1).zolc());
  set(B::make(O::kZolwU, "zolw.u", F::kZolcWrite, kPrimaryZolc, kFnZolwU).zolc());
  set(B::make(O::kZolOn, "zolon", F::kZolcWrite, kPrimaryZolc, kFnZolOn).zolc());
  set(B::make(O::kZolOff, "zoloff", F::kZolcNone, kPrimaryZolc, kFnZolOff).zolc_noreg());

  set(B::make(O::kHalt, "halt", F::kNone, kPrimaryHalt));
  return t;
}

const Table& table() {
  static const Table t = build_table();
  return t;
}

const std::unordered_map<std::string_view, Opcode>& mnemonic_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, Opcode>();
    for (const OpcodeInfo& info : table()) {
      if (info.op != Opcode::kInvalid) m->emplace(info.mnemonic, info.op);
    }
    return m;
  }();
  return *map;
}

constexpr std::array<std::string_view, kNumRegs> kRegNames = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0",   "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0",   "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8",   "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  ZS_EXPECTS(op != Opcode::kInvalid && op != Opcode::kOpcodeCount_);
  const OpcodeInfo& info = table()[static_cast<std::size_t>(op)];
  ZS_ENSURES(info.op == op);
  return info;
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic) {
  const auto& map = mnemonic_map();
  const auto it = map.find(mnemonic);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

std::string_view reg_name(unsigned reg) {
  ZS_EXPECTS(reg < kNumRegs);
  return kRegNames[reg];
}

std::optional<unsigned> reg_from_name(std::string_view name) {
  if (name.empty()) return std::nullopt;
  // Symbolic names: "$t0" etc.
  for (unsigned i = 0; i < kNumRegs; ++i) {
    if (name == kRegNames[i]) return i;
  }
  // Numeric forms: "$5" or "r5".
  if (name[0] == '$' || name[0] == 'r' || name[0] == 'R') {
    const auto value = parse_int(name.substr(1));
    if (value && *value >= 0 && *value < static_cast<std::int64_t>(kNumRegs)) {
      return static_cast<unsigned>(*value);
    }
  }
  return std::nullopt;
}

}  // namespace zolcsim::isa
