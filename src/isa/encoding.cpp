#include "isa/encoding.hpp"

#include <array>

#include "common/bitutil.hpp"
#include "common/contracts.hpp"

namespace zolcsim::isa {

namespace {

// Reverse-lookup tables: primary opcode -> Opcode (for non-grouped ops) and
// funct -> Opcode within each group.
struct DecodeTables {
  std::array<Opcode, 64> by_primary{};
  std::array<Opcode, 64> special_by_funct{};
  std::array<Opcode, 64> dsp_by_funct{};
  std::array<Opcode, 64> zolc_by_funct{};
};

DecodeTables build_decode_tables() {
  DecodeTables t;
  t.by_primary.fill(Opcode::kInvalid);
  t.special_by_funct.fill(Opcode::kInvalid);
  t.dsp_by_funct.fill(Opcode::kInvalid);
  t.zolc_by_funct.fill(Opcode::kInvalid);
  for (std::size_t i = 1; i < static_cast<std::size_t>(Opcode::kOpcodeCount_);
       ++i) {
    const auto op = static_cast<Opcode>(i);
    const OpcodeInfo& info = opcode_info(op);
    switch (info.primary) {
      case kPrimarySpecial:
        t.special_by_funct[info.funct] = op;
        break;
      case kPrimaryDsp:
        t.dsp_by_funct[info.funct] = op;
        break;
      case kPrimaryZolc:
        t.zolc_by_funct[info.funct] = op;
        break;
      default:
        t.by_primary[info.primary] = op;
        break;
    }
  }
  return t;
}

const DecodeTables& decode_tables() {
  static const DecodeTables t = build_decode_tables();
  return t;
}

constexpr unsigned kRsLsb = 21, kRtLsb = 16, kRdLsb = 11, kShamtLsb = 6;
constexpr unsigned kZidxLsb = 13;

}  // namespace

std::uint32_t encode(const Instruction& instr) {
  const OpcodeInfo& info = opcode_info(instr.op);
  ZS_EXPECTS(instr.rd < kNumRegs && instr.rs < kNumRegs && instr.rt < kNumRegs);
  std::uint32_t word = 0;
  word = insert_bits(word, 26, 6, info.primary);

  switch (info.format) {
    case Format::kR3:
    case Format::kR3Acc:
      word = insert_bits(word, kRsLsb, 5, instr.rs);
      word = insert_bits(word, kRtLsb, 5, instr.rt);
      word = insert_bits(word, kRdLsb, 5, instr.rd);
      word = insert_bits(word, 0, 6, info.funct);
      break;
    case Format::kRShift:
      ZS_EXPECTS(instr.shamt < 32);
      word = insert_bits(word, kRtLsb, 5, instr.rt);
      word = insert_bits(word, kRdLsb, 5, instr.rd);
      word = insert_bits(word, kShamtLsb, 5, instr.shamt);
      word = insert_bits(word, 0, 6, info.funct);
      break;
    case Format::kR2:
      word = insert_bits(word, kRsLsb, 5, instr.rs);
      word = insert_bits(word, kRdLsb, 5, instr.rd);
      word = insert_bits(word, 0, 6, info.funct);
      break;
    case Format::kR1:
      word = insert_bits(word, kRsLsb, 5, instr.rs);
      word = insert_bits(word, 0, 6, info.funct);
      break;
    case Format::kI:
    case Format::kMem:
      word = insert_bits(word, kRsLsb, 5, instr.rs);
      word = insert_bits(word, kRtLsb, 5, instr.rt);
      if (info.imm_is_signed) {
        ZS_EXPECTS(fits_signed(instr.imm, 16));
      } else {
        ZS_EXPECTS(fits_unsigned(static_cast<std::uint32_t>(instr.imm), 16));
      }
      word = insert_bits(word, 0, 16,
                         static_cast<std::uint32_t>(instr.imm) & 0xFFFFu);
      break;
    case Format::kLui:
      word = insert_bits(word, kRtLsb, 5, instr.rt);
      ZS_EXPECTS(fits_unsigned(static_cast<std::uint32_t>(instr.imm), 16));
      word = insert_bits(word, 0, 16,
                         static_cast<std::uint32_t>(instr.imm) & 0xFFFFu);
      break;
    case Format::kBranchCmp:
      word = insert_bits(word, kRsLsb, 5, instr.rs);
      word = insert_bits(word, kRtLsb, 5, instr.rt);
      ZS_EXPECTS(fits_signed(instr.imm, 16));
      word = insert_bits(word, 0, 16,
                         static_cast<std::uint32_t>(instr.imm) & 0xFFFFu);
      break;
    case Format::kBranchZero:
      word = insert_bits(word, kRsLsb, 5, instr.rs);
      ZS_EXPECTS(fits_signed(instr.imm, 16));
      word = insert_bits(word, 0, 16,
                         static_cast<std::uint32_t>(instr.imm) & 0xFFFFu);
      break;
    case Format::kJump:
      ZS_EXPECTS(fits_unsigned(instr.target, 26));
      word = insert_bits(word, 0, 26, instr.target);
      break;
    case Format::kZolcWrite:
      word = insert_bits(word, kRsLsb, 5, instr.rs);
      word = insert_bits(word, kZidxLsb, 8, instr.zidx);
      word = insert_bits(word, 0, 6, info.funct);
      break;
    case Format::kZolcNone:
      word = insert_bits(word, 0, 6, info.funct);
      break;
    case Format::kNone:
      break;
  }
  return word;
}

Instruction decode(std::uint32_t word) {
  const DecodeTables& t = decode_tables();
  const auto primary = static_cast<std::uint8_t>(extract_bits(word, 26, 6));

  Opcode op = Opcode::kInvalid;
  if (primary == kPrimarySpecial) {
    op = t.special_by_funct[extract_bits(word, 0, 6)];
  } else if (primary == kPrimaryDsp) {
    op = t.dsp_by_funct[extract_bits(word, 0, 6)];
  } else if (primary == kPrimaryZolc) {
    op = t.zolc_by_funct[extract_bits(word, 0, 6)];
  } else {
    op = t.by_primary[primary];
  }
  if (op == Opcode::kInvalid) return Instruction{};

  const OpcodeInfo& info = opcode_info(op);
  Instruction instr;
  instr.op = op;
  switch (info.format) {
    case Format::kR3:
    case Format::kR3Acc:
      instr.rs = static_cast<std::uint8_t>(extract_bits(word, kRsLsb, 5));
      instr.rt = static_cast<std::uint8_t>(extract_bits(word, kRtLsb, 5));
      instr.rd = static_cast<std::uint8_t>(extract_bits(word, kRdLsb, 5));
      break;
    case Format::kRShift:
      instr.rt = static_cast<std::uint8_t>(extract_bits(word, kRtLsb, 5));
      instr.rd = static_cast<std::uint8_t>(extract_bits(word, kRdLsb, 5));
      instr.shamt = static_cast<std::uint8_t>(extract_bits(word, kShamtLsb, 5));
      break;
    case Format::kR2:
      instr.rs = static_cast<std::uint8_t>(extract_bits(word, kRsLsb, 5));
      instr.rd = static_cast<std::uint8_t>(extract_bits(word, kRdLsb, 5));
      break;
    case Format::kR1:
      instr.rs = static_cast<std::uint8_t>(extract_bits(word, kRsLsb, 5));
      break;
    case Format::kI:
    case Format::kMem:
    case Format::kBranchCmp:
    case Format::kBranchZero:
    case Format::kLui: {
      instr.rs = static_cast<std::uint8_t>(extract_bits(word, kRsLsb, 5));
      instr.rt = static_cast<std::uint8_t>(extract_bits(word, kRtLsb, 5));
      const std::uint32_t raw = extract_bits(word, 0, 16);
      const bool sign = info.imm_is_signed || info.is_cond_branch;
      instr.imm = sign ? sign_extend(raw, 16) : static_cast<std::int32_t>(raw);
      break;
    }
    case Format::kJump:
      instr.target = extract_bits(word, 0, 26);
      break;
    case Format::kZolcWrite:
      instr.rs = static_cast<std::uint8_t>(extract_bits(word, kRsLsb, 5));
      instr.zidx = static_cast<std::uint8_t>(extract_bits(word, kZidxLsb, 8));
      break;
    case Format::kZolcNone:
    case Format::kNone:
      break;
  }
  // Strict canonical decoding: a word is valid only if re-encoding the
  // decoded fields reproduces it exactly (junk in reserved bits rejects).
  if (encode(instr) != word) return Instruction{};
  return instr;
}

}  // namespace zolcsim::isa
