// Binary instruction encoding/decoding. Word layout (32 bits):
//   [31:26] primary opcode
//   R/DSP groups: [25:21] rs, [20:16] rt, [15:11] rd, [10:6] shamt, [5:0] funct
//   I-type:       [25:21] rs, [20:16] rt, [15:0] imm16
//   J-type:       [25:0]  target26
//   ZOLC group:   [25:21] rs, [20:13] idx8, [12:6] zero, [5:0] funct
#ifndef ZOLCSIM_ISA_ENCODING_HPP
#define ZOLCSIM_ISA_ENCODING_HPP

#include <cstdint>

#include "isa/instruction.hpp"

namespace zolcsim::isa {

/// Encodes a decoded instruction to its 32-bit word. Preconditions: fields
/// fit their encoding slots (imm in 16 signed/unsigned bits per opcode,
/// regs < 32, target < 2^26, zidx < 256).
[[nodiscard]] std::uint32_t encode(const Instruction& instr);

/// Decodes a 32-bit word. Returns an Instruction with op == kInvalid if the
/// word does not correspond to any defined instruction.
[[nodiscard]] Instruction decode(std::uint32_t word);

}  // namespace zolcsim::isa

#endif  // ZOLCSIM_ISA_ENCODING_HPP
