#include "isa/instruction.hpp"

#include "common/contracts.hpp"

namespace zolcsim::isa {

SourceRegs source_regs(const Instruction& instr) {
  const OpcodeInfo& info = opcode_info(instr.op);
  SourceRegs out;
  if (info.reads_rs) out.push(instr.rs);
  if (info.reads_rt) out.push(instr.rt);
  if (info.reads_rd) out.push(instr.rd);
  return out;
}

std::optional<std::uint8_t> dest_reg(const Instruction& instr) {
  const OpcodeInfo& info = opcode_info(instr.op);
  std::uint8_t dest = 0;
  if (info.writes_rd) dest = instr.rd;
  else if (info.writes_rt) dest = instr.rt;
  else if (info.writes_rs) dest = instr.rs;
  else if (instr.op == Opcode::kJal) dest = 31;  // link register
  else return std::nullopt;
  if (dest == 0) return std::nullopt;
  return dest;
}

bool is_control_flow(const Instruction& instr) {
  const OpcodeInfo& info = opcode_info(instr.op);
  return info.is_cond_branch || info.is_jump;
}

std::uint32_t branch_target(const Instruction& instr, std::uint32_t pc) {
  const OpcodeInfo& info = opcode_info(instr.op);
  ZS_EXPECTS(info.is_cond_branch);
  return pc + 4 + (static_cast<std::uint32_t>(instr.imm) << 2);
}

std::uint32_t jump_target(const Instruction& instr, std::uint32_t pc) {
  ZS_EXPECTS(instr.op == Opcode::kJ || instr.op == Opcode::kJal);
  return ((pc + 4) & 0xF000'0000u) | (instr.target << 2);
}

Instruction make_nop() noexcept {
  Instruction nop;
  nop.op = Opcode::kSll;
  return nop;
}

bool is_nop(const Instruction& instr) noexcept {
  return instr.op == Opcode::kSll && instr.rd == 0 && instr.rt == 0 &&
         instr.shamt == 0;
}

}  // namespace zolcsim::isa
