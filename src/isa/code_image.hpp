// Predecoded code image: a non-owning view of an already-decoded instruction
// range. The simulators consult it on fetch so each code word is decoded
// once per program load instead of once per executed step; PCs outside the
// image (or misaligned) fall back to decoding from simulated memory, which
// preserves the alignment trap and self-modifying-code behaviour for callers
// that bypass the image (e.g. the zolcscan binary-patch flow).
#ifndef ZOLCSIM_ISA_CODE_IMAGE_HPP
#define ZOLCSIM_ISA_CODE_IMAGE_HPP

#include <cstddef>
#include <cstdint>

#include "isa/instruction.hpp"

namespace zolcsim::isa {

struct CodeImage {
  std::uint32_t base = 0;
  const Instruction* code = nullptr;
  std::size_t size_words = 0;

  [[nodiscard]] bool covers(std::uint32_t pc) const noexcept {
    return code != nullptr && (pc & 3u) == 0 && pc >= base &&
           (pc - base) / 4 < size_words;
  }

  /// Precondition: covers(pc).
  [[nodiscard]] const Instruction& at(std::uint32_t pc) const noexcept {
    return code[(pc - base) / 4];
  }
};

}  // namespace zolcsim::isa

#endif  // ZOLCSIM_ISA_CODE_IMAGE_HPP
