// The benchmark suite: 12 DSP / motion-estimation kernels of the classes
// the paper evaluates (XiRisc validation-suite-style DSP code plus software
// motion estimation). Each kernel provides:
//   * a KIR builder (one source lowered to every machine configuration),
//   * deterministic input-data setup,
//   * a golden C++ reference mirroring the kernel's exact integer
//     arithmetic, and word-level output verification.
#ifndef ZOLCSIM_KERNELS_KERNELS_HPP
#define ZOLCSIM_KERNELS_KERNELS_HPP

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "codegen/kir.hpp"
#include "common/result.hpp"
#include "mem/memory.hpp"

namespace zolcsim::kernels {

/// Memory map and sizing for a kernel instance.
struct KernelEnv {
  std::uint32_t code_base = 0x0000'1000;
  std::uint32_t in_base = 0x0010'0000;   ///< primary input
  std::uint32_t in2_base = 0x0011'0000;  ///< secondary input / coefficients
  std::uint32_t out_base = 0x0012'0000;  ///< outputs (verified)
  std::uint32_t aux_base = 0x0013'0000;  ///< constant tables / scratch
  unsigned scale = 1;                    ///< problem-size multiplier
  std::uint32_t seed = 0xC0FFEE01;
};

class Kernel {
 public:
  virtual ~Kernel() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// Builds the kernel's KIR (loop structure + body instructions).
  [[nodiscard]] virtual std::vector<codegen::KNode> build(
      const KernelEnv& env) const = 0;
  /// Writes input data and constant tables into simulator memory.
  virtual void setup(const KernelEnv& env, mem::Memory& memory) const = 0;
  /// Checks the outputs in `memory` against the golden reference.
  [[nodiscard]] virtual Result<void> verify(const KernelEnv& env,
                                            const mem::Memory& memory) const = 0;
};

/// The 12 paper-suite kernels, in the order reported by the benchmark
/// harness. Kept stable so the paper-reproduction benches are byte-stable.
[[nodiscard]] const std::vector<std::unique_ptr<Kernel>>& kernel_registry();

/// Extended kernels beyond the paper suite (deep/irregular loop structures
/// used by the geometry design-space exploration); not part of the default
/// sweep when SweepSpec.kernels is empty.
[[nodiscard]] const std::vector<std::unique_ptr<Kernel>>&
extended_kernel_registry();

/// Lookup by name across both registries; nullptr if unknown.
[[nodiscard]] const Kernel* find_kernel(std::string_view name);

/// Deterministic pseudo-random generator for input data (LCG).
class Lcg {
 public:
  explicit Lcg(std::uint32_t seed) : state_(seed) {}

  std::uint32_t next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }

  /// Uniform-ish value in [lo, hi]. All arithmetic is done in uint32 so a
  /// span covering the full int32 domain (where `hi - lo + 1` wraps to 0)
  /// and large `lo + offset` sums stay well-defined.
  std::int32_t range(std::int32_t lo, std::int32_t hi) {
    const std::uint32_t span = static_cast<std::uint32_t>(hi) -
                               static_cast<std::uint32_t>(lo) + 1u;
    const std::uint32_t offset = span == 0 ? next() : next() % span;
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(lo) + offset);
  }

 private:
  std::uint32_t state_;
};

// Shared helpers for kernel implementations (exposed for tests).
namespace detail {

/// Same wrap-around semantics as the core's mul/mac.
inline std::int32_t wmul(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                   static_cast<std::uint32_t>(b));
}
inline std::int32_t wadd(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}

/// Verifies `expected` against memory words at `addr`.
Result<void> check_words(const mem::Memory& memory, std::uint32_t addr,
                         const std::vector<std::int32_t>& expected,
                         std::string_view what);

}  // namespace detail

}  // namespace zolcsim::kernels

#endif  // ZOLCSIM_KERNELS_KERNELS_HPP
